package wormhole_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	wormhole "github.com/repro/wormhole"
)

func TestPublicAPIBasics(t *testing.T) {
	idx := wormhole.New()
	idx.Set([]byte("b"), []byte("2"))
	idx.Set([]byte("a"), []byte("1"))
	idx.Set([]byte("c"), []byte("3"))
	if v, ok := idx.Get([]byte("b")); !ok || string(v) != "2" {
		t.Fatalf("Get(b) = %q, %v", v, ok)
	}
	if idx.Count() != 3 {
		t.Fatalf("Count = %d", idx.Count())
	}
	if k, v, ok := idx.Min(); !ok || string(k) != "a" || string(v) != "1" {
		t.Fatal("Min wrong")
	}
	if k, _, ok := idx.Max(); !ok || string(k) != "c" {
		t.Fatal("Max wrong")
	}
	if !idx.Del([]byte("b")) || idx.Del([]byte("b")) {
		t.Fatal("Del semantics wrong")
	}
	var got []string
	idx.Scan(nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if fmt.Sprint(got) != "[a c]" {
		t.Fatalf("scan = %v", got)
	}
	got = got[:0]
	idx.ScanDesc(nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if fmt.Sprint(got) != "[c a]" {
		t.Fatalf("desc scan = %v", got)
	}
}

// TestPublicGetBatch checks the batched read surface on Index, Reader,
// Sharded and ShardedReader against scalar Gets, including duplicates,
// misses and the empty key.
func TestPublicGetBatch(t *testing.T) {
	idx := wormhole.New()
	sh := wormhole.NewSharded(wormhole.ShardedConfig{Shards: 4})
	keys := make([][]byte, 0, 600)
	for i := 0; i < 600; i++ {
		k := []byte(fmt.Sprintf("pub-%04d", i))
		keys = append(keys, k)
		if i%3 != 0 { // leave a third missing
			idx.Set(k, []byte(fmt.Sprintf("v%d", i)))
			sh.Set(k, []byte(fmt.Sprintf("v%d", i)))
		}
	}
	batch := [][]byte{{}, keys[1], keys[0], keys[1], []byte("absent")}
	batch = append(batch, keys...)
	rd := idx.Reader()
	defer rd.Close()
	srd := sh.Reader()
	defer srd.Close()
	check := func(name string, vals [][]byte, found []bool, get func([]byte) ([]byte, bool)) {
		t.Helper()
		if len(vals) != len(batch) || len(found) != len(batch) {
			t.Fatalf("%s: %d/%d results for %d keys", name, len(vals), len(found), len(batch))
		}
		for i, k := range batch {
			sv, sok := get(k)
			if found[i] != sok || !bytes.Equal(vals[i], sv) {
				t.Fatalf("%s: batch[%d](%q) = %q,%v; Get = %q,%v", name, i, k, vals[i], found[i], sv, sok)
			}
		}
	}
	vals, found := idx.GetBatch(batch)
	check("Index", vals, found, idx.Get)
	vals, found = rd.GetBatch(batch)
	check("Reader", vals, found, idx.Get)
	vals, found = sh.GetBatch(batch)
	check("Sharded", vals, found, sh.Get)
	vals, found = srd.GetBatch(batch)
	check("ShardedReader", vals, found, sh.Get)
}

func TestPublicConfigVariants(t *testing.T) {
	for _, cfg := range []wormhole.Config{
		{},
		{Unsafe: true},
		{LeafCap: 8},
		{DisableOptimizations: true},
		{LeafCap: 16, Unsafe: true, DisableOptimizations: true},
	} {
		idx := wormhole.NewConfig(cfg)
		model := map[string]string{}
		r := rand.New(rand.NewSource(99))
		for i := 0; i < 2000; i++ {
			k := fmt.Sprintf("cfg-%04d", r.Intn(600))
			switch r.Intn(3) {
			case 0, 1:
				idx.Set([]byte(k), []byte(k))
				model[k] = k
			case 2:
				got := idx.Del([]byte(k))
				_, want := model[k]
				if got != want {
					t.Fatalf("cfg %+v: Del(%s) = %v want %v", cfg, k, got, want)
				}
				delete(model, k)
			}
		}
		if int(idx.Count()) != len(model) {
			t.Fatalf("cfg %+v: Count %d want %d", cfg, idx.Count(), len(model))
		}
		var keys []string
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		it := idx.Iter(nil)
		for _, want := range keys {
			if !it.Next() {
				t.Fatalf("cfg %+v: iterator exhausted before %s", cfg, want)
			}
			if string(it.Key()) != want {
				t.Fatalf("cfg %+v: iter %q want %q", cfg, it.Key(), want)
			}
		}
		if it.Next() {
			t.Fatalf("cfg %+v: iterator has extra keys", cfg)
		}
	}
}

func TestPublicRangeAsc(t *testing.T) {
	idx := wormhole.New()
	for i := 0; i < 100; i++ {
		idx.Set([]byte(fmt.Sprintf("r%03d", i)), []byte{byte(i)})
	}
	keys, vals := idx.RangeAsc([]byte("r090"), 20)
	if len(keys) != 10 || string(keys[0]) != "r090" || vals[9][0] != 99 {
		t.Fatalf("RangeAsc window wrong: %d keys", len(keys))
	}
}

func TestPublicConcurrent(t *testing.T) {
	idx := wormhole.NewConfig(wormhole.Config{LeafCap: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := []byte(fmt.Sprintf("g%d-%05d", g, i))
				idx.Set(k, k)
				if v, ok := idx.Get(k); !ok || !bytes.Equal(v, k) {
					t.Errorf("read-own-write failed for %s", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if idx.Count() != 8*2000 {
		t.Fatalf("Count = %d", idx.Count())
	}
	st := idx.Stats()
	if st.Keys != 8*2000 || st.Leaves == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if idx.Footprint() <= 0 {
		t.Fatal("Footprint <= 0")
	}
}

func ExampleIndex() {
	idx := wormhole.New()
	idx.Set([]byte("James"), []byte("1"))
	idx.Set([]byte("John"), []byte("2"))
	idx.Set([]byte("Aaron"), []byte("3"))
	idx.Scan([]byte("J"), func(k, v []byte) bool {
		fmt.Printf("%s=%s\n", k, v)
		return true
	})
	// Output:
	// James=1
	// John=2
}

// TestPublicDescAndIterators covers the descending surface added with the
// lock-free scan path: ScanDesc/RangeDesc/IterDesc on Index, scans on
// Reader handles, and the sharded store's descending stitching.
func TestPublicDescAndIterators(t *testing.T) {
	idx := wormhole.New()
	for i := 0; i < 500; i++ {
		idx.Set([]byte(fmt.Sprintf("d%04d", i)), []byte{byte(i)})
	}

	keys, _ := idx.RangeDesc([]byte("d0100"), 10)
	if len(keys) != 10 || string(keys[0]) != "d0100" || string(keys[9]) != "d0091" {
		t.Fatalf("RangeDesc window wrong: %v", keys)
	}

	n := 0
	idx.ScanDesc(nil, func(k, v []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("ScanDesc visited %d", n)
	}

	it := idx.IterDesc([]byte("d0050"))
	for want := 50; want >= 0; want-- {
		if !it.Next() {
			t.Fatalf("IterDesc dry at %d", want)
		}
		if got := string(it.Key()); got != fmt.Sprintf("d%04d", want) {
			t.Fatalf("IterDesc key %q, want d%04d", got, want)
		}
	}
	if it.Next() {
		t.Fatal("IterDesc has extra keys")
	}
	it.Close()

	r := idx.Reader()
	defer r.Close()
	prev := ""
	n = 0
	r.Scan([]byte("d0490"), func(k, v []byte) bool {
		if prev != "" && prev >= string(k) {
			t.Fatalf("Reader.Scan out of order")
		}
		prev = string(k)
		n++
		return true
	})
	if n != 10 {
		t.Fatalf("Reader.Scan visited %d, want 10", n)
	}
	n = 0
	r.ScanDesc([]byte("d0009"), func(k, v []byte) bool { n++; return true })
	if n != 10 {
		t.Fatalf("Reader.ScanDesc visited %d, want 10", n)
	}

	sh := wormhole.NewSharded(wormhole.ShardedConfig{Shards: 4})
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("s%04d", i))
		sh.Set(k, k)
	}
	prev = ""
	n = 0
	sh.ScanDesc(nil, func(k, v []byte) bool {
		if prev != "" && prev <= string(k) {
			t.Fatalf("Sharded.ScanDesc out of order: %q then %q", prev, k)
		}
		prev = string(k)
		n++
		return true
	})
	if n != 1000 {
		t.Fatalf("Sharded.ScanDesc visited %d, want 1000", n)
	}
	keys, vals := sh.RangeDesc([]byte("s0123"), 4)
	if len(keys) != 4 || string(keys[0]) != "s0123" || string(keys[3]) != "s0120" ||
		!bytes.Equal(keys[2], vals[2]) {
		t.Fatalf("Sharded.RangeDesc window wrong: %v", keys)
	}
	keys, _ = sh.RangeAsc([]byte("s0990"), 100)
	if len(keys) != 10 || string(keys[0]) != "s0990" {
		t.Fatalf("Sharded.RangeAsc window wrong: %d", len(keys))
	}

	sr := sh.Reader()
	defer sr.Close()
	n = 0
	sr.Scan([]byte("s0995"), func(k, v []byte) bool { n++; return true })
	if n != 5 {
		t.Fatalf("ShardedReader.Scan visited %d, want 5", n)
	}
	n = 0
	sr.ScanDesc([]byte("s0004"), func(k, v []byte) bool { n++; return true })
	if n != 5 {
		t.Fatalf("ShardedReader.ScanDesc visited %d, want 5", n)
	}
}
