// Command whbench regenerates every table and figure of the Wormhole
// paper's evaluation (§4) at a configurable scale.
//
// Usage:
//
//	whbench -exp all                      # everything, laptop scale
//	whbench -exp fig10 -keys 1000000      # one figure, bigger keysets
//	whbench -exp fig09,fig17 -threads 16 -duration 2s
//	whbench -exp shard-sweep -shards 8    # sharded-store scaling sweep
//	whbench -list                         # show experiment ids
//
// Absolute numbers depend on the host; the paper's shapes (ordering of
// indexes, rough ratios, crossover points) are the reproduction target.
// See README.md for reproduction notes and docs/ARCHITECTURE.md for the
// paper-to-code map behind each experiment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/repro/wormhole/internal/bench"
)

// run is the machine-readable document -json writes: one whbench
// invocation's environment plus every recorded benchmark cell. The
// BENCH_*.json perf-trajectory files committed per PR hold one run per
// labelled section.
type run struct {
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Keys       int            `json:"keys"`
	Threads    int            `json:"threads"`
	DurationMS int64          `json:"duration_ms"`
	Seed       int64          `json:"seed"`
	Timestamp  string         `json:"timestamp"`
	Results    []bench.Result `json:"results"`
}

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		keys     = flag.Int("keys", 200_000, "base keys per keyset")
		threads  = flag.Int("threads", 0, "worker threads (default: min(GOMAXPROCS, 16))")
		duration = flag.Duration("duration", time.Second, "measurement window per cell")
		seed     = flag.Int64("seed", 42, "workload seed")
		batch    = flag.Int("batch", 800, "netkv request batch size (fig12)")
		shards   = flag.Int("shards", 0, "extra shard count for shard-sweep's 2/4/8 ladder")
		interlv  = flag.Int("interleave", 0, "extra GetBatch interleave depth for batchread's ladder")
		dir      = flag.String("dir", "", "durability experiment: persist stores under this directory (default: a temp dir, removed afterwards)")
		syncSel  = flag.String("sync", "", "durability experiment: comma-separated rows from {none,interval,always,recover} (default: all)")
		segBytes = flag.Int("seg-bytes", 0, "recovery experiment: extra snapshot segment size for the 256KiB/1MiB ladder")
		decodeW  = flag.Int("decode-workers", 0, "recovery experiment: extra decode-worker count for the 1/2/8 ladder")
		jsonOut  = flag.String("json", "", "write machine-readable results (trajectory experiments, e.g. readpath) to this file")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Desc)
		}
		return
	}
	cfg := &bench.Config{
		Keys: *keys, Threads: *threads, Duration: *duration,
		Seed: *seed, Batch: *batch, Shards: *shards,
		Interleave: *interlv, Dir: *dir, Sync: *syncSel,
		SegBytes: *segBytes, DecodeWorkers: *decodeW, Out: os.Stdout,
	}
	cfg.Normalize()
	var recorded []bench.Result
	if *jsonOut != "" {
		cfg.Record = func(r bench.Result) { recorded = append(recorded, r) }
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	ran := 0
	for _, e := range bench.Experiments() {
		if !want["all"] && !want[e.ID] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Desc)
		start := time.Now()
		e.Run(cfg)
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "whbench: no experiment matches %q; use -list\n", *exp)
		os.Exit(2)
	}
	if *jsonOut != "" {
		doc := run{
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Keys:       cfg.Keys,
			Threads:    cfg.Threads,
			DurationMS: cfg.Duration.Milliseconds(),
			Seed:       cfg.Seed,
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			Results:    recorded,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "whbench: encoding -json output: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "whbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d results to %s\n", len(recorded), *jsonOut)
	}
}
