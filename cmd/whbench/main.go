// Command whbench regenerates every table and figure of the Wormhole
// paper's evaluation (§4) at a configurable scale.
//
// Usage:
//
//	whbench -exp all                      # everything, laptop scale
//	whbench -exp fig10 -keys 1000000      # one figure, bigger keysets
//	whbench -exp fig09,fig17 -threads 16 -duration 2s
//	whbench -exp shard-sweep -shards 8    # sharded-store scaling sweep
//	whbench -list                         # show experiment ids
//
// Absolute numbers depend on the host; the paper's shapes (ordering of
// indexes, rough ratios, crossover points) are the reproduction target.
// See README.md for reproduction notes and docs/ARCHITECTURE.md for the
// paper-to-code map behind each experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/repro/wormhole/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		keys     = flag.Int("keys", 200_000, "base keys per keyset")
		threads  = flag.Int("threads", 0, "worker threads (default: min(GOMAXPROCS, 16))")
		duration = flag.Duration("duration", time.Second, "measurement window per cell")
		seed     = flag.Int64("seed", 42, "workload seed")
		batch    = flag.Int("batch", 800, "netkv request batch size (fig12)")
		shards   = flag.Int("shards", 0, "extra shard count for shard-sweep's 2/4/8 ladder")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Desc)
		}
		return
	}
	cfg := &bench.Config{
		Keys: *keys, Threads: *threads, Duration: *duration,
		Seed: *seed, Batch: *batch, Shards: *shards, Out: os.Stdout,
	}
	cfg.Normalize()

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	ran := 0
	for _, e := range bench.Experiments() {
		if !want["all"] && !want[e.ID] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Desc)
		start := time.Now()
		e.Run(cfg)
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "whbench: no experiment matches %q; use -list\n", *exp)
		os.Exit(2)
	}
}
