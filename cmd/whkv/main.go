// Command whkv runs the networked key-value store of Figure 12: a server
// hosting any of the registered indexes behind the batched binary
// protocol, plus a small client for ad-hoc operations and load testing.
//
// Usage:
//
//	whkv serve -addr 127.0.0.1:7070 -index wormhole
//	whkv serve -addr 127.0.0.1:7070 -index wormhole-sharded -shards 8
//	whkv serve -index wormhole-sharded -bounds "g,n,t"   # explicit shard boundaries
//	whkv serve -dir /var/lib/whkv -sync interval        # durable store (WAL + snapshots)
//	whkv set   -addr 127.0.0.1:7070 -key a -val 1
//	whkv get   -addr 127.0.0.1:7070 -key a
//	whkv scan  -addr 127.0.0.1:7070 -key a -limit 10
//	whkv flush -addr 127.0.0.1:7070                     # fsync barrier on a durable server
//	whkv bench -addr 127.0.0.1:7070 -keys 100000 -batch 800 -duration 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/repro/wormhole/internal/adapters"
	"github.com/repro/wormhole/internal/bench"
	"github.com/repro/wormhole/internal/index"
	"github.com/repro/wormhole/internal/netkv"
	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/wal"
)

func main() {
	_ = adapters.Baselines() // link the registry
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "serve":
		serve(args)
	case "get", "set", "del", "scan", "flush":
		oneShot(cmd, args)
	case "bench":
		clientBench(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: whkv serve|get|set|del|scan|flush|bench [flags]")
	os.Exit(2)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	name := fs.String("index", "wormhole", "index implementation")
	shards := fs.Int("shards", 0, "shard count for -index wormhole-sharded (default: min(GOMAXPROCS, 16))")
	bounds := fs.String("bounds", "", "comma-separated shard boundary keys for -index wormhole-sharded (overrides -shards; place them at your keyspace's quantiles, since the default uniform byte ranges put all-ASCII keys in one shard)")
	dir := fs.String("dir", "", "durable mode: persist to this directory (WAL + snapshots per shard; reopening recovers). Implies a sharded store; -index must be wormhole-sharded or unset")
	syncMode := fs.String("sync", "none", "durable mode sync policy: none, interval or always")
	fs.Parse(args)
	if *dir == "" && (*shards > 0 || *bounds != "") && *name != "wormhole-sharded" {
		// With -dir the store is always sharded, so -shards/-bounds apply
		// to it regardless of the (defaulted) -index value.
		fmt.Fprintf(os.Stderr, "whkv: -shards and -bounds require -index wormhole-sharded\n")
		os.Exit(2)
	}
	if *dir != "" && *name != "wormhole" && *name != "wormhole-sharded" {
		fmt.Fprintf(os.Stderr, "whkv: -dir serves a durable sharded wormhole; it cannot host -index %s\n", *name)
		os.Exit(2)
	}
	if *shards > 0 {
		shard.DefaultShards = *shards
	}
	parseBounds := func() *shard.Partitioner {
		var bs [][]byte
		for _, b := range strings.Split(*bounds, ",") {
			bs = append(bs, []byte(strings.TrimSpace(b)))
		}
		return shard.NewExplicit(bs)
	}
	var ix index.Index
	var durable *shard.Store
	served := *name
	switch {
	case *dir != "":
		policy, err := wal.ParsePolicy(*syncMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whkv:", err)
			os.Exit(2)
		}
		o := shard.Options{Dir: *dir, Durability: wal.Options{Sync: policy}}
		if *bounds != "" {
			o.Partitioner = parseBounds()
		}
		st, err := shard.Open(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whkv:", err)
			os.Exit(1)
		}
		fmt.Printf("whkv: recovered %d snapshot pairs + %d WAL records from %s\n",
			st.RecoveredPairs(), st.RecoveredRecords(), *dir)
		ix, durable = st, st
		served = fmt.Sprintf("durable wormhole-sharded (%d shards, sync=%s)",
			st.NumShards(), policy)
	case *bounds != "":
		ix = shard.New(shard.Options{Partitioner: parseBounds()})
		served = "wormhole-sharded"
	default:
		info, ok := index.Lookup(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "whkv: unknown index %q\n", *name)
			os.Exit(2)
		}
		ix = info.New()
	}
	srv, err := netkv.Serve(*addr, ix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	fmt.Printf("whkv: serving %s on %s\n", served, srv.Addr())
	// Run until killed; on SIGINT/SIGTERM drain connections and, in
	// durable mode, flush and close the WALs so a clean shutdown loses
	// nothing even under -sync none.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("whkv: shutting down")
	srv.Close()
	if durable != nil {
		if err := durable.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "whkv: closing store:", err)
			os.Exit(1)
		}
	}
}

func oneShot(cmd string, args []string) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	key := fs.String("key", "", "key")
	val := fs.String("val", "", "value (set)")
	limit := fs.Int("limit", 10, "scan limit")
	fs.Parse(args)
	cl, err := netkv.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	defer cl.Close()
	switch cmd {
	case "get":
		cl.QueueGet([]byte(*key))
	case "set":
		cl.QueueSet([]byte(*key), []byte(*val))
	case "del":
		cl.QueueDel([]byte(*key))
	case "scan":
		cl.QueueScan([]byte(*key), *limit)
	case "flush":
		cl.QueueFlush()
	}
	rs, err := cl.Flush()
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	r := rs[0]
	switch cmd {
	case "get":
		if r.Status == netkv.StatusOK {
			fmt.Printf("%s\n", r.Val)
		} else {
			fmt.Println("(not found)")
		}
	case "set":
		fmt.Println("ok")
	case "del":
		if r.Status == netkv.StatusOK {
			fmt.Println("deleted")
		} else {
			fmt.Println("(not found)")
		}
	case "scan":
		for i := range r.Keys {
			fmt.Printf("%s = %s\n", r.Keys[i], r.Vals[i])
		}
	case "flush":
		switch r.Status {
		case netkv.StatusOK:
			fmt.Println("flushed")
		case netkv.StatusNotFound:
			fmt.Println("(server is volatile)")
		default:
			fmt.Fprintln(os.Stderr, "whkv: flush failed on the server")
			os.Exit(1)
		}
	}
}

func clientBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	keys := fs.Int("keys", 100_000, "keys to load before measuring")
	batch := fs.Int("batch", netkv.DefaultBatch, "requests per batch")
	dur := fs.Duration("duration", 2*time.Second, "measurement window")
	fs.Parse(args)
	cl, err := netkv.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	defer cl.Close()
	for i := 0; i < *keys; i++ {
		cl.QueueSet([]byte(fmt.Sprintf("bench:%08d", i)), []byte("v"))
		if cl.Pending() >= *batch {
			if _, err := cl.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "whkv:", err)
				os.Exit(1)
			}
		}
	}
	if _, err := cl.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	fmt.Printf("loaded %d keys; measuring GETs for %v (batch %d)\n", *keys, *dur, *batch)
	r := bench.NewRng(1)
	start := time.Now()
	ops := 0
	for time.Since(start) < *dur {
		for i := 0; i < *batch; i++ {
			cl.QueueGet([]byte(fmt.Sprintf("bench:%08d", r.Intn(*keys))))
		}
		rs, err := cl.Flush()
		if err != nil {
			fmt.Fprintln(os.Stderr, "whkv:", err)
			os.Exit(1)
		}
		for _, rp := range rs {
			if rp.Status != netkv.StatusOK {
				fmt.Fprintln(os.Stderr, "whkv: missing key during bench")
				os.Exit(1)
			}
		}
		ops += *batch
	}
	el := time.Since(start).Seconds()
	fmt.Printf("%d lookups in %.2fs = %.2f MOPS\n", ops, el, float64(ops)/el/1e6)
}
