// Command whkv runs the networked key-value store of Figure 12: a server
// hosting any of the registered indexes behind the batched binary
// protocol, plus a small client for ad-hoc operations and load testing.
//
// Usage:
//
//	whkv serve -addr 127.0.0.1:7070 -index wormhole
//	whkv serve -addr 127.0.0.1:7070 -index wormhole-sharded -shards 8
//	whkv serve -index wormhole-sharded -bounds "g,n,t"   # explicit shard boundaries
//	whkv set   -addr 127.0.0.1:7070 -key a -val 1
//	whkv get   -addr 127.0.0.1:7070 -key a
//	whkv scan  -addr 127.0.0.1:7070 -key a -limit 10
//	whkv bench -addr 127.0.0.1:7070 -keys 100000 -batch 800 -duration 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/repro/wormhole/internal/adapters"
	"github.com/repro/wormhole/internal/bench"
	"github.com/repro/wormhole/internal/index"
	"github.com/repro/wormhole/internal/netkv"
	"github.com/repro/wormhole/internal/shard"
)

func main() {
	_ = adapters.Baselines() // link the registry
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "serve":
		serve(args)
	case "get", "set", "del", "scan":
		oneShot(cmd, args)
	case "bench":
		clientBench(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: whkv serve|get|set|del|scan|bench [flags]")
	os.Exit(2)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	name := fs.String("index", "wormhole", "index implementation")
	shards := fs.Int("shards", 0, "shard count for -index wormhole-sharded (default: min(GOMAXPROCS, 16))")
	bounds := fs.String("bounds", "", "comma-separated shard boundary keys for -index wormhole-sharded (overrides -shards; place them at your keyspace's quantiles, since the default uniform byte ranges put all-ASCII keys in one shard)")
	fs.Parse(args)
	if (*shards > 0 || *bounds != "") && *name != "wormhole-sharded" {
		fmt.Fprintf(os.Stderr, "whkv: -shards and -bounds require -index wormhole-sharded\n")
		os.Exit(2)
	}
	if *shards > 0 {
		shard.DefaultShards = *shards
	}
	var ix index.Index
	if *bounds != "" {
		var bs [][]byte
		for _, b := range strings.Split(*bounds, ",") {
			bs = append(bs, []byte(strings.TrimSpace(b)))
		}
		ix = shard.New(shard.Options{Partitioner: shard.NewExplicit(bs)})
	} else {
		info, ok := index.Lookup(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "whkv: unknown index %q\n", *name)
			os.Exit(2)
		}
		ix = info.New()
	}
	srv, err := netkv.Serve(*addr, ix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	fmt.Printf("whkv: serving %s on %s\n", *name, srv.Addr())
	select {} // run until killed
}

func oneShot(cmd string, args []string) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	key := fs.String("key", "", "key")
	val := fs.String("val", "", "value (set)")
	limit := fs.Int("limit", 10, "scan limit")
	fs.Parse(args)
	cl, err := netkv.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	defer cl.Close()
	switch cmd {
	case "get":
		cl.QueueGet([]byte(*key))
	case "set":
		cl.QueueSet([]byte(*key), []byte(*val))
	case "del":
		cl.QueueDel([]byte(*key))
	case "scan":
		cl.QueueScan([]byte(*key), *limit)
	}
	rs, err := cl.Flush()
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	r := rs[0]
	switch cmd {
	case "get":
		if r.Status == netkv.StatusOK {
			fmt.Printf("%s\n", r.Val)
		} else {
			fmt.Println("(not found)")
		}
	case "set":
		fmt.Println("ok")
	case "del":
		if r.Status == netkv.StatusOK {
			fmt.Println("deleted")
		} else {
			fmt.Println("(not found)")
		}
	case "scan":
		for i := range r.Keys {
			fmt.Printf("%s = %s\n", r.Keys[i], r.Vals[i])
		}
	}
}

func clientBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	keys := fs.Int("keys", 100_000, "keys to load before measuring")
	batch := fs.Int("batch", netkv.DefaultBatch, "requests per batch")
	dur := fs.Duration("duration", 2*time.Second, "measurement window")
	fs.Parse(args)
	cl, err := netkv.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	defer cl.Close()
	for i := 0; i < *keys; i++ {
		cl.QueueSet([]byte(fmt.Sprintf("bench:%08d", i)), []byte("v"))
		if cl.Pending() >= *batch {
			if _, err := cl.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "whkv:", err)
				os.Exit(1)
			}
		}
	}
	if _, err := cl.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	fmt.Printf("loaded %d keys; measuring GETs for %v (batch %d)\n", *keys, *dur, *batch)
	r := bench.NewRng(1)
	start := time.Now()
	ops := 0
	for time.Since(start) < *dur {
		for i := 0; i < *batch; i++ {
			cl.QueueGet([]byte(fmt.Sprintf("bench:%08d", r.Intn(*keys))))
		}
		rs, err := cl.Flush()
		if err != nil {
			fmt.Fprintln(os.Stderr, "whkv:", err)
			os.Exit(1)
		}
		for _, rp := range rs {
			if rp.Status != netkv.StatusOK {
				fmt.Fprintln(os.Stderr, "whkv: missing key during bench")
				os.Exit(1)
			}
		}
		ops += *batch
	}
	el := time.Since(start).Seconds()
	fmt.Printf("%d lookups in %.2fs = %.2f MOPS\n", ops, el, float64(ops)/el/1e6)
}
