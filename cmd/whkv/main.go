// Command whkv runs the networked key-value store of Figure 12: a server
// hosting any of the registered indexes behind the batched binary
// protocol, plus a small client for ad-hoc operations and load testing.
//
// Usage:
//
//	whkv serve -addr 127.0.0.1:7070 -index wormhole
//	whkv serve -addr 127.0.0.1:7070 -index wormhole-sharded -shards 8
//	whkv serve -index wormhole-sharded -bounds "g,n,t"   # explicit shard boundaries
//	whkv serve -dir /var/lib/whkv -sync interval        # durable store (WAL + snapshots)
//	whkv serve -dir /var/lib/whkv2 -follow host:7070    # replication follower (read-only)
//	whkv serve -read-timeout 5m -write-timeout 30s -max-inflight 64  # hardened edges
//	whkv serve -metrics-addr 127.0.0.1:9090 -slow-op 50ms  # /metrics, /healthz, pprof, slow-op ring
//	whkv set   -addr 127.0.0.1:7070 -key a -val 1
//	whkv get   -addr 127.0.0.1:7070 -key a
//	whkv scan  -addr 127.0.0.1:7070 -key a -limit 10
//	whkv flush -addr 127.0.0.1:7070                     # fsync barrier on a durable server
//	whkv stat  -addr 127.0.0.1:7070                     # role, keys, WAL, replication lag
//	whkv bench -addr 127.0.0.1:7070 -keys 100000 -batch 800 -duration 2s
//
// A durable server is automatically a replication leader: followers
// subscribe to the same address the clients use. A follower serves reads
// (and rejects writes with StatusReadOnly) while it streams the leader's
// WAL; SIGUSR1 promotes it to a writable standalone store.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/repro/wormhole/internal/adapters"
	"github.com/repro/wormhole/internal/bench"
	"github.com/repro/wormhole/internal/index"
	"github.com/repro/wormhole/internal/netkv"
	"github.com/repro/wormhole/internal/repl"
	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/wal"
)

func main() {
	_ = adapters.Baselines() // link the registry
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "serve":
		serve(args)
	case "get", "set", "del", "scan", "flush":
		oneShot(cmd, args)
	case "stat":
		stat(args)
	case "bench":
		clientBench(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: whkv serve|get|set|del|scan|flush|stat|bench [flags]")
	os.Exit(2)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	name := fs.String("index", "wormhole", "index implementation")
	shards := fs.Int("shards", 0, "shard count for -index wormhole-sharded (default: min(GOMAXPROCS, 16))")
	bounds := fs.String("bounds", "", "comma-separated shard boundary keys for -index wormhole-sharded (overrides -shards; place them at your keyspace's quantiles, since the default uniform byte ranges put all-ASCII keys in one shard)")
	dir := fs.String("dir", "", "durable mode: persist to this directory (WAL + snapshots per shard; reopening recovers). Implies a sharded store; -index must be wormhole-sharded or unset")
	syncMode := fs.String("sync", "none", "durable mode sync policy: none, interval or always")
	segBytes := fs.Int("seg-bytes", 0, "durable mode: target snapshot segment size in bytes (0: 1MiB default); v2 snapshots split at this size so recovery decodes segments concurrently")
	decodeWorkers := fs.Int("decode-workers", 0, "durable mode: snapshot segment decode workers per shard at recovery (0: GOMAXPROCS)")
	snapV1 := fs.Bool("snap-v1", false, "durable mode: write monolithic v1 snapshots instead of v2 segments (both formats always recoverable)")
	follow := fs.String("follow", "", "follower mode: replicate from this leader address, serve reads (writes answer StatusReadOnly); SIGUSR1 promotes to standalone. Combine with -dir so restarts resume the leader's WAL tail instead of resyncing")
	connectTimeout := fs.Duration("connect-timeout", 0, "follower mode: keep retrying the first leader handshake this long before giving up and exiting non-zero (0: one attempt, fail fast)")
	autoPromote := fs.Bool("auto-promote", false, "follower mode: promote automatically when the leader goes silent for -heartbeat-timeout, bumping the replication epoch so the old leader is fenced on first contact")
	heartbeatTimeout := fs.Duration("heartbeat-timeout", 2*time.Second, "follower mode: leader silence that triggers -auto-promote")
	readTimeout := fs.Duration("read-timeout", 0, "drop a connection idle longer than this between batches (0: never)")
	writeTimeout := fs.Duration("write-timeout", 0, "drop a connection that cannot absorb a response within this (0: never)")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently executing request batches across all connections; excess connections queue (0: unlimited)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics, /healthz, /debug/pprof and /debug/slowops on this address (empty: no listener; metrics are still recorded)")
	slowOp := fs.Duration("slow-op", 100*time.Millisecond, "ops slower than this land in the slow-op ring (/debug/slowops and whkv stat)")
	fs.Parse(args)
	obs := newObservability(*slowOp)
	hardening := netkv.ServerOptions{
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		MaxInflight:  *maxInflight,
		Metrics:      obs.srv,
	}
	if *follow != "" {
		serveFollower(followerConfig{
			addr: *addr, leader: *follow, dir: *dir, syncMode: *syncMode,
			segBytes: *segBytes, decodeWorkers: *decodeWorkers, snapV1: *snapV1,
			connectTimeout: *connectTimeout, autoPromote: *autoPromote,
			heartbeatTimeout: *heartbeatTimeout, hardening: hardening,
			metricsAddr: *metricsAddr, obs: obs,
		})
		return
	}
	if *dir == "" && (*shards > 0 || *bounds != "") && *name != "wormhole-sharded" {
		// With -dir the store is always sharded, so -shards/-bounds apply
		// to it regardless of the (defaulted) -index value.
		fmt.Fprintf(os.Stderr, "whkv: -shards and -bounds require -index wormhole-sharded\n")
		os.Exit(2)
	}
	if *dir != "" && *name != "wormhole" && *name != "wormhole-sharded" {
		fmt.Fprintf(os.Stderr, "whkv: -dir serves a durable sharded wormhole; it cannot host -index %s\n", *name)
		os.Exit(2)
	}
	if *shards > 0 {
		shard.DefaultShards = *shards
	}
	parseBounds := func() *shard.Partitioner {
		var bs [][]byte
		for _, b := range strings.Split(*bounds, ",") {
			bs = append(bs, []byte(strings.TrimSpace(b)))
		}
		return shard.NewExplicit(bs)
	}
	var ix index.Index
	var durable *shard.Store
	served := *name
	switch {
	case *dir != "":
		policy, err := wal.ParsePolicy(*syncMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whkv:", err)
			os.Exit(2)
		}
		o := shard.Options{Dir: *dir, Durability: wal.Options{
			Sync:          policy,
			SegmentBytes:  *segBytes,
			DecodeWorkers: *decodeWorkers,
			SnapshotV1:    *snapV1,
			Metrics:       obs.wal,
		}}
		if *bounds != "" {
			o.Partitioner = parseBounds()
		}
		st, err := shard.Open(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whkv:", err)
			os.Exit(1)
		}
		fmt.Printf("whkv: recovered %d snapshot pairs + %d WAL records from %s\n",
			st.RecoveredPairs(), st.RecoveredRecords(), *dir)
		ix, durable = st, st
		served = fmt.Sprintf("durable wormhole-sharded (%d shards, sync=%s, replication leader)",
			st.NumShards(), policy)
	case *bounds != "":
		ix = shard.New(shard.Options{Partitioner: parseBounds()})
		served = "wormhole-sharded"
	default:
		info, ok := index.Lookup(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "whkv: unknown index %q\n", *name)
			os.Exit(2)
		}
		ix = info.New()
	}
	// A durable store doubles as a replication leader: followers subscribe
	// on the same address clients use.
	opts := hardening
	var src *repl.Source
	if durable != nil {
		src = repl.NewSource(durable)
		opts.Subscribe = src.ServeSubscriber
		opts.StatFill = src.FillStat
	}
	srv, err := netkv.ServeOpts(*addr, ix, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	obs.armIndex(ix)
	health := func() error { return nil }
	if st, ok := ix.(*shard.Store); ok {
		obs.armStore(st)
		health = storeHealth(st)
	}
	if src != nil {
		obs.armLeader(src.FillStat)
	}
	obs.serveDebug(*metricsAddr, health)
	fmt.Printf("whkv: serving %s on %s\n", served, srv.Addr())
	// Run until killed; on SIGINT/SIGTERM drain connections and, in
	// durable mode, flush and close the WALs so a clean shutdown loses
	// nothing even under -sync none.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("whkv: shutting down")
	if src != nil {
		// Subscriber streams hold their connection handlers; detach them
		// first or the server's drain would wait forever.
		src.Close()
	}
	srv.Close()
	if durable != nil {
		if err := durable.Close(); err != nil {
			// The sticky WAL error means acked writes may not have reached
			// stable storage: say which shards, then exit non-zero so
			// supervisors notice the data loss risk.
			fmt.Fprintln(os.Stderr, "whkv: closing store:", err)
			printDegraded(durable.Health())
			os.Exit(1)
		}
	}
}

// printDegraded reports each degraded shard's sticky failure to stderr.
func printDegraded(hs []wal.Health) {
	for i, h := range hs {
		if h.Degraded {
			fmt.Fprintf(os.Stderr, "whkv: shard %d degraded: %s (heal attempts: %d)\n",
				i, h.Err, h.HealAttempts)
		}
	}
}

// followerConfig bundles serveFollower's knobs.
type followerConfig struct {
	addr, leader, dir, syncMode string
	segBytes, decodeWorkers     int
	snapV1                      bool
	connectTimeout              time.Duration
	autoPromote                 bool
	heartbeatTimeout            time.Duration
	hardening                   netkv.ServerOptions
	metricsAddr                 string
	obs                         *observability
}

// serveFollower runs replication-follower mode: stream the leader's WAL
// into a local store, serve reads from it, reject writes, and promote to
// a writable standalone store on SIGUSR1 — or automatically on leader
// silence with -auto-promote, which bumps the replication epoch so the old
// leader is fenced on first contact with the new lineage.
func serveFollower(c followerConfig) {
	policy, err := wal.ParsePolicy(c.syncMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(2)
	}
	// Auto-promotion may fire from the follower's monitor goroutine before
	// the serving socket below exists; the promotion handler waits for it.
	var srvP atomic.Pointer[netkv.Server]
	srvReady := make(chan struct{})
	var autoPromoted atomic.Bool
	promotions := c.obs.reg.Counter("whkv_promotions_total",
		"Promotions of this follower to a writable leader.")
	o := repl.Options{
		Leader: c.leader,
		Dir:    c.dir,
		Durability: wal.Options{
			Sync:          policy,
			SegmentBytes:  c.segBytes,
			DecodeWorkers: c.decodeWorkers,
			SnapshotV1:    c.snapV1,
			Metrics:       c.obs.wal,
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "whkv: "+format+"\n", args...)
		},
	}
	if c.autoPromote {
		o.AutoPromote = true
		o.HeartbeatTimeout = c.heartbeatTimeout
		o.OnPromote = func(st *shard.Store) {
			<-srvReady
			if srv := srvP.Load(); srv != nil {
				srv.SetReadOnly(false)
			}
			autoPromoted.Store(true)
			promotions.Inc()
			fmt.Printf("whkv: leader %s silent for %v: auto-promoted to epoch %d (writes enabled)\n",
				c.leader, c.heartbeatTimeout, st.Epoch())
			// Best-effort fence of the old leader, should it still be alive
			// behind a partition: a direct FENCE closes the window before
			// replication-level contact would. Failure is fine — a dead
			// leader is fenced on its first contact with this lineage.
			if cl, err := netkv.Dial(c.leader); err == nil {
				cl.Timeout = 2 * time.Second
				if err := cl.Fence(st.Epoch()); err == nil {
					fmt.Printf("whkv: fenced old leader %s at epoch %d\n", c.leader, st.Epoch())
				}
				cl.Close()
			}
		}
	}
	// -connect-timeout: the first handshake may race the leader's own
	// startup (an init system bringing both up), so retry it rather than
	// failing fast — but never indefinitely, and exit non-zero when the
	// leader never materializes.
	deadline := time.Now().Add(c.connectTimeout)
	f, err := repl.Start(o)
	for err != nil && c.connectTimeout > 0 && time.Now().Before(deadline) {
		fmt.Fprintf(os.Stderr, "whkv: waiting for leader: %v\n", err)
		time.Sleep(500 * time.Millisecond)
		f, err = repl.Start(o)
	}
	if err != nil {
		close(srvReady)
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	st := f.Store()
	opts := c.hardening
	opts.ReadOnly = true
	opts.StatFill = f.FillStat
	srv, err := netkv.ServeOpts(c.addr, st, opts)
	if err != nil {
		close(srvReady)
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	srvP.Store(srv)
	close(srvReady)
	c.obs.armIndex(st)
	c.obs.armStore(st)
	c.obs.armFollower(f.FillStat)
	c.obs.serveDebug(c.metricsAddr, storeHealth(st))
	persisted := "volatile; resyncs on restart"
	if c.dir != "" {
		persisted = "durable in " + c.dir
	}
	promoteHow := "SIGUSR1 promotes"
	if c.autoPromote {
		promoteHow = fmt.Sprintf("auto-promote after %v of leader silence (SIGUSR1 forces it)", c.heartbeatTimeout)
	}
	fmt.Printf("whkv: following %s on %s (%d shards, %s); %s\n",
		c.leader, srv.Addr(), st.NumShards(), persisted, promoteHow)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1)
	promoted := false
	for s := range sig {
		if s == syscall.SIGUSR1 && !promoted && !autoPromoted.Load() {
			// Clean promotion: stop streaming, bump the epoch, then open
			// the store to writes. The process keeps serving without a
			// restart. Promote is idempotent against a racing
			// auto-promotion — exactly one epoch bump happens.
			if f.Promote() != nil {
				srv.SetReadOnly(false)
				promoted = true
				promotions.Inc()
				fmt.Printf("whkv: promoted to epoch %d (writes enabled, replication stopped)\n", st.Epoch())
			}
			continue
		}
		if s == syscall.SIGUSR1 {
			continue
		}
		break
	}
	fmt.Println("whkv: shutting down")
	srv.Close()
	// Close the follower first: it stops the auto-promote monitor, so the
	// promotion state is final when deciding who owns the store (a
	// promotion — manual or automatic — transferred ownership to us).
	err = f.Close()
	if promoted || autoPromoted.Load() {
		err = st.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv: closing store:", err)
		printDegraded(st.Health())
		os.Exit(1)
	}
}

// stat prints a server's OpStat document.
func stat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	fs.Parse(args)
	cl, err := netkv.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	defer cl.Close()
	st, err := cl.Stat()
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	fmt.Printf("role:      %s%s\n", st.Role, map[bool]string{true: " (read-only)"}[st.ReadOnly])
	if st.Epoch > 0 {
		fmt.Printf("epoch:     %d\n", st.Epoch)
	}
	if st.FencedBy > 0 {
		fmt.Printf("fenced:    by epoch %d (stale leader; writes answer StatusFenced)\n", st.FencedBy)
	}
	fmt.Printf("keys:      %d\n", st.Keys)
	if st.Shards > 0 {
		fmt.Printf("shards:    %d\n", st.Shards)
	}
	fmt.Printf("durable:   %v\n", st.Durable)
	if st.Durable {
		fmt.Printf("wal bytes: %s (%d)\n", humanBytes(st.WALBytes), st.WALBytes)
		fmt.Printf("gens:      %v\n", st.Gens)
	}
	if st.UptimeS > 0 || st.GoVersion != "" {
		fmt.Printf("uptime:    %v\n", time.Duration(st.UptimeS)*time.Second)
		fmt.Printf("runtime:   %s, %d goroutines, heap %s (sys %s), %d GCs\n",
			st.GoVersion, st.Goroutines,
			humanBytes(int64(st.HeapAllocBytes)), humanBytes(int64(st.HeapSysBytes)),
			st.GCCycles)
	}
	if st.SlowOps > 0 {
		fmt.Printf("slow ops:  %d traced (see /debug/slowops on the metrics listener)\n", st.SlowOps)
	}
	healthy := 0
	for _, h := range st.Health {
		if !h.Degraded {
			healthy++
		}
	}
	if len(st.Health) > 0 {
		fmt.Printf("health:    %d/%d shards ok\n", healthy, len(st.Health))
		for i, h := range st.Health {
			if h.Degraded {
				fmt.Printf("shard %-4d degraded: %s (heal attempts: %d)\n", i, h.Err, h.HealAttempts)
			}
		}
	}
	for _, fo := range st.Followers {
		lag := fmt.Sprintf("%d records", fo.LagRecords)
		if fo.LagRecords < 0 {
			lag = "spans a WAL rotation"
		}
		fmt.Printf("follower:  %s lag %s, last ack %v ago, %d snapshots sent\n",
			fo.Remote, lag, time.Duration(fo.AckAgeMS)*time.Millisecond, fo.SnapshotsSent)
	}
	if st.Role == "follower" {
		fmt.Printf("leader:    %s (connected: %v)\n", st.Leader, st.Connected)
		if st.LeaderEpoch > 0 {
			fmt.Printf("leader epoch: %d\n", st.LeaderEpoch)
		}
		if st.LagRecords != nil {
			if *st.LagRecords < 0 {
				fmt.Printf("lag:       spans a WAL rotation\n")
			} else {
				fmt.Printf("lag:       %d records\n", *st.LagRecords)
			}
		}
		fmt.Printf("applied:   %v\n", st.Applied)
		if st.SnapshotsApplied > 0 {
			fmt.Printf("snapshots: %d applied\n", st.SnapshotsApplied)
		}
	}
}

func oneShot(cmd string, args []string) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	key := fs.String("key", "", "key")
	val := fs.String("val", "", "value (set)")
	limit := fs.Int("limit", 10, "scan limit")
	fs.Parse(args)
	cl, err := netkv.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	defer cl.Close()
	switch cmd {
	case "get":
		cl.QueueGet([]byte(*key))
	case "set":
		cl.QueueSet([]byte(*key), []byte(*val))
	case "del":
		cl.QueueDel([]byte(*key))
	case "scan":
		cl.QueueScan([]byte(*key), *limit)
	case "flush":
		cl.QueueFlush()
	}
	rs, err := cl.Flush()
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	r := rs[0]
	switch cmd {
	case "get":
		if r.Status == netkv.StatusOK {
			fmt.Printf("%s\n", r.Val)
		} else {
			fmt.Println("(not found)")
		}
	case "set":
		switch r.Status {
		case netkv.StatusOK:
			fmt.Println("ok")
		case netkv.StatusReadOnly:
			fmt.Fprintln(os.Stderr, "whkv: server is a read-only follower; write to the leader")
			os.Exit(1)
		case netkv.StatusDegraded:
			fmt.Fprintln(os.Stderr, "whkv: shard is degraded (WAL write failing); refusing writes until it heals — see whkv stat")
			os.Exit(1)
		case netkv.StatusFenced:
			fmt.Fprintln(os.Stderr, "whkv: server is a fenced stale leader (a higher epoch exists); the write was NOT applied — resend it to the current leader (see whkv stat for both epochs)")
			os.Exit(1)
		default:
			fmt.Fprintln(os.Stderr, "whkv: set failed on the server")
			os.Exit(1)
		}
	case "del":
		switch r.Status {
		case netkv.StatusOK:
			fmt.Println("deleted")
		case netkv.StatusReadOnly:
			fmt.Fprintln(os.Stderr, "whkv: server is a read-only follower; write to the leader")
			os.Exit(1)
		case netkv.StatusDegraded:
			fmt.Fprintln(os.Stderr, "whkv: shard is degraded (WAL write failing); refusing writes until it heals — see whkv stat")
			os.Exit(1)
		case netkv.StatusFenced:
			fmt.Fprintln(os.Stderr, "whkv: server is a fenced stale leader (a higher epoch exists); the delete was NOT applied — resend it to the current leader (see whkv stat for both epochs)")
			os.Exit(1)
		default:
			fmt.Println("(not found)")
		}
	case "scan":
		for i := range r.Keys {
			fmt.Printf("%s = %s\n", r.Keys[i], r.Vals[i])
		}
	case "flush":
		switch r.Status {
		case netkv.StatusOK:
			fmt.Println("flushed")
		case netkv.StatusNotFound:
			fmt.Println("(server is volatile)")
		default:
			fmt.Fprintln(os.Stderr, "whkv: flush failed on the server (sticky WAL error; see whkv stat for per-shard health)")
			os.Exit(1)
		}
	}
}

func clientBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	keys := fs.Int("keys", 100_000, "keys to load before measuring")
	batch := fs.Int("batch", netkv.DefaultBatch, "requests per batch")
	dur := fs.Duration("duration", 2*time.Second, "measurement window")
	fs.Parse(args)
	cl, err := netkv.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	defer cl.Close()
	for i := 0; i < *keys; i++ {
		cl.QueueSet([]byte(fmt.Sprintf("bench:%08d", i)), []byte("v"))
		if cl.Pending() >= *batch {
			if _, err := cl.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "whkv:", err)
				os.Exit(1)
			}
		}
	}
	if _, err := cl.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "whkv:", err)
		os.Exit(1)
	}
	fmt.Printf("loaded %d keys; measuring GETs for %v (batch %d)\n", *keys, *dur, *batch)
	r := bench.NewRng(1)
	start := time.Now()
	ops := 0
	for time.Since(start) < *dur {
		for i := 0; i < *batch; i++ {
			cl.QueueGet([]byte(fmt.Sprintf("bench:%08d", r.Intn(*keys))))
		}
		rs, err := cl.Flush()
		if err != nil {
			fmt.Fprintln(os.Stderr, "whkv:", err)
			os.Exit(1)
		}
		for _, rp := range rs {
			if rp.Status != netkv.StatusOK {
				fmt.Fprintln(os.Stderr, "whkv: missing key during bench")
				os.Exit(1)
			}
		}
		ops += *batch
	}
	el := time.Since(start).Seconds()
	fmt.Printf("%d lookups in %.2fs = %.2f MOPS\n", ops, el, float64(ops)/el/1e6)
}
