package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/repro/wormhole/internal/index"
	"github.com/repro/wormhole/internal/metrics"
	"github.com/repro/wormhole/internal/netkv"
	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/wal"
)

// observability bundles one process's metrics surface: the registry, the
// slow-op ring, the netkv server bundle and the WAL bundle. Recording is
// always armed — it costs nanoseconds — while the HTTP listener only
// exists when -metrics-addr is set.
type observability struct {
	reg  *metrics.Registry
	slow *metrics.SlowLog
	srv  *netkv.ServerMetrics
	wal  *wal.Metrics
}

func newObservability(slowOp time.Duration) *observability {
	reg := metrics.NewRegistry()
	slow := metrics.NewSlowLog(128, slowOp)
	o := &observability{
		reg:  reg,
		slow: slow,
		srv:  netkv.NewServerMetrics(reg, slow),
		wal:  wal.NewMetrics(reg),
	}
	metrics.RegisterRuntime(reg, "whkv")
	start := time.Now()
	reg.GaugeFunc("whkv_uptime_seconds", "Seconds since process start.",
		func() float64 { return time.Since(start).Seconds() })
	return o
}

// armIndex registers the collectors every served index supports: the live
// key count and, where the index exposes it, QSBR reader lag.
func (o *observability) armIndex(ix index.Index) {
	o.reg.GaugeFunc("whkv_keys", "Live keys in the served index.",
		func() float64 { return float64(ix.Count()) })
	if q, ok := ix.(interface{ QSBRReaderLag() uint64 }); ok {
		o.reg.GaugeFunc("whkv_qsbr_reader_lag_epochs",
			"Grace-period epochs the slowest active reader trails the write side (any shard).",
			func() float64 { return float64(q.QSBRReaderLag()) })
	}
}

// armStore registers the sharded-store collectors: batch-path histograms,
// epoch/fencing gauges and — on durable stores — WAL size and the
// degraded-mode state machine.
func (o *observability) armStore(st *shard.Store) {
	st.SetBatchMetrics(shard.NewBatchMetrics(o.reg))
	o.reg.GaugeFunc("whkv_epoch", "Replication epoch of the served store.",
		func() float64 { return float64(st.Epoch()) })
	o.reg.GaugeFunc("whkv_fenced_by_epoch",
		"Higher epoch that fenced this store (0: not fenced).",
		func() float64 { return float64(st.FencedBy()) })
	if !st.Durable() {
		return
	}
	o.reg.GaugeFunc("whkv_wal_bytes",
		"Framed bytes in the active WAL generations (replay cost of a crash now).",
		func() float64 { return float64(st.WALBytes()) })
	o.reg.GaugeFunc("whkv_degraded_shards",
		"Shards refusing writes because their WAL append is failing.",
		func() float64 {
			n := 0
			for _, h := range st.Health() {
				if h.Degraded {
					n++
				}
			}
			return float64(n)
		})
	o.reg.CollectFunc("whkv_heal_attempts_total",
		"Background WAL heal probes per shard.", metrics.KindCounter,
		func(emit func([]string, float64)) {
			var total float64
			for _, h := range st.Health() {
				total += float64(h.HealAttempts)
			}
			emit(nil, total)
		})
}

// armLeader registers per-follower replication gauges, resolved at scrape
// time from the same FillStat snapshot `whkv stat` reads.
func (o *observability) armLeader(fill func(*netkv.Stat)) {
	o.reg.CollectFunc("whkv_follower_lag_records",
		"Records streamed to a follower but not yet acked (-1: spans a WAL rotation).",
		metrics.KindGauge, func(emit func([]string, float64)) {
			var st netkv.Stat
			fill(&st)
			for _, fo := range st.Followers {
				emit([]string{"remote", fo.Remote}, float64(fo.LagRecords))
			}
		})
	o.reg.CollectFunc("whkv_follower_ack_age_seconds",
		"Time since a follower's last ack.",
		metrics.KindGauge, func(emit func([]string, float64)) {
			var st netkv.Stat
			fill(&st)
			for _, fo := range st.Followers {
				emit([]string{"remote", fo.Remote}, float64(fo.AckAgeMS)/1e3)
			}
		})
	o.reg.CollectFunc("whkv_follower_snapshots_sent_total",
		"Shard snapshot catch-ups streamed to a follower.",
		metrics.KindCounter, func(emit func([]string, float64)) {
			var st netkv.Stat
			fill(&st)
			for _, fo := range st.Followers {
				emit([]string{"remote", fo.Remote}, float64(fo.SnapshotsSent))
			}
		})
}

// armFollower registers the follower-side replication gauges.
func (o *observability) armFollower(fill func(*netkv.Stat)) {
	o.reg.CollectFunc("whkv_repl_lag_records",
		"Records behind the leader's WAL end (-1: spans a rotation, uncountable).",
		metrics.KindGauge, func(emit func([]string, float64)) {
			var st netkv.Stat
			fill(&st)
			if st.LagRecords != nil {
				emit(nil, float64(*st.LagRecords))
			}
		})
	o.reg.CollectFunc("whkv_repl_connected",
		"1 while the leader stream is up.",
		metrics.KindGauge, func(emit func([]string, float64)) {
			var st netkv.Stat
			fill(&st)
			if st.Connected {
				emit(nil, 1)
			} else {
				emit(nil, 0)
			}
		})
	o.reg.CollectFunc("whkv_repl_snapshots_applied_total",
		"Shard snapshot catch-ups applied from the leader.",
		metrics.KindCounter, func(emit func([]string, float64)) {
			var st netkv.Stat
			fill(&st)
			emit(nil, float64(st.SnapshotsApplied))
		})
	o.reg.CollectFunc("whkv_leader_epoch",
		"Highest leader epoch this follower has observed.",
		metrics.KindGauge, func(emit func([]string, float64)) {
			var st netkv.Stat
			fill(&st)
			emit(nil, float64(st.LeaderEpoch))
		})
}

// serveDebug exposes /metrics, /healthz, /debug/slowops and /debug/pprof
// on their own listener when -metrics-addr is set.
func (o *observability) serveDebug(addr string, health func() error) {
	if addr == "" {
		return
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whkv: metrics listener:", err)
		os.Exit(1)
	}
	go http.Serve(ln, metrics.DebugMux(o.reg, o.slow, health))
	fmt.Printf("whkv: metrics on http://%s/metrics (pprof /debug/pprof, slow ops /debug/slowops)\n",
		ln.Addr())
}

// storeHealth derives /healthz from the store's failure state machines: a
// fenced stale leader or a degraded shard reports unhealthy (503).
func storeHealth(st *shard.Store) func() error {
	return func() error {
		if by := st.FencedBy(); by > 0 {
			return fmt.Errorf("fenced by epoch %d (stale leader)", by)
		}
		degraded := 0
		for _, h := range st.Health() {
			if h.Degraded {
				degraded++
			}
		}
		if degraded > 0 {
			return fmt.Errorf("%d shard(s) degraded (WAL write failing)", degraded)
		}
		return nil
	}
}

// humanBytes renders n in binary units for human-facing output.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
