// Root-level benchmarks: one testing.B family per table and figure of the
// paper's evaluation (§4), at Go-benchmark scale. cmd/whbench runs the same
// experiments at configurable scale with the paper's table layouts; see
// README.md for how to run them. Keyset sizes here are kept small
// enough that `go test -bench=.` finishes in minutes; pass
// -benchtime/-count to sharpen numbers.
package wormhole_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/repro/wormhole/internal/adapters"
	"github.com/repro/wormhole/internal/bench"
	"github.com/repro/wormhole/internal/index"
	"github.com/repro/wormhole/internal/keyset"
	"github.com/repro/wormhole/internal/netkv"
)

const benchKeys = 100_000

var keysetCache = map[string][][]byte{}

func loadKeyset(b *testing.B, name string) [][]byte {
	b.Helper()
	if ks, ok := keysetCache[name]; ok {
		return ks
	}
	cfg := &bench.Config{Keys: benchKeys, Seed: 42}
	cfg.Normalize()
	ks := cfg.Keyset(name)
	keysetCache[name] = ks
	return ks
}

var indexCache = map[string]index.Index{}

func loadIndex(b *testing.B, ixName, ksName string) index.Index {
	b.Helper()
	id := ixName + "/" + ksName
	if ix, ok := indexCache[id]; ok {
		return ix
	}
	ix := bench.BuildIndex(ixName, loadKeyset(b, ksName))
	indexCache[id] = ix
	return ix
}

func benchLookup(b *testing.B, ixName, ksName string) {
	keys := loadKeyset(b, ksName)
	ix := loadIndex(b, ixName, ksName)
	r := bench.NewRng(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ix.Get(keys[r.Intn(len(keys))]); !ok {
			b.Fatal("loaded key missing")
		}
	}
}

// BenchmarkTable1_KeysetGen regenerates the Table 1 keysets (the workload
// substrate itself).
func BenchmarkTable1_KeysetGen(b *testing.B) {
	for _, spec := range keyset.Table1() {
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				keys := spec.Gen(2000, int64(i))
				if len(keys) != 2000 {
					b.Fatal("short keyset")
				}
			}
		})
	}
}

// BenchmarkFig09_LookupParallel is the thread-scaling experiment: run with
// -cpu=1,2,4,8,16 to sweep worker counts on the Az1 keyset.
func BenchmarkFig09_LookupParallel(b *testing.B) {
	for _, name := range []string{"skiplist", "btree", "art", "masstree", "wormhole", "wormhole-unsafe"} {
		b.Run(name, func(b *testing.B) {
			keys := loadKeyset(b, "Az1")
			ix := loadIndex(b, name, "Az1")
			var seq atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				r := bench.NewRng(seq.Add(1))
				for pb.Next() {
					ix.Get(keys[r.Intn(len(keys))])
				}
			})
		})
	}
}

// BenchmarkFig10_Lookup covers the keyset-by-index lookup matrix.
func BenchmarkFig10_Lookup(b *testing.B) {
	for _, ks := range bench.KeysetNames {
		for _, name := range adapters.Baselines() {
			b.Run(ks+"/"+name, func(b *testing.B) { benchLookup(b, name, ks) })
		}
	}
}

// BenchmarkFig11_Ablation measures the cumulative §3 optimization ladder.
func BenchmarkFig11_Ablation(b *testing.B) {
	for _, name := range adapters.AblationOrder {
		b.Run(name, func(b *testing.B) { benchLookup(b, name, "Az1") })
	}
}

// BenchmarkFig12_NetworkedLookup measures batched GETs over TCP loopback.
func BenchmarkFig12_NetworkedLookup(b *testing.B) {
	for _, name := range []string{"btree", "wormhole"} {
		b.Run(name, func(b *testing.B) {
			keys := loadKeyset(b, "Az1")
			srv, err := netkv.Serve("127.0.0.1:0", loadIndex(b, name, "Az1"))
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			cl, err := netkv.Dial(srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			r := bench.NewRng(7)
			batch := netkv.DefaultBatch
			b.ResetTimer()
			for done := 0; done < b.N; {
				n := batch
				if rem := b.N - done; rem < n {
					n = rem
				}
				for i := 0; i < n; i++ {
					cl.QueueGet(keys[r.Intn(len(keys))])
				}
				if _, err := cl.Flush(); err != nil {
					b.Fatal(err)
				}
				done += n
			}
		})
	}
}

// BenchmarkFig13_VsCuckoo compares ordered Wormhole with the unordered
// Cuckoo hash table on point lookups.
func BenchmarkFig13_VsCuckoo(b *testing.B) {
	for _, ks := range []string{"Az1", "Url", "K3", "K10"} {
		for _, name := range []string{"wormhole", "cuckoo"} {
			b.Run(ks+"/"+name, func(b *testing.B) { benchLookup(b, name, ks) })
		}
	}
}

// BenchmarkFig14_AnchorLength measures the Kshort/Klong sensitivity at a
// representative 64-byte key length.
func BenchmarkFig14_AnchorLength(b *testing.B) {
	const n = benchKeys / 4
	sets := map[string][][]byte{
		"Kshort64":  keyset.GenKshort(64, n, 42),
		"Klong64":   keyset.GenKlong(64, n, 42),
		"Kshort512": keyset.GenKshort(512, n/4, 42),
		"Klong512":  keyset.GenKlong(512, n/4, 42),
	}
	for _, ksName := range []string{"Kshort64", "Klong64", "Kshort512", "Klong512"} {
		keys := sets[ksName]
		for _, name := range []string{"wormhole", "cuckoo"} {
			b.Run(ksName+"/"+name, func(b *testing.B) {
				ix := bench.BuildIndex(name, keys)
				r := bench.NewRng(7)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ix.Get(keys[r.Intn(len(keys))])
				}
			})
		}
	}
}

// BenchmarkFig15_Insert measures insertions into an initially empty index.
func BenchmarkFig15_Insert(b *testing.B) {
	for _, ks := range []string{"Az1", "Url", "K3"} {
		keys := loadKeyset(b, ks)
		for _, name := range adapters.Baselines() {
			b.Run(ks+"/"+name, func(b *testing.B) {
				info, _ := index.Lookup(name)
				var ix index.Index
				for i := 0; i < b.N; i++ {
					if i%len(keys) == 0 {
						b.StopTimer()
						ix = info.New() // fresh index per pass over the keyset
						b.StartTimer()
					}
					k := keys[i%len(keys)]
					ix.Set(k, k)
				}
			})
		}
	}
}

// BenchmarkFig16_Memory reports bytes/key as the benchmark metric.
func BenchmarkFig16_Memory(b *testing.B) {
	for _, ks := range []string{"Az1", "Url", "K3"} {
		keys := loadKeyset(b, ks)
		for _, name := range adapters.Baselines() {
			b.Run(ks+"/"+name, func(b *testing.B) {
				var fp int64
				for i := 0; i < b.N; i++ {
					ix := bench.BuildIndex(name, keys)
					fp = ix.Footprint()
				}
				b.ReportMetric(float64(fp)/float64(len(keys)), "bytes/key")
			})
		}
	}
}

// BenchmarkFig17_Mixed measures the mixed lookup/insert workload for the
// two thread-safe indexes at the paper's three insert ratios.
func BenchmarkFig17_Mixed(b *testing.B) {
	keys := loadKeyset(b, "Az1")
	half := len(keys) / 2
	for _, name := range []string{"masstree", "wormhole"} {
		for _, pct := range []int{5, 50, 95} {
			b.Run(fmt.Sprintf("%s/insert%02d", name, pct), func(b *testing.B) {
				ix := bench.BuildIndex(name, keys[:half])
				pool := keys[half:]
				var cursor atomic.Int64
				r := bench.NewRng(7)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if r.Intn(100) < pct {
						j := int(cursor.Add(1)-1) % len(pool)
						ix.Set(pool[j], pool[j])
					} else {
						ix.Get(keys[r.Intn(half)])
					}
				}
			})
		}
	}
}

// BenchmarkFig18_Range measures seek-plus-100-key scans (ops = scans).
func BenchmarkFig18_Range(b *testing.B) {
	for _, ks := range []string{"Az1", "Url", "K3"} {
		keys := loadKeyset(b, ks)
		for _, name := range []string{"skiplist", "btree", "masstree", "wormhole"} {
			b.Run(ks+"/"+name, func(b *testing.B) {
				ix := loadIndex(b, name, ks).(index.Ordered)
				r := bench.NewRng(7)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cnt := 0
					ix.Scan(keys[r.Intn(len(keys))], func(_, _ []byte) bool {
						cnt++
						return cnt < 100
					})
				}
			})
		}
	}
}

// BenchmarkAblation_LeafCap sweeps the leaf capacity design choice.
func BenchmarkAblation_LeafCap(b *testing.B) {
	keys := loadKeyset(b, "Az1")
	for _, leafCap := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("cap%d", leafCap), func(b *testing.B) {
			ix := bench.NewWormholeLeafCap(leafCap)
			for _, k := range keys {
				ix.Set(k, k)
			}
			r := bench.NewRng(7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Get(keys[r.Intn(len(keys))])
			}
		})
	}
}

// BenchmarkAblation_GracePeriod isolates the §2.5 concurrency machinery:
// splits that must wait out QSBR grace periods under reader load.
func BenchmarkAblation_GracePeriod(b *testing.B) {
	for _, readers := range []int{0, 4} {
		b.Run(fmt.Sprintf("readers%d", readers), func(b *testing.B) {
			ix := bench.BuildIndex("wormhole", nil)
			stop := make(chan struct{})
			pin := []byte("pin")
			ix.Set(pin, pin)
			for g := 0; g < readers; g++ {
				go func() {
					for {
						select {
						case <-stop:
							return
						default:
							ix.Get(pin)
						}
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := []byte(fmt.Sprintf("gp-%09d", i))
				ix.Set(k, k)
			}
			b.StopTimer()
			close(stop)
			time.Sleep(time.Millisecond)
		})
	}
}
