// URLStore: long-key indexing in the style of the paper's Url keyset
// (MemeTracker URLs, ~82 B average). Long shared prefixes are the
// stress case for ordered indexes — tries pay O(L) per lookup, and
// comparison-based trees pay long memcmps — while Wormhole's anchors
// stay near the shortest distinguishing prefix.
//
// The example implements a tiny analytics service: per-site page counts
// and lexicographic neighborhoods, all on one ordered index.
package main

import (
	"fmt"

	wormhole "github.com/repro/wormhole"
	"github.com/repro/wormhole/internal/keyset"
)

func main() {
	idx := wormhole.New()

	urls := keyset.GenURL(20000, 1)
	for i, u := range urls {
		idx.Set(u, []byte(fmt.Sprintf("%d", i%1000))) // fake hit counters
	}
	fmt.Printf("indexed %d URLs\n", idx.Count())

	// Per-site page counts via prefix scans — no per-site structures.
	sites := []string{
		"http://www.nytimes.com/",
		"http://news.bbc.co.uk/",
		"http://en.wikipedia.org/",
		"http://www.youtube.com/",
	}
	for _, site := range sites {
		n := 0
		idx.Scan([]byte(site), func(k, v []byte) bool {
			if len(k) < len(site) || string(k[:len(site)]) != site {
				return false
			}
			n++
			return true
		})
		fmt.Printf("%-28s %6d pages\n", site, n)
	}

	// Lexicographic neighborhood of an arbitrary (likely absent) URL:
	// the "find keys near X" query that hash indexes cannot answer.
	probe := []byte("http://www.nytimes.com/2008/election-")
	fmt.Printf("five URLs at or after %q:\n", probe)
	keys, _ := idx.RangeAsc(probe, 5)
	for _, k := range keys {
		fmt.Printf("  %s\n", k)
	}

	// The anchor economics that make long keys cheap here: anchors are
	// the shortest separators, far shorter than the 80+ byte keys.
	st := idx.Stats()
	fmt.Printf("\nindex shape: %d leaves, avg anchor %.1f B (keys avg ~%d B), max anchor %d B\n",
		st.Leaves, st.AvgAnchorLen, 82, st.MaxAnchorLen)
	fmt.Printf("meta items %d, footprint %.1f MB\n",
		st.MetaItems, float64(idx.Footprint())/1e6)
}
