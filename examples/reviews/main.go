// Reviews: composite-key indexing in the style of the paper's Az1 keyset
// (Amazon review metadata, item-user-time). One ordered index supports
// three query shapes without secondary structures:
//
//   - all reviews for an item            (prefix scan on item)
//   - one user's review of an item       (point lookup)
//   - an item's reviews in a time window (bounded range scan)
//
// This is the workload class the paper's introduction motivates: big-data
// services that need range queries on composite keys, where a hash table
// cannot serve and O(log N) trees become the bottleneck.
package main

import (
	"fmt"
	"math/rand"

	wormhole "github.com/repro/wormhole"
)

func key(item, user string, ts int64) []byte {
	return []byte(fmt.Sprintf("%s-%s-%010d", item, user, ts))
}

func main() {
	idx := wormhole.NewConfig(wormhole.Config{LeafCap: 128})
	r := rand.New(rand.NewSource(7))

	// Load synthetic reviews: 200 items, 5000 reviews, Zipf-ish item reuse.
	items := make([]string, 200)
	for i := range items {
		items[i] = fmt.Sprintf("B%09d", i)
	}
	const reviews = 5000
	for i := 0; i < reviews; i++ {
		item := items[int(r.ExpFloat64()*20)%len(items)]
		user := fmt.Sprintf("A%013d", r.Intn(3000))
		ts := int64(1100000000 + r.Intn(300000000))
		rating := byte('1' + r.Intn(5))
		idx.Set(key(item, user, ts), []byte{rating})
	}
	fmt.Printf("loaded %d reviews across %d items\n", idx.Count(), len(items))

	// Query 1: every review of the hottest item (prefix scan).
	hot := items[0]
	prefix := []byte(hot + "-")
	count, sum := 0, 0
	idx.Scan(prefix, func(k, v []byte) bool {
		if len(k) < len(prefix) || string(k[:len(prefix)]) != string(prefix) {
			return false
		}
		count++
		sum += int(v[0] - '0')
		return true
	})
	fmt.Printf("item %s: %d reviews, average rating %.2f\n",
		hot, count, float64(sum)/float64(count))

	// Query 2: the 5 most recent reviews of that item (descending scan
	// from the end of the item's key range).
	fmt.Println("most recent reviews:")
	upper := []byte(hot + ".") // '.' sorts right after '-'
	shown := 0
	idx.ScanDesc(upper, func(k, v []byte) bool {
		if string(k[:len(prefix)]) != string(prefix) {
			return false
		}
		fmt.Printf("  %s rating=%c\n", k, v[0])
		shown++
		return shown < 5
	})

	// Query 3: reviews of the item within a timestamp window. The window
	// bounds need not exist in the index (§2.2's "Brown".."John" case).
	lo := key(hot, "", 1150000000)
	hi := key(hot, "\xff", 1200000000)
	window := 0
	idx.Scan(lo, func(k, v []byte) bool {
		if string(k) > string(hi) {
			return false
		}
		window++
		return true
	})
	fmt.Printf("reviews in window: %d\n", window)

	// Structure report: composite keys share item prefixes, so anchors
	// stay short and the meta-trie stays small relative to the data.
	st := idx.Stats()
	fmt.Printf("index shape: %d leaves, %d meta items, avg anchor %.1f B, footprint %.1f KB\n",
		st.Leaves, st.MetaItems, st.AvgAnchorLen, float64(idx.Footprint())/1024)
}
