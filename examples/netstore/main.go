// NetStore: the networked key-value store of Figure 12 in miniature — a
// Wormhole-backed server on TCP loopback and a batching client, the HERD
// substitution described in docs/ARCHITECTURE.md. Run it to see how request batching
// (the paper uses batches of 800) amortizes network cost until the
// host-side index is the bottleneck again.
package main

import (
	"fmt"
	"time"

	"github.com/repro/wormhole/internal/adapters"
	"github.com/repro/wormhole/internal/index"
	"github.com/repro/wormhole/internal/netkv"
)

func main() {
	_ = adapters.Baselines() // link the index registry
	info, _ := index.Lookup("wormhole")
	srv, err := netkv.Serve("127.0.0.1:0", info.New())
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	fmt.Printf("wormhole KV server on %s\n", srv.Addr())

	cl, err := netkv.Dial(srv.Addr())
	if err != nil {
		panic(err)
	}
	defer cl.Close()

	// Load 50k keys in batches.
	const n = 50000
	for i := 0; i < n; i++ {
		cl.QueueSet([]byte(fmt.Sprintf("user:%06d", i)), []byte(fmt.Sprintf("profile-%d", i)))
		if cl.Pending() == netkv.DefaultBatch {
			if _, err := cl.Flush(); err != nil {
				panic(err)
			}
		}
	}
	if _, err := cl.Flush(); err != nil {
		panic(err)
	}
	fmt.Printf("loaded %d keys over the wire\n", n)

	// Point lookups at two batch sizes, showing the batching effect.
	for _, batch := range []int{1, 800} {
		start := time.Now()
		ops := 0
		for time.Since(start) < 300*time.Millisecond {
			for i := 0; i < batch; i++ {
				cl.QueueGet([]byte(fmt.Sprintf("user:%06d", (ops+i)*7919%n)))
			}
			rs, err := cl.Flush()
			if err != nil {
				panic(err)
			}
			for _, r := range rs {
				if r.Status != netkv.StatusOK {
					panic("lost key over the wire")
				}
			}
			ops += batch
		}
		el := time.Since(start).Seconds()
		fmt.Printf("batch=%-4d  %8.0f lookups/s\n", batch, float64(ops)/el)
	}

	// Range query over the wire.
	cl.QueueScan([]byte("user:000100"), 3)
	rs, err := cl.Flush()
	if err != nil {
		panic(err)
	}
	fmt.Println("scan user:000100 limit 3:")
	for i := range rs[0].Keys {
		fmt.Printf("  %s = %s\n", rs[0].Keys[i], rs[0].Vals[i])
	}
}
