// Quickstart: the basic Wormhole API — point operations, range scans, and
// the iterator — on the running example from the paper's Figure 1.
package main

import (
	"fmt"

	wormhole "github.com/repro/wormhole"
)

func main() {
	idx := wormhole.New()

	// The twelve keys of the paper's Figure 1.
	names := []string{
		"Aaron", "Abbe", "Andrew", "Austin", "Denice", "Jacob",
		"James", "Jason", "John", "Joseph", "Julian", "Justin",
	}
	for i, n := range names {
		idx.Set([]byte(n), []byte(fmt.Sprintf("employee-%02d", i)))
	}
	fmt.Printf("indexed %d keys\n", idx.Count())

	// Point lookup.
	if v, ok := idx.Get([]byte("John")); ok {
		fmt.Printf("Get(John)      = %s\n", v)
	}
	if _, ok := idx.Get([]byte("Brown")); !ok {
		fmt.Println("Get(Brown)     = not found (as expected)")
	}

	// Range query: everyone from "Brown" up to (not including) "John" —
	// the §2.2 example of a range whose endpoints are absent.
	fmt.Println("range [Brown, John):")
	idx.Scan([]byte("Brown"), func(k, v []byte) bool {
		if string(k) >= "John" {
			return false
		}
		fmt.Printf("  %-8s %s\n", k, v)
		return true
	})

	// Prefix query: all keys starting with "J".
	fmt.Println("prefix J:")
	keys, _ := idx.RangeAsc([]byte("J"), 100)
	for _, k := range keys {
		if k[0] != 'J' {
			break
		}
		fmt.Printf("  %s\n", k)
	}

	// Iterator, seeded mid-keyspace.
	fmt.Println("iterate from Denice:")
	it := idx.Iter([]byte("Denice"))
	for it.Next() {
		fmt.Printf("  %s\n", it.Key())
	}

	// Updates and deletes.
	idx.Set([]byte("John"), []byte("promoted"))
	v, _ := idx.Get([]byte("John"))
	fmt.Printf("after update   = %s\n", v)
	idx.Del([]byte("Jacob"))
	fmt.Printf("after delete   = %d keys\n", idx.Count())

	if k, _, ok := idx.Min(); ok {
		fmt.Printf("smallest key   = %s\n", k)
	}
	if k, _, ok := idx.Max(); ok {
		fmt.Printf("largest key    = %s\n", k)
	}

	st := idx.Stats()
	fmt.Printf("structure: %d leaves, %d meta items, max anchor %d bytes\n",
		st.Leaves, st.MetaItems, st.MaxAnchorLen)
}
