module github.com/repro/wormhole

go 1.24
