// Package wormhole provides a fast thread-safe ordered key-value index for
// in-memory data management, implementing Wormhole (Wu, Ni, Jiang —
// EuroSys 2019).
//
// Wormhole keeps all keys in a doubly-linked list of sorted leaf nodes and
// indexes the leaves with a hash table containing every prefix of every
// leaf anchor, so a point lookup costs O(log L) hash probes in the key
// length L — independent of the number of keys — while range queries
// remain a linear scan from the first match. Compared with the O(log N)
// of B+ trees and skip lists or the O(L) of tries, lookups on large stores
// are typically several times faster (paper: up to 8.4x over a skip list,
// 4.9x over a B+ tree, 4.3x over ART, 6.6x over Masstree).
//
// Basic usage:
//
//	idx := wormhole.New()
//	idx.Set([]byte("James"), []byte("v1"))
//	v, ok := idx.Get([]byte("James"))
//	idx.Scan([]byte("J"), func(k, v []byte) bool { return true })
//
// All operations are safe for concurrent use. For single-threaded
// workloads, Config{Unsafe: true} removes the locking and RCU machinery
// (the paper's "Wormhole-unsafe", about 8% faster).
//
// Key and value slices are retained by reference and must not be mutated
// after Set. Values returned by Get and the slices passed to Scan
// callbacks are owned by the index and must not be mutated either.
package wormhole

import (
	"github.com/repro/wormhole/internal/core"
)

// Config tunes an Index. The zero value selects the paper's defaults:
// 128-key leaves, thread-safe, all §3 optimizations enabled.
type Config struct {
	// LeafCap bounds keys per leaf node (default 128).
	LeafCap int
	// MergeSize: adjacent leaves whose combined size falls below this are
	// merged after deletions (default 2*LeafCap/3).
	MergeSize int
	// Unsafe disables all concurrency control; the caller must serialize
	// every operation. This is the paper's "Wormhole-unsafe" build.
	Unsafe bool
	// DisableOptimizations turns off the §3 fast paths (tag matching,
	// incremental hashing, hash-ordered leaf search, direct positioning),
	// yielding the paper's "BaseWormhole". Primarily for benchmarks.
	DisableOptimizations bool
	// ShortAnchors picks leaf split points that minimize anchor length
	// (the optimization the paper's §2.3 leaves as future work). It
	// shrinks the meta-trie on prefix-heavy keysets at a small split-time
	// cost. Off by default to match the paper's configuration.
	ShortAnchors bool
}

// Index is a Wormhole ordered index. Create one with New or NewConfig.
type Index struct {
	t *core.Wormhole
}

// New returns an empty thread-safe index with default configuration.
func New() *Index { return NewConfig(Config{}) }

// NewConfig returns an empty index with the given configuration.
func NewConfig(c Config) *Index {
	opt := core.DefaultOptions()
	if c.LeafCap > 0 {
		opt.LeafCap = c.LeafCap
	}
	if c.MergeSize > 0 {
		opt.MergeSize = c.MergeSize
	}
	opt.Concurrent = !c.Unsafe
	if c.DisableOptimizations {
		opt.TagMatching = false
		opt.IncHashing = false
		opt.SortByTag = false
		opt.DirectPos = false
	}
	opt.ShortAnchors = c.ShortAnchors
	return &Index{t: core.New(opt)}
}

// BulkLoad populates a freshly created index from strictly sorted unique
// keys in one pass — much faster than repeated Set calls. vals may be nil
// or parallel to keys. Not safe to run concurrently with other operations.
func (ix *Index) BulkLoad(keys, vals [][]byte) error { return ix.t.BulkLoad(keys, vals) }

// Get returns the value stored under key.
func (ix *Index) Get(key []byte) ([]byte, bool) { return ix.t.Get(key) }

// GetBatch looks up every key in one call: vals[i], found[i] answer
// keys[i], exactly as len(keys) sequential Gets would. The whole batch
// shares one reader registration and runs through a memory-parallel
// pipeline that keeps several keys' hash-table probes in flight at once,
// so large batches (16+) resolve substantially faster than a Get loop.
// Duplicate and missing keys are fine; value slices follow the same
// ownership rules as Get.
func (ix *Index) GetBatch(keys [][]byte) (vals [][]byte, found []bool) {
	vals = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	ix.t.GetBatch(keys, vals, found, nil)
	return vals, found
}

// Set inserts key or replaces its value.
func (ix *Index) Set(key, val []byte) { ix.t.Set(key, val) }

// Del removes key, reporting whether it was present.
func (ix *Index) Del(key []byte) bool { return ix.t.Del(key) }

// Count returns the number of keys in the index.
func (ix *Index) Count() int64 { return ix.t.Count() }

// Scan visits keys >= start in ascending order until fn returns false.
// A nil start scans from the smallest key. fn runs without internal locks
// held, so it may call back into the index.
func (ix *Index) Scan(start []byte, fn func(key, val []byte) bool) {
	ix.t.Scan(start, fn)
}

// ScanDesc visits keys <= start in descending order until fn returns
// false. A nil start scans from the largest key.
func (ix *Index) ScanDesc(start []byte, fn func(key, val []byte) bool) {
	ix.t.ScanDesc(start, fn)
}

// RangeAsc collects up to limit key/value pairs with key >= start — the
// paper's RangeSearchAscending.
func (ix *Index) RangeAsc(start []byte, limit int) (keys, vals [][]byte) {
	return ix.t.RangeAsc(start, limit)
}

// RangeDesc collects up to limit key/value pairs with key <= start,
// descending (nil start: from the largest key).
func (ix *Index) RangeDesc(start []byte, limit int) (keys, vals [][]byte) {
	return ix.t.RangeDesc(start, limit)
}

// Min returns the smallest key and its value.
func (ix *Index) Min() (key, val []byte, ok bool) { return ix.t.Min() }

// Max returns the largest key and its value.
func (ix *Index) Max() (key, val []byte, ok bool) { return ix.t.Max() }

// Iter returns a pull-style iterator positioned before the first key >=
// start (nil start means the smallest key), in ascending order.
func (ix *Index) Iter(start []byte) *Iterator {
	return &Iterator{it: ix.t.NewIter(start)}
}

// IterDesc returns a pull-style iterator positioned before the first key
// <= start (nil start means the largest key), in descending order.
func (ix *Index) IterDesc(start []byte) *Iterator {
	return &Iterator{it: ix.t.NewIterDesc(start)}
}

// Reader is an amortized read handle: it registers with the index's RCU
// machinery once and reuses that registration for every Get, so a
// goroutine that performs many lookups (a server connection, a worker)
// pays the per-reader setup once instead of per operation. Between calls
// the registration is quiescent, so an idle Reader never delays writers.
// A Reader must not be used from multiple goroutines at once; call Close
// when done with it.
type Reader struct {
	r *core.Reader
}

// Reader returns a read handle bound to this index.
func (ix *Index) Reader() *Reader { return &Reader{r: ix.t.NewReader()} }

// Get returns the value stored under key.
func (r *Reader) Get(key []byte) ([]byte, bool) { return r.r.Get(key) }

// GetBatch looks up every key in one call through the handle's amortized
// registration and the memory-parallel pipeline; vals[i], found[i]
// answer keys[i], exactly as len(keys) sequential Gets would.
func (r *Reader) GetBatch(keys [][]byte) (vals [][]byte, found []bool) {
	vals = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	r.r.GetBatch(keys, vals, found, nil)
	return vals, found
}

// Scan visits keys >= start in ascending order until fn returns false,
// through the handle's amortized registration (no per-scan reader setup).
func (r *Reader) Scan(start []byte, fn func(key, val []byte) bool) { r.r.Scan(start, fn) }

// ScanDesc visits keys <= start in descending order until fn returns
// false, through the handle's amortized registration.
func (r *Reader) ScanDesc(start []byte, fn func(key, val []byte) bool) { r.r.ScanDesc(start, fn) }

// Close releases the handle's reader registration. The Reader must not
// be used afterwards.
func (r *Reader) Close() { r.r.Close() }

// Iterator walks the index in key order (ascending from Iter, descending
// from IterDesc). It holds no locks between Next calls: the cursor
// resumes by walking the index's leaf list from its retained position
// under a long-lived reader registration that is parked between calls.
// An Iterator must not be used from multiple goroutines at once; call
// Close when abandoning it before exhaustion (a fully drained iterator
// releases its registration automatically).
type Iterator struct {
	it *core.Iter
}

// Next advances the iterator, reporting whether a pair is available.
func (i *Iterator) Next() bool { return i.it.Next() }

// Key returns the current key; valid after Next reports true.
func (i *Iterator) Key() []byte { return i.it.Key() }

// Value returns the current value; valid after Next reports true.
func (i *Iterator) Value() []byte { return i.it.Value() }

// Close releases the iterator's reader registration; idempotent.
func (i *Iterator) Close() { i.it.Close() }

// Stats describes the index's internal shape.
type Stats = core.Stats

// Stats returns structural statistics. Call it on a quiescent index.
func (ix *Index) Stats() Stats { return ix.t.Stats() }

// Footprint returns the approximate heap bytes held by the index,
// including stored keys and values.
func (ix *Index) Footprint() int64 { return ix.t.Footprint() }
