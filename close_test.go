package wormhole

import (
	"fmt"
	"testing"
)

// Lifecycle audit: every Close in the public surface is idempotent, an
// exhausted iterator's implicit close tolerates an explicit one, and
// closing one handle never disturbs another.

func TestReaderDoubleClose(t *testing.T) {
	ix := New()
	ix.Set([]byte("a"), []byte("1"))
	r := ix.Reader()
	if _, ok := r.Get([]byte("a")); !ok {
		t.Fatal("Reader.Get missed")
	}
	r.Close()
	r.Close() // must be a no-op, not a second slot release

	// A closed reader must not have poisoned the index for other readers.
	r2 := ix.Reader()
	defer r2.Close()
	if _, ok := r2.Get([]byte("a")); !ok {
		t.Fatal("index broken after double close")
	}
}

func TestShardedReaderDoubleClose(t *testing.T) {
	sx := NewSharded(ShardedConfig{Shards: 3})
	sx.Set([]byte("a"), []byte("1"))
	r := sx.Reader()
	r.Get([]byte("a"))
	r.Close()
	r.Close()
	r2 := sx.Reader()
	defer r2.Close()
	if _, ok := r2.Get([]byte("a")); !ok {
		t.Fatal("sharded store broken after double close")
	}
}

func TestIteratorCloseAfterExhaustion(t *testing.T) {
	ix := New()
	for i := 0; i < 300; i++ {
		ix.Set([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	it := ix.Iter(nil)
	n := 0
	for it.Next() {
		n++
	}
	if n != 300 {
		t.Fatalf("iterator visited %d keys, want 300", n)
	}
	// Exhaustion already released the registration; these must be no-ops.
	it.Close()
	it.Close()
	if it.Next() {
		t.Fatal("Next after exhaustion+Close returned true")
	}

	// Descending twin.
	itd := ix.IterDesc(nil)
	for itd.Next() {
	}
	itd.Close()

	// Abandoned mid-iteration, then double-closed.
	ab := ix.Iter(nil)
	if !ab.Next() {
		t.Fatal("fresh iterator empty")
	}
	ab.Close()
	ab.Close()

	// Writers must still make progress (no leaked reader registration
	// stalling grace periods).
	for i := 0; i < 300; i++ {
		ix.Set([]byte(fmt.Sprintf("post%03d", i)), []byte("v"))
	}
	if ix.Count() != 600 {
		t.Fatalf("Count = %d, want 600", ix.Count())
	}
}

func TestShardedDoubleCloseVolatile(t *testing.T) {
	sx := NewSharded(ShardedConfig{Shards: 2})
	sx.Set([]byte("x"), []byte("1"))
	if err := sx.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sx.Close(); err != nil {
		t.Fatal(err)
	}
	// Volatile Close is a pure no-op: the store remains fully usable.
	if _, ok := sx.Get([]byte("x")); !ok {
		t.Fatal("volatile store unusable after Close")
	}
}
