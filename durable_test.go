package wormhole

import (
	"fmt"
	"testing"
	"time"

	"github.com/repro/wormhole/internal/wal"
)

func TestOpenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, DurableConfig{Shards: 2, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		db.Set([]byte(fmt.Sprintf("user:%04d", i)), []byte(fmt.Sprintf("profile-%d", i)))
	}
	db.Del([]byte("user:0042"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Count() != 499 {
		t.Fatalf("recovered %d keys, want 499", db2.Count())
	}
	if _, ok := db2.Get([]byte("user:0042")); ok {
		t.Fatal("deleted key came back")
	}
	if v, ok := db2.Get([]byte("user:0007")); !ok || string(v) != "profile-7" {
		t.Fatalf("user:0007 = %q,%v", v, ok)
	}
}

func TestOpenSnapshotSpeedsRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, DurableConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		db.Set([]byte(fmt.Sprintf("k%05d", i)), []byte("v"))
	}
	if err := db.Snapshot(); err != nil {
		t.Fatal(err)
	}
	db.Set([]byte("tail"), []byte("t"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.RecoveredPairs() != 1000 {
		t.Fatalf("snapshot restored %d pairs, want 1000", db2.RecoveredPairs())
	}
	if db2.RecoveredRecords() != 1 {
		t.Fatalf("WAL tail replayed %d records, want 1", db2.RecoveredRecords())
	}
	if db2.Count() != 1001 {
		t.Fatalf("recovered %d keys, want 1001", db2.Count())
	}
}

func TestOpenSyncIntervalAndReaders(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, DurableConfig{Sync: SyncInterval, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	db.Set([]byte("a"), []byte("1"))
	// The full read surface works on a durable store.
	r := db.Reader()
	if v, ok := r.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("Reader.Get = %q,%v", v, ok)
	}
	r.Close()
	r.Close() // double close is part of the lifecycle contract
	keys, _ := db.RangeAsc(nil, 10)
	if len(keys) != 1 {
		t.Fatalf("RangeAsc found %d keys", len(keys))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestShardedCloseWithInFlightScan(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, DurableConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		db.Set([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	// Start an iterator, close the store mid-scan, finish the scan: the
	// in-memory index outlives the durable lifecycle.
	it := db.s.NewReader()
	seen := 0
	it.Scan(nil, func(k, v []byte) bool {
		seen++
		if seen == 10 {
			if err := db.Close(); err != nil {
				t.Errorf("Close mid-scan: %v", err)
			}
		}
		return true
	})
	it.Close()
	if seen != 300 {
		t.Fatalf("scan after Close visited %d keys, want 300", seen)
	}
	// Post-close mutations apply in memory but are not persisted.
	db.Set([]byte("late"), []byte("x"))
	if _, ok := db.Get([]byte("late")); !ok {
		t.Fatal("post-close Set not visible in memory")
	}

	db2, err := Open(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, ok := db2.Get([]byte("late")); ok {
		t.Fatal("post-close Set was persisted")
	}
	if db2.Count() != 300 {
		t.Fatalf("recovered %d keys, want 300", db2.Count())
	}
}

func TestSyncPolicyMappingStable(t *testing.T) {
	// DurableConfig.Sync is cast numerically onto the internal WAL policy;
	// this pins the correspondence so neither enum can drift silently.
	if int(SyncNone) != int(wal.SyncNone) ||
		int(SyncInterval) != int(wal.SyncInterval) ||
		int(SyncAlways) != int(wal.SyncAlways) {
		t.Fatal("public SyncPolicy values diverge from internal/wal")
	}
}
