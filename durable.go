package wormhole

import (
	"time"

	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/wal"
)

// SyncPolicy selects when a durable store forces logged mutations to
// stable storage.
type SyncPolicy int

const (
	// SyncNone never fsyncs on the write path; the OS flushes at its
	// leisure. Fastest; a power failure loses everything since the last
	// Flush or Snapshot (a clean Close loses nothing).
	SyncNone SyncPolicy = iota
	// SyncInterval fsyncs from a background flusher every SyncInterval,
	// bounding loss to one interval.
	SyncInterval
	// SyncAlways fsyncs before Set/Del return; concurrent writers share
	// one fsync (group commit). Every acknowledged operation survives.
	SyncAlways
)

// DurableConfig tunes a durable store opened with Open. The zero value
// selects one shard per available CPU (capped at 16), uniform boundaries,
// and SyncNone.
type DurableConfig struct {
	// Shards is the number of partitions. Ignored when dir already holds a
	// store: the persisted MANIFEST pins the partitioning, since routing
	// must be byte-identical across restarts.
	Shards int
	// Sample optionally supplies keys representative of the workload for
	// quantile boundaries; ignored on reopen, like Shards.
	Sample [][]byte
	// Sync selects the durability policy (default SyncNone).
	Sync SyncPolicy
	// SyncInterval is the background flush cadence under
	// SyncPolicy(SyncInterval); default 100ms.
	SyncInterval time.Duration
}

// DB is a durable Sharded store: the same ordered point/scan/batch
// surface, plus a persistence lifecycle. Every committed Set and Del is
// appended to a per-shard write-ahead log (group-committed per the
// configured SyncPolicy), and Snapshot writes key-ordered snapshot files
// that truncate the logs. Reopening the same directory recovers the
// newest valid snapshot through the bulkload fast path, then replays the
// WAL tail, stopping cleanly at a torn or corrupt record — after any
// crash, the recovered state is a prefix of the committed operations.
type DB struct {
	Sharded
}

// Open creates or reopens a durable store rooted at dir. Shards recover
// in parallel; Close (or at least Flush) should be called before process
// exit under SyncNone to push buffered records to disk.
func Open(dir string, c DurableConfig) (*DB, error) {
	st, err := shard.Open(shard.Options{
		Shards: c.Shards,
		Sample: c.Sample,
		Dir:    dir,
		Durability: wal.Options{
			Sync:     wal.SyncPolicy(c.Sync),
			Interval: c.SyncInterval,
		},
	})
	if err != nil {
		return nil, err
	}
	return &DB{Sharded{s: st}}, nil
}

// Flush forces every logged mutation to stable storage, regardless of
// the sync policy. Because Set and Del cannot report I/O errors, a
// logging failure (e.g. a full disk) is sticky and surfaces here (and on
// Close): a non-nil error means mutations since that point may not be
// recoverable until a successful Snapshot supersedes the damaged log.
// Durable applications should Flush at their consistency points and
// treat its error as a durability alarm.
func (db *DB) Flush() error { return db.s.Flush() }

// Snapshot writes a key-ordered snapshot of every shard and truncates its
// write-ahead log; recovery cost drops to one bulkload plus whatever tail
// accumulates afterwards. Safe to call while serving traffic.
func (db *DB) Snapshot() error { return db.s.Snapshot() }

// RecoveredPairs reports how many pairs the snapshots restored at Open;
// RecoveredRecords how many WAL records were replayed after them.
func (db *DB) RecoveredPairs() int { return db.s.RecoveredPairs() }

// RecoveredRecords reports the WAL records replayed at Open.
func (db *DB) RecoveredRecords() int { return db.s.RecoveredRecords() }
