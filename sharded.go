package wormhole

import (
	"github.com/repro/wormhole/internal/shard"
)

// ShardedConfig tunes a Sharded store. The zero value selects one shard
// per available CPU (capped at 16) with uniform byte-range boundaries.
type ShardedConfig struct {
	// Shards is the number of partitions.
	Shards int
	// Sample optionally supplies keys representative of the workload;
	// shard boundaries are then placed at sampled quantiles (shortened to
	// minimal distinguishing prefixes, like leaf anchors) instead of
	// uniform byte ranges, balancing skewed keyspaces.
	Sample [][]byte
}

// Sharded is a range-partitioned store composing several independent
// Wormhole indexes, each with its own writer lock and RCU domain, so
// structural writers on different shards never contend. It offers the
// same ordered point/scan surface as Index plus batched operations that
// group keys by shard to amortize routing and synchronization and to
// execute disjoint shards concurrently. All operations are safe for
// concurrent use; buffer aliasing rules match Index.
type Sharded struct {
	s *shard.Store
}

// NewSharded returns an empty sharded store.
func NewSharded(c ShardedConfig) *Sharded {
	return &Sharded{s: shard.New(shard.Options{Shards: c.Shards, Sample: c.Sample})}
}

// NumShards returns the number of partitions.
func (sx *Sharded) NumShards() int { return sx.s.NumShards() }

// ShardOf returns the partition that owns key.
func (sx *Sharded) ShardOf(key []byte) int { return sx.s.ShardOf(key) }

// Get returns the value stored under key.
func (sx *Sharded) Get(key []byte) ([]byte, bool) { return sx.s.Get(key) }

// Set inserts key or replaces its value.
func (sx *Sharded) Set(key, val []byte) { sx.s.Set(key, val) }

// Del removes key, reporting whether it was present.
func (sx *Sharded) Del(key []byte) bool { return sx.s.Del(key) }

// Count returns the number of keys across all shards.
func (sx *Sharded) Count() int64 { return sx.s.Count() }

// Footprint returns the approximate heap bytes held across all shards.
func (sx *Sharded) Footprint() int64 { return sx.s.Footprint() }

// Scan visits keys >= start in ascending order until fn returns false,
// stitching per-shard scans in key order across shard boundaries.
func (sx *Sharded) Scan(start []byte, fn func(key, val []byte) bool) {
	sx.s.Scan(start, fn)
}

// ScanDesc visits keys <= start in descending order until fn returns
// false, stitching per-shard scans across shard boundaries. A nil start
// scans from the largest key.
func (sx *Sharded) ScanDesc(start []byte, fn func(key, val []byte) bool) {
	sx.s.ScanDesc(start, fn)
}

// RangeAsc collects up to limit key/value pairs with key >= start,
// ascending.
func (sx *Sharded) RangeAsc(start []byte, limit int) (keys, vals [][]byte) {
	return sx.s.RangeAsc(start, limit)
}

// RangeDesc collects up to limit key/value pairs with key <= start,
// descending (nil start: from the largest key).
func (sx *Sharded) RangeDesc(start []byte, limit int) (keys, vals [][]byte) {
	return sx.s.RangeDesc(start, limit)
}

// GetBatch looks up keys grouped by shard; vals[i], found[i] answer
// keys[i]. Large batches execute disjoint shards concurrently.
func (sx *Sharded) GetBatch(keys [][]byte) (vals [][]byte, found []bool) {
	return sx.s.GetBatch(keys)
}

// SetBatch inserts or replaces keys[i] -> vals[i] grouped by shard;
// duplicate keys within one batch apply in batch order.
func (sx *Sharded) SetBatch(keys, vals [][]byte) { sx.s.SetBatch(keys, vals) }

// DelBatch removes keys grouped by shard, reporting presence per key.
func (sx *Sharded) DelBatch(keys [][]byte) []bool { return sx.s.DelBatch(keys) }

// ShardCounts reports the per-shard key counts, for balance diagnostics.
func (sx *Sharded) ShardCounts() []int64 { return sx.s.ShardCounts() }

// Close releases the store's durable resources (for stores opened with
// Open): it flushes and closes every shard's write-ahead log. In-flight
// readers, scans and iterators over the in-memory index are unaffected
// and may complete after Close; mutations issued after Close still apply
// in memory but are no longer logged. Idempotent, and a no-op on volatile
// stores created with NewSharded.
func (sx *Sharded) Close() error { return sx.s.Close() }

// ShardedReader is an amortized read handle over every shard: each
// shard's RCU reader registration is claimed once and reused across
// operations. It must not be used from multiple goroutines at once; call
// Close when done with it.
type ShardedReader struct {
	r *shard.Reader
}

// Reader returns a read handle bound to this store.
func (sx *Sharded) Reader() *ShardedReader { return &ShardedReader{r: sx.s.NewReader()} }

// Get returns the value stored under key, through the owning shard's
// pinned reader.
func (r *ShardedReader) Get(key []byte) ([]byte, bool) { return r.r.Get(key) }

// GetBatch looks up keys grouped by shard through the pinned readers;
// vals[i], found[i] answer keys[i].
func (r *ShardedReader) GetBatch(keys [][]byte) (vals [][]byte, found []bool) {
	return r.r.GetBatch(keys)
}

// Scan visits keys >= start in ascending order until fn returns false,
// through the handle's pinned per-shard readers.
func (r *ShardedReader) Scan(start []byte, fn func(key, val []byte) bool) {
	r.r.Scan(start, fn)
}

// ScanDesc visits keys <= start in descending order until fn returns
// false, through the handle's pinned per-shard readers.
func (r *ShardedReader) ScanDesc(start []byte, fn func(key, val []byte) bool) {
	r.r.ScanDesc(start, fn)
}

// Close releases every per-shard reader registration.
func (r *ShardedReader) Close() { r.r.Close() }
