// Package index defines the common interface the benchmark harness, the
// networked KV store and the integration tests use to drive Wormhole and
// every baseline the paper compares against (§4): B+ tree, skip list, ART,
// Masstree and the Cuckoo hash table.
package index

// Index is the point-operation surface shared by all seven index builds.
type Index interface {
	// Get returns the value stored under key.
	Get(key []byte) ([]byte, bool)
	// Set inserts or replaces key. Key and value buffers are retained.
	Set(key, val []byte)
	// Del removes key, reporting whether it was present.
	Del(key []byte) bool
	// Count returns the number of keys.
	Count() int64
	// Footprint returns the approximate heap bytes held by the index
	// structure, including key/value bytes (Figure 16's accounting).
	Footprint() int64
}

// Ordered is implemented by the ordered indexes (everything but Cuckoo).
type Ordered interface {
	Index
	// Scan visits keys >= start ascending until fn returns false. A nil
	// start scans from the smallest key.
	Scan(start []byte, fn func(key, val []byte) bool)
}

// OrderedDesc is implemented by ordered indexes that can also scan
// downward (Wormhole and the sharded store).
type OrderedDesc interface {
	Ordered
	// ScanDesc visits keys <= start descending until fn returns false. A
	// nil start scans from the largest key.
	ScanDesc(start []byte, fn func(key, val []byte) bool)
}

// Batcher is implemented by partitioned stores (internal/shard) that
// execute operations grouped by shard. Batches amortize routing and
// per-shard synchronization and let callers — notably the netkv server's
// per-shard worker pool — run disjoint shards concurrently. Slices are
// positional: result i answers keys[i], whatever shard it landed in.
type Batcher interface {
	Index
	// NumShards returns the number of independent partitions.
	NumShards() int
	// ShardOf returns the partition that owns key.
	ShardOf(key []byte) int
	// GetBatch looks up keys grouped by shard.
	GetBatch(keys [][]byte) (vals [][]byte, found []bool)
	// SetBatch inserts or replaces keys[i] -> vals[i] grouped by shard;
	// duplicate keys within a batch apply in batch order.
	SetBatch(keys, vals [][]byte)
	// DelBatch removes keys grouped by shard, reporting presence per key.
	DelBatch(keys [][]byte) []bool
}

// ReadHandle is an amortized read session. A handle claims whatever
// per-reader synchronization state the index needs (for Wormhole, one
// QSBR slot) once, and reuses it for every Get, so a long-lived goroutine
// — a server connection, a benchmark worker — pays the acquisition once
// instead of per operation. A handle must not be used concurrently; Close
// releases its state.
type ReadHandle interface {
	Get(key []byte) ([]byte, bool)
	Close()
}

// ScanHandle is a ReadHandle that can also serve ordered scans through
// its amortized per-reader state (Wormhole's lock-free scan path on a
// pinned slot). The netkv server serves range operations through the
// connection's handle when it supports this.
type ScanHandle interface {
	ReadHandle
	// Scan visits keys >= start ascending until fn returns false.
	Scan(start []byte, fn func(key, val []byte) bool)
	// ScanDesc visits keys <= start descending until fn returns false.
	ScanDesc(start []byte, fn func(key, val []byte) bool)
}

// BatchHandle is a ReadHandle that can answer several point lookups in
// one call through its amortized per-reader state — for Wormhole, one
// reader announcement for the whole batch and the memory-parallel
// pipelined lookup. Slices are positional: vals[i], found[i] answer
// keys[i], and the call must be equivalent to len(keys) sequential Gets.
// The netkv server routes runs of consecutive point reads through the
// connection's or worker's handle when it supports this.
type BatchHandle interface {
	ReadHandle
	GetBatch(keys [][]byte) (vals [][]byte, found []bool)
}

// Durable is implemented by stores with a persistence lifecycle (the
// durable sharded store). Volatile indexes simply don't implement it.
type Durable interface {
	// Flush forces every logged mutation to stable storage, regardless of
	// the store's sync policy.
	Flush() error
	// Snapshot writes a key-ordered snapshot and truncates the log.
	Snapshot() error
	// Close flushes and stops logging; in-memory reads may continue.
	Close() error
}

// ReadPinner is implemented by indexes whose readers can amortize
// per-operation synchronization across a session (Wormhole's pinned QSBR
// readers). Callers that hold a goroutine for many operations should
// prefer a handle; others fall back to plain Get.
type ReadPinner interface {
	NewReadHandle() ReadHandle
}

// Info describes one registered index implementation.
type Info struct {
	Name string
	// ThreadSafe indexes accept concurrent mutations (Wormhole, Masstree).
	// The others are evaluated read-only multi-threaded or single-writer,
	// exactly as the paper does for skip list, B+ tree and ART.
	ThreadSafe bool
	// RangeScan reports Ordered support (false only for Cuckoo; the
	// paper's ART build also lacks one, but ours provides it).
	RangeScan bool
	New       func() Index
}

var registry []Info

// Register adds an implementation; every registration lives in the init
// function of internal/adapters, which importers link for its side
// effects.
func Register(info Info) { registry = append(registry, info) }

// All returns every registered implementation in registration order.
func All() []Info { return append([]Info(nil), registry...) }

// Lookup finds a registered implementation by name.
func Lookup(name string) (Info, bool) {
	for _, in := range registry {
		if in.Name == name {
			return in, true
		}
	}
	return Info{}, false
}
