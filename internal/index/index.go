// Package index defines the common interface the benchmark harness, the
// networked KV store and the integration tests use to drive Wormhole and
// every baseline the paper compares against (§4): B+ tree, skip list, ART,
// Masstree and the Cuckoo hash table.
package index

// Index is the point-operation surface shared by all seven index builds.
type Index interface {
	// Get returns the value stored under key.
	Get(key []byte) ([]byte, bool)
	// Set inserts or replaces key. Key and value buffers are retained.
	Set(key, val []byte)
	// Del removes key, reporting whether it was present.
	Del(key []byte) bool
	// Count returns the number of keys.
	Count() int64
	// Footprint returns the approximate heap bytes held by the index
	// structure, including key/value bytes (Figure 16's accounting).
	Footprint() int64
}

// Ordered is implemented by the ordered indexes (everything but Cuckoo).
type Ordered interface {
	Index
	// Scan visits keys >= start ascending until fn returns false. A nil
	// start scans from the smallest key.
	Scan(start []byte, fn func(key, val []byte) bool)
}

// Info describes one registered index implementation.
type Info struct {
	Name string
	// ThreadSafe indexes accept concurrent mutations (Wormhole, Masstree).
	// The others are evaluated read-only multi-threaded or single-writer,
	// exactly as the paper does for skip list, B+ tree and ART.
	ThreadSafe bool
	// RangeScan reports Ordered support (false only for Cuckoo; the
	// paper's ART build also lacks one, but ours provides it).
	RangeScan bool
	New       func() Index
}

var registry []Info

// Register adds an implementation; called from init functions in the
// bench harness wiring.
func Register(info Info) { registry = append(registry, info) }

// All returns every registered implementation in registration order.
func All() []Info { return append([]Info(nil), registry...) }

// Lookup finds a registered implementation by name.
func Lookup(name string) (Info, bool) {
	for _, in := range registry {
		if in.Name == name {
			return in, true
		}
	}
	return Info{}, false
}
