// Package keyset generates the evaluation keysets of Table 1. The paper
// uses the public Amazon review metadata and MemeTracker URL datasets plus
// five fixed-length random keysets; those raw datasets are not available
// offline, so Az1, Az2 and Url are synthesized with the same structural
// properties — key format, average length, and shared-prefix profile —
// which are what drive an index's behaviour (anchor lengths, trie depth,
// comparison costs). The substitution is documented in docs/ARCHITECTURE.md.
//
// All generators are deterministic for a given seed, so every experiment
// is reproducible run-to-run.
package keyset

import (
	"fmt"
	"math/rand"
)

// Spec names one keyset and its generator.
type Spec struct {
	Name        string
	Description string
	// Gen produces n distinct keys. Keys own their buffers.
	Gen func(n int, seed int64) [][]byte
}

// Table1 lists the eight keysets in the paper's Table 1 order.
func Table1() []Spec {
	return []Spec{
		{"Az1", "Amazon-style metadata, item-user-time (~40 B)", GenAz1},
		{"Az2", "Amazon-style metadata, user-item-time (~40 B)", GenAz2},
		{"Url", "MemeTracker-style URLs (~82 B avg)", GenURL},
		{"K3", "random keys, 8 B", GenRandom(8)},
		{"K4", "random keys, 16 B", GenRandom(16)},
		{"K6", "random keys, 64 B", GenRandom(64)},
		{"K8", "random keys, 256 B", GenRandom(256)},
		{"K10", "random keys, 1024 B", GenRandom(1024)},
	}
}

// Lookup returns the Spec with the given name.
func Lookup(name string) (Spec, bool) {
	for _, s := range Table1() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// itemID renders an Amazon-ASIN-like item identifier (10 chars).
func itemID(r *rand.Rand, pool int) string {
	return fmt.Sprintf("B%09d", r.Intn(pool))
}

// userID renders an Amazon-like user identifier (14 chars).
func userID(r *rand.Rand, pool int) string {
	const alpha = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	id := make([]byte, 14)
	id[0] = 'A'
	v := r.Intn(pool)
	for i := 1; i < 14; i++ {
		id[i] = alpha[(v+i*7)%len(alpha)]
		v = v/len(alpha) + r.Intn(4)
	}
	return string(id)
}

// reviewTime renders a unix timestamp (10 digits), the review-time field.
func reviewTime(r *rand.Rand) string {
	return fmt.Sprintf("%010d", 1000000000+r.Intn(400000000))
}

// GenAz1 builds item-user-time composites: many keys share an item prefix
// (reviews cluster on popular products), mirroring the original dataset's
// ordering sensitivity that distinguishes Az1 from Az2 in Figures 10/16.
func GenAz1(n int, seed int64) [][]byte {
	r := rand.New(rand.NewSource(seed))
	itemPool := n/20 + 10
	keys := make([][]byte, 0, n)
	seen := make(map[string]bool, n)
	zipf := rand.NewZipf(r, 1.2, 8, uint64(itemPool-1))
	for len(keys) < n {
		item := fmt.Sprintf("B%09d", zipf.Uint64())
		k := fmt.Sprintf("%s-%s-%s", item, userID(r, n), reviewTime(r))
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, []byte(k))
	}
	return keys
}

// GenAz2 builds user-item-time composites: the leading field is the
// high-entropy user ID, so adjacent keys share much shorter prefixes.
func GenAz2(n int, seed int64) [][]byte {
	r := rand.New(rand.NewSource(seed))
	itemPool := n/20 + 10
	keys := make([][]byte, 0, n)
	seen := make(map[string]bool, n)
	zipf := rand.NewZipf(r, 1.2, 8, uint64(itemPool-1))
	for len(keys) < n {
		item := fmt.Sprintf("B%09d", zipf.Uint64())
		k := fmt.Sprintf("%s-%s-%s", userID(r, n), item, reviewTime(r))
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, []byte(k))
	}
	return keys
}

var urlHosts = []string{
	"http://www.nytimes.com/2008/",
	"http://news.bbc.co.uk/2/hi/",
	"http://blog.myspace.com/index.cfm?fuseaction=blog.view&friendId=",
	"http://www.youtube.com/watch?v=",
	"http://en.wikipedia.org/wiki/",
	"http://www.cnn.com/2008/POLITICS/",
	"http://www.huffingtonpost.com/2008/09/",
	"http://digg.com/political_opinion/",
}

var urlWords = []string{
	"election", "market", "crisis", "debate", "senate", "press", "media",
	"report", "global", "energy", "health", "policy", "finance", "sports",
	"science", "culture", "opinion", "analysis", "breaking", "update",
}

// GenURL builds MemeTracker-style URLs: a small host pool gives long
// shared prefixes (the paper measured ~40 B average anchors on Url), and
// word-path tails bring the average length to ~82 B.
func GenURL(n int, seed int64) [][]byte {
	r := rand.New(rand.NewSource(seed))
	keys := make([][]byte, 0, n)
	seen := make(map[string]bool, n)
	for len(keys) < n {
		host := urlHosts[r.Intn(len(urlHosts))]
		k := host
		for len(k) < 55+r.Intn(22) {
			k += urlWords[r.Intn(len(urlWords))] + "-"
		}
		k += fmt.Sprintf("%06d.html", r.Intn(1000000))
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, []byte(k))
	}
	return keys
}

// GenRandom returns a generator of fixed-length uniformly random keys
// (keysets K3..K10).
func GenRandom(length int) func(n int, seed int64) [][]byte {
	return func(n int, seed int64) [][]byte {
		r := rand.New(rand.NewSource(seed))
		keys := make([][]byte, 0, n)
		seen := make(map[string]bool, n)
		for len(keys) < n {
			k := make([]byte, length)
			r.Read(k)
			if seen[string(k)] {
				continue
			}
			seen[string(k)] = true
			keys = append(keys, k)
		}
		return keys
	}
}

// GenKshort builds Figure 14's Kshort: fixed-length fully random keys, so
// adjacent keys diverge immediately and anchors stay short.
func GenKshort(length, n int, seed int64) [][]byte {
	return GenRandom(length)(n, seed)
}

// GenKlong builds Figure 14's Klong: the first length-4 bytes are the
// filler token '0' and only the last 4 bytes carry entropy, so anchors
// must grow to nearly the key length.
func GenKlong(length, n int, seed int64) [][]byte {
	if length < 5 {
		length = 5
	}
	r := rand.New(rand.NewSource(seed))
	keys := make([][]byte, 0, n)
	seen := make(map[string]bool, n)
	for len(keys) < n {
		k := make([]byte, length)
		for i := 0; i < length-4; i++ {
			k[i] = '0'
		}
		r.Read(k[length-4:])
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		keys = append(keys, k)
	}
	return keys
}

// Stats summarizes a keyset for the Table 1 report.
type Stats struct {
	Keys   int
	AvgLen float64
	Bytes  int64
}

// Summarize computes keyset statistics.
func Summarize(keys [][]byte) Stats {
	var total int64
	for _, k := range keys {
		total += int64(len(k))
	}
	s := Stats{Keys: len(keys), Bytes: total}
	if len(keys) > 0 {
		s.AvgLen = float64(total) / float64(len(keys))
	}
	return s
}
