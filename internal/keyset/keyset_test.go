package keyset

import (
	"bytes"
	"strings"
	"testing"
)

func TestDeterminism(t *testing.T) {
	for _, spec := range Table1() {
		a := spec.Gen(200, 42)
		b := spec.Gen(200, 42)
		if len(a) != 200 || len(b) != 200 {
			t.Fatalf("%s: wrong count", spec.Name)
		}
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("%s: nondeterministic at %d", spec.Name, i)
			}
		}
		c := spec.Gen(200, 43)
		same := 0
		for i := range a {
			if bytes.Equal(a[i], c[i]) {
				same++
			}
		}
		if same == 200 {
			t.Fatalf("%s: seed has no effect", spec.Name)
		}
	}
}

func TestUniqueness(t *testing.T) {
	for _, spec := range Table1() {
		keys := spec.Gen(2000, 1)
		seen := map[string]bool{}
		for _, k := range keys {
			if seen[string(k)] {
				t.Fatalf("%s: duplicate key %q", spec.Name, k)
			}
			seen[string(k)] = true
		}
	}
}

func TestShapesMatchTable1(t *testing.T) {
	az1 := Summarize(GenAz1(2000, 1))
	if az1.AvgLen < 30 || az1.AvgLen > 50 {
		t.Fatalf("Az1 avg len %.1f, want ~40", az1.AvgLen)
	}
	url := Summarize(GenURL(2000, 1))
	if url.AvgLen < 70 || url.AvgLen > 100 {
		t.Fatalf("Url avg len %.1f, want ~82", url.AvgLen)
	}
	for _, c := range []struct {
		name string
		want int
	}{{"K3", 8}, {"K4", 16}, {"K6", 64}, {"K8", 256}, {"K10", 1024}} {
		spec, _ := Lookup(c.name)
		keys := spec.Gen(50, 1)
		for _, k := range keys {
			if len(k) != c.want {
				t.Fatalf("%s key length %d, want %d", c.name, len(k), c.want)
			}
		}
	}
}

func TestAz1SharesItemPrefixes(t *testing.T) {
	keys := GenAz1(3000, 7)
	// Zipf-reused item IDs must make many keys share the leading field.
	prefixes := map[string]int{}
	for _, k := range keys {
		prefixes[string(k[:10])]++
	}
	max := 0
	for _, n := range prefixes {
		if n > max {
			max = n
		}
	}
	if max < 20 {
		t.Fatalf("hottest item has %d keys; expected heavy reuse", max)
	}
	// Az2 leads with user IDs: leading 10-byte prefixes are near-unique.
	keys2 := GenAz2(3000, 7)
	prefixes2 := map[string]int{}
	for _, k := range keys2 {
		prefixes2[string(k[:10])]++
	}
	if len(prefixes2) < len(keys2)/2 {
		t.Fatalf("Az2 leading prefixes too clustered: %d distinct", len(prefixes2))
	}
}

func TestURLStructure(t *testing.T) {
	for _, k := range GenURL(500, 3) {
		if !strings.HasPrefix(string(k), "http") {
			t.Fatalf("URL key %q lacks scheme", k)
		}
	}
}

func TestKshortKlong(t *testing.T) {
	short := GenKshort(64, 500, 9)
	long := GenKlong(64, 500, 9)
	for i := range short {
		if len(short[i]) != 64 || len(long[i]) != 64 {
			t.Fatal("wrong lengths")
		}
	}
	// Klong keys must share the 60-byte filler prefix.
	filler := long[0][:60]
	for _, k := range long {
		if !bytes.Equal(k[:60], filler) {
			t.Fatal("Klong keys do not share the filler prefix")
		}
	}
	// Kshort adjacent sorted keys should share only tiny prefixes.
	if Summarize(short).AvgLen != 64 {
		t.Fatal("bad avg")
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("Az1"); !ok {
		t.Fatal("Az1 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("phantom keyset")
	}
}
