package skiplist

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/repro/wormhole/internal/indextest"
)

func TestBasic(t *testing.T) {
	l := New()
	for i := 0; i < 1000; i++ {
		l.Set([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if l.Count() != 1000 {
		t.Fatalf("Count = %d", l.Count())
	}
	for i := 0; i < 1000; i++ {
		v, ok := l.Get([]byte(fmt.Sprintf("k%04d", i)))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get k%04d failed", i)
		}
	}
	l.Set([]byte("k0000"), []byte("updated"))
	if v, _ := l.Get([]byte("k0000")); string(v) != "updated" {
		t.Fatal("update failed")
	}
	if l.Count() != 1000 {
		t.Fatal("update changed count")
	}
}

func TestDelete(t *testing.T) {
	l := New()
	const n = 400
	for i := 0; i < n; i++ {
		l.Set([]byte(fmt.Sprintf("k%04d", i)), []byte("x"))
	}
	perm := rand.New(rand.NewSource(5)).Perm(n)
	for _, i := range perm {
		if !l.Del([]byte(fmt.Sprintf("k%04d", i))) {
			t.Fatalf("Del k%04d lost", i)
		}
	}
	if l.Count() != 0 {
		t.Fatalf("Count = %d after drain", l.Count())
	}
	if l.height != 1 {
		t.Fatalf("height = %d after drain", l.height)
	}
	if l.Del([]byte("k0000")) {
		t.Fatal("Del on empty returned true")
	}
}

func TestScan(t *testing.T) {
	l := New()
	for i := 0; i < 200; i++ {
		l.Set([]byte(fmt.Sprintf("k%04d", i*2)), []byte{1})
	}
	var got []string
	l.Scan([]byte("k0100"), func(k, v []byte) bool {
		got = append(got, string(k))
		return len(got) < 3
	})
	if fmt.Sprint(got) != "[k0100 k0102 k0104]" {
		t.Fatalf("scan = %v", got)
	}
}

func TestModelAgainstReference(t *testing.T) {
	for gi, gen := range []func(*rand.Rand) []byte{
		indextest.GenBinary, indextest.GenASCII,
		indextest.GenRandom(8), indextest.GenPrefixed,
	} {
		t.Run(fmt.Sprintf("gen%d", gi), func(t *testing.T) {
			indextest.OrderedOps(t, New(), int64(gi), 3000, gen)
		})
	}
}

func TestHeightDistribution(t *testing.T) {
	l := New()
	for i := 0; i < 20000; i++ {
		l.Set([]byte(fmt.Sprintf("h%06d", i)), nil)
	}
	if l.height < 5 || l.height > maxHeight {
		t.Fatalf("implausible skip list height %d for 20k keys", l.height)
	}
}
