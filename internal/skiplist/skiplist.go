// Package skiplist implements a LevelDB-style skip list (Pugh's algorithm
// with LevelDB's parameters: max height 12, branching factor 4), the skip
// list the paper extracts for its evaluation (§4).
//
// Like LevelDB's, the structure supports concurrent readers only while no
// writer runs; the original needs an external mutex for writers, and so
// does this one. Unlike LevelDB's (which only ever inserts), Del is
// provided for API parity by unlinking at every level.
package skiplist

import (
	"bytes"
	"math/rand"
	"unsafe"
)

const (
	maxHeight = 12
	branching = 4
)

type node struct {
	key  []byte
	val  []byte
	next []*node
}

// List is a skip list. Call New.
type List struct {
	head   *node
	height int
	count  int64
	rnd    *rand.Rand
}

// New returns an empty list. The random source is seeded deterministically
// so experiments are reproducible.
func New() *List {
	return &List{
		head:   &node{next: make([]*node, maxHeight)},
		height: 1,
		rnd:    rand.New(rand.NewSource(0xdecea5e)),
	}
}

// Count returns the number of keys.
func (l *List) Count() int64 { return l.count }

func (l *List) randomHeight() int {
	h := 1
	for h < maxHeight && l.rnd.Intn(branching) == 0 {
		h++
	}
	return h
}

// findGE returns the first node with key >= k, recording the predecessor
// at every level in prev when it is non-nil.
func (l *List) findGE(k []byte, prev *[maxHeight]*node) *node {
	x := l.head
	for level := l.height - 1; level >= 0; level-- {
		for next := x.next[level]; next != nil && bytes.Compare(next.key, k) < 0; next = x.next[level] {
			x = next
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// Get returns the value stored under key.
func (l *List) Get(key []byte) ([]byte, bool) {
	n := l.findGE(key, nil)
	if n != nil && bytes.Equal(n.key, key) {
		return n.val, true
	}
	return nil, false
}

// Set inserts or replaces key.
func (l *List) Set(key, val []byte) {
	var prev [maxHeight]*node
	n := l.findGE(key, &prev)
	if n != nil && bytes.Equal(n.key, key) {
		n.val = val
		return
	}
	h := l.randomHeight()
	if h > l.height {
		for level := l.height; level < h; level++ {
			prev[level] = l.head
		}
		l.height = h
	}
	n = &node{key: key, val: val, next: make([]*node, h)}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	l.count++
}

// Del removes key, reporting whether it was present.
func (l *List) Del(key []byte) bool {
	var prev [maxHeight]*node
	n := l.findGE(key, &prev)
	if n == nil || !bytes.Equal(n.key, key) {
		return false
	}
	for level := 0; level < len(n.next); level++ {
		if prev[level].next[level] == n {
			prev[level].next[level] = n.next[level]
		}
	}
	for l.height > 1 && l.head.next[l.height-1] == nil {
		l.height--
	}
	l.count--
	return true
}

// Scan visits keys >= start in ascending order until fn returns false.
func (l *List) Scan(start []byte, fn func(key, val []byte) bool) {
	n := l.findGE(start, nil)
	for n != nil {
		if !fn(n.key, n.val) {
			return
		}
		n = n.next[0]
	}
}

// Footprint returns approximate heap bytes.
func (l *List) Footprint() int64 {
	ptr := int64(unsafe.Sizeof(uintptr(0)))
	nodeSz := int64(unsafe.Sizeof(node{}))
	total := nodeSz + int64(maxHeight)*ptr
	for n := l.head.next[0]; n != nil; n = n.next[0] {
		total += nodeSz + int64(len(n.key)+len(n.val)) + int64(len(n.next))*ptr
	}
	return total
}
