// Package adapters wraps every index implementation behind the shared
// index.Index / index.Ordered interfaces and registers them, giving the
// benchmark harness, the networked KV server and the integration tests one
// uniform way to instantiate the paper's five ordered indexes plus the
// Cuckoo hash table, the ablation variants of Figure 11, and the
// range-partitioned sharded store ("wormhole-sharded").
package adapters

import (
	"github.com/repro/wormhole/internal/art"
	"github.com/repro/wormhole/internal/btree"
	"github.com/repro/wormhole/internal/core"
	"github.com/repro/wormhole/internal/cuckoo"
	"github.com/repro/wormhole/internal/index"
	"github.com/repro/wormhole/internal/masstree"
	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/skiplist"
)

// Wormhole variant names registered for the Figure 11 ablation, in the
// paper's cumulative order.
var AblationOrder = []string{
	"base-wormhole",
	"+tagmatching",
	"+inchashing",
	"+sortbytag",
	"+directpos",
}

func init() {
	index.Register(index.Info{
		Name: "wormhole", ThreadSafe: true, RangeScan: true,
		New: func() index.Index { return wh(core.DefaultOptions()) },
	})
	// The sharded store reads shard.DefaultShards at construction time so
	// the cmd -shards flags can size it before instantiation.
	index.Register(index.Info{
		Name: "wormhole-sharded", ThreadSafe: true, RangeScan: true,
		New: func() index.Index { return shard.New(shard.Options{}) },
	})
	index.Register(index.Info{
		Name: "wormhole-unsafe", ThreadSafe: false, RangeScan: true,
		New: func() index.Index {
			o := core.DefaultOptions()
			o.Concurrent = false
			return wh(o)
		},
	})
	// Figure 11's cumulative optimization ladder.
	masks := []func(*core.Options){
		func(o *core.Options) {
			o.TagMatching, o.IncHashing, o.SortByTag, o.DirectPos = false, false, false, false
		},
		func(o *core.Options) { o.IncHashing, o.SortByTag, o.DirectPos = false, false, false },
		func(o *core.Options) { o.SortByTag, o.DirectPos = false, false },
		func(o *core.Options) { o.DirectPos = false },
		func(o *core.Options) {},
	}
	for i, name := range AblationOrder {
		adjust := masks[i]
		index.Register(index.Info{
			Name: name, ThreadSafe: true, RangeScan: true,
			New: func() index.Index {
				o := core.DefaultOptions()
				adjust(&o)
				return wh(o)
			},
		})
	}
	index.Register(index.Info{
		Name: "btree", ThreadSafe: false, RangeScan: true,
		New: func() index.Index { return &btreeIx{btree.New(0)} },
	})
	index.Register(index.Info{
		Name: "skiplist", ThreadSafe: false, RangeScan: true,
		New: func() index.Index { return &slIx{skiplist.New()} },
	})
	index.Register(index.Info{
		Name: "art", ThreadSafe: false, RangeScan: true,
		New: func() index.Index { return &artIx{art.New()} },
	})
	index.Register(index.Info{
		Name: "masstree", ThreadSafe: true, RangeScan: true,
		New: func() index.Index { return &mtIx{masstree.New()} },
	})
	index.Register(index.Info{
		Name: "cuckoo", ThreadSafe: true, RangeScan: false,
		New: func() index.Index { return &ckIx{cuckoo.New(0)} },
	})
}

// Baselines returns the paper's five-way comparison set (Figures 9/10/15/16).
func Baselines() []string {
	return []string{"skiplist", "btree", "art", "masstree", "wormhole"}
}

type whIx struct{ t *core.Wormhole }

func wh(o core.Options) index.Index { return &whIx{core.New(o)} }

func (ix *whIx) Get(k []byte) ([]byte, bool) { return ix.t.Get(k) }
func (ix *whIx) Set(k, v []byte)             { ix.t.Set(k, v) }
func (ix *whIx) Del(k []byte) bool           { return ix.t.Del(k) }
func (ix *whIx) Count() int64                { return ix.t.Count() }
func (ix *whIx) Footprint() int64            { return ix.t.Footprint() }
func (ix *whIx) Scan(s []byte, fn func(k, v []byte) bool) {
	ix.t.Scan(s, fn)
}

func (ix *whIx) ScanDesc(s []byte, fn func(k, v []byte) bool) {
	ix.t.ScanDesc(s, fn)
}

// GetBatch answers the batch through the core's memory-parallel pipeline
// under one reader announcement.
func (ix *whIx) GetBatch(keys [][]byte) (vals [][]byte, found []bool) {
	vals = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	ix.t.GetBatch(keys, vals, found, nil)
	return vals, found
}

// NewReadHandle implements index.ReadPinner with a pinned QSBR reader
// (core.Reader satisfies index.ReadHandle structurally, and
// index.BatchHandle via batchReader below).
func (ix *whIx) NewReadHandle() index.ReadHandle { return &batchReader{ix.t.NewReader()} }

// batchReader adapts core.Reader's positional GetBatch to the
// allocate-and-return shape of index.BatchHandle.
type batchReader struct{ r *core.Reader }

func (b *batchReader) Get(k []byte) ([]byte, bool) { return b.r.Get(k) }
func (b *batchReader) Close()                      { b.r.Close() }
func (b *batchReader) Scan(s []byte, fn func(k, v []byte) bool) {
	b.r.Scan(s, fn)
}
func (b *batchReader) ScanDesc(s []byte, fn func(k, v []byte) bool) {
	b.r.ScanDesc(s, fn)
}
func (b *batchReader) GetBatch(keys [][]byte) (vals [][]byte, found []bool) {
	vals = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	b.r.GetBatch(keys, vals, found, nil)
	return vals, found
}

// scalarGetBatch answers a batch with sequential Gets — the reference
// semantics indextest's equivalence harness checks every backend
// against. The baseline indexes use it so batched callers (netkv, the
// harnesses) can treat all backends uniformly.
func scalarGetBatch(ix index.Index, keys [][]byte) (vals [][]byte, found []bool) {
	vals = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	for i, k := range keys {
		vals[i], found[i] = ix.Get(k)
	}
	return vals, found
}

type btreeIx struct{ t *btree.Tree }

func (ix *btreeIx) Get(k []byte) ([]byte, bool) { return ix.t.Get(k) }
func (ix *btreeIx) Set(k, v []byte)             { ix.t.Set(k, v) }
func (ix *btreeIx) Del(k []byte) bool           { return ix.t.Del(k) }
func (ix *btreeIx) Count() int64                { return ix.t.Count() }
func (ix *btreeIx) Footprint() int64            { return ix.t.Footprint() }
func (ix *btreeIx) GetBatch(keys [][]byte) ([][]byte, []bool) {
	return scalarGetBatch(ix, keys)
}
func (ix *btreeIx) Scan(s []byte, fn func(k, v []byte) bool) {
	ix.t.Scan(s, fn)
}

type slIx struct{ t *skiplist.List }

func (ix *slIx) Get(k []byte) ([]byte, bool) { return ix.t.Get(k) }
func (ix *slIx) Set(k, v []byte)             { ix.t.Set(k, v) }
func (ix *slIx) Del(k []byte) bool           { return ix.t.Del(k) }
func (ix *slIx) Count() int64                { return ix.t.Count() }
func (ix *slIx) Footprint() int64            { return ix.t.Footprint() }
func (ix *slIx) GetBatch(keys [][]byte) ([][]byte, []bool) {
	return scalarGetBatch(ix, keys)
}
func (ix *slIx) Scan(s []byte, fn func(k, v []byte) bool) {
	ix.t.Scan(s, fn)
}

type artIx struct{ t *art.Tree }

func (ix *artIx) Get(k []byte) ([]byte, bool) { return ix.t.Get(k) }
func (ix *artIx) Set(k, v []byte)             { ix.t.Set(k, v) }
func (ix *artIx) Del(k []byte) bool           { return ix.t.Del(k) }
func (ix *artIx) Count() int64                { return ix.t.Count() }
func (ix *artIx) Footprint() int64            { return ix.t.Footprint() }
func (ix *artIx) GetBatch(keys [][]byte) ([][]byte, []bool) {
	return scalarGetBatch(ix, keys)
}
func (ix *artIx) Scan(s []byte, fn func(k, v []byte) bool) {
	ix.t.Scan(s, fn)
}

type mtIx struct{ t *masstree.Tree }

func (ix *mtIx) Get(k []byte) ([]byte, bool) { return ix.t.Get(k) }
func (ix *mtIx) Set(k, v []byte)             { ix.t.Set(k, v) }
func (ix *mtIx) Del(k []byte) bool           { return ix.t.Del(k) }
func (ix *mtIx) Count() int64                { return ix.t.Count() }
func (ix *mtIx) Footprint() int64            { return ix.t.Footprint() }
func (ix *mtIx) GetBatch(keys [][]byte) ([][]byte, []bool) {
	return scalarGetBatch(ix, keys)
}
func (ix *mtIx) Scan(s []byte, fn func(k, v []byte) bool) {
	ix.t.Scan(s, fn)
}

type ckIx struct{ t *cuckoo.Table }

func (ix *ckIx) Get(k []byte) ([]byte, bool) { return ix.t.Get(k) }
func (ix *ckIx) Set(k, v []byte)             { ix.t.Set(k, v) }
func (ix *ckIx) Del(k []byte) bool           { return ix.t.Del(k) }
func (ix *ckIx) Count() int64                { return ix.t.Count() }
func (ix *ckIx) Footprint() int64            { return ix.t.Footprint() }
func (ix *ckIx) GetBatch(keys [][]byte) ([][]byte, []bool) {
	return scalarGetBatch(ix, keys)
}
