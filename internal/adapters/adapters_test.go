package adapters

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/repro/wormhole/internal/index"
	"github.com/repro/wormhole/internal/indextest"
	"github.com/repro/wormhole/internal/keyset"
	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/wal"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"wormhole", "wormhole-sharded", "wormhole-unsafe", "btree",
		"skiplist", "art", "masstree", "cuckoo",
		"base-wormhole", "+tagmatching", "+inchashing", "+sortbytag", "+directpos",
	}
	for _, name := range want {
		info, ok := index.Lookup(name)
		if !ok {
			t.Fatalf("index %q not registered", name)
		}
		ix := info.New()
		ix.Set([]byte("k"), []byte("v"))
		if v, ok := ix.Get([]byte("k")); !ok || string(v) != "v" {
			t.Fatalf("%s basic op failed", name)
		}
		if info.RangeScan {
			if _, ok := ix.(index.Ordered); !ok {
				t.Fatalf("%s claims RangeScan but is not Ordered", name)
			}
		}
	}
	if len(index.All()) < len(want) {
		t.Fatalf("registry has %d entries, want >= %d", len(index.All()), len(want))
	}
}

// TestAllIndexesAgree drives the same operation stream through every
// registered index and a reference model; any divergence in point results,
// counts, or (for ordered indexes) full scans fails.
func TestAllIndexesAgree(t *testing.T) {
	type run struct {
		name string
		ix   index.Index
	}
	var runs []run
	for _, info := range index.All() {
		runs = append(runs, run{info.Name, info.New()})
	}
	model := map[string]string{}
	r := rand.New(rand.NewSource(2024))
	for i := 0; i < 6000; i++ {
		k := fmt.Sprintf("ag-%04d", r.Intn(1500))
		switch r.Intn(4) {
		case 0, 1:
			v := fmt.Sprintf("v%d", i)
			model[k] = v
			for _, ru := range runs {
				ru.ix.Set([]byte(k), []byte(v))
			}
		case 2:
			_, want := model[k]
			delete(model, k)
			for _, ru := range runs {
				if got := ru.ix.Del([]byte(k)); got != want {
					t.Fatalf("step %d: %s Del(%s)=%v want %v", i, ru.name, k, got, want)
				}
			}
		case 3:
			mv, mok := model[k]
			for _, ru := range runs {
				v, ok := ru.ix.Get([]byte(k))
				if ok != mok || (ok && string(v) != mv) {
					t.Fatalf("step %d: %s Get(%s)=%q,%v want %q,%v",
						i, ru.name, k, v, ok, mv, mok)
				}
			}
		}
	}
	for _, ru := range runs {
		if int(ru.ix.Count()) != len(model) {
			t.Fatalf("%s Count=%d want %d", ru.name, ru.ix.Count(), len(model))
		}
		ord, ok := ru.ix.(index.Ordered)
		if !ok {
			continue
		}
		var prev []byte
		n := 0
		ord.Scan(nil, func(k, v []byte) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("%s scan out of order", ru.name)
			}
			prev = append(prev[:0], k...)
			if model[string(k)] != string(v) {
				t.Fatalf("%s scan value mismatch at %s", ru.name, k)
			}
			n++
			return true
		})
		if n != len(model) {
			t.Fatalf("%s scan found %d keys, want %d", ru.name, n, len(model))
		}
	}
}

// TestAllOrderedAgreeOnPaperKeysets runs real Table 1 keysets (small scale)
// through every ordered index and cross-checks random range windows.
func TestAllOrderedAgreeOnPaperKeysets(t *testing.T) {
	for _, ksName := range []string{"Az1", "Url", "K3"} {
		t.Run(ksName, func(t *testing.T) {
			spec, _ := keyset.Lookup(ksName)
			keys := spec.Gen(3000, 5)
			var ordered []index.Ordered
			var names []string
			for _, info := range index.All() {
				if !info.RangeScan {
					continue
				}
				ix := info.New()
				for _, k := range keys {
					ix.Set(k, k)
				}
				ordered = append(ordered, ix.(index.Ordered))
				names = append(names, info.Name)
			}
			r := rand.New(rand.NewSource(9))
			for probe := 0; probe < 50; probe++ {
				start := keys[r.Intn(len(keys))]
				var ref []string
				ordered[0].Scan(start, func(k, v []byte) bool {
					ref = append(ref, string(k))
					return len(ref) < 25
				})
				for oi := 1; oi < len(ordered); oi++ {
					var got []string
					ordered[oi].Scan(start, func(k, v []byte) bool {
						got = append(got, string(k))
						return len(got) < 25
					})
					if len(got) != len(ref) {
						t.Fatalf("%s window size %d, %s has %d",
							names[oi], len(got), names[0], len(ref))
					}
					for j := range got {
						if got[j] != ref[j] {
							t.Fatalf("%s window[%d]=%s, %s has %s",
								names[oi], j, got[j], names[0], ref[j])
						}
					}
				}
			}
		})
	}
}

func TestFootprintsPlausible(t *testing.T) {
	keys := indextestKeys(2000)
	var raw int64
	for _, k := range keys {
		raw += int64(len(k)) * 2 // key + value (value aliases key here)
	}
	for _, info := range index.All() {
		ix := info.New()
		for _, k := range keys {
			ix.Set(k, k)
		}
		fp := ix.Footprint()
		if fp < raw/2 {
			t.Errorf("%s Footprint %d < half the raw data %d", info.Name, fp, raw)
		}
		if fp > raw*64 {
			t.Errorf("%s Footprint %d implausibly large (raw %d)", info.Name, fp, raw)
		}
	}
}

func indextestKeys(n int) [][]byte {
	r := rand.New(rand.NewSource(33))
	keys := make([][]byte, 0, n)
	seen := map[string]bool{}
	for len(keys) < n {
		k := indextest.GenPrefixed(r)
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		keys = append(keys, k)
	}
	return keys
}

// TestConcurrentAllBackends runs the concurrent model-based harness over
// every registered backend. Thread-safe indexes take the raw concurrent
// stream — under -race this doubles as a data-race probe of their
// internals — while the single-writer baselines run behind
// indextest.Synchronized, so the same harness (goroutine structure,
// exactly-once oracle verification, scan observer) covers the whole
// registry.
// TestBatchGetEquivalenceAllBackends runs the batched-read equivalence
// oracle over every registered backend: GetBatch must be byte-identical
// to sequential scalar Gets for batches containing duplicates, misses,
// empty keys, and more keys than a leaf holds (200 > the 128-key
// default leaf capacity). Every adapter must expose GetBatch — a missing
// method fails the test rather than skipping the backend.
func TestBatchGetEquivalenceAllBackends(t *testing.T) {
	for _, info := range index.All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			ix, ok := info.New().(interface {
				Get([]byte) ([]byte, bool)
				Set(key, val []byte)
				Del([]byte) bool
				GetBatch(keys [][]byte) ([][]byte, []bool)
			})
			if !ok {
				t.Fatalf("%s does not expose GetBatch", info.Name)
			}
			rounds := 60
			if testing.Short() {
				rounds = 15
			}
			indextest.BatchGetEquivalence(t, ix, 42, rounds, 200, indextest.GenPrefixed)
			indextest.BatchGetEquivalence(t, ix, 43, rounds/2, 64, indextest.GenASCII)
		})
	}
}

// TestRecoveryEquivalenceShardedDurable runs the recovery oracle over
// the sharded durable backend: a store built through a mutation stream
// with a mid-stream snapshot must recover byte-identically whether the
// v2 snapshot segments are decoded serially or by 2 or 8 workers. Tiny
// segments force every shard's snapshot into many segment files, so the
// worker pool actually runs instead of degenerating to one segment per
// shard.
func TestRecoveryEquivalenceShardedDurable(t *testing.T) {
	dir := t.TempDir()
	open := func(workers int) indextest.RecoverableStore {
		st, err := shard.Open(shard.Options{
			Dir:    dir,
			Shards: 3,
			Durability: wal.Options{
				SegmentBytes:  4 << 10,
				DecodeWorkers: workers,
			},
		})
		if err != nil {
			t.Fatalf("open with %d decode workers: %v", workers, err)
		}
		return st
	}
	steps := 4000
	if testing.Short() {
		steps = 1000
	}
	indextest.RecoveryEquivalence(t, open, []int{1, 2, 8}, 99, steps, indextest.GenPrefixed)
}

func TestConcurrentAllBackends(t *testing.T) {
	for _, info := range index.All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			workers, steps := 4, 800
			if testing.Short() {
				steps = 200
			}
			ix := indextest.MutableIndex(info.New())
			if !info.ThreadSafe {
				ix = indextest.Synchronized(ix)
			}
			indextest.ConcurrentOps(t, ix, 777, workers, steps, indextest.GenASCII)
		})
	}
}
