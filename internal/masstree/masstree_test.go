package masstree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/repro/wormhole/internal/indextest"
)

func TestSliceEncoding(t *testing.T) {
	// (slice, ext) order must equal byte-string order.
	keys := [][]byte{
		{}, {0}, {0, 0}, {'a'}, []byte("ab"), []byte("ab\x00"),
		[]byte("abcdefgh"), []byte("abcdefghi"), []byte("abcdefgi"), {0xff},
	}
	for i := 0; i < len(keys); i++ {
		for j := 0; j < len(keys); j++ {
			a, b := makeSlice(keys[i], 0), makeSlice(keys[j], 0)
			byteLess := bytes.Compare(keys[i], keys[j]) < 0
			// Same-slice long keys collapse into the same layer link; only
			// distinct-skey pairs must preserve order.
			if a == b {
				continue
			}
			if a.less(b) != byteLess && !(a.ext == extLayer || b.ext == extLayer) {
				t.Errorf("order broken: %q vs %q", keys[i], keys[j])
			}
		}
	}
	if makeSlice([]byte("abcdefghi"), 0).ext != extLayer {
		t.Fatal("9-byte key should produce a layer link")
	}
	if makeSlice([]byte("abcdefgh"), 0).ext != 8 {
		t.Fatal("8-byte key should be terminal with ext 8")
	}
}

func TestBasicLayering(t *testing.T) {
	m := New()
	keys := []string{
		"", "a", "abcdefgh", "abcdefghi", "abcdefghijklmnop",
		"abcdefghijklmnopq", "abcdefgz", "zzzz",
	}
	for i, k := range keys {
		m.Set([]byte(k), []byte(fmt.Sprintf("v%d", i)))
	}
	if m.Count() != int64(len(keys)) {
		t.Fatalf("Count = %d", m.Count())
	}
	for i, k := range keys {
		v, ok := m.Get([]byte(k))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%q) = %q,%v", k, v, ok)
		}
	}
	for _, k := range []string{"abcdefghij", "b", "abcdefgh\x00"} {
		if _, ok := m.Get([]byte(k)); ok {
			t.Fatalf("Get(%q) should miss", k)
		}
	}
	// Delete the middle of a layer chain; longer keys must survive.
	if !m.Del([]byte("abcdefghi")) {
		t.Fatal("Del failed")
	}
	if _, ok := m.Get([]byte("abcdefghi")); ok {
		t.Fatal("deleted key still present")
	}
	if _, ok := m.Get([]byte("abcdefghijklmnop")); !ok {
		t.Fatal("sibling long key lost")
	}
}

func TestScanAcrossLayers(t *testing.T) {
	m := New()
	keys := []string{
		"a", "aaaaaaaaa", "aaaaaaaaab", "aaaaaaaab", "b",
		"bbbbbbbbbbbbbbbbbb", "c",
	}
	for _, k := range keys {
		m.Set([]byte(k), []byte(k))
	}
	var got []string
	m.Scan(nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := fmt.Sprint([]string{"a", "aaaaaaaaa", "aaaaaaaaab", "aaaaaaaab",
		"b", "bbbbbbbbbbbbbbbbbb", "c"})
	if fmt.Sprint(got) != want {
		t.Fatalf("scan = %v", got)
	}
	got = got[:0]
	m.Scan([]byte("aaaaaaaaab"), func(k, v []byte) bool {
		got = append(got, string(k))
		return len(got) < 3
	})
	if fmt.Sprint(got) != fmt.Sprint([]string{"aaaaaaaaab", "aaaaaaaab", "b"}) {
		t.Fatalf("seeked scan = %v", got)
	}
}

func TestSplitsAtScale(t *testing.T) {
	m := New()
	const n = 5000
	for i := 0; i < n; i++ {
		m.Set([]byte(fmt.Sprintf("key-%06d-with-a-long-suffix", i)), []byte{1})
	}
	if m.Count() != n {
		t.Fatalf("Count = %d", m.Count())
	}
	cnt, prev := 0, ""
	m.Scan(nil, func(k, v []byte) bool {
		if string(k) <= prev {
			t.Fatalf("scan out of order at %q", k)
		}
		prev = string(k)
		cnt++
		return true
	})
	if cnt != n {
		t.Fatalf("scan found %d", cnt)
	}
}

func TestModelAgainstReference(t *testing.T) {
	gens := []func(*rand.Rand) []byte{
		indextest.GenBinary, indextest.GenASCII,
		indextest.GenRandom(8), indextest.GenRandom(20), indextest.GenPrefixed,
	}
	for gi, gen := range gens {
		t.Run(fmt.Sprintf("gen%d", gi), func(t *testing.T) {
			indextest.OrderedOps(t, New(), int64(70+gi), 3000, gen)
		})
	}
}

func TestConcurrentMixed(t *testing.T) {
	m := New()
	const stable = 400
	for i := 0; i < stable; i++ {
		m.Set([]byte(fmt.Sprintf("stable-%05d-long-enough-for-layers", i)), []byte("s"))
	}
	var stop atomic.Bool
	var writers, readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for !stop.Load() {
				k := []byte(fmt.Sprintf("churn-%02d-%05d-suffix", g, r.Intn(3000)))
				if r.Intn(2) == 0 {
					m.Set(k, []byte("c"))
				} else {
					m.Del(k)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			r := rand.New(rand.NewSource(int64(50 + g)))
			for i := 0; i < 10000; i++ {
				k := []byte(fmt.Sprintf("stable-%05d-long-enough-for-layers", r.Intn(stable)))
				if _, ok := m.Get(k); !ok {
					t.Errorf("lost stable key %q", k)
					return
				}
			}
		}(g)
	}
	readers.Wait()
	stop.Store(true)
	writers.Wait()
	found := 0
	m.Scan([]byte("stable-"), func(k, v []byte) bool {
		if string(v) == "s" {
			found++
		}
		return bytes.HasPrefix(k, []byte("stable-")) || true
	})
	if found != stable {
		t.Fatalf("final scan found %d stable keys, want %d", found, stable)
	}
}

func TestFootprint(t *testing.T) {
	m := New()
	for i := 0; i < 500; i++ {
		m.Set([]byte(fmt.Sprintf("fp-%05d-0123456789", i)), []byte("0123456789"))
	}
	if fp := m.Footprint(); fp < 500*28 {
		t.Fatalf("Footprint = %d implausibly small", fp)
	}
}
