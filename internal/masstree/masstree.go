// Package masstree implements a Masstree-like index (Mao, Kohler, Morris —
// EuroSys 2012), the trie-of-B+-trees baseline of the paper's evaluation
// (§4): a trie with fanout 2^64 whose nodes are B+ trees indexing 8-byte
// key slices. Keys longer than eight bytes descend through one layer per
// slice; a slice is encoded as a big-endian uint64 plus a fragment length,
// which preserves byte-string order while letting every comparison inside
// a layer be two integer compares — the structure's core trick.
//
// Concurrency: the original uses optimistic version validation; this port
// uses reader-writer lock coupling with preemptive splitting (full nodes
// are split on the way down, so locks are only ever taken top-down and no
// split propagates upward). That keeps the index fully thread-safe — the
// role Masstree plays in Figures 9 and 17 — with a simpler protocol; the
// substitution is noted in docs/ARCHITECTURE.md. Deletions are lazy (no rebalancing),
// matching how the paper's workloads exercise it (lookups and inserts).
package masstree

import (
	"bytes"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// fanout is the per-node width of each layer's B+ tree; Masstree uses 15
// keys per node.
const fanout = 16

// skey is one key slice: up to eight bytes as a big-endian integer plus an
// ext tag. ext 0..8 is the fragment length of a key ending in this slice;
// extLayer marks a link to the next layer (keys extending past the slice).
// Lexicographic (slice, ext) order equals byte-string order of the keys.
type skey struct {
	slice uint64
	ext   uint8
}

const extLayer = 9

func (a skey) less(b skey) bool {
	return a.slice < b.slice || (a.slice == b.slice && a.ext < b.ext)
}

func (a skey) geq(b skey) bool { return !a.less(b) }

// makeSlice encodes key[depth:] into its first slice.
func makeSlice(key []byte, depth int) skey {
	rest := key[depth:]
	var buf [8]byte
	n := copy(buf[:], rest)
	s := skey{slice: binary.BigEndian.Uint64(buf[:])}
	if len(rest) <= 8 {
		s.ext = uint8(n)
	} else {
		s.ext = extLayer
	}
	return s
}

// entry is a leaf slot: a terminal key-value or a link to the next layer.
type entry struct {
	val     []byte
	fullKey []byte // terminal entries only; used by scans
	layer   *layer // non-nil for ext == extLayer entries
}

type node interface{ isNode() }

type inner struct {
	mu   sync.RWMutex
	keys []skey
	kids []node
}

type leafN struct {
	mu      sync.RWMutex
	keys    []skey
	entries []*entry
	next    *leafN
}

func (*inner) isNode() {}
func (*leafN) isNode() {}

// layer is one trie level: a B+ tree over skeys.
type layer struct {
	rootMu sync.RWMutex // guards the root pointer swap only
	root   node
}

func newLayer() *layer { return &layer{root: &leafN{}} }

// Tree is the Masstree-like index.
type Tree struct {
	root  *layer
	count int64
}

// New returns an empty tree.
func New() *Tree { return &Tree{root: newLayer()} }

// Count returns the number of keys.
func (t *Tree) Count() int64 { return atomic.LoadInt64(&t.count) }

func (n *inner) childIndex(k skey) int {
	return sort.Search(len(n.keys), func(i int) bool { return k.less(n.keys[i]) })
}

func (l *leafN) search(k skey) (int, bool) {
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i].geq(k) })
	return i, i < len(l.keys) && l.keys[i] == k
}

// lockLeafR read-couples from the layer root down to k's leaf and returns
// it read-locked.
func (ly *layer) lockLeafR(k skey) *leafN {
	ly.rootMu.RLock()
	n := ly.root
	switch v := n.(type) {
	case *inner:
		v.mu.RLock()
	case *leafN:
		v.mu.RLock()
	}
	ly.rootMu.RUnlock()
	for {
		in, ok := n.(*inner)
		if !ok {
			return n.(*leafN)
		}
		child := in.kids[in.childIndex(k)]
		switch v := child.(type) {
		case *inner:
			v.mu.RLock()
		case *leafN:
			v.mu.RLock()
		}
		in.mu.RUnlock()
		n = child
	}
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, bool) {
	ly := t.root
	depth := 0
	for {
		k := makeSlice(key, depth)
		l := ly.lockLeafR(k)
		i, ok := l.search(k)
		if !ok {
			l.mu.RUnlock()
			return nil, false
		}
		e := l.entries[i]
		if k.ext != extLayer {
			v := e.val
			l.mu.RUnlock()
			return v, true
		}
		ly = e.layer
		l.mu.RUnlock()
		depth += 8
	}
}

// splitChild splits the full child at index ci of the write-locked parent.
// The caller holds both the parent's and the child's write locks and
// guarantees the parent has room (preemptive splitting). The new right
// sibling is unreachable until inserted under the held parent lock.
func splitChild(p *inner, ci int) {
	switch c := p.kids[ci].(type) {
	case *leafN:
		mid := len(c.keys) / 2
		r := &leafN{
			keys:    append([]skey{}, c.keys[mid:]...),
			entries: append([]*entry{}, c.entries[mid:]...),
			next:    c.next,
		}
		sep := c.keys[mid]
		c.keys = c.keys[:mid:mid]
		c.entries = c.entries[:mid:mid]
		c.next = r
		insertKid(p, ci, sep, r)
	case *inner:
		mid := len(c.keys) / 2
		sep := c.keys[mid]
		r := &inner{
			keys: append([]skey{}, c.keys[mid+1:]...),
			kids: append([]node{}, c.kids[mid+1:]...),
		}
		c.keys = c.keys[:mid:mid]
		c.kids = c.kids[: mid+1 : mid+1]
		insertKid(p, ci, sep, r)
	}
}

func lockNodeW(n node) {
	switch v := n.(type) {
	case *inner:
		v.mu.Lock()
	case *leafN:
		v.mu.Lock()
	}
}

func unlockNodeW(n node) {
	switch v := n.(type) {
	case *inner:
		v.mu.Unlock()
	case *leafN:
		v.mu.Unlock()
	}
}

func insertKid(p *inner, ci int, sep skey, right node) {
	p.keys = append(p.keys, skey{})
	copy(p.keys[ci+1:], p.keys[ci:])
	p.keys[ci] = sep
	p.kids = append(p.kids, nil)
	copy(p.kids[ci+2:], p.kids[ci+1:])
	p.kids[ci+1] = right
}

func full(n node) bool {
	switch v := n.(type) {
	case *leafN:
		return len(v.keys) >= fanout
	case *inner:
		return len(v.kids) >= fanout+1
	}
	return false
}

// lockLeafW write-couples down to k's leaf, splitting every full node on
// the way (including the root, under rootMu), and returns it write-locked.
// A node's fullness is only ever inspected while its own write lock is
// held — a concurrent writer one level below may be resizing it otherwise.
func (ly *layer) lockLeafW(k skey) *leafN {
	for {
		ly.rootMu.RLock()
		root := ly.root
		lockNodeW(root)
		ly.rootMu.RUnlock()
		if !full(root) {
			if in, ok := root.(*inner); ok {
				return descendW(in, k)
			}
			return root.(*leafN)
		}
		// The root must split, which replaces the root pointer: retry
		// under the exclusive root guard.
		unlockNodeW(root)
		ly.rootMu.Lock()
		root = ly.root
		lockNodeW(root)
		if !full(root) {
			// Another writer already split it.
			ly.rootMu.Unlock()
			if in, ok := root.(*inner); ok {
				return descendW(in, k)
			}
			return root.(*leafN)
		}
		nr := &inner{kids: []node{root}}
		nr.mu.Lock()
		splitChild(nr, 0)
		unlockNodeW(root)
		ly.root = nr
		ly.rootMu.Unlock()
		return descendW(nr, k)
	}
}

// descendW walks down from the write-locked inner node in, splitting full
// children before entering them, and returns the write-locked target leaf.
func descendW(in *inner, k skey) *leafN {
	for {
		ci := in.childIndex(k)
		child := in.kids[ci]
		lockNodeW(child)
		if full(child) {
			splitChild(in, ci)
			// The key may now belong to the new right sibling; re-pick
			// under the still-held parent lock.
			unlockNodeW(child)
			continue
		}
		in.mu.Unlock()
		if v, ok := child.(*inner); ok {
			in = v
			continue
		}
		return child.(*leafN)
	}
}

// Set inserts or replaces key.
func (t *Tree) Set(key, val []byte) {
	ly := t.root
	depth := 0
	for {
		k := makeSlice(key, depth)
		l := ly.lockLeafW(k)
		i, ok := l.search(k)
		if k.ext != extLayer {
			if ok {
				l.entries[i].val = val
			} else {
				insertEntry(l, i, k, &entry{val: val, fullKey: key})
				atomic.AddInt64(&t.count, 1)
			}
			l.mu.Unlock()
			return
		}
		if !ok {
			insertEntry(l, i, k, &entry{layer: newLayer()})
			i, _ = l.search(k)
		}
		ly = l.entries[i].layer
		l.mu.Unlock()
		depth += 8
	}
}

func insertEntry(l *leafN, i int, k skey, e *entry) {
	l.keys = append(l.keys, skey{})
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = k
	l.entries = append(l.entries, nil)
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = e
}

// Del removes key, reporting whether it was present. Leaves are not
// rebalanced and emptied sub-layers are not collapsed (lazy deletion).
func (t *Tree) Del(key []byte) bool {
	ly := t.root
	depth := 0
	for {
		k := makeSlice(key, depth)
		l := ly.lockLeafW(k)
		i, ok := l.search(k)
		if !ok {
			l.mu.Unlock()
			return false
		}
		if k.ext != extLayer {
			l.keys = append(l.keys[:i], l.keys[i+1:]...)
			l.entries = append(l.entries[:i], l.entries[i+1:]...)
			l.mu.Unlock()
			atomic.AddInt64(&t.count, -1)
			return true
		}
		ly = l.entries[i].layer
		l.mu.Unlock()
		depth += 8
	}
}

// Scan visits keys >= start in ascending order until fn returns false.
// The scan copies each leaf's qualifying entries under its read lock and
// walks layer links recursively; concurrent inserts may or may not be
// observed (same contract as the original's snapshot-free scans).
func (t *Tree) Scan(start []byte, fn func(key, val []byte) bool) {
	t.scanLayer(t.root, start, 0, fn)
}

// scanLayer returns false when fn stopped the scan.
func (t *Tree) scanLayer(ly *layer, start []byte, depth int, fn func(k, v []byte) bool) bool {
	var from skey
	if start != nil && len(start) > depth {
		from = makeSlice(start, depth)
	}
	l := ly.lockLeafR(from)
	for {
		// Copy the qualifying slots — including the key/value slice headers,
		// which may be swapped by concurrent updates — under the read lock,
		// so fn runs unlocked on stable data.
		type slot struct {
			k        skey
			key, val []byte
			layer    *layer
		}
		var slots []slot
		i, _ := l.search(from)
		for ; i < len(l.keys); i++ {
			e := l.entries[i]
			slots = append(slots, slot{l.keys[i], e.fullKey, e.val, e.layer})
		}
		next := l.next
		l.mu.RUnlock()
		for _, s := range slots {
			if s.k.ext == extLayer {
				sub := start
				if !(s.k == from && len(start) > depth+8) {
					sub = nil
				}
				if !t.scanLayer(s.layer, sub, depth+8, fn) {
					return false
				}
				continue
			}
			// Terminal: honor the inclusive start bound exactly.
			if start != nil && bytes.Compare(s.key, start) < 0 {
				continue
			}
			if !fn(s.key, s.val) {
				return false
			}
		}
		if next == nil {
			return true
		}
		// Keep `from` unchanged across leaf hops: later leaves hold only
		// larger skeys, so the search lands at 0, and the link entry that
		// matches start's slice is still recognized if it lives here.
		next.mu.RLock()
		l = next
	}
}

// Footprint returns approximate heap bytes.
func (t *Tree) Footprint() int64 {
	return layerFootprint(t.root)
}

func layerFootprint(ly *layer) int64 {
	return nodeFootprint(ly.root) + int64(unsafe.Sizeof(layer{}))
}

func nodeFootprint(n node) int64 {
	switch v := n.(type) {
	case *leafN:
		total := int64(unsafe.Sizeof(leafN{}))
		total += int64(cap(v.keys))*int64(unsafe.Sizeof(skey{})) +
			int64(cap(v.entries))*int64(unsafe.Sizeof(uintptr(0)))
		for i, e := range v.entries {
			total += int64(unsafe.Sizeof(entry{}))
			if v.keys[i].ext == extLayer {
				total += layerFootprint(e.layer)
			} else {
				total += int64(len(e.fullKey) + len(e.val))
			}
		}
		return total
	case *inner:
		total := int64(unsafe.Sizeof(inner{}))
		total += int64(cap(v.keys)) * int64(unsafe.Sizeof(skey{}))
		for _, c := range v.kids {
			total += nodeFootprint(c)
		}
		return total
	}
	return 0
}
