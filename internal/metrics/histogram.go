package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The latency grid: 41 finite bucket bounds placed geometrically at five
// per decade from 100ns to 10s inclusive (ratio 10^(1/5) ≈ 1.585), plus
// an overflow (+Inf) bucket. Every histogram shares the grid, which is
// what makes snapshots mergeable across stripes, shards and processes:
// merging is element-wise addition, never re-bucketing.
//
// Five per decade keeps any recorded value within ~26% of its bucket
// bound — tight enough that a p99 read off the grid is within one
// resolution step of the true order statistic — while the whole armed
// footprint stays one small array per stripe.
const (
	// NumBuckets counts the finite buckets (excluding +Inf).
	NumBuckets = 41
	// minBoundNs and maxBoundNs are the first and last finite bounds.
	minBoundNs = 100
	maxBoundNs = 10_000_000_000 // 10s
)

// BucketBounds holds the finite upper bounds in nanoseconds, ascending.
// bounds[i] = 100ns * 10^(i/5), with the endpoints pinned exactly.
var BucketBounds = makeBounds()

func makeBounds() [NumBuckets]int64 {
	var b [NumBuckets]int64
	for i := range b {
		b[i] = int64(math.Round(minBoundNs * math.Pow(10, float64(i)/5)))
	}
	b[0] = minBoundNs
	b[NumBuckets-1] = maxBoundNs
	return b
}

// bucketCand maps a value's bit length to its candidate buckets. A
// factor-of-two range spans at most two bounds (consecutive bounds
// differ by ×~1.585, and 1.585² > 2), so for any ns the bucket is
// base, base+1 or base+2 — resolved branchlessly from the two candidate
// bounds b0/b1 (math.MaxInt64 past the grid, so the compare never
// fires).
var bucketCand = makeBucketCand()

type candidate struct {
	b0, b1 int64
	base   int64
}

func makeBucketCand() [65]candidate {
	bound := func(i int) int64 {
		if i < NumBuckets {
			return BucketBounds[i]
		}
		return math.MaxInt64
	}
	var t [65]candidate
	for l := 0; l <= 64; l++ {
		// Smallest value with bit length l is 2^(l-1) (0 for l == 0).
		var v int64
		if l > 0 {
			if l > 63 {
				v = math.MaxInt64
			} else {
				v = int64(1) << (l - 1)
			}
		}
		i := 0
		for i < NumBuckets && BucketBounds[i] < v {
			i++
		}
		t[l] = candidate{base: int64(i), b0: bound(i), b1: bound(i + 1)}
	}
	return t
}

// bucketOf returns the index of the bucket counting ns: the first bucket
// whose bound is >= ns, or NumBuckets (the +Inf bucket) past the grid.
// Near branch-free: one table load keyed by bit length, then two
// sign-bit compares against the candidate bounds.
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	c := &bucketCand[bits.Len64(uint64(ns))]
	// (c.bN - ns) is negative exactly when ns exceeds the bound; the
	// shifted sign bit adds 0 or 1 without a branch.
	return int(c.base + int64(uint64(c.b0-ns)>>63) + int64(uint64(c.b1-ns)>>63))
}

// histStripe is one stripe's bucket array plus the ns sum. 41 finite
// buckets + overflow + sum = 43 words; the trailing pad rounds the
// stripe to a cache-line multiple so adjacent stripes never share a
// line.
type histStripe struct {
	counts [NumBuckets + 1]atomic.Uint64
	sum    atomic.Int64
	_      [40]byte
}

// Histogram is a striped latency histogram on the shared geometric grid.
// Observe is safe for concurrent use, allocation-free, and costs a
// stripe-hash, a table-guided bucket search (≤2 compares) and two atomic
// adds on the stripe's own cache lines.
type Histogram struct {
	stripes []histStripe
	mask    uint64
}

func newHistogram() *Histogram {
	return &Histogram{stripes: make([]histStripe, numStripes), mask: uint64(numStripes - 1)}
}

// NewHistogram returns an unregistered histogram (for harnesses that
// want quantiles without a registry; servers register via
// Registry.Histogram).
func NewHistogram() *Histogram { return newHistogram() }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// ObserveNs records one duration given in nanoseconds. Negative values
// clamp to the first bucket (a clock step backwards must not corrupt the
// sum with a negative contribution — it records as 0).
func (h *Histogram) ObserveNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	s := &h.stripes[stripeHint()&h.mask]
	s.counts[bucketOf(ns)].Add(1)
	s.sum.Add(ns)
}

// HistogramSnapshot is a merged, point-in-time view of a histogram:
// per-bucket counts (Counts[NumBuckets] is the +Inf overflow), the total
// observation count, and the sum of observed nanoseconds.
type HistogramSnapshot struct {
	Counts [NumBuckets + 1]uint64
	Count  uint64
	SumNs  int64
}

// Snapshot merges the stripes. A snapshot racing concurrent Observe
// calls may split an observation's bucket increment from its sum
// contribution; both are monotone, so successive scrapes converge.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := range st.counts {
			n := st.counts[b].Load()
			s.Counts[b] += n
			s.Count += n
		}
		s.SumNs += st.sum.Load()
	}
	return s
}

// Merge adds o into s element-wise — valid because every histogram
// shares one grid.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.SumNs += o.SumNs
}

// Quantile estimates the q-th quantile (0 < q <= 1) in nanoseconds by
// linear interpolation within the bucket holding the target rank. An
// empty histogram reports 0; ranks landing in the overflow bucket report
// the last finite bound (read it as ">= 10s").
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i := 0; i < NumBuckets; i++ {
		n := float64(s.Counts[i])
		if cum+n >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(BucketBounds[i-1])
			}
			hi := float64(BucketBounds[i])
			if n == 0 {
				return hi
			}
			return lo + (hi-lo)*(rank-cum)/n
		}
		cum += n
	}
	return float64(BucketBounds[NumBuckets-1])
}

// Mean returns the average observed duration in nanoseconds (0 when
// empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}
