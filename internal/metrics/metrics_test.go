package metrics

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecordZeroAllocs is the hot-path contract: an armed counter,
// gauge, histogram and below-threshold slow-op trace must not allocate —
// they live on the PR 2/6 zero-allocation read path.
func TestRecordZeroAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_ops_total", "ops", "op", "get")
	g := reg.Gauge("t_inflight", "inflight")
	h := reg.Histogram("t_latency_seconds", "latency")
	slow := NewSlowLog(32, time.Second)
	key := []byte("key-under-threshold")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(7)
		h.ObserveNs(1234)
		slow.Record("get", key, "ok", 10*time.Microsecond)
	}); n != 0 {
		t.Fatalf("record path allocates %v per op, want 0", n)
	}
}

// TestConcurrentRecordScrape hammers counters and a histogram from many
// goroutines while scraping concurrently (run under -race), then checks
// the final totals are exact.
func TestConcurrentRecordScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_ops_total", "ops")
	h := reg.Histogram("t_lat_seconds", "lat")
	const workers, perWorker = 8, 20_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var buf bytes.Buffer
				if err := reg.WriteText(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.ObserveNs(int64(w*1000 + i))
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if s := h.Snapshot(); s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
}

func TestPrometheusText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_ops_total", "Operations served.", "op", "get", "status", "ok").Add(3)
	reg.Counter("x_ops_total", "Operations served.", "op", "set", "status", "ok").Add(1)
	reg.Gauge("x_inflight", "Batches in flight.").Set(2)
	reg.GaugeFunc("x_uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	h := reg.Histogram("x_lat_seconds", "Latency.", "op", "get")
	h.ObserveNs(150)           // first bucket (le 1e-07)
	h.ObserveNs(200)           // third bucket
	h.Observe(2 * time.Minute) // +Inf
	reg.CollectFunc("x_lag_records", "Follower lag.", KindGauge, func(emit func([]string, float64)) {
		emit([]string{"remote", "10.0.0.2:9"}, 42)
	})

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP x_ops_total Operations served.",
		"# TYPE x_ops_total counter",
		`x_ops_total{op="get",status="ok"} 3`,
		`x_ops_total{op="set",status="ok"} 1`,
		"# TYPE x_inflight gauge",
		"x_inflight 2",
		"x_uptime_seconds 1.5",
		"# TYPE x_lat_seconds histogram",
		`x_lat_seconds_bucket{op="get",le="+Inf"} 3`,
		`x_lat_seconds_count{op="get"} 3`,
		`x_lag_records{remote="10.0.0.2:9"} 42`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape output missing %q\n---\n%s", want, text)
		}
	}
	// HELP/TYPE emitted once per family even with several series.
	if n := strings.Count(text, "# TYPE x_ops_total"); n != 1 {
		t.Errorf("x_ops_total TYPE emitted %d times, want 1", n)
	}
	// Histogram bucket series are cumulative and end at count.
	assertCumulative(t, text, "x_lat_seconds")
}

// assertCumulative parses a histogram's bucket lines and checks
// monotonicity plus the +Inf == _count invariant.
func assertCumulative(t *testing.T, text, name string) {
	t.Helper()
	last := -1.0
	var inf, count float64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+"_bucket") {
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < last {
				t.Fatalf("bucket series not cumulative at %q", line)
			}
			last = v
			if strings.Contains(line, `le="+Inf"`) {
				inf = v
			}
		}
		if strings.HasPrefix(line, name+"_count") {
			count, _ = strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		}
	}
	if inf != count {
		t.Fatalf("+Inf bucket %v != count %v", inf, count)
	}
}

func TestLabelEscaping(t *testing.T) {
	if got := renderLabels([]string{"k", `a"b\c` + "\n"}); got != `k="a\"b\\c\n"` {
		t.Fatalf("escaped labels = %s", got)
	}
}

func TestSlowLog(t *testing.T) {
	l := NewSlowLog(16, time.Millisecond)
	l.Record("get", []byte("fast"), "ok", 10*time.Microsecond) // below threshold
	for i := 0; i < 20; i++ {                                  // wraps the 16-slot ring
		l.Record("set", []byte(fmt.Sprintf("k%02d", i)), "ok", time.Duration(i+2)*time.Millisecond)
	}
	ops := l.Snapshot()
	if len(ops) != 16 {
		t.Fatalf("ring holds %d, want 16", len(ops))
	}
	if ops[0].Key != "k19" || ops[15].Key != "k04" {
		t.Fatalf("snapshot not newest-first: first=%s last=%s", ops[0].Key, ops[15].Key)
	}
	if l.Total() != 20 {
		t.Fatalf("total = %d, want 20", l.Total())
	}
	for _, o := range ops {
		if o.Op != "set" || o.DurationUS < 2000 {
			t.Fatalf("unexpected traced op %+v", o)
		}
	}
	// Disarmed and nil tracers are inert.
	l.SetThreshold(0)
	l.Record("get", nil, "ok", time.Hour)
	if l.Total() != 20 {
		t.Fatal("disarmed tracer recorded")
	}
	var nilLog *SlowLog
	nilLog.Record("get", nil, "ok", time.Hour) // must not panic
	if nilLog.Snapshot() != nil {
		t.Fatal("nil tracer snapshot not nil")
	}
	// Long keys truncate.
	l.SetThreshold(time.Nanosecond)
	l.Record("get", bytes.Repeat([]byte("x"), 200), "ok", time.Second)
	if got := l.Snapshot()[0].Key; len(got) != maxSlowKey {
		t.Fatalf("key len %d, want %d", len(got), maxSlowKey)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveNs(int64(i)*7 + 100)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		ns := int64(100)
		for pb.Next() {
			h.ObserveNs(ns)
			ns += 997
		}
	})
}

func BenchmarkCounterInc(b *testing.B) {
	c := newCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkSlowLogBelowThreshold(b *testing.B) {
	l := NewSlowLog(64, time.Second)
	key := []byte("bench-key")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Record("get", key, "ok", time.Microsecond)
	}
}
