package metrics

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
)

// Prometheus text exposition format (version 0.0.4), hand-rolled: the
// format is `# HELP`/`# TYPE` headers followed by `name{labels} value`
// sample lines; histograms expand into cumulative `_bucket{le="..."}`
// series plus `_sum` and `_count`. Durations are exposed in seconds (the
// Prometheus base unit), so the ns grid divides by 1e9 at encode time.

// WriteText encodes every registered family in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<15)
	for _, f := range r.snapshotFamilies() {
		if err := f.writeText(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler returns the /metrics HTTP handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

func (f *family) writeText(w *bufio.Writer) error {
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.help)
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.kind)
	w.WriteByte('\n')
	if f.collect != nil {
		f.collect(func(labels []string, value float64) {
			writeSample(w, f.name, "", sortedLabelPairs(labels), formatFloat(value))
		})
		return nil
	}
	for _, s := range f.series {
		switch {
		case s.counter != nil:
			writeSample(w, f.name, "", s.labels, strconv.FormatUint(s.counter.Value(), 10))
		case s.gauge != nil:
			writeSample(w, f.name, "", s.labels, strconv.FormatInt(s.gauge.Value(), 10))
		case s.gaugeFn != nil:
			writeSample(w, f.name, "", s.labels, formatFloat(s.gaugeFn()))
		case s.hist != nil:
			writeHistogram(w, f.name, s.labels, s.hist.Snapshot())
		}
	}
	return nil
}

// writeHistogram emits the cumulative bucket series, sum and count for
// one snapshot.
func writeHistogram(w *bufio.Writer, name, labels string, s HistogramSnapshot) {
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Counts[i]
		le := `le="` + formatFloat(float64(BucketBounds[i])/1e9) + `"`
		writeSample(w, name, "_bucket", joinLabels(labels, le), strconv.FormatUint(cum, 10))
	}
	writeSample(w, name, "_bucket", joinLabels(labels, `le="+Inf"`), strconv.FormatUint(s.Count, 10))
	writeSample(w, name, "_sum", labels, formatFloat(float64(s.SumNs)/1e9))
	writeSample(w, name, "_count", labels, strconv.FormatUint(s.Count, 10))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func writeSample(w *bufio.Writer, name, suffix, labels, value string) {
	w.WriteString(name)
	w.WriteString(suffix)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
