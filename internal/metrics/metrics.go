// Package metrics is the serving stack's dependency-free observability
// core: cache-line-padded sharded atomic counters, gauges, and
// log-bucketed latency histograms, collected in a Registry that encodes
// Prometheus text exposition format by hand (no client library).
//
// The design constraint is the record path, not the scrape path: the PR 2
// and PR 6 read paths are zero-allocation and tens of nanoseconds per
// operation, so an always-on histogram must cost nothing to have armed —
// no allocation, no locks, no shared cache-line read-modify-write.
// Counters and histograms stripe their cells across cache-line-padded
// shards selected by a goroutine-stack hash (the same trick the QSBR
// reader slots use), so concurrent recorders on different goroutines
// rarely touch the same line; a scrape sums the stripes. Recording is
// one table lookup plus one or two atomic adds: under 20ns and 0 allocs
// (TestRecordZeroAllocs and BenchmarkHistogramObserve hold the line).
//
// Scrapes are snapshot-on-read: Registry.WriteText sums every stripe at
// the moment of the scrape. Concurrent recording never blocks; a scrape
// racing a record may or may not see it, which is exactly Prometheus'
// sampling contract.
package metrics

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// numStripes is the per-metric stripe count: the smallest power of two
// covering GOMAXPROCS at init, capped at 64 so a metric-heavy process
// stays small. More stripes than recording goroutines buys nothing.
var numStripes = stripeCount()

func stripeCount() int {
	n := runtime.GOMAXPROCS(0)
	c := 1
	for c < n {
		c <<= 1
	}
	if c > 64 {
		c = 64
	}
	return c
}

// stripeHint returns a stripe selector that differs between goroutines:
// the address of a stack variable lands on the calling goroutine's stack,
// and distinct stacks differ above the frame bits. Stacks may move, so
// this is a locality hint, never a correctness requirement (any stripe is
// correct; a good hint just avoids cache-line ping-pong).
//
//go:nosplit
func stripeHint() uint64 {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	runtime.KeepAlive(&b)
	return uint64(p >> 9)
}

// padCell is one striped counter cell on its own cache line.
type padCell struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing value, striped across cache-line-
// padded cells. Inc and Add are safe for concurrent use and never
// allocate; Value sums the stripes.
type Counter struct {
	cells []padCell
	mask  uint64
}

func newCounter() *Counter {
	return &Counter{cells: make([]padCell, numStripes), mask: uint64(numStripes - 1)}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n is unsigned: counters only go up).
func (c *Counter) Add(n uint64) {
	c.cells[stripeHint()&c.mask].n.Add(n)
}

// Value returns the summed count across stripes.
func (c *Counter) Value() uint64 {
	var v uint64
	for i := range c.cells {
		v += c.cells[i].n.Load()
	}
	return v
}

// Gauge is a value that can go up and down. Gauges are set at event rate
// (connections opening, batches entering), orders of magnitude below the
// per-op record rate, so a single atomic cell suffices — no striping.
type Gauge struct {
	v atomic.Int64
}

func newGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds 1; Dec subtracts 1.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Metric kinds, as Prometheus TYPE lines spell them.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// series is one labeled instance under a family. Exactly one of the
// value fields is set, matching the family's kind.
type series struct {
	labels  string // rendered `key="value",...` (no braces), may be empty
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family is one metric name: HELP, TYPE, and its labeled series.
type family struct {
	name, help, kind string
	series           []*series
	// collect, when non-nil, emits this family's samples at scrape time
	// with dynamic labels (per-follower replication lag, whose label set
	// changes as followers come and go).
	collect func(emit func(labels []string, value float64))
}

// Registry holds metric families in registration order and encodes them
// on demand. Registration takes a lock; recording on the returned
// metrics never does.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// renderLabels formats k1,v1,k2,v2,... pairs as `k1="v1",k2="v2"`,
// escaped per the exposition format. Panics on an odd pair count — label
// sets are compile-time shapes, not runtime data.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("metrics: odd label list (want key, value pairs)")
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// register finds or creates the family and appends a new series. A name
// reused with a different kind is a programming error and panics.
func (r *Registry) register(name, help, kind string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.kind, kind))
	}
	if s != nil {
		f.series = append(f.series, s)
	}
}

// Counter registers (or extends) a counter family and returns the series
// for the given label pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := newCounter()
	r.register(name, help, KindCounter, &series{labels: renderLabels(labels), counter: c})
	return c
}

// Gauge registers a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := newGauge()
	r.register(name, help, KindGauge, &series{labels: renderLabels(labels), gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, KindGauge, &series{labels: renderLabels(labels), gaugeFn: fn})
}

// Histogram registers a latency histogram series on the fixed
// 100ns–10s geometric grid.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	h := newHistogram()
	r.register(name, help, KindHistogram, &series{labels: renderLabels(labels), hist: h})
	return h
}

// CollectFunc registers a scrape-time collector family: fn is called on
// every scrape and emits samples with dynamic label pairs. kind must be
// KindCounter or KindGauge (histograms have fixed series).
func (r *Registry) CollectFunc(name, help, kind string, fn func(emit func(labels []string, value float64))) {
	if kind != KindCounter && kind != KindGauge {
		panic("metrics: CollectFunc kind must be counter or gauge")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[name] != nil {
		panic("metrics: collector family " + name + " already registered")
	}
	f := &family{name: name, help: help, kind: kind, collect: fn}
	r.byName[name] = f
	r.families = append(r.families, f)
}

// snapshotFamilies copies the family list under the lock so encoding and
// collectors run outside it (a collector may itself take locks).
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	fs := make([]*family, len(r.families))
	copy(fs, r.families)
	return fs
}

// RegisterRuntime adds process-level gauges (goroutines, heap, GC) to
// the registry under the given prefix (e.g. "whkv"). One ReadMemStats
// sample is shared by the heap/GC gauges of a scrape: the gauges of one
// family group are encoded back to back, so a 50ms reuse window means
// one stop-the-world sample per scrape, not four.
func RegisterRuntime(r *Registry, prefix string) {
	var (
		mu   sync.Mutex
		mem  runtime.MemStats
		last time.Time
	)
	sample := func(read func(*runtime.MemStats) float64) float64 {
		mu.Lock()
		defer mu.Unlock()
		if now := time.Now(); now.Sub(last) > 50*time.Millisecond {
			runtime.ReadMemStats(&mem)
			last = now
		}
		return read(&mem)
	}
	r.GaugeFunc(prefix+"_goroutines", "Number of live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc(prefix+"_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		return sample(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) })
	})
	r.GaugeFunc(prefix+"_heap_sys_bytes", "Heap bytes obtained from the OS.", func() float64 {
		return sample(func(m *runtime.MemStats) float64 { return float64(m.HeapSys) })
	})
	r.GaugeFunc(prefix+"_gc_cycles_total", "Completed GC cycles.", func() float64 {
		return sample(func(m *runtime.MemStats) float64 { return float64(m.NumGC) })
	})
	r.GaugeFunc(prefix+"_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", func() float64 {
		return sample(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 })
	})
}

// sortedLabelPairs renders dynamic collector labels deterministically
// (sorted by key) so scrape output is stable for tests and diffing.
func sortedLabelPairs(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("metrics: odd label list (want key, value pairs)")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	flat := make([]string, 0, len(labels))
	for _, p := range kvs {
		flat = append(flat, p.k, p.v)
	}
	return renderLabels(flat)
}
