package metrics

import (
	"math/rand/v2"
	"testing"
	"time"
)

func TestBucketBounds(t *testing.T) {
	if BucketBounds[0] != 100 {
		t.Fatalf("first bound = %dns, want 100ns", BucketBounds[0])
	}
	if BucketBounds[NumBuckets-1] != 10_000_000_000 {
		t.Fatalf("last bound = %dns, want 10s", BucketBounds[NumBuckets-1])
	}
	for i := 1; i < NumBuckets; i++ {
		if BucketBounds[i] <= BucketBounds[i-1] {
			t.Fatalf("bounds not strictly ascending at %d: %d <= %d",
				i, BucketBounds[i], BucketBounds[i-1])
		}
		// The grid is geometric at 10^(1/5) ≈ 1.585; integer rounding may
		// wobble the ratio slightly, never structurally.
		ratio := float64(BucketBounds[i]) / float64(BucketBounds[i-1])
		if ratio < 1.55 || ratio > 1.62 {
			t.Fatalf("bucket ratio at %d = %.4f, want ~1.585", i, ratio)
		}
	}
}

// bucketOfRef is the trivially correct linear-search reference.
func bucketOfRef(ns int64) int {
	for i := 0; i < NumBuckets; i++ {
		if ns <= BucketBounds[i] {
			return i
		}
	}
	return NumBuckets
}

func TestBucketOfBoundaries(t *testing.T) {
	cases := []int64{0, 1, 99, 100, 101}
	for i := 0; i < NumBuckets; i++ {
		b := BucketBounds[i]
		cases = append(cases, b-1, b, b+1)
	}
	cases = append(cases, maxBoundNs*3, 1<<62)
	for _, ns := range cases {
		if got, want := bucketOf(ns), bucketOfRef(ns); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", ns, got, want)
		}
	}
	r := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 100_000; i++ {
		ns := int64(r.Uint64() >> uint(r.IntN(40)))
		if got, want := bucketOf(ns), bucketOfRef(ns); got != want {
			t.Fatalf("bucketOf(%d) = %d, want %d", ns, got, want)
		}
	}
}

// TestHistogramMerge checks the merge property: recording a stream into
// two histograms and merging their snapshots equals recording the whole
// stream into one — the guarantee that lets stripes, shards and
// processes aggregate by addition.
func TestHistogramMerge(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 0; i < 50_000; i++ {
		ns := int64(r.Uint64() >> uint(r.IntN(42)))
		if i%2 == 0 {
			a.ObserveNs(ns)
		} else {
			b.ObserveNs(ns)
		}
		all.ObserveNs(ns)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	if merged != all.Snapshot() {
		t.Fatalf("merged snapshot differs from single-histogram snapshot:\n%+v\nvs\n%+v",
			merged, all.Snapshot())
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram()
	// 1000 observations at exactly 1µs and 10 at 1ms: p50 must sit in the
	// 1µs bucket, p999+ in the 1ms region.
	for i := 0; i < 1000; i++ {
		h.ObserveNs(1_000)
	}
	for i := 0; i < 10; i++ {
		h.ObserveNs(1_000_000)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 > float64(BucketBounds[bucketOf(1_000)]) {
		t.Fatalf("p50 = %.0fns, want <= the 1µs bucket bound", p50)
	}
	p999 := s.Quantile(0.999)
	if p999 < 500_000 || p999 > 2_000_000 {
		t.Fatalf("p999 = %.0fns, want around 1ms", p999)
	}
	if got := (HistogramSnapshot{}).Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// Overflow observations report the last finite bound.
	o := NewHistogram()
	o.Observe(time.Minute)
	if got := o.Snapshot().Quantile(0.5); got != float64(maxBoundNs) {
		t.Fatalf("overflow quantile = %v, want %d", got, int64(maxBoundNs))
	}
}

func TestSnapshotSumAndMean(t *testing.T) {
	h := NewHistogram()
	h.ObserveNs(100)
	h.ObserveNs(300)
	s := h.Snapshot()
	if s.Count != 2 || s.SumNs != 400 {
		t.Fatalf("count/sum = %d/%d, want 2/400", s.Count, s.SumNs)
	}
	if s.Mean() != 200 {
		t.Fatalf("mean = %v, want 200", s.Mean())
	}
	// Negative (clock-step) observations clamp rather than corrupt.
	h.ObserveNs(-50)
	if s := h.Snapshot(); s.SumNs != 400 || s.Counts[0] != 2 {
		t.Fatalf("negative observation mishandled: %+v", s)
	}
}
