package metrics

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// DebugMux assembles the operator HTTP surface a whkv process exposes on
// its -metrics-addr listener:
//
//   - /metrics        Prometheus text exposition of reg
//   - /healthz        200 "ok" while health() returns nil, 503 with the
//     error text otherwise — wired to the degraded/fenced state machines
//   - /debug/slowops  JSON dump of the slow-op tracer ring
//   - /debug/pprof/*  the standard Go profiler endpoints
//
// Any argument may be nil; its endpoint then answers 404 (healthz: a nil
// checker means unconditionally healthy).
func DebugMux(reg *Registry, slow *SlowLog, health func() error) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if health != nil {
			if err := health(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				w.Write([]byte(err.Error() + "\n"))
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
	if slow != nil {
		mux.HandleFunc("/debug/slowops", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			doc := struct {
				ThresholdUS int64    `json:"threshold_us"`
				Total       uint64   `json:"total"`
				Ops         []SlowOp `json:"ops"`
			}{
				ThresholdUS: slow.Threshold().Microseconds(),
				Total:       slow.Total(),
				Ops:         slow.Snapshot(),
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(doc)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
