package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowLog is the always-on slow-operation tracer: a fixed ring of the
// last N operations that exceeded the armed threshold. The fast path — an
// operation under the threshold — is one atomic load and a compare, so
// the tracer can sit on the zero-allocation read path permanently; only
// an actually-slow operation pays the ring insert (a mutex and a key
// copy), and by definition a slow operation has time to spare.
type SlowLog struct {
	threshold atomic.Int64 // ns; <= 0 disarms the tracer
	total     atomic.Uint64

	mu   sync.Mutex
	ring []SlowOp
	next int
	full bool
}

// SlowOp is one traced operation. Keys are truncated to maxSlowKey bytes
// and recorded as strings (a traced op's key must survive the caller
// reusing its buffer).
type SlowOp struct {
	Time       time.Time `json:"time"`
	Op         string    `json:"op"`
	Key        string    `json:"key,omitempty"`
	Status     string    `json:"status"`
	DurationUS int64     `json:"duration_us"`
}

const maxSlowKey = 64

// NewSlowLog returns a tracer keeping the last capacity slow operations
// (minimum 16) at the given threshold. A zero threshold disarms it.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 16 {
		capacity = 16
	}
	l := &SlowLog{ring: make([]SlowOp, capacity)}
	l.threshold.Store(int64(threshold))
	return l
}

// Threshold returns the armed threshold (0 when disarmed).
func (l *SlowLog) Threshold() time.Duration {
	return time.Duration(l.threshold.Load())
}

// SetThreshold rearms the tracer at runtime.
func (l *SlowLog) SetThreshold(d time.Duration) {
	l.threshold.Store(int64(d))
}

// Total counts every operation traced since start (the ring keeps only
// the newest capacity of them).
func (l *SlowLog) Total() uint64 { return l.total.Load() }

// Record traces the operation if it exceeded the threshold. Safe on a
// nil receiver (an unarmed server passes nil) and allocation-free below
// the threshold.
func (l *SlowLog) Record(op string, key []byte, status string, d time.Duration) {
	if l == nil {
		return
	}
	t := l.threshold.Load()
	if t <= 0 || int64(d) < t {
		return
	}
	if len(key) > maxSlowKey {
		key = key[:maxSlowKey]
	}
	e := SlowOp{
		Time:       time.Now(),
		Op:         op,
		Key:        string(key),
		Status:     status,
		DurationUS: d.Microseconds(),
	}
	l.total.Add(1)
	l.mu.Lock()
	l.ring[l.next] = e
	l.next++
	if l.next == len(l.ring) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// Snapshot returns the traced operations, newest first.
func (l *SlowLog) Snapshot() []SlowOp {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.ring)
	}
	out := make([]SlowOp, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}
