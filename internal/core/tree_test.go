package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func opts(concurrent bool) Options {
	o := DefaultOptions()
	o.Concurrent = concurrent
	return o
}

// smallOpts uses a tiny leaf cap so splits and merges happen constantly.
func smallOpts(concurrent bool) Options {
	o := opts(concurrent)
	o.LeafCap = 6
	o.MergeSize = 4
	return o
}

func TestEmptyIndex(t *testing.T) {
	for _, c := range []bool{true, false} {
		w := New(opts(c))
		if _, ok := w.Get([]byte("nope")); ok {
			t.Fatal("Get on empty index returned ok")
		}
		if w.Del([]byte("nope")) {
			t.Fatal("Del on empty index returned true")
		}
		if w.Count() != 0 {
			t.Fatal("Count != 0")
		}
		if _, _, ok := w.Min(); ok {
			t.Fatal("Min on empty index returned ok")
		}
		if _, _, ok := w.Max(); ok {
			t.Fatal("Max on empty index returned ok")
		}
		n := 0
		w.Scan(nil, func(k, v []byte) bool { n++; return true })
		if n != 0 {
			t.Fatal("Scan on empty index emitted keys")
		}
		if err := w.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBasicSetGetDel(t *testing.T) {
	w := New(opts(true))
	keys := []string{"Aaron", "Abbe", "Andrew", "Austin", "Denice", "Jacob",
		"James", "Jason", "John", "Joseph", "Julian", "Justin"}
	for i, k := range keys {
		w.Set([]byte(k), []byte(fmt.Sprintf("v%d", i)))
	}
	if w.Count() != int64(len(keys)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(keys))
	}
	for i, k := range keys {
		v, ok := w.Get([]byte(k))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%q) = %q, %v", k, v, ok)
		}
	}
	// Paper §2.3's tricky lookups: keys absent but adjacent to anchors.
	for _, k := range []string{"A", "Brown", "J", "Zed", ""} {
		if _, ok := w.Get([]byte(k)); ok {
			t.Fatalf("Get(%q) should miss", k)
		}
	}
	// Update in place.
	w.Set([]byte("John"), []byte("updated"))
	if v, _ := w.Get([]byte("John")); string(v) != "updated" {
		t.Fatalf("update failed: %q", v)
	}
	if w.Count() != int64(len(keys)) {
		t.Fatal("update changed Count")
	}
	// Delete half.
	for i, k := range keys {
		if i%2 == 0 {
			if !w.Del([]byte(k)) {
				t.Fatalf("Del(%q) = false", k)
			}
		}
	}
	for i, k := range keys {
		_, ok := w.Get([]byte(k))
		if want := i%2 != 0; ok != want {
			t.Fatalf("after deletes Get(%q) = %v, want %v", k, ok, want)
		}
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitsWithSmallLeaves(t *testing.T) {
	w := New(smallOpts(true))
	const n = 500
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		w.Set(k, []byte{byte(i)})
		if i%50 == 0 {
			if err := w.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	st := w.Stats()
	if st.Leaves < n/8 {
		t.Fatalf("expected many leaves, got %d", st.Leaves)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		if _, ok := w.Get(k); !ok {
			t.Fatalf("lost key %q", k)
		}
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergesDrainIndex(t *testing.T) {
	w := New(smallOpts(true))
	const n = 400
	for i := 0; i < n; i++ {
		w.Set([]byte(fmt.Sprintf("key-%05d", i)), []byte("x"))
	}
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for j, i := range perm {
		if !w.Del([]byte(fmt.Sprintf("key-%05d", i))) {
			t.Fatalf("Del lost key %d", i)
		}
		if j%37 == 0 {
			if err := w.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", j+1, err)
			}
		}
	}
	if w.Count() != 0 {
		t.Fatalf("Count = %d after draining", w.Count())
	}
	st := w.Stats()
	if st.Leaves > 3 {
		t.Fatalf("merges did not shrink the list: %d leaves", st.Leaves)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyKeyAndZeroBytes(t *testing.T) {
	w := New(smallOpts(true))
	keys := [][]byte{
		{}, {0}, {0, 0}, {0, 0, 0}, {0, 1}, {1}, {1, 0}, {1, 0, 0}, {2},
	}
	for i, k := range keys {
		w.Set(append([]byte{}, k...), []byte{byte(i)})
	}
	for i, k := range keys {
		v, ok := w.Get(k)
		if !ok || v[0] != byte(i) {
			t.Fatalf("Get(%v) = %v, %v", k, v, ok)
		}
	}
	var got [][]byte
	w.Scan(nil, func(k, v []byte) bool {
		got = append(got, append([]byte{}, k...))
		return true
	})
	want := make([][]byte, len(keys))
	for i, k := range keys {
		want[i] = append([]byte{}, k...)
	}
	sort.Slice(want, func(i, j int) bool { return bytes.Compare(want[i], want[j]) < 0 })
	if len(got) != len(want) {
		t.Fatalf("scan found %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("scan[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFatLeaves reproduces §3.3 / Figure 8: binary keys sharing a prefix
// and differing only in trailing zero counts admit no legal split anchor,
// so the leaf must grow fat instead of splitting — and must stay correct.
func TestFatLeaves(t *testing.T) {
	o := opts(true)
	o.LeafCap = 4
	o.MergeSize = 2
	w := New(o)
	var keys [][]byte
	for n := 0; n <= 12; n++ {
		k := append([]byte{1}, make([]byte, n)...) // 1, 10, 100, ...
		keys = append(keys, k)
	}
	for i, k := range keys {
		w.Set(k, []byte{byte(i)})
		if err := w.CheckInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", i, err)
		}
	}
	st := w.Stats()
	if st.FatLeaves == 0 {
		t.Fatal("expected at least one fat leaf")
	}
	for i, k := range keys {
		v, ok := w.Get(k)
		if !ok || v[0] != byte(i) {
			t.Fatalf("Get(1 followed by %d zeros) failed", i)
		}
	}
	// Now make the set splittable and verify recovery.
	for i := 0; i < 64; i++ {
		w.Set([]byte{1, byte(i + 1), byte(i)}, []byte("z"))
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if v, ok := w.Get(k); !ok || v[0] != byte(i) {
			t.Fatalf("lost fat-leaf key %d after later splits", i)
		}
	}
}

func TestScanAscending(t *testing.T) {
	w := New(smallOpts(true))
	const n = 300
	for i := 0; i < n; i++ {
		w.Set([]byte(fmt.Sprintf("k%04d", i*2)), []byte{1})
	}
	// From an absent key in the middle.
	var got []string
	w.Scan([]byte("k0101"), func(k, v []byte) bool {
		got = append(got, string(k))
		return len(got) < 10
	})
	want := []string{"k0102", "k0104", "k0106", "k0108", "k0110",
		"k0112", "k0114", "k0116", "k0118", "k0120"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan got %v want %v", got, want)
	}
	// Full scan is totally ordered and complete.
	count, lastKey := 0, ""
	w.Scan(nil, func(k, v []byte) bool {
		if string(k) <= lastKey {
			t.Fatalf("scan out of order: %q after %q", k, lastKey)
		}
		lastKey = string(k)
		count++
		return true
	})
	if count != n {
		t.Fatalf("full scan found %d keys, want %d", count, n)
	}
}

func TestScanDescending(t *testing.T) {
	w := New(smallOpts(true))
	const n = 300
	for i := 0; i < n; i++ {
		w.Set([]byte(fmt.Sprintf("k%04d", i*2)), []byte{1})
	}
	var got []string
	w.ScanDesc([]byte("k0101"), func(k, v []byte) bool {
		got = append(got, string(k))
		return len(got) < 5
	})
	want := []string{"k0100", "k0098", "k0096", "k0094", "k0092"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("desc scan got %v want %v", got, want)
	}
	// Inclusive bound.
	got = got[:0]
	w.ScanDesc([]byte("k0100"), func(k, v []byte) bool {
		got = append(got, string(k))
		return len(got) < 2
	})
	if got[0] != "k0100" {
		t.Fatalf("desc scan should include the start key, got %v", got)
	}
	count, lastKey := 0, "\xff"
	w.ScanDesc(nil, func(k, v []byte) bool {
		if string(k) >= lastKey {
			t.Fatalf("desc scan out of order: %q after %q", k, lastKey)
		}
		lastKey = string(k)
		count++
		return true
	})
	if count != n {
		t.Fatalf("full desc scan found %d keys, want %d", count, n)
	}
}

func TestMinMax(t *testing.T) {
	w := New(smallOpts(true))
	for i := 100; i < 200; i++ {
		w.Set([]byte(fmt.Sprintf("m%d", i)), []byte{1})
	}
	if k, _, ok := w.Min(); !ok || string(k) != "m100" {
		t.Fatalf("Min = %q, %v", k, ok)
	}
	if k, _, ok := w.Max(); !ok || string(k) != "m199" {
		t.Fatalf("Max = %q, %v", k, ok)
	}
}

func TestIterator(t *testing.T) {
	w := New(smallOpts(true))
	const n = 257
	for i := 0; i < n; i++ {
		w.Set([]byte(fmt.Sprintf("i%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	it := w.NewIter(nil)
	count := 0
	for it.Next() {
		want := fmt.Sprintf("i%04d", count)
		if string(it.Key()) != want {
			t.Fatalf("iter key %q, want %q", it.Key(), want)
		}
		if string(it.Value()) != fmt.Sprintf("v%d", count) {
			t.Fatalf("iter value mismatch at %d", count)
		}
		count++
	}
	if count != n {
		t.Fatalf("iterated %d keys, want %d", count, n)
	}
	if it.Next() {
		t.Fatal("Next after exhaustion returned true")
	}
	// Seeded start, absent key.
	it = w.NewIter([]byte("i0100x"))
	if !it.Next() || string(it.Key()) != "i0101" {
		t.Fatalf("seeked iterator at %q", it.Key())
	}
	// Seeded start, present key (inclusive).
	it = w.NewIter([]byte("i0200"))
	if !it.Next() || string(it.Key()) != "i0200" {
		t.Fatalf("seeked iterator at %q, want i0200", it.Key())
	}
}

func TestRangeAsc(t *testing.T) {
	w := New(opts(true))
	for i := 0; i < 100; i++ {
		w.Set([]byte(fmt.Sprintf("r%03d", i)), []byte{byte(i)})
	}
	keys, vals := w.RangeAsc([]byte("r050"), 10)
	if len(keys) != 10 || string(keys[0]) != "r050" || string(keys[9]) != "r059" {
		t.Fatalf("RangeAsc wrong window: %q..%q (%d)", keys[0], keys[len(keys)-1], len(keys))
	}
	if vals[0][0] != 50 {
		t.Fatal("RangeAsc wrong values")
	}
	keys, _ = w.RangeAsc([]byte("r095"), 10)
	if len(keys) != 5 {
		t.Fatalf("RangeAsc at tail returned %d keys, want 5", len(keys))
	}
}

// modelRun drives the index against a reference map + sorted-key model.
func modelRun(t *testing.T, o Options, seed int64, steps int, gen func(*rand.Rand) []byte) {
	t.Helper()
	w := New(o)
	model := map[string]string{}
	r := rand.New(rand.NewSource(seed))
	checkEvery := steps / 16
	if checkEvery == 0 {
		checkEvery = 1
	}
	for i := 0; i < steps; i++ {
		k := gen(r)
		switch op := r.Intn(10); {
		case op < 5: // set
			v := fmt.Sprintf("v%d", i)
			w.Set(k, []byte(v))
			model[string(k)] = v
		case op < 7: // del
			got := w.Del(k)
			_, want := model[string(k)]
			if got != want {
				t.Fatalf("step %d: Del(%x) = %v, want %v", i, k, got, want)
			}
			delete(model, string(k))
		case op < 9: // get
			v, ok := w.Get(k)
			mv, mok := model[string(k)]
			if ok != mok || (ok && string(v) != mv) {
				t.Fatalf("step %d: Get(%x) = %q,%v want %q,%v", i, k, v, ok, mv, mok)
			}
		default: // bounded range
			limit := 1 + r.Intn(8)
			keys, _ := w.RangeAsc(k, limit)
			var want []string
			for mk := range model {
				if mk >= string(k) {
					want = append(want, mk)
				}
			}
			sort.Strings(want)
			if len(want) > limit {
				want = want[:limit]
			}
			if len(keys) != len(want) {
				t.Fatalf("step %d: range(%x,%d) len %d want %d", i, k, limit, len(keys), len(want))
			}
			for j := range keys {
				if string(keys[j]) != want[j] {
					t.Fatalf("step %d: range[%d] = %x want %x", i, j, keys[j], want[j])
				}
			}
		}
		if i%checkEvery == 0 {
			if err := w.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	// Final: exhaustive agreement.
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if int(w.Count()) != len(model) {
		t.Fatalf("Count = %d, model has %d", w.Count(), len(model))
	}
	var got []string
	w.Scan(nil, func(k, v []byte) bool {
		got = append(got, string(k))
		if model[string(k)] != string(v) {
			t.Fatalf("final scan: value mismatch for %x", k)
		}
		return true
	})
	want := make([]string, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("final scan found %d keys, model has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("final scan[%d] = %x, want %x", i, got[i], want[i])
		}
	}
}

// Key generators spanning the nasty regimes: tiny binary alphabets force
// the ⊥-extension, conversion, and fat-leaf machinery constantly; shared
// prefixes force long anchors; plain random exercises the common case.
func genBinary(r *rand.Rand) []byte {
	n := r.Intn(8)
	k := make([]byte, n)
	for i := range k {
		k[i] = byte(r.Intn(2))
	}
	return k
}

func genSmallAlpha(r *rand.Rand) []byte {
	n := r.Intn(10)
	k := make([]byte, n)
	for i := range k {
		k[i] = 'a' + byte(r.Intn(3))
	}
	return k
}

func genTrailingZeros(r *rand.Rand) []byte {
	base := make([]byte, 1+r.Intn(3))
	for i := range base {
		base[i] = byte(r.Intn(3))
	}
	return append(base, make([]byte, r.Intn(6))...)
}

func genRandom8(r *rand.Rand) []byte {
	k := make([]byte, 8)
	r.Read(k)
	return k
}

func genSharedPrefix(r *rand.Rand) []byte {
	prefixes := []string{"http://www.example.com/", "http://www.example.org/a/", "user:"}
	p := prefixes[r.Intn(len(prefixes))]
	return []byte(fmt.Sprintf("%s%03d", p, r.Intn(300)))
}

func TestModelBinaryKeys(t *testing.T) {
	modelRun(t, smallOpts(true), 1, 4000, genBinary)
}

func TestModelSmallAlphabet(t *testing.T) {
	modelRun(t, smallOpts(true), 2, 4000, genSmallAlpha)
}

func TestModelTrailingZeros(t *testing.T) {
	modelRun(t, smallOpts(true), 3, 4000, genTrailingZeros)
}

func TestModelRandom8(t *testing.T) {
	modelRun(t, smallOpts(true), 4, 4000, genRandom8)
}

func TestModelSharedPrefix(t *testing.T) {
	modelRun(t, smallOpts(true), 5, 4000, genSharedPrefix)
}

func TestModelUnsafeMode(t *testing.T) {
	modelRun(t, smallOpts(false), 6, 4000, genBinary)
	modelRun(t, smallOpts(false), 7, 4000, genTrailingZeros)
}

// TestModelAblations runs the model under every optimization combination,
// since Figure 11's variants must all be correct, not just fast.
func TestModelAblations(t *testing.T) {
	for mask := 0; mask < 16; mask++ {
		o := smallOpts(true)
		o.TagMatching = mask&1 != 0
		o.IncHashing = mask&2 != 0
		o.SortByTag = mask&4 != 0
		o.DirectPos = mask&8 != 0
		t.Run(fmt.Sprintf("mask%02d", mask), func(t *testing.T) {
			modelRun(t, o, int64(100+mask), 1500, genSmallAlpha)
		})
	}
}

func TestModelPaperLeafSize(t *testing.T) {
	modelRun(t, opts(true), 8, 6000, genRandom8)
}

func TestLargeValuesAndOverwrite(t *testing.T) {
	w := New(opts(true))
	big := bytes.Repeat([]byte("x"), 4096)
	w.Set([]byte("big"), big)
	if v, ok := w.Get([]byte("big")); !ok || len(v) != 4096 {
		t.Fatal("big value lost")
	}
	w.Set([]byte("big"), nil)
	if v, ok := w.Get([]byte("big")); !ok || v != nil {
		t.Fatalf("nil value overwrite failed: %v %v", v, ok)
	}
}

func TestStatsAndFootprint(t *testing.T) {
	w := New(smallOpts(true))
	for i := 0; i < 500; i++ {
		w.Set([]byte(fmt.Sprintf("stat-%04d", i)), []byte("0123456789"))
	}
	st := w.Stats()
	if st.Keys != 500 || st.Leaves == 0 || st.MetaItems == 0 || st.LeafItems != st.Leaves {
		t.Fatalf("stats look wrong: %+v", st)
	}
	if st.MaxAnchorLen == 0 {
		t.Fatal("MaxAnchorLen = 0 with many leaves")
	}
	fp := w.Footprint()
	// At minimum the raw key+value bytes must be accounted for.
	if fp < 500*(9+10) {
		t.Fatalf("Footprint = %d, implausibly small", fp)
	}
}

func TestSequentialAndReverseInsert(t *testing.T) {
	for name, step := range map[string]int{"asc": 1, "desc": -1} {
		t.Run(name, func(t *testing.T) {
			w := New(smallOpts(true))
			const n = 600
			for i := 0; i < n; i++ {
				j := i
				if step < 0 {
					j = n - 1 - i
				}
				w.Set([]byte(fmt.Sprintf("s%05d", j)), []byte{1})
			}
			if err := w.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			count := 0
			w.Scan(nil, func(k, v []byte) bool { count++; return true })
			if count != n {
				t.Fatalf("found %d, want %d", count, n)
			}
		})
	}
}
