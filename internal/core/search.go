package core

import "bytes"

// searchLPM finds the longest prefix of key present in the table: Algorithm
// 1's binary search on prefix lengths. It returns the matched item and the
// hash of the matched prefix (needed for the subsequent child probe).
//
// Two of the paper's §3.1 optimizations live here:
//
//   - IncHashing: the CRC of the confirmed prefix key[:m] is extended by
//     key[m:pl] on each probe instead of rehashing key[:pl] from scratch.
//   - TagMatching (optimistic mode): every probe trusts the first 16-bit tag
//     match without comparing keys. Tag misses are exact ("no false
//     negatives"), so the binary search's upper boundary is always sound;
//     only the lower boundary can be optimistic. One full comparison of the
//     final candidate therefore certifies the whole search, and on a
//     mismatch the search reruns with exact probes.
func (w *Wormhole) searchLPM(t *metaTable, key []byte) (*metaNode, uint32) {
	if node, h, ok := w.lpmPass(t, key, w.opt.TagMatching); ok {
		return node, h
	}
	// Optimistic pass hit a false-positive tag; redo with verification.
	node, h, _ := w.lpmPass(t, key, false)
	return node, h
}

func (w *Wormhole) lpmPass(t *metaTable, key []byte, optimistic bool) (*metaNode, uint32, bool) {
	maxl := min(len(key), t.maxLen)
	m, n := 0, maxl+1
	var crcM uint32
	nodeM := t.get(0, nil, w.opt.TagMatching) // the root item always exists
	for m+1 < n {
		pl := (m + n) / 2
		var h uint32
		if w.opt.IncHashing {
			h = hashExtend(crcM, key[m:pl])
		} else {
			h = hashKey(key[:pl])
		}
		var nd *metaNode
		if optimistic {
			nd = t.getTagOnly(h)
		} else {
			nd = t.get(h, key[:pl], w.opt.TagMatching)
		}
		if nd != nil {
			m, crcM, nodeM = pl, h, nd
		} else {
			n = pl
		}
	}
	if optimistic && !bytes.Equal(nodeM.key, key[:m]) {
		return nil, 0, false
	}
	return nodeM, crcM, true
}

// searchMeta resolves key to its target leaf — the leaf whose real anchor
// K1 and successor anchor K2 satisfy K1 <= key < K2 (Algorithm 3's
// searchTrieHT). All anchor comparisons use the real (un-⊥-extended) form.
func (w *Wormhole) searchMeta(t *metaTable, key []byte) *leafNode {
	node, h := w.searchLPM(t, key)
	if node.isLeafItem() {
		// The stored anchor is a prefix of the key, so by the prefix
		// condition it is the unique such anchor and its leaf is the target.
		return node.leaf
	}
	if len(node.key) == len(key) {
		// The key was consumed at an internal node: every anchor in this
		// subtree strictly extends the key's stored form. The subtree's
		// leftmost leaf is the first candidate; if the key sorts before
		// even that leaf's real anchor, the target is one to the left.
		lm := node.leftmost
		if bytes.Compare(key, lm.anchor.Load().real()) < 0 {
			if p := lm.prev.Load(); p != nil {
				return p
			}
		}
		return lm
	}
	// First unmatched token. The LPM is maximal, so this child bit is clear
	// and the bitmap yields an immediate sibling on at least one side.
	missing := key[len(node.key)]
	if sib, ok := node.leftSibling(missing); ok {
		child := t.getChild(h, node.key, sib)
		if child.isLeafItem() {
			return child.leaf
		}
		return child.rightmost
	}
	sib, _ := node.rightSibling(missing)
	child := t.getChild(h, node.key, sib)
	var lm *leafNode
	if child.isLeafItem() {
		lm = child.leaf
	} else {
		lm = child.leftmost
	}
	if p := lm.prev.Load(); p != nil {
		return p
	}
	return lm
}
