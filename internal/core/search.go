package core

import "bytes"

// searchLPM finds the longest prefix of key present in the table: Algorithm
// 1's binary search on prefix lengths. It returns the matched item and the
// hash of the matched prefix (needed for the subsequent child probe).
//
// Two of the paper's §3.1 optimizations live here:
//
//   - IncHashing: the CRC of the confirmed prefix key[:m] is extended by
//     key[m:pl] on each probe instead of rehashing key[:pl] from scratch.
//   - TagMatching (optimistic mode): every probe trusts the first 16-bit tag
//     match without comparing keys. Tag misses are exact ("no false
//     negatives"), so the binary search's upper boundary is always sound;
//     only the lower boundary can be optimistic. One full comparison of the
//     final candidate therefore certifies the whole search, and on a
//     mismatch the search reruns with exact probes.
func (w *Wormhole) searchLPM(t *metaTable, key []byte) (*metaNode, uint32) {
	if node, h, ok := w.lpmPass(t, key, w.opt.TagMatching); ok {
		return node, h
	}
	// Optimistic pass hit a false-positive tag; redo with verification.
	node, h, _ := w.lpmPass(t, key, false)
	return node, h
}

// maxEagerPrefix bounds the stack-resident prefix-hash array of the
// memory-parallel LPM pass; longer keys fall back to the lazy pass.
const maxEagerPrefix = 64

func (w *Wormhole) lpmPass(t *metaTable, key []byte, optimistic bool) (*metaNode, uint32, bool) {
	maxl := min(len(key), t.maxLen)
	if w.opt.IncHashing && maxl <= maxEagerPrefix {
		return w.lpmPassEager(t, key, maxl, optimistic)
	}
	m, n := 0, maxl+1
	var crcM uint32
	nodeM := t.root // the root item always exists in a published table
	for m+1 < n {
		pl := (m + n) / 2
		var h uint32
		if w.opt.IncHashing {
			h = hashExtend(crcM, key[m:pl])
		} else {
			h = hashKey(key[:pl])
		}
		var nd *metaNode
		if optimistic {
			nd = t.getTagOnly(h)
		} else {
			nd = t.get(h, key[:pl], w.opt.TagMatching)
		}
		if nd != nil {
			m, crcM, nodeM = pl, h, nd
		} else {
			n = pl
		}
	}
	if optimistic && !bytes.Equal(nodeM.key, key[:m]) {
		return nil, 0, false
	}
	return nodeM, crcM, true
}

// lpmPassEager is the memory-parallel variant of the prefix binary
// search, used whenever IncHashing is on and the key fits the stack
// array. The lazy pass above extends the confirmed prefix's CRC on each
// probe, which chains every probe's *address* through the previous
// probe's *data* — the CPU cannot begin fetching probe k+1's bucket
// until probe k's cache miss resolves, so the search costs log2(maxLen)
// serialized memory latencies. Here the incremental CRC is instead run
// eagerly over the key once (the same table steps in total), giving
// every candidate depth's bucket address up front; probe addresses then
// depend only on branch outcomes, and the buckets of the first two
// search levels are touched explicitly before the loop so their misses
// overlap. This is the memory-level-parallelism argument of the Cuckoo
// Trie applied to Wormhole's Algorithm 1.
func (w *Wormhole) lpmPassEager(t *metaTable, key []byte, maxl int, optimistic bool) (*metaNode, uint32, bool) {
	// hs[i] = CRC32-C of key[:i], one table step per byte (§3.1's
	// incremental hashing, run ahead of the search instead of inside it).
	var hs [maxEagerPrefix + 1]uint32
	c := ^uint32(0)
	for i := 0; i < maxl; i++ {
		c = crcTable[byte(c)^key[i]] ^ (c >> 8)
		hs[i+1] = ^c
	}
	m, n := 0, maxl+1
	nodeM := t.root // the root item always exists in a published table
	if n > 2 {
		if t.warmSearchLevels(&hs, n) == 0xFFFF {
			nodeM = t.root
		}
	}
	for m+1 < n {
		pl := (m + n) / 2
		var nd *metaNode
		if optimistic {
			nd = t.getTagOnly(hs[pl])
		} else {
			nd = t.get(hs[pl], key[:pl], w.opt.TagMatching)
		}
		if nd != nil {
			m, nodeM = pl, nd
		} else {
			n = pl
		}
	}
	if optimistic && !bytes.Equal(nodeM.key, key[:m]) {
		return nil, 0, false
	}
	return nodeM, hs[m], true
}

// warmSearchLevels touches the buckets of the first three binary-search
// levels of a prefix search whose upper bound is n (the level-1 probe,
// both level-2 candidates, all four level-3 candidates): seven
// independent loads the memory system runs concurrently, where the
// search loop alone would serialize them behind branch resolution.
// Duplicate depths just reload a hot line. The returned tag sum must
// feed a benign branch in the caller so the loads stay live; the batched
// read pipeline reuses this helper to warm every lane's buckets before
// any lane starts its dependent probe chain.
func (t *metaTable) warmSearchLevels(hs *[maxEagerPrefix + 1]uint32, n int) uint16 {
	p1 := n / 2
	p2a, p2b := p1/2, (p1+n)/2
	return t.buckets[hs[p1]&t.mask].tags[0] +
		t.buckets[hs[p2a]&t.mask].tags[0] +
		t.buckets[hs[p2b]&t.mask].tags[0] +
		t.buckets[hs[p2a/2]&t.mask].tags[0] +
		t.buckets[hs[(p2a+p1)/2]&t.mask].tags[0] +
		t.buckets[hs[(p1+p2b)/2]&t.mask].tags[0] +
		t.buckets[hs[(p2b+n)/2]&t.mask].tags[0]
}

// searchMeta resolves key to its target leaf — the leaf whose real anchor
// K1 and successor anchor K2 satisfy K1 <= key < K2 (Algorithm 3's
// searchTrieHT). All anchor comparisons use the real (un-⊥-extended) form.
func (w *Wormhole) searchMeta(t *metaTable, key []byte) *leafNode {
	node, h := w.searchLPM(t, key)
	return w.leafFromLPM(t, key, node, h)
}

// leafFromLPM finishes Algorithm 3 given an already-resolved longest
// prefix match: node is the LPM item and h the hash of its stored key.
// Split out of searchMeta so the batched read pipeline can run the LPM
// phase round-robin across many keys and resolve each lane's leaf from
// its own (node, hash) pair.
func (w *Wormhole) leafFromLPM(t *metaTable, key []byte, node *metaNode, h uint32) *leafNode {
	if node.isLeafItem() {
		// The stored anchor is a prefix of the key, so by the prefix
		// condition it is the unique such anchor and its leaf is the target.
		return node.leaf
	}
	if len(node.key) == len(key) {
		// The key was consumed at an internal node: every anchor in this
		// subtree strictly extends the key's stored form. The subtree's
		// leftmost leaf is the first candidate; if the key sorts before
		// even that leaf's real anchor, the target is one to the left.
		lm := node.leftmost
		if bytes.Compare(key, lm.anchor.Load().real()) < 0 {
			if p := lm.prev.Load(); p != nil {
				return p
			}
		}
		return lm
	}
	// First unmatched token. The LPM is maximal, so this child bit is clear
	// and the bitmap yields an immediate sibling on at least one side.
	missing := key[len(node.key)]
	if sib, ok := node.leftSibling(missing); ok {
		child := t.getChild(h, node.key, sib)
		if child.isLeafItem() {
			return child.leaf
		}
		return child.rightmost
	}
	sib, _ := node.rightSibling(missing)
	child := t.getChild(h, node.key, sib)
	var lm *leafNode
	if child.isLeafItem() {
		lm = child.leaf
	} else {
		lm = child.leftmost
	}
	if p := lm.prev.Load(); p != nil {
		return p
	}
	return lm
}
