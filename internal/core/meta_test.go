package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapSiblings(t *testing.T) {
	n := &metaNode{}
	for _, tok := range []byte{3, 64, 130, 255} {
		n.setBit(tok)
	}
	cases := []struct {
		tok   byte
		left  int // -1 = none
		right int
	}{
		{0, -1, 3}, {3, -1, 64}, {4, 3, 64}, {63, 3, 64}, {64, 3, 130},
		{100, 64, 130}, {130, 64, 255}, {200, 130, 255}, {255, 130, -1},
	}
	for _, c := range cases {
		l, lok := n.leftSibling(c.tok)
		if c.left == -1 {
			if lok {
				t.Errorf("leftSibling(%d) = %d, want none", c.tok, l)
			}
		} else if !lok || int(l) != c.left {
			t.Errorf("leftSibling(%d) = %d,%v want %d", c.tok, l, lok, c.left)
		}
		r, rok := n.rightSibling(c.tok)
		if c.right == -1 {
			if rok {
				t.Errorf("rightSibling(%d) = %d, want none", c.tok, r)
			}
		} else if !rok || int(r) != c.right {
			t.Errorf("rightSibling(%d) = %d,%v want %d", c.tok, r, rok, c.right)
		}
	}
	n.clearBit(64)
	if n.hasBit(64) {
		t.Fatal("clearBit failed")
	}
	m := &metaNode{}
	if !m.bitmapEmpty() {
		t.Fatal("fresh bitmap not empty")
	}
	m.setBit(0)
	if m.bitmapEmpty() {
		t.Fatal("bitmap with bit 0 reported empty")
	}
}

// TestBitmapSiblingsQuick cross-checks the word-level scans against a naive
// loop for random bitmaps.
func TestBitmapSiblingsQuick(t *testing.T) {
	f := func(seed int64, tok byte) bool {
		r := rand.New(rand.NewSource(seed))
		n := &metaNode{}
		set := map[int]bool{}
		for i := 0; i < 20; i++ {
			b := r.Intn(256)
			n.setBit(byte(b))
			set[b] = true
		}
		wantL, wantLok := 0, false
		for b := int(tok) - 1; b >= 0; b-- {
			if set[b] {
				wantL, wantLok = b, true
				break
			}
		}
		wantR, wantRok := 0, false
		for b := int(tok) + 1; b < 256; b++ {
			if set[b] {
				wantR, wantRok = b, true
				break
			}
		}
		l, lok := n.leftSibling(tok)
		rr, rok := n.rightSibling(tok)
		return lok == wantLok && (!lok || int(l) == wantL) &&
			rok == wantRok && (!rok || int(rr) == wantR)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMetaTableBasics(t *testing.T) {
	tb := newMetaTable(8)
	leaf := newLeafNode(anchor{}, 4)
	keys := []string{"", "a", "ab", "abc", "b", "xyz"}
	for _, k := range keys {
		tb.set(&metaNode{key: []byte(k), leaf: leaf})
	}
	if tb.count != len(keys) {
		t.Fatalf("count = %d", tb.count)
	}
	if tb.maxLen != 3 {
		t.Fatalf("maxLen = %d, want 3", tb.maxLen)
	}
	for _, k := range keys {
		for _, tag := range []bool{true, false} {
			if n := tb.get(hashKey([]byte(k)), []byte(k), tag); n == nil || string(n.key) != k {
				t.Fatalf("get(%q, tagMatch=%v) failed", k, tag)
			}
		}
	}
	if tb.get(hashKey([]byte("nope")), []byte("nope"), true) != nil {
		t.Fatal("get(nope) should miss")
	}
	// getChild finds "ab" from "a" + 'b'.
	parent := []byte("a")
	if n := tb.getChild(hashKey(parent), parent, 'b'); n == nil || string(n.key) != "ab" {
		t.Fatal("getChild failed")
	}
	if tb.getChild(hashKey(parent), parent, 'z') != nil {
		t.Fatal("getChild(az) should miss")
	}
	if n := tb.remove([]byte("ab")); n == nil {
		t.Fatal("remove failed")
	}
	if tb.get(hashKey([]byte("ab")), []byte("ab"), true) != nil {
		t.Fatal("removed key still present")
	}
	if tb.count != len(keys)-1 {
		t.Fatalf("count after remove = %d", tb.count)
	}
}

func TestMetaTableGrowth(t *testing.T) {
	tb := newMetaTable(8)
	leaf := newLeafNode(anchor{}, 4)
	const n = 5000
	for i := 0; i < n; i++ {
		tb.set(&metaNode{key: []byte(fmt.Sprintf("grow-%06d", i)), leaf: leaf})
	}
	if len(tb.buckets) <= 8 {
		t.Fatal("table never grew")
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("grow-%06d", i))
		if tb.get(hashKey(k), k, true) == nil {
			t.Fatalf("lost %q after growth", k)
		}
	}
	seen := 0
	tb.forEach(func(*metaNode) { seen++ })
	if seen != n {
		t.Fatalf("forEach visited %d, want %d", seen, n)
	}
}

func TestMetaTableOverflowChains(t *testing.T) {
	// Tiny table, no growth until count > buckets*6: with 8 buckets that is
	// 48 items in 8 buckets — overflow chains must engage correctly.
	tb := newMetaTable(1) // rounds up to 8
	leaf := newLeafNode(anchor{}, 4)
	for i := 0; i < 48; i++ {
		tb.set(&metaNode{key: []byte{byte(i)}, leaf: leaf})
	}
	for i := 0; i < 48; i++ {
		k := []byte{byte(i)}
		if tb.get(hashKey(k), k, true) == nil {
			t.Fatalf("lost key %d in overflow chain", i)
		}
	}
}

func TestGetTagOnlyFalsePositiveIsPossibleButGetIsExact(t *testing.T) {
	tb := newMetaTable(8)
	leaf := newLeafNode(anchor{}, 4)
	// Insert many keys; getTagOnly may confuse same-tag keys, get must not.
	for i := 0; i < 2000; i++ {
		tb.set(&metaNode{key: []byte(fmt.Sprintf("t%05d", i)), leaf: leaf})
	}
	for i := 0; i < 2000; i++ {
		k := []byte(fmt.Sprintf("t%05d", i))
		n := tb.get(hashKey(k), k, true)
		if n == nil || string(n.key) != string(k) {
			t.Fatalf("exact get(%q) wrong", k)
		}
		// Tag-only must at least return something for a present key's hash.
		if tb.getTagOnly(hashKey(k)) == nil {
			t.Fatalf("getTagOnly(%q) returned nil for present key", k)
		}
	}
}
