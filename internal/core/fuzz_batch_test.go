package core

import (
	"bytes"
	"testing"
)

// FuzzBatchGet interprets the fuzz input as a mutation stream replayed
// into a small-leaf index and a map oracle, then as a batch of lookup
// keys — drawn from the same bytes, so the fuzzer can steer shared
// prefixes, duplicates within the batch, and near-miss keys — and
// cross-checks GetBatch against both the oracle and sequential scalar
// Gets at several interleave depths, including the scalar baseline.
func FuzzBatchGet(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("\x02ab\x02ab\xff\x02ab\x02ac"))
	f.Add(bytes.Repeat([]byte{3, 'k', 'e', 'y'}, 30))
	seed := []byte{}
	for i := byte(0); i < 40; i++ {
		seed = append(seed, 2, 'p', i) // distinct two-byte keys under one prefix
	}
	seed = append(seed, 0xff)
	for i := byte(0); i < 40; i += 2 {
		seed = append(seed, 2, 'p', i) // batch: every other key, plus misses below
		seed = append(seed, 3, 'p', i, 'x')
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		o := DefaultOptions()
		o.LeafCap = 8 // force splits within short streams
		w := New(o)
		model := map[string]string{}

		// Phase 1 (until a 0xff byte or half the input): mutations. A
		// length byte then key bytes; length 0 deletes the previous key.
		in := data
		take := func(n int) []byte {
			if n > len(in) {
				n = len(in)
			}
			b := in[:n]
			in = in[n:]
			return b
		}
		var last []byte
		for len(in) > 0 && in[0] != 0xff {
			klen := int(in[0] % 8)
			in = in[1:]
			if klen == 0 {
				if last != nil {
					w.Del(last)
					delete(model, string(last))
				}
				continue
			}
			key := append([]byte(nil), take(klen)...)
			val := append([]byte(nil), key...)
			val = append(val, '=')
			w.Set(key, val)
			model[string(key)] = string(val)
			last = key
		}
		if len(in) > 0 {
			in = in[1:] // the 0xff separator
		}

		// Phase 2: the batch. Keys come from the remaining bytes; a zero
		// length duplicates the previous batch entry.
		var batch [][]byte
		for len(in) > 0 && len(batch) < 256 {
			klen := int(in[0] % 8)
			in = in[1:]
			if klen == 0 && len(batch) > 0 {
				batch = append(batch, batch[len(batch)-1])
				continue
			}
			batch = append(batch, append([]byte(nil), take(klen)...))
		}
		if len(batch) == 0 {
			batch = append(batch, []byte{}, []byte("absent"))
		}

		vals := make([][]byte, len(batch))
		found := make([]bool, len(batch))
		for _, depth := range []int{-1, 2, 8, maxBatchLanes} {
			w.SetBatchInterleave(depth)
			for i := range vals {
				vals[i], found[i] = nil, false
			}
			w.GetBatch(batch, vals, found, nil)
			for i, k := range batch {
				mv, mok := model[string(k)]
				if found[i] != mok || (mok && string(vals[i]) != mv) {
					t.Fatalf("depth %d: GetBatch[%d](%x) = %q,%v want %q,%v",
						depth, i, k, vals[i], found[i], mv, mok)
				}
				sv, sok := w.Get(k)
				if found[i] != sok || !bytes.Equal(vals[i], sv) {
					t.Fatalf("depth %d: GetBatch[%d](%x) = %q,%v but Get = %q,%v",
						depth, i, k, vals[i], found[i], sv, sok)
				}
			}
		}
		if err := w.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
	})
}
