package core

import (
	"fmt"
	"testing"
)

// TestShortAnchorsCorrectness: the optimized split-point selection must
// preserve every invariant and every key under the same model workloads as
// the default policy.
func TestShortAnchorsCorrectness(t *testing.T) {
	o := smallOpts(true)
	o.ShortAnchors = true
	modelRun(t, o, 11, 4000, genSharedPrefix)
	o2 := smallOpts(true)
	o2.ShortAnchors = true
	modelRun(t, o2, 12, 4000, genTrailingZeros)
	o3 := smallOpts(false)
	o3.ShortAnchors = true
	modelRun(t, o3, 13, 4000, genBinary)
}

// TestShortAnchorsShortens: on a prefix-heavy keyset the average stored
// anchor must come out no longer — and in practice strictly shorter — than
// with the paper's middlemost-cut policy.
func TestShortAnchorsShortens(t *testing.T) {
	build := func(short bool) Stats {
		o := DefaultOptions()
		o.LeafCap = 32
		o.ShortAnchors = short
		w := New(o)
		// URL-like keys: long shared prefixes, diverging tails.
		hosts := []string{
			"http://www.example.com/articles/",
			"http://www.example.com/users/profile/",
			"https://cdn.example.org/assets/img/thumb/",
		}
		for i := 0; i < 6000; i++ {
			k := fmt.Sprintf("%s%07d/page.html", hosts[i%3], i*2654435761%9999999)
			w.Set([]byte(k), []byte("x"))
		}
		if err := w.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return w.Stats()
	}
	def := build(false)
	opt := build(true)
	if opt.AvgAnchorLen > def.AvgAnchorLen {
		t.Fatalf("ShortAnchors lengthened anchors: %.2f > %.2f",
			opt.AvgAnchorLen, def.AvgAnchorLen)
	}
	if opt.MetaItems > def.MetaItems {
		t.Fatalf("ShortAnchors grew the meta table: %d > %d",
			opt.MetaItems, def.MetaItems)
	}
	t.Logf("avg anchor: default %.2f B -> short %.2f B; meta items %d -> %d",
		def.AvgAnchorLen, opt.AvgAnchorLen, def.MetaItems, opt.MetaItems)
}

// TestShortAnchorsBalanced: optimizing anchor length must not produce
// degenerate splits — both halves stay within the middle-half window.
func TestShortAnchorsBalanced(t *testing.T) {
	o := DefaultOptions()
	o.LeafCap = 64
	o.ShortAnchors = true
	w := New(o)
	for i := 0; i < 20000; i++ {
		w.Set([]byte(fmt.Sprintf("bal-%08d", i*7919%100000000)), []byte("x"))
	}
	st := w.Stats()
	// With cap 64 and cuts confined to [n/4, 3n/4], leaves hold >= 16 keys
	// right after splitting; the average must therefore stay >= cap/4.
	avg := float64(st.Keys) / float64(st.Leaves)
	if avg < float64(o.LeafCap)/4 {
		t.Fatalf("degenerate splits: %.1f avg keys/leaf with cap %d", avg, o.LeafCap)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
