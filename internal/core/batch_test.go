package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// batchConfigs enumerates the option shapes whose GetBatch code paths
// differ: the full pipeline, its fallbacks (no eager hashing, no tag
// matching, no lock-free leaf probe), and the unsafe scalar loop.
func batchConfigs() map[string]Options {
	full := DefaultOptions()
	noInc := DefaultOptions()
	noInc.IncHashing = false
	noTag := DefaultOptions()
	noTag.TagMatching = false
	noSort := DefaultOptions()
	noSort.SortByTag, noSort.DirectPos = false, false
	unsafe := DefaultOptions()
	unsafe.Concurrent = false
	small := smallOpts(true)
	return map[string]Options{
		"full": full, "noinc": noInc, "notag": noTag,
		"nosort": noSort, "unsafe": unsafe, "smallleaf": small,
	}
}

// batchTestKeys builds a keyset with shared prefixes, an empty key, and
// keys longer than maxEagerPrefix (which must take the slow lane).
func batchTestKeys(n int) [][]byte {
	r := rand.New(rand.NewSource(7))
	keys := [][]byte{{}}
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			keys = append(keys, []byte(fmt.Sprintf("shared/prefix/deep/%06d", i)))
		case 1:
			keys = append(keys, []byte(fmt.Sprintf("k%d", r.Intn(n))))
		case 2:
			keys = append(keys, bytes.Repeat([]byte{byte('a' + i%3)}, 1+i%90)) // some > maxEagerPrefix
		default:
			b := make([]byte, 3+r.Intn(8))
			r.Read(b)
			keys = append(keys, b)
		}
	}
	return keys
}

// TestGetBatchEquivalence checks, for every option shape and interleave
// depth, that GetBatch is byte-identical to sequential scalar Gets over
// batches with duplicates, misses, the empty key, and long keys, both
// through the index and through a pinned Reader, with and without an
// idxs subset.
func TestGetBatchEquivalence(t *testing.T) {
	for name, o := range batchConfigs() {
		t.Run(name, func(t *testing.T) {
			w := New(o)
			keys := batchTestKeys(4000)
			for i, k := range keys {
				if i%3 != 2 { // leave a third of the keys missing
					w.Set(k, []byte(fmt.Sprintf("v-%x", k)))
				}
			}
			r := rand.New(rand.NewSource(11))
			rd := w.NewReader()
			defer rd.Close()
			for _, depth := range []int{-1, 1, 2, 8, 64} {
				w.SetBatchInterleave(depth)
				for trial := 0; trial < 20; trial++ {
					n := 1 + r.Intn(300) // up to well past a 128-key leaf
					batch := make([][]byte, n)
					for i := range batch {
						if i > 0 && r.Intn(6) == 0 {
							batch[i] = batch[r.Intn(i)]
						} else {
							batch[i] = keys[r.Intn(len(keys))]
						}
					}
					vals := make([][]byte, n)
					found := make([]bool, n)
					w.GetBatch(batch, vals, found, nil)
					for i, k := range batch {
						sv, sok := w.Get(k)
						if found[i] != sok || !bytes.Equal(vals[i], sv) {
							t.Fatalf("depth %d: GetBatch[%d](%q) = %q,%v; Get = %q,%v",
								depth, i, k, vals[i], found[i], sv, sok)
						}
					}
					// Reader path, through an idxs subset covering every
					// other position.
					var idxs []int
					for i := 0; i < n; i += 2 {
						idxs = append(idxs, i)
					}
					vals2 := make([][]byte, n)
					found2 := make([]bool, n)
					rd.GetBatch(batch, vals2, found2, idxs)
					for _, i := range idxs {
						if found2[i] != found[i] || !bytes.Equal(vals2[i], vals[i]) {
							t.Fatalf("depth %d: Reader.GetBatch[%d] = %q,%v; want %q,%v",
								depth, i, vals2[i], found2[i], vals[i], found[i])
						}
					}
					for i := 1; i < n; i += 2 {
						if vals2[i] != nil || found2[i] {
							t.Fatalf("depth %d: GetBatch wrote outside idxs at %d", depth, i)
						}
					}
				}
			}
		})
	}
}

// TestGetBatchZeroAllocs guards the pooled pipeline scratch: a batched
// lookup through a pinned Reader with caller-provided result slices must
// not allocate, at any depth including the scalar baseline.
func TestGetBatchZeroAllocs(t *testing.T) {
	w := New(DefaultOptions())
	var keys [][]byte
	for i := 0; i < 50000; i++ {
		k := []byte(fmt.Sprintf("az-%09d-shared-suffix", i*7))
		keys = append(keys, k)
		w.Set(k, k)
	}
	batch := make([][]byte, 64)
	vals := make([][]byte, len(batch))
	found := make([]bool, len(batch))
	r := w.NewReader()
	defer r.Close()
	miss := []byte("az-miss-000000000")
	for _, depth := range []int{-1, 8, 32} {
		w.SetBatchInterleave(depth)
		i := 0
		if n := testing.AllocsPerRun(500, func() {
			for j := range batch {
				batch[j] = keys[(i*2654435761+j*40503)%len(keys)]
			}
			batch[3] = miss // a guaranteed miss per batch
			r.GetBatch(batch, vals, found, nil)
			i++
		}); n != 0 {
			t.Errorf("depth %d: Reader.GetBatch: %v allocs/op, want 0", depth, n)
		}
		i = 0
		if n := testing.AllocsPerRun(500, func() {
			w.GetBatch(batch, vals, found, nil)
			i++
		}); n != 0 {
			t.Errorf("depth %d: Wormhole.GetBatch: %v allocs/op, want 0", depth, n)
		}
	}
}

// TestSetBatchInterleaveClamps pins the depth-normalization contract the
// bench sweep relies on.
func TestSetBatchInterleaveClamps(t *testing.T) {
	w := New(DefaultOptions())
	cases := []struct {
		in   int
		want int32
	}{{0, defaultBatchInterleave}, {-5, 0}, {1, 1}, {maxBatchLanes, maxBatchLanes}, {1000, maxBatchLanes}}
	for _, c := range cases {
		w.SetBatchInterleave(c.in)
		if got := w.batchDepth.Load(); got != c.want {
			t.Errorf("SetBatchInterleave(%d): depth %d, want %d", c.in, got, c.want)
		}
	}
	o := DefaultOptions()
	o.BatchInterleave = -1
	if w2 := New(o); w2.batchDepth.Load() != 0 {
		t.Errorf("Options.BatchInterleave=-1: depth %d, want 0", w2.batchDepth.Load())
	}
}

// TestGetBatchUnderChurn hammers the pipelined batch path while writers
// overwrite values in place and force splits and merges around the
// hammered keys — the seqlock brackets, version checks, and scalar
// fallbacks of every lane race real mutations. Every found value must
// reparse as a generation of its key (see overwriteValue). Run with
// -race.
func TestGetBatchUnderChurn(t *testing.T) {
	w := New(smallOpts(true))
	const hammered = 64
	hotKey := func(i int) []byte { return []byte(fmt.Sprintf("hot-%03d", i)) }
	for i := 0; i < hammered; i++ {
		w.Set(hotKey(i), overwriteValue(0))
	}
	var stop atomic.Bool
	var writers, readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for n := 1; !stop.Load(); n++ {
				w.Set(hotKey(r.Intn(hammered)), overwriteValue(n))
			}
		}(g)
	}
	writers.Add(1)
	go func() {
		defer writers.Done()
		r := rand.New(rand.NewSource(99))
		for !stop.Load() {
			k := []byte(fmt.Sprintf("hot-%03d-churn-%04d", r.Intn(hammered), r.Intn(500)))
			if r.Intn(2) == 0 {
				w.Set(k, []byte("c"))
			} else {
				w.Del(k)
			}
		}
	}()
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			r := rand.New(rand.NewSource(int64(1000 + g)))
			rd := w.NewReader()
			defer rd.Close()
			batch := make([][]byte, 24)
			vals := make([][]byte, len(batch))
			found := make([]bool, len(batch))
			for round := 0; round < 600; round++ {
				w.SetBatchInterleave([]int{-1, 4, 8, 32}[round%4])
				for i := range batch {
					if i > 0 && r.Intn(8) == 0 {
						batch[i] = batch[r.Intn(i)]
					} else {
						batch[i] = hotKey(r.Intn(hammered))
					}
				}
				rd.GetBatch(batch, vals, found, nil)
				for i := range batch {
					if !found[i] {
						t.Errorf("hammered key %s missing", batch[i])
						return
					}
					checkOverwriteValue(t, batch[i], vals[i])
				}
			}
		}(g)
	}
	readers.Add(1)
	go func() { // cold-miss batches against churned keys
		defer readers.Done()
		r := rand.New(rand.NewSource(5))
		batch := make([][]byte, 16)
		vals := make([][]byte, len(batch))
		found := make([]bool, len(batch))
		for round := 0; round < 600; round++ {
			for i := range batch {
				batch[i] = []byte(fmt.Sprintf("hot-%03d-churn-%04d", r.Intn(hammered), r.Intn(500)))
			}
			w.GetBatch(batch, vals, found, nil)
			for i := range batch {
				if found[i] && string(vals[i]) != "c" {
					t.Errorf("churn key %s = %q, want %q", batch[i], vals[i], "c")
					return
				}
			}
		}
	}()
	readers.Wait()
	stop.Store(true)
	writers.Wait()
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
