package core

import (
	"bytes"
	"sort"
	"testing"
)

// FuzzSetGetScan interprets the fuzz input as an operation stream over a
// small-leaf index (splits and merges trigger within a few dozen ops) and
// cross-checks every result against a map model, ending with a full-scan
// equivalence pass. Keys are drawn from the input bytes themselves so the
// fuzzer can steer collisions, shared prefixes and boundary keys.
func FuzzSetGetScan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("\x00\x01ab\x02ab\x01ab"))
	f.Add([]byte("set a 1, del a, scan"))
	f.Add(bytes.Repeat([]byte{0x00, 0x03, 'k', 0xff}, 40))
	seed := []byte{}
	for i := byte(0); i < 60; i++ {
		seed = append(seed, 0x00, 2, 'k', i) // sets of distinct keys
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, concurrent := range []bool{false, true} {
			o := DefaultOptions()
			o.Concurrent = concurrent
			o.LeafCap = 8 // force structural churn on short streams
			w := New(o)
			model := map[string]string{}

			in := data
			next := func(n int) []byte {
				if n > len(in) {
					n = len(in)
				}
				b := in[:n]
				in = in[n:]
				return b
			}
			for len(in) >= 2 {
				op := in[0] % 4
				klen := int(in[1]%8) + 1
				in = in[2:]
				key := append([]byte(nil), next(klen)...)
				switch op {
				case 0: // set
					val := append([]byte(nil), next(3)...)
					w.Set(key, val)
					model[string(key)] = string(val)
				case 1: // del
					got := w.Del(key)
					_, want := model[string(key)]
					if got != want {
						t.Fatalf("Del(%x) = %v want %v", key, got, want)
					}
					delete(model, string(key))
				case 2: // get
					v, ok := w.Get(key)
					mv, mok := model[string(key)]
					if ok != mok || (ok && string(v) != mv) {
						t.Fatalf("Get(%x) = %q,%v want %q,%v", key, v, ok, mv, mok)
					}
				case 3: // bounded scan from key
					var got []string
					w.Scan(key, func(k, v []byte) bool {
						got = append(got, string(k))
						return len(got) < 5
					})
					var want []string
					for mk := range model {
						if mk >= string(key) {
							want = append(want, mk)
						}
					}
					sort.Strings(want)
					if len(want) > 5 {
						want = want[:5]
					}
					if len(got) != len(want) {
						t.Fatalf("scan(%x) len %d want %d", key, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("scan(%x)[%d] = %x want %x", key, i, got[i], want[i])
						}
					}
				}
			}

			// Full-scan equivalence: exactly the model, in order.
			if int(w.Count()) != len(model) {
				t.Fatalf("concurrent=%v: Count %d, model %d", concurrent, w.Count(), len(model))
			}
			var prev []byte
			seen := 0
			w.Scan(nil, func(k, v []byte) bool {
				if prev != nil && bytes.Compare(prev, k) >= 0 {
					t.Fatalf("scan out of order: %x then %x", prev, k)
				}
				prev = append(prev[:0], k...)
				if model[string(k)] != string(v) {
					t.Fatalf("scan pair %x=%q diverges from model %q", k, v, model[string(k)])
				}
				seen++
				return true
			})
			if seen != len(model) {
				t.Fatalf("full scan saw %d keys, model has %d", seen, len(model))
			}
			if err := w.CheckInvariants(); err != nil {
				t.Fatalf("concurrent=%v: invariants: %v", concurrent, err)
			}
		}
	})
}
