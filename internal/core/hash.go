package core

import "hash/crc32"

// Wormhole hashes keys and anchor prefixes with CRC32-C (Castagnoli), the
// same function the paper's implementation uses (§3.1, footnote 2). CRC is
// incremental: the hash of prefix[:n] can be extended to the hash of
// prefix[:n+k] without rehashing the first n bytes, which is what the
// IncHashing optimization exploits during the binary search on prefix
// lengths.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// hashKey returns the CRC32-C of key.
func hashKey(key []byte) uint32 {
	return crc32.Update(0, crcTable, key)
}

// hashExtend extends the CRC of a shorter prefix by ext, so that
// hashExtend(hashKey(a), b) == hashKey(append(a, b...)).
func hashExtend(h uint32, ext []byte) uint32 {
	return crc32.Update(h, crcTable, ext)
}

// hashExtendByte is hashExtend for a single token, open-coded so the
// child probe of searchMeta needs no byte-slice argument (the one-element
// array previously used here escaped into crc32.Update — the read path's
// only heap allocation). CRC32 pre- and post-inverts, so one table step
// on the inverted value matches crc32.Update for one byte.
func hashExtendByte(h uint32, b byte) uint32 {
	c := ^h
	return ^(crcTable[byte(c)^b] ^ (c >> 8))
}

// metaTag derives the 16-bit slot tag from a prefix hash. The bucket index
// consumes the low bits of the hash, so the tag uses the high half to stay
// independent of bucket placement (Figure 6).
func metaTag(h uint32) uint16 {
	return uint16(h >> 16)
}
