package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func sortedKeys(gen func(*rand.Rand) []byte, n int, seed int64) [][]byte {
	r := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var keys [][]byte
	for len(keys) < n {
		k := gen(r)
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	return keys
}

func TestBulkLoadBasic(t *testing.T) {
	for _, conc := range []bool{true, false} {
		keys := sortedKeys(genRandom8, 5000, 1)
		vals := make([][]byte, len(keys))
		for i := range vals {
			vals[i] = []byte(fmt.Sprintf("v%d", i))
		}
		w := New(opts(conc))
		if err := w.BulkLoad(keys, vals); err != nil {
			t.Fatal(err)
		}
		if err := w.CheckInvariants(); err != nil {
			t.Fatalf("concurrent=%v: %v", conc, err)
		}
		if w.Count() != int64(len(keys)) {
			t.Fatalf("Count = %d", w.Count())
		}
		for i, k := range keys {
			v, ok := w.Get(k)
			if !ok || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("Get(%x) = %q,%v", k, v, ok)
			}
		}
		// Scans see the exact sorted sequence.
		i := 0
		w.Scan(nil, func(k, v []byte) bool {
			if !bytes.Equal(k, keys[i]) {
				t.Fatalf("scan[%d] = %x want %x", i, k, keys[i])
			}
			i++
			return true
		})
		if i != len(keys) {
			t.Fatalf("scan saw %d keys", i)
		}
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	keys := sortedKeys(genSmallAlpha, 2000, 2)
	w := New(smallOpts(true))
	if err := w.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	// The loaded structure must keep working under regular mutations:
	// updates, inserts that split bulk-built leaves, deletes that merge.
	model := map[string]bool{}
	for _, k := range keys {
		model[string(k)] = true
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		k := genSmallAlpha(r)
		if r.Intn(2) == 0 {
			w.Set(k, []byte("m"))
			model[string(k)] = true
		} else {
			got := w.Del(k)
			if got != model[string(k)] {
				t.Fatalf("step %d: Del(%x)=%v want %v", i, k, got, model[string(k)])
			}
			delete(model, string(k))
		}
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if int(w.Count()) != len(model) {
		t.Fatalf("Count %d want %d", w.Count(), len(model))
	}
}

func TestBulkLoadEquivalentToIncremental(t *testing.T) {
	for gi, gen := range []func(*rand.Rand) []byte{
		genBinary, genTrailingZeros, genSharedPrefix,
	} {
		// Small n: these generators have deliberately tiny key spaces
		// (genBinary tops out at 255 distinct keys, genTrailingZeros at 174).
		keys := sortedKeys(gen, 120, int64(10+gi))
		bulk := New(smallOpts(true))
		if err := bulk.BulkLoad(keys, nil); err != nil {
			t.Fatalf("gen%d: %v", gi, err)
		}
		if err := bulk.CheckInvariants(); err != nil {
			t.Fatalf("gen%d: %v", gi, err)
		}
		inc := New(smallOpts(true))
		for _, k := range keys {
			inc.Set(k, nil)
		}
		for _, k := range keys {
			if _, ok := bulk.Get(k); !ok {
				t.Fatalf("gen%d: bulk lost %x", gi, k)
			}
		}
		var a, b []string
		bulk.Scan(nil, func(k, v []byte) bool { a = append(a, string(k)); return true })
		inc.Scan(nil, func(k, v []byte) bool { b = append(b, string(k)); return true })
		if len(a) != len(b) {
			t.Fatalf("gen%d: bulk %d keys, incremental %d", gi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("gen%d: order differs at %d", gi, i)
			}
		}
	}
}

func TestBulkLoadPathologicalZeroKeys(t *testing.T) {
	// All-zero-prefix keys exercise the head-anchor absorption loop.
	var keys [][]byte
	for i := 0; i < 40; i++ {
		keys = append(keys, append(make([]byte, i), 1))
		keys = append(keys, make([]byte, i+1))
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	o := opts(true)
	o.LeafCap = 4
	w := New(o)
	if err := w.BulkLoad(keys, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, ok := w.Get(k); !ok {
			t.Fatalf("lost key %x", k)
		}
	}
}

func TestBulkLoadErrors(t *testing.T) {
	w := New(opts(true))
	if err := w.BulkLoad([][]byte{{2}, {1}}, nil); err == nil {
		t.Fatal("unsorted keys accepted")
	}
	w = New(opts(true))
	if err := w.BulkLoad([][]byte{{1}, {1}}, nil); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	w = New(opts(true))
	if err := w.BulkLoad([][]byte{{1}}, [][]byte{{1}, {2}}); err == nil {
		t.Fatal("mismatched vals accepted")
	}
	w = New(opts(true))
	w.Set([]byte("x"), nil)
	if err := w.BulkLoad([][]byte{{1}}, nil); err == nil {
		t.Fatal("non-empty index accepted")
	}
	w = New(opts(true))
	if err := w.BulkLoad(nil, nil); err != nil {
		t.Fatalf("empty load should succeed: %v", err)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
