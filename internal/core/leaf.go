package core

import (
	"bytes"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// kv is one key-value item. hash is the CRC32-C of the key, computed once
// at insertion; its low 16 bits play the role of the paper's leaf tag
// (§3.2). Key and value buffers are owned by the index once inserted and
// must not be mutated by the caller.
//
// key and hash are immutable after construction. The value is stored as
// an atomic (pointer, length) pair so a lock-free reader racing an
// overwrite reads both halves without a data race; the pair itself can
// still be torn (old pointer, new length), which is exactly what the
// leaf's seqlock detects — writers bump it around setValue, and an
// optimistic reader discards any value whose enclosing read saw the
// sequence move. Lock-holding readers can't race writers at all.
//
// A kv must never be copied by value (its address is published in tag
// arrays); all code handles *kv. Storage comes from the owning leaf's
// slab (newKV).
type kv struct {
	hash uint32
	key  []byte
	vptr atomic.Pointer[byte]
	vlen atomic.Int64
}

// value returns the current value slice. A nil stored value reads back
// nil; an empty one may read back nil as well (the pointer of an empty
// slice is unspecified). Only lock-holding readers may call it: it
// materializes the slice from the (vptr, vlen) pair, which is only
// consistent under the leaf lock. Optimistic readers use valueParts +
// valueSlice with a seqlock validation in between — materializing a torn
// pair, even without dereferencing it, would fabricate a slice straddling
// allocations.
func (it *kv) value() []byte {
	p, n := it.valueParts()
	return valueSlice(p, n)
}

// valueParts loads the raw value pair; each load is atomic but the pair
// may be torn unless the caller holds the leaf lock or validates the
// seqlock afterwards.
func (it *kv) valueParts() (*byte, int64) {
	return it.vptr.Load(), it.vlen.Load()
}

// valueSlice materializes a validated (pointer, length) pair.
func valueSlice(p *byte, n int64) []byte {
	if p == nil {
		return nil
	}
	return unsafe.Slice(p, n)
}

// setValue publishes v as the new value. Concurrent-path callers must
// bump the leaf seqlock around the call (see kv's comment); the two
// stores are individually atomic but only the seqlock makes the pair
// observable as a unit.
func (it *kv) setValue(v []byte) {
	it.vlen.Store(int64(len(v)))
	it.vptr.Store(unsafe.SliceData(v))
}

// tagEnt is one tag-array slot: the item's full hash inline (its low bits
// are the paper's 16-bit tag; we keep all 32 to order the array) plus the
// item pointer, dereferenced only on a hash match.
type tagEnt struct {
	hash uint32
	it   *kv
}

// tagTailMax bounds the leaf's unsorted tag tail; the tail is folded
// into the sorted base on the insert that would exceed it.
const tagTailMax = 15

// The leaf's hash index — the paper's sorted tag array (Figure 7, §3.2)
// — is split across two structures tuned for the lock-free reader:
//
//   - The base is an immutable published block (tagBlock) holding the
//     hashes and the item pointers as two parallel arrays in (hash, key)
//     order. The dense []uint32 hash array is what direct positioning
//     walks: 4 bytes per item, so the speculative start position and the
//     true position almost always share one cache line, where an
//     interleaved (hash, pointer) layout pays a miss every 4 steps. The
//     item pointer array is touched exactly once, on the final match.
//   - The tail is a fixed array *inline in the leaf*, holding up to
//     tagTailMax recent inserts in arrival order. Inserting stores one
//     hash, one pointer, and the new length — all atomics on leaf-local
//     cache lines, no allocation, no copying — and the O(leaf) fold into
//     a fresh base block is paid once per tagTailMax+1 inserts. This is
//     the paper's delayed, batched sorting (Algorithm 3's incSort)
//     applied to the tag array.
//
// Both structures may be read without any lock: the block is immutable
// and self-consistent, and the tail's individual loads are atomic (item
// pointers are nil-checked before dereferencing, and a kv reachable from
// a stale slot is still a live kv). What a racing reader can observe is a
// mixed generation — a fold's new base with the old tail, a mid-insert
// length/slot mismatch — and every writer that creates such a window
// does so inside a seqlock bracket, so the optimistic reader's sequence
// validation discards exactly those reads.

// tagBlockCap sizes the block's inline arrays: the default 128-key leaf
// plus a full tail, with headroom. Leaves that outgrow it (fat leaves,
// large custom LeafCap) spill to the slice-based big form.
const tagBlockCap = 160

// tagBlock is one immutable published base: hashes[i] == items[i].hash,
// ordered by (hash, key). The arrays are inline and fixed-size, and the
// entry count lives in the leaf header (baseN), not here — so a reader
// computes the address of hashes[i] from the block pointer alone, without
// first reading the block. That removes one serialized cache miss from
// every lookup (block pointer → slice header → array data becomes block
// pointer → array data), and it makes mixed-generation races memory-safe
// by construction: any index the walk can produce stays inside the fixed
// arrays, where a stale slot holds either zero or a still-live item — and
// the seqlock bracket rejects such reads anyway.
//
// order is the published key-sorted view lock-free range scans walk:
// order[k] is the items index of the k-th smallest key. Indices, not a
// second pointer array — the array stays out of the garbage collector's
// pointer scans and costs half the bytes, which matters because a block
// is reallocated on every fold, so its size is a write-path cost. The
// lookup side keeps its direct hashes[i]/items[i] layout (one less
// dependent load on the Get path); scans pay the one-hop
// items[order[k]] indirection per emitted pair, which long chunks
// pipeline well.
type tagBlock struct {
	big    *tagBlockBig // non-nil iff the entries exceed tagBlockCap
	hashes [tagBlockCap]uint32
	items  [tagBlockCap]*kv
	order  [tagBlockCap]int32
}

// tagBlockBig is the overflow form for leaves beyond tagBlockCap items.
type tagBlockBig struct {
	hashes []uint32
	items  []*kv
	order  []int32
}

// emptyTagBlock is the zero-entry block shared by all fresh leaves.
var emptyTagBlock = &tagBlock{}

// makeTagBlock packs (hash, key)-sorted entries into a fresh block,
// deriving the key-sorted index view with one extra sort (cold paths
// only; the insert fold maintains it by position-merging instead).
func makeTagBlock(entries []tagEnt) *tagBlock {
	if len(entries) == 0 {
		return emptyTagBlock
	}
	b := &tagBlock{}
	if len(entries) > tagBlockCap {
		bg := &tagBlockBig{
			hashes: make([]uint32, len(entries)),
			items:  make([]*kv, len(entries)),
			order:  make([]int32, len(entries)),
		}
		for i, e := range entries {
			bg.hashes[i] = e.hash
			bg.items[i] = e.it
			bg.order[i] = int32(i)
		}
		sortOrderIdx(bg.order, bg.items)
		b.big = bg
		return b
	}
	for i, e := range entries {
		b.hashes[i] = e.hash
		b.items[i] = e.it
		b.order[i] = int32(i)
	}
	sortOrderIdx(b.order[:len(entries)], b.items[:len(entries)])
	return b
}

// sortOrderIdx orders the index view by the referenced items' keys.
func sortOrderIdx(idx []int32, items []*kv) {
	slices.SortFunc(idx, func(x, y int32) int { return bytes.Compare(items[x].key, items[y].key) })
}

// lowerBoundIdx returns the first position in the key-sorted index view
// whose key is >= bound (incl) or > bound (!incl); len(idx) when none
// qualifies. A plain loop instead of sort.Search keeps callers
// closure-free.
func lowerBoundIdx(items []*kv, idx []int32, bound []byte, incl bool) int {
	lo, hi := 0, len(idx)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		cmp := bytes.Compare(items[idx[mid]].key, bound)
		if cmp < 0 || (!incl && cmp == 0) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// keyPosIn returns key's merge position in the key-sorted view, with a
// one-compare fast path for the common append-at-end (ascending insert)
// case.
func keyPosIn(items []*kv, idx []int32, key []byte) int {
	n := len(idx)
	if n == 0 || bytes.Compare(items[idx[n-1]].key, key) < 0 {
		return n
	}
	return lowerBoundIdx(items, idx, key, true)
}

// view returns the block's entry arrays; n is the leaf's published entry
// count (authoritative while the caller's seqlock bracket holds).
func (b *tagBlock) view(n int) ([]uint32, []*kv) {
	if bg := b.big; bg != nil {
		n = min(n, len(bg.hashes), len(bg.items))
		return bg.hashes[:n], bg.items[:n]
	}
	if n > tagBlockCap {
		n = tagBlockCap
	}
	return b.hashes[:n], b.items[:n]
}

// orderView returns the block's key-sorted index view (indices into the
// item array); n is the leaf's published entry count (authoritative while
// the caller's seqlock bracket holds). Like view, any count a racing
// reader can pass stays in bounds — and so does every index the view
// holds, because indices and items are published together in one block.
func (b *tagBlock) orderView(n int) []int32 {
	if bg := b.big; bg != nil {
		return bg.order[:min(n, len(bg.order))]
	}
	if n > tagBlockCap {
		n = tagBlockCap
	}
	return b.order[:n]
}

// tagsView is a point-in-time view of a leaf's hash index, materialized
// as entries for the cold paths (invariants, stats, merges); the hot
// lookup path reads the structures directly (findTags).
type tagsView struct {
	base, tail []tagEnt
}

// size returns the number of items the view covers.
func (v tagsView) size() int { return len(v.base) + len(v.tail) }

// all appends every entry (base then tail) to dst and returns it.
func (v tagsView) all(dst []tagEnt) []tagEnt {
	dst = append(dst, v.base...)
	dst = append(dst, v.tail...)
	return dst
}

// cmpTagEnts is the (hash, key) order of tag arrays.
func cmpTagEnts(x, y tagEnt) int {
	if x.hash != y.hash {
		if x.hash < y.hash {
			return -1
		}
		return 1
	}
	return bytes.Compare(x.it.key, y.it.key)
}

// sortTagEnts orders entries by (hash, key). slices.SortFunc, not
// sort.Slice: the reflect-based swapper's write barriers dominated split
// and fold cost in profiles.
func sortTagEnts(a []tagEnt) {
	slices.SortFunc(a, cmpTagEnts)
}

// leafNode is one LeafList node (Figure 7).
//
// kvs holds items in insertion order: kvs[:sorted] is key-sorted, the tail
// is the unsorted append region. incSort merges the two on demand (range
// scan or split), which is the paper's delayed, batched sorting. kvs and
// sorted are guarded by mu; only lock-holding paths (writers, scans, the
// BaseWormhole key-sorted search) touch them.
//
// base, tailLen, tailHash and tailItem form the hash index lock-free
// readers search (see the tagBlock comment).
//
// seq is the leaf's seqlock word: even when the leaf is stable, odd while
// a writer is mutating the item set or overwriting a value in place. An
// optimistic reader snapshots seq, reads, and revalidates; on a collision
// it retries and eventually falls back to the mu.RLock path. Immutable
// snapshot publication already rules out torn tag arrays — the seqlock's
// jobs are certifying the in-place (vptr, vlen) value pairs, detecting an
// overlapping writer early, and bounding optimistic spinning under write
// pressure.
type leafNode struct {
	// The fields an optimistic reader touches — seq, version, dead, base,
	// tailLen, anchor — lead the struct so one cache line serves the whole
	// leaf-header read; mu and the writer-side bookkeeping follow.
	seq atomic.Uint64
	// version is the "expected version" of §2.5: set to (current table
	// version + 1) while the leaf is locked for a split/merge. A reader
	// that reached this leaf through an older table observes
	// version > tableVersion and restarts.
	version atomic.Uint64
	base    atomic.Pointer[tagBlock]
	baseN   atomic.Int32 // entry count of base (see tagBlock)
	tailLen atomic.Int32
	anchor  atomic.Pointer[anchor]
	dead    atomic.Bool // set when the leaf is merged away (victim)

	mu sync.RWMutex

	kvs    []*kv
	sorted int

	tailHash [tagTailMax]atomic.Uint32
	tailItem [tagTailMax]atomic.Pointer[kv]
	// tailPos[i] is tailItem[i]'s merge position in the published
	// key-sorted view: the index in the view before which the item sorts
	// (the count of base keys below it). The writer computes it
	// once per insert — one binary search on a path that already walks
	// the leaf — and keeps the tail slots (pos, key)-sorted, so scans
	// merge the tail into the sorted view straight from the slots,
	// comparing integers instead of keys and sorting nothing at read
	// time. Remove keeps positions consistent: those above a removed
	// base item's slot shift down by one (a monotone adjustment, so the
	// slot order survives).
	tailPos [tagTailMax]atomic.Int32

	// pendingBlock stages a base block under construction (see
	// newTagBlockInto); guarded by mu.
	pendingBlock *tagBlock

	// slab is the append-only backing store for this leaf's own kv items
	// (chunked; a full chunk is abandoned to the items pointing into it
	// and replaced, so a *kv never moves). Guarded by mu.
	slab []kv

	prev, next atomic.Pointer[leafNode]
}

func newLeafNode(a anchor, capHint int) *leafNode {
	l := &leafNode{
		kvs: make([]*kv, 0, capHint),
	}
	l.base.Store(emptyTagBlock)
	l.anchor.Store(&a)
	return l
}

// tags returns an entry view of the current hash index (cold paths; the
// lookup path is findTags). Callers needing a consistent view hold mu.
func (l *leafNode) tags() tagsView {
	hashes, items := l.base.Load().view(int(l.baseN.Load()))
	v := tagsView{}
	if len(hashes) > 0 {
		v.base = make([]tagEnt, len(hashes))
		for i, h := range hashes {
			v.base[i] = tagEnt{hash: h, it: items[i]}
		}
	}
	tl := int(l.tailLen.Load())
	for i := 0; i < tl && i < tagTailMax; i++ {
		v.tail = append(v.tail, tagEnt{hash: l.tailHash[i].Load(), it: l.tailItem[i].Load()})
	}
	return v
}

// setTags publishes entries ((hash, key)-sorted) as the new base block
// and empties the tail; caller holds mu.
func (l *leafNode) setTags(entries []tagEnt) {
	l.base.Store(makeTagBlock(entries))
	l.baseN.Store(int32(len(entries)))
	l.tailLen.Store(0)
}

// findTags locates (h, key) in the hash index: positioned search over the
// base block's dense hash array (§3.2's direct positioning or binary
// search), then — on a miss only — a linear scan of the short inline
// tail. Safe without any lock; optimistic callers bracket it with the
// seqlock (see the tagBlock comment for why no read here can fault).
func (l *leafNode) findTags(h uint32, key []byte, directPos bool) *kv {
	hashes, items := l.base.Load().view(int(l.baseN.Load()))
	if directPos && len(items) > 0 {
		// Touch the item slot at the speculative position while the hash
		// walk's own loads are in flight; the final position is almost
		// always on the same or an adjacent line, so the item-array miss
		// overlaps the hash-array miss instead of following it. The
		// comparison feeds a benign branch so the load stays live.
		if items[int(uint64(h)*uint64(len(items))>>32)] == nil && h == 0 {
			return nil
		}
	}
	if i := tagPos(hashes, h, directPos); i < len(hashes) {
		for ; i < len(hashes) && hashes[i] == h; i++ {
			if it := items[i]; it != nil && bytes.Equal(it.key, key) {
				return it
			}
		}
	}
	tl := int(l.tailLen.Load())
	for i := 0; i < tl && i < tagTailMax; i++ {
		if l.tailHash[i].Load() == h {
			if it := l.tailItem[i].Load(); it != nil && bytes.Equal(it.key, key) {
				return it
			}
		}
	}
	return nil
}

// beginMutate/endMutate bracket every item-set mutation and every
// in-place value overwrite with the seqlock (caller holds mu).
func (l *leafNode) beginMutate() { l.seq.Add(1) }
func (l *leafNode) endMutate()   { l.seq.Add(1) }

// slabChunk is the kv-slab growth unit cap.
const slabChunk = 64

// newKV allocates an item from the leaf's slab (caller holds mu). Chunks
// are never reallocated in place — kv addresses are stable for the life
// of the index, which both the published tag arrays and the no-copy rule
// on kv (it embeds atomics) rely on.
func (l *leafNode) newKV(h uint32, key, val []byte) *kv {
	if len(l.slab) == cap(l.slab) {
		c := cap(l.slab) * 2
		if c < 8 {
			c = 8
		}
		if c > slabChunk {
			c = slabChunk
		}
		l.slab = make([]kv, 0, c)
	}
	l.slab = l.slab[:len(l.slab)+1]
	it := &l.slab[len(l.slab)-1]
	it.hash = h
	it.key = key
	if val != nil {
		it.setValue(val)
	}
	return it
}

func (l *leafNode) size() int { return len(l.kvs) }

// tagPos returns the first index in the sorted hash array a whose value
// is >= h (== len(a) when every hash is smaller).
//
// With directPos the start index is speculated as hash*size/2^32 — with a
// uniform hash this lands within a step or two of the right run (§3.2's
// direct speculative positioning), and on the dense 4-byte array the
// speculation and the true position almost always share a cache line.
// Otherwise a binary search is used.
func tagPos(a []uint32, h uint32, directPos bool) int {
	n := len(a)
	if n == 0 {
		return 0
	}
	if !directPos {
		return sort.Search(n, func(j int) bool { return a[j] >= h })
	}
	i := int(uint64(h) * uint64(n) >> 32)
	for i > 0 && h <= a[i-1] {
		i--
	}
	for i < n && h > a[i] {
		i++
	}
	return i
}

// find locates key in the leaf. With sortByTag it searches the published
// tag-array snapshot; without (BaseWormhole) it binary-searches the
// key-sorted region and scans the unsorted tail, comparing full keys —
// the behaviour Figure 11's ablation isolates. The kvs path requires mu
// to be held.
func (l *leafNode) find(h uint32, key []byte, sortByTag, directPos bool) *kv {
	if sortByTag {
		return l.findTags(h, key, directPos)
	}
	s := l.kvs[:l.sorted]
	i := sort.Search(len(s), func(j int) bool { return bytes.Compare(s[j].key, key) >= 0 })
	if i < len(s) && bytes.Equal(s[i].key, key) {
		return s[i]
	}
	for _, it := range l.kvs[l.sorted:] {
		if bytes.Equal(it.key, key) {
			return it
		}
	}
	return nil
}

// insert adds a new item; the caller holds mu and has verified the key is
// absent. The common case appends to the inline tail — three atomic
// stores, no allocation — and the tail is folded into a fresh base block
// on the insert that would exceed tagTailMax.
func (l *leafNode) insert(it *kv) {
	l.beginMutate()
	// Keep the sorted prefix maximal for the common ascending-insert case.
	if l.sorted == len(l.kvs) &&
		(l.sorted == 0 || bytes.Compare(l.kvs[l.sorted-1].key, it.key) < 0) {
		l.sorted++
	}
	l.kvs = append(l.kvs, it)
	tl := int(l.tailLen.Load())
	if tl < tagTailMax {
		b := l.base.Load()
		bn := int(l.baseN.Load())
		_, items := b.view(bn)
		pos := int32(keyPosIn(items, b.orderView(bn), it.key))
		// Keep the inline tail (pos, key)-sorted: find the insertion
		// slot, shift the greater suffix up one, store the new item. The
		// shift's transient duplicates are inside this bracket, so
		// optimistic readers discard them; scans then merge the tail by
		// position straight from the slots, sorting nothing at read time.
		s := tl
		for s > 0 {
			p := l.tailPos[s-1].Load()
			if p < pos || (p == pos && bytes.Compare(l.tailItem[s-1].Load().key, it.key) < 0) {
				break
			}
			s--
		}
		for i := tl; i > s; i-- {
			l.tailHash[i].Store(l.tailHash[i-1].Load())
			l.tailItem[i].Store(l.tailItem[i-1].Load())
			l.tailPos[i].Store(l.tailPos[i-1].Load())
		}
		l.tailHash[s].Store(it.hash)
		l.tailItem[s].Store(it)
		l.tailPos[s].Store(pos)
		l.tailLen.Store(int32(tl + 1))
	} else {
		// Fold: merge the tail into a fresh base block — O(size) copies,
		// no full re-sort, no intermediate entry array. Two walks share
		// the work: the (hash, key) merge fills the lookup arrays and
		// records every element's position in the new item array; the
		// key-order walk then rebuilds the index view by merging the old
		// view with the (pos, key)-sorted tail slots through those
		// recorded positions — comparing integers, not keys. The only key
		// comparisons are the new item's own placement (its merge
		// position plus its slot among the sorted tail) and hash ties in
		// the small tail sort.
		ob := l.base.Load()
		bn := int(l.baseN.Load())
		oh, oldItems := ob.view(bn)
		oo := ob.orderView(bn)

		// The new item joins the (pos, key)-sorted tail in a local copy.
		newPos := int32(keyPosIn(oldItems, oo, it.key))
		sl := tl
		for sl > 0 {
			p := l.tailPos[sl-1].Load()
			if p < newPos || (p == newPos && bytes.Compare(l.tailItem[sl-1].Load().key, it.key) < 0) {
				break
			}
			sl--
		}
		var titems [tagTailMax + 1]*kv
		var thash [tagTailMax + 1]uint32
		var tpos [tagTailMax + 1]int32
		for i := 0; i < sl; i++ {
			titems[i], thash[i], tpos[i] = l.tailItem[i].Load(), l.tailHash[i].Load(), l.tailPos[i].Load()
		}
		titems[sl], thash[sl], tpos[sl] = it, it.hash, newPos
		for i := sl; i < tl; i++ {
			titems[i+1], thash[i+1], tpos[i+1] = l.tailItem[i].Load(), l.tailHash[i].Load(), l.tailPos[i].Load()
		}
		m := tl + 1

		// hIdx: tail slots in (hash, key) order for the lookup-array merge.
		var hIdx [tagTailMax + 1]int32
		for i := 0; i < m; i++ {
			hIdx[i] = int32(i)
		}
		hs := hIdx[:m]
		for i := 1; i < m; i++ {
			for j := i; j > 0; j-- {
				x, y := hs[j], hs[j-1]
				if thash[x] > thash[y] || (thash[x] == thash[y] &&
					bytes.Compare(titems[x].key, titems[y].key) >= 0) {
					break
				}
				hs[j], hs[j-1] = hs[j-1], hs[j]
			}
		}

		n := len(oh) + m
		nh, ni, no := newTagBlockInto(l, n)
		var onBuf [tagBlockCap]int32
		oldToNew := onBuf[:]
		if len(oh) > tagBlockCap {
			oldToNew = make([]int32, len(oh)) // fat leaf: rare
		}
		oldToNew = oldToNew[:len(oh)]
		var tailToNew [tagTailMax + 1]int32
		o := 0
		bi := 0
		ti := 0
		for bi < len(oh) && ti < m {
			j := hs[ti]
			if oh[bi] < thash[j] || (oh[bi] == thash[j] &&
				bytes.Compare(oldItems[bi].key, titems[j].key) < 0) {
				nh[o], ni[o] = oh[bi], oldItems[bi]
				oldToNew[bi] = int32(o)
				bi++
			} else {
				nh[o], ni[o] = thash[j], titems[j]
				tailToNew[j] = int32(o)
				ti++
			}
			o++
		}
		for ; bi < len(oh); bi++ {
			nh[o], ni[o] = oh[bi], oldItems[bi]
			oldToNew[bi] = int32(o)
			o++
		}
		for ; ti < m; ti++ {
			j := hs[ti]
			nh[o], ni[o] = thash[j], titems[j]
			tailToNew[j] = int32(o)
			o++
		}

		// Key-order walk: old view interleaved with the pos-sorted tail.
		o = 0
		tj := 0
		for x := 0; x < len(oo); x++ {
			for tj < m && int(tpos[tj]) == x {
				no[o] = tailToNew[tj]
				o++
				tj++
			}
			no[o] = oldToNew[oo[x]]
			o++
		}
		for ; tj < m; tj++ {
			no[o] = tailToNew[tj]
			o++
		}
		l.publishTagBlock(n)
	}
	l.endMutate()
}

// pendingTagBlock passes the block under construction from
// newTagBlockInto to publishTagBlock (single writer; caller holds mu).
//
// newTagBlockInto allocates a block sized for n entries and returns its
// writable arrays; publishTagBlock stores it as the new base and empties
// the tail.
func newTagBlockInto(l *leafNode, n int) ([]uint32, []*kv, []int32) {
	b := &tagBlock{}
	if n > tagBlockCap {
		b.big = &tagBlockBig{hashes: make([]uint32, n), items: make([]*kv, n), order: make([]int32, n)}
		l.pendingBlock = b
		return b.big.hashes, b.big.items, b.big.order
	}
	l.pendingBlock = b
	return b.hashes[:n], b.items[:n], b.order[:n]
}

func (l *leafNode) publishTagBlock(n int) {
	l.base.Store(l.pendingBlock)
	l.pendingBlock = nil
	l.baseN.Store(int32(n))
	l.tailLen.Store(0)
}

// remove deletes the item (previously returned by find); caller holds mu.
// The item's slab slot is not recycled — an optimistic reader may still
// hold a reference to it — but its value pointer is dropped so the slot
// does not pin the value buffer for the life of its slab chunk. (The key
// field stays: it is read race-free by lock-free readers precisely
// because it is never written after construction.)
func (l *leafNode) remove(it *kv) {
	l.beginMutate()
	// Inside the bracket: a reader that loaded the (nil, 0) pair observes
	// the seqlock moving and discards it; validated readers never see it.
	it.vptr.Store(nil)
	it.vlen.Store(0)
	if ti := l.tailIndexOf(it); ti >= 0 {
		// Shift the greater suffix down one, preserving the tail's
		// (pos, key) order.
		last := int(l.tailLen.Load()) - 1
		for i := ti; i < last; i++ {
			l.tailHash[i].Store(l.tailHash[i+1].Load())
			l.tailItem[i].Store(l.tailItem[i+1].Load())
			l.tailPos[i].Store(l.tailPos[i+1].Load())
		}
		l.tailLen.Store(int32(last))
	} else {
		// The item is in the base: publish a copy without it (both the
		// lookup arrays and the key-sorted index view, whose indices above
		// the removed item's array slot shift down by one).
		ob := l.base.Load()
		bn := int(l.baseN.Load())
		oh, oi := ob.view(bn)
		oo := ob.orderView(bn)
		nh, ni, no := newTagBlockInto(l, len(oh)-1)
		o := 0
		ri := len(oi) // removed item's index in the old item array
		for i, m := range oi {
			if m != it {
				nh[o], ni[o] = oh[i], m
				o++
			} else {
				ri = i
			}
		}
		j := 0
		rp := len(oo) // removed item's slot in the old key-sorted view
		for x, ix := range oo {
			if int(ix) == ri {
				rp = x
				continue
			}
			if int(ix) > ri {
				ix--
			}
			no[j] = ix
			j++
		}
		tl := l.tailLen.Load() // publishTagBlock clears the tail; keep it
		l.publishTagBlock(o)
		l.tailLen.Store(tl)
		// Tail merge positions above the removed key slot shift down; a
		// monotone adjustment, so the slots' (pos, key) order survives.
		for i := 0; i < int(tl); i++ {
			if p := l.tailPos[i].Load(); p > int32(rp) {
				l.tailPos[i].Store(p - 1)
			}
		}
	}
	for i, k := range l.kvs {
		if k != it {
			continue
		}
		if i < l.sorted {
			copy(l.kvs[i:], l.kvs[i+1:])
			l.kvs = l.kvs[:len(l.kvs)-1]
			l.sorted--
		} else {
			l.kvs[i] = l.kvs[len(l.kvs)-1]
			l.kvs = l.kvs[:len(l.kvs)-1]
		}
		break
	}
	l.endMutate()
}

// tailIndexOf returns it's slot in the inline tail, or -1.
func (l *leafNode) tailIndexOf(it *kv) int {
	tl := int(l.tailLen.Load())
	for i := 0; i < tl; i++ {
		if l.tailItem[i].Load() == it {
			return i
		}
	}
	return -1
}

// incSortScratch recycles the merge buffer of incSort across calls; the
// buffer never escapes the lock-holding caller, so pooling it makes the
// scan/split sort path allocation-free for leaves within LeafCap.
var incSortScratch = sync.Pool{
	New: func() any {
		b := make([]*kv, 0, 128)
		return &b
	},
}

// incSort makes kvs fully key-sorted: sort the unsorted tail, then merge it
// with the sorted prefix (Algorithm 3's incSort). The published tag array
// is untouched — kvs order is invisible to lock-free readers. Caller
// holds mu (write).
func (l *leafNode) incSort() {
	if l.sorted == len(l.kvs) {
		return
	}
	tail := l.kvs[l.sorted:]
	slices.SortFunc(tail, func(x, y *kv) int { return bytes.Compare(x.key, y.key) })
	if l.sorted == 0 {
		l.sorted = len(l.kvs)
		return
	}
	bufp := incSortScratch.Get().(*[]*kv)
	merged := (*bufp)[:0]
	a, b := l.kvs[:l.sorted], tail
	for len(a) > 0 && len(b) > 0 {
		if bytes.Compare(a[0].key, b[0].key) <= 0 {
			merged = append(merged, a[0])
			a = a[1:]
		} else {
			merged = append(merged, b[0])
			b = b[1:]
		}
	}
	merged = append(merged, a...)
	merged = append(merged, b...)
	copy(l.kvs, merged)
	l.sorted = len(l.kvs)
	*bufp = merged[:0]
	incSortScratch.Put(bufp)
}

// rebuildTags builds and publishes a fresh fully-sorted base block from
// kvs (used after splits and bulk loads). The previous block is left
// intact for readers still holding it. Caller holds mu.
func (l *leafNode) rebuildTags() {
	nb := make([]tagEnt, len(l.kvs))
	for i, it := range l.kvs {
		nb[i] = tagEnt{hash: it.hash, it: it}
	}
	sortTagEnts(nb)
	l.setTags(nb)
}

// firstAtLeast returns the index of the first sorted item with key >= k.
// Requires incSort to have run (sorted == len(kvs)).
func (l *leafNode) firstAtLeast(k []byte) int {
	return sort.Search(len(l.kvs), func(i int) bool {
		return bytes.Compare(l.kvs[i].key, k) >= 0
	})
}

// firstGreater returns the index of the first sorted item with key > k.
func (l *leafNode) firstGreater(k []byte) int {
	return sort.Search(len(l.kvs), func(i int) bool {
		return bytes.Compare(l.kvs[i].key, k) > 0
	})
}
