package core

import (
	"bytes"
	"sort"
	"sync"
	"sync/atomic"
)

// kv is one key-value item. hash is the CRC32-C of the key, computed once
// at insertion; its low 16 bits play the role of the paper's leaf tag
// (§3.2). Key and value buffers are owned by the index once inserted and
// must not be mutated by the caller.
type kv struct {
	hash uint32
	key  []byte
	val  []byte
}

// tagEnt is one tag-array slot: the item's full hash inline (its low bits
// are the paper's 16-bit tag; we keep all 32 to order the array) plus the
// item pointer, dereferenced only on a hash match.
type tagEnt struct {
	hash uint32
	it   *kv
}

// leafNode is one LeafList node (Figure 7).
//
// kvs holds items in insertion order: kvs[:sorted] is key-sorted, the tail
// is the unsorted append region. incSort merges the two on demand (range
// scan or split), which is the paper's delayed, batched sorting.
//
// byHash holds the same items permanently sorted by (hash, key) — the tag
// array of Figure 7. Each entry keeps the hash inline so the position scan
// touches one contiguous array instead of dereferencing a heap pointer per
// probe (the compact-tag-array point of §3.2); the kv pointer is followed
// only on a hash match. Because entries reference kvs by pointer,
// re-ordering kvs during incSort does not disturb the array.
type leafNode struct {
	mu sync.RWMutex
	// version is the "expected version" of §2.5: set to (current table
	// version + 1) while the leaf is locked for a split/merge. A reader
	// that reached this leaf through an older table observes
	// version > tableVersion and restarts.
	version atomic.Uint64
	dead    bool // set when the leaf is merged away (victim); guarded by mu

	anchor atomic.Pointer[anchor]

	kvs    []*kv
	sorted int
	byHash []tagEnt

	prev, next atomic.Pointer[leafNode]
}

func newLeafNode(a anchor, capHint int) *leafNode {
	l := &leafNode{
		kvs:    make([]*kv, 0, capHint),
		byHash: make([]tagEnt, 0, capHint),
	}
	l.anchor.Store(&a)
	return l
}

func (l *leafNode) size() int { return len(l.kvs) }

// hashPos returns the index in byHash where an item with hash h and key
// resides or would be inserted, plus whether it was found.
//
// With directPos the start index is speculated as hash*size/2^32 — with a
// uniform hash this lands within a step or two of the right run (§3.2's
// direct speculative positioning). Otherwise a binary search is used.
func (l *leafNode) hashPos(h uint32, key []byte, directPos bool) (int, bool) {
	a := l.byHash
	n := len(a)
	if n == 0 {
		return 0, false
	}
	var i int
	if directPos {
		i = int(uint64(h) * uint64(n) >> 32)
		for i > 0 && h <= a[i-1].hash {
			i--
		}
		for i < n && h > a[i].hash {
			i++
		}
	} else {
		i = sort.Search(n, func(j int) bool { return a[j].hash >= h })
	}
	for i < n && a[i].hash == h {
		c := bytes.Compare(key, a[i].it.key)
		if c == 0 {
			return i, true
		}
		if c < 0 {
			return i, false
		}
		i++
	}
	return i, false
}

// find locates key in the leaf. With sortByTag it searches the hash-ordered
// array; without (BaseWormhole) it binary-searches the key-sorted region
// and scans the unsorted tail, comparing full keys — the behaviour Figure
// 11's ablation isolates.
func (l *leafNode) find(h uint32, key []byte, sortByTag, directPos bool) *kv {
	if sortByTag {
		if i, ok := l.hashPos(h, key, directPos); ok {
			return l.byHash[i].it
		}
		return nil
	}
	s := l.kvs[:l.sorted]
	i := sort.Search(len(s), func(j int) bool { return bytes.Compare(s[j].key, key) >= 0 })
	if i < len(s) && bytes.Equal(s[i].key, key) {
		return s[i]
	}
	for _, it := range l.kvs[l.sorted:] {
		if bytes.Equal(it.key, key) {
			return it
		}
	}
	return nil
}

// insert adds a new item; the caller has verified the key is absent.
func (l *leafNode) insert(it *kv) {
	// Keep the sorted prefix maximal for the common ascending-insert case.
	if l.sorted == len(l.kvs) &&
		(l.sorted == 0 || bytes.Compare(l.kvs[l.sorted-1].key, it.key) < 0) {
		l.sorted++
	}
	l.kvs = append(l.kvs, it)
	i, _ := l.hashPos(it.hash, it.key, false)
	l.byHash = append(l.byHash, tagEnt{})
	copy(l.byHash[i+1:], l.byHash[i:])
	l.byHash[i] = tagEnt{hash: it.hash, it: it}
}

// remove deletes the item (previously returned by find).
func (l *leafNode) remove(it *kv) {
	for i, k := range l.byHash {
		if k.it == it {
			l.byHash = append(l.byHash[:i], l.byHash[i+1:]...)
			break
		}
	}
	for i, k := range l.kvs {
		if k != it {
			continue
		}
		if i < l.sorted {
			copy(l.kvs[i:], l.kvs[i+1:])
			l.kvs = l.kvs[:len(l.kvs)-1]
			l.sorted--
		} else {
			l.kvs[i] = l.kvs[len(l.kvs)-1]
			l.kvs = l.kvs[:len(l.kvs)-1]
		}
		return
	}
}

// incSort makes kvs fully key-sorted: sort the unsorted tail, then merge it
// with the sorted prefix (Algorithm 3's incSort). byHash is untouched.
func (l *leafNode) incSort() {
	if l.sorted == len(l.kvs) {
		return
	}
	tail := l.kvs[l.sorted:]
	sort.Slice(tail, func(i, j int) bool {
		return bytes.Compare(tail[i].key, tail[j].key) < 0
	})
	if l.sorted == 0 {
		l.sorted = len(l.kvs)
		return
	}
	merged := make([]*kv, 0, len(l.kvs))
	a, b := l.kvs[:l.sorted], tail
	for len(a) > 0 && len(b) > 0 {
		if bytes.Compare(a[0].key, b[0].key) <= 0 {
			merged = append(merged, a[0])
			a = a[1:]
		} else {
			merged = append(merged, b[0])
			b = b[1:]
		}
	}
	merged = append(merged, a...)
	merged = append(merged, b...)
	copy(l.kvs, merged)
	l.sorted = len(l.kvs)
}

// rebuildByHash resorts the tag array from scratch (used after splits).
func (l *leafNode) rebuildByHash() {
	l.byHash = l.byHash[:0]
	for _, it := range l.kvs {
		l.byHash = append(l.byHash, tagEnt{hash: it.hash, it: it})
	}
	sort.Slice(l.byHash, func(i, j int) bool {
		if l.byHash[i].hash != l.byHash[j].hash {
			return l.byHash[i].hash < l.byHash[j].hash
		}
		return bytes.Compare(l.byHash[i].it.key, l.byHash[j].it.key) < 0
	})
}

// firstAtLeast returns the index of the first sorted item with key >= k.
// Requires incSort to have run (sorted == len(kvs)).
func (l *leafNode) firstAtLeast(k []byte) int {
	return sort.Search(len(l.kvs), func(i int) bool {
		return bytes.Compare(l.kvs[i].key, k) >= 0
	})
}

// firstGreater returns the index of the first sorted item with key > k.
func (l *leafNode) firstGreater(k []byte) int {
	return sort.Search(len(l.kvs), func(i int) bool {
		return bytes.Compare(l.kvs[i].key, k) > 0
	})
}
