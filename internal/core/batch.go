package core

import (
	"bytes"
	"sync"

	"github.com/repro/wormhole/internal/qsbr"
)

// This file is the memory-parallel batched read path. A scalar Get is a
// chain of dependent cache misses — each LPM probe's bucket address is
// known only after the previous probe's branch resolves, and the leaf
// probe waits behind the whole search — so a batch of B lookups run one
// at a time costs B serialized miss chains. The Cuckoo Trie observation
// (PAPERS.md) is that DRAM indexes have miss-level parallelism to spare
// *across* operations: while one key's probe is outstanding the core can
// issue another key's. GetBatch therefore runs its keys through a staged
// pipeline, `batchDepth` lanes at a time:
//
//  1. hash: every lane's per-byte prefix CRCs and full-key hash are
//     computed up front (pure arithmetic, no memory stalls), into a
//     pooled scratch so steady-state batches allocate nothing;
//  2. warm: every lane's first three binary-search levels' buckets are
//     touched (warmSearchLevels, 7 loads per lane) before any lane
//     starts probing, overlapping up to 7*depth independent misses;
//  3. search: the LPM binary searches advance round-robin — one probe
//     per live lane per round — so each lane's next dependent miss
//     issues while the other lanes' probes are in flight;
//  4. resolve: each lane verifies its optimistic tag-only result,
//     resolves its target leaf (leafFromLPM), snapshots the leaf's
//     seqlock, and touches the leaf's speculative item slot, again
//     overlapping the leaves' misses across lanes;
//  5. probe: each lane performs the seqlock-validated tag search and
//     value materialization exactly as the scalar path; any
//     irregularity — odd seqlock, stale version, dead leaf, seqlock
//     moved, key too long for the eager CRC array — drops that one lane
//     to the scalar getOnline, which owns all retry/locking logic.
//
// The seqlock bracket per lane is the scalar one: s1 is loaded after the
// leaf is resolved and validated after the tag search, so interleaving
// other lanes' work inside the bracket can only widen the window and
// cause a (correct) fallback, never admit a torn read.

// maxBatchLanes bounds the pipeline's interleave depth. 32 lanes of
// prefix-CRC scratch is ~8 KB — comfortably cache-resident, and far past
// the point where extra lanes stop adding overlappable misses.
const maxBatchLanes = 32

// defaultBatchInterleave is the depth used when Options.BatchInterleave
// is zero. Eight lanes cover typical L1-miss latency with issue slots to
// spare without thrashing the scratch.
const defaultBatchInterleave = 8

// normalizeInterleave maps the user-facing BatchInterleave convention
// (0 default, negative = scalar loop) onto the stored depth.
func normalizeInterleave(n int) int32 {
	switch {
	case n == 0:
		return defaultBatchInterleave
	case n < 0:
		return 0
	case n > maxBatchLanes:
		return maxBatchLanes
	}
	return int32(n)
}

// SetBatchInterleave retunes the GetBatch pipeline depth on a live
// index: 0 restores the default, negative selects the scalar per-key
// loop (the pre-pipeline behavior, kept so benchmarks can compare both
// in one process), values above the lane cap are clamped. Safe to call
// concurrently with readers; in-flight batches finish at the old depth.
func (w *Wormhole) SetBatchInterleave(n int) {
	w.batchDepth.Store(normalizeInterleave(n))
}

// batchLane is one key's in-flight state across the pipeline stages.
type batchLane struct {
	hs   [maxEagerPrefix + 1]uint32 // hs[i] = CRC32-C of key[:i]
	h    uint32                     // full-key hash
	ph   uint32                     // hash of the confirmed LPM prefix
	m, n int32                      // binary-search bounds (confirmed, exclusive upper)
	node *metaNode                  // current LPM candidate
	leaf *leafNode                  // resolved target leaf
	s1   uint64                     // leaf seqlock snapshot
	idx  int32                      // position in keys/vals/found
	slow bool                       // lane must take the scalar path
}

// batchScratch is the pooled per-batch state: the lane array dominates
// it, and pooling keeps GetBatch allocation-free in steady state.
type batchScratch struct {
	lanes [maxBatchLanes]batchLane
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// getBatchOnline answers the batch inside an already-announced reader
// section (slot s). Depth 0 — or SortByTag off, where the leaf probe has
// no lock-free form — degrades to the scalar loop.
func (w *Wormhole) getBatchOnline(s *qsbr.Slot, keys, vals [][]byte, found []bool, idxs []int) {
	depth := int(w.batchDepth.Load())
	if depth <= 0 || !w.opt.SortByTag {
		if idxs == nil {
			for i := range keys {
				vals[i], found[i] = w.getOnline(s, hashKey(keys[i]), keys[i])
			}
			return
		}
		for _, i := range idxs {
			vals[i], found[i] = w.getOnline(s, hashKey(keys[i]), keys[i])
		}
		return
	}
	count := len(keys)
	if idxs != nil {
		count = len(idxs)
	}
	sc := batchScratchPool.Get().(*batchScratch)
	for base := 0; base < count; base += depth {
		wave := min(depth, count-base)
		w.batchWave(s, sc, keys, vals, found, idxs, base, wave)
	}
	batchScratchPool.Put(sc)
}

// batchWave runs one group of up to batchDepth keys through the five
// pipeline stages described at the top of the file.
func (w *Wormhole) batchWave(s *qsbr.Slot, sc *batchScratch, keys, vals [][]byte, found []bool, idxs []int, base, wave int) {
	t := w.cur.Load()
	// t.version is immutable only while t stays published; a stage-5
	// scalar fallback may Refresh the reader slot, after which t can be
	// retired, patched, and republished with a new version while later
	// lanes still validate against it. Capture the publication-time value
	// now, while the wave's epoch still protects t.
	tver := t.version
	lanes := sc.lanes[:wave]
	tagMatch := w.opt.TagMatching

	// Stage 1: per-byte prefix CRCs and the full-key hash for every lane,
	// before any table probe. Keys the eager array cannot hold (or any
	// batch on a non-IncHashing index) go scalar.
	for li := range lanes {
		ln := &lanes[li]
		ki := base + li
		if idxs != nil {
			ki = idxs[base+li]
		}
		ln.idx = int32(ki)
		k := keys[ki]
		maxl := min(len(k), t.maxLen)
		if !w.opt.IncHashing || maxl > maxEagerPrefix {
			ln.slow = true
			ln.h = hashKey(k)
			continue
		}
		ln.slow = false
		c := ^uint32(0)
		i := 0
		for ; i < maxl; i++ {
			c = crcTable[byte(c)^k[i]] ^ (c >> 8)
			ln.hs[i+1] = ^c
		}
		for ; i < len(k); i++ {
			c = crcTable[byte(c)^k[i]] ^ (c >> 8)
		}
		ln.h = ^c
		ln.hs[0] = 0
		ln.m, ln.n = 0, int32(maxl+1)
		ln.node = t.root
		ln.leaf = nil
	}

	// Stage 2: warm every lane's first search levels before any lane
	// begins its dependent probe chain. The summed tags feed a benign
	// branch so the loads stay live.
	var warm uint16
	for li := range lanes {
		ln := &lanes[li]
		if !ln.slow && ln.n > 2 {
			warm += t.warmSearchLevels(&ln.hs, int(ln.n))
		}
	}
	if warm == 0xFFFF {
		lanes[0].node = t.root
	}

	// Stage 3: LPM binary searches, round-robin — one probe per live
	// lane per round, so no lane's miss chain stalls the others.
	for {
		live := false
		for li := range lanes {
			ln := &lanes[li]
			if ln.slow || ln.m+1 >= ln.n {
				continue
			}
			live = true
			pl := int(ln.m+ln.n) / 2
			var nd *metaNode
			if tagMatch {
				nd = t.getTagOnly(ln.hs[pl])
			} else {
				nd = t.get(ln.hs[pl], keys[ln.idx][:pl], false)
			}
			if nd != nil {
				ln.m, ln.node = int32(pl), nd
			} else {
				ln.n = int32(pl)
			}
		}
		if !live {
			break
		}
	}

	// Stage 4: certify each optimistic search with one full comparison
	// (rerunning exactly on a false-positive tag), resolve the target
	// leaf, snapshot its seqlock, and touch its speculative item slot so
	// the leaves' misses overlap across lanes too.
	var leafWarm int
	for li := range lanes {
		ln := &lanes[li]
		if ln.slow {
			continue
		}
		k := keys[ln.idx]
		ln.ph = ln.hs[ln.m]
		if tagMatch && !bytes.Equal(ln.node.key, k[:ln.m]) {
			node, h, _ := w.lpmPass(t, k, false)
			ln.node, ln.ph = node, h
		}
		ln.leaf = w.leafFromLPM(t, k, ln.node, ln.ph)
		ln.s1 = ln.leaf.seq.Load()
		if w.opt.DirectPos {
			_, items := ln.leaf.base.Load().view(int(ln.leaf.baseN.Load()))
			if len(items) > 0 && items[int(uint64(ln.h)*uint64(len(items))>>32)] != nil {
				leafWarm++
			}
		}
	}
	if leafWarm > maxBatchLanes {
		lanes[0].slow = true // unreachable: leafWarm counts at most one per lane
	}

	// Stage 5: the scalar read protocol per lane — §2.5 version/dead
	// validation and the seqlock-bracketed tag search. Anything
	// irregular retries through getOnline, which owns the retry,
	// locking, and stale-table Refresh logic.
	for li := range lanes {
		ln := &lanes[li]
		ki := int(ln.idx)
		k := keys[ki]
		if ln.slow {
			vals[ki], found[ki] = w.getOnline(s, ln.h, k)
			continue
		}
		l := ln.leaf
		if ln.s1&1 != 0 || l.version.Load() > tver || l.dead.Load() {
			vals[ki], found[ki] = w.getOnline(s, ln.h, k)
			continue
		}
		var vp *byte
		var vn int64
		ok := false
		if it := l.findTags(ln.h, k, w.opt.DirectPos); it != nil {
			vp, vn = it.valueParts()
			ok = true
		}
		if l.seq.Load() != ln.s1 {
			vals[ki], found[ki] = w.getOnline(s, ln.h, k)
			continue
		}
		if ok {
			// The bracket held, so the (vp, vn) pair is consistent and
			// may be materialized now — never before the validation.
			vals[ki], found[ki] = valueSlice(vp, vn), true
		} else {
			vals[ki], found[ki] = nil, false
		}
	}
}
