package core

import (
	"bytes"
	"sync"
)

// Range scans (Algorithm 2's RangeSearchAscending, plus the descending
// twin): one meta-table lookup finds the starting leaf, then the scan walks
// the LeafList directly. Each leaf is visited under its own lock (write
// lock only when the leaf's append region must first be incSort-ed), its
// qualifying items are copied out as slice headers, and the callback runs
// unlocked so it may call back into the index.
//
// Concurrent splits and merges are tolerated by two rules:
//
//   - resume strictly after the last emitted key, so a leaf reached twice
//     (e.g. re-seek after landing on a merged-away node) emits no
//     duplicates and loses no keys;
//   - an ascending hop pointer captured under the predecessor's lock stays
//     valid across a split of the target (the target keeps its lower half
//     and the scan re-reads .next), but a descending hop must verify
//     hopped.next == current and otherwise re-seek, because a split moves
//     the upper half — the keys the descending scan needs next — into a
//     node the stale pointer bypasses.

type pair struct{ k, v []byte }

// scanChunk bounds how many pairs are copied out per lock acquisition:
// small enough that a short range query does not pay for a whole 128-key
// leaf, large enough that long scans amortize the locking.
const scanChunk = 128

// pairBufPool recycles scan copy-out buffers; range-heavy workloads
// (Figure 18) would otherwise allocate one batch per scan and spend their
// time in the garbage collector.
var pairBufPool = sync.Pool{
	New: func() any {
		b := make([]pair, 0, scanChunk)
		return &b
	},
}

// Scan visits keys >= start in ascending order until fn returns false.
// A nil start scans from the smallest key.
func (w *Wormhole) Scan(start []byte, fn func(key, val []byte) bool) {
	if !w.opt.Concurrent {
		w.scanUnsafe(start, fn)
		return
	}
	s := w.q.Enter()
	defer w.q.Leave(s)
	bufp := pairBufPool.Get().(*[]pair)
	defer pairBufPool.Put(bufp)
	var (
		last    []byte
		started bool
		l       *leafNode
		hop     bool // l was reached by a list hop or same-leaf continuation
	)
	for {
		w.q.Refresh(s)
		var write, ok bool
		if hop {
			write, ok = w.lockScanLeaf(l, 0, false)
			if !ok {
				hop = false
				continue
			}
		} else {
			t := w.cur.Load()
			seek := start
			if started {
				seek = last
			}
			l = w.searchMeta(t, seek)
			write, ok = w.lockScanLeaf(l, t.version, true)
			if !ok {
				continue
			}
		}
		batch := (*bufp)[:0]
		var i int
		if started {
			i = l.firstGreater(last)
		} else {
			i = l.firstAtLeast(start)
		}
		end := i + scanChunk
		if end > len(l.kvs) {
			end = len(l.kvs)
		}
		for ; i < end; i++ {
			batch = append(batch, pair{l.kvs[i].key, l.kvs[i].value()})
		}
		more := end < len(l.kvs)
		var nxt *leafNode
		if !more {
			nxt = l.next.Load()
		}
		unlockScanLeaf(l, write)
		*bufp = batch[:0]

		for _, p := range batch {
			started, last = true, p.k
			if !fn(p.k, p.v) {
				return
			}
		}
		if more {
			hop = true // continue in the same leaf, resuming after last
			continue
		}
		if nxt == nil {
			return
		}
		l, hop = nxt, true
	}
}

// ScanDesc visits keys <= start in descending order until fn returns false.
// A nil start scans from the largest key.
func (w *Wormhole) ScanDesc(start []byte, fn func(key, val []byte) bool) {
	if !w.opt.Concurrent {
		w.scanDescUnsafe(start, fn)
		return
	}
	s := w.q.Enter()
	defer w.q.Leave(s)
	bufp := pairBufPool.Get().(*[]pair)
	defer pairBufPool.Put(bufp)
	var (
		last     []byte
		started  bool
		l, from  *leafNode
		hop      bool
		sameLeaf bool
		seenVer  uint64
	)
	for {
		w.q.Refresh(s)
		var write, ok bool
		if hop {
			write, ok = w.lockScanLeaf(l, 0, false)
			if ok && from != nil && l.next.Load() != from {
				// A split slid new keys in between; re-seek.
				unlockScanLeaf(l, write)
				ok = false
			}
			if ok && sameLeaf && l.version.Load() != seenVer {
				// The leaf split while we paused: its upper half — keys the
				// descending scan still owes — moved to a right sibling this
				// continuation would skip. Re-seek from the last key.
				unlockScanLeaf(l, write)
				ok = false
			}
			if !ok {
				hop, sameLeaf = false, false
				continue
			}
		} else {
			t := w.cur.Load()
			if started {
				l = w.searchMeta(t, last)
			} else if start != nil {
				l = w.searchMeta(t, start)
			} else {
				l = w.rightmostLeaf(t)
			}
			write, ok = w.lockScanLeaf(l, t.version, true)
			if !ok {
				continue
			}
		}
		batch := (*bufp)[:0]
		var i int
		switch {
		case started:
			i = l.firstAtLeast(last) - 1
		case start != nil:
			i = l.firstGreater(start) - 1
		default:
			i = len(l.kvs) - 1
		}
		low := i - scanChunk
		for ; i >= 0 && i > low; i-- {
			batch = append(batch, pair{l.kvs[i].key, l.kvs[i].value()})
		}
		more := i >= 0
		var prv *leafNode
		if !more {
			prv = l.prev.Load()
		}
		seenVer = l.version.Load()
		unlockScanLeaf(l, write)
		*bufp = batch[:0]

		for _, p := range batch {
			started, last = true, p.k
			if !fn(p.k, p.v) {
				return
			}
		}
		if more {
			// Same leaf: skip the next-pointer check but insist the leaf
			// version is unchanged (no split slipped in).
			from, hop, sameLeaf = nil, true, true
			continue
		}
		if prv == nil {
			return
		}
		from, l, hop, sameLeaf = l, prv, true, false
	}
}

// lockScanLeaf locks l for scanning: a read lock when the leaf is already
// fully sorted, otherwise a write lock so incSort may run. checkVersion
// applies the §2.5 stale-table test (only meaningful when the leaf was
// found through a meta table). ok=false means the lock was abandoned and
// the caller must re-seek.
func (w *Wormhole) lockScanLeaf(l *leafNode, version uint64, checkVersion bool) (write, ok bool) {
	l.mu.RLock()
	if l.dead.Load() || (checkVersion && l.version.Load() > version) {
		l.mu.RUnlock()
		return false, false
	}
	if l.sorted == len(l.kvs) {
		return false, true
	}
	l.mu.RUnlock()
	l.mu.Lock()
	if l.dead.Load() || (checkVersion && l.version.Load() > version) {
		l.mu.Unlock()
		return false, false
	}
	l.incSort()
	return true, true
}

func unlockScanLeaf(l *leafNode, write bool) {
	if write {
		l.mu.Unlock()
	} else {
		l.mu.RUnlock()
	}
}

// rightmostLeaf returns the last LeafList node: the root item's rightmost
// subtree boundary (O(1), no list walk).
func (w *Wormhole) rightmostLeaf(t *metaTable) *leafNode {
	root := t.root
	if root.isLeafItem() {
		return root.leaf
	}
	return root.rightmost
}

func (w *Wormhole) scanUnsafe(start []byte, fn func(key, val []byte) bool) {
	t := w.cur.Load()
	l := w.searchMeta(t, start)
	l.incSort()
	i := l.firstAtLeast(start)
	for l != nil {
		for ; i < len(l.kvs); i++ {
			if !fn(l.kvs[i].key, l.kvs[i].value()) {
				return
			}
		}
		l = l.next.Load()
		if l != nil {
			l.incSort()
			i = 0
		}
	}
}

func (w *Wormhole) scanDescUnsafe(start []byte, fn func(key, val []byte) bool) {
	t := w.cur.Load()
	var l *leafNode
	var i int
	if start != nil {
		l = w.searchMeta(t, start)
		l.incSort()
		i = l.firstGreater(start) - 1
	} else {
		l = w.rightmostLeaf(t)
		l.incSort()
		i = len(l.kvs) - 1
	}
	for l != nil {
		for ; i >= 0; i-- {
			if !fn(l.kvs[i].key, l.kvs[i].value()) {
				return
			}
		}
		l = l.prev.Load()
		if l != nil {
			l.incSort()
			i = len(l.kvs) - 1
		}
	}
}

// Min returns the smallest key and its value.
func (w *Wormhole) Min() (key, val []byte, ok bool) {
	w.Scan(nil, func(k, v []byte) bool {
		key, val, ok = k, v, true
		return false
	})
	return
}

// Max returns the largest key and its value.
func (w *Wormhole) Max() (key, val []byte, ok bool) {
	w.ScanDesc(nil, func(k, v []byte) bool {
		key, val, ok = k, v, true
		return false
	})
	return
}

// RangeAsc collects up to limit pairs with key >= start, ascending — the
// paper's RangeSearchAscending shape, convenient for benchmarks.
func (w *Wormhole) RangeAsc(start []byte, limit int) (keys, vals [][]byte) {
	if limit <= 0 {
		return nil, nil
	}
	keys = make([][]byte, 0, limit)
	vals = make([][]byte, 0, limit)
	w.Scan(start, func(k, v []byte) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return len(keys) < limit
	})
	return keys, vals
}

// Iter is a pull-style cursor over the index in ascending key order. It
// holds no locks between Next calls; mutations made while iterating may or
// may not be observed, but every key present for the whole iteration is
// visited exactly once.
type Iter struct {
	w         *Wormhole
	batch     []pair
	i         int
	seek      []byte
	inclusive bool
	done      bool
}

// NewIter returns an iterator positioned before the first key >= start
// (nil start means the smallest key).
func (w *Wormhole) NewIter(start []byte) *Iter {
	return &Iter{w: w, seek: start, inclusive: true, i: -1}
}

// Next advances the iterator; it returns false when the keys are exhausted.
func (i *Iter) Next() bool {
	if i.done {
		return false
	}
	i.i++
	if i.i < len(i.batch) {
		return true
	}
	i.batch = i.batch[:0]
	i.i = 0
	const chunk = 64
	skip := !i.inclusive
	i.w.Scan(i.seek, func(k, v []byte) bool {
		if skip {
			skip = false
			if bytes.Equal(k, i.seek) {
				return true // resume strictly after the last emitted key
			}
		}
		i.batch = append(i.batch, pair{k, v})
		return len(i.batch) < chunk
	})
	if len(i.batch) == 0 {
		i.done = true
		return false
	}
	i.seek = i.batch[len(i.batch)-1].k
	i.inclusive = false
	return true
}

// Key returns the current key; valid after Next reports true.
func (i *Iter) Key() []byte { return i.batch[i.i].k }

// Value returns the current value; valid after Next reports true.
func (i *Iter) Value() []byte { return i.batch[i.i].v }
