package core

import (
	"bytes"
	"sync"

	"github.com/repro/wormhole/internal/qsbr"
)

// Range scans (Algorithm 2's RangeSearchAscending, plus the descending
// twin): one meta-table lookup finds the starting leaf, then the scan walks
// the LeafList directly through a resumable cursor.
//
// The fast path is coordination-free, the scan-side twin of getOnline: each
// chunk is copied out of the leaf's published key-sorted view (the tag
// block's sorted index over its item array) interleaved with the short
// inline tail of recent inserts by pre-published merge positions, the
// whole copy bracketed between two loads of the leaf's seqlock word. Nothing is locked, nothing is written to shared state, and
// the leaf's append region is never incSort-ed on behalf of a reader. Only
// after the bracket validates are the copied (vptr, vlen) pairs
// materialized and handed to the callback, which therefore runs with no
// locks held and may call back into the index. Leaves under persistent
// write pressure (seqlockAttempts collisions) fall back to the classic
// locked chunk copy, which sorts the append region in place.
//
// Concurrent splits and merges are tolerated by three rules:
//
//   - resume strictly beyond the last emitted key, so a leaf reached twice
//     (e.g. re-seek after landing on a merged-away node) emits no
//     duplicates and loses no keys;
//   - an ascending hop pointer captured inside a validated bracket (or
//     under the predecessor's lock) stays valid across a split of the
//     target — the target keeps its lower half and the scan re-reads
//     .next — but a descending hop must verify hopped.next == current and
//     otherwise re-seek, because a split moves the upper half — the keys
//     the descending scan needs next — into a node the stale pointer
//     bypasses;
//   - a descending same-leaf continuation must observe an unchanged leaf
//     version: a split between chunks moves the upper half — keys the
//     cursor still owes — into a right sibling the continuation would
//     skip. (Ascending continuations need no check: the lower half stays,
//     and the moved upper half is reached through .next in order.)

// scanChunk bounds how many pairs are copied out per leaf visit: small
// enough that a short range query does not pay for a whole 128-key leaf,
// large enough that long scans amortize the copy-out bookkeeping.
const scanChunk = 128

// scanEntry is one copied-out pair in pre-materialized form: the item —
// whose key field is immutable and therefore safe to read even after the
// bracket — plus the raw (vptr, vlen) value pair, which was loaded inside
// the bracket and may only be turned into a slice once the bracket has
// validated (or under the leaf lock, where the pair is always consistent).
// Not retaining the key's slice header keeps the entry at 24 bytes, so a
// chunk copy moves 40% less batch memory.
type scanEntry struct {
	it *kv
	vp *byte
	vn int64
}

func (e *scanEntry) key() []byte   { return e.it.key }
func (e *scanEntry) value() []byte { return valueSlice(e.vp, e.vn) }

// scanBufPool recycles chunk copy-out buffers; range-heavy workloads
// (Figure 18) would otherwise allocate one batch per scan and spend their
// time in the garbage collector.
var scanBufPool = sync.Pool{
	New: func() any {
		b := make([]scanEntry, 0, scanChunk)
		return &b
	},
}

// cursor is a resumable scan position, shared by Scan/ScanDesc (which
// drive it to exhaustion inside one reader section) and Iter (which parks
// between chunks on a pinned slot). Instead of paying a meta-table lookup
// per chunk, the cursor retains the leaf the next chunk starts in and
// walks next/prev LeafList pointers; it re-seeks through the meta table
// only when the retained leaf can no longer serve the scan (dead, stale
// version, or a failed descending-hop validation).
type cursor struct {
	w    *Wormhole
	desc bool
	// start is the original seek bound; nil means the smallest key
	// (ascending) or the largest (descending).
	start []byte
	// bound is the last emitted key once started; resume is strictly
	// beyond it. It aliases an index-owned key buffer, which is immutable,
	// so retaining it across chunks is race-free and allocation-free.
	bound   []byte
	started bool
	done    bool

	// Retained resume position: leaf is the node the next chunk starts in
	// (nil: re-seek through the meta table). For descending hops, from is
	// the node the cursor left, validated as leaf.next on arrival; for
	// descending same-leaf continuations, seenVer is the leaf version the
	// previous chunk observed.
	leaf     *leafNode
	from     *leafNode
	sameLeaf bool
	seenVer  uint64
}

// reseek drops the retained position; the next chunk resolves its leaf
// through the meta table from the bound.
func (c *cursor) reseek() {
	c.leaf, c.from, c.sameLeaf = nil, nil, false
}

// advance folds one successful chunk into the cursor state. l is the leaf
// the chunk came from, adj its next/prev pointer when the leaf was
// exhausted (captured inside the chunk's validation), ver the leaf version
// observed by the chunk, more whether qualifying items remain in l.
func (c *cursor) advance(l, adj *leafNode, ver uint64, more bool, out []scanEntry) {
	if len(out) > 0 {
		c.bound = out[len(out)-1].key()
		c.started = true
	}
	if more {
		if c.desc && !c.w.opt.Concurrent {
			// Unsafe-mode splits do not bump leaf versions, so the
			// descending same-leaf validation could not detect a split an
			// interleaved Set performs between an Iter's chunks; re-seek
			// from the bound instead of retaining the leaf.
			c.reseek()
			return
		}
		c.leaf, c.from = l, nil
		c.sameLeaf, c.seenVer = true, ver
		return
	}
	c.sameLeaf = false
	c.leaf = adj
	c.from = nil
	if c.desc {
		c.from = l
	}
	if adj == nil {
		c.done = true
	}
}

// boundKey returns the current resume bound and whether it is inclusive
// (only the original seek bound is; after the first emission resume is
// strictly beyond the last key). unbounded reports a descending scan with
// no upper bound (start from the largest key).
func (c *cursor) boundKey() (bound []byte, incl, unbounded bool) {
	if c.started {
		return c.bound, false, false
	}
	return c.start, true, c.start == nil
}

// fastResult classifies one optimistic chunk attempt.
type fastResult int

const (
	fastRetry  fastResult = iota // seqlock collision: try again
	fastReseek                   // leaf cannot serve the scan: re-seek
	fastOK
)

// tryFastChunk performs one optimistic chunk copy-out from l: the validity
// checks, the boundary search over the published key-sorted view, the
// inline-tail merge, the value-pair loads, and the adjacency pointer all
// sit between two loads of l's seqlock word, so a validated chunk is
// consistent with one stable leaf state. No store to shared memory, no
// incSort, no lock.
func (c *cursor) tryFastChunk(l *leafNode, tver uint64, checkVer bool, buf []scanEntry) ([]scanEntry, fastResult) {
	s1 := l.seq.Load()
	if s1&1 != 0 {
		return nil, fastRetry // writer mid-mutation
	}
	if l.dead.Load() || (checkVer && l.version.Load() > tver) {
		return nil, fastReseek
	}
	ver := l.version.Load()
	if c.desc {
		if c.from != nil && l.next.Load() != c.from {
			// A split slid new keys in between since the hop pointer was
			// captured; re-seek.
			return nil, fastReseek
		}
		if c.sameLeaf && ver != c.seenVer {
			// The leaf split while the cursor paused: its upper half moved
			// to a right sibling this continuation would skip.
			return nil, fastReseek
		}
	}
	b := l.base.Load()
	bn := int(l.baseN.Load())
	_, items := b.view(bn)
	order := b.orderView(bn)
	bound, incl, unbounded := c.boundKey()
	// After a validated hop every key in l lies strictly beyond the bound
	// (leaf spans are ordered and a real anchor never moves down), so the
	// merge starts at the leaf edge without any boundary search.
	edge := c.leaf != nil && !c.sameLeaf
	var out []scanEntry
	var more bool
	if c.desc {
		out, more = mergeDesc(l, items, order, bound, incl, unbounded || edge, buf)
	} else {
		out, more = mergeAsc(l, items, order, bound, incl, edge, buf)
	}
	var adj *leafNode
	if !more {
		if c.desc {
			adj = l.prev.Load()
		} else {
			adj = l.next.Load()
		}
	}
	if l.seq.Load() != s1 {
		return nil, fastRetry
	}
	c.advance(l, adj, ver, more, out)
	return out, fastOK
}

// mergeAsc merge-walks the key-sorted base view and the leaf's inline
// tail in ascending order, appending every pair beyond the bound (>= when
// incl, > otherwise) until the chunk (cap(buf)) fills. more reports
// whether qualifying items remain in this leaf beyond the chunk.
//
// The writer keeps the tail slots (pos, key)-sorted and publishes each
// item's merge position at insert time, so the walk reads the slots
// directly and interleaves the two views comparing integers: a tail entry
// with pos == oi sits between order[oi-1] and order[oi] and is emitted
// first. Key bytes are compared only at the boundary (tail entries whose
// base gap straddles the bound) — and not at all when edge says the walk
// starts at the leaf's edge (a validated hop) — never per emitted pair. A
// nil tail slot
// (mid-insert) is skipped: the writer that created it bumped the seqlock,
// so the enclosing bracket discards the chunk anyway.
func mergeAsc(l *leafNode, items []*kv, order []int32, bound []byte, incl, edge bool, buf []scanEntry) ([]scanEntry, bool) {
	tl := int(l.tailLen.Load())
	if tl > tagTailMax {
		tl = tagTailMax
	}
	oi, ti := 0, 0
	if !edge {
		oi = lowerBoundIdx(items, order, bound, incl)
		for ti < tl && int(l.tailPos[ti].Load()) < oi {
			ti++
		}
		for ti < tl && int(l.tailPos[ti].Load()) == oi {
			it := l.tailItem[ti].Load()
			if it == nil {
				ti++
				continue
			}
			cmp := bytes.Compare(it.key, bound)
			if cmp > 0 || (incl && cmp == 0) {
				break
			}
			ti++
		}
	}
	out := buf
	for {
		// Emit the tail entries due at this position (pos <= oi), then a
		// tight compare-free run of base items below the next tail
		// position — the common case is one long run per chunk. A tail
		// position is clamped to len(order): racing a fold, the leaf's
		// tail slots can carry positions relative to a NEWER (larger)
		// base than the order view this chunk loaded, and an unclamped
		// pos > len(order) with the base exhausted would consume nothing,
		// advance nothing and never exit — a livelock on a state the
		// seqlock bracket is about to reject anyway. Clamped, the entry
		// is consumed, the walk terminates, and the bracket discards the
		// chunk.
		for ti < tl && len(out) < cap(out) {
			p := int(l.tailPos[ti].Load())
			if p > len(order) {
				p = len(order)
			}
			if p > oi {
				break
			}
			it := l.tailItem[ti].Load()
			ti++
			if it == nil {
				continue // torn slot mid-insert: the bracket will reject
			}
			vp, vn := it.valueParts()
			out = append(out, scanEntry{it: it, vp: vp, vn: vn})
		}
		if len(out) == cap(out) {
			return out, oi < len(order) || ti < tl
		}
		end := len(order)
		if ti < tl {
			if p := int(l.tailPos[ti].Load()); p < end {
				end = p
			}
		}
		if n := oi + cap(out) - len(out); end > n {
			end = n
		}
		for ; oi < end; oi++ {
			it := items[order[oi]]
			vp, vn := it.valueParts()
			out = append(out, scanEntry{it: it, vp: vp, vn: vn})
		}
		if len(out) == cap(out) {
			return out, oi < len(order) || ti < tl
		}
		if oi >= len(order) && ti >= tl {
			return out, false
		}
	}
}

// mergeDesc is the descending twin: walk both views downward from the
// bound (<= when incl, < otherwise; no bound at all when unbounded). A
// tail entry with pos == oi+1 sits between order[oi] and order[oi+1], so
// going down it is emitted before order[oi].
func mergeDesc(l *leafNode, items []*kv, order []int32, bound []byte, incl, unbounded bool, buf []scanEntry) ([]scanEntry, bool) {
	tl := int(l.tailLen.Load())
	if tl > tagTailMax {
		tl = tagTailMax
	}
	oi := len(order) - 1
	ti := tl - 1
	if !unbounded {
		oi = lowerBoundIdx(items, order, bound, !incl) - 1
		for ti >= 0 && int(l.tailPos[ti].Load()) > oi+1 {
			ti--
		}
		for ti >= 0 && int(l.tailPos[ti].Load()) == oi+1 {
			it := l.tailItem[ti].Load()
			if it == nil {
				ti--
				continue
			}
			cmp := bytes.Compare(it.key, bound)
			if cmp < 0 || (incl && cmp == 0) {
				break
			}
			ti--
		}
	}
	out := buf
	for {
		// Emit the tail entries due above this position (pos > oi), then
		// a tight compare-free run of base items down to the next tail
		// position.
		for ti >= 0 && len(out) < cap(out) && int(l.tailPos[ti].Load()) > oi {
			it := l.tailItem[ti].Load()
			ti--
			if it == nil {
				continue // torn slot mid-insert: the bracket will reject
			}
			vp, vn := it.valueParts()
			out = append(out, scanEntry{it: it, vp: vp, vn: vn})
		}
		if len(out) == cap(out) {
			return out, oi >= 0 || ti >= 0
		}
		low := 0
		if ti >= 0 {
			// The next tail entry (pos <= oi) comes after order[pos..oi].
			low = int(l.tailPos[ti].Load())
		}
		if n := oi - (cap(out) - len(out)) + 1; low < n {
			low = n
		}
		for ; oi >= low; oi-- {
			it := items[order[oi]]
			vp, vn := it.valueParts()
			out = append(out, scanEntry{it: it, vp: vp, vn: vn})
		}
		if len(out) == cap(out) {
			return out, oi >= 0 || ti >= 0
		}
		if oi < 0 && ti < 0 {
			return out, false
		}
	}
}

// lockedChunk is the contention fallback (and, with Options.LockedScans,
// the whole path): lock the leaf — write-locked only when the append
// region must first be incSort-ed — validate it, copy one chunk out of
// kvs, and unlock before anything is emitted.
func (c *cursor) lockedChunk(l *leafNode, tver uint64, checkVer bool, buf []scanEntry) ([]scanEntry, bool) {
	write, ok := c.w.lockScanLeaf(l, tver, checkVer)
	if !ok {
		return nil, false
	}
	if c.desc {
		if c.from != nil && l.next.Load() != c.from {
			unlockScanLeaf(l, write)
			return nil, false
		}
		if c.sameLeaf && l.version.Load() != c.seenVer {
			unlockScanLeaf(l, write)
			return nil, false
		}
	}
	out := buf
	var more bool
	var adj *leafNode
	if c.desc {
		var i int
		switch {
		case c.started:
			i = l.firstAtLeast(c.bound) - 1
		case c.start != nil:
			i = l.firstGreater(c.start) - 1
		default:
			i = len(l.kvs) - 1
		}
		for ; i >= 0 && len(out) < cap(out); i-- {
			it := l.kvs[i]
			vp, vn := it.valueParts() // consistent under the leaf lock
			out = append(out, scanEntry{it: it, vp: vp, vn: vn})
		}
		more = i >= 0
		if !more {
			adj = l.prev.Load()
		}
	} else {
		var i int
		if c.started {
			i = l.firstGreater(c.bound)
		} else {
			i = l.firstAtLeast(c.start)
		}
		for ; i < len(l.kvs) && len(out) < cap(out); i++ {
			it := l.kvs[i]
			vp, vn := it.valueParts()
			out = append(out, scanEntry{it: it, vp: vp, vn: vn})
		}
		more = i < len(l.kvs)
		if !more {
			adj = l.next.Load()
		}
	}
	ver := l.version.Load()
	unlockScanLeaf(l, write)
	c.advance(l, adj, ver, more, out)
	return out, true
}

// nextChunk copies out the next batch of pairs into buf (up to cap(buf))
// and advances the cursor. It returns an empty slice exactly when the scan
// is exhausted. The caller must be inside a QSBR reader section on slot s
// (nil s: non-concurrent index, no section needed).
func (c *cursor) nextChunk(s *qsbr.Slot, buf []scanEntry) []scanEntry {
	w := c.w
outer:
	for !c.done {
		// Re-announce the current epoch every chunk, not just on re-seeks:
		// the chunk reads only immutable published blocks and GC-held
		// leaves, so nothing from the previous epoch is still needed, and
		// a long scan must not stall writers' grace periods behind the
		// epoch it started in.
		if s != nil {
			w.q.Refresh(s)
		}
		var (
			l        *leafNode
			tver     uint64
			checkVer bool
		)
		if c.leaf != nil {
			l = c.leaf
		} else {
			t := w.cur.Load()
			switch {
			case c.started:
				l = w.searchMeta(t, c.bound)
			case !c.desc || c.start != nil:
				l = w.searchMeta(t, c.start)
			default:
				l = w.rightmostLeaf(t)
			}
			tver, checkVer = t.version, true
		}
		if !w.opt.LockedScans {
			for tries := 0; tries < seqlockAttempts; tries++ {
				out, res := c.tryFastChunk(l, tver, checkVer, buf)
				switch res {
				case fastOK:
					if len(out) > 0 {
						return out
					}
					continue outer // empty leaf in the path: hop over it
				case fastReseek:
					c.reseek()
					continue outer
				}
			}
		}
		out, ok := c.lockedChunk(l, tver, checkVer, buf)
		if !ok {
			c.reseek()
			continue
		}
		if len(out) > 0 {
			return out
		}
	}
	return buf[:0]
}

// scanLoop drives a cursor chunk by chunk inside an already-announced
// reader section, materializing each validated chunk and emitting it to fn
// with no locks held (fn may call back into the index).
func (w *Wormhole) scanLoop(s *qsbr.Slot, start []byte, desc bool, fn func(key, val []byte) bool) {
	bufp := scanBufPool.Get().(*[]scanEntry)
	defer scanBufPool.Put(bufp)
	c := cursor{w: w, desc: desc, start: start}
	for {
		batch := c.nextChunk(s, (*bufp)[:0])
		if len(batch) == 0 {
			return
		}
		for i := range batch {
			if !fn(batch[i].key(), batch[i].value()) {
				return
			}
		}
	}
}

// Scan visits keys >= start in ascending order until fn returns false.
// A nil start scans from the smallest key.
func (w *Wormhole) Scan(start []byte, fn func(key, val []byte) bool) {
	if !w.opt.Concurrent {
		w.scanUnsafe(start, fn)
		return
	}
	s := w.q.Enter()
	defer w.q.Leave(s)
	w.scanLoop(s, start, false, fn)
}

// ScanDesc visits keys <= start in descending order until fn returns false.
// A nil start scans from the largest key.
func (w *Wormhole) ScanDesc(start []byte, fn func(key, val []byte) bool) {
	if !w.opt.Concurrent {
		w.scanDescUnsafe(start, fn)
		return
	}
	s := w.q.Enter()
	defer w.q.Leave(s)
	w.scanLoop(s, start, true, fn)
}

// lockScanLeaf locks l for a chunk copy-out: a read lock when the leaf is
// already fully sorted, otherwise a write lock so incSort may run.
// checkVersion applies the §2.5 stale-table test (only meaningful when the
// leaf was found through a meta table). ok=false means the lock was
// abandoned and the caller must re-seek.
func (w *Wormhole) lockScanLeaf(l *leafNode, version uint64, checkVersion bool) (write, ok bool) {
	l.mu.RLock()
	if l.dead.Load() || (checkVersion && l.version.Load() > version) {
		l.mu.RUnlock()
		return false, false
	}
	if l.sorted == len(l.kvs) {
		return false, true
	}
	l.mu.RUnlock()
	l.mu.Lock()
	if l.dead.Load() || (checkVersion && l.version.Load() > version) {
		l.mu.Unlock()
		return false, false
	}
	l.incSort()
	return true, true
}

func unlockScanLeaf(l *leafNode, write bool) {
	if write {
		l.mu.Unlock()
	} else {
		l.mu.RUnlock()
	}
}

// rightmostLeaf returns the last LeafList node: the root item's rightmost
// subtree boundary (O(1), no list walk).
func (w *Wormhole) rightmostLeaf(t *metaTable) *leafNode {
	root := t.root
	if root.isLeafItem() {
		return root.leaf
	}
	return root.rightmost
}

func (w *Wormhole) scanUnsafe(start []byte, fn func(key, val []byte) bool) {
	t := w.cur.Load()
	l := w.searchMeta(t, start)
	l.incSort()
	i := l.firstAtLeast(start)
	for l != nil {
		for ; i < len(l.kvs); i++ {
			if !fn(l.kvs[i].key, l.kvs[i].value()) {
				return
			}
		}
		l = l.next.Load()
		if l != nil {
			l.incSort()
			i = 0
		}
	}
}

func (w *Wormhole) scanDescUnsafe(start []byte, fn func(key, val []byte) bool) {
	t := w.cur.Load()
	var l *leafNode
	var i int
	if start != nil {
		l = w.searchMeta(t, start)
		l.incSort()
		i = l.firstGreater(start) - 1
	} else {
		l = w.rightmostLeaf(t)
		l.incSort()
		i = len(l.kvs) - 1
	}
	for l != nil {
		for ; i >= 0; i-- {
			if !fn(l.kvs[i].key, l.kvs[i].value()) {
				return
			}
		}
		l = l.prev.Load()
		if l != nil {
			l.incSort()
			i = len(l.kvs) - 1
		}
	}
}

// Min returns the smallest key and its value.
func (w *Wormhole) Min() (key, val []byte, ok bool) {
	w.Scan(nil, func(k, v []byte) bool {
		key, val, ok = k, v, true
		return false
	})
	return
}

// Max returns the largest key and its value.
func (w *Wormhole) Max() (key, val []byte, ok bool) {
	w.ScanDesc(nil, func(k, v []byte) bool {
		key, val, ok = k, v, true
		return false
	})
	return
}

// RangeAsc collects up to limit pairs with key >= start, ascending — the
// paper's RangeSearchAscending shape, convenient for benchmarks.
func (w *Wormhole) RangeAsc(start []byte, limit int) (keys, vals [][]byte) {
	if limit <= 0 {
		return nil, nil
	}
	keys = make([][]byte, 0, limit)
	vals = make([][]byte, 0, limit)
	w.Scan(start, func(k, v []byte) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return len(keys) < limit
	})
	return keys, vals
}

// RangeDesc collects up to limit pairs with key <= start, descending (a
// nil start collects from the largest key).
func (w *Wormhole) RangeDesc(start []byte, limit int) (keys, vals [][]byte) {
	if limit <= 0 {
		return nil, nil
	}
	keys = make([][]byte, 0, limit)
	vals = make([][]byte, 0, limit)
	w.ScanDesc(start, func(k, v []byte) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return len(keys) < limit
	})
	return keys, vals
}

// Iter is a pull-style cursor over the index. It holds no locks between
// Next calls; mutations made while iterating may or may not be observed,
// but every key present for the whole iteration is visited exactly once.
//
// The iterator owns a long-lived pinned QSBR registration, claimed once at
// creation, and resumes each chunk by walking the retained LeafList
// position instead of paying a meta-table lookup — the boundary key is
// never re-fetched or re-compared. Between Next calls the registration is
// parked, so an idle iterator never stalls writers. An Iter must not be
// used concurrently; call Close when abandoning it before exhaustion (an
// iterator that ran dry has already released its registration).
type Iter struct {
	c     cursor
	pin   *qsbr.Pin
	bufp  *[]scanEntry // pooled chunk buffer; returned on Close
	batch []scanEntry
	i     int
}

// NewIter returns an iterator positioned before the first key >= start
// (nil start means the smallest key), in ascending order.
func (w *Wormhole) NewIter(start []byte) *Iter { return w.newIter(start, false) }

// NewIterDesc returns an iterator positioned before the first key <=
// start (nil start means the largest key), in descending order.
func (w *Wormhole) NewIterDesc(start []byte) *Iter { return w.newIter(start, true) }

func (w *Wormhole) newIter(start []byte, desc bool) *Iter {
	it := &Iter{
		c:    cursor{w: w, desc: desc, start: start},
		bufp: scanBufPool.Get().(*[]scanEntry),
		i:    -1,
	}
	if w.opt.Concurrent {
		it.pin = w.q.Pin()
	}
	return it
}

// Next advances the iterator; it returns false when the keys are exhausted.
func (i *Iter) Next() bool {
	i.i++
	if i.i < len(i.batch) {
		return true
	}
	if i.c.done {
		// The previous chunk was the last one; release the registration
		// and the pooled buffer now (Close is idempotent).
		i.Close()
		i.i = 0
		return false
	}
	var s *qsbr.Slot
	if i.pin != nil {
		s = i.pin.Enter()
	}
	i.batch = i.c.nextChunk(s, (*i.bufp)[:0])
	if i.pin != nil {
		i.pin.Leave()
	}
	i.i = 0
	if len(i.batch) == 0 {
		i.Close() // exhausted: release the pinned slot eagerly
		return false
	}
	return true
}

// Key returns the current key; valid after Next reports true.
func (i *Iter) Key() []byte { return i.batch[i.i].key() }

// Value returns the current value; valid after Next reports true.
func (i *Iter) Value() []byte { return i.batch[i.i].value() }

// Close releases the iterator's pinned reader registration and recycles
// its chunk buffer; the iterator must not be used afterwards. It is
// idempotent and runs automatically when the iterator is exhausted.
func (i *Iter) Close() {
	if i.pin != nil {
		i.pin.Unpin()
		i.pin = nil
	}
	if i.bufp != nil {
		scanBufPool.Put(i.bufp)
		i.bufp = nil
		i.batch = nil
	}
}
