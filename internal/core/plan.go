package core

// This file implements Algorithm 4 (split and merge) as two halves:
//
//  1. Planning — pure computation of the new anchor, its ⊥-extension, and
//     any re-keying ("conversion") of the split leaf's own anchor. A plan
//     captures every decision that depends on leaf-list state, so that
//  2. Application — applySplit/applyMerge can replay the identical
//     mutation on both MetaTrieHT copies (§2.5): first on the spare table
//     before it is published, then, after a grace period, on the retired
//     table. Both tables are structurally identical when each application
//     starts, and the plan is self-contained, so the replays converge.

// splitPlan describes one leaf split.
type splitPlan struct {
	cut     int    // kvs index where the right half starts (requires incSort)
	stored  []byte // new anchor, stored form (separator + appended ⊥ tokens)
	realLen int    // length of the separator (real) part
	conv    *conversion
}

// conversion re-keys the split leaf's own anchor when it is a proper prefix
// of the new anchor: the old leaf item moves from `from` to `to` = from +
// ⊥^t (Algorithm 4 lines 15–18, collapsed from one ⊥ per iteration into a
// single step). Only the split leaf's own anchor can ever need this: any
// anchor that is a proper prefix of the new anchor must be the immediate
// predecessor anchor — two distinct prefixes of the same key would be
// prefixes of each other, violating the standing prefix condition.
type conversion struct {
	from []byte
	to   []byte
}

// planSplit chooses a cut point for a full leaf and builds the plan.
// It requires l.incSort() to have run. By default cut points are tried
// middle-out and the first legal one wins (Algorithm 4 line 3–5). With
// shortAnchors — the split-point optimization the paper leaves as future
// work (§2.3: "search time is only proportional to anchor lengths, which
// can be further reduced by intelligently choosing the location where a
// leaf node is split") — every cut in the middle half is evaluated and the
// one yielding the shortest stored anchor wins, ties broken toward the
// middle; the full middle-out search remains the fallback so split balance
// never degrades below the default. nil means no valid cut exists anywhere
// and the leaf must grow fat (§3.3).
func planSplit(l *leafNode, shortAnchors bool) *splitPlan {
	n := len(l.kvs)
	if n < 2 {
		return nil
	}
	var nextStored []byte
	if nx := l.next.Load(); nx != nil {
		nextStored = nx.anchor.Load().stored
	}
	own := l.anchor.Load().stored
	mid := n / 2
	if shortAnchors {
		lo, hi := n/4, n-n/4
		if lo < 1 {
			lo = 1
		}
		if hi > n-1 {
			hi = n - 1
		}
		var best *splitPlan
		bestDist := 0
		for i := lo; i <= hi; i++ {
			p := tryCut(l.kvs[i-1].key, l.kvs[i].key, own, nextStored, i)
			if p == nil {
				continue
			}
			dist := i - mid
			if dist < 0 {
				dist = -dist
			}
			if best == nil || len(p.stored) < len(best.stored) ||
				(len(p.stored) == len(best.stored) && dist < bestDist) {
				best, bestDist = p, dist
			}
		}
		if best != nil {
			return best
		}
	}
	for off := 0; ; off++ {
		hi := mid + off
		lo := mid - off
		ok := false
		if hi >= 1 && hi <= n-1 {
			ok = true
			if p := tryCut(l.kvs[hi-1].key, l.kvs[hi].key, own, nextStored, hi); p != nil {
				return p
			}
		}
		if off > 0 && lo >= 1 && lo <= n-1 {
			ok = true
			if p := tryCut(l.kvs[lo-1].key, l.kvs[lo].key, own, nextStored, lo); p != nil {
				return p
			}
		}
		if !ok {
			return nil
		}
	}
}

// tryCut validates a cut between adjacent sorted keys a < b and returns the
// plan, or nil if no legal anchor exists at this position.
//
// The candidate separator is P = b[:lcp(a,b)+1], the shortest prefix of b
// that is strictly greater than a (§2.2's anchor formation rule). The
// ordering condition a < P <= b holds by construction. The prefix condition
// is then enforced on the stored form:
//
//   - against the successor anchor: append ⊥ (0x00) until S is no longer a
//     prefix of it; if that makes the successor a prefix of S instead, the
//     successor is P followed only by zeros and the cut is illegal;
//   - against the leaf's own anchor Q: if Q is a proper prefix of S, plan a
//     conversion Q -> Q + ⊥^t with minimal t; if S is itself Q plus only
//     zeros, no t works and the cut is illegal. These illegal positions are
//     exactly the binary-key pathologies of §3.3.
func tryCut(a, b, own, nextStored []byte, cut int) *splitPlan {
	c := lcp(a, b)
	// Keys are unique, so either a is a proper prefix of b (c == len(a)) or
	// they diverge at c with a[c] < b[c]. Both admit P = b[:c+1].
	p := b[:c+1]
	stored := p
	for nextStored != nil && isPrefix(stored, nextStored) {
		ext := make([]byte, len(stored)+1)
		copy(ext, stored)
		stored = ext
	}
	if nextStored != nil && isPrefix(nextStored, stored) {
		return nil
	}
	var conv *conversion
	if isPrefix(stored, own) {
		// The new anchor would collide with or be subsumed by the existing
		// anchor's stored key.
		return nil
	}
	if isProperPrefix(own, stored) {
		to := cloneBytes(own)
		for isPrefix(to, stored) {
			to = append(to, 0)
		}
		if isPrefix(stored, to) {
			return nil // stored is own + ⊥^k: no legal re-keying
		}
		conv = &conversion{from: own, to: to}
	}
	if len(stored) == len(p) {
		// No extension appended; clone so the anchor does not alias the
		// user's key buffer b.
		stored = cloneBytes(p)
	}
	return &splitPlan{cut: cut, stored: stored, realLen: len(p), conv: conv}
}

// executeLeafSplit mutates the LeafList for a planned split: moves the
// upper half of l's items into a new leaf, re-keys l's anchor if the plan
// converted it, and links the new leaf after l. It returns the new leaf.
// The caller holds l's write lock and has already bumped l's version, so
// optimistic readers that observe the truncated tag array retry; the seq
// bump additionally invalidates any read overlapping the mutation. The
// new leaf is not yet reachable.
func executeLeafSplit(l *leafNode, p *splitPlan) *leafNode {
	right := l.kvs[p.cut:]
	newL := newLeafNode(anchor{stored: p.stored, realLen: p.realLen}, cap(l.kvs))
	newL.kvs = append(newL.kvs, right...)
	newL.sorted = len(newL.kvs)
	newL.rebuildTags()

	l.beginMutate()
	l.kvs = l.kvs[:p.cut]
	l.sorted = p.cut
	l.rebuildTags()
	if p.conv != nil {
		old := l.anchor.Load()
		l.anchor.Store(&anchor{stored: p.conv.to, realLen: old.realLen})
	}
	l.endMutate()
	return newL
}

// linkAfter splices newL into the list immediately after l.
func linkAfter(l, newL *leafNode) {
	r := l.next.Load()
	newL.prev.Store(l)
	newL.next.Store(r)
	l.next.Store(newL)
	if r != nil {
		r.prev.Store(newL)
	}
}

// applySplit replays a split plan onto one MetaTrieHT copy. oldRight is the
// leaf that followed l before the split (nil if l was last); it is passed
// explicitly because the live list has already been relinked by the time
// the second table is patched.
//
// Boundary-pointer rules for every internal node on the new anchor's prefix
// path (Algorithm 4 lines 22–24, with the pseudocode's left/right swap
// corrected): the subtree now contains newL, so
//
//   - rightmost == l        -> newL  (newL sits immediately right of l)
//   - leftmost  == oldRight -> newL  (newL sits immediately left of it)
func applySplit(t *metaTable, l, newL, oldRight *leafNode, p *splitPlan) {
	if p.conv != nil {
		// Re-key the split leaf's own anchor item. Its new stored key's
		// extra prefixes lie on the new anchor's path and are created by
		// the walk below.
		t.remove(p.conv.from)
		t.set(&metaNode{key: p.conv.to, leaf: l})
	}
	t.set(&metaNode{key: p.stored, leaf: newL})

	s := p.stored
	for pl := 0; pl < len(s); pl++ {
		prf := s[:pl]
		node := t.get(hashKey(prf), prf, true)
		if node == nil {
			node = &metaNode{key: cloneBytes(prf)}
			// A brand-new internal node's subtree holds newL, plus l when
			// the prefix lies on the conversion chain (the re-keyed anchor
			// runs through it; past len(conv.to) it has diverged).
			if p.conv != nil && pl >= len(p.conv.from) && pl < len(p.conv.to) {
				node.leftmost, node.rightmost = l, newL
			} else {
				node.leftmost, node.rightmost = newL, newL
			}
			t.set(node)
		} else {
			if node.isLeafItem() {
				// Cannot happen: the only anchor that could be a prefix of
				// s is l's own, and the conversion removed it above.
				panic("wormhole: leaf item on new anchor path")
			}
			if node.rightmost == l {
				node.rightmost = newL
			}
			if oldRight != nil && node.leftmost == oldRight {
				node.leftmost = newL
			}
		}
		node.setBit(s[pl])
		if p.conv != nil && pl >= len(p.conv.from) && pl < len(p.conv.to) {
			// The conversion chain's child token at this depth is ⊥.
			node.setBit(0)
		}
	}
	if len(s) > t.maxLen {
		t.maxLen = len(s)
	}
	if p.conv != nil && len(p.conv.to) > t.maxLen {
		t.maxLen = len(p.conv.to)
	}
}

// mergePlan describes removing victim's anchor after its items moved into
// its left neighbor. left/right are victim's list neighbors at merge time.
type mergePlan struct {
	stored      []byte
	victim      *leafNode
	left, right *leafNode
}

// applyMerge replays a merge plan onto one MetaTrieHT copy (Algorithm 4's
// merge): remove the victim's leaf item, then walk its prefixes bottom-up,
// clearing the child bit when the child item was removed, deleting internal
// nodes whose bitmaps empty out, and redirecting boundary pointers that
// referenced the victim to its surviving neighbors.
func applyMerge(t *metaTable, p *mergePlan) {
	t.remove(p.stored)
	removed := true
	for pl := len(p.stored) - 1; pl >= 0; pl-- {
		prf := p.stored[:pl]
		node := t.get(hashKey(prf), prf, true)
		if node == nil || node.isLeafItem() {
			panic("wormhole: broken trie path during merge")
		}
		if removed {
			node.clearBit(p.stored[pl])
		}
		if node.bitmapEmpty() {
			t.remove(prf)
			removed = true
			continue
		}
		removed = false
		if node.leftmost == p.victim {
			node.leftmost = p.right
		}
		if node.rightmost == p.victim {
			node.rightmost = p.left
		}
	}
}

// mergeLeaves moves every item of victim into left and unlinks victim.
// Caller holds both write locks and has bumped victim's version, so
// optimistic readers routed to victim through a stale table retry (the
// dead flag catches those routed through any table). left's merged tag
// array is published as a fresh snapshot; victim's is left intact for
// readers still holding it.
func mergeLeaves(left, victim *leafNode) {
	left.beginMutate()
	victim.beginMutate()
	if left.sorted == len(left.kvs) {
		// All of victim's keys sort after all of left's, so victim's sorted
		// prefix extends left's.
		left.kvs = append(left.kvs, victim.kvs...)
		left.sorted += victim.sorted
	} else {
		left.kvs = append(left.kvs, victim.kvs...)
	}
	// Combine the two snapshots into one fully sorted base. Both leaves
	// are small (their sizes sum below MergeSize), so a flatten-and-sort
	// beats maintaining a 4-way merge across two bases and two tails.
	a, b := left.tags(), victim.tags()
	merged := make([]tagEnt, 0, a.size()+b.size())
	merged = a.all(merged)
	merged = b.all(merged)
	sortTagEnts(merged)
	left.setTags(merged)

	victim.dead.Store(true)
	r := victim.next.Load()
	left.next.Store(r)
	if r != nil {
		r.prev.Store(left)
	}
	victim.endMutate()
	left.endMutate()
}
