package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mkKV(key string) *kv {
	k := []byte(key)
	it := &kv{hash: hashKey(k), key: k}
	it.setValue([]byte("v"))
	return it
}

func TestLeafInsertFindRemove(t *testing.T) {
	l := newLeafNode(anchor{stored: []byte{}}, 8)
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for _, k := range keys {
		l.insert(mkKV(k))
	}
	for _, dp := range []bool{true, false} {
		for _, sbt := range []bool{true, false} {
			for _, k := range keys {
				it := l.find(hashKey([]byte(k)), []byte(k), sbt, dp)
				if it == nil || string(it.key) != k {
					t.Fatalf("find(%q, sortByTag=%v, directPos=%v) failed", k, sbt, dp)
				}
			}
			if l.find(hashKey([]byte("zulu")), []byte("zulu"), sbt, dp) != nil {
				t.Fatalf("find(zulu) should miss")
			}
		}
	}
	it := l.find(hashKey([]byte("bravo")), []byte("bravo"), true, true)
	l.remove(it)
	if l.find(hashKey([]byte("bravo")), []byte("bravo"), true, true) != nil {
		t.Fatal("bravo still findable after remove")
	}
	if l.size() != 4 || l.tags().size() != 4 {
		t.Fatalf("size %d / byHash %d after remove", l.size(), l.tags().size())
	}
}

func TestLeafIncSort(t *testing.T) {
	l := newLeafNode(anchor{stored: []byte{}}, 8)
	// Ascending inserts keep the sorted prefix maximal.
	for i := 0; i < 5; i++ {
		l.insert(mkKV(fmt.Sprintf("a%d", i)))
	}
	if l.sorted != 5 {
		t.Fatalf("ascending inserts: sorted = %d, want 5", l.sorted)
	}
	// Out-of-order insert lands in the append region.
	l.insert(mkKV("a0x"))
	l.insert(mkKV("a00"))
	if l.sorted == l.size() {
		t.Fatal("out-of-order insert should not extend the sorted prefix")
	}
	l.incSort()
	if l.sorted != l.size() {
		t.Fatal("incSort did not sort everything")
	}
	for i := 1; i < len(l.kvs); i++ {
		if bytes.Compare(l.kvs[i-1].key, l.kvs[i].key) >= 0 {
			t.Fatalf("kvs unsorted after incSort at %d", i)
		}
	}
	// byHash must survive the reorder (it stores pointers).
	for _, it := range l.kvs {
		if f := l.find(it.hash, it.key, true, true); f != it {
			t.Fatalf("byHash lost %q after incSort", it.key)
		}
	}
}

// TestLeafHashPosQuick property-tests the tag-array search: for random key
// sets, every present key is found with and without DirectPos, and misses
// return the correct insertion position.
func TestLeafHashPosQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%100) + 1
		l := newLeafNode(anchor{stored: []byte{}}, n)
		present := map[string]bool{}
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("q%03d", r.Intn(500))
			if present[k] {
				continue
			}
			present[k] = true
			l.insert(mkKV(k))
		}
		l.rebuildTags() // fold the append tail so tagPos sees every item
		base := l.tags().base
		hashes := make([]uint32, len(base))
		for i, e := range base {
			hashes[i] = e.hash
		}
		for k := range present {
			h := hashKey([]byte(k))
			for _, dp := range []bool{true, false} {
				i := tagPos(hashes, h, dp)
				found := false
				for ; i < len(base) && base[i].hash == h; i++ {
					if string(base[i].it.key) == k {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		// Misses: tagPos must return the first index with hash >= h.
		for i := 0; i < 20; i++ {
			k := []byte(fmt.Sprintf("miss%04d", r.Intn(10000)))
			if present[string(k)] {
				continue
			}
			h := hashKey(k)
			pos := tagPos(hashes, h, i%2 == 0)
			if pos > 0 && hashes[pos-1] >= h {
				return false
			}
			if pos < len(hashes) && hashes[pos] < h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLeafFirstAtLeastGreater(t *testing.T) {
	l := newLeafNode(anchor{stored: []byte{}}, 8)
	for _, k := range []string{"b", "d", "f"} {
		l.insert(mkKV(k))
	}
	l.incSort()
	cases := []struct {
		k                string
		atLeast, greater int
	}{
		{"a", 0, 0}, {"b", 0, 1}, {"c", 1, 1}, {"f", 2, 3}, {"g", 3, 3},
	}
	for _, c := range cases {
		if got := l.firstAtLeast([]byte(c.k)); got != c.atLeast {
			t.Errorf("firstAtLeast(%q) = %d, want %d", c.k, got, c.atLeast)
		}
		if got := l.firstGreater([]byte(c.k)); got != c.greater {
			t.Errorf("firstGreater(%q) = %d, want %d", c.k, got, c.greater)
		}
	}
}

func TestMergeLeavesKeepsOrder(t *testing.T) {
	a := newLeafNode(anchor{stored: []byte{}}, 8)
	b := newLeafNode(anchor{stored: []byte("m"), realLen: 1}, 8)
	for _, k := range []string{"a1", "a2", "a3"} {
		a.insert(mkKV(k))
	}
	for _, k := range []string{"m1", "m2"} {
		b.insert(mkKV(k))
	}
	mergeLeaves(a, b)
	if !b.dead.Load() {
		t.Fatal("victim not marked dead")
	}
	if a.size() != 5 || a.tags().size() != 5 {
		t.Fatalf("merged sizes wrong: %d/%d", a.size(), a.tags().size())
	}
	if a.sorted != 5 {
		t.Fatalf("merged sorted prefix = %d, want 5", a.sorted)
	}
	var hs []uint32
	for _, it := range a.tags().base {
		hs = append(hs, it.hash)
	}
	if len(hs) != 5 {
		t.Fatal("merged snapshot should be fully folded into the base")
	}
	if !sort.SliceIsSorted(hs, func(i, j int) bool { return hs[i] < hs[j] }) {
		t.Fatal("merged tag base not hash-sorted")
	}
}

func TestKeyHelpers(t *testing.T) {
	if lcp([]byte("abc"), []byte("abd")) != 2 {
		t.Fatal("lcp")
	}
	if lcp([]byte("ab"), []byte("ab")) != 2 {
		t.Fatal("lcp equal")
	}
	if lcp([]byte(""), []byte("x")) != 0 {
		t.Fatal("lcp empty")
	}
	if !isPrefix([]byte("ab"), []byte("ab")) || !isPrefix([]byte(""), []byte("z")) {
		t.Fatal("isPrefix")
	}
	if isPrefix([]byte("abc"), []byte("ab")) {
		t.Fatal("isPrefix long")
	}
	if isProperPrefix([]byte("ab"), []byte("ab")) || !isProperPrefix([]byte("a"), []byte("ab")) {
		t.Fatal("isProperPrefix")
	}
	if !equalWithSuffixByte([]byte("abz"), []byte("ab"), 'z') ||
		equalWithSuffixByte([]byte("abz"), []byte("ab"), 'y') {
		t.Fatal("equalWithSuffixByte")
	}
}

func TestHashIncremental(t *testing.T) {
	key := []byte("wormhole-incremental-hash")
	for cut := 0; cut <= len(key); cut++ {
		h := hashExtend(hashKey(key[:cut]), key[cut:])
		if h != hashKey(key) {
			t.Fatalf("hashExtend at cut %d mismatch", cut)
		}
	}
}
