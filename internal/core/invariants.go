package core

import (
	"bytes"
	"fmt"
)

// CheckInvariants validates the full structural correctness of the index
// and returns the first violation found, or nil. It takes no locks, so run
// it only while the index is quiescent (tests do). Checked properties:
//
//   - LeafList ordering: stored anchors strictly increasing, adjacent-pair
//     prefix-freedom (which, for sorted keys, implies global
//     prefix-freedom), real anchors non-decreasing leaf spans;
//   - leaf spans: real(anchor) <= every key < real(next anchor);
//   - leaf internals: sorted prefix really sorted, the published tag array
//     strictly (hash, key)-ordered and in 1:1 pointer correspondence with
//     kvs (every item exactly once, no stale or duplicate entries), the
//     published key-sorted scan view strictly key-ordered and in 1:1
//     correspondence with the base entries, all keys unique, the seqlock
//     word even (no writer abandoned mid-section);
//   - MetaTrieHT completeness: leaf item per anchor, internal item per
//     proper prefix, no extras, bitmap bits exactly matching existing
//     children, leftmost/rightmost equal to the true subtree boundaries;
//   - in concurrent mode, the spare table structurally identical to the
//     published one;
//   - the key count matching Count().
func (w *Wormhole) CheckInvariants() error {
	if err := w.checkLeafList(); err != nil {
		return err
	}
	t := w.cur.Load()
	if err := w.checkTable(t); err != nil {
		return fmt.Errorf("published table: %w", err)
	}
	if w.opt.Concurrent {
		w.metaMu.Lock()
		sp := w.spare
		w.metaMu.Unlock()
		if err := w.checkTable(sp); err != nil {
			return fmt.Errorf("spare table: %w", err)
		}
		if err := tablesIdentical(t, sp); err != nil {
			return err
		}
	}
	return nil
}

func (w *Wormhole) checkLeafList() error {
	var total int64
	var prevLeaf *leafNode
	for l := w.head; l != nil; l = l.next.Load() {
		a := l.anchor.Load()
		if l.dead.Load() {
			return fmt.Errorf("dead leaf %q still linked", a.stored)
		}
		if l.seq.Load()&1 != 0 {
			return fmt.Errorf("leaf %q seqlock left odd (%d)", a.stored, l.seq.Load())
		}
		if l.prev.Load() != prevLeaf {
			return fmt.Errorf("leaf %q has wrong prev pointer", a.stored)
		}
		if a.realLen > len(a.stored) {
			return fmt.Errorf("anchor %q realLen %d out of range", a.stored, a.realLen)
		}
		for _, z := range a.stored[a.realLen:] {
			if z != 0 {
				return fmt.Errorf("anchor %q extension contains non-⊥ byte", a.stored)
			}
		}
		if prevLeaf != nil {
			pa := prevLeaf.anchor.Load()
			if bytes.Compare(pa.stored, a.stored) >= 0 {
				return fmt.Errorf("stored anchors not increasing: %q >= %q", pa.stored, a.stored)
			}
			if isPrefix(pa.stored, a.stored) || isPrefix(a.stored, pa.stored) {
				return fmt.Errorf("anchors violate prefix condition: %q / %q", pa.stored, a.stored)
			}
			if bytes.Compare(pa.real(), a.real()) >= 0 {
				return fmt.Errorf("real anchors not increasing: %q >= %q", pa.real(), a.real())
			}
		}
		var nextReal []byte
		if nx := l.next.Load(); nx != nil {
			nextReal = nx.anchor.Load().real()
		}
		if l.sorted > len(l.kvs) {
			return fmt.Errorf("leaf %q sorted=%d > size=%d", a.stored, l.sorted, len(l.kvs))
		}
		seen := make(map[string]bool, len(l.kvs))
		members := make(map[*kv]bool, len(l.kvs))
		for i, it := range l.kvs {
			if it.hash != hashKey(it.key) {
				return fmt.Errorf("stale hash for key %q", it.key)
			}
			if seen[string(it.key)] {
				return fmt.Errorf("duplicate key %q in leaf %q", it.key, a.stored)
			}
			seen[string(it.key)] = true
			members[it] = true
			if bytes.Compare(it.key, a.real()) < 0 {
				return fmt.Errorf("key %q below anchor %q", it.key, a.real())
			}
			if nextReal != nil && bytes.Compare(it.key, nextReal) >= 0 {
				return fmt.Errorf("key %q not below next anchor %q", it.key, nextReal)
			}
			if i > 0 && i < l.sorted && bytes.Compare(l.kvs[i-1].key, it.key) >= 0 {
				return fmt.Errorf("sorted prefix unsorted at %d in leaf %q", i, a.stored)
			}
		}
		tags := l.tags()
		if tags.size() != len(l.kvs) {
			return fmt.Errorf("tag array size mismatch in leaf %q: %d entries, %d items",
				a.stored, tags.size(), len(l.kvs))
		}
		if len(tags.tail) > tagTailMax {
			return fmt.Errorf("tag array tail overgrown in leaf %q: %d > %d",
				a.stored, len(tags.tail), tagTailMax)
		}
		check := func(e tagEnt, region string, i int) error {
			// 1:1 pointer correspondence with kvs: every entry references a
			// current member, and no member twice. Combined with the equal
			// sizes above, every kvs item appears exactly once.
			if e.it == nil || !members[e.it] {
				return fmt.Errorf("tag %s entry %d of leaf %q references a non-member item", region, i, a.stored)
			}
			delete(members, e.it)
			if e.hash != e.it.hash {
				return fmt.Errorf("tag array entry hash stale for %q", e.it.key)
			}
			return nil
		}
		for i, e := range tags.base {
			if err := check(e, "base", i); err != nil {
				return err
			}
			if i > 0 {
				p := tags.base[i-1]
				if p.hash > e.hash || (p.hash == e.hash && bytes.Compare(p.it.key, e.it.key) >= 0) {
					return fmt.Errorf("tag array base out of (hash, key) order in leaf %q", a.stored)
				}
			}
		}
		for i, e := range tags.tail {
			if err := check(e, "tail", i); err != nil {
				return err
			}
		}
		// The published key-sorted view (the scan path's snapshot) must be
		// a strictly key-increasing permutation of the base entries, and
		// every tail slot's merge position must match a fresh search of
		// that view, so a refactor cannot silently desynchronize what
		// lock-free scans walk from what lookups see.
		block := l.base.Load()
		bn := int(l.baseN.Load())
		_, baseItems := block.view(bn)
		order := block.orderView(bn)
		if len(order) != len(tags.base) {
			return fmt.Errorf("sorted view size mismatch in leaf %q: %d entries, base has %d",
				a.stored, len(order), len(tags.base))
		}
		seenIdx := make([]bool, len(order))
		for i, ix := range order {
			if ix < 0 || int(ix) >= len(baseItems) || seenIdx[ix] {
				return fmt.Errorf("sorted view entry %d of leaf %q has bad or duplicate index %d",
					i, a.stored, ix)
			}
			seenIdx[ix] = true // each base item exactly once
			if i > 0 && bytes.Compare(baseItems[order[i-1]].key, baseItems[ix].key) >= 0 {
				return fmt.Errorf("sorted view out of key order in leaf %q at %d", a.stored, i)
			}
		}
		tl := int(l.tailLen.Load())
		var prevPos int32 = -1
		var prevKey []byte
		for i := 0; i < tl && i < tagTailMax; i++ {
			itm := l.tailItem[i].Load()
			pos := l.tailPos[i].Load()
			if want := lowerBoundIdx(baseItems, order, itm.key, true); int(pos) != want {
				return fmt.Errorf("tail slot %d of leaf %q has merge position %d, want %d",
					i, a.stored, pos, want)
			}
			if pos < prevPos || (pos == prevPos && bytes.Compare(prevKey, itm.key) >= 0) {
				return fmt.Errorf("tail slots of leaf %q out of (pos, key) order at %d", a.stored, i)
			}
			prevPos, prevKey = pos, itm.key
		}
		total += int64(len(l.kvs))
		prevLeaf = l
	}
	if total != w.count.Load() {
		return fmt.Errorf("count mismatch: leaves hold %d, Count()=%d", total, w.count.Load())
	}
	return nil
}

func (w *Wormhole) checkTable(t *metaTable) error {
	// Expected item set, computed from the LeafList.
	type exp struct {
		leaf                *leafNode
		leftmost, rightmost *leafNode
		children            map[byte]bool
	}
	items := make(map[string]*exp)
	expMaxLen := 0
	for l := w.head; l != nil; l = l.next.Load() {
		stored := l.anchor.Load().stored
		if len(stored) > expMaxLen {
			expMaxLen = len(stored)
		}
		ks := string(stored)
		if e, ok := items[ks]; ok && e.leaf != nil {
			return fmt.Errorf("two leaves share stored anchor %q", stored)
		}
		if items[ks] == nil {
			items[ks] = &exp{}
		}
		items[ks].leaf = l
		for pl := 0; pl < len(stored); pl++ {
			ps := string(stored[:pl])
			e := items[ps]
			if e == nil {
				e = &exp{children: map[byte]bool{}}
				items[ps] = e
			}
			if e.children == nil {
				e.children = map[byte]bool{}
			}
			e.children[stored[pl]] = true
			if e.leftmost == nil {
				e.leftmost = l // leaves visited left to right
			}
			e.rightmost = l
		}
		if len(stored) > t.maxLen {
			return fmt.Errorf("maxLen %d below anchor %q", t.maxLen, stored)
		}
	}
	if t.maxLen != expMaxLen {
		return fmt.Errorf("maxLen %d, longest stored anchor is %d", t.maxLen, expMaxLen)
	}
	if t.root == nil || t.root != t.get(0, nil, false) {
		return fmt.Errorf("cached root item does not match the stored empty-key item")
	}
	count := 0
	var err error
	t.forEach(func(n *metaNode) {
		count++
		if err != nil {
			return
		}
		e := items[string(n.key)]
		if e == nil {
			err = fmt.Errorf("unexpected table item %q", n.key)
			return
		}
		if n.isLeafItem() {
			if e.leaf == nil || e.leaf != n.leaf {
				err = fmt.Errorf("leaf item %q points at wrong leaf", n.key)
				return
			}
			if e.children != nil {
				err = fmt.Errorf("item %q is both leaf and internal", n.key)
				return
			}
			return
		}
		if e.children == nil {
			err = fmt.Errorf("item %q should be a leaf item", n.key)
			return
		}
		for tok := 0; tok < 256; tok++ {
			want := e.children[byte(tok)]
			if got := n.hasBit(byte(tok)); got != want {
				err = fmt.Errorf("item %q bitmap[%d]=%v want %v", n.key, tok, got, want)
				return
			}
		}
		if n.leftmost != e.leftmost || n.rightmost != e.rightmost {
			err = fmt.Errorf("item %q boundary pointers wrong", n.key)
		}
	})
	if err != nil {
		return err
	}
	if count != len(items) {
		return fmt.Errorf("table has %d items, expected %d", count, len(items))
	}
	if count != t.count {
		return fmt.Errorf("table count field %d, actual %d", t.count, count)
	}
	return nil
}

// tablesIdentical verifies the two MetaTrieHT copies agree item-for-item.
func tablesIdentical(a, b *metaTable) error {
	if a.count != b.count {
		return fmt.Errorf("table counts differ: %d vs %d", a.count, b.count)
	}
	var err error
	a.forEach(func(n *metaNode) {
		if err != nil {
			return
		}
		m := b.get(hashKey(n.key), n.key, true)
		if m == nil {
			err = fmt.Errorf("item %q missing from twin table", n.key)
			return
		}
		if n.leaf != m.leaf || n.bitmap != m.bitmap ||
			n.leftmost != m.leftmost || n.rightmost != m.rightmost {
			err = fmt.Errorf("item %q differs between tables", n.key)
		}
	})
	return err
}
