package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentDisjointWriters: goroutines own disjoint key spaces, so
// after the storm each can verify its own keys exactly and the global
// structure must satisfy every invariant.
func TestConcurrentDisjointWriters(t *testing.T) {
	w := New(smallOpts(true))
	const workers = 8
	const perWorker = 800
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			live := map[int]bool{}
			for i := 0; i < perWorker; i++ {
				n := r.Intn(200)
				k := []byte(fmt.Sprintf("w%02d-%04d", g, n))
				switch r.Intn(3) {
				case 0, 1:
					w.Set(k, []byte(fmt.Sprintf("g%d", g)))
					live[n] = true
				case 2:
					got := w.Del(k)
					if got != live[n] {
						t.Errorf("worker %d: Del(%s)=%v want %v", g, k, got, live[n])
						return
					}
					delete(live, n)
				}
			}
			for n := range live {
				k := []byte(fmt.Sprintf("w%02d-%04d", g, n))
				if v, ok := w.Get(k); !ok || string(v) != fmt.Sprintf("g%d", g) {
					t.Errorf("worker %d: lost key %s", g, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentStableReaders: a fixed set of keys is inserted up front and
// never touched again; readers must find every one of them on every probe
// while writers churn disjoint keys, forcing splits, merges, and table
// swaps underneath the readers.
func TestConcurrentStableReaders(t *testing.T) {
	w := New(smallOpts(true))
	const stable = 500
	for i := 0; i < stable; i++ {
		w.Set([]byte(fmt.Sprintf("stable-%04d", i)), []byte("s"))
	}
	var stop atomic.Bool
	var writers, readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for !stop.Load() {
				k := []byte(fmt.Sprintf("churn-%02d-%05d", g, r.Intn(2000)))
				if r.Intn(2) == 0 {
					w.Set(k, []byte("c"))
				} else {
					w.Del(k)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 20000; i++ {
				n := r.Intn(stable)
				k := []byte(fmt.Sprintf("stable-%04d", n))
				if v, ok := w.Get(k); !ok || string(v) != "s" {
					t.Errorf("reader lost stable key %s (ok=%v v=%q)", k, ok, v)
					return
				}
			}
		}(g)
	}
	readers.Wait()
	stop.Store(true)
	writers.Wait()
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentScanUnderChurn: scans must stay sorted, duplicate-free and
// must always contain every stable key in range, while splits and merges
// run concurrently.
func TestConcurrentScanUnderChurn(t *testing.T) {
	w := New(smallOpts(true))
	const stable = 300
	for i := 0; i < stable; i++ {
		w.Set([]byte(fmt.Sprintf("s-%04d", i*2)), []byte("s"))
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for !stop.Load() {
				k := []byte(fmt.Sprintf("s-%04d", r.Intn(stable*2)*2+1)) // odd keys only
				if r.Intn(2) == 0 {
					w.Set(k, []byte("c"))
				} else {
					w.Del(k)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for iter := 0; iter < 200; iter++ {
			var prev []byte
			stableSeen := 0
			w.Scan([]byte("s-"), func(k, v []byte) bool {
				if prev != nil && bytes.Compare(prev, k) >= 0 {
					t.Errorf("scan order violation: %q then %q", prev, k)
					return false
				}
				prev = append(prev[:0], k...)
				if string(v) == "s" {
					stableSeen++
				}
				return true
			})
			if stableSeen != stable {
				t.Errorf("scan iter %d saw %d stable keys, want %d", iter, stableSeen, stable)
				return
			}
		}
	}()
	wg.Wait()
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentDescScanUnderChurn is the descending twin, exercising the
// prev-hop validation path (stale predecessor after a split).
func TestConcurrentDescScanUnderChurn(t *testing.T) {
	w := New(smallOpts(true))
	const stable = 300
	for i := 0; i < stable; i++ {
		w.Set([]byte(fmt.Sprintf("s-%04d", i*2)), []byte("s"))
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for !stop.Load() {
				k := []byte(fmt.Sprintf("s-%04d", r.Intn(stable*2)*2+1))
				if r.Intn(2) == 0 {
					w.Set(k, []byte("c"))
				} else {
					w.Del(k)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for iter := 0; iter < 200; iter++ {
			var prev []byte
			stableSeen := 0
			w.ScanDesc(nil, func(k, v []byte) bool {
				if prev != nil && bytes.Compare(prev, k) <= 0 {
					t.Errorf("desc scan order violation: %q then %q", prev, k)
					return false
				}
				prev = append(prev[:0], k...)
				if string(v) == "s" {
					stableSeen++
				}
				return true
			})
			if stableSeen != stable {
				t.Errorf("desc scan iter %d saw %d stable keys, want %d", iter, stableSeen, stable)
				return
			}
		}
	}()
	wg.Wait()
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMixedEverything throws every operation at the index at
// once and then only checks structural invariants and per-key agreement
// for keys owned by a single goroutine.
func TestConcurrentMixedEverything(t *testing.T) {
	w := New(smallOpts(true))
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g * 31)))
			for i := 0; i < 1500; i++ {
				k := []byte(fmt.Sprintf("%02d%04d", g, r.Intn(300)))
				switch r.Intn(6) {
				case 0, 1, 2:
					w.Set(k, k)
				case 3:
					w.Del(k)
				case 4:
					w.Get(k)
				case 5:
					n := 0
					w.Scan(k, func(_, _ []byte) bool { n++; return n < 20 })
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every surviving value equals its key (writers only ever Set(k, k)).
	w.Scan(nil, func(k, v []byte) bool {
		if !bytes.Equal(k, v) {
			t.Fatalf("value corruption: key %q has value %q", k, v)
		}
		return true
	})
}

// TestVersionRetryPath forces the reader-retry protocol: a reader loads the
// current table, a split bumps the leaf's expected version, and the reader
// must transparently retry rather than miss. This is probabilistic but the
// small leaf cap makes version bumps near-continuous.
func TestVersionRetryPath(t *testing.T) {
	o := opts(true)
	o.LeafCap = 4
	o.MergeSize = 2
	w := New(o)
	var wg sync.WaitGroup
	var stop atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			w.Set([]byte(fmt.Sprintf("r%06d", i%5000)), []byte("x"))
		}
	}()
	w.Set([]byte("pin"), []byte("p"))
	for i := 0; i < 50000; i++ {
		if _, ok := w.Get([]byte("pin")); !ok {
			t.Fatal("lost pinned key during churn")
		}
	}
	stop.Store(true)
	wg.Wait()
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
