package core

import (
	"testing"
)

// shuffledBenchKeys returns benchKeys in a deterministic shuffled order,
// so loaded leaves carry realistic half-full inline tails (ascending
// insertion would leave every non-rightmost leaf's tail empty).
func shuffledBenchKeys(n int) [][]byte {
	keys := benchKeys(n)
	r := uint64(12345)
	for i := len(keys) - 1; i > 0; i-- {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		j := int(r % uint64(i+1))
		keys[i], keys[j] = keys[j], keys[i]
	}
	return keys
}

// BenchmarkScan100 measures the seek + 100-key chunked scan on the
// concurrent index (the Figure 18 shape) through the lock-free path.
func BenchmarkScan100(b *testing.B) {
	w := New(DefaultOptions())
	keys := shuffledBenchKeys(200000)
	for _, k := range keys {
		w.Set(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt := 0
		w.Scan(keys[(i*2654435761)%len(keys)], func(_, _ []byte) bool {
			cnt++
			return cnt < 100
		})
	}
}

// BenchmarkScan100Locked is the same workload forced through the per-leaf
// locks (the pre-snapshot baseline).
func BenchmarkScan100Locked(b *testing.B) {
	o := DefaultOptions()
	o.LockedScans = true
	w := New(o)
	keys := shuffledBenchKeys(200000)
	for _, k := range keys {
		w.Set(k, k)
	}
	w.Scan(nil, func(_, _ []byte) bool { return true })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt := 0
		w.Scan(keys[(i*2654435761)%len(keys)], func(_, _ []byte) bool {
			cnt++
			return cnt < 100
		})
	}
}

// BenchmarkIter100 measures pull-cursor setup plus 100 draws.
func BenchmarkIter100(b *testing.B) {
	w := New(DefaultOptions())
	keys := shuffledBenchKeys(200000)
	for _, k := range keys {
		w.Set(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := w.NewIter(keys[(i*2654435761)%len(keys)])
		for j := 0; j < 100 && it.Next(); j++ {
		}
		it.Close()
	}
}
