package core

import (
	"fmt"
	"testing"
)

// TestScanChunkContinuationFatLeaf forces a leaf far larger than scanChunk
// (via the §3.3 fat-leaf path) so a single leaf requires several
// chunk-sized lock rounds in both scan directions.
func TestScanChunkContinuationFatLeaf(t *testing.T) {
	o := opts(true)
	o.LeafCap = 4
	w := New(o)
	// One shared prefix with growing zero tails: unsplittable, so the leaf
	// grows fat well past scanChunk.
	n := scanChunk*3 + 17
	keys := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = append([]byte{7}, make([]byte, i)...)
		w.Set(keys[i], []byte{byte(i)})
	}
	st := w.Stats()
	if st.FatLeaves == 0 {
		t.Fatalf("expected a fat leaf, stats %+v", st)
	}
	count := 0
	w.Scan(nil, func(k, v []byte) bool {
		if len(k) != count+1 {
			t.Fatalf("asc order broken at %d: key len %d", count, len(k))
		}
		count++
		return true
	})
	if count != n {
		t.Fatalf("asc scan saw %d keys, want %d", count, n)
	}
	count = 0
	w.ScanDesc(nil, func(k, v []byte) bool {
		if len(k) != n-count {
			t.Fatalf("desc order broken at %d: key len %d", count, len(k))
		}
		count++
		return true
	})
	if count != n {
		t.Fatalf("desc scan saw %d keys, want %d", count, n)
	}
}

// TestScanEarlyStopInsideChunk verifies stopping mid-chunk does not visit
// or copy beyond what fn consumed (behaviourally: fn not called again).
func TestScanEarlyStopInsideChunk(t *testing.T) {
	w := New(opts(true))
	for i := 0; i < 1000; i++ {
		w.Set([]byte(fmt.Sprintf("es-%04d", i)), []byte{1})
	}
	calls := 0
	w.Scan(nil, func(k, v []byte) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
}

// TestScanEmptyLeavesInPath: deletions can leave empty leaves (merge is
// opportunistic); scans must step over them silently.
func TestScanEmptyLeavesInPath(t *testing.T) {
	o := opts(true)
	o.LeafCap = 4
	o.MergeSize = 1 // merges effectively disabled
	w := New(o)
	for i := 0; i < 64; i++ {
		w.Set([]byte(fmt.Sprintf("el-%03d", i)), []byte{1})
	}
	// Hollow out the middle leaves entirely.
	for i := 16; i < 48; i++ {
		w.Del([]byte(fmt.Sprintf("el-%03d", i)))
	}
	var got []string
	w.Scan([]byte("el-010"), func(k, v []byte) bool {
		got = append(got, string(k))
		return len(got) < 10
	})
	want := []string{"el-010", "el-011", "el-012", "el-013", "el-014",
		"el-015", "el-048", "el-049", "el-050", "el-051"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan across empty leaves = %v", got)
	}
	var back []string
	w.ScanDesc([]byte("el-050"), func(k, v []byte) bool {
		back = append(back, string(k))
		return len(back) < 4
	})
	wantBack := []string{"el-050", "el-049", "el-048", "el-015"}
	if fmt.Sprint(back) != fmt.Sprint(wantBack) {
		t.Fatalf("desc scan across empty leaves = %v", back)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestScanSeekBeyondEnd starts past the largest key in both directions.
func TestScanSeekBeyondEnd(t *testing.T) {
	w := New(smallOpts(true))
	for i := 0; i < 50; i++ {
		w.Set([]byte(fmt.Sprintf("sb-%02d", i)), []byte{1})
	}
	n := 0
	w.Scan([]byte("zzz"), func(k, v []byte) bool { n++; return true })
	if n != 0 {
		t.Fatalf("scan past end emitted %d keys", n)
	}
	n = 0
	w.ScanDesc([]byte("aaa"), func(k, v []byte) bool { n++; return true })
	if n != 0 {
		t.Fatalf("desc scan before start emitted %d keys", n)
	}
	// Descending from past the end must yield everything.
	n = 0
	w.ScanDesc([]byte("zzz"), func(k, v []byte) bool { n++; return true })
	if n != 50 {
		t.Fatalf("desc scan from past end emitted %d, want 50", n)
	}
}

// TestScanReentrancy: the callback runs without internal locks held, so it
// may issue index operations (here: point reads during a scan).
func TestScanReentrancy(t *testing.T) {
	w := New(smallOpts(true))
	for i := 0; i < 200; i++ {
		w.Set([]byte(fmt.Sprintf("re-%03d", i)), []byte{byte(i)})
	}
	n := 0
	w.Scan(nil, func(k, v []byte) bool {
		if _, ok := w.Get(k); !ok {
			t.Fatalf("reentrant Get(%s) missed", k)
		}
		n++
		return n < 100
	})
	if n != 100 {
		t.Fatalf("visited %d", n)
	}
}
