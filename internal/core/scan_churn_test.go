package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// startChurn launches writers that Set/Del odd-suffixed churn keys around
// the stable keyspace, driving continuous splits and merges on the tiny
// smallOpts leaves. Stop by calling the returned func.
func startChurn(w *Wormhole, writers int) func() {
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for !stop.Load() {
				k := []byte(fmt.Sprintf("s-%04d-c%02d%03d", r.Intn(1200), g, r.Intn(400)))
				if r.Intn(2) == 0 {
					w.Set(k, []byte("c"))
				} else {
					w.Del(k)
				}
			}
		}(g)
	}
	return func() {
		stop.Store(true)
		wg.Wait()
	}
}

// TestScanChurnExactlyOnce is the lock-free scan path's stress test: while
// writers churn keys that force splits and merges, every traversal mode —
// ascending Scan, descending ScanDesc, the pull Iter in both directions,
// and a pinned Reader's scans — must visit every stable key exactly once
// and in order. Run with -race.
func TestScanChurnExactlyOnce(t *testing.T) {
	w := New(smallOpts(true))
	const stable = 400
	for i := 0; i < stable; i++ {
		// Gaps between stable keys give churn keys room to land.
		w.Set([]byte(fmt.Sprintf("s-%04d", i*3)), []byte("s"))
	}
	stopChurn := startChurn(w, 3)
	defer stopChurn()

	// checkStable verifies an ordered key stream: strictly monotonic
	// (therefore duplicate-free, so "count == stable" means exactly once)
	// and containing every stable key.
	checkStable := func(mode string, keys []string, desc bool) {
		t.Helper()
		seen := 0
		for i, k := range keys {
			if i > 0 {
				if (!desc && keys[i-1] >= k) || (desc && keys[i-1] <= k) {
					t.Fatalf("%s: order violation %q then %q", mode, keys[i-1], k)
				}
			}
			if len(k) == 6 { // stable keys are "s-%04d"; churn keys are longer
				seen++
			}
		}
		if seen != stable {
			t.Fatalf("%s: saw %d stable keys, want %d", mode, seen, stable)
		}
	}

	rd := w.NewReader()
	defer rd.Close()
	for iter := 0; iter < 60; iter++ {
		var asc []string
		w.Scan(nil, func(k, v []byte) bool {
			asc = append(asc, string(k))
			return true
		})
		checkStable("Scan", asc, false)

		var desc []string
		w.ScanDesc(nil, func(k, v []byte) bool {
			desc = append(desc, string(k))
			return true
		})
		checkStable("ScanDesc", desc, true)

		var pinned []string
		rd.Scan([]byte("s-"), func(k, v []byte) bool {
			pinned = append(pinned, string(k))
			return true
		})
		checkStable("Reader.Scan", pinned, false)

		var it []string
		c := w.NewIter(nil)
		for c.Next() {
			it = append(it, string(c.Key()))
		}
		c.Close()
		checkStable("Iter", it, false)

		var itd []string
		cd := w.NewIterDesc(nil)
		for cd.Next() {
			itd = append(itd, string(cd.Key()))
		}
		cd.Close()
		checkStable("IterDesc", itd, true)
	}
	stopChurn()
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestIterWalksWithoutReseek drives the iterator across many chunk
// boundaries on a quiescent index and verifies exact key-order traversal
// in both directions — including that the chunk-boundary key is emitted
// exactly once (the cursor resumes from the retained leaf, never
// re-fetching the boundary).
func TestIterWalksWithoutReseek(t *testing.T) {
	w := New(opts(true))
	const n = 5000
	for i := 0; i < n; i++ {
		w.Set([]byte(fmt.Sprintf("it-%05d", i)), []byte{byte(i)})
	}
	it := w.NewIter(nil)
	count := 0
	for it.Next() {
		if got, want := string(it.Key()), fmt.Sprintf("it-%05d", count); got != want {
			t.Fatalf("asc iter at %d: key %q, want %q", count, got, want)
		}
		count++
	}
	if count != n {
		t.Fatalf("asc iter visited %d keys, want %d", count, n)
	}
	if it.Next() {
		t.Fatal("exhausted iterator advanced")
	}
	it.Close() // idempotent after auto-release

	dit := w.NewIterDesc([]byte("it-03999"))
	count = 0
	for dit.Next() {
		if got, want := string(dit.Key()), fmt.Sprintf("it-%05d", 3999-count); got != want {
			t.Fatalf("desc iter at %d: key %q, want %q", count, got, want)
		}
		count++
	}
	dit.Close()
	if count != 4000 {
		t.Fatalf("desc iter visited %d keys, want 4000", count)
	}

	// Early abandonment must release cleanly via Close.
	short := w.NewIter([]byte("it-00100"))
	if !short.Next() || string(short.Key()) != "it-00100" {
		t.Fatal("seeked iterator misplaced")
	}
	short.Close()
	if w.q.ActiveReaders() != 0 {
		t.Fatalf("abandoned iterator left %d active readers", w.q.ActiveReaders())
	}

	// Exhaustion must auto-release the pinned slot and pooled buffer even
	// when the final chunk was non-empty (the common drain path) — an
	// iterator that ran dry holds no registration.
	drained := w.NewIter([]byte("it-04990"))
	for drained.Next() {
	}
	if drained.pin != nil || drained.bufp != nil {
		t.Fatal("drained iterator did not auto-release its registration")
	}
}

// TestScanZeroAllocs guards the allocation-free scan path: a chunked scan
// over sorted leaves on a quiescent concurrent index must not allocate per
// emitted pair, in either direction, through Scan, a pinned Reader, or the
// pull iterator.
func TestScanZeroAllocs(t *testing.T) {
	w := New(DefaultOptions())
	var keys [][]byte
	for i := 0; i < 30000; i++ {
		k := []byte(fmt.Sprintf("za-%07d", i*3))
		keys = append(keys, k)
		w.Set(k, k)
	}
	cnt := 0
	fn := func(k, v []byte) bool {
		cnt++
		return cnt < 200
	}
	if n := testing.AllocsPerRun(200, func() {
		cnt = 0
		w.Scan(keys[5000], fn)
	}); n != 0 {
		t.Errorf("Scan: %v allocs per 200-key scan, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		cnt = 0
		w.ScanDesc(keys[5000], fn)
	}); n != 0 {
		t.Errorf("ScanDesc: %v allocs per 200-key scan, want 0", n)
	}
	rd := w.NewReader()
	defer rd.Close()
	if n := testing.AllocsPerRun(200, func() {
		cnt = 0
		rd.Scan(keys[5000], fn)
	}); n != 0 {
		t.Errorf("Reader.Scan: %v allocs per 200-key scan, want 0", n)
	}
	it := w.NewIter(nil)
	defer it.Close()
	if n := testing.AllocsPerRun(100, func() {
		for j := 0; j < 100; j++ {
			if !it.Next() {
				t.Fatal("iterator ran dry mid-measurement")
			}
			_ = it.Key()
			_ = it.Value()
		}
	}); n != 0 {
		t.Errorf("Iter.Next: %v allocs per 100 pulls, want 0", n)
	}
}

// TestLockedScansAblation pins the LockedScans escape hatch: the forced
// locked path must produce identical traversals to the lock-free default.
func TestLockedScansAblation(t *testing.T) {
	o := smallOpts(true)
	o.LockedScans = true
	w := New(o)
	for i := 0; i < 500; i++ {
		w.Set([]byte(fmt.Sprintf("lk-%04d", i)), []byte{1})
	}
	prev := []byte(nil)
	n := 0
	w.Scan(nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("locked scan order violation at %q", k)
		}
		prev = append(prev[:0], k...)
		n++
		return true
	})
	if n != 500 {
		t.Fatalf("locked scan saw %d keys, want 500", n)
	}
	n = 0
	w.ScanDesc(nil, func(k, v []byte) bool { n++; return true })
	if n != 500 {
		t.Fatalf("locked desc scan saw %d keys, want 500", n)
	}
}

// TestUnsafeIterDescInterleavedSplit: in non-concurrent mode leaf versions
// never move, so the descending cursor must re-seek rather than trust a
// same-leaf continuation across an interleaved Set that splits the leaf.
func TestUnsafeIterDescInterleavedSplit(t *testing.T) {
	o := opts(false)
	o.LeafCap = 8
	w := New(o)
	const n = 400
	for i := 0; i < n; i++ {
		w.Set([]byte(fmt.Sprintf("u-%04d", i*2)), []byte{1})
	}
	it := w.NewIterDesc(nil)
	seen := 0
	next := n - 1
	for it.Next() {
		k := string(it.Key())
		if len(k) == 6 {
			if want := fmt.Sprintf("u-%04d", next*2); k != want {
				t.Fatalf("desc iter skipped: got %q want %q", k, want)
			}
			next--
			seen++
		}
		// Interleave inserts right below the cursor so the current leaf
		// keeps splitting between chunks.
		w.Set([]byte(fmt.Sprintf("u-%04d-x%02d", (next*2)%800, seen%50)), []byte{2})
	}
	it.Close()
	if seen != n {
		t.Fatalf("desc iter saw %d stable keys, want %d", seen, n)
	}
}
