package core

import (
	"bytes"
	"errors"
	"fmt"
)

// BulkLoad populates an empty index from already-sorted unique keys,
// building the LeafList directly and the meta tables in one pass — far
// cheaper than N inserts (no per-split grace periods, no incremental
// re-hashing) and it yields ~3/4-full leaves like a fresh B+ tree bulk
// load. vals may be nil (keys stored with nil values) or parallel to keys.
//
// Anchors are chosen right-to-left: each leaf's anchor is the shortest
// separator from its left neighbour's last key, ⊥-extended against the
// anchor of the leaf to its right, which is already known — so the
// conversion (re-keying) machinery of the incremental path is never
// needed, and a cut that cannot produce a legal anchor simply grows that
// leaf leftward (the bulk equivalent of a fat leaf).
func (w *Wormhole) BulkLoad(keys, vals [][]byte) error {
	// A drained index can still hold empty unmerged leaves, so "empty"
	// here means genuinely fresh: one empty leaf and nothing else.
	if w.count.Load() != 0 || w.head.size() != 0 || w.head.next.Load() != nil {
		return errors.New("wormhole: BulkLoad requires a freshly created index")
	}
	if vals != nil && len(vals) != len(keys) {
		return fmt.Errorf("wormhole: BulkLoad got %d keys but %d values", len(keys), len(vals))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			return fmt.Errorf("wormhole: BulkLoad keys not strictly sorted at %d", i)
		}
	}
	if len(keys) == 0 {
		return nil
	}

	target := w.opt.LeafCap * 3 / 4
	if target < 1 {
		target = 1
	}
	// Choose leaf start offsets right-to-left so every anchor can be
	// validated against its successor.
	type span struct{ start int }
	var spans []span // in reverse (rightmost first)
	var anchors [][]byte
	var realLens []int
	nextStored := []byte(nil) // anchor of the leaf to the right
	end := len(keys)
	for end > 0 {
		start := end - target
		if start < 0 {
			start = 0
		}
		var stored []byte
		realLen := 0
		for start > 0 {
			if p := bulkCut(keys[start-1], keys[start], nextStored); p != nil {
				stored, realLen = p.stored, p.realLen
				break
			}
			start-- // no legal separator here: grow the leaf leftward
		}
		if start == 0 {
			stored, realLen = []byte{}, 0 // head leaf: empty anchor
		}
		spans = append(spans, span{start})
		anchors = append(anchors, stored)
		realLens = append(realLens, realLen)
		nextStored = stored
		end = start
	}

	// The head leaf's anchor is conceptually the empty key, but like the
	// incremental path's conversion it must be ⊥-extended so it is not a
	// prefix of the second anchor. If the second anchor is itself all
	// zeros (a §3.3 pathology), absorb that leaf into the head and retry.
	for {
		hi := len(spans) - 1
		headStored := []byte{}
		if hi > 0 {
			next := anchors[hi-1]
			for isPrefix(headStored, next) {
				headStored = append(headStored, 0)
			}
			if isPrefix(next, headStored) {
				spans = append(spans[:hi-1], span{0})
				anchors = append(anchors[:hi-1], nil)
				realLens = append(realLens[:hi-1], 0)
				continue
			}
		}
		anchors[hi], realLens[hi] = headStored, 0
		break
	}

	// Materialize the leaves left-to-right. The head leaf reuses w.head so
	// the existing list invariants (head never replaced) hold.
	var leaves []*leafNode
	for i := len(spans) - 1; i >= 0; i-- {
		start := spans[i].start
		stop := len(keys)
		if i > 0 {
			stop = spans[i-1].start
		}
		var l *leafNode
		if len(leaves) == 0 {
			l = w.head
			l.anchor.Store(&anchor{stored: anchors[i], realLen: realLens[i]})
		} else {
			l = newLeafNode(anchor{stored: anchors[i], realLen: realLens[i]}, stop-start)
		}
		// Pre-size the slab exactly: the leaf's items are known up front.
		l.slab = make([]kv, 0, stop-start)
		for j := start; j < stop; j++ {
			var v []byte
			if vals != nil {
				v = vals[j]
			}
			l.kvs = append(l.kvs, l.newKV(hashKey(keys[j]), keys[j], v))
		}
		l.sorted = len(l.kvs)
		l.rebuildTags()
		if len(leaves) > 0 {
			prev := leaves[len(leaves)-1]
			l.prev.Store(prev)
			prev.next.Store(l)
		}
		leaves = append(leaves, l)
	}
	w.count.Store(int64(len(keys)))

	t1 := buildMetaTable(leaves)
	t1.version = w.cur.Load().version
	w.cur.Store(t1)
	if w.opt.Concurrent {
		w.metaMu.Lock()
		w.spare = buildMetaTable(leaves)
		w.metaMu.Unlock()
	}
	return nil
}

// bulkCut is tryCut without the own-anchor conversion checks: in
// right-to-left bulk construction the predecessor anchor does not exist
// yet, and when it is created its own extension rule guarantees mutual
// prefix-freedom with this one.
func bulkCut(a, b, nextStored []byte) *splitPlan {
	c := lcp(a, b)
	p := b[:c+1]
	stored := p
	for nextStored != nil && isPrefix(stored, nextStored) {
		ext := make([]byte, len(stored)+1)
		copy(ext, stored)
		stored = ext
	}
	if nextStored != nil && isPrefix(nextStored, stored) {
		return nil
	}
	if len(stored) == len(p) {
		stored = cloneBytes(p)
	}
	return &splitPlan{stored: stored, realLen: len(p)}
}

// buildMetaTable constructs a MetaTrieHT for the given left-to-right leaf
// sequence from scratch: one leaf item per anchor, one internal item per
// proper prefix, bitmap bits for every child, and exact subtree boundary
// pointers (leaves are visited in order, so first-seen/last-seen per
// prefix are the leftmost/rightmost).
func buildMetaTable(leaves []*leafNode) *metaTable {
	t := newMetaTable(len(leaves) * 4)
	for _, l := range leaves {
		stored := l.anchor.Load().stored
		t.set(&metaNode{key: stored, leaf: l})
		for pl := 0; pl < len(stored); pl++ {
			prf := stored[:pl]
			node := t.get(hashKey(prf), prf, true)
			if node == nil {
				node = &metaNode{key: cloneBytes(prf), leftmost: l}
				t.set(node)
			}
			node.setBit(stored[pl])
			node.rightmost = l
		}
	}
	return t
}
