package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTryCutSimple(t *testing.T) {
	// "James"/"Jason" inside a leaf anchored at "J", next anchor "Jos":
	// the separator is "Jas", no extension, no conversion ("J" is a proper
	// prefix, so a conversion re-keys it to "J\x00").
	p := tryCut([]byte("James"), []byte("Jason"), []byte("J"), []byte("Jos"), 1)
	if p == nil {
		t.Fatal("cut rejected")
	}
	if string(p.stored) != "Jas" || p.realLen != 3 {
		t.Fatalf("anchor = %q/%d", p.stored, p.realLen)
	}
	if p.conv == nil || string(p.conv.from) != "J" || string(p.conv.to) != "J\x00" {
		t.Fatalf("conversion = %+v", p.conv)
	}
}

func TestTryCutNoConversion(t *testing.T) {
	// Leaf anchored at "A", cut between "Ba" and "Ca": separator "C" does
	// not extend "A".
	p := tryCut([]byte("Ba"), []byte("Ca"), []byte("A"), []byte("D"), 1)
	if p == nil || string(p.stored) != "C" || p.conv != nil {
		t.Fatalf("plan = %+v", p)
	}
}

func TestTryCutExtensionAgainstNext(t *testing.T) {
	// Separator "Jo" would be a prefix of the next anchor "Jos", so it is
	// ⊥-extended to "Jo\x00" (§2.2's appending rule).
	p := tryCut([]byte("Ja"), []byte("Jo"), []byte("J\x00"), []byte("Jos"), 1)
	if p == nil {
		t.Fatal("cut rejected")
	}
	if string(p.stored) != "Jo\x00" || p.realLen != 2 {
		t.Fatalf("anchor = %q/%d", p.stored, p.realLen)
	}
}

func TestTryCutRejectsZeroTailPathologies(t *testing.T) {
	// §3.3 / Figure 8: keys 1, 10, 100, 1000, 10000 (binary). Splitting
	// between 100 and 1000 yields separator 1000 which is a prefix of the
	// next anchor 10000; extension cannot escape an all-zero tail.
	one := []byte{1}
	k := func(zeros int) []byte { return append(one[:1:1], make([]byte, zeros)...) }
	if p := tryCut(k(2), k(3), []byte{}, k(4), 1); p != nil {
		t.Fatalf("pathological cut accepted: %+v", p)
	}
	// Conversion dead end: own anchor {1}, separator {1,0,0} = own + zeros.
	if p := tryCut(append(k(1), 5), k(2), k(0), nil, 1); p != nil {
		t.Fatalf("conversion dead end accepted: %+v", p)
	}
}

func TestTryCutProperPrefixKeys(t *testing.T) {
	// a is a proper prefix of b: separator is a + b[len(a)].
	p := tryCut([]byte("ab"), []byte("abc"), []byte("a\x00"), nil, 1)
	if p == nil || string(p.stored) != "abc" {
		t.Fatalf("plan = %+v", p)
	}
}

// TestTryCutQuick property-tests the planner: any accepted plan must
// satisfy the ordering condition (a < real <= b), the stored form must be
// the real part plus only zeros, and stored must be mutually prefix-free
// with both the (possibly re-keyed) own anchor and the next anchor.
func TestTryCutQuick(t *testing.T) {
	gen := func(r *rand.Rand) []byte {
		n := r.Intn(6)
		k := make([]byte, n)
		for i := range k {
			k[i] = byte(r.Intn(3))
		}
		return k
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		switch bytes.Compare(a, b) {
		case 0:
			return true
		case 1:
			a, b = b, a
		}
		// own <= a; next > b (or absent) to mimic legal leaf state.
		own := a[:r.Intn(len(a)+1)]
		var next []byte
		if r.Intn(3) > 0 {
			next = append(append([]byte{}, b...), byte(r.Intn(3)), byte(r.Intn(3)))
		}
		p := tryCut(a, b, own, next, 1)
		if p == nil {
			return true // rejection is always safe; fat leaves cover it
		}
		real := p.stored[:p.realLen]
		if bytes.Compare(a, real) >= 0 || bytes.Compare(real, b) > 0 {
			t.Logf("ordering violated: a=%x real=%x b=%x", a, real, b)
			return false
		}
		for _, z := range p.stored[p.realLen:] {
			if z != 0 {
				t.Logf("non-zero extension: %x", p.stored)
				return false
			}
		}
		if next != nil && (isPrefix(p.stored, next) || isPrefix(next, p.stored)) {
			t.Logf("prefix clash with next: %x / %x", p.stored, next)
			return false
		}
		effOwn := own
		if p.conv != nil {
			if !bytes.Equal(p.conv.from, own) {
				t.Logf("conversion from wrong anchor")
				return false
			}
			effOwn = p.conv.to
		}
		if len(effOwn) > 0 || len(p.stored) > 0 {
			if isPrefix(p.stored, effOwn) || isPrefix(effOwn, p.stored) {
				t.Logf("prefix clash with own: %x / %x", p.stored, effOwn)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanSplitMiddleOut(t *testing.T) {
	l := newLeafNode(anchor{stored: []byte{}}, 8)
	for _, k := range []string{"aa", "ab", "ba", "bb", "ca", "cb"} {
		l.insert(mkKV(k))
	}
	l.incSort()
	p := planSplit(l, false)
	if p == nil {
		t.Fatal("no plan for a trivially splittable leaf")
	}
	// The separator between "ba" and "bb" is the shortest prefix of "bb"
	// exceeding "ba": lcp("ba","bb")=1, so the anchor is "bb" itself.
	if p.cut != 3 || string(p.stored) != "bb" {
		t.Fatalf("plan = cut %d anchor %q, want middle cut with anchor \"bb\"",
			p.cut, p.stored)
	}
}

func TestPlanSplitUnsplittable(t *testing.T) {
	l := newLeafNode(anchor{stored: []byte{1}, realLen: 1}, 8)
	one := []byte{1}
	for zeros := 0; zeros < 6; zeros++ {
		l.insert(mkKV(string(append(one[:1:1], make([]byte, zeros)...))))
	}
	l.incSort()
	if p := planSplit(l, false); p != nil {
		t.Fatalf("pathological leaf got a plan: %+v", p)
	}
}
