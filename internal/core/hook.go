package core

// MutationHook observes every committed mutation of the index, in commit
// order: OnSet as an insert or replace lands, OnDel as a present key's
// removal lands (a delete of an absent key is not a mutation and is not
// reported). Both run with the owning leaf's lock (and, on structural
// paths, the meta writer lock) still held — that lock is what serializes
// same-key mutations, so calling under it is the only way a log can
// record the order the index actually committed. Implementations must
// therefore be fast and non-blocking: a buffered append, not an fsync.
//
// The returned token flows to Barrier after the index has released all
// its locks; Barrier may block (e.g. on a group-committed fsync) until
// the observed mutation is durable, without stalling readers or writers
// on other leaves. Hooks that need no durability wait return 0 and make
// Barrier a no-op.
//
// Hooks do not fire during BulkLoad: bulk loading is the recovery path,
// and recovery must not re-log what it replays.
type MutationHook interface {
	OnSet(key, val []byte) (token uint64)
	OnDel(key []byte) (token uint64)
	// Barrier blocks until the mutation identified by token is durable
	// per the hook's policy. Called outside all index locks.
	Barrier(token uint64)
}

// SetMutationHook installs h (nil removes it). It must be called before
// the index is shared between goroutines — typically right after New or
// after recovery, before serving traffic — because installation is not
// synchronized against in-flight mutations.
func (w *Wormhole) SetMutationHook(h MutationHook) { w.hook = h }

// logSet reports a committed set to the hook; the caller holds the locks
// that serialized the mutation.
func (w *Wormhole) logSet(key, val []byte) uint64 {
	if w.hook == nil {
		return 0
	}
	return w.hook.OnSet(key, val)
}

// logDel reports a committed delete to the hook; the caller holds the
// locks that serialized the mutation.
func (w *Wormhole) logDel(key []byte) uint64 {
	if w.hook == nil {
		return 0
	}
	return w.hook.OnDel(key)
}

// barrier waits out the hook's durability policy for token, outside all
// index locks.
func (w *Wormhole) barrier(token uint64) {
	if w.hook != nil {
		w.hook.Barrier(token)
	}
}
