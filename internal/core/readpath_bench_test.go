package core

import (
	"fmt"
	"testing"
)

// benchKeys returns n distinct keys shaped like the paper's composite
// keysets: a shared prefix, a variable numeric run, and a suffix.
func benchKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("az-%09d-suffix", i*7))
	}
	return keys
}

// BenchmarkGet measures the concurrent point-read path (one-shot QSBR
// reader section per call).
func BenchmarkGet(b *testing.B) {
	w := New(DefaultOptions())
	keys := benchKeys(200000)
	for _, k := range keys {
		w.Set(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Get(keys[(i*2654435761)%len(keys)])
	}
}

// BenchmarkReaderGet measures the same lookup through a pinned read
// handle, the amortized path a server connection uses.
func BenchmarkReaderGet(b *testing.B) {
	w := New(DefaultOptions())
	keys := benchKeys(200000)
	for _, k := range keys {
		w.Set(k, k)
	}
	r := w.NewReader()
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Get(keys[(i*2654435761)%len(keys)])
	}
}

// BenchmarkGetParallel measures Get under GOMAXPROCS-way concurrency,
// each worker on a pinned handle.
func BenchmarkGetParallel(b *testing.B) {
	w := New(DefaultOptions())
	keys := benchKeys(200000)
	for _, k := range keys {
		w.Set(k, k)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := w.NewReader()
		defer r.Close()
		i := 0
		for pb.Next() {
			r.Get(keys[(i*2654435761)%len(keys)])
			i++
		}
	})
}

// BenchmarkSet measures insertion into fresh indexes (splits included).
func BenchmarkSet(b *testing.B) {
	keys := benchKeys(200000)
	b.ResetTimer()
	var w *Wormhole
	for i := 0; i < b.N; i++ {
		if i%len(keys) == 0 {
			b.StopTimer()
			w = New(DefaultOptions())
			b.StartTimer()
		}
		k := keys[i%len(keys)]
		w.Set(k, k)
	}
}
