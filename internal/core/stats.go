package core

import "unsafe"

// Stats summarizes the index's shape; used by tests, the whbench tables
// and the Figure 16 memory accounting.
type Stats struct {
	Keys         int64
	Leaves       int // LeafList length
	FatLeaves    int // leaves grown past LeafCap (§3.3)
	MetaItems    int // items in the published MetaTrieHT
	LeafItems    int // of which anchors
	MaxAnchorLen int // L_anc: longest stored anchor
	AvgAnchorLen float64
	MetaBuckets  int
}

// Stats walks the structure without locks; call it on a quiescent index.
func (w *Wormhole) Stats() Stats {
	s := Stats{Keys: w.count.Load()}
	var anchorBytes int
	for l := w.head; l != nil; l = l.next.Load() {
		s.Leaves++
		if len(l.kvs) > w.opt.LeafCap {
			s.FatLeaves++
		}
		anchorBytes += len(l.anchor.Load().stored)
	}
	t := w.cur.Load()
	t.forEach(func(n *metaNode) {
		s.MetaItems++
		if n.isLeafItem() {
			s.LeafItems++
		}
	})
	s.MaxAnchorLen = t.maxLen
	if s.Leaves > 0 {
		s.AvgAnchorLen = float64(anchorBytes) / float64(s.Leaves)
	}
	s.MetaBuckets = len(t.buckets)
	return s
}

// Footprint returns the index's approximate heap consumption in bytes:
// leaf structures, kv headers, key and value bytes, the tag arrays, and
// every MetaTrieHT copy (both, in concurrent mode — the paper reports the
// second table costs 0.34–3.7% of the whole index). It is the analytic
// counterpart to the paper's getrusage measurement in Figure 16.
func (w *Wormhole) Footprint() int64 {
	var total int64
	leafHdr := int64(unsafe.Sizeof(leafNode{}))
	kvHdr := int64(unsafe.Sizeof(kv{}))
	ptr := int64(unsafe.Sizeof(uintptr(0)))
	blockSz := int64(unsafe.Sizeof(tagBlock{}))
	for l := w.head; l != nil; l = l.next.Load() {
		total += leafHdr // includes the inline tag tail arrays
		total += int64(len(l.anchor.Load().stored)) + int64(unsafe.Sizeof(anchor{}))
		total += int64(cap(l.kvs)) * ptr
		// The published base block is a fixed-size allocation regardless
		// of occupancy; big (overflow) blocks add their slices.
		if b := l.base.Load(); b != emptyTagBlock {
			total += blockSz
			if b.big != nil {
				total += int64(cap(b.big.hashes))*4 +
					int64(cap(b.big.items))*ptr + int64(cap(b.big.order))*4
			}
		}
		for _, it := range l.kvs {
			total += kvHdr + int64(len(it.key)) + int64(len(it.value()))
		}
	}
	total += tableFootprint(w.cur.Load())
	if w.opt.Concurrent {
		w.metaMu.Lock()
		total += tableFootprint(w.spare)
		w.metaMu.Unlock()
	}
	return total
}

func tableFootprint(t *metaTable) int64 {
	bucketSz := int64(unsafe.Sizeof(metaBucket{}))
	nodeSz := int64(unsafe.Sizeof(metaNode{}))
	total := int64(len(t.buckets)) * bucketSz
	t.forEach(func(n *metaNode) {
		total += nodeSz + int64(len(n.key))
	})
	// Overflow buckets.
	for i := range t.buckets {
		for b := t.buckets[i].next; b != nil; b = b.next {
			total += bucketSz
		}
	}
	return total
}
