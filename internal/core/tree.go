package core

import (
	"bytes"
	"sync"
	"sync/atomic"

	"github.com/repro/wormhole/internal/qsbr"
)

// Options configures a Wormhole index. The four boolean fields correspond
// to the incremental optimizations of §3 that Figure 11 ablates; turn them
// all on (DefaultOptions) for the full Wormhole, all off for BaseWormhole.
type Options struct {
	// LeafCap is the maximum number of keys per leaf before a split is
	// attempted (the paper uses 128). Leaves may exceed it only when no
	// legal split point exists ("fat" leaves, §3.3).
	LeafCap int
	// MergeSize: after a deletion, two adjacent leaves whose combined size
	// is below this are merged. Defaults to 2*LeafCap/3.
	MergeSize int
	// Concurrent selects the thread-safe index (seqlock leaves over
	// published tag-array snapshots, dual MetaTrieHT with QSBR grace
	// periods, version validation — §2.5). With Concurrent=false the index
	// is the paper's "Wormhole-unsafe": a single meta table and no
	// locking; the caller must serialize.
	Concurrent bool

	TagMatching bool // §3.1: 16-bit tags + optimistic tag-only LPM probes
	IncHashing  bool // §3.1: incremental CRC across the prefix binary search
	SortByTag   bool // §3.2: hash-ordered leaf search instead of key-sorted
	DirectPos   bool // §3.2: speculative start position in the tag array
	// LockedScans forces every range-scan chunk through the per-leaf lock
	// (the pre-snapshot behavior), disabling the seqlock scan fast path.
	// It exists so the scanpath benchmark can measure the locked baseline
	// in the same binary; leave it off.
	LockedScans bool
	// ShortAnchors enables the split-point optimization the paper defers
	// to future work: among the cuts in a full leaf's middle half, pick
	// the one producing the shortest anchor instead of the middlemost
	// legal one. Shorter anchors shrink the MetaTrieHT and cut the prefix
	// binary search's upper bound. Off by default to match the paper.
	ShortAnchors bool

	// QSBRSlots sizes the initial reader-slot bank (Concurrent only); the
	// slot set grows on demand when more readers pin simultaneously.
	QSBRSlots int

	// BatchInterleave sets how many keys GetBatch keeps in flight at once
	// in its memory-parallel pipeline: 0 selects the default depth,
	// negative disables the pipeline entirely (a scalar per-key loop, the
	// pre-pipeline behavior kept so benchmarks can measure both in one
	// binary), and values above the lane cap are clamped. Adjustable at
	// runtime with SetBatchInterleave.
	BatchInterleave int
}

// DefaultOptions returns the full Wormhole configuration used throughout
// the paper's evaluation: 128-key leaves, thread-safe, all optimizations.
func DefaultOptions() Options {
	return Options{
		LeafCap:     128,
		Concurrent:  true,
		TagMatching: true,
		IncHashing:  true,
		SortByTag:   true,
		DirectPos:   true,
	}
}

func (o *Options) normalize() {
	if o.LeafCap <= 1 {
		o.LeafCap = 128
	}
	if o.MergeSize <= 0 {
		o.MergeSize = o.LeafCap * 2 / 3
	}
	if o.MergeSize > o.LeafCap {
		o.MergeSize = o.LeafCap
	}
	if o.QSBRSlots <= 0 {
		o.QSBRSlots = qsbr.DefaultSlots
	}
}

// Wormhole is the core index: a LeafList of sorted leaf nodes plus two
// alternating MetaTrieHT copies. Readers traverse the published table
// lock-free inside a QSBR reader section; structural writers serialize on
// metaMu, patch the spare table, publish it with one atomic store, wait a
// grace period, and replay the patch on the retired table.
type Wormhole struct {
	opt Options
	q   *qsbr.QSBR

	cur    atomic.Pointer[metaTable]
	spare  *metaTable // guarded by metaMu; nil when !Concurrent
	metaMu sync.Mutex

	head  *leafNode // leftmost leaf; never removed (merges consume the right node)
	count atomic.Int64

	// batchDepth is the GetBatch pipeline's interleave depth (0 = scalar
	// loop); atomic so SetBatchInterleave can retune a live index.
	batchDepth atomic.Int32

	// hook, when non-nil, observes every committed mutation (see
	// SetMutationHook); installed before the index is shared.
	hook MutationHook
}

// New creates an empty index.
func New(opt Options) *Wormhole {
	opt.normalize()
	w := &Wormhole{opt: opt}
	w.batchDepth.Store(normalizeInterleave(opt.BatchInterleave))
	w.head = newLeafNode(anchor{stored: []byte{}}, 8)
	t1 := newMetaTable(64)
	t1.set(&metaNode{key: []byte{}, leaf: w.head})
	t1.version = 1
	w.cur.Store(t1)
	if opt.Concurrent {
		t2 := newMetaTable(64)
		t2.set(&metaNode{key: []byte{}, leaf: w.head})
		w.spare = t2
		w.q = qsbr.NewWithSlots(opt.QSBRSlots)
	}
	return w
}

// Count returns the number of keys in the index.
func (w *Wormhole) Count() int64 { return w.count.Load() }

// QSBRReaderLag reports how many grace-period epochs behind the slowest
// active reader section is (0 when no section runs, or when the index
// was built without Concurrent and has no QSBR domain). A lag that stays
// high across observations means a stuck reader is stalling meta-table
// reclamation.
func (w *Wormhole) QSBRReaderLag() uint64 {
	if w.q == nil {
		return 0
	}
	return w.q.ReaderLag()
}

// getUnsafe is the single-threaded lookup (no reader section, no leaf
// validation).
func (w *Wormhole) getUnsafe(h uint32, key []byte) ([]byte, bool) {
	l := w.searchMeta(w.cur.Load(), key)
	if it := l.find(h, key, w.opt.SortByTag, w.opt.DirectPos); it != nil {
		return it.value(), true
	}
	return nil, false
}

// Get returns the value stored under key.
func (w *Wormhole) Get(key []byte) ([]byte, bool) {
	h := hashKey(key)
	if !w.opt.Concurrent {
		return w.getUnsafe(h, key)
	}
	s := w.q.Enter()
	val, ok := w.getOnline(s, h, key)
	w.q.Leave(s)
	return val, ok
}

// seqlockAttempts bounds how many optimistic tries Get makes against
// leaf-writer collisions before falling back to the per-leaf read lock.
const seqlockAttempts = 4

// getOnline performs one lookup inside an already-announced QSBR reader
// section (slot s, used only to Refresh on a stale-table retry).
//
// The fast path is coordination-free: it loads the published table, walks
// it to the target leaf, and performs the whole leaf read — §2.5's
// version/dead validation, the tag-block search, the (vptr, vlen) value
// load — bracketed between two loads of the leaf's seqlock word, with no
// stores to any shared cache line. Every individual load is atomic and
// every published tag block is immutable and self-describing, so no read
// can tear or fault; what CAN be observed is a mixed generation (a value
// pair mid-overwrite, a new base with an old tail, a truncated post-split
// base under a version check that passed just before the split began).
// Every writer that creates such a window bumps the seqlock first, so the
// bracket detects all of them: if seq was even before and unchanged
// after, no mutation overlapped and the result is consistent with a
// stable leaf state inside the bracket.
//
// After seqlockAttempts collisions (or when SortByTag is off and the leaf
// must be searched key-sorted in place) it falls back to the classic
// locked read path.
func (w *Wormhole) getOnline(s *qsbr.Slot, h uint32, key []byte) ([]byte, bool) {
	if w.opt.SortByTag {
		for tries := 0; tries < seqlockAttempts; {
			t := w.cur.Load()
			l := w.searchMeta(t, key)
			s1 := l.seq.Load()
			if s1&1 != 0 { // writer mid-mutation
				tries++
				continue
			}
			if l.version.Load() > t.version || l.dead.Load() {
				w.q.Refresh(s)
				continue // stale table: re-resolve, doesn't count as a collision
			}
			var vp *byte
			var vn int64
			ok := false
			if it := l.findTags(h, key, w.opt.DirectPos); it != nil {
				vp, vn = it.valueParts()
				ok = true
			}
			if l.seq.Load() == s1 {
				// The bracket held, so the (vp, vn) pair is consistent and
				// may be materialized now — never before the validation.
				if !ok {
					return nil, false
				}
				return valueSlice(vp, vn), true
			}
			tries++
		}
	}
	for {
		t := w.cur.Load()
		l := w.searchMeta(t, key)
		l.mu.RLock()
		if l.version.Load() > t.version || l.dead.Load() {
			l.mu.RUnlock()
			w.q.Refresh(s)
			continue
		}
		it := l.find(h, key, w.opt.SortByTag, w.opt.DirectPos)
		var val []byte
		ok := false
		if it != nil {
			val, ok = it.value(), true
		}
		l.mu.RUnlock()
		return val, ok
	}
}

// GetBatch answers keys[i] into vals[i] and found[i] for every i in idxs
// (nil idxs means all of keys). The whole batch shares one QSBR reader
// announcement — the server-side analogue of netkv's request batching,
// used by the sharded store's per-shard groups — and on the concurrent
// index the lookups run through the memory-parallel pipeline (batch.go),
// which interleaves the keys' dependent-miss chains instead of walking
// them one at a time.
func (w *Wormhole) GetBatch(keys, vals [][]byte, found []bool, idxs []int) {
	if !w.opt.Concurrent {
		if idxs == nil {
			for i := range keys {
				vals[i], found[i] = w.getUnsafe(hashKey(keys[i]), keys[i])
			}
			return
		}
		for _, i := range idxs {
			vals[i], found[i] = w.getUnsafe(hashKey(keys[i]), keys[i])
		}
		return
	}
	s := w.q.Enter()
	w.getBatchOnline(s, keys, vals, found, idxs)
	w.q.Leave(s)
}

// Reader is an amortized read handle: it claims one QSBR slot at creation
// and reuses it for every operation, so a long-lived goroutine (a server
// connection, a benchmark worker) pays the slot acquisition once instead
// of per request, and each Get costs two plain stores to the handle's own
// cache line instead of a shared compare-and-swap. Between operations the
// slot is parked (quiescent), so an idle Reader never stalls writers'
// grace periods. A Reader must not be used concurrently; Close releases
// the slot.
type Reader struct {
	w   *Wormhole
	pin *qsbr.Pin // nil when the index is not concurrent
}

// NewReader returns a read handle bound to this index.
func (w *Wormhole) NewReader() *Reader {
	r := &Reader{w: w}
	if w.opt.Concurrent {
		r.pin = w.q.Pin()
	}
	return r
}

// Get returns the value stored under key.
func (r *Reader) Get(key []byte) ([]byte, bool) {
	h := hashKey(key)
	if r.pin == nil {
		return r.w.getUnsafe(h, key)
	}
	s := r.pin.Enter()
	val, ok := r.w.getOnline(s, h, key)
	r.pin.Leave()
	return val, ok
}

// GetBatch answers keys[i] into vals[i] and found[i] for every i in idxs
// (nil idxs means all of keys), under a single reader announcement on the
// handle's pinned slot and through the memory-parallel pipeline.
func (r *Reader) GetBatch(keys, vals [][]byte, found []bool, idxs []int) {
	if r.pin == nil {
		r.w.GetBatch(keys, vals, found, idxs)
		return
	}
	s := r.pin.Enter()
	r.w.getBatchOnline(s, keys, vals, found, idxs)
	r.pin.Leave()
}

// Scan visits keys >= start in ascending order until fn returns false,
// through the handle's pinned slot — a long-lived goroutine (a server
// connection) pays no per-scan reader registration. A nil start scans
// from the smallest key; fn runs with no locks held.
func (r *Reader) Scan(start []byte, fn func(key, val []byte) bool) {
	if r.pin == nil {
		r.w.scanUnsafe(start, fn)
		return
	}
	s := r.pin.Enter()
	r.w.scanLoop(s, start, false, fn)
	r.pin.Leave()
}

// ScanDesc visits keys <= start in descending order until fn returns
// false, through the handle's pinned slot. A nil start scans from the
// largest key.
func (r *Reader) ScanDesc(start []byte, fn func(key, val []byte) bool) {
	if r.pin == nil {
		r.w.scanDescUnsafe(start, fn)
		return
	}
	s := r.pin.Enter()
	r.w.scanLoop(s, start, true, fn)
	r.pin.Leave()
}

// Close releases the handle's reader slot. The Reader must not be used
// afterwards.
func (r *Reader) Close() {
	if r.pin != nil {
		r.pin.Unpin()
		r.pin = nil
	}
}

// Set inserts or replaces key's value. Key and value buffers are retained;
// the caller must not mutate them afterwards.
func (w *Wormhole) Set(key, val []byte) {
	h := hashKey(key)
	var token uint64
	if !w.opt.Concurrent {
		token = w.setUnsafe(h, key, val)
	} else {
		token = w.setOnline(h, key, val)
	}
	// The hook observed the mutation in commit order (under the leaf
	// lock); any blocking durability wait happens here, with every index
	// lock released, so an fsync never stalls readers or other writers.
	w.barrier(token)
}

func (w *Wormhole) setOnline(h uint32, key, val []byte) uint64 {
	s := w.q.Enter()
	for {
		t := w.cur.Load()
		l := w.searchMeta(t, key)
		l.mu.Lock()
		if l.version.Load() > t.version || l.dead.Load() {
			l.mu.Unlock()
			w.q.Refresh(s)
			continue
		}
		if it := l.find(h, key, true, w.opt.DirectPos); it != nil {
			// The (vptr, vlen) pair is only atomic as a unit under the
			// seqlock; optimistic readers revalidate seq after reading it.
			l.beginMutate()
			it.setValue(val)
			l.endMutate()
			token := w.logSet(key, val)
			l.mu.Unlock()
			w.q.Leave(s)
			return token
		}
		if l.size() < w.opt.LeafCap {
			l.insert(l.newKV(h, key, val))
			w.count.Add(1)
			token := w.logSet(key, val)
			l.mu.Unlock()
			w.q.Leave(s)
			return token
		}
		// The leaf is full: go through the structural-writer path. Release
		// the leaf lock and the QSBR slot first — holding a leaf lock while
		// waiting on metaMu would let a blocked reader stall the current
		// metaMu owner's grace period forever.
		l.mu.Unlock()
		w.q.Leave(s)
		return w.splitInsert(h, key, val)
	}
}

// splitInsert inserts (key, val) into a leaf that was observed full,
// splitting the leaf if a legal cut exists. It re-resolves the target
// under metaMu: holding metaMu freezes the published table (tables are
// only replaced by metaMu owners) and all leaf versions, so one search +
// one leaf lock is race-free here.
func (w *Wormhole) splitInsert(h uint32, key, val []byte) uint64 {
	w.metaMu.Lock()
	t := w.cur.Load()
	l := w.searchMeta(t, key)
	l.mu.Lock()
	if ex := l.find(h, key, true, w.opt.DirectPos); ex != nil {
		l.beginMutate()
		ex.setValue(val)
		l.endMutate()
		token := w.logSet(key, val)
		l.mu.Unlock()
		w.metaMu.Unlock()
		return token
	}
	if l.size() < w.opt.LeafCap {
		l.insert(l.newKV(h, key, val))
		w.count.Add(1)
		token := w.logSet(key, val)
		l.mu.Unlock()
		w.metaMu.Unlock()
		return token
	}
	l.incSort()
	p := planSplit(l, w.opt.ShortAnchors)
	if p == nil {
		// No legal anchor at any cut point: grow a fat leaf (§3.3).
		l.insert(l.newKV(h, key, val))
		w.count.Add(1)
		token := w.logSet(key, val)
		l.mu.Unlock()
		w.metaMu.Unlock()
		return token
	}

	nv := t.version + 1
	l.version.Store(nv)
	oldRight := l.next.Load()
	newL := executeLeafSplit(l, p)
	newL.version.Store(nv)
	newL.mu.Lock()
	linkAfter(l, newL)
	// Insert the pending item into the correct half before publication.
	target := l
	if bytes.Compare(key, newL.anchor.Load().real()) >= 0 {
		target = newL
	}
	target.insert(target.newKV(h, key, val))
	w.count.Add(1)
	token := w.logSet(key, val)

	sp := w.spare
	applySplit(sp, l, newL, oldRight, p)
	sp.version = nv
	w.cur.Store(sp)
	// Release the leaf locks before waiting out the grace period so
	// readers blocked on them can finish and vacate their QSBR slots.
	l.mu.Unlock()
	newL.mu.Unlock()
	w.q.Synchronize()
	applySplit(t, l, newL, oldRight, p)
	w.spare = t
	w.metaMu.Unlock()
	return token
}

func (w *Wormhole) setUnsafe(h uint32, key, val []byte) uint64 {
	t := w.cur.Load()
	l := w.searchMeta(t, key)
	if it := l.find(h, key, true, w.opt.DirectPos); it != nil {
		it.setValue(val)
		return w.logSet(key, val)
	}
	if l.size() < w.opt.LeafCap {
		l.insert(l.newKV(h, key, val))
		w.count.Add(1)
		return w.logSet(key, val)
	}
	l.incSort()
	p := planSplit(l, w.opt.ShortAnchors)
	if p == nil {
		l.insert(l.newKV(h, key, val))
		w.count.Add(1)
		return w.logSet(key, val)
	}
	oldRight := l.next.Load()
	newL := executeLeafSplit(l, p)
	linkAfter(l, newL)
	target := l
	if bytes.Compare(key, newL.anchor.Load().real()) >= 0 {
		target = newL
	}
	target.insert(target.newKV(h, key, val))
	w.count.Add(1)
	applySplit(t, l, newL, oldRight, p)
	return w.logSet(key, val)
}

// Del removes key, reporting whether it was present. When the leaf drains
// it is opportunistically merged with a neighbor (Algorithm 2's DEL).
func (w *Wormhole) Del(key []byte) bool {
	h := hashKey(key)
	var found bool
	var token uint64
	if !w.opt.Concurrent {
		found, token = w.delUnsafe(h, key)
	} else {
		found, token = w.delOnline(h, key)
	}
	// Only a present key's removal is a mutation; the hook already
	// observed it in commit order, so only the durability wait remains.
	if found {
		w.barrier(token)
	}
	return found
}

func (w *Wormhole) delOnline(h uint32, key []byte) (bool, uint64) {
	s := w.q.Enter()
	var shrunk *leafNode
	var token uint64
	for {
		t := w.cur.Load()
		l := w.searchMeta(t, key)
		l.mu.Lock()
		if l.version.Load() > t.version || l.dead.Load() {
			l.mu.Unlock()
			w.q.Refresh(s)
			continue
		}
		it := l.find(h, key, true, w.opt.DirectPos)
		if it == nil {
			l.mu.Unlock()
			w.q.Leave(s)
			return false, 0
		}
		l.remove(it)
		w.count.Add(-1)
		token = w.logDel(key)
		if l.size() < w.opt.MergeSize/2 {
			shrunk = l
		}
		l.mu.Unlock()
		break
	}
	w.q.Leave(s)
	if shrunk != nil {
		w.tryMerge(shrunk)
	}
	return true, token
}

// tryMerge merges l with a neighbor if their combined size is still below
// MergeSize by the time the locks are held. Merging is best-effort: if the
// world changed since the delete, it simply gives up.
func (w *Wormhole) tryMerge(l *leafNode) {
	w.metaMu.Lock()
	defer w.metaMu.Unlock()
	// dead, prev and next only change under metaMu, so these reads are
	// stable for the duration of the lock.
	if l.dead.Load() {
		return
	}
	if left := l.prev.Load(); left != nil && w.mergePair(left, l) {
		return
	}
	if right := l.next.Load(); right != nil {
		w.mergePair(l, right)
	}
}

// mergePair merges victim into left (its immediate predecessor); caller
// holds metaMu. Returns false if the pair no longer qualifies.
func (w *Wormhole) mergePair(left, victim *leafNode) bool {
	t := w.cur.Load()
	left.mu.Lock()
	victim.mu.Lock()
	if left.size()+victim.size() >= w.opt.MergeSize {
		victim.mu.Unlock()
		left.mu.Unlock()
		return false
	}
	nv := t.version + 1
	victim.version.Store(nv)
	plan := &mergePlan{
		stored: victim.anchor.Load().stored,
		victim: victim,
		left:   left,
		right:  victim.next.Load(),
	}
	mergeLeaves(left, victim)
	sp := w.spare
	applyMerge(sp, plan)
	sp.version = nv
	w.cur.Store(sp)
	victim.mu.Unlock()
	left.mu.Unlock()
	w.q.Synchronize()
	applyMerge(t, plan)
	w.spare = t
	return true
}

func (w *Wormhole) delUnsafe(h uint32, key []byte) (bool, uint64) {
	t := w.cur.Load()
	l := w.searchMeta(t, key)
	it := l.find(h, key, true, w.opt.DirectPos)
	if it == nil {
		return false, 0
	}
	l.remove(it)
	w.count.Add(-1)
	token := w.logDel(key)
	if l.size() >= w.opt.MergeSize/2 {
		return true, token
	}
	var left, victim *leafNode
	if p := l.prev.Load(); p != nil && p.size()+l.size() < w.opt.MergeSize {
		left, victim = p, l
	} else if n := l.next.Load(); n != nil && l.size()+n.size() < w.opt.MergeSize {
		left, victim = l, n
	} else {
		return true, token
	}
	plan := &mergePlan{
		stored: victim.anchor.Load().stored,
		victim: victim,
		left:   left,
		right:  victim.next.Load(),
	}
	mergeLeaves(left, victim)
	applyMerge(t, plan)
	return true, token
}
