// Package core implements the Wormhole ordered index (Wu, Ni, Jiang —
// EuroSys 2019): a doubly-linked list of B+-tree-style leaf nodes (the
// LeafList) indexed by a hash table that contains every prefix of every
// leaf anchor key (the MetaTrieHT). Point lookups cost O(log L) hash probes
// where L is the key length; range scans are a linear walk of the LeafList
// after one lookup.
package core

import "bytes"

// anchor is a leaf's separator key. The paper appends ⊥ (the smallest
// token, binary zero) to anchors to preserve the prefix condition — no
// anchor may be a prefix of another — and then "ignores ⊥ in the ordering
// condition test" (§2.2). We make that precise by keeping both forms:
//
//   - stored: the full anchor as inserted into the MetaTrieHT, i.e. the
//     separator plus any appended zero tokens. Prefix-freedom holds on
//     stored keys, so every hash-table item is unambiguously a leaf item or
//     an internal (trie) item.
//   - real = stored[:realLen]: the separator itself. All ordering
//     comparisons (leaf span membership, target-node adjustment) use real.
//
// The leaf span invariant is: real(anchor) <= every key in the leaf <
// real(next leaf's anchor).
type anchor struct {
	stored  []byte
	realLen int
}

func (a *anchor) real() []byte { return a.stored[:a.realLen] }

// lcp returns the length of the longest common prefix of a and b.
func lcp(a, b []byte) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// isPrefix reports whether p is a prefix of s (p == s counts).
func isPrefix(p, s []byte) bool {
	return len(p) <= len(s) && bytes.Equal(p, s[:len(p)])
}

// isProperPrefix reports whether p is a strict prefix of s.
func isProperPrefix(p, s []byte) bool {
	return len(p) < len(s) && bytes.Equal(p, s[:len(p)])
}

// equalWithSuffixByte reports whether k == parent+[b] without concatenating.
func equalWithSuffixByte(k, parent []byte, b byte) bool {
	n := len(parent)
	return len(k) == n+1 && k[n] == b && bytes.Equal(k[:n], parent)
}

func cloneBytes(b []byte) []byte {
	c := make([]byte, len(b))
	copy(c, b)
	return c
}
