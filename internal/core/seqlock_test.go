package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// overwriteValue builds the value written for generation n of a hammered
// key: a self-describing string whose length varies with n. A torn
// (vptr, vlen) observation — old pointer with new length or vice versa —
// cannot reproduce any generation's exact bytes, so readers can certify
// every Get result by reparsing it.
func overwriteValue(n int) []byte {
	return []byte(strings.Repeat(fmt.Sprintf("v%07d|", n), 1+n%4))
}

func checkOverwriteValue(t *testing.T, k, v []byte) {
	t.Helper()
	if len(v) < 9 || v[0] != 'v' {
		t.Errorf("key %s: malformed value %q", k, v)
		return
	}
	var n int
	if _, err := fmt.Sscanf(string(v[1:8]), "%d", &n); err != nil {
		t.Errorf("key %s: unparsable value %q", k, v)
		return
	}
	if want := overwriteValue(n); string(v) != string(want) {
		t.Errorf("key %s: torn value %q (generation %d wants %q)", k, v, n, want)
	}
}

// TestSeqlockGetUnderChurn hammers the optimistic read path with every
// writer-side mutation it must survive: in-place value overwrites of
// varying length (torn (vptr, vlen) pairs), Set-driven splits, and
// delete-driven merges, all while plain Get and pinned Reader.Get race
// lock-free through the published tag blocks. Run with -race.
func TestSeqlockGetUnderChurn(t *testing.T) {
	w := New(smallOpts(true))
	const hammered = 64 // keys that get overwritten forever
	for i := 0; i < hammered; i++ {
		w.Set([]byte(fmt.Sprintf("hot-%03d", i)), overwriteValue(0))
	}
	var stop atomic.Bool
	var writers, readers sync.WaitGroup

	// Overwriters: bump generations on the hammered keys in place.
	for g := 0; g < 2; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for n := 1; !stop.Load(); n++ {
				k := []byte(fmt.Sprintf("hot-%03d", r.Intn(hammered)))
				w.Set(k, overwriteValue(n))
			}
		}(g)
	}
	// Churners: force splits and merges around the hammered keys so the
	// leaves holding them keep moving between tables and versions.
	for g := 0; g < 2; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			for !stop.Load() {
				k := []byte(fmt.Sprintf("hot-%03d-churn-%02d-%04d", r.Intn(hammered), g, r.Intn(500)))
				if r.Intn(2) == 0 {
					w.Set(k, []byte("c"))
				} else {
					w.Del(k)
				}
			}
		}(g)
	}
	// Readers: half through plain Get, half through a pinned Reader.
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			var get func([]byte) ([]byte, bool)
			if g%2 == 0 {
				get = w.Get
			} else {
				rd := w.NewReader()
				defer rd.Close()
				get = rd.Get
			}
			r := rand.New(rand.NewSource(int64(200 + g)))
			for i := 0; i < 15000; i++ {
				k := []byte(fmt.Sprintf("hot-%03d", r.Intn(hammered)))
				v, ok := get(k)
				if !ok {
					t.Errorf("reader %d: lost hammered key %s", g, k)
					return
				}
				checkOverwriteValue(t, k, v)
			}
		}(g)
	}
	readers.Wait()
	stop.Store(true)
	writers.Wait()
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGetZeroAllocs guards the allocation-free read path: a point lookup
// on the concurrent index must not allocate, through either the one-shot
// Get or a pinned Reader, including keys long enough to exercise the full
// prefix binary search.
func TestGetZeroAllocs(t *testing.T) {
	w := New(DefaultOptions())
	var keys [][]byte
	for i := 0; i < 50000; i++ {
		k := []byte(fmt.Sprintf("az-%09d-shared-suffix", i*7))
		keys = append(keys, k)
		w.Set(k, k)
	}
	miss := []byte("az-miss-000000000")
	i := 0
	if n := testing.AllocsPerRun(2000, func() {
		w.Get(keys[(i*2654435761)%len(keys)])
		w.Get(miss)
		i++
	}); n != 0 {
		t.Errorf("Get: %v allocs/op, want 0", n)
	}
	r := w.NewReader()
	defer r.Close()
	i = 0
	if n := testing.AllocsPerRun(2000, func() {
		r.Get(keys[(i*2654435761)%len(keys)])
		i++
	}); n != 0 {
		t.Errorf("Reader.Get: %v allocs/op, want 0", n)
	}
}
