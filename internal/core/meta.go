package core

import (
	"bytes"
	"math/bits"
)

// metaNode is one MetaTrieHT item (Figure 5/6). An item is either a leaf
// item — the full stored anchor of a LeafList node — or an internal item,
// one proper prefix of some anchor. The prefix condition guarantees a
// stored key is never both.
//
// Internal items carry a 256-bit child bitmap (one bit per possible next
// token) plus the leftmost and rightmost LeafList nodes of the trie subtree
// rooted at this prefix. These two pointers are what let a failed prefix
// match jump straight to the target leaf (§2.3's sibling rule).
type metaNode struct {
	key    []byte // stored prefix this item represents
	leaf   *leafNode
	bitmap [4]uint64 // internal items only: which child tokens exist
	// Subtree boundary leaves (internal items only).
	leftmost, rightmost *leafNode
}

func (n *metaNode) isLeafItem() bool { return n.leaf != nil }

func (n *metaNode) setBit(tok byte)   { n.bitmap[tok>>6] |= 1 << (tok & 63) }
func (n *metaNode) clearBit(tok byte) { n.bitmap[tok>>6] &^= 1 << (tok & 63) }
func (n *metaNode) hasBit(tok byte) bool {
	return n.bitmap[tok>>6]&(1<<(tok&63)) != 0
}
func (n *metaNode) bitmapEmpty() bool {
	return n.bitmap[0]|n.bitmap[1]|n.bitmap[2]|n.bitmap[3] == 0
}

// leftSibling returns the largest set token strictly below tok.
func (n *metaNode) leftSibling(tok byte) (byte, bool) {
	w := int(tok >> 6)
	rem := uint(tok & 63)
	// Mask off bits >= rem in the first word, then walk down.
	m := n.bitmap[w] & (1<<rem - 1)
	for {
		if m != 0 {
			return byte(w<<6 + 63 - bits.LeadingZeros64(m)), true
		}
		w--
		if w < 0 {
			return 0, false
		}
		m = n.bitmap[w]
	}
}

// rightSibling returns the smallest set token strictly above tok.
func (n *metaNode) rightSibling(tok byte) (byte, bool) {
	w := int(tok >> 6)
	rem := uint(tok & 63)
	var m uint64
	if rem == 63 {
		m = 0
	} else {
		m = n.bitmap[w] &^ (1<<(rem+1) - 1)
	}
	for {
		if m != 0 {
			return byte(w<<6 + bits.TrailingZeros64(m)), true
		}
		w++
		if w > 3 {
			return 0, false
		}
		m = n.bitmap[w]
	}
}

// metaBucketWidth is the number of (tag, node) pairs per hash bucket,
// mirroring the paper's 8-entry cache-line slot (Figure 6).
const metaBucketWidth = 8

type metaBucket struct {
	tags  [metaBucketWidth]uint16
	nodes [metaBucketWidth]*metaNode
	next  *metaBucket // overflow chain; rare after resize
}

// metaTable is one copy of the MetaTrieHT. Wormhole keeps two copies (§2.5):
// the published one, read lock-free under QSBR protection, and a spare. A
// table is only ever mutated while it is the spare (never observable), so
// none of the methods below need synchronization. version is assigned just
// before a table is published and is immutable while the table is visible.
type metaTable struct {
	buckets []metaBucket
	mask    uint32
	count   int
	maxLen  int // length of the longest stored anchor (L_anc)
	version uint64
}

func newMetaTable(buckets int) *metaTable {
	size := 8
	for size < buckets {
		size <<= 1
	}
	return &metaTable{buckets: make([]metaBucket, size), mask: uint32(size - 1)}
}

// get returns the item whose stored key equals key (hashed to h), with full
// key verification. tagMatch selects the paper's TagMatching behaviour:
// compare the 16-bit tag first and fall through to a byte comparison only
// on a tag hit. With tagMatch=false (BaseWormhole) every occupied slot is
// compared byte-by-byte.
func (t *metaTable) get(h uint32, key []byte, tagMatch bool) *metaNode {
	tag := metaTag(h)
	for b := &t.buckets[h&t.mask]; b != nil; b = b.next {
		for i := 0; i < metaBucketWidth; i++ {
			n := b.nodes[i]
			if n == nil {
				continue
			}
			if tagMatch && b.tags[i] != tag {
				continue
			}
			if bytes.Equal(n.key, key) {
				return n
			}
		}
	}
	return nil
}

// getTagOnly returns the first item in h's bucket chain whose tag matches,
// without verifying the key — the optimistic probe of §3.1. A false
// positive is possible and is detected by the caller's final full-key
// verification.
func (t *metaTable) getTagOnly(h uint32) *metaNode {
	tag := metaTag(h)
	for b := &t.buckets[h&t.mask]; b != nil; b = b.next {
		for i := 0; i < metaBucketWidth; i++ {
			if b.nodes[i] != nil && b.tags[i] == tag {
				return b.nodes[i]
			}
		}
	}
	return nil
}

// getChild looks up parent.key + one extra token without materializing the
// concatenation. parentHash must be the hash of parent.key.
func (t *metaTable) getChild(parentHash uint32, parent []byte, tok byte) *metaNode {
	var ext [1]byte
	ext[0] = tok
	h := hashExtend(parentHash, ext[:])
	tag := metaTag(h)
	for b := &t.buckets[h&t.mask]; b != nil; b = b.next {
		for i := 0; i < metaBucketWidth; i++ {
			n := b.nodes[i]
			if n == nil || b.tags[i] != tag {
				continue
			}
			if equalWithSuffixByte(n.key, parent, tok) {
				return n
			}
		}
	}
	return nil
}

// set inserts node under its key. The caller guarantees the key is absent.
func (t *metaTable) set(node *metaNode) {
	if t.count >= len(t.buckets)*6 {
		t.grow()
	}
	h := hashKey(node.key)
	t.insert(h, node)
	t.count++
	if len(node.key) > t.maxLen {
		t.maxLen = len(node.key)
	}
}

func (t *metaTable) insert(h uint32, node *metaNode) {
	tag := metaTag(h)
	b := &t.buckets[h&t.mask]
	for {
		for i := 0; i < metaBucketWidth; i++ {
			if b.nodes[i] == nil {
				b.nodes[i] = node
				b.tags[i] = tag
				return
			}
		}
		if b.next == nil {
			b.next = &metaBucket{}
		}
		b = b.next
	}
}

// remove deletes the item with the given stored key, returning it.
func (t *metaTable) remove(key []byte) *metaNode {
	h := hashKey(key)
	for b := &t.buckets[h&t.mask]; b != nil; b = b.next {
		for i := 0; i < metaBucketWidth; i++ {
			n := b.nodes[i]
			if n != nil && bytes.Equal(n.key, key) {
				b.nodes[i] = nil
				b.tags[i] = 0
				t.count--
				return n
			}
		}
	}
	return nil
}

// grow doubles the bucket array and rehashes every item. Safe because
// tables are only mutated while unobserved.
func (t *metaTable) grow() {
	old := t.buckets
	t.buckets = make([]metaBucket, len(old)*2)
	t.mask = uint32(len(t.buckets) - 1)
	for i := range old {
		for b := &old[i]; b != nil; b = b.next {
			for j := 0; j < metaBucketWidth; j++ {
				if n := b.nodes[j]; n != nil {
					t.insert(hashKey(n.key), n)
				}
			}
		}
	}
}

// forEach visits every item; used by invariant checks and Footprint.
func (t *metaTable) forEach(fn func(*metaNode)) {
	for i := range t.buckets {
		for b := &t.buckets[i]; b != nil; b = b.next {
			for j := 0; j < metaBucketWidth; j++ {
				if b.nodes[j] != nil {
					fn(b.nodes[j])
				}
			}
		}
	}
}
