package core

import (
	"bytes"
	"math/bits"
	"unsafe"
)

// metaNode is one MetaTrieHT item (Figure 5/6). An item is either a leaf
// item — the full stored anchor of a LeafList node — or an internal item,
// one proper prefix of some anchor. The prefix condition guarantees a
// stored key is never both.
//
// Internal items carry a 256-bit child bitmap (one bit per possible next
// token) plus the leftmost and rightmost LeafList nodes of the trie subtree
// rooted at this prefix. These two pointers are what let a failed prefix
// match jump straight to the target leaf (§2.3's sibling rule).
type metaNode struct {
	key    []byte // stored prefix this item represents
	leaf   *leafNode
	bitmap [4]uint64 // internal items only: which child tokens exist
	// Subtree boundary leaves (internal items only).
	leftmost, rightmost *leafNode
}

func (n *metaNode) isLeafItem() bool { return n.leaf != nil }

func (n *metaNode) setBit(tok byte)   { n.bitmap[tok>>6] |= 1 << (tok & 63) }
func (n *metaNode) clearBit(tok byte) { n.bitmap[tok>>6] &^= 1 << (tok & 63) }
func (n *metaNode) hasBit(tok byte) bool {
	return n.bitmap[tok>>6]&(1<<(tok&63)) != 0
}
func (n *metaNode) bitmapEmpty() bool {
	return n.bitmap[0]|n.bitmap[1]|n.bitmap[2]|n.bitmap[3] == 0
}

// leftSibling returns the largest set token strictly below tok.
func (n *metaNode) leftSibling(tok byte) (byte, bool) {
	w := int(tok >> 6)
	rem := uint(tok & 63)
	// Mask off bits >= rem in the first word, then walk down.
	m := n.bitmap[w] & (1<<rem - 1)
	for {
		if m != 0 {
			return byte(w<<6 + 63 - bits.LeadingZeros64(m)), true
		}
		w--
		if w < 0 {
			return 0, false
		}
		m = n.bitmap[w]
	}
}

// rightSibling returns the smallest set token strictly above tok.
func (n *metaNode) rightSibling(tok byte) (byte, bool) {
	w := int(tok >> 6)
	rem := uint(tok & 63)
	var m uint64
	if rem == 63 {
		m = 0
	} else {
		m = n.bitmap[w] &^ (1<<(rem+1) - 1)
	}
	for {
		if m != 0 {
			return byte(w<<6 + bits.TrailingZeros64(m)), true
		}
		w++
		if w > 3 {
			return 0, false
		}
		m = n.bitmap[w]
	}
}

// metaBucketWidth is the number of (tag, node) pairs per hash bucket,
// mirroring the paper's 8-entry cache-line slot (Figure 6).
const metaBucketWidth = 8

type metaBucket struct {
	tags  [metaBucketWidth]uint16
	nodes [metaBucketWidth]*metaNode
	next  *metaBucket // overflow chain; rare after resize
}

// littleEndian reports whether uint16 lanes viewed through a uint64 map
// low lane to low bits — the layout tagMask's SWAR compare assumes.
var littleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// tagMask compares all eight slot tags against tag at once (two 64-bit
// SWAR compares over the contiguous tag array — the cache-line bucket
// layout of Figure 6 pays off here) and returns a bitmask of matching
// slots. Empty slots carry tag 0 and a nil node, so callers must still
// nil-check the node behind a set bit. On big-endian hosts, where the
// lane order would invert the slot mapping, it falls back to a scalar
// scan (the branch is a package-constant predict).
func (b *metaBucket) tagMask(tag uint16) uint32 {
	if !littleEndian {
		var m uint32
		for i := 0; i < metaBucketWidth; i++ {
			if b.tags[i] == tag {
				m |= 1 << i
			}
		}
		return m
	}
	t := uint64(tag)
	pat := t | t<<16 | t<<32 | t<<48
	p := (*[2]uint64)(unsafe.Pointer(&b.tags[0]))
	return swarZero16(p[0]^pat) | swarZero16(p[1]^pat)<<4
}

// swarZero16 returns a 4-bit mask of which 16-bit lanes of x are zero.
func swarZero16(x uint64) uint32 {
	y := (x - 0x0001000100010001) & ^x & 0x8000800080008000
	return uint32(y>>15&1 | y>>30&2 | y>>45&4 | y>>60&8)
}

// metaTable is one copy of the MetaTrieHT. Wormhole keeps two copies (§2.5):
// the published one, read lock-free under QSBR protection, and a spare. A
// table is only ever mutated while it is the spare (never observable), so
// none of the methods below need synchronization. version is assigned just
// before a table is published and is immutable while the table is visible.
type metaTable struct {
	buckets []metaBucket
	mask    uint32
	count   int
	maxLen  int // length of the longest stored anchor (L_anc)
	version uint64
	// root caches the empty-key item — the anchor of every LPM binary
	// search — so lookups skip one bucket probe per operation. It exists
	// in every consistent table (the head leaf's anchor is the empty key
	// or ⊥-extends it, and every proper prefix of a stored anchor has an
	// internal item).
	root *metaNode
}

func newMetaTable(buckets int) *metaTable {
	size := 8
	for size < buckets {
		size <<= 1
	}
	return &metaTable{buckets: make([]metaBucket, size), mask: uint32(size - 1)}
}

// get returns the item whose stored key equals key (hashed to h), with full
// key verification. tagMatch selects the paper's TagMatching behaviour:
// compare the 16-bit tag first and fall through to a byte comparison only
// on a tag hit. With tagMatch=false (BaseWormhole) every occupied slot is
// compared byte-by-byte.
func (t *metaTable) get(h uint32, key []byte, tagMatch bool) *metaNode {
	tag := metaTag(h)
	for b := &t.buckets[h&t.mask]; b != nil; b = b.next {
		if tagMatch {
			for m := b.tagMask(tag); m != 0; m &= m - 1 {
				n := b.nodes[bits.TrailingZeros32(m)]
				if n != nil && bytes.Equal(n.key, key) {
					return n
				}
			}
			continue
		}
		for i := 0; i < metaBucketWidth; i++ {
			n := b.nodes[i]
			if n != nil && bytes.Equal(n.key, key) {
				return n
			}
		}
	}
	return nil
}

// getTagOnly returns the first item in h's bucket chain whose tag matches,
// without verifying the key — the optimistic probe of §3.1. A false
// positive is possible and is detected by the caller's final full-key
// verification.
func (t *metaTable) getTagOnly(h uint32) *metaNode {
	tag := metaTag(h)
	for b := &t.buckets[h&t.mask]; b != nil; b = b.next {
		for m := b.tagMask(tag); m != 0; m &= m - 1 {
			if n := b.nodes[bits.TrailingZeros32(m)]; n != nil {
				return n
			}
		}
	}
	return nil
}

// getChild looks up parent.key + one extra token without materializing the
// concatenation. parentHash must be the hash of parent.key.
func (t *metaTable) getChild(parentHash uint32, parent []byte, tok byte) *metaNode {
	h := hashExtendByte(parentHash, tok)
	tag := metaTag(h)
	for b := &t.buckets[h&t.mask]; b != nil; b = b.next {
		for m := b.tagMask(tag); m != 0; m &= m - 1 {
			n := b.nodes[bits.TrailingZeros32(m)]
			if n != nil && equalWithSuffixByte(n.key, parent, tok) {
				return n
			}
		}
	}
	return nil
}

// set inserts node under its key. The caller guarantees the key is absent.
func (t *metaTable) set(node *metaNode) {
	if t.count >= len(t.buckets)*6 {
		t.grow()
	}
	h := hashKey(node.key)
	t.insert(h, node)
	t.count++
	if len(node.key) > t.maxLen {
		t.maxLen = len(node.key)
	}
	if len(node.key) == 0 {
		t.root = node
	}
}

func (t *metaTable) insert(h uint32, node *metaNode) {
	tag := metaTag(h)
	b := &t.buckets[h&t.mask]
	for {
		for i := 0; i < metaBucketWidth; i++ {
			if b.nodes[i] == nil {
				b.nodes[i] = node
				b.tags[i] = tag
				return
			}
		}
		if b.next == nil {
			b.next = &metaBucket{}
		}
		b = b.next
	}
}

// remove deletes the item with the given stored key, returning it. When
// the removed key was (one of) the longest stored, maxLen is recomputed:
// leaving it stale would keep the LPM binary search probing to an upper
// bound no anchor can reach anymore, so after heavy delete/merge cycles
// every lookup would pay for the longest anchor the table ever held.
func (t *metaTable) remove(key []byte) *metaNode {
	h := hashKey(key)
	for b := &t.buckets[h&t.mask]; b != nil; b = b.next {
		for i := 0; i < metaBucketWidth; i++ {
			n := b.nodes[i]
			if n != nil && bytes.Equal(n.key, key) {
				b.nodes[i] = nil
				b.tags[i] = 0
				t.count--
				if len(key) == t.maxLen {
					t.recomputeMaxLen()
				}
				if len(key) == 0 {
					t.root = nil // transient; recreated before publication
				}
				return n
			}
		}
	}
	return nil
}

// recomputeMaxLen rescans the table for the longest stored key. O(items),
// but only runs when the longest anchor is removed — a structural-writer
// path already paying a grace period.
func (t *metaTable) recomputeMaxLen() {
	m := 0
	t.forEach(func(n *metaNode) {
		if len(n.key) > m {
			m = len(n.key)
		}
	})
	t.maxLen = m
}

// grow doubles the bucket array and rehashes every item. Safe because
// tables are only mutated while unobserved.
func (t *metaTable) grow() {
	old := t.buckets
	t.buckets = make([]metaBucket, len(old)*2)
	t.mask = uint32(len(t.buckets) - 1)
	for i := range old {
		for b := &old[i]; b != nil; b = b.next {
			for j := 0; j < metaBucketWidth; j++ {
				if n := b.nodes[j]; n != nil {
					t.insert(hashKey(n.key), n)
				}
			}
		}
	}
}

// forEach visits every item; used by invariant checks and Footprint.
func (t *metaTable) forEach(fn func(*metaNode)) {
	for i := range t.buckets {
		for b := &t.buckets[i]; b != nil; b = b.next {
			for j := 0; j < metaBucketWidth; j++ {
				if b.nodes[j] != nil {
					fn(b.nodes[j])
				}
			}
		}
	}
}
