// Package indextest provides a model-based test harness shared by every
// index implementation: it drives random operation streams against both
// the index under test and a reference map, failing on the first
// divergence in point or range results.
package indextest

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// PointOps exercises Get/Set/Del/Count against a reference model.
func PointOps(t *testing.T, ix interface {
	Get([]byte) ([]byte, bool)
	Set(key, val []byte)
	Del([]byte) bool
	Count() int64
}, seed int64, steps int, gen func(*rand.Rand) []byte) {
	t.Helper()
	model := map[string]string{}
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		k := gen(r)
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4:
			v := fmt.Sprintf("v%d", i)
			ix.Set(k, []byte(v))
			model[string(k)] = v
		case 5, 6:
			got := ix.Del(k)
			_, want := model[string(k)]
			if got != want {
				t.Fatalf("step %d: Del(%x) = %v, want %v", i, k, got, want)
			}
			delete(model, string(k))
		default:
			v, ok := ix.Get(k)
			mv, mok := model[string(k)]
			if ok != mok || (ok && string(v) != mv) {
				t.Fatalf("step %d: Get(%x) = %q,%v want %q,%v", i, k, v, ok, mv, mok)
			}
		}
	}
	if int(ix.Count()) != len(model) {
		t.Fatalf("Count = %d, model has %d", ix.Count(), len(model))
	}
	for k, v := range model {
		got, ok := ix.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("final Get(%x) = %q,%v want %q", k, got, ok, v)
		}
	}
}

// OrderedOps additionally verifies Scan windows after every few steps and
// a final full scan.
func OrderedOps(t *testing.T, ix interface {
	Get([]byte) ([]byte, bool)
	Set(key, val []byte)
	Del([]byte) bool
	Count() int64
	Scan(start []byte, fn func(k, v []byte) bool)
}, seed int64, steps int, gen func(*rand.Rand) []byte) {
	t.Helper()
	model := map[string]string{}
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		k := gen(r)
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4:
			v := fmt.Sprintf("v%d", i)
			ix.Set(k, []byte(v))
			model[string(k)] = v
		case 5, 6:
			got := ix.Del(k)
			_, want := model[string(k)]
			if got != want {
				t.Fatalf("step %d: Del(%x) = %v, want %v", i, k, got, want)
			}
			delete(model, string(k))
		case 7, 8:
			v, ok := ix.Get(k)
			mv, mok := model[string(k)]
			if ok != mok || (ok && string(v) != mv) {
				t.Fatalf("step %d: Get(%x) = %q,%v want %q,%v", i, k, v, ok, mv, mok)
			}
		default:
			limit := 1 + r.Intn(8)
			var got []string
			ix.Scan(k, func(kk, _ []byte) bool {
				got = append(got, string(kk))
				return len(got) < limit
			})
			var want []string
			for mk := range model {
				if mk >= string(k) {
					want = append(want, mk)
				}
			}
			sort.Strings(want)
			if len(want) > limit {
				want = want[:limit]
			}
			if len(got) != len(want) {
				t.Fatalf("step %d: scan(%x,%d) len %d want %d", i, k, limit, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("step %d: scan[%d] = %x want %x", i, j, got[j], want[j])
				}
			}
		}
	}
	// Full-scan agreement.
	var got []string
	var prev []byte
	ix.Scan(nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order: %x then %x", prev, k)
		}
		prev = append(prev[:0], k...)
		if model[string(k)] != string(v) {
			t.Fatalf("scan value mismatch for %x", k)
		}
		got = append(got, string(k))
		return true
	})
	if len(got) != len(model) {
		t.Fatalf("full scan found %d keys, model has %d", len(got), len(model))
	}
}

// BatchOps exercises the batched operations (GetBatch/SetBatch/DelBatch)
// against a reference model. Batches deliberately contain duplicate keys:
// a conforming implementation applies same-key operations in batch order
// (last write wins within a SetBatch; the second DelBatch of a key in one
// batch reports absent).
func BatchOps(t *testing.T, ix interface {
	Get([]byte) ([]byte, bool)
	Count() int64
	GetBatch(keys [][]byte) ([][]byte, []bool)
	SetBatch(keys, vals [][]byte)
	DelBatch(keys [][]byte) []bool
}, seed int64, rounds, batch int, gen func(*rand.Rand) []byte) {
	t.Helper()
	model := map[string]string{}
	r := rand.New(rand.NewSource(seed))
	seq := 0
	for round := 0; round < rounds; round++ {
		n := 1 + r.Intn(batch)
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = gen(r)
		}
		switch r.Intn(3) {
		case 0:
			vals := make([][]byte, n)
			for i := range vals {
				seq++
				vals[i] = []byte(fmt.Sprintf("b%d", seq))
			}
			ix.SetBatch(keys, vals)
			for i := range keys {
				model[string(keys[i])] = string(vals[i])
			}
		case 1:
			vals, found := ix.GetBatch(keys)
			if len(vals) != n || len(found) != n {
				t.Fatalf("round %d: GetBatch returned %d/%d results for %d keys",
					round, len(vals), len(found), n)
			}
			for i := range keys {
				mv, mok := model[string(keys[i])]
				if found[i] != mok || (mok && string(vals[i]) != mv) {
					t.Fatalf("round %d: GetBatch[%d](%x) = %q,%v want %q,%v",
						round, i, keys[i], vals[i], found[i], mv, mok)
				}
			}
		case 2:
			found := ix.DelBatch(keys)
			if len(found) != n {
				t.Fatalf("round %d: DelBatch returned %d results for %d keys",
					round, len(found), n)
			}
			for i := range keys {
				_, want := model[string(keys[i])]
				if found[i] != want {
					t.Fatalf("round %d: DelBatch[%d](%x) = %v want %v",
						round, i, keys[i], found[i], want)
				}
				delete(model, string(keys[i]))
			}
		}
	}
	if int(ix.Count()) != len(model) {
		t.Fatalf("Count = %d, model has %d", ix.Count(), len(model))
	}
	for k, v := range model {
		got, ok := ix.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("final Get(%x) = %q,%v want %q", k, got, ok, v)
		}
	}
}

// Generators for the regimes that stress different index mechanics.

// GenBinary yields short keys over {0,1}: brutal for tries and anchors.
func GenBinary(r *rand.Rand) []byte {
	n := r.Intn(8)
	k := make([]byte, n)
	for i := range k {
		k[i] = byte(r.Intn(2))
	}
	return k
}

// GenASCII yields short keys over a small printable alphabet.
func GenASCII(r *rand.Rand) []byte {
	n := r.Intn(10)
	k := make([]byte, n)
	for i := range k {
		k[i] = 'a' + byte(r.Intn(4))
	}
	return k
}

// GenRandom yields fixed-length uniformly random keys.
func GenRandom(n int) func(*rand.Rand) []byte {
	return func(r *rand.Rand) []byte {
		k := make([]byte, n)
		r.Read(k)
		return k
	}
}

// GenPrefixed yields keys sharing long URL-like prefixes.
func GenPrefixed(r *rand.Rand) []byte {
	prefixes := []string{
		"http://www.example.com/articles/",
		"http://www.example.com/users/",
		"https://cdn.example.org/assets/img/",
	}
	return []byte(fmt.Sprintf("%s%05d", prefixes[r.Intn(len(prefixes))], r.Intn(3000)))
}
