// Package indextest provides a model-based test harness shared by every
// index implementation: it drives random operation streams against both
// the index under test and a reference map, failing on the first
// divergence in point or range results.
package indextest

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// PointOps exercises Get/Set/Del/Count against a reference model.
func PointOps(t *testing.T, ix interface {
	Get([]byte) ([]byte, bool)
	Set(key, val []byte)
	Del([]byte) bool
	Count() int64
}, seed int64, steps int, gen func(*rand.Rand) []byte) {
	t.Helper()
	model := map[string]string{}
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		k := gen(r)
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4:
			v := fmt.Sprintf("v%d", i)
			ix.Set(k, []byte(v))
			model[string(k)] = v
		case 5, 6:
			got := ix.Del(k)
			_, want := model[string(k)]
			if got != want {
				t.Fatalf("step %d: Del(%x) = %v, want %v", i, k, got, want)
			}
			delete(model, string(k))
		default:
			v, ok := ix.Get(k)
			mv, mok := model[string(k)]
			if ok != mok || (ok && string(v) != mv) {
				t.Fatalf("step %d: Get(%x) = %q,%v want %q,%v", i, k, v, ok, mv, mok)
			}
		}
	}
	if int(ix.Count()) != len(model) {
		t.Fatalf("Count = %d, model has %d", ix.Count(), len(model))
	}
	for k, v := range model {
		got, ok := ix.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("final Get(%x) = %q,%v want %q", k, got, ok, v)
		}
	}
}

// OrderedOps additionally verifies Scan windows after every few steps and
// a final full scan.
func OrderedOps(t *testing.T, ix interface {
	Get([]byte) ([]byte, bool)
	Set(key, val []byte)
	Del([]byte) bool
	Count() int64
	Scan(start []byte, fn func(k, v []byte) bool)
}, seed int64, steps int, gen func(*rand.Rand) []byte) {
	t.Helper()
	model := map[string]string{}
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		k := gen(r)
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4:
			v := fmt.Sprintf("v%d", i)
			ix.Set(k, []byte(v))
			model[string(k)] = v
		case 5, 6:
			got := ix.Del(k)
			_, want := model[string(k)]
			if got != want {
				t.Fatalf("step %d: Del(%x) = %v, want %v", i, k, got, want)
			}
			delete(model, string(k))
		case 7, 8:
			v, ok := ix.Get(k)
			mv, mok := model[string(k)]
			if ok != mok || (ok && string(v) != mv) {
				t.Fatalf("step %d: Get(%x) = %q,%v want %q,%v", i, k, v, ok, mv, mok)
			}
		default:
			limit := 1 + r.Intn(8)
			var got []string
			ix.Scan(k, func(kk, _ []byte) bool {
				got = append(got, string(kk))
				return len(got) < limit
			})
			var want []string
			for mk := range model {
				if mk >= string(k) {
					want = append(want, mk)
				}
			}
			sort.Strings(want)
			if len(want) > limit {
				want = want[:limit]
			}
			if len(got) != len(want) {
				t.Fatalf("step %d: scan(%x,%d) len %d want %d", i, k, limit, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("step %d: scan[%d] = %x want %x", i, j, got[j], want[j])
				}
			}
		}
	}
	// Full-scan agreement.
	var got []string
	var prev []byte
	ix.Scan(nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order: %x then %x", prev, k)
		}
		prev = append(prev[:0], k...)
		if model[string(k)] != string(v) {
			t.Fatalf("scan value mismatch for %x", k)
		}
		got = append(got, string(k))
		return true
	})
	if len(got) != len(model) {
		t.Fatalf("full scan found %d keys, model has %d", len(got), len(model))
	}
}

// BatchOps exercises the batched operations (GetBatch/SetBatch/DelBatch)
// against a reference model. Batches deliberately contain duplicate keys:
// a conforming implementation applies same-key operations in batch order
// (last write wins within a SetBatch; the second DelBatch of a key in one
// batch reports absent).
func BatchOps(t *testing.T, ix interface {
	Get([]byte) ([]byte, bool)
	Count() int64
	GetBatch(keys [][]byte) ([][]byte, []bool)
	SetBatch(keys, vals [][]byte)
	DelBatch(keys [][]byte) []bool
}, seed int64, rounds, batch int, gen func(*rand.Rand) []byte) {
	t.Helper()
	model := map[string]string{}
	r := rand.New(rand.NewSource(seed))
	seq := 0
	for round := 0; round < rounds; round++ {
		n := 1 + r.Intn(batch)
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = gen(r)
		}
		switch r.Intn(3) {
		case 0:
			vals := make([][]byte, n)
			for i := range vals {
				seq++
				vals[i] = []byte(fmt.Sprintf("b%d", seq))
			}
			ix.SetBatch(keys, vals)
			for i := range keys {
				model[string(keys[i])] = string(vals[i])
			}
		case 1:
			vals, found := ix.GetBatch(keys)
			if len(vals) != n || len(found) != n {
				t.Fatalf("round %d: GetBatch returned %d/%d results for %d keys",
					round, len(vals), len(found), n)
			}
			for i := range keys {
				mv, mok := model[string(keys[i])]
				if found[i] != mok || (mok && string(vals[i]) != mv) {
					t.Fatalf("round %d: GetBatch[%d](%x) = %q,%v want %q,%v",
						round, i, keys[i], vals[i], found[i], mv, mok)
				}
				// Batched and scalar reads must agree byte for byte.
				sv, sok := ix.Get(keys[i])
				if found[i] != sok || (sok && !bytes.Equal(vals[i], sv)) {
					t.Fatalf("round %d: GetBatch[%d](%x) = %q,%v but scalar Get = %q,%v",
						round, i, keys[i], vals[i], found[i], sv, sok)
				}
			}
		case 2:
			found := ix.DelBatch(keys)
			if len(found) != n {
				t.Fatalf("round %d: DelBatch returned %d results for %d keys",
					round, len(found), n)
			}
			for i := range keys {
				_, want := model[string(keys[i])]
				if found[i] != want {
					t.Fatalf("round %d: DelBatch[%d](%x) = %v want %v",
						round, i, keys[i], found[i], want)
				}
				delete(model, string(keys[i]))
			}
		}
	}
	if int(ix.Count()) != len(model) {
		t.Fatalf("Count = %d, model has %d", ix.Count(), len(model))
	}
	for k, v := range model {
		got, ok := ix.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("final Get(%x) = %q,%v want %q", k, got, ok, v)
		}
	}
}

// BatchGetEquivalence is the batched-read equivalence oracle: GetBatch
// must return byte-identical results to len(keys) sequential scalar
// Gets, for every batch shape that tends to bite pipelined read paths —
// duplicate keys within one batch, missing keys, empty keys, and
// batches larger than a leaf (size the batch argument above the index's
// leaf capacity). Needs only point operations plus GetBatch, so it runs
// over every registered backend; mutation bursts between batches keep
// the structure moving (splits, merges, removed keys).
func BatchGetEquivalence(t *testing.T, ix interface {
	Get([]byte) ([]byte, bool)
	Set(key, val []byte)
	Del([]byte) bool
	GetBatch(keys [][]byte) ([][]byte, []bool)
}, seed int64, rounds, batch int, gen func(*rand.Rand) []byte) {
	t.Helper()
	model := map[string]string{}
	r := rand.New(rand.NewSource(seed))
	var present [][]byte // sample of inserted keys: guaranteed hits and duplicates
	seq := 0
	for round := 0; round < rounds; round++ {
		for i := 0; i < batch/2+1; i++ {
			k := gen(r)
			if r.Intn(4) == 0 {
				ix.Del(k)
				delete(model, string(k))
				continue
			}
			seq++
			v := fmt.Sprintf("e%d", seq)
			ix.Set(k, []byte(v))
			model[string(k)] = v
			if len(present) < 4*batch {
				present = append(present, k)
			}
		}
		// Cycle the empty key through both states so batches observe it
		// present and absent.
		switch round % 3 {
		case 0:
			ix.Set([]byte{}, []byte("empty"))
			model[""] = "empty"
		case 2:
			ix.Del([]byte{})
			delete(model, "")
		}
		n := 1 + r.Intn(batch)
		if round%4 == 3 {
			n = batch // full-size rounds: larger than a leaf
		}
		keys := make([][]byte, n)
		for i := range keys {
			switch {
			case i > 0 && r.Intn(6) == 0:
				keys[i] = keys[r.Intn(i)] // duplicate of an earlier batch entry
			case r.Intn(8) == 0:
				keys[i] = []byte{}
			case len(present) > 0 && r.Intn(2) == 0:
				keys[i] = present[r.Intn(len(present))] // likely present
			default:
				keys[i] = gen(r) // hit or miss
			}
		}
		vals, found := ix.GetBatch(keys)
		if len(vals) != n || len(found) != n {
			t.Fatalf("round %d: GetBatch returned %d/%d results for %d keys",
				round, len(vals), len(found), n)
		}
		for i := range keys {
			sv, sok := ix.Get(keys[i])
			if found[i] != sok || (sok && !bytes.Equal(vals[i], sv)) {
				t.Fatalf("round %d: GetBatch[%d](%x) = %q,%v but scalar Get = %q,%v",
					round, i, keys[i], vals[i], found[i], sv, sok)
			}
			mv, mok := model[string(keys[i])]
			if sok != mok || (mok && string(sv) != mv) {
				t.Fatalf("round %d: Get(%x) = %q,%v disagrees with model %q,%v",
					round, keys[i], sv, sok, mv, mok)
			}
		}
	}
}

// MutableIndex is the mutation surface ConcurrentOps drives.
type MutableIndex interface {
	Get([]byte) ([]byte, bool)
	Set(key, val []byte)
	Del([]byte) bool
	Count() int64
}

// scanner is detected dynamically so the harness runs scan verification
// only on ordered indexes.
type scanner interface {
	Scan(start []byte, fn func(k, v []byte) bool)
}

// batchGetter is detected dynamically so the harness runs batched-read
// verification only on indexes that expose GetBatch.
type batchGetter interface {
	GetBatch(keys [][]byte) (vals [][]byte, found []bool)
}

// Synchronized wraps a non-thread-safe index with one mutex so the
// concurrent harness can drive every registered backend: the wrapped
// index sees a serialized operation stream while the harness's goroutine
// structure (and the race detector's view of the harness itself) stays
// identical to the lock-free backends'. The wrapper advertises Scan and
// GetBatch only when the wrapped index has them, so the harness's
// capability detection sees the underlying index, not the wrapper.
func Synchronized(ix MutableIndex) MutableIndex {
	s := &syncIx{ix: ix}
	_, canScan := ix.(scanner)
	_, canBatch := ix.(batchGetter)
	switch {
	case canScan && canBatch:
		return &syncScanBatchIx{syncScanIx{syncIx: s}}
	case canScan:
		return &syncScanIx{syncIx: s}
	case canBatch:
		return &syncBatchIx{syncIx: s}
	}
	return s
}

type syncIx struct {
	mu sync.Mutex
	ix MutableIndex
}

// syncScanIx adds the serialized Scan for wrapped indexes that have one.
type syncScanIx struct {
	*syncIx
}

func (s *syncScanIx) Scan(start []byte, fn func(k, v []byte) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ix.(scanner).Scan(start, fn)
}

// syncBatchIx / syncScanBatchIx add the serialized GetBatch; scan and
// batch support are orthogonal (cuckoo batches but cannot scan), so all
// four capability combinations exist.
type syncBatchIx struct {
	*syncIx
}

func (s *syncBatchIx) GetBatch(keys [][]byte) ([][]byte, []bool) {
	return s.syncIx.getBatchLocked(keys)
}

type syncScanBatchIx struct {
	syncScanIx
}

func (s *syncScanBatchIx) GetBatch(keys [][]byte) ([][]byte, []bool) {
	return s.syncIx.getBatchLocked(keys)
}

func (s *syncIx) getBatchLocked(keys [][]byte) ([][]byte, []bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.(batchGetter).GetBatch(keys)
}

func (s *syncIx) Get(k []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.Get(k)
}

func (s *syncIx) Set(k, v []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ix.Set(k, v)
}

func (s *syncIx) Del(k []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.Del(k)
}

func (s *syncIx) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.Count()
}

// ConcurrentOps is the concurrent model-based harness: `workers`
// goroutines each own a disjoint key prefix and drive random
// Set/Del/Get streams against the index and a private model
// simultaneously — ownership makes every point result exactly
// verifiable mid-flight, with no tolerance windows. When the index is
// ordered, one more goroutine scans continuously, checking global key
// order and that every observed pair is internally consistent (the
// value must embed its key: a torn read or cross-key mix-up surfaces
// immediately). At the end the private models merge into a mutex-guarded
// oracle and the quiesced index must match it exactly — every key
// present exactly once with its latest value, none missing, none
// phantom.
//
// Run it under -race: the harness is as much a data-race probe as a
// linearizability check.
func ConcurrentOps(t *testing.T, ix MutableIndex, seed int64, workers, steps int, gen func(*rand.Rand) []byte) {
	t.Helper()
	if workers < 1 {
		workers = 1
	}
	oracle := struct {
		sync.Mutex
		m map[string]string
	}{m: map[string]string{}}

	var mutWG, scanWG sync.WaitGroup
	stop := make(chan struct{})
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	// valFor stamps the owning key into the value, so any observer can
	// validate a (key, value) pairing without knowing the model state.
	valFor := func(key []byte, i int) []byte {
		return []byte(fmt.Sprintf("%x=%d", key, i))
	}

	for w := 0; w < workers; w++ {
		mutWG.Add(1)
		go func(w int) {
			defer mutWG.Done()
			r := rand.New(rand.NewSource(seed + int64(w)*7919))
			model := map[string]string{}
			prefix := []byte{byte('A' + w)}
			for i := 0; i < steps; i++ {
				k := append(append([]byte(nil), prefix...), gen(r)...)
				switch r.Intn(10) {
				case 0, 1, 2, 3, 4:
					v := valFor(k, i)
					ix.Set(k, v)
					model[string(k)] = string(v)
				case 5, 6:
					got := ix.Del(k)
					_, want := model[string(k)]
					if got != want {
						fail("worker %d step %d: Del(%x) = %v, want %v", w, i, k, got, want)
						return
					}
					delete(model, string(k))
				default:
					v, ok := ix.Get(k)
					mv, mok := model[string(k)]
					if ok != mok || (ok && string(v) != mv) {
						fail("worker %d step %d: Get(%x) = %q,%v want %q,%v", w, i, k, v, ok, mv, mok)
						return
					}
				}
			}
			oracle.Lock()
			for k, v := range model {
				oracle.m[k] = v
			}
			oracle.Unlock()
		}(w)
	}

	// The scan observer: runs until the mutators finish, verifying
	// order and key/value pairing on states that are changing under it.
	// Scans are windowed and yield between passes so the observer cannot
	// starve mutators on a small GOMAXPROCS (or, behind Synchronized,
	// monopolize the serializing mutex).
	if sc, ok := ix.(scanner); ok {
		scanWG.Add(1)
		go func() {
			defer scanWG.Done()
			// Each pass resumes one key past where the previous window
			// ended, so successive passes cover the whole keyspace (every
			// worker's prefix), not just the lowest 256 keys over and over;
			// exhaustion wraps back to the smallest key.
			var start []byte
			for {
				select {
				case <-stop:
					return
				default:
				}
				var prev []byte
				n := 0
				sc.Scan(start, func(k, v []byte) bool {
					if prev != nil && bytes.Compare(prev, k) >= 0 {
						fail("concurrent scan out of order: %x then %x", prev, k)
						return false
					}
					prev = append(prev[:0], k...)
					if want := fmt.Sprintf("%x=", k); len(v) < len(want) || string(v[:len(want)]) != want {
						fail("concurrent scan: key %x paired with foreign value %q", k, v)
						return false
					}
					n++
					return n < 256
				})
				if n < 256 {
					start = nil // ran off the end: wrap around
				} else {
					// The immediate successor of the last emitted key.
					start = append(append(start[:0], prev...), 0)
				}
				runtime.Gosched()
			}
		}()
	}

	// The batched-read observer: hammers GetBatch under churn until the
	// mutators finish, with duplicate keys inside each batch, checking
	// result shape and that every found value embeds its key — a lane
	// mix-up or a torn seqlock bracket in a pipelined batch path surfaces
	// as a foreign value.
	if bg, ok := ix.(batchGetter); ok {
		scanWG.Add(1)
		go func() {
			defer scanWG.Done()
			r := rand.New(rand.NewSource(seed ^ 0x6a7c))
			keys := make([][]byte, 0, 48)
			for {
				select {
				case <-stop:
					return
				default:
				}
				keys = keys[:0]
				n := 8 + r.Intn(40)
				for i := 0; i < n; i++ {
					if i > 0 && r.Intn(8) == 0 {
						keys = append(keys, keys[r.Intn(i)])
						continue
					}
					prefix := byte('A' + r.Intn(workers))
					keys = append(keys, append([]byte{prefix}, gen(r)...))
				}
				vals, found := bg.GetBatch(keys)
				if len(vals) != len(keys) || len(found) != len(keys) {
					fail("concurrent GetBatch returned %d/%d results for %d keys",
						len(vals), len(found), len(keys))
					return
				}
				for i, k := range keys {
					if !found[i] {
						continue
					}
					if want := fmt.Sprintf("%x=", k); len(vals[i]) < len(want) || string(vals[i][:len(want)]) != want {
						fail("concurrent GetBatch: key %x paired with foreign value %q", k, vals[i])
						return
					}
				}
				runtime.Gosched()
			}
		}()
	}

	// Mutators finish first; only then are the observers released, so they
	// observe the full span of concurrent churn.
	mutWG.Wait()
	close(stop)
	scanWG.Wait()

	// Quiesced: the index must equal the merged oracle exactly.
	if t.Failed() {
		return
	}
	if int(ix.Count()) != len(oracle.m) {
		t.Fatalf("Count = %d, oracle has %d", ix.Count(), len(oracle.m))
	}
	for k, v := range oracle.m {
		got, ok := ix.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("final Get(%x) = %q,%v want %q (exactly-once violated)", k, got, ok, v)
		}
	}
	if sc, ok := ix.(scanner); ok {
		seen := 0
		var prev []byte
		sc.Scan(nil, func(k, v []byte) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("final scan out of order: %x then %x", prev, k)
			}
			prev = append(prev[:0], k...)
			mv, ok := oracle.m[string(k)]
			if !ok {
				t.Fatalf("final scan found phantom key %x", k)
			}
			if mv != string(v) {
				t.Fatalf("final scan: %x = %q, oracle has %q", k, v, mv)
			}
			seen++
			return true
		})
		if seen != len(oracle.m) {
			t.Fatalf("final scan saw %d keys, oracle has %d (exactly-once violated)", seen, len(oracle.m))
		}
	}
	// One quiesced batch over every surviving key: the batched path must
	// agree with the oracle exactly, like the scalar sweep above.
	if bg, ok := ix.(batchGetter); ok {
		keys := make([][]byte, 0, len(oracle.m))
		for k := range oracle.m {
			keys = append(keys, []byte(k))
		}
		vals, found := bg.GetBatch(keys)
		for i, k := range keys {
			if !found[i] || string(vals[i]) != oracle.m[string(k)] {
				t.Fatalf("final GetBatch(%x) = %q,%v want %q", k, vals[i], found[i], oracle.m[string(k)])
			}
		}
	}
}

// RecoverableStore is the durable surface RecoveryEquivalence drives:
// mutate, snapshot, close — then reopen through the harness's open
// callback and compare scans.
type RecoverableStore interface {
	Set(key, val []byte)
	Del([]byte) bool
	Scan(start []byte, fn func(k, v []byte) bool)
	Snapshot() error
	Close() error
}

// RecoveryEquivalence is the recovery oracle: however much concurrency
// the snapshot loader uses, it must be invisible in the recovered state.
// The harness builds a store through a random mutation stream with a
// mid-stream snapshot — so a recovery crosses both the snapshot
// bulk-load and the WAL tail replayed over it — closes it, then reopens
// the same directory once per entry in workerCounts (the open callback
// maps each count onto the backend's decode-worker knob). Every
// reopened store's full ordered scan must be byte-identical to the
// in-memory model, which also pins every worker count to the serial
// result when workerCounts includes 1.
func RecoveryEquivalence(t *testing.T, open func(decodeWorkers int) RecoverableStore,
	workerCounts []int, seed int64, steps int, gen func(*rand.Rand) []byte) {
	t.Helper()
	if len(workerCounts) == 0 {
		t.Fatal("RecoveryEquivalence needs at least one worker count")
	}

	// Build phase: the loader concurrency under test plays no part here
	// (the directory is fresh), so the first count serves.
	st := open(workerCounts[0])
	model := map[string]string{}
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		k := gen(r)
		if r.Intn(5) == 0 {
			st.Del(k)
			delete(model, string(k))
		} else {
			v := fmt.Sprintf("r%d", i)
			st.Set(k, []byte(v))
			model[string(k)] = v
		}
		// Snapshot mid-stream: everything before this line recovers from
		// the snapshot, everything after replays from the WAL tail.
		if i == steps/2 {
			if err := st.Snapshot(); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close after build: %v", err)
	}

	// The model's canonical dump, in the same framing the scans use.
	frame := func(b []byte, k, v string) []byte {
		b = append(b, byte(len(k)), byte(len(k)>>8), byte(len(k)>>16), byte(len(k)>>24))
		b = append(b, k...)
		b = append(b, byte(len(v)), byte(len(v)>>8), byte(len(v)>>16), byte(len(v)>>24))
		return append(b, v...)
	}
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var want []byte
	for _, k := range keys {
		want = frame(want, k, model[k])
	}

	for _, w := range workerCounts {
		st := open(w)
		var got []byte
		var prev []byte
		first := true
		st.Scan(nil, func(k, v []byte) bool {
			if !first && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("workers=%d: recovered scan out of order: %x then %x", w, prev, k)
			}
			first = false
			prev = append(prev[:0], k...)
			got = frame(got, string(k), string(v))
			return true
		})
		if err := st.Close(); err != nil {
			t.Fatalf("workers=%d: close: %v", w, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: recovered state diverges from the model (%d vs %d dump bytes)",
				w, len(got), len(want))
		}
	}
}

// Generators for the regimes that stress different index mechanics.

// GenBinary yields short keys over {0,1}: brutal for tries and anchors.
func GenBinary(r *rand.Rand) []byte {
	n := r.Intn(8)
	k := make([]byte, n)
	for i := range k {
		k[i] = byte(r.Intn(2))
	}
	return k
}

// GenASCII yields short keys over a small printable alphabet.
func GenASCII(r *rand.Rand) []byte {
	n := r.Intn(10)
	k := make([]byte, n)
	for i := range k {
		k[i] = 'a' + byte(r.Intn(4))
	}
	return k
}

// GenRandom yields fixed-length uniformly random keys.
func GenRandom(n int) func(*rand.Rand) []byte {
	return func(r *rand.Rand) []byte {
		k := make([]byte, n)
		r.Read(k)
		return k
	}
}

// GenPrefixed yields keys sharing long URL-like prefixes.
func GenPrefixed(r *rand.Rand) []byte {
	prefixes := []string{
		"http://www.example.com/articles/",
		"http://www.example.com/users/",
		"https://cdn.example.org/assets/img/",
	}
	return []byte(fmt.Sprintf("%s%05d", prefixes[r.Intn(len(prefixes))], r.Intn(3000)))
}
