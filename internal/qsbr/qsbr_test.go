package qsbr

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEnterLeave(t *testing.T) {
	q := New()
	s := q.Enter()
	if s == nil {
		t.Fatal("Enter returned nil slot")
	}
	if got := q.ActiveReaders(); got != 1 {
		t.Fatalf("ActiveReaders = %d, want 1", got)
	}
	q.Leave(s)
	if got := q.ActiveReaders(); got != 0 {
		t.Fatalf("ActiveReaders after Leave = %d, want 0", got)
	}
}

func TestSlotsRoundUp(t *testing.T) {
	q := NewWithSlots(3)
	if q.Slots() != 4 {
		t.Fatalf("slots = %d, want 4", q.Slots())
	}
	q = NewWithSlots(1)
	if q.Slots() != 2 {
		t.Fatalf("slots = %d, want 2", q.Slots())
	}
}

func TestSynchronizeNoReaders(t *testing.T) {
	q := New()
	e0 := q.Epoch()
	q.Synchronize()
	if q.Epoch() != e0+1 {
		t.Fatalf("epoch = %d, want %d", q.Epoch(), e0+1)
	}
}

// TestSynchronizeWaitsForReader verifies the core guarantee: a reader
// section that began before Synchronize blocks it until Leave.
func TestSynchronizeWaitsForReader(t *testing.T) {
	q := New()
	s := q.Enter()

	done := make(chan struct{})
	go func() {
		q.Synchronize()
		close(done)
	}()

	select {
	case <-done:
		t.Fatal("Synchronize returned while a reader was active")
	case <-time.After(20 * time.Millisecond):
	}

	q.Leave(s)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Synchronize did not return after reader left")
	}
}

// TestNewReaderDoesNotBlockSynchronize: a reader that enters after the epoch
// bump must not stall the grace period.
func TestNewReaderDoesNotBlockSynchronize(t *testing.T) {
	q := New()
	// Hold a slot, start Synchronize, then enter a fresh reader before
	// releasing the first. The fresh reader carries the new epoch.
	old := q.Enter()
	done := make(chan struct{})
	go func() {
		q.Synchronize()
		close(done)
	}()
	time.Sleep(5 * time.Millisecond) // let Synchronize bump the epoch
	fresh := q.Enter()
	q.Leave(old)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Synchronize blocked on a reader that entered after the epoch bump")
	}
	q.Leave(fresh)
}

// TestGracePeriodProtectsPointerSwap models the actual Wormhole usage: a
// writer swaps a published pointer, synchronizes, then mutates the retired
// object. Readers must never observe the mutation while holding the object.
func TestGracePeriodProtectsPointerSwap(t *testing.T) {
	type table struct {
		val   int64
		dirty atomic.Bool // set only while the table is supposed to be unobserved
	}
	q := NewWithSlots(64)
	var cur atomic.Pointer[table]
	t1, t2 := &table{val: 1}, &table{val: 2}
	cur.Store(t1)

	var violations atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := q.Enter()
				tb := cur.Load()
				if tb.dirty.Load() {
					violations.Add(1)
				}
				// Simulate read work.
				for i := 0; i < 32; i++ {
					_ = tb.val
				}
				if tb.dirty.Load() {
					violations.Add(1)
				}
				q.Leave(s)
			}
		}()
	}

	spare := t2
	for i := 0; i < 200; i++ {
		live := cur.Load()
		cur.Store(spare)
		q.Synchronize()
		// live is now unobserved; mutating it must be invisible.
		live.dirty.Store(true)
		live.val = int64(i)
		live.dirty.Store(false)
		spare = live
	}
	close(stop)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("readers observed %d dirty tables; grace period is broken", v)
	}
}

func TestRefresh(t *testing.T) {
	q := New()
	s := q.Enter()
	e0 := s.state.Load()
	done := make(chan struct{})
	go func() {
		q.Synchronize()
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	q.Refresh(s) // reader re-announces: now carries the bumped epoch
	if got := s.state.Load(); got <= e0 {
		t.Fatalf("Refresh did not advance slot epoch: %d <= %d", got, e0)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Synchronize blocked by a refreshed reader")
	}
	q.Leave(s)
}

// TestManyConcurrentReaders exceeds the slot count to exercise probing.
func TestManyConcurrentReaders(t *testing.T) {
	q := NewWithSlots(4)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s := q.Enter()
				q.Leave(s)
			}
		}()
	}
	wg.Wait()
	if got := q.ActiveReaders(); got != 0 {
		t.Fatalf("ActiveReaders = %d after all leave, want 0", got)
	}
}

func TestConcurrentSynchronize(t *testing.T) {
	q := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				q.Synchronize()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				s := q.Enter()
				q.Leave(s)
			}
		}()
	}
	wg.Wait()
}

func BenchmarkEnterLeave(b *testing.B) {
	q := New()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s := q.Enter()
			q.Leave(s)
		}
	})
}

func BenchmarkSynchronizeUncontended(b *testing.B) {
	q := New()
	for i := 0; i < b.N; i++ {
		q.Synchronize()
	}
}
