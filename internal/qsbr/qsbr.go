// Package qsbr implements quiescent-state-based reclamation (QSBR) grace
// periods, the RCU flavor Wormhole (§2.5) uses to let readers traverse the
// current MetaTrieHT without locks while a writer retires, waits out, and
// then reuses the previous copy.
//
// Go's garbage collector reclaims unreachable memory on its own, but
// Wormhole does not discard the retired meta table — it mutates it in place
// and republishes it as the next spare. That reuse is only safe after every
// reader that could still hold the old pointer has finished, which is
// exactly a grace period.
//
// Readers are goroutines, and Go offers no per-goroutine registration hook,
// so reader sections acquire one of a fixed array of cache-line-padded epoch
// slots with a single compare-and-swap. The starting probe position is
// derived from the address of a stack variable, which is distinct per
// goroutine stack, so unrelated goroutines rarely collide on a slot.
package qsbr

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// DefaultSlots is the slot-array size used by New. It bounds the number of
// concurrent reader sections; additional readers spin briefly until a slot
// frees up. 512 is far beyond any realistic GOMAXPROCS.
const DefaultSlots = 512

// Slot is one reader registration cell. A Slot is exclusively owned by a
// single reader section between Enter and Leave.
type Slot struct {
	// state is 0 when the slot is free, otherwise the global epoch the
	// reader observed when it entered.
	state atomic.Uint64
	_     [56]byte // pad to a cache line so slots never false-share
}

// QSBR tracks a global epoch and a fixed set of reader slots.
type QSBR struct {
	epoch atomic.Uint64
	slots []Slot
	mask  uint64
}

// New returns a QSBR domain with DefaultSlots reader slots.
func New() *QSBR { return NewWithSlots(DefaultSlots) }

// NewWithSlots returns a QSBR domain with n reader slots, rounded up to a
// power of two (minimum 2).
func NewWithSlots(n int) *QSBR {
	size := 2
	for size < n {
		size <<= 1
	}
	q := &QSBR{slots: make([]Slot, size), mask: uint64(size - 1)}
	// Epoch 0 is reserved to mean "offline" in slot state, so the global
	// epoch starts at 1.
	q.epoch.Store(1)
	return q
}

// stackHint returns a probe seed that differs between goroutines: the
// address of a local variable lands on the calling goroutine's stack.
// Stacks may move, so this is only a locality hint, never a correctness
// requirement.
//
//go:nosplit
func stackHint() uint64 {
	var b byte
	return uint64(uintptr(unsafe.Pointer(&b)) >> 7)
}

// Enter begins a reader section and returns the acquired slot. The caller
// must load any RCU-protected pointer after Enter returns and call Leave
// when it no longer dereferences that pointer.
func (q *QSBR) Enter() *Slot {
	i := stackHint()
	for spins := 0; ; spins++ {
		s := &q.slots[i&q.mask]
		if s.state.Load() == 0 {
			e := q.epoch.Load()
			if s.state.CompareAndSwap(0, e) {
				return s
			}
		}
		i++
		if spins&63 == 63 {
			runtime.Gosched()
		}
	}
}

// Leave ends the reader section that acquired s.
func (q *QSBR) Leave(s *Slot) {
	s.state.Store(0)
}

// Refresh re-announces the current epoch on an already-held slot. A reader
// that re-loads the protected pointer mid-section (e.g. a lookup retry)
// should Refresh first so it does not stall writers behind its old epoch.
func (q *QSBR) Refresh(s *Slot) {
	s.state.Store(q.epoch.Load())
}

// Synchronize waits for a full grace period: every reader section that began
// before the call (and could therefore hold a previously published pointer)
// has finished. Reader sections that begin after Synchronize starts do not
// block it, because they observe the bumped epoch.
func (q *QSBR) Synchronize() {
	target := q.epoch.Add(1)
	for i := range q.slots {
		s := &q.slots[i]
		for spins := 0; ; spins++ {
			v := s.state.Load()
			if v == 0 || v >= target {
				break
			}
			if spins < 128 {
				runtime.Gosched()
				continue
			}
			// A reader section is running long (preempted goroutine);
			// back off politely instead of burning the CPU.
			time.Sleep(10 * time.Microsecond)
		}
	}
}

// Epoch reports the current global epoch; exposed for tests and stats.
func (q *QSBR) Epoch() uint64 { return q.epoch.Load() }

// ActiveReaders counts slots currently held; exposed for tests and stats.
func (q *QSBR) ActiveReaders() int {
	n := 0
	for i := range q.slots {
		if q.slots[i].state.Load() != 0 {
			n++
		}
	}
	return n
}
