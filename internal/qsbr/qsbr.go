// Package qsbr implements quiescent-state-based reclamation (QSBR) grace
// periods, the RCU flavor Wormhole (§2.5) uses to let readers traverse the
// current MetaTrieHT without locks while a writer retires, waits out, and
// then reuses the previous copy.
//
// Go's garbage collector reclaims unreachable memory on its own, but
// Wormhole does not discard the retired meta table — it mutates it in place
// and republishes it as the next spare. That reuse is only safe after every
// reader that could still hold the old pointer has finished, which is
// exactly a grace period.
//
// Readers are goroutines, and Go offers no per-goroutine registration hook,
// so reader sections run on cache-line-padded epoch slots. There are two
// ways to hold one:
//
//   - Enter/Leave claims a slot with a compare-and-swap per reader section
//     — the right shape for one-shot readers;
//   - Pin claims a slot once and parks it between sections, so a
//     long-lived goroutine (a server connection, a benchmark worker) pays
//     the claim once and each subsequent section costs two uncontended
//     plain stores on its own cache line. This is the amortization that
//     keeps the read path free of shared read-modify-write traffic.
//
// The slot array grows on demand (in appended banks, so existing slots
// never move), which makes the number of concurrent pins unbounded.
package qsbr

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// DefaultSlots is the initial slot-bank size used by New. Additional banks
// are appended when every existing slot is claimed, so this bounds nothing
// — it only sizes the first allocation. 512 is far beyond any realistic
// GOMAXPROCS.
const DefaultSlots = 512

// Slot states. Values >= firstEpoch are the global epoch the reader
// observed when its current section began.
const (
	slotFree   = 0 // unclaimed
	slotParked = 1 // claimed by a Pin, between reader sections (quiescent)
	firstEpoch = 2
)

// Slot is one reader registration cell, exclusively owned by a single
// reader between Enter/Leave or Pin/Unpin.
type Slot struct {
	// state is slotFree, slotParked, or the epoch the reader observed.
	state atomic.Uint64
	_     [56]byte // pad to a cache line so slots never false-share
}

// bank is one fixed slot array. Banks are only ever appended, never
// resized, so a *Slot stays valid for the life of the QSBR domain.
type bank struct {
	slots []Slot
	mask  uint64
	next  atomic.Pointer[bank]
}

// QSBR tracks a global epoch and a growable set of reader slots.
type QSBR struct {
	epoch atomic.Uint64
	head  *bank
	grow  sync.Mutex
}

// New returns a QSBR domain with DefaultSlots initial reader slots.
func New() *QSBR { return NewWithSlots(DefaultSlots) }

// NewWithSlots returns a QSBR domain whose first slot bank holds n slots,
// rounded up to a power of two (minimum 2).
func NewWithSlots(n int) *QSBR {
	size := 2
	for size < n {
		size <<= 1
	}
	q := &QSBR{head: &bank{slots: make([]Slot, size), mask: uint64(size - 1)}}
	// States 0 and 1 are reserved (free, parked), so the epoch starts at 2.
	q.epoch.Store(firstEpoch)
	return q
}

// stackHint returns a probe seed that differs between goroutines: the
// address of a local variable lands on the calling goroutine's stack.
// Stacks may move, so this is only a locality hint, never a correctness
// requirement. The pointer is laundered through a uintptr immediately so
// the variable itself does not escape to the heap.
//
//go:nosplit
func stackHint() uint64 {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	runtime.KeepAlive(&b)
	return uint64(p >> 7)
}

// probesPerBank bounds how many slots acquire tries in one bank before
// moving on; small enough that a saturated bank is abandoned quickly,
// large enough that collisions in a half-full bank stay rare.
const probesPerBank = 64

// acquire claims a free slot, growing the slot list when every existing
// slot is taken. The claimed state is the current epoch (online) or
// slotParked, per pinned.
func (q *QSBR) acquire(pinned bool) *Slot {
	i := stackHint()
	for {
		last := q.head
		for b := q.head; b != nil; b = b.next.Load() {
			last = b
			probes := len(b.slots)
			if probes > probesPerBank {
				probes = probesPerBank
			}
			for p := 0; p < probes; p++ {
				s := &b.slots[(i+uint64(p))&b.mask]
				if s.state.Load() != slotFree {
					continue
				}
				to := uint64(slotParked)
				if !pinned {
					to = q.epoch.Load()
				}
				if s.state.CompareAndSwap(slotFree, to) {
					return s
				}
			}
		}
		q.growBanks(last)
	}
}

// growBanks appends a new bank (double the previous size) after last,
// unless another goroutine already did.
func (q *QSBR) growBanks(last *bank) {
	q.grow.Lock()
	defer q.grow.Unlock()
	if last.next.Load() != nil {
		return // lost the race; retry the probe loop with the new bank
	}
	size := len(last.slots) * 2
	last.next.Store(&bank{slots: make([]Slot, size), mask: uint64(size - 1)})
}

// Enter begins a one-shot reader section and returns the acquired slot.
// The caller must load any RCU-protected pointer after Enter returns and
// call Leave when it no longer dereferences that pointer. Long-lived
// goroutines should prefer Pin, which amortizes the slot claim.
func (q *QSBR) Enter() *Slot {
	return q.acquire(false)
}

// Leave ends the reader section that acquired s via Enter, freeing the
// slot.
func (q *QSBR) Leave(s *Slot) {
	s.state.Store(slotFree)
}

// Refresh re-announces the current epoch on an online slot. A reader that
// re-loads the protected pointer mid-section (e.g. a lookup retry) should
// Refresh first so it does not stall writers behind its old epoch.
func (q *QSBR) Refresh(s *Slot) {
	s.state.Store(q.epoch.Load())
}

// Pin claims a slot for long-term reuse and returns a handle. The slot
// starts parked (quiescent): it never blocks writers until Enter puts it
// online. A Pin is exclusively owned — its methods must not be called
// concurrently — and must be released with Unpin.
func (q *QSBR) Pin() *Pin {
	return &Pin{q: q, s: q.acquire(true)}
}

// Pin is a long-lived reader registration: one slot, claimed once, reused
// across many reader sections.
type Pin struct {
	q *QSBR
	s *Slot
}

// Enter begins a reader section on the pinned slot and returns it (for
// Refresh). It costs one epoch load and one store to the pin's own cache
// line — no read-modify-write on shared state.
func (p *Pin) Enter() *Slot {
	p.s.state.Store(p.q.epoch.Load())
	return p.s
}

// Leave ends the current reader section, parking the slot. A parked pin
// is quiescent: writers' grace periods skip over it, so a pin may stay
// claimed across arbitrary idle time (a blocked connection read) without
// stalling anyone.
func (p *Pin) Leave() {
	p.s.state.Store(slotParked)
}

// Unpin releases the pinned slot entirely. The Pin must not be used
// afterwards.
func (p *Pin) Unpin() {
	p.s.state.Store(slotFree)
	p.s = nil
}

// Synchronize waits for a full grace period: every reader section that began
// before the call (and could therefore hold a previously published pointer)
// has finished or refreshed. Sections that begin after Synchronize starts do
// not block it, because they observe the bumped epoch; parked pins never
// block it.
func (q *QSBR) Synchronize() {
	target := q.epoch.Add(1)
	for b := q.head; b != nil; b = b.next.Load() {
		for i := range b.slots {
			s := &b.slots[i]
			for spins := 0; ; spins++ {
				v := s.state.Load()
				if v <= slotParked || v >= target {
					break
				}
				if spins < 128 {
					runtime.Gosched()
					continue
				}
				// A reader section is running long (preempted goroutine);
				// back off politely instead of burning the CPU.
				time.Sleep(10 * time.Microsecond)
			}
		}
	}
}

// Epoch reports the current global epoch; exposed for tests and stats.
func (q *QSBR) Epoch() uint64 { return q.epoch.Load() }

// ActiveReaders counts slots currently inside a reader section (parked
// pins excluded); exposed for tests and stats.
func (q *QSBR) ActiveReaders() int {
	n := 0
	for b := q.head; b != nil; b = b.next.Load() {
		for i := range b.slots {
			if b.slots[i].state.Load() >= firstEpoch {
				n++
			}
		}
	}
	return n
}

// ReaderLag reports how many epochs behind the global epoch the slowest
// active reader section is (0 when no section is running). A lag that
// stays large across scrapes means a reader is stuck inside a section,
// stalling grace periods — the writer-side symptom is Synchronize
// spinning in its backoff loop.
func (q *QSBR) ReaderLag() uint64 {
	epoch := q.epoch.Load()
	var min uint64
	have := false
	for b := q.head; b != nil; b = b.next.Load() {
		for i := range b.slots {
			if v := b.slots[i].state.Load(); v >= firstEpoch && (!have || v < min) {
				min, have = v, true
			}
		}
	}
	if !have || min >= epoch {
		return 0
	}
	return epoch - min
}

// Slots reports the current slot capacity across all banks; exposed for
// tests.
func (q *QSBR) Slots() int {
	n := 0
	for b := q.head; b != nil; b = b.next.Load() {
		n += len(b.slots)
	}
	return n
}
