package btree

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/repro/wormhole/internal/indextest"
)

func TestBasic(t *testing.T) {
	b := New(0)
	for i := 0; i < 1000; i++ {
		b.Set([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if b.Count() != 1000 {
		t.Fatalf("Count = %d", b.Count())
	}
	for i := 0; i < 1000; i++ {
		v, ok := b.Get([]byte(fmt.Sprintf("k%04d", i)))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get k%04d failed", i)
		}
	}
	if _, ok := b.Get([]byte("missing")); ok {
		t.Fatal("phantom key")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if b.Height() < 2 {
		t.Fatalf("height %d after 1000 keys with fanout 128", b.Height())
	}
}

func TestSmallFanoutSplitsAndMerges(t *testing.T) {
	b := New(4)
	const n = 500
	for i := 0; i < n; i++ {
		b.Set([]byte(fmt.Sprintf("k%04d", i)), []byte("x"))
		if i%50 == 0 {
			if err := b.CheckInvariants(); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		}
	}
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for j, i := range perm {
		if !b.Del([]byte(fmt.Sprintf("k%04d", i))) {
			t.Fatalf("Del k%04d lost", i)
		}
		if j%37 == 0 {
			if err := b.CheckInvariants(); err != nil {
				t.Fatalf("delete %d: %v", j, err)
			}
		}
	}
	if b.Count() != 0 || b.Height() != 1 {
		t.Fatalf("after drain: count %d height %d", b.Count(), b.Height())
	}
}

func TestScanWindow(t *testing.T) {
	b := New(8)
	for i := 0; i < 300; i++ {
		b.Set([]byte(fmt.Sprintf("k%04d", i*2)), []byte{1})
	}
	var got []string
	b.Scan([]byte("k0101"), func(k, v []byte) bool {
		got = append(got, string(k))
		return len(got) < 3
	})
	if fmt.Sprint(got) != "[k0102 k0104 k0106]" {
		t.Fatalf("scan = %v", got)
	}
}

func TestModelAgainstReference(t *testing.T) {
	for _, fan := range []int{4, 8, 128} {
		for gi, gen := range []func(*rand.Rand) []byte{
			indextest.GenBinary, indextest.GenASCII,
			indextest.GenRandom(8), indextest.GenPrefixed,
		} {
			t.Run(fmt.Sprintf("fanout%d-gen%d", fan, gi), func(t *testing.T) {
				b := New(fan)
				indextest.OrderedOps(t, b, int64(fan*10+gi), 3000, gen)
				if err := b.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestFootprint(t *testing.T) {
	b := New(0)
	for i := 0; i < 100; i++ {
		b.Set([]byte(fmt.Sprintf("key-%04d", i)), []byte("0123456789"))
	}
	if fp := b.Footprint(); fp < 100*18 {
		t.Fatalf("Footprint = %d implausibly small", fp)
	}
}
