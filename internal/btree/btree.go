// Package btree implements an in-memory B+ tree with linked leaves,
// standing in for the STX B+ tree the paper benchmarks against (§4). Keys
// are byte strings; all keys live in leaf nodes; internal nodes hold copies
// of separator keys. The fanout defaults to 128, the setting the paper
// found best on its testbed.
//
// Like the original, the structure has no built-in concurrency control:
// concurrent readers are safe only while no writer runs.
package btree

import (
	"bytes"
	"fmt"
	"sort"
	"unsafe"
)

// DefaultFanout matches the paper's B+ tree configuration.
const DefaultFanout = 128

// Tree is a B+ tree. The zero value is not usable; call New.
type Tree struct {
	root   node
	fanout int
	min    int
	count  int64
	height int
}

type node interface{ isNode() }

type inner struct {
	// kids[i] holds keys k with keys[i-1] <= k < keys[i] (virtual ±inf at
	// the ends); len(kids) == len(keys)+1.
	keys [][]byte
	kids []node
}

type leaf struct {
	keys [][]byte
	vals [][]byte
	next *leaf
	prev *leaf
}

func (*inner) isNode() {}
func (*leaf) isNode()  {}

// New returns an empty tree with the given fanout (0 means DefaultFanout).
func New(fanout int) *Tree {
	if fanout < 4 {
		fanout = DefaultFanout
	}
	return &Tree{root: &leaf{}, fanout: fanout, min: fanout / 2, height: 1}
}

// Count returns the number of keys.
func (t *Tree) Count() int64 { return t.count }

// Height returns the number of levels, leaves included.
func (t *Tree) Height() int { return t.height }

// childIndex returns which child of n covers key k.
func (n *inner) childIndex(k []byte) int {
	return sort.Search(len(n.keys), func(i int) bool {
		return bytes.Compare(n.keys[i], k) > 0
	})
}

func (l *leaf) search(k []byte) (int, bool) {
	i := sort.Search(len(l.keys), func(i int) bool {
		return bytes.Compare(l.keys[i], k) >= 0
	})
	return i, i < len(l.keys) && bytes.Equal(l.keys[i], k)
}

func (t *Tree) findLeaf(k []byte) *leaf {
	n := t.root
	for {
		switch v := n.(type) {
		case *inner:
			n = v.kids[v.childIndex(k)]
		case *leaf:
			return v
		}
	}
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, bool) {
	l := t.findLeaf(key)
	if i, ok := l.search(key); ok {
		return l.vals[i], true
	}
	return nil, false
}

// Set inserts or replaces key.
func (t *Tree) Set(key, val []byte) {
	sep, right := t.insert(t.root, key, val)
	if right != nil {
		t.root = &inner{keys: [][]byte{sep}, kids: []node{t.root, right}}
		t.height++
	}
}

// insert descends to the leaf, inserting; on overflow the node splits and
// the promoted separator plus the new right sibling bubble up.
func (t *Tree) insert(n node, key, val []byte) ([]byte, node) {
	switch v := n.(type) {
	case *leaf:
		i, ok := v.search(key)
		if ok {
			v.vals[i] = val
			return nil, nil
		}
		v.keys = append(v.keys, nil)
		copy(v.keys[i+1:], v.keys[i:])
		v.keys[i] = key
		v.vals = append(v.vals, nil)
		copy(v.vals[i+1:], v.vals[i:])
		v.vals[i] = val
		t.count++
		if len(v.keys) <= t.fanout {
			return nil, nil
		}
		mid := len(v.keys) / 2
		r := &leaf{
			keys: append([][]byte{}, v.keys[mid:]...),
			vals: append([][]byte{}, v.vals[mid:]...),
			next: v.next,
			prev: v,
		}
		v.keys = v.keys[:mid:mid]
		v.vals = v.vals[:mid:mid]
		if r.next != nil {
			r.next.prev = r
		}
		v.next = r
		return r.keys[0], r
	case *inner:
		ci := v.childIndex(key)
		sep, right := t.insert(v.kids[ci], key, val)
		if right == nil {
			return nil, nil
		}
		v.keys = append(v.keys, nil)
		copy(v.keys[ci+1:], v.keys[ci:])
		v.keys[ci] = sep
		v.kids = append(v.kids, nil)
		copy(v.kids[ci+2:], v.kids[ci+1:])
		v.kids[ci+1] = right
		if len(v.kids) <= t.fanout {
			return nil, nil
		}
		mid := len(v.keys) / 2
		up := v.keys[mid]
		r := &inner{
			keys: append([][]byte{}, v.keys[mid+1:]...),
			kids: append([]node{}, v.kids[mid+1:]...),
		}
		v.keys = v.keys[:mid:mid]
		v.kids = v.kids[: mid+1 : mid+1]
		return up, r
	}
	return nil, nil
}

// Del removes key, rebalancing bottom-up (borrow from a sibling, else
// merge), and reports whether the key was present.
func (t *Tree) Del(key []byte) bool {
	ok := t.remove(t.root, key)
	if r, isInner := t.root.(*inner); isInner && len(r.kids) == 1 {
		t.root = r.kids[0]
		t.height--
	}
	return ok
}

func (t *Tree) remove(n node, key []byte) bool {
	v, isInner := n.(*inner)
	if !isInner {
		l := n.(*leaf)
		i, ok := l.search(key)
		if !ok {
			return false
		}
		l.keys = append(l.keys[:i], l.keys[i+1:]...)
		l.vals = append(l.vals[:i], l.vals[i+1:]...)
		t.count--
		return true
	}
	ci := v.childIndex(key)
	if !t.remove(v.kids[ci], key) {
		return false
	}
	t.rebalance(v, ci)
	return true
}

func nodeSize(n node) int {
	switch v := n.(type) {
	case *leaf:
		return len(v.keys)
	case *inner:
		return len(v.kids)
	}
	return 0
}

// rebalance fixes up v.kids[ci] if it dropped below the minimum.
func (t *Tree) rebalance(v *inner, ci int) {
	if nodeSize(v.kids[ci]) >= t.min {
		return
	}
	// Try borrowing from the left sibling, then the right, else merge.
	if ci > 0 && nodeSize(v.kids[ci-1]) > t.min {
		t.borrowLeft(v, ci)
		return
	}
	if ci < len(v.kids)-1 && nodeSize(v.kids[ci+1]) > t.min {
		t.borrowRight(v, ci)
		return
	}
	if ci > 0 {
		t.mergeInto(v, ci-1)
	} else {
		t.mergeInto(v, ci)
	}
}

func (t *Tree) borrowLeft(v *inner, ci int) {
	switch c := v.kids[ci].(type) {
	case *leaf:
		l := v.kids[ci-1].(*leaf)
		last := len(l.keys) - 1
		c.keys = append([][]byte{l.keys[last]}, c.keys...)
		c.vals = append([][]byte{l.vals[last]}, c.vals...)
		l.keys = l.keys[:last]
		l.vals = l.vals[:last]
		v.keys[ci-1] = c.keys[0]
	case *inner:
		l := v.kids[ci-1].(*inner)
		last := len(l.kids) - 1
		c.keys = append([][]byte{v.keys[ci-1]}, c.keys...)
		c.kids = append([]node{l.kids[last]}, c.kids...)
		v.keys[ci-1] = l.keys[last-1]
		l.keys = l.keys[:last-1]
		l.kids = l.kids[:last]
	}
}

func (t *Tree) borrowRight(v *inner, ci int) {
	switch c := v.kids[ci].(type) {
	case *leaf:
		r := v.kids[ci+1].(*leaf)
		c.keys = append(c.keys, r.keys[0])
		c.vals = append(c.vals, r.vals[0])
		r.keys = r.keys[1:]
		r.vals = r.vals[1:]
		v.keys[ci] = r.keys[0]
	case *inner:
		r := v.kids[ci+1].(*inner)
		c.keys = append(c.keys, v.keys[ci])
		c.kids = append(c.kids, r.kids[0])
		v.keys[ci] = r.keys[0]
		r.keys = r.keys[1:]
		r.kids = r.kids[1:]
	}
}

// mergeInto merges v.kids[i+1] into v.kids[i].
func (t *Tree) mergeInto(v *inner, i int) {
	switch a := v.kids[i].(type) {
	case *leaf:
		b := v.kids[i+1].(*leaf)
		a.keys = append(a.keys, b.keys...)
		a.vals = append(a.vals, b.vals...)
		a.next = b.next
		if b.next != nil {
			b.next.prev = a
		}
	case *inner:
		b := v.kids[i+1].(*inner)
		a.keys = append(a.keys, v.keys[i])
		a.keys = append(a.keys, b.keys...)
		a.kids = append(a.kids, b.kids...)
	}
	v.keys = append(v.keys[:i], v.keys[i+1:]...)
	v.kids = append(v.kids[:i+1], v.kids[i+2:]...)
}

// Scan visits keys >= start in ascending order until fn returns false.
func (t *Tree) Scan(start []byte, fn func(key, val []byte) bool) {
	l := t.findLeaf(start)
	i, _ := l.search(start)
	for l != nil {
		for ; i < len(l.keys); i++ {
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
		l = l.next
		i = 0
	}
}

// Footprint returns approximate heap bytes (Figure 16 accounting).
func (t *Tree) Footprint() int64 {
	return t.footprint(t.root)
}

func (t *Tree) footprint(n node) int64 {
	ptr := int64(unsafe.Sizeof(uintptr(0)))
	slice := int64(unsafe.Sizeof([]byte{}))
	switch v := n.(type) {
	case *leaf:
		total := int64(unsafe.Sizeof(leaf{}))
		total += int64(cap(v.keys)+cap(v.vals)) * slice
		for i := range v.keys {
			total += int64(len(v.keys[i]) + len(v.vals[i]))
		}
		return total
	case *inner:
		total := int64(unsafe.Sizeof(inner{}))
		total += int64(cap(v.keys))*slice + int64(cap(v.kids))*2*ptr
		for _, k := range v.keys {
			total += int64(len(k))
		}
		for _, c := range v.kids {
			total += t.footprint(c)
		}
		return total
	}
	return 0
}

// CheckInvariants validates ordering, balance and leaf-chain consistency;
// it returns nil when the tree is well-formed (test support).
func (t *Tree) CheckInvariants() error {
	return t.check(t.root, nil, nil, t.height)
}

func (t *Tree) check(n node, lo, hi []byte, depth int) error {
	switch v := n.(type) {
	case *leaf:
		if depth != 1 {
			return errf("leaves at different depths")
		}
		for i, k := range v.keys {
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return errf("key %q below bound %q", k, lo)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return errf("key %q above bound %q", k, hi)
			}
			if i > 0 && bytes.Compare(v.keys[i-1], k) >= 0 {
				return errf("leaf keys unsorted")
			}
		}
	case *inner:
		if len(v.kids) != len(v.keys)+1 {
			return errf("inner arity mismatch")
		}
		if n != t.root && len(v.kids) < t.min {
			return errf("inner underflow")
		}
		for i := range v.kids {
			var clo, chi []byte
			if i == 0 {
				clo = lo
			} else {
				clo = v.keys[i-1]
			}
			if i == len(v.keys) {
				chi = hi
			} else {
				chi = v.keys[i]
			}
			if err := t.check(v.kids[i], clo, chi, depth-1); err != nil {
				return err
			}
		}
	}
	return nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
