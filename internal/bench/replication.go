package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/repro/wormhole/internal/netkv"
	"github.com/repro/wormhole/internal/repl"
	"github.com/repro/wormhole/internal/shard"
)

// Replication measures the leader→follower pipeline on Az1:
//
//   - "leader set (replicated)": concurrent random Sets on the leader
//     while a follower streams — what replication costs the write path
//     (it should cost ~nothing: the sender reads the WAL files the
//     durable store writes anyway);
//   - "steady lag": the follower's record lag sampled every 10ms during
//     that run, reported as mean records behind (MOPS column holds the
//     record count; it is a depth, not a rate);
//   - "follower get": random point lookups against the converged
//     follower — the read capacity a replica adds;
//   - "catchup tail": close the follower, write half the keyset through
//     the leader, restart the follower, and report the tail-replay rate
//     in M records/s;
//   - "catchup snapshot": same, but the leader snapshots (GC'ing the
//     follower's generations) before the restart, forcing the
//     snapshot+tail path.
//
// Stores persist under Config.Dir (default: a temp directory, removed
// afterwards).
func Replication(c *Config) {
	keys := c.Keyset("Az1")
	threads := c.Threads

	root := c.Dir
	if root == "" {
		tmp, err := os.MkdirTemp("", "whbench-replication-*")
		if err != nil {
			c.printf("replication: %v\n", err)
			return
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}

	report := func(op string, val float64) {
		c.printf("%-24s%10.2f\n", op, val)
		c.record(Result{
			Exp: "replication", Op: op, Index: "wormhole-sharded", Threads: threads,
			Keys: len(keys), MOPS: val,
		})
	}

	leader, err := shard.Open(shard.Options{Dir: filepath.Join(root, "leader"), Sample: keys})
	if err != nil {
		c.printf("replication: open leader: %v\n", err)
		return
	}
	defer leader.Close()
	src := repl.NewSource(leader)
	srv, err := netkv.ServeOpts("127.0.0.1:0", leader, netkv.ServerOptions{Subscribe: src.ServeSubscriber})
	if err != nil {
		c.printf("replication: serve leader: %v\n", err)
		return
	}
	defer srv.Close()
	defer src.Close()

	fdir := filepath.Join(root, "follower")
	startFollower := func() (*repl.Follower, bool) {
		f, err := repl.Start(repl.Options{
			Leader: srv.Addr(), Dir: fdir, AckInterval: 10 * time.Millisecond,
		})
		if err != nil {
			c.printf("replication: start follower: %v\n", err)
			return nil, false
		}
		return f, true
	}
	waitCaughtUp := func(f *repl.Follower, want int64) bool {
		deadline := time.Now().Add(2 * time.Minute)
		for f.Store().Count() != want {
			if time.Now().After(deadline) {
				c.printf("replication: follower stuck at %d/%d keys\n", f.Store().Count(), want)
				return false
			}
			time.Sleep(2 * time.Millisecond)
		}
		return true
	}

	c.printf("replication: keyset Az1, %d keys, %d writer goroutines\n", len(keys), threads)
	f, ok := startFollower()
	if !ok {
		return
	}

	// Steady state: leader write throughput with the stream attached, and
	// the follower's lag sampled alongside.
	var issued atomic.Int64
	stopSampling := make(chan struct{})
	samples := make(chan float64, 1)
	go func() {
		var sum float64
		var n int
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopSampling:
				if n > 0 {
					sum /= float64(n)
				}
				samples <- sum
				return
			case <-t.C:
				if lag := issued.Load() - f.RecordsApplied(); lag > 0 {
					sum += float64(lag)
				}
				n++
			}
		}
	}()
	val := []byte("replication-val")
	n := len(keys)
	mops := Throughput(threads, c.Duration, c.Seed, func(_ int, r *Rng) {
		leader.Set(keys[r.Intn(n)], val)
		issued.Add(1)
	})
	close(stopSampling)
	meanLag := <-samples
	report("leader set (replicated)", mops)
	report("steady lag (records)", meanLag)

	// Fill in the whole keyset so the read phase looks up present keys
	// only, and let the follower drain.
	loadStriped(leader, keys, threads)
	if !waitCaughtUp(f, leader.Count()) {
		f.Close()
		return
	}
	report("follower get", LookupThroughput(f.Store(), keys, threads, c.Duration, c.Seed))

	// Catch-up after a restart, tail-replay path: the follower misses a
	// batch of fresh keys (distinct, so convergence is a count match),
	// reconnects, and drains the WAL tail.
	if err := f.Close(); err != nil {
		c.printf("replication: close follower: %v\n", err)
		return
	}
	fresh := func(prefix string, n int) [][]byte {
		out := make([][]byte, n)
		for i := range out {
			out[i] = []byte(fmt.Sprintf("%s%07d", prefix, i))
		}
		return out
	}
	tail := fresh("cu-tail-", len(keys)/2)
	loadStriped(leader, tail, threads)
	start := time.Now()
	f2, ok := startFollower()
	if !ok {
		return
	}
	if !waitCaughtUp(f2, leader.Count()) {
		f2.Close()
		return
	}
	report("catchup tail (Mrec/s)", float64(len(tail))/time.Since(start).Seconds()/1e6)

	// Catch-up below the GC horizon: the leader snapshots away the
	// generations the follower's position points into, so the restart
	// must stream snapshot + tail.
	if err := f2.Close(); err != nil {
		c.printf("replication: close follower: %v\n", err)
		return
	}
	loadStriped(leader, fresh("cu-snap-", len(keys)/2), threads)
	if err := leader.Snapshot(); err != nil {
		c.printf("replication: snapshot: %v\n", err)
		return
	}
	start = time.Now()
	f3, ok := startFollower()
	if !ok {
		return
	}
	defer f3.Close()
	if !waitCaughtUp(f3, leader.Count()) {
		return
	}
	rate := float64(leader.Count()) / time.Since(start).Seconds() / 1e6
	report("catchup snapshot (Mkey/s)", rate)
	// Count convergence can be observed an instant before the follower
	// processes the snapshot-end message that bumps the counter; give the
	// stream a moment before judging which path ran.
	for wait := time.Now().Add(2 * time.Second); f3.SnapshotsApplied() == 0 && time.Now().Before(wait); {
		time.Sleep(time.Millisecond)
	}
	if f3.SnapshotsApplied() == 0 {
		c.printf("  (warning: snapshot catch-up round used the tail path)\n")
	}
}
