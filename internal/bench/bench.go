// Package bench is the measurement harness behind cmd/whbench and the
// root-level Go benchmarks: deterministic workload generation, a
// multi-threaded throughput runner, and one experiment function per table
// and figure in the paper's evaluation (§4).
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/wormhole/internal/index"
	"github.com/repro/wormhole/internal/keyset"
	"github.com/repro/wormhole/internal/metrics"
)

// Config scales the experiments. Defaults (via Normalize) are laptop-sized:
// the paper's keysets hold 10–500 million keys and its runs use a 32-core
// server; shapes, not absolute numbers, are the reproduction target.
type Config struct {
	Keys     int           // keys per keyset
	Threads  int           // concurrent worker goroutines
	Duration time.Duration // measurement window per cell
	Seed     int64
	Batch    int // netkv request batch (Figure 12)
	// Shards: an explicitly requested shard count that shard-sweep adds
	// to its default ladder; 0 means the ladder alone.
	Shards int
	// Interleave: an explicitly requested GetBatch interleave depth that
	// batchread adds to its default ladder; 0 means the ladder alone.
	Interleave int
	// Dir roots the durability experiment's store directories; empty
	// means a temp directory removed after the run.
	Dir string
	// Sync filters the durability experiment's rows (comma-separated
	// from {none, interval, always, recover}); empty means all.
	Sync string
	// SegBytes: an explicitly requested snapshot segment size that the
	// recovery experiment adds to its default ladder; 0 means the ladder
	// alone.
	SegBytes int
	// DecodeWorkers: an explicitly requested snapshot decode-worker count
	// that the recovery experiment adds to its default ladder; 0 means
	// the ladder alone.
	DecodeWorkers int
	Out           io.Writer // result sink
	// Record, when non-nil, receives every machine-readable benchmark
	// cell an experiment produces (the -json trajectory output).
	Record func(Result)
}

// Normalize fills defaults in place.
func (c *Config) Normalize() {
	if c.Keys <= 0 {
		c.Keys = 200_000
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
		if c.Threads > 16 {
			c.Threads = 16 // the paper caps at one 16-core NUMA node
		}
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Batch <= 0 {
		c.Batch = 800
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Rng is a per-worker xorshift generator: cheap enough that key selection
// does not distort index throughput measurements.
type Rng struct{ s uint64 }

// NewRng seeds a generator (seed must be non-zero after mixing).
func NewRng(seed uint64) *Rng { return &Rng{s: seed*2654435761 + 1} }

// Next returns the next pseudo-random value.
func (r *Rng) Next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// Intn returns a value in [0, n).
func (r *Rng) Intn(n int) int { return int(r.Next() % uint64(n)) }

// Throughput runs op concurrently on `threads` workers for roughly dur and
// returns million operations per second. op receives the worker id and the
// worker's generator and performs exactly one operation.
func Throughput(threads int, dur time.Duration, seed int64, op func(tid int, r *Rng)) float64 {
	var total atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			r := NewRng(uint64(seed) + uint64(tid)*0x9e3779b9)
			ops := int64(0)
			for {
				for i := 0; i < 64; i++ {
					op(tid, r)
				}
				ops += 64
				if time.Now().After(deadline) {
					break
				}
			}
			total.Add(ops)
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return float64(total.Load()) / elapsed / 1e6
}

// BuildIndex instantiates a registered index and loads keys into it
// (value = key, as the paper's index-only evaluation does).
func BuildIndex(name string, keys [][]byte) index.Index {
	info, ok := index.Lookup(name)
	if !ok {
		panic("bench: unknown index " + name)
	}
	ix := info.New()
	for _, k := range keys {
		ix.Set(k, k)
	}
	return ix
}

// LookupThroughput measures uniform random point lookups (the Figure 9/10
// workload: "search keys are uniformly selected from a keyset").
func LookupThroughput(ix index.Index, keys [][]byte, threads int, dur time.Duration, seed int64) float64 {
	n := len(keys)
	return Throughput(threads, dur, seed, func(_ int, r *Rng) {
		k := keys[r.Intn(n)]
		if _, ok := ix.Get(k); !ok {
			panic("bench: loaded key missing")
		}
	})
}

// InsertThroughput measures single-threaded insertion of keys into a fresh
// index (Figure 15's insertion-only workload).
func InsertThroughput(name string, keys [][]byte) float64 {
	info, _ := index.Lookup(name)
	ix := info.New()
	start := time.Now()
	for _, k := range keys {
		ix.Set(k, k)
	}
	el := time.Since(start).Seconds()
	runtime.KeepAlive(ix)
	return float64(len(keys)) / el / 1e6
}

// MixedThroughput measures the Figure 17 workload: insertPct percent of
// operations insert previously-unloaded keys, the rest look up loaded
// ones. Half of the keyset is preloaded; inserts consume the second half
// and then wrap around as updates.
func MixedThroughput(name string, keys [][]byte, insertPct, threads int, dur time.Duration, seed int64) float64 {
	half := len(keys) / 2
	ix := BuildIndex(name, keys[:half])
	return MixedOnIndex(ix, keys, insertPct, threads, dur, seed)
}

// MixedOnIndex runs the Figure 17 mixed workload against an index already
// loaded with the first half of keys; the second half is the insert pool.
func MixedOnIndex(ix index.Index, keys [][]byte, insertPct, threads int, dur time.Duration, seed int64) float64 {
	half := len(keys) / 2
	var cursor atomic.Int64
	pool := keys[half:]
	return Throughput(threads, dur, seed, func(_ int, r *Rng) {
		if r.Intn(100) < insertPct {
			i := int(cursor.Add(1)-1) % len(pool)
			ix.Set(pool[i], pool[i])
		} else {
			ix.Get(keys[r.Intn(half)])
		}
	})
}

// BatchLookupThroughput measures batched point lookups on a sharded store:
// every worker repeatedly fills a batch of uniformly random loaded keys
// and issues one GetBatch, the server-side analogue of netkv's batching.
// The returned figure is MOPS of individual lookups, not batches.
func BatchLookupThroughput(bx index.Batcher, keys [][]byte, batch, threads int, dur time.Duration, seed int64) float64 {
	n := len(keys)
	batches := make([][][]byte, threads)
	for t := range batches {
		batches[t] = make([][]byte, batch)
	}
	mbatches := Throughput(threads, dur, seed, func(tid int, r *Rng) {
		b := batches[tid]
		for i := range b {
			b[i] = keys[r.Intn(n)]
		}
		_, found := bx.GetBatch(b)
		for _, ok := range found {
			if !ok {
				panic("bench: loaded key missing from batch lookup")
			}
		}
	})
	return mbatches * float64(batch)
}

// RangeThroughput measures Figure 18's workload: seek a uniformly random
// existing key and scan the following (up to) 100 keys. One full warm-up
// scan first: Wormhole sorts leaf append regions lazily on first touch
// (§3.2's delayed batched sorting), a cost the paper's long runs amortize
// but a short measurement window would conflate with steady-state scans.
func RangeThroughput(ix index.Ordered, keys [][]byte, threads int, dur time.Duration, seed int64) float64 {
	n := len(keys)
	ix.Scan(nil, func(_, _ []byte) bool { return true })
	return Throughput(threads, dur, seed, func(_ int, r *Rng) {
		cnt := 0
		ix.Scan(keys[r.Intn(n)], func(_, _ []byte) bool {
			cnt++
			return cnt < 100
		})
	})
}

// MemoryUsage loads keys into a fresh index and reports (analytic
// footprint, heap delta) in bytes, plus the paper's baseline formula
// sum(keylen + pointer) (Figure 16).
func MemoryUsage(name string, keys [][]byte) (footprint, heapDelta, baseline int64) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	ix := BuildIndex(name, keys)
	runtime.GC()
	runtime.ReadMemStats(&m1)
	footprint = ix.Footprint()
	heapDelta = int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	for _, k := range keys {
		baseline += int64(len(k)) + 8
	}
	runtime.KeepAlive(ix)
	return footprint, heapDelta, baseline
}

// Keyset materializes a named keyset at the configured scale.
func (c *Config) Keyset(name string) [][]byte {
	spec, ok := keyset.Lookup(name)
	if !ok {
		panic("bench: unknown keyset " + name)
	}
	n := c.Keys
	// K8/K10 keys are 256 B and 1 KB; cap their count like Table 1 does to
	// keep total bytes comparable across keysets.
	switch name {
	case "K8":
		n = c.Keys / 4
	case "K10":
		n = c.Keys / 16
	}
	if n < 1000 {
		n = 1000
	}
	return spec.Gen(n, c.Seed)
}

func (c *Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// SampleLatency runs op single-threaded for roughly dur, timing every
// call into a metrics histogram, and returns the p50/p99/p999
// nanoseconds. It is a separate pass from the throughput loop on
// purpose: two clock reads per operation would deflate MOPS, so
// throughput and latency are measured on the same workload but never in
// the same loop.
func SampleLatency(dur time.Duration, op func()) (p50, p99, p999 float64) {
	h := metrics.NewHistogram()
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		for i := 0; i < 16; i++ {
			t0 := time.Now()
			op()
			h.ObserveNs(int64(time.Since(t0)))
		}
	}
	s := h.Snapshot()
	return s.Quantile(0.5), s.Quantile(0.99), s.Quantile(0.999)
}
