package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func tinyConfig(buf *bytes.Buffer) *Config {
	c := &Config{
		Keys: 1500, Threads: 2, Duration: 20 * time.Millisecond,
		Seed: 7, Batch: 64, Out: buf,
	}
	c.Normalize()
	return c
}

// TestAllExperimentsRun executes every registered experiment at tiny scale
// so the whole harness (including the netkv and memory paths) is covered
// by `go test`.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range Experiments() {
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			c := tinyConfig(&buf)
			e.Run(c)
			out := buf.String()
			if len(out) < 40 {
				t.Fatalf("experiment %s produced almost no output: %q", e.ID, out)
			}
			if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
				t.Fatalf("experiment %s produced invalid numbers:\n%s", e.ID, out)
			}
		})
	}
}

func TestThroughputCounts(t *testing.T) {
	mops := Throughput(2, 50*time.Millisecond, 1, func(tid int, r *Rng) {
		_ = r.Next()
	})
	if mops <= 0 {
		t.Fatalf("Throughput = %f", mops)
	}
}

func TestRngDeterminism(t *testing.T) {
	a, b := NewRng(5), NewRng(5)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("Rng nondeterministic")
		}
	}
	if NewRng(5).Intn(10) != NewRng(5).Intn(10) {
		t.Fatal("Intn nondeterministic")
	}
	c := NewRng(6)
	for i := 0; i < 1000; i++ {
		if v := c.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestBuildIndexLoadsEverything(t *testing.T) {
	var buf bytes.Buffer
	c := tinyConfig(&buf)
	keys := c.Keyset("Az1")
	ix := BuildIndex("wormhole", keys)
	if int(ix.Count()) != len(keys) {
		t.Fatalf("Count %d want %d", ix.Count(), len(keys))
	}
	for _, k := range keys[:100] {
		if _, ok := ix.Get(k); !ok {
			t.Fatalf("key missing after build")
		}
	}
}

func TestMemoryUsagePositive(t *testing.T) {
	var buf bytes.Buffer
	c := tinyConfig(&buf)
	keys := c.Keyset("K3")
	fp, _, base := MemoryUsage("btree", keys)
	if fp <= 0 || base != int64(len(keys))*(8+8) {
		t.Fatalf("MemoryUsage fp=%d base=%d", fp, base)
	}
}

func TestKeysetScaling(t *testing.T) {
	var buf bytes.Buffer
	c := tinyConfig(&buf)
	if n := len(c.Keyset("K10")); n != 1000 {
		t.Fatalf("K10 floor = %d, want 1000", n)
	}
	c.Keys = 64000
	if n := len(c.Keyset("K8")); n != 16000 {
		t.Fatalf("K8 scale = %d, want Keys/4", n)
	}
}
