package bench

import (
	"runtime"
	"time"

	"github.com/repro/wormhole/internal/index"
)

// ReadPath isolates the point-read path of the concurrent Wormhole — the
// §2.5 workload the seqlock/QSBR-pinning work targets. It measures, on
// Az1:
//
//   - "get": plain Get calls, one QSBR reader section per operation;
//   - "get-pinned": Get through a per-worker pinned read handle
//     (index.ReadPinner), the amortized path a server connection uses —
//     reported only when the index supports it;
//   - "set": single-threaded fresh-index insertion, to track the write
//     path's trajectory alongside the read path.
//
// The goroutine ladder always includes 8 even on smaller machines so the
// BENCH_*.json trajectory stays comparable across hosts.
func ReadPath(c *Config) {
	keys := c.Keyset("Az1")
	ix := BuildIndex("wormhole", keys)
	points := readPathThreads(c.Threads)

	// Settle the load phase's garbage so every row measures steady state
	// instead of racing the collector over construction debris.
	runtime.GC()
	getAllocs := allocsPerOp(2000, func() { ix.Get(keys[0]) })
	c.printf("read path: keyset Az1, %d keys (MOPS)\n", len(keys))
	c.printf("%-12s", "op/threads")
	for _, t := range points {
		c.printf("%8d", t)
	}
	c.printf("%14s\n", "allocs/op")

	row := func(op string, pts []int, allocs float64, sample func(), cell func(threads int) float64) {
		// Latency percentiles come from one single-threaded sampling pass
		// per operation (see SampleLatency); the throughput cells stay
		// clock-free. The same numbers annotate every thread count's cell.
		var p50, p99, p999 float64
		if sample != nil {
			p50, p99, p999 = SampleLatency(c.Duration/4, sample)
		}
		c.printf("%-12s", op)
		for _, t := range points {
			in := false
			for _, p := range pts {
				in = in || p == t
			}
			if !in {
				c.printf("%8s", "-")
				continue
			}
			// Bracket the cell with wall and process-CPU clocks: on a
			// shared host, steal time deflates wall-clock MOPS run to run,
			// while ops per CPU-second stays comparable — the trajectory
			// metric of record on noisy machines.
			w0, u0 := time.Now(), processCPUTime()
			mops := cell(t)
			wall, cpu := time.Since(w0), processCPUTime()-u0
			mopsCPU := mops
			if cpu > 0 && wall > 0 {
				mopsCPU = mops * wall.Seconds() / cpu.Seconds()
			}
			c.printf("%8.2f", mops)
			c.record(Result{
				Exp: "readpath", Op: op, Index: "wormhole", Threads: t,
				Keys: len(keys), MOPS: mops, MOPSCPU: mopsCPU,
				NsPerOp: 1e3 / mops, AllocsPerOp: allocs,
				P50Ns: p50, P99Ns: p99, P999Ns: p999,
			})
		}
		c.printf("%14.2f\n", allocs)
		if p50 > 0 {
			c.printf("%-12s p50 %.0fns  p99 %.0fns  p999 %.0fns (sampled 1 thread)\n",
				"  "+op+" lat", p50, p99, p999)
		}
	}

	n := len(keys)
	getRng := NewRng(uint64(c.Seed))
	row("get", points, getAllocs, func() { ix.Get(keys[getRng.Intn(n)]) }, func(t int) float64 {
		return LookupThroughput(ix, keys, t, c.Duration, c.Seed)
	})
	if rp, ok := ix.(index.ReadPinner); ok {
		h := rp.NewReadHandle()
		pinnedAllocs := allocsPerOp(2000, func() { h.Get(keys[0]) })
		pinRng := NewRng(uint64(c.Seed) + 1)
		row("get-pinned", points, pinnedAllocs, func() { h.Get(keys[pinRng.Intn(n)]) }, func(t int) float64 {
			return PinnedLookupThroughput(rp, keys, t, c.Duration, c.Seed)
		})
		h.Close()
	}

	setAllocs := func() float64 {
		info, _ := index.Lookup("wormhole")
		fresh := info.New()
		i := 0
		return allocsPerOp(2000, func() {
			fresh.Set(keys[i%len(keys)], keys[i%len(keys)])
			i++
		})
	}()
	setSample := func() func() {
		info, _ := index.Lookup("wormhole")
		fresh := info.New()
		i := 0
		return func() {
			fresh.Set(keys[i%n], keys[i%n])
			i++
		}
	}()
	row("set", []int{1}, setAllocs, setSample, func(int) float64 {
		return InsertThroughput("wormhole", keys)
	})
}

// PinnedLookupThroughput is LookupThroughput through per-worker pinned
// read handles: each worker claims one handle up front and reuses it for
// every lookup, the amortization a server grants each connection.
func PinnedLookupThroughput(rp index.ReadPinner, keys [][]byte, threads int, dur time.Duration, seed int64) float64 {
	n := len(keys)
	handles := make([]index.ReadHandle, threads)
	for i := range handles {
		handles[i] = rp.NewReadHandle()
	}
	defer func() {
		for _, h := range handles {
			h.Close()
		}
	}()
	return Throughput(threads, dur, seed, func(tid int, r *Rng) {
		if _, ok := handles[tid].Get(keys[r.Intn(n)]); !ok {
			panic("bench: loaded key missing")
		}
	})
}

// allocsPerOp reports the average heap allocations per call of f,
// measured on a single goroutine (testing.AllocsPerRun without importing
// package testing into the binary).
func allocsPerOp(n int, f func()) float64 {
	var m0, m1 runtime.MemStats
	f() // warm up: lazy growth, pools
	runtime.GC()
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		f()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(n)
}

// readPathThreads returns the doubling ladder 1,2,4,... that always
// reaches at least 8 and includes the configured ceiling.
func readPathThreads(limit int) []int {
	if limit < 8 {
		limit = 8
	}
	return threadPoints(limit)
}
