//go:build linux

package bench

import (
	"syscall"
	"time"
)

// processCPUTime returns the process's accumulated user+system CPU time.
// On shared or oversubscribed hosts wall-clock throughput varies with
// steal time; CPU-time-normalized throughput (see ReadPath) compares
// binaries fairly across such noise.
func processCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
