//go:build !linux

package bench

import "time"

// processCPUTime is unavailable off Linux; ReadPath then reports
// CPU-normalized throughput equal to wall-clock throughput.
func processCPUTime() time.Duration { return 0 }
