package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/repro/wormhole/internal/core"
)

// BatchRead sweeps the memory-level-parallel GetBatch pipeline against
// the scalar per-key loop, in one binary on one loaded index: rows are
// interleave depths (scalar = SetBatchInterleave(-1), which turns
// GetBatch into the sequential Get loop; pipeN keeps N lookups in
// flight through the hash → warm → LPM → leaf-probe stages), columns
// are batch sizes. The interleaving targets memory-level parallelism —
// overlapping the independent cache misses of neighboring lookups — an
// intra-thread effect, so the sweep runs one worker through a pinned
// Reader with preallocated result slices (the zero-alloc server path).
//
// An explicitly requested depth (the -interleave flag via
// Config.Interleave) joins the default ladder so it is always measured.
func BatchRead(c *Config) {
	keys := c.Keyset("Az1")
	w := core.New(core.DefaultOptions())
	for _, k := range keys {
		w.Set(k, k)
	}
	batches := []int{4, 16, 64, 256}
	type variant struct {
		label string
		depth int
	}
	depths := []variant{{"scalar", -1}, {"pipe4", 4}, {"pipe8", 8}, {"pipe16", 16}, {"pipe32", 32}}
	if n := c.Interleave; n > 0 {
		in := false
		for _, d := range depths {
			in = in || d.depth == n
		}
		if !in {
			depths = append(depths, variant{fmt.Sprintf("pipe%d", n), n})
		}
	}

	runtime.GC()
	c.printf("batched reads: keyset Az1, %d keys, 1 thread (MOPS of individual lookups)\n", len(keys))
	c.printf("%-12s", "depth/batch")
	for _, b := range batches {
		c.printf("%8d", b)
	}
	c.printf("%14s\n", "allocs/op")

	rd := w.NewReader()
	defer rd.Close()
	for _, d := range depths {
		w.SetBatchInterleave(d.depth)
		c.printf("%-12s", d.label)
		var allocs float64
		for bi, b := range batches {
			batch := make([][]byte, b)
			vals := make([][]byte, b)
			found := make([]bool, b)
			if bi == len(batches)-1 {
				// Allocations per individual lookup, on the largest batch;
				// the pooled pipeline scratch must keep this at zero.
				i := 0
				allocs = allocsPerOp(500, func() {
					for j := range batch {
						batch[j] = keys[(i*2654435761+j*40503)%len(keys)]
					}
					rd.GetBatch(batch, vals, found, nil)
					i++
				}) / float64(b)
			}
			// Wall and process-CPU clocks bracket each cell: ops per
			// CPU-second is the trajectory metric of record on shared hosts
			// (see readpath.go).
			w0, u0 := time.Now(), processCPUTime()
			mops := batchReadThroughput(w, keys, b, c.Duration, c.Seed)
			wall, cpu := time.Since(w0), processCPUTime()-u0
			mopsCPU := mops
			if cpu > 0 && wall > 0 {
				mopsCPU = mops * wall.Seconds() / cpu.Seconds()
			}
			// Per-lookup latency percentiles from a separate sampling
			// pass: time whole GetBatch calls, then divide by the batch
			// size (quantiles commute with the positive scaling, and
			// dividing after avoids sub-bucket truncation).
			lr := NewRng(uint64(c.Seed) + uint64(b))
			p50, p99, p999 := SampleLatency(c.Duration/4, func() {
				for j := range batch {
					batch[j] = keys[lr.Intn(len(keys))]
				}
				rd.GetBatch(batch, vals, found, nil)
			})
			p50, p99, p999 = p50/float64(b), p99/float64(b), p999/float64(b)
			c.printf("%8.2f", mops)
			c.record(Result{
				Exp: "batchread", Op: fmt.Sprintf("%s/b%d", d.label, b),
				Index: "wormhole", Threads: 1, Keys: len(keys),
				MOPS: mops, MOPSCPU: mopsCPU, NsPerOp: 1e3 / mops,
				AllocsPerOp: allocs,
				P50Ns:       p50, P99Ns: p99, P999Ns: p999,
			})
		}
		c.printf("%14.4f\n", allocs)
	}
	w.SetBatchInterleave(0) // restore the default for any later use
}

// batchReadThroughput measures uniform random batched lookups through a
// pinned Reader: one worker repeatedly fills a batch and issues one
// GetBatch into preallocated result slices. The returned figure is MOPS
// of individual lookups, not batches.
func batchReadThroughput(w *core.Wormhole, keys [][]byte, batch int, dur time.Duration, seed int64) float64 {
	n := len(keys)
	rd := w.NewReader()
	defer rd.Close()
	b := make([][]byte, batch)
	vals := make([][]byte, batch)
	found := make([]bool, batch)
	mbatches := Throughput(1, dur, seed, func(_ int, r *Rng) {
		for i := range b {
			b[i] = keys[r.Intn(n)]
		}
		rd.GetBatch(b, vals, found, nil)
		if !found[0] {
			panic("bench: loaded key missing from batched lookup")
		}
	})
	return mbatches * float64(batch)
}
