package bench

import (
	"github.com/repro/wormhole/internal/core"
	"github.com/repro/wormhole/internal/index"
)

// whDirect exposes a Wormhole with non-default options plus its Stats to
// the ablation experiments, bypassing the name registry.
type whDirect struct{ t *core.Wormhole }

func NewWormholeLeafCap(leafCap int) *whDirect {
	o := core.DefaultOptions()
	o.LeafCap = leafCap
	return &whDirect{t: core.New(o)}
}

// NewWormholeShortAnchors builds a Wormhole with the anchor-minimizing
// split-point policy (the paper's future-work optimization).
func NewWormholeShortAnchors() *whDirect {
	o := core.DefaultOptions()
	o.ShortAnchors = true
	return &whDirect{t: core.New(o)}
}

func (ix *whDirect) Get(k []byte) ([]byte, bool) { return ix.t.Get(k) }
func (ix *whDirect) Set(k, v []byte)             { ix.t.Set(k, v) }
func (ix *whDirect) Del(k []byte) bool           { return ix.t.Del(k) }
func (ix *whDirect) Count() int64                { return ix.t.Count() }
func (ix *whDirect) Footprint() int64            { return ix.t.Footprint() }
func (ix *whDirect) Stats() core.Stats           { return ix.t.Stats() }

// NewWormholeLockedScans builds a Wormhole whose range scans are forced
// through the per-leaf locks — the pre-snapshot scan path, kept as the
// in-binary baseline the scanpath experiment compares against.
func NewWormholeLockedScans() *whDirect {
	o := core.DefaultOptions()
	o.LockedScans = true
	return &whDirect{t: core.New(o)}
}

func (ix *whDirect) Scan(s []byte, fn func(k, v []byte) bool) {
	ix.t.Scan(s, fn)
}

func (ix *whDirect) ScanDesc(s []byte, fn func(k, v []byte) bool) {
	ix.t.ScanDesc(s, fn)
}

// NewReadHandle implements index.ReadPinner (core.Reader also satisfies
// index.ScanHandle, so scans ride the pinned slot too).
func (ix *whDirect) NewReadHandle() index.ReadHandle { return ix.t.NewReader() }
