package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/wal"
)

// Recovery measures what the v2 segmented snapshot format buys at
// restart, on the common-prefix Url keyset where prefix compression has
// something to compress:
//
//   - "v1 w=1": the monolithic uncompressed snapshot, the PR-4 baseline;
//   - "v2 seg=... w=N": prefix-compressed segments at each segment-size
//     and decode-worker point.
//
// Every variant builds the same store — 90% of the keyset in the
// snapshot, the last 10% as a WAL tail, the state a periodically
// snapshotting server restarts with — then closes and times the reopen.
// Rows report recovered pairs per second (MOPS), seconds per million
// keys, and the snapshot's on-disk bytes (Result.Bytes), so one run
// answers both trajectory questions: is v2 recovery faster, and are its
// files smaller.
//
// Config.SegBytes adds a segment size to the default {256KiB, 1MiB}
// ladder; Config.DecodeWorkers adds a worker count to {1, 2, 8}.
// Stores persist under Config.Dir (default: a temp directory, removed
// afterwards).
func Recovery(c *Config) {
	keys := c.Keyset("Url")
	root := c.Dir
	if root == "" {
		tmp, err := os.MkdirTemp("", "whbench-recovery-*")
		if err != nil {
			c.printf("recovery: %v\n", err)
			return
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}

	segSizes := []int{256 << 10, 1 << 20}
	if n := c.SegBytes; n > 0 && n != segSizes[0] && n != segSizes[1] {
		segSizes = append(segSizes, n)
		sort.Ints(segSizes)
	}
	workerCounts := []int{1, 2, 8}
	if n := c.DecodeWorkers; n > 0 && n != 1 && n != 2 && n != 8 {
		workerCounts = append(workerCounts, n)
		sort.Ints(workerCounts)
	}

	type variant struct {
		label   string
		build   wal.Options
		workers []int
	}
	variants := []variant{
		// Decode workers cannot touch a monolithic v1 snapshot: one row.
		{"v1", wal.Options{SnapshotV1: true}, []int{1}},
	}
	for _, sb := range segSizes {
		variants = append(variants, variant{
			label:   fmt.Sprintf("v2 seg=%dKiB", sb>>10),
			build:   wal.Options{SegmentBytes: sb},
			workers: workerCounts,
		})
	}

	c.printf("recovery: keyset Url, %d keys, 90%% snapshot + 10%% WAL tail\n", len(keys))
	c.printf("%-22s %10s %12s %12s %10s\n",
		"format", "MOPS", "s/Mkeys", "snap bytes", "segments")
	cut := len(keys) * 9 / 10
	for _, v := range variants {
		dir := filepath.Join(root, sanitize(v.label))
		build := v.build
		build.Sync = wal.SyncNone
		st, err := shard.Open(shard.Options{Dir: dir, Sample: keys, Durability: build})
		if err != nil {
			c.printf("recovery: open %s: %v\n", dir, err)
			return
		}
		loadStriped(st, keys[:cut], c.Threads)
		if err := st.Snapshot(); err != nil {
			c.printf("recovery: snapshot: %v\n", err)
			st.Close()
			return
		}
		loadStriped(st, keys[cut:], c.Threads)
		if err := st.Close(); err != nil {
			c.printf("recovery: close: %v\n", err)
			return
		}
		snapBytes := snapshotBytes(dir)

		for _, w := range v.workers {
			start := time.Now()
			st2, err := shard.Open(shard.Options{
				Dir:        dir,
				Durability: wal.Options{DecodeWorkers: w},
			})
			el := time.Since(start)
			if err != nil {
				c.printf("recovery: reopen %s: %v\n", dir, err)
				return
			}
			if int(st2.Count()) != len(keys) {
				c.printf("recovery: %s lost keys: %d != %d\n", v.label, st2.Count(), len(keys))
				st2.Close()
				return
			}
			segs := st2.RecoveredSegments()
			st2.Close()
			mops := float64(len(keys)) / el.Seconds() / 1e6
			op := fmt.Sprintf("%s w=%d", v.label, w)
			c.printf("%-22s %10.2f %12.2f %12d %10d\n",
				op, mops, el.Seconds()*1e6/float64(len(keys)), snapBytes, segs)
			c.record(Result{
				Exp: "recovery", Op: op, Index: "wormhole-sharded", Threads: w,
				Keys: len(keys), MOPS: mops, NsPerOp: 1e3 / mops, Bytes: snapBytes,
			})
		}
		os.RemoveAll(dir)
	}
}

// snapshotBytes sums the on-disk size of every snapshot artifact under
// dir — the v1/v2 .snap files (monolithic pairs or the v2 footer) and
// the v2 .seg segment files — across all shard subdirectories.
func snapshotBytes(dir string) int64 {
	var n int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		switch filepath.Ext(info.Name()) {
		case ".snap", ".seg":
			n += info.Size()
		}
		return nil
	})
	return n
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == ' ' || c == '=':
			out = append(out, '-')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
