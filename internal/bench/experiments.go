package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/repro/wormhole/internal/adapters"
	"github.com/repro/wormhole/internal/index"
	"github.com/repro/wormhole/internal/keyset"
	"github.com/repro/wormhole/internal/netkv"
	"github.com/repro/wormhole/internal/shard"
)

// KeysetNames is the Table 1 keyset order used by every figure.
var KeysetNames = []string{"Az1", "Az2", "Url", "K3", "K4", "K6", "K8", "K10"}

// Experiments maps experiment ids (table1, fig09..fig18, ablation-*) to
// their runners, in paper order.
func Experiments() []struct {
	ID   string
	Desc string
	Run  func(c *Config)
} {
	return []struct {
		ID   string
		Desc string
		Run  func(c *Config)
	}{
		{"table1", "keyset inventory (Table 1)", Table1},
		{"fig09", "lookup throughput vs thread count, Az1 (Figure 9)", Fig09},
		{"fig10", "lookup throughput per keyset (Figure 10)", Fig10},
		{"fig11", "optimization ablation (Figure 11)", Fig11},
		{"fig12", "lookup throughput over the networked KV store (Figure 12)", Fig12},
		{"fig13", "Wormhole vs Cuckoo hash lookups (Figure 13)", Fig13},
		{"fig14", "anchor-length sensitivity, Kshort vs Klong (Figure 14)", Fig14},
		{"fig15", "single-thread insertion throughput (Figure 15)", Fig15},
		{"fig16", "memory usage (Figure 16)", Fig16},
		{"fig17", "mixed lookups/insertions, Masstree vs Wormhole (Figure 17)", Fig17},
		{"fig18", "range lookups, 100-key scans (Figure 18)", Fig18},
		{"ablation-leafcap", "leaf capacity sweep (extension)", AblationLeafCap},
		{"ablation-unsafe", "thread-safe vs unsafe overhead (extension)", AblationUnsafe},
		{"ablation-shortanchors", "anchor-minimizing split points (paper's future work)", AblationShortAnchors},
		{"shard-sweep", "sharded store: shard count × goroutines scaling (extension)", ShardSweep},
		{"readpath", "point-read path: plain vs pinned-reader lookups (perf trajectory)", ReadPath},
		{"batchread", "batched reads: scalar loop vs prefetch-interleaved GetBatch pipeline (perf trajectory)", BatchRead},
		{"scanpath", "range-scan path: lock-free vs locked, plain vs pinned (perf trajectory)", ScanPath},
		{"durability", "durable store: volatile vs WAL sync policies, plus recovery rate (extension)", Durability},
		{"recovery", "snapshot format v2: recovery rate and file size vs v1, segment size × decode workers (perf trajectory)", Recovery},
		{"replication", "leader→follower WAL shipping: steady lag, catch-up, follower reads (extension)", Replication},
		{"failover", "leader kill → auto-promotion: time to writable, client-observed gap (extension)", Failover},
	}
}

// ShardSweep compares the single-instance Wormhole with the range-
// partitioned sharded store across shard counts and goroutine counts on
// Az1: point lookups (where Wormhole's RCU readers already scale and
// sharding must at least break even), a 50%-insert mixed workload (where
// per-shard meta writer locks and QSBR domains pay off), and batched
// lookups through GetBatch (shard-grouped amortization).
func ShardSweep(c *Config) {
	keys := c.Keyset("Az1")
	points := threadPoints(c.Threads)
	// An explicitly requested count (the -shards flag via Config.Shards)
	// joins the default ladder so it is always measured.
	shardCounts := []int{2, 4, 8}
	if n := c.Shards; n > 0 && n != 2 && n != 4 && n != 8 {
		shardCounts = append(shardCounts, n)
		sort.Ints(shardCounts)
	}
	header := func(title string) {
		c.printf("%s\n%-18s", title, "goroutines")
		for _, t := range points {
			c.printf("%8d", t)
		}
		c.printf("\n")
	}
	buildSharded := func(n int, load [][]byte) *shard.Store {
		st := shard.New(shard.Options{Shards: n, Sample: keys})
		st.SetBatch(load, load) // the store's own parallel loading path
		return st
	}
	printRow := func(label string, cells []float64) {
		c.printf("%-18s", label)
		for _, v := range cells {
			c.printf("%8.2f", v)
		}
		c.printf("\n")
	}

	// Measure the read-only sections one store at a time — only one fully
	// loaded store (plus the unsharded baseline row's) is ever alive, so
	// peak memory stays at one index regardless of the ladder length —
	// and buffer the rows so the output keeps its section layout.
	lookupRows := make([][]float64, len(shardCounts))
	batchedRows := make([][]float64, len(shardCounts))
	var balShards int
	var balLo, balHi int64
	for i, n := range shardCounts {
		st := buildSharded(n, keys)
		if i == len(shardCounts)-1 {
			balShards = st.NumShards()
			balLo, balHi = int64(1<<62), int64(0)
			for _, cnt := range st.ShardCounts() {
				balLo, balHi = min(balLo, cnt), max(balHi, cnt)
			}
		}
		for _, t := range points {
			lookupRows[i] = append(lookupRows[i],
				LookupThroughput(st, keys, t, c.Duration, c.Seed))
		}
		for _, t := range points {
			batchedRows[i] = append(batchedRows[i],
				BatchLookupThroughput(st, keys, c.Batch, t, c.Duration, c.Seed))
		}
	}
	var wormholeRow []float64
	{
		ix := BuildIndex("wormhole", keys)
		for _, t := range points {
			wormholeRow = append(wormholeRow,
				LookupThroughput(ix, keys, t, c.Duration, c.Seed))
		}
	}

	c.printf("Shard sweep: keyset Az1, %d keys\n", len(keys))
	c.printf("sampled-anchor balance at %d shards: min %d, max %d keys/shard\n\n",
		balShards, balLo, balHi)

	header("point lookups (MOPS):")
	printRow("wormhole", wormholeRow)
	for i, n := range shardCounts {
		printRow(fmt.Sprintf("sharded-%d", n), lookupRows[i])
	}

	// The mixed section builds a fresh half-loaded store per cell because
	// its inserts mutate the index.
	header("mixed 50% inserts (MOPS):")
	half := len(keys) / 2
	mixedRow := func(label string, build func() index.Index) {
		c.printf("%-18s", label)
		for _, t := range points {
			c.printf("%8.2f", MixedOnIndex(build(), keys, 50, t, c.Duration, c.Seed))
		}
		c.printf("\n")
	}
	mixedRow("wormhole", func() index.Index { return BuildIndex("wormhole", keys[:half]) })
	for _, n := range shardCounts {
		n := n
		mixedRow(fmt.Sprintf("sharded-%d", n), func() index.Index { return buildSharded(n, keys[:half]) })
	}

	header(fmt.Sprintf("batched lookups via GetBatch, batch %d (MOPS):", c.Batch))
	for i, n := range shardCounts {
		printRow(fmt.Sprintf("sharded-%d", n), batchedRows[i])
	}
}

// AblationShortAnchors measures the paper's deferred split-point
// optimization: anchor statistics and lookup throughput with and without
// anchor-length minimization, on the prefix-heavy keysets where it matters.
func AblationShortAnchors(c *Config) {
	c.printf("Ablation: anchor-minimizing split points, %d threads\n", c.Threads)
	c.printf("%-8s %-14s %10s %12s %12s %14s\n",
		"keyset", "variant", "MOPS", "avg anchor", "meta items", "meta footprint")
	for _, ks := range []string{"Az1", "Url", "K6"} {
		keys := c.Keyset(ks)
		for _, short := range []bool{false, true} {
			var ix *whDirect
			if short {
				ix = NewWormholeShortAnchors()
			} else {
				ix = NewWormholeLeafCap(0)
			}
			for _, k := range keys {
				ix.Set(k, k)
			}
			mops := LookupThroughput(ix, keys, c.Threads, c.Duration, c.Seed)
			st := ix.Stats()
			label := "paper"
			if short {
				label = "short-anchors"
			}
			c.printf("%-8s %-14s %10.2f %12.1f %12d %14d\n",
				ks, label, mops, st.AvgAnchorLen, st.MetaItems, st.MetaBuckets)
		}
	}
}

// Table1 prints the keyset inventory at the configured scale.
func Table1(c *Config) {
	c.printf("Table 1: keysets (scaled to %d base keys, seed %d)\n", c.Keys, c.Seed)
	c.printf("%-6s %10s %10s %12s  %s\n", "name", "keys", "avg len", "MB", "description")
	for _, spec := range keyset.Table1() {
		keys := c.Keyset(spec.Name)
		st := keyset.Summarize(keys)
		c.printf("%-6s %10d %10.1f %12.1f  %s\n",
			spec.Name, st.Keys, st.AvgLen, float64(st.Bytes)/1e6, spec.Description)
	}
}

// Fig09 sweeps thread counts on Az1 for the five indexes plus
// Wormhole-unsafe, the paper's scalability experiment.
func Fig09(c *Config) {
	keys := c.Keyset("Az1")
	names := append(append([]string{}, adapters.Baselines()...), "wormhole-unsafe")
	c.printf("Figure 9: lookup throughput (MOPS) vs threads, keyset Az1\n")
	c.printf("%-16s", "threads")
	points := threadPoints(c.Threads)
	for _, t := range points {
		c.printf("%8d", t)
	}
	c.printf("\n")
	for _, name := range names {
		ix := BuildIndex(name, keys)
		c.printf("%-16s", name)
		for _, t := range points {
			mops := LookupThroughput(ix, keys, t, c.Duration, c.Seed)
			c.printf("%8.2f", mops)
		}
		c.printf("\n")
	}
}

// Fig10 measures lookup throughput for every keyset and baseline.
func Fig10(c *Config) {
	c.printf("Figure 10: lookup throughput (MOPS), %d threads\n", c.Threads)
	runMatrix(c, adapters.Baselines(), func(name string, keys [][]byte) float64 {
		ix := BuildIndex(name, keys)
		return LookupThroughput(ix, keys, c.Threads, c.Duration, c.Seed)
	})
}

// Fig11 measures the cumulative optimization ladder of §3 against the B+
// tree baseline.
func Fig11(c *Config) {
	c.printf("Figure 11: optimization ablation, lookup MOPS, %d threads\n", c.Threads)
	names := append([]string{"btree"}, adapters.AblationOrder...)
	runMatrix(c, names, func(name string, keys [][]byte) float64 {
		ix := BuildIndex(name, keys)
		return LookupThroughput(ix, keys, c.Threads, c.Duration, c.Seed)
	})
}

// Fig12 runs the lookup workload through the netkv server over TCP
// loopback with the paper's batch size.
func Fig12(c *Config) {
	c.printf("Figure 12: networked lookup throughput (MOPS), %d client threads, batch %d\n",
		c.Threads, c.Batch)
	runMatrix(c, adapters.Baselines(), func(name string, keys [][]byte) float64 {
		return netLookupThroughput(c, name, keys)
	})
}

func netLookupThroughput(c *Config, name string, keys [][]byte) float64 {
	ix := BuildIndex(name, keys)
	srv, err := netkv.Serve("127.0.0.1:0", ix)
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(c.Duration)
	for t := 0; t < c.Threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			cl, err := netkv.Dial(srv.Addr())
			if err != nil {
				panic(err)
			}
			defer cl.Close()
			r := NewRng(uint64(c.Seed) + uint64(tid)*977)
			ops := int64(0)
			for time.Now().Before(deadline) {
				for i := 0; i < c.Batch; i++ {
					cl.QueueGet(keys[r.Intn(len(keys))])
				}
				if _, err := cl.Flush(); err != nil {
					panic(err)
				}
				ops += int64(c.Batch)
			}
			mu.Lock()
			total += ops
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	return float64(total) / time.Since(start).Seconds() / 1e6
}

// Fig13 compares Wormhole with the Cuckoo hash table on point lookups.
func Fig13(c *Config) {
	c.printf("Figure 13: Wormhole vs Cuckoo hash, lookup MOPS, %d threads\n", c.Threads)
	runMatrix(c, []string{"wormhole", "cuckoo"}, func(name string, keys [][]byte) float64 {
		ix := BuildIndex(name, keys)
		return LookupThroughput(ix, keys, c.Threads, c.Duration, c.Seed)
	})
}

// Fig14 sweeps key length for random-content (Kshort) and zero-filled
// (Klong) keys on Wormhole and Cuckoo, showing anchor-length sensitivity.
func Fig14(c *Config) {
	lengths := []int{8, 16, 32, 64, 128, 256, 512}
	n := c.Keys / 4
	if n < 1000 {
		n = 1000
	}
	c.printf("Figure 14: lookup MOPS vs key length (%d keys, %d threads)\n", n, c.Threads)
	c.printf("%-20s", "index/keyset")
	for _, l := range lengths {
		c.printf("%8d", l)
	}
	c.printf("\n")
	type variant struct {
		label string
		gen   func(length int) [][]byte
	}
	variants := []variant{
		{"wormhole Kshort", func(l int) [][]byte { return keyset.GenKshort(l, n, c.Seed) }},
		{"wormhole Klong", func(l int) [][]byte { return keyset.GenKlong(l, n, c.Seed) }},
		{"cuckoo Kshort", func(l int) [][]byte { return keyset.GenKshort(l, n, c.Seed) }},
		{"cuckoo Klong", func(l int) [][]byte { return keyset.GenKlong(l, n, c.Seed) }},
	}
	for vi, v := range variants {
		name := "wormhole"
		if vi >= 2 {
			name = "cuckoo"
		}
		c.printf("%-20s", v.label)
		for _, l := range lengths {
			keys := v.gen(l)
			ix := BuildIndex(name, keys)
			c.printf("%8.2f", LookupThroughput(ix, keys, c.Threads, c.Duration, c.Seed))
		}
		c.printf("\n")
	}
}

// Fig15 measures single-thread insert-only throughput into empty indexes.
func Fig15(c *Config) {
	c.printf("Figure 15: insertion throughput (MOPS), 1 thread\n")
	runMatrix(c, adapters.Baselines(), func(name string, keys [][]byte) float64 {
		return InsertThroughput(name, keys)
	})
}

// Fig16 reports memory consumption per index and keyset.
func Fig16(c *Config) {
	c.printf("Figure 16: memory usage (MB): analytic footprint [heap delta]\n")
	c.printf("%-10s", "keyset")
	names := append(append([]string{}, adapters.Baselines()...), "baseline")
	for _, n := range names {
		c.printf("%22s", n)
	}
	c.printf("\n")
	for _, ks := range KeysetNames {
		keys := c.Keyset(ks)
		c.printf("%-10s", ks)
		var base int64
		for _, name := range adapters.Baselines() {
			fp, heap, b := MemoryUsage(name, keys)
			base = b
			c.printf("%13.1f [%5.1f]", float64(fp)/1e6, float64(heap)/1e6)
		}
		c.printf("%22.1f", float64(base)/1e6)
		c.printf("\n")
	}
}

// Fig17 measures mixed lookup/insert throughput for Masstree and Wormhole
// at 5%, 50% and 95% insertion ratios.
func Fig17(c *Config) {
	c.printf("Figure 17: mixed workload throughput (MOPS), %d threads\n", c.Threads)
	c.printf("%-24s", "variant")
	for _, ks := range KeysetNames {
		c.printf("%8s", ks)
	}
	c.printf("\n")
	for _, name := range []string{"masstree", "wormhole"} {
		for _, pct := range []int{5, 50, 95} {
			c.printf("%-24s", fmt.Sprintf("%s (%d%% insert)", name, pct))
			for _, ks := range KeysetNames {
				keys := c.Keyset(ks)
				c.printf("%8.2f", MixedThroughput(name, keys, pct, c.Threads, c.Duration, c.Seed))
			}
			c.printf("\n")
		}
	}
}

// Fig18 measures seek-plus-100-key range scans; ART is omitted exactly as
// in the paper (libart has no range scan; ours does, but the figure is
// reproduced as published).
func Fig18(c *Config) {
	c.printf("Figure 18: range lookup throughput (MOPS of scans), %d threads\n", c.Threads)
	runMatrix(c, []string{"skiplist", "btree", "masstree", "wormhole"},
		func(name string, keys [][]byte) float64 {
			ix := BuildIndex(name, keys).(index.Ordered)
			return RangeThroughput(ix, keys, c.Threads, c.Duration, c.Seed)
		})
}

// AblationLeafCap sweeps Wormhole's leaf capacity (a design choice the
// paper fixes at 128) on Az1 lookups.
func AblationLeafCap(c *Config) {
	keys := c.Keyset("Az1")
	c.printf("Ablation: leaf capacity sweep, Az1 lookups (MOPS), %d threads\n", c.Threads)
	c.printf("%-10s %10s %12s %12s\n", "leafcap", "MOPS", "leaves", "meta items")
	for _, cap := range []int{16, 32, 64, 128, 256, 512} {
		ix := NewWormholeLeafCap(cap)
		for _, k := range keys {
			ix.Set(k, k)
		}
		mops := LookupThroughput(ix, keys, c.Threads, c.Duration, c.Seed)
		st := ix.Stats()
		c.printf("%-10d %10.2f %12d %12d\n", cap, mops, st.Leaves, st.MetaItems)
	}
}

// AblationUnsafe compares thread-safe and unsafe Wormhole op by op.
func AblationUnsafe(c *Config) {
	keys := c.Keyset("Az1")
	c.printf("Ablation: concurrency-control overhead, Az1, 1 thread (MOPS)\n")
	c.printf("%-18s %10s %10s\n", "variant", "lookup", "insert")
	for _, name := range []string{"wormhole", "wormhole-unsafe"} {
		ix := BuildIndex(name, keys)
		look := LookupThroughput(ix, keys, 1, c.Duration, c.Seed)
		ins := InsertThroughput(name, keys)
		c.printf("%-18s %10.2f %10.2f\n", name, look, ins)
	}
}

// threadPoints returns the doubling goroutine counts 1,2,4,... up to and
// including limit.
func threadPoints(limit int) []int {
	points := []int{}
	for t := 1; t <= limit; t *= 2 {
		points = append(points, t)
	}
	if last := points[len(points)-1]; last != limit {
		points = append(points, limit)
	}
	return points
}

// runMatrix prints a keyset-by-index throughput matrix.
func runMatrix(c *Config, names []string, cell func(name string, keys [][]byte) float64) {
	c.printf("%-16s", "index")
	for _, ks := range KeysetNames {
		c.printf("%8s", ks)
	}
	c.printf("\n")
	cols := make(map[string][][]byte, len(KeysetNames))
	for _, ks := range KeysetNames {
		cols[ks] = c.Keyset(ks)
	}
	for _, name := range names {
		c.printf("%-16s", name)
		for _, ks := range KeysetNames {
			c.printf("%8.2f", cell(name, cols[ks]))
		}
		c.printf("\n")
	}
}
