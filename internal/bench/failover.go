package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/repro/wormhole/internal/netkv"
	"github.com/repro/wormhole/internal/repl"
	"github.com/repro/wormhole/internal/shard"
)

// Failover measures what a leader death costs on Az1, end to end:
//
//   - "time to writable (ms)": from the instant the leader is killed to
//     the follower's auto-promotion completing (epoch durably bumped, its
//     server accepting writes) — the control-plane half of failover;
//   - "client gap (ms)": the longest pause between two successful writes
//     observed by a failover-aware MultiClient writing through the whole
//     event — the user-visible unavailability window, which adds the
//     client's own detection-and-rotation time on top;
//   - "post-failover set (MOPS)": write throughput against the promoted
//     leader, confirming the new term serves at full speed.
//
// The schedule is the whkv quickstart's: a leader and one auto-promote
// follower (500ms heartbeat timeout), a client configured with both
// addresses, kill -9 equivalent on the leader. Values are milliseconds in
// the MOPS column for the first two rows (durations, not rates).
func Failover(c *Config) {
	keys := c.Keyset("Az1")

	root := c.Dir
	if root == "" {
		tmp, err := os.MkdirTemp("", "whbench-failover-*")
		if err != nil {
			c.printf("failover: %v\n", err)
			return
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}
	report := func(op string, val float64) {
		c.printf("%-24s%10.2f\n", op, val)
		c.record(Result{
			Exp: "failover", Op: op, Index: "wormhole-sharded", Threads: 1,
			Keys: len(keys), MOPS: val,
		})
	}

	leader, err := shard.Open(shard.Options{Dir: filepath.Join(root, "leader"), Sample: keys})
	if err != nil {
		c.printf("failover: open leader: %v\n", err)
		return
	}
	src := repl.NewSource(leader)
	// The read timeout is what lets the kill complete while a client
	// connection is parked on the server: the handler exits on its own.
	srvL, err := netkv.ServeOpts("127.0.0.1:0", leader, netkv.ServerOptions{
		Subscribe:   src.ServeSubscriber,
		ReadTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		c.printf("failover: serve leader: %v\n", err)
		leader.Close()
		return
	}
	loadStriped(leader, keys, c.Threads)

	const heartbeatTimeout = 500 * time.Millisecond
	promotedAt := make(chan time.Time, 1)
	// The promotion hook may fire from the monitor goroutine while this
	// function is still wiring the follower's server: hand the server over
	// through a published pointer gated on a ready channel, the same shape
	// whkv serve -follow uses.
	var srvP atomic.Pointer[netkv.Server]
	srvReady := make(chan struct{})
	f, err := repl.Start(repl.Options{
		Leader:           srvL.Addr(),
		Dir:              filepath.Join(root, "follower"),
		AckInterval:      10 * time.Millisecond,
		BackoffMin:       10 * time.Millisecond,
		BackoffMax:       100 * time.Millisecond,
		AutoPromote:      true,
		HeartbeatTimeout: heartbeatTimeout,
		OnPromote: func(*shard.Store) {
			<-srvReady
			if s := srvP.Load(); s != nil {
				s.SetReadOnly(false)
			}
			promotedAt <- time.Now()
		},
	})
	if err != nil {
		c.printf("failover: start follower: %v\n", err)
		close(srvReady)
		srvL.Close()
		src.Close()
		leader.Close()
		return
	}
	srvF, err := netkv.ServeOpts("127.0.0.1:0", f.Store(), netkv.ServerOptions{
		ReadOnly:    true,
		StatFill:    f.FillStat,
		ReadTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		c.printf("failover: serve follower: %v\n", err)
		close(srvReady)
		f.Close()
		srvL.Close()
		src.Close()
		leader.Close()
		return
	}
	srvP.Store(srvF)
	close(srvReady)
	defer srvF.Close()

	// The writer the failover happens under: one key per op, tight loop,
	// budgeted generously so the promotion gap heals inside one Set call.
	mc, err := netkv.DialMulti(srvL.Addr(), srvF.Addr())
	if err != nil {
		c.printf("failover: %v\n", err)
		return
	}
	defer mc.Close()
	mc.Timeout = 30 * time.Second
	stop := make(chan struct{})
	gapc := make(chan time.Duration, 1)
	writeErrs := 0
	go func() {
		var maxGap time.Duration
		last := time.Now()
		val := []byte("failover-val")
		for i := 0; ; i++ {
			select {
			case <-stop:
				gapc <- maxGap
				return
			default:
			}
			if err := mc.Set([]byte(fmt.Sprintf("fo-%07d", i)), val); err != nil {
				writeErrs++
				continue
			}
			now := time.Now()
			if g := now.Sub(last); g > maxGap {
				maxGap = g
			}
			last = now
		}
	}()

	// Warm up, then kill the leader: stream severed, listener gone, store
	// closed — everything a dead process stops doing.
	time.Sleep(500 * time.Millisecond)
	killedAt := time.Now()
	src.Close()
	srvL.Close()
	leader.Close()

	var promoteLatency time.Duration
	select {
	case at := <-promotedAt:
		promoteLatency = at.Sub(killedAt)
	case <-time.After(30 * time.Second):
		c.printf("failover: auto-promotion never fired\n")
		close(stop)
		<-gapc
		f.Close()
		return
	}
	// Let the writer demonstrably land writes on the new leader before
	// reading the gap.
	time.Sleep(500 * time.Millisecond)
	close(stop)
	maxGap := <-gapc

	report("time to writable (ms)", float64(promoteLatency.Milliseconds()))
	report("client gap (ms)", float64(maxGap.Milliseconds()))
	if writeErrs > 0 {
		c.printf("  (%d writes exhausted the client budget during failover)\n", writeErrs)
	}

	// The promoted leader at full speed: plain Sets against the store the
	// follower now owns.
	st := f.Promote() // idempotent: returns the auto-promoted store
	if st == nil {
		c.printf("failover: promoted store unavailable\n")
		f.Close()
		return
	}
	val := []byte("failover-val")
	n := len(keys)
	report("post-failover set (MOPS)", Throughput(c.Threads, c.Duration, c.Seed, func(_ int, r *Rng) {
		st.Set(keys[r.Intn(n)], val)
	}))
	if err := f.Close(); err != nil {
		c.printf("failover: close follower: %v\n", err)
	}
	if err := st.Close(); err != nil {
		c.printf("failover: close promoted store: %v\n", err)
	}
}
