package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/wormhole/internal/index"
)

// ScanPath isolates the range-scan path of the concurrent Wormhole — the
// Figure 18 workload the lock-free scan work targets. On Az1 it measures,
// against both the default build and a LockedScans build (the pre-snapshot
// per-leaf-lock chunk path, kept in the binary as the baseline):
//
//   - "scan100": seek + 100-key ascending scan (Figure 18's shape);
//   - "scan100-desc": the descending twin;
//   - "scan100-pinned": scan100 through per-worker pinned read handles
//     (index.ScanHandle), the amortized path a server connection uses;
//   - "iter100": open a pull cursor, draw 100 pairs, close;
//   - "scanfull": million pairs per second over full-index traversals;
//   - "scan100-churn": scan100 while two writers churn inserts and
//     deletes through the same index, driving splits and merges under
//     the scans (run last: churn leaves residue in the index).
//
// Locked-baseline rows carry index "wormhole-locked". The goroutine
// ladder always includes 8 even on smaller machines so the BENCH_*.json
// trajectory stays comparable across hosts.
func ScanPath(c *Config) {
	keys := c.Keyset("Az1")
	points := readPathThreads(c.Threads)

	lockfree := NewWormholeLeafCap(0)
	locked := NewWormholeLockedScans()
	for _, ix := range []*whDirect{lockfree, locked} {
		for _, k := range keys {
			ix.Set(k, k)
		}
		// One full pass folds pending append regions so both builds start
		// from sorted leaves — the steady state long-lived stores reach.
		ix.Scan(nil, func(_, _ []byte) bool { return true })
	}
	runtime.GC()

	// One throwaway measurement settles the load phase's garbage and the
	// CPU before the first recorded cell.
	_ = Throughput(1, c.Duration/4, c.Seed, func(_ int, r *Rng) {
		cnt := 0
		lockfree.Scan(keys[r.Intn(len(keys))], func(_, _ []byte) bool { cnt++; return cnt < 100 })
	})

	c.printf("scan path: keyset Az1, %d keys (MOPS of scans; scanfull: M pairs/s)\n", len(keys))
	c.printf("%-22s", "op/threads")
	for _, t := range points {
		c.printf("%8d", t)
	}
	c.printf("%14s\n", "allocs/op")

	row := func(op, ixName string, pts []int, allocs float64, cell func(threads int) float64) {
		c.printf("%-22s", op+"/"+ixName)
		for _, t := range points {
			in := false
			for _, p := range pts {
				in = in || p == t
			}
			if !in {
				c.printf("%8s", "-")
				continue
			}
			// Wall and process-CPU clocks bracket each cell (see readpath):
			// mops_cpu is the trajectory metric of record on noisy hosts.
			w0, u0 := time.Now(), processCPUTime()
			mops := cell(t)
			wall, cpu := time.Since(w0), processCPUTime()-u0
			mopsCPU := mops
			if cpu > 0 && wall > 0 {
				mopsCPU = mops * wall.Seconds() / cpu.Seconds()
			}
			c.printf("%8.3f", mops)
			c.record(Result{
				Exp: "scanpath", Op: op, Index: ixName, Threads: t,
				Keys: len(keys), MOPS: mops, MOPSCPU: mopsCPU,
				NsPerOp: 1e3 / mops, AllocsPerOp: allocs,
			})
		}
		c.printf("%14.2f\n", allocs)
	}

	scan100 := func(ix *whDirect, desc bool) func(int) float64 {
		return func(t int) float64 {
			n := len(keys)
			return Throughput(t, c.Duration, c.Seed, func(_ int, r *Rng) {
				cnt := 0
				fn := func(_, _ []byte) bool { cnt++; return cnt < 100 }
				if desc {
					ix.ScanDesc(keys[r.Intn(n)], fn)
				} else {
					ix.Scan(keys[r.Intn(n)], fn)
				}
			})
		}
	}
	scanAllocs := func(ix *whDirect) float64 {
		cnt := 0
		fn := func(_, _ []byte) bool { cnt++; return cnt < 100 }
		return allocsPerOp(500, func() { cnt = 0; ix.Scan(keys[0], fn) })
	}

	la, ka := scanAllocs(lockfree), scanAllocs(locked)
	row("scan100", "wormhole", points, la, scan100(lockfree, false))
	row("scan100", "wormhole-locked", points, ka, scan100(locked, false))
	row("scan100-desc", "wormhole", points, la, scan100(lockfree, true))

	row("scan100-pinned", "wormhole", points, la, func(t int) float64 {
		handles := make([]index.ScanHandle, t)
		for i := range handles {
			handles[i] = lockfree.NewReadHandle().(index.ScanHandle)
		}
		defer func() {
			for _, h := range handles {
				h.Close()
			}
		}()
		n := len(keys)
		return Throughput(t, c.Duration, c.Seed, func(tid int, r *Rng) {
			cnt := 0
			handles[tid].Scan(keys[r.Intn(n)], func(_, _ []byte) bool { cnt++; return cnt < 100 })
		})
	})

	iterAllocs := func() float64 {
		return allocsPerOp(500, func() {
			it := lockfree.t.NewIter(keys[0])
			for j := 0; j < 100 && it.Next(); j++ {
			}
			it.Close()
		})
	}()
	row("iter100", "wormhole", points, iterAllocs, func(t int) float64 {
		n := len(keys)
		return Throughput(t, c.Duration, c.Seed, func(_ int, r *Rng) {
			it := lockfree.t.NewIter(keys[r.Intn(n)])
			for j := 0; j < 100 && it.Next(); j++ {
			}
			it.Close()
		})
	})

	fullPoints := []int{1, points[len(points)-1]}
	scanfull := func(ix *whDirect) func(int) float64 {
		return func(t int) float64 {
			total := float64(ix.Count())
			scans := Throughput(t, c.Duration, c.Seed, func(_ int, _ *Rng) {
				ix.Scan(nil, func(_, _ []byte) bool { return true })
			})
			return scans * total // scans is M scans/s, so this is M pairs/s
		}
	}
	row("scanfull", "wormhole", fullPoints, la, scanfull(lockfree))
	row("scanfull", "wormhole-locked", fullPoints, ka, scanfull(locked))

	// Churn rows last: the writers leave residue keys in the indexes.
	// Scan MOPS alone would reward a baseline that starves writers (a
	// locked scan blocks every Set on the leaf it holds), so the writers'
	// own throughput during the cell is recorded alongside ("churn-set",
	// printed as its own row): the lock-free path's claim is that the two
	// sides stop costing each other.
	churn := func(ix *whDirect, f func() float64) (scanMOPS, writeMOPS float64) {
		var stop atomic.Bool
		var wrote atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				r := NewRng(uint64(c.Seed) + uint64(g)*131)
				n := len(keys)
				ops := int64(0)
				for !stop.Load() {
					// Churn keys sit right beside real keys, so the leaves
					// the scans traverse are the ones splitting and merging.
					k := append(append([]byte(nil), keys[r.Intn(n)]...), '!', byte('a'+g))
					if r.Next()%2 == 0 {
						ix.Set(k, k)
					} else {
						ix.Del(k)
					}
					ops++
				}
				wrote.Add(ops)
			}(g)
		}
		w0 := time.Now()
		scanMOPS = f()
		wall := time.Since(w0)
		stop.Store(true)
		wg.Wait()
		return scanMOPS, float64(wrote.Load()) / wall.Seconds() / 1e6
	}
	churnPoints := []int{1, points[len(points)-1]}
	writeRows := map[string][]float64{}
	churnCell := func(ix *whDirect, ixName string) func(int) float64 {
		return func(t int) float64 {
			scanMOPS, writeMOPS := churn(ix, func() float64 { return scan100(ix, false)(t) })
			writeRows[ixName] = append(writeRows[ixName], writeMOPS)
			c.record(Result{
				Exp: "scanpath", Op: "churn-set", Index: ixName, Threads: t,
				Keys: len(keys), MOPS: writeMOPS, NsPerOp: 1e3 / writeMOPS,
			})
			return scanMOPS
		}
	}
	row("scan100-churn", "wormhole", churnPoints, la, churnCell(lockfree, "wormhole"))
	row("scan100-churn", "wormhole-locked", churnPoints, ka, churnCell(locked, "wormhole-locked"))
	for _, name := range []string{"wormhole", "wormhole-locked"} {
		c.printf("%-22s", "churn-set/"+name)
		i := 0
		for _, t := range points {
			in := false
			for _, p := range churnPoints {
				in = in || p == t
			}
			if !in {
				c.printf("%8s", "-")
				continue
			}
			c.printf("%8.3f", writeRows[name][i])
			i++
		}
		c.printf("\n")
	}
}
