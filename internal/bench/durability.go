package bench

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/wal"
)

// Durability measures what persistence costs on the write path and what
// snapshots buy at recovery, on Az1:
//
//   - "set volatile": concurrent random Sets on the in-memory sharded
//     store — the baseline every durable row is compared against;
//   - "set sync=none/interval/always": the same workload with every
//     mutation appended to the per-shard WALs under each sync policy
//     (always exercises the group-committed fsync convoy);
//   - "recover": close a store holding a snapshot of half the keyset
//     plus a WAL tail of the other half, reopen it, and report the
//     wall-clock recovery rate — the row the ROADMAP's fast-restart
//     story is tracked by, normalized as seconds per million keys.
//
// Rows are filtered by Config.Sync (comma-separated policies; empty
// means all) and persist under Config.Dir (default: a temp directory,
// removed afterwards).
func Durability(c *Config) {
	keys := c.Keyset("Az1")
	threads := c.Threads

	root := c.Dir
	if root == "" {
		tmp, err := os.MkdirTemp("", "whbench-durability-*")
		if err != nil {
			c.printf("durability: %v\n", err)
			return
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}
	want := map[string]bool{}
	for _, m := range strings.Split(c.Sync, ",") {
		if m = strings.TrimSpace(m); m != "" {
			want[m] = true
		}
	}
	enabled := func(m string) bool { return len(want) == 0 || want[m] }

	c.printf("durability: keyset Az1, %d keys, %d goroutines (MOPS)\n", len(keys), threads)
	report := func(op string, mops float64, allocs float64) {
		c.printf("%-18s%8.2f\n", op, mops)
		c.record(Result{
			Exp: "durability", Op: op, Index: "wormhole-sharded", Threads: threads,
			Keys: len(keys), MOPS: mops, NsPerOp: 1e3 / mops, AllocsPerOp: allocs,
		})
	}

	// Baseline: the volatile sharded store.
	{
		st := shard.New(shard.Options{Sample: keys})
		mops := setThroughput(st.Set, keys, threads, c.Duration, c.Seed)
		report("set volatile", mops, 0)
	}

	// One durable store per sync policy, each in its own directory.
	for _, mode := range []struct {
		name   string
		policy wal.SyncPolicy
	}{
		{"none", wal.SyncNone},
		{"interval", wal.SyncInterval},
		{"always", wal.SyncAlways},
	} {
		if !enabled(mode.name) {
			continue
		}
		dir := filepath.Join(root, "sync-"+mode.name)
		st, err := shard.Open(shard.Options{
			Dir: dir, Sample: keys,
			Durability: wal.Options{Sync: mode.policy},
		})
		if err != nil {
			c.printf("durability: open %s: %v\n", dir, err)
			continue
		}
		mops := setThroughput(st.Set, keys, threads, c.Duration, c.Seed)
		report("set sync="+mode.name, mops, 0)
		st.Close()
	}

	// Recovery: half the keyset in snapshots, half in WAL tails — the
	// state a periodically-snapshotting server crashes with.
	if enabled("recover") || len(want) == 0 {
		dir := filepath.Join(root, "recover")
		st, err := shard.Open(shard.Options{
			Dir: dir, Sample: keys, Durability: wal.Options{Sync: wal.SyncNone},
		})
		if err != nil {
			c.printf("durability: open %s: %v\n", dir, err)
			return
		}
		half := len(keys) / 2
		loadStriped(st, keys[:half], threads)
		if err := st.Snapshot(); err != nil {
			c.printf("durability: snapshot: %v\n", err)
			st.Close()
			return
		}
		loadStriped(st, keys[half:], threads)
		if err := st.Close(); err != nil {
			c.printf("durability: close: %v\n", err)
			return
		}

		start := time.Now()
		st2, err := shard.Open(shard.Options{Dir: dir})
		el := time.Since(start)
		if err != nil {
			c.printf("durability: reopen: %v\n", err)
			return
		}
		if int(st2.Count()) != len(keys) {
			c.printf("durability: recovery lost keys: %d != %d\n", st2.Count(), len(keys))
			st2.Close()
			return
		}
		mops := float64(len(keys)) / el.Seconds() / 1e6
		report("recover", mops, 0)
		c.printf("  (%d snapshot pairs + %d WAL records in %.2fs = %.2f s per million keys)\n",
			st2.RecoveredPairs(), st2.RecoveredRecords(), el.Seconds(), el.Seconds()*1e6/float64(len(keys)))
		st2.Close()
	}
}

// setThroughput measures concurrent random Sets (updates after the first
// pass, like the mixed workload's steady state) for dur.
func setThroughput(set func(k, v []byte), keys [][]byte, threads int, dur time.Duration, seed int64) float64 {
	n := len(keys)
	val := []byte("durability-val")
	return Throughput(threads, dur, seed, func(_ int, r *Rng) {
		set(keys[r.Intn(n)], val)
	})
}

// loadStriped loads keys with `threads` workers over contiguous stripes —
// a full pass, not a timed window, so snapshot/recovery rows hold the
// whole keyset.
func loadStriped(st *shard.Store, keys [][]byte, threads int) {
	if threads < 1 {
		threads = 1
	}
	var wg sync.WaitGroup
	stripe := (len(keys) + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := t * stripe
		hi := min(lo+stripe, len(keys))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part [][]byte) {
			defer wg.Done()
			for _, k := range part {
				st.Set(k, k)
			}
		}(keys[lo:hi])
	}
	wg.Wait()
}
