package bench

// Machine-readable results. Experiments that participate in the perf
// trajectory (BENCH_*.json committed per PR) report each measured cell
// through Config.Record in addition to their human-readable tables, and
// cmd/whbench's -json flag collects the cells into one Run document.

// Result is one benchmark cell: an operation measured on one index at one
// goroutine count. MOPS is million operations per second aggregated over
// all workers; MOPSCPU is the same count normalized by process CPU time
// instead of wall time (immune to steal-time noise on shared hosts; equal
// to MOPS when CPU time is unavailable); NsPerOp is wall-clock
// nanoseconds per operation derived from MOPS (1000/MOPS); AllocsPerOp is
// measured separately single-threaded (allocation behavior does not
// depend on the worker count).
type Result struct {
	Exp         string  `json:"exp"`
	Op          string  `json:"op"`
	Index       string  `json:"index"`
	Threads     int     `json:"threads"`
	Keys        int     `json:"keys"`
	MOPS        float64 `json:"mops"`
	MOPSCPU     float64 `json:"mops_cpu,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Bytes carries an experiment-specific size figure — for recovery,
	// the snapshot's total on-disk bytes (footer + segments, or the v1
	// monolithic file), so the trajectory tracks file size next to speed.
	Bytes int64 `json:"bytes,omitempty"`
	// P50Ns/P99Ns/P999Ns are wall-clock latency percentiles in
	// nanoseconds from the metrics histogram, measured in a separate
	// single-threaded sampling pass (timing inside the throughput loop
	// would deflate MOPS); 0 when the experiment does not sample latency.
	P50Ns  float64 `json:"p50_ns,omitempty"`
	P99Ns  float64 `json:"p99_ns,omitempty"`
	P999Ns float64 `json:"p999_ns,omitempty"`
}

// record reports one cell to the -json collector, if any is installed.
func (c *Config) record(r Result) {
	if c.Record != nil {
		c.Record(r)
	}
}
