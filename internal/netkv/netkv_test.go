package netkv

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"

	"github.com/repro/wormhole/internal/adapters"
	"github.com/repro/wormhole/internal/index"
	"github.com/repro/wormhole/internal/shard"
)

func startServer(t *testing.T, name string) (*Server, *Client) {
	t.Helper()
	info, ok := index.Lookup(name)
	if !ok {
		t.Fatalf("index %q not registered", name)
	}
	_ = adapters.Baselines() // ensure the adapters package is linked
	s, err := Serve("127.0.0.1:0", info.New())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func TestRoundTrip(t *testing.T) {
	_, c := startServer(t, "wormhole")
	c.QueueSet([]byte("alpha"), []byte("1"))
	c.QueueSet([]byte("beta"), []byte("2"))
	c.QueueGet([]byte("alpha"))
	c.QueueGet([]byte("missing"))
	c.QueueDel([]byte("beta"))
	c.QueueGet([]byte("beta"))
	rs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 6 {
		t.Fatalf("got %d responses", len(rs))
	}
	if rs[2].Status != StatusOK || string(rs[2].Val) != "1" {
		t.Fatalf("get alpha = %+v", rs[2])
	}
	if rs[3].Status != StatusNotFound {
		t.Fatalf("get missing = %+v", rs[3])
	}
	if rs[4].Status != StatusOK {
		t.Fatalf("del beta = %+v", rs[4])
	}
	if rs[5].Status != StatusNotFound {
		t.Fatalf("get beta after del = %+v", rs[5])
	}
}

func TestScanOverWire(t *testing.T) {
	_, c := startServer(t, "wormhole")
	for i := 0; i < 200; i++ {
		c.QueueSet([]byte(fmt.Sprintf("s%04d", i)), []byte(fmt.Sprintf("v%d", i)))
		if c.Pending() >= 64 {
			if _, err := c.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.QueueScan([]byte("s0100"), 5)
	rs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || len(rs[0].Keys) != 5 {
		t.Fatalf("scan returned %+v", rs)
	}
	if string(rs[0].Keys[0]) != "s0100" || string(rs[0].Vals[0]) != "v100" {
		t.Fatalf("scan[0] = %s=%s", rs[0].Keys[0], rs[0].Vals[0])
	}
	if string(rs[0].Keys[4]) != "s0104" {
		t.Fatalf("scan[4] = %s", rs[0].Keys[4])
	}
}

func TestLargeBatch(t *testing.T) {
	_, c := startServer(t, "btree")
	for i := 0; i < DefaultBatch; i++ {
		c.QueueSet([]byte(fmt.Sprintf("b%06d", i)), []byte("x"))
	}
	rs, err := c.Flush()
	if err != nil || len(rs) != DefaultBatch {
		t.Fatalf("set batch: %v, %d", err, len(rs))
	}
	for i := 0; i < DefaultBatch; i++ {
		c.QueueGet([]byte(fmt.Sprintf("b%06d", i)))
	}
	rs, err = c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Status != StatusOK {
			t.Fatalf("get %d missed", i)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	s, seed := startServer(t, "wormhole")
	seed.QueueSet([]byte("shared"), []byte("yes"))
	if _, err := seed.Flush(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 200; i++ {
				c.QueueSet([]byte(fmt.Sprintf("c%d-%04d", g, i)), []byte("v"))
				c.QueueGet([]byte("shared"))
				rs, err := c.Flush()
				if err != nil {
					t.Error(err)
					return
				}
				if rs[1].Status != StatusOK || string(rs[1].Val) != "yes" {
					t.Errorf("shared key lost: %+v", rs[1])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestLargeValues(t *testing.T) {
	_, c := startServer(t, "wormhole")
	big := make([]byte, 1024) // K10-sized keys/values cross the wire intact
	for i := range big {
		big[i] = byte(i)
	}
	c.QueueSet(big, big)
	c.QueueGet(big)
	rs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].Status != StatusOK || len(rs[1].Val) != 1024 || rs[1].Val[777] != byte(777%256) {
		t.Fatalf("big value corrupted")
	}
}

// startShardedServer serves a 4-shard store directly (not via the
// registry) so the per-shard worker-pool dispatch path runs regardless of
// the host's CPU count. Boundaries are placed inside the key ranges the
// tests use, so their batches produce multiple shard groups and exercise
// the concurrent grouping/reassembly path, not the one-group fast path.
func startShardedServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	part := shard.NewExplicit([][]byte{
		[]byte("dispatch-01000"), []byte("scan-0250"), []byte("t"),
	})
	s, err := Serve("127.0.0.1:0", shard.New(shard.Options{Partitioner: part}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if s.bx == nil || len(s.workers) != 4 {
		t.Fatalf("sharded server has no worker pool (bx=%v, workers=%d)", s.bx, len(s.workers))
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func TestShardedBatchDispatch(t *testing.T) {
	_, c := startShardedServer(t)
	const n = 2000
	key := func(i int) []byte { return []byte(fmt.Sprintf("dispatch-%05d", i)) }
	for i := 0; i < n; i++ {
		c.QueueSet(key(i), key(i))
	}
	rs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Status != StatusOK {
			t.Fatalf("set %d: %+v", i, r)
		}
	}
	for i := 0; i < n; i++ {
		c.QueueGet(key(i))
	}
	if rs, err = c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Status != StatusOK || string(r.Val) != string(key(i)) {
			t.Fatalf("get %d = %+v", i, r)
		}
	}
	for i := 0; i < n; i += 2 {
		c.QueueDel(key(i))
	}
	if rs, err = c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Status != StatusOK {
			t.Fatalf("del %d: %+v", i, r)
		}
	}
	for i := 0; i < n; i++ {
		c.QueueGet(key(i))
	}
	if rs, err = c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		want := StatusNotFound
		if i%2 == 1 {
			want = StatusOK
		}
		if r.Status != want {
			t.Fatalf("get-after-del %d: status %d want %d", i, r.Status, want)
		}
	}
}

// TestShardedBatchSameKeyOrder checks that operations on one key inside a
// single dispatched batch keep their request order: they all land on the
// same shard, whose worker executes them sequentially.
func TestShardedBatchSameKeyOrder(t *testing.T) {
	_, c := startShardedServer(t)
	k := []byte("ordered-key")
	c.QueueSet(k, []byte("v1"))
	c.QueueGet(k)
	c.QueueSet(k, []byte("v2"))
	c.QueueGet(k)
	c.QueueDel(k)
	c.QueueGet(k)
	rs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if string(rs[1].Val) != "v1" {
		t.Fatalf("first get = %q, want v1", rs[1].Val)
	}
	if string(rs[3].Val) != "v2" {
		t.Fatalf("second get = %q, want v2", rs[3].Val)
	}
	if rs[4].Status != StatusOK || rs[5].Status != StatusNotFound {
		t.Fatalf("del/get tail = %d/%d", rs[4].Status, rs[5].Status)
	}
}

// TestShardedBatchedGetRuns drives batches whose shard groups contain
// long runs of consecutive Gets — the shape the server now routes
// through the read handle's batched lookup — interleaved with writes
// that split the runs. Results must stay positional (hits, misses, and
// duplicate keys in one run) and same-key operations must keep program
// order across the run boundaries.
func TestShardedBatchedGetRuns(t *testing.T) {
	_, c := startShardedServer(t)
	key := func(i int) []byte { return []byte(fmt.Sprintf("runs-%05d", i)) }
	const n = 300
	for i := 0; i < n; i++ {
		c.QueueSet(key(i), []byte(fmt.Sprintf("val-%05d", i)))
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// One batch: a long Get run with misses and duplicates, a Set that
	// cuts the run, then Gets of the overwritten key.
	for i := 0; i < n; i++ {
		c.QueueGet(key(i))
		if i%7 == 0 {
			c.QueueGet([]byte(fmt.Sprintf("runs-miss-%05d", i)))
			c.QueueGet(key(i)) // duplicate inside the run
		}
	}
	c.QueueSet(key(42), []byte("rewritten"))
	c.QueueGet(key(42))
	rs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	p := 0
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("val-%05d", i)
		if i == 42 {
			// The Set of key 42 comes later in the batch, but a batch
			// executes grouped by shard, not globally in order; for the
			// same key, though, program order holds: this Get precedes
			// the Set, so it must still see the original value.
			want = "val-00042"
		}
		if rs[p].Status != StatusOK || string(rs[p].Val) != want {
			t.Fatalf("get %d (result %d) = %d %q, want %q", i, p, rs[p].Status, rs[p].Val, want)
		}
		p++
		if i%7 == 0 {
			if rs[p].Status != StatusNotFound {
				t.Fatalf("miss probe %d: status %d", i, rs[p].Status)
			}
			p++
			if rs[p].Status != StatusOK || string(rs[p].Val) != want {
				t.Fatalf("dup get %d = %d %q, want %q", i, rs[p].Status, rs[p].Val, want)
			}
			p++
		}
	}
	if rs[p].Status != StatusOK {
		t.Fatalf("rewrite set: %d", rs[p].Status)
	}
	if string(rs[p+1].Val) != "rewritten" {
		t.Fatalf("get after rewrite = %q, want %q", rs[p+1].Val, "rewritten")
	}
}

// TestShardedScanFallback sends a batch containing a scan: the server must
// fall back to sequential processing and the stitched cross-shard scan
// must come back in global key order.
func TestShardedScanFallback(t *testing.T) {
	_, c := startShardedServer(t)
	const n = 500
	for i := 0; i < n; i++ {
		c.QueueSet([]byte(fmt.Sprintf("scan-%04d", i)), []byte("v"))
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.QueueGet([]byte("scan-0000"))
	c.QueueScan([]byte("scan-"), n)
	c.QueueGet([]byte("scan-0499"))
	rs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Status != StatusOK || rs[2].Status != StatusOK {
		t.Fatalf("gets around scan failed: %+v %+v", rs[0], rs[2])
	}
	if len(rs[1].Keys) != n {
		t.Fatalf("scan returned %d keys, want %d", len(rs[1].Keys), n)
	}
	for i, k := range rs[1].Keys {
		if want := fmt.Sprintf("scan-%04d", i); string(k) != want {
			t.Fatalf("scan key %d = %q, want %q", i, k, want)
		}
	}
}

func TestShardedConcurrentClients(t *testing.T) {
	s, _ := startShardedServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for round := 0; round < 20; round++ {
				for i := 0; i < 100; i++ {
					// Alternating prefixes straddle the "t" boundary, so
					// every batch fans out across two shard workers.
					prefix := "cc"
					if i%2 == 1 {
						prefix = "zz"
					}
					k := []byte(fmt.Sprintf("%s%d-%03d", prefix, g, i))
					c.QueueSet(k, k)
					c.QueueGet(k)
				}
				rs, err := c.Flush()
				if err != nil {
					t.Error(err)
					return
				}
				for i := 1; i < len(rs); i += 2 {
					if rs[i].Status != StatusOK {
						t.Errorf("client %d: get %d missed", g, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestScanDescOverWire exercises the OpScanDesc opcode end to end on both
// a single Wormhole (served through the connection's pinned scan handle)
// and the sharded store (stitched across shards), including the
// empty-key-means-largest convention.
func TestScanDescOverWire(t *testing.T) {
	for _, name := range []string{"wormhole", "wormhole-sharded"} {
		t.Run(name, func(t *testing.T) {
			_, c := startServer(t, name)
			for i := 0; i < 300; i++ {
				c.QueueSet([]byte(fmt.Sprintf("d%04d", i)), []byte(fmt.Sprintf("v%d", i)))
				if c.Pending() >= 64 {
					if _, err := c.Flush(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if _, err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			c.QueueScanDesc([]byte("d0100"), 5)
			c.QueueScanDesc(nil, 3) // empty key: from the largest
			c.QueueScan([]byte("d0100"), 2)
			rs, err := c.Flush()
			if err != nil {
				t.Fatal(err)
			}
			if len(rs) != 3 {
				t.Fatalf("got %d responses", len(rs))
			}
			if len(rs[0].Keys) != 5 || string(rs[0].Keys[0]) != "d0100" ||
				string(rs[0].Keys[4]) != "d0096" || string(rs[0].Vals[4]) != "v96" {
				t.Fatalf("desc scan = %+v", rs[0].Keys)
			}
			if len(rs[1].Keys) != 3 || string(rs[1].Keys[0]) != "d0299" ||
				string(rs[1].Keys[2]) != "d0297" {
				t.Fatalf("unbounded desc scan = %+v", rs[1].Keys)
			}
			if len(rs[2].Keys) != 2 || string(rs[2].Keys[0]) != "d0100" {
				t.Fatalf("asc scan after desc = %+v", rs[2].Keys)
			}
		})
	}
}

// TestScanDescUnsupported: an index with no descending scan answers
// StatusNotFound instead of breaking the framing.
func TestScanDescUnsupported(t *testing.T) {
	_, c := startServer(t, "btree")
	c.QueueSet([]byte("k"), []byte("v"))
	c.QueueScanDesc([]byte("zzz"), 4)
	c.QueueGet([]byte("k"))
	rs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || rs[1].Status != StatusNotFound || len(rs[1].Keys) != 0 {
		t.Fatalf("unsupported desc scan = %+v", rs)
	}
	if rs[2].Status != StatusOK || string(rs[2].Val) != "v" {
		t.Fatalf("get after unsupported desc scan = %+v", rs[2])
	}
}

func TestFlushOverWireDurable(t *testing.T) {
	dir := t.TempDir()
	st, err := shard.Open(shard.Options{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Serve("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.QueueSet([]byte("durable-key"), []byte("durable-val"))
	c.QueueFlush()
	rs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].Status != StatusOK {
		t.Fatalf("flush on durable index = %+v, want StatusOK", rs[1])
	}
	c.Close()
	s.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The flushed write must survive a restart.
	st2, err := shard.Open(shard.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if v, ok := st2.Get([]byte("durable-key")); !ok || string(v) != "durable-val" {
		t.Fatalf("recovered durable-key = %q,%v", v, ok)
	}
}

func TestFlushOverWireVolatile(t *testing.T) {
	_, c := startServer(t, "wormhole")
	c.QueueFlush()
	rs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Status != StatusNotFound {
		t.Fatalf("flush on volatile index = %+v, want StatusNotFound", rs[0])
	}
}

func TestServerDoubleClose(t *testing.T) {
	info, _ := index.Lookup("wormhole-sharded")
	s, err := Serve("127.0.0.1:0", info.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A second Close must not re-close the drained worker channels.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestFlushOverWireVolatileSharded(t *testing.T) {
	// The volatile sharded store implements the durable lifecycle as
	// no-ops; the server must still refuse the durability ack.
	st := shard.New(shard.Options{Shards: 2})
	s, err := Serve("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.QueueFlush()
	rs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Status != StatusNotFound {
		t.Fatalf("flush on volatile sharded store = %+v, want StatusNotFound", rs[0])
	}
}

func TestMalformedFrameDoesNotKillServer(t *testing.T) {
	s, c := startServer(t, "wormhole")
	// Handshake a healthy op first so the connection is live.
	c.QueueSet([]byte("ok"), []byte("1"))
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a frame whose key length is near 2^32: the uint32
	// bounds check `klen+4` would wrap and the slice would panic the
	// handler. The server must just drop the connection.
	raw, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var frame []byte
	body := []byte{OpGet}
	body = binary.LittleEndian.AppendUint32(body, 0xFFFFFFFF) // hostile klen
	body = append(body, 1, 2, 3, 4, 5, 6, 7, 8)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(body)+2))
	frame = binary.LittleEndian.AppendUint16(frame, 1)
	frame = append(frame, body...)
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a hostile frame instead of dropping it")
	}
	raw.Close()
	// The server survives and keeps serving other connections.
	c2, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.QueueGet([]byte("ok"))
	rs, err := c2.Flush()
	if err != nil || rs[0].Status != StatusOK {
		t.Fatalf("server unhealthy after hostile frame: %v %+v", err, rs)
	}
}
