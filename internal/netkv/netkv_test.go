package netkv

import (
	"fmt"
	"sync"
	"testing"

	"github.com/repro/wormhole/internal/adapters"
	"github.com/repro/wormhole/internal/index"
)

func startServer(t *testing.T, name string) (*Server, *Client) {
	t.Helper()
	info, ok := index.Lookup(name)
	if !ok {
		t.Fatalf("index %q not registered", name)
	}
	_ = adapters.Baselines() // ensure the adapters package is linked
	s, err := Serve("127.0.0.1:0", info.New())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func TestRoundTrip(t *testing.T) {
	_, c := startServer(t, "wormhole")
	c.QueueSet([]byte("alpha"), []byte("1"))
	c.QueueSet([]byte("beta"), []byte("2"))
	c.QueueGet([]byte("alpha"))
	c.QueueGet([]byte("missing"))
	c.QueueDel([]byte("beta"))
	c.QueueGet([]byte("beta"))
	rs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 6 {
		t.Fatalf("got %d responses", len(rs))
	}
	if rs[2].Status != StatusOK || string(rs[2].Val) != "1" {
		t.Fatalf("get alpha = %+v", rs[2])
	}
	if rs[3].Status != StatusNotFound {
		t.Fatalf("get missing = %+v", rs[3])
	}
	if rs[4].Status != StatusOK {
		t.Fatalf("del beta = %+v", rs[4])
	}
	if rs[5].Status != StatusNotFound {
		t.Fatalf("get beta after del = %+v", rs[5])
	}
}

func TestScanOverWire(t *testing.T) {
	_, c := startServer(t, "wormhole")
	for i := 0; i < 200; i++ {
		c.QueueSet([]byte(fmt.Sprintf("s%04d", i)), []byte(fmt.Sprintf("v%d", i)))
		if c.Pending() >= 64 {
			if _, err := c.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.QueueScan([]byte("s0100"), 5)
	rs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || len(rs[0].Keys) != 5 {
		t.Fatalf("scan returned %+v", rs)
	}
	if string(rs[0].Keys[0]) != "s0100" || string(rs[0].Vals[0]) != "v100" {
		t.Fatalf("scan[0] = %s=%s", rs[0].Keys[0], rs[0].Vals[0])
	}
	if string(rs[0].Keys[4]) != "s0104" {
		t.Fatalf("scan[4] = %s", rs[0].Keys[4])
	}
}

func TestLargeBatch(t *testing.T) {
	_, c := startServer(t, "btree")
	for i := 0; i < DefaultBatch; i++ {
		c.QueueSet([]byte(fmt.Sprintf("b%06d", i)), []byte("x"))
	}
	rs, err := c.Flush()
	if err != nil || len(rs) != DefaultBatch {
		t.Fatalf("set batch: %v, %d", err, len(rs))
	}
	for i := 0; i < DefaultBatch; i++ {
		c.QueueGet([]byte(fmt.Sprintf("b%06d", i)))
	}
	rs, err = c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Status != StatusOK {
			t.Fatalf("get %d missed", i)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	s, seed := startServer(t, "wormhole")
	seed.QueueSet([]byte("shared"), []byte("yes"))
	if _, err := seed.Flush(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 200; i++ {
				c.QueueSet([]byte(fmt.Sprintf("c%d-%04d", g, i)), []byte("v"))
				c.QueueGet([]byte("shared"))
				rs, err := c.Flush()
				if err != nil {
					t.Error(err)
					return
				}
				if rs[1].Status != StatusOK || string(rs[1].Val) != "yes" {
					t.Errorf("shared key lost: %+v", rs[1])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestLargeValues(t *testing.T) {
	_, c := startServer(t, "wormhole")
	big := make([]byte, 1024) // K10-sized keys/values cross the wire intact
	for i := range big {
		big[i] = byte(i)
	}
	c.QueueSet(big, big)
	c.QueueGet(big)
	rs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].Status != StatusOK || len(rs[1].Val) != 1024 || rs[1].Val[777] != byte(777%256) {
		t.Fatalf("big value corrupted")
	}
}
