package netkv

import (
	"net"
	"testing"
	"time"

	"github.com/repro/wormhole/internal/shard"
)

func serveShard(t *testing.T, st *shard.Store) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestMultiClientFailsOverOnFence: the preferred server is a fenced stale
// leader — every write refuses with StatusFenced before the index mutates
// — so the MultiClient must rotate and land the write on the second
// server, and keep preferring it afterwards.
func TestMultiClientFailsOverOnFence(t *testing.T) {
	stale := shard.New(shard.Options{Shards: 2})
	if err := stale.Fence(5); err != nil {
		t.Fatal(err)
	}
	current := shard.New(shard.Options{Shards: 2})
	srvStale := serveShard(t, stale)
	srvCur := serveShard(t, current)

	mc, err := DialMulti(srvStale.Addr(), srvCur.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	mc.Timeout = 5 * time.Second
	if err := mc.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if mc.Addr() != srvCur.Addr() {
		t.Fatalf("client settled on %s, want %s", mc.Addr(), srvCur.Addr())
	}
	if _, ok := current.Get([]byte("k")); !ok {
		t.Fatal("write missing on the accepting server")
	}
	if _, ok := stale.Get([]byte("k")); ok {
		t.Fatal("write landed on the fenced server")
	}
	if v, ok, err := mc.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("read-back through the client: %q %v %v", v, ok, err)
	}
	if found, err := mc.Del([]byte("k")); err != nil || !found {
		t.Fatalf("delete through the client: %v %v", found, err)
	}
}

// TestMultiClientFailsOverOnDeadServer: the preferred address refuses
// connections outright (a dead machine); the client must rotate on the
// dial error.
func TestMultiClientFailsOverOnDeadServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close() // nothing listens here anymore

	st := shard.New(shard.Options{Shards: 2})
	srv := serveShard(t, st)
	mc, err := DialMulti(dead, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	mc.Timeout = 5 * time.Second
	if err := mc.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get([]byte("k")); !ok {
		t.Fatal("write missing after dial failover")
	}
}

// TestMultiClientTimesOutWhenEveryoneRefuses: with every address fenced,
// the budget must expire with an error naming the last refusal instead of
// spinning forever.
func TestMultiClientTimesOutWhenEveryoneRefuses(t *testing.T) {
	a := shard.New(shard.Options{Shards: 2})
	a.Fence(3)
	b := shard.New(shard.Options{Shards: 2})
	b.Fence(4)
	srvA := serveShard(t, a)
	srvB := serveShard(t, b)
	mc, err := DialMulti(srvA.Addr(), srvB.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	mc.Timeout = 300 * time.Millisecond
	start := time.Now()
	if err := mc.Set([]byte("k"), []byte("v")); err == nil {
		t.Fatal("write succeeded with every server fenced")
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("budgeted failure took %v", el)
	}
}
