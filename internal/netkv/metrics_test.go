package netkv

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/repro/wormhole/internal/metrics"
	"github.com/repro/wormhole/internal/shard"
)

// scrape runs one /metrics request through the debug mux and parses the
// exposition into name{labels} -> value.
func scrape(t *testing.T, reg *metrics.Registry, slow *metrics.SlowLog, health func() error) map[string]float64 {
	t.Helper()
	mux := metrics.DebugMux(reg, slow, health)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// TestMetricsReconcile runs a scripted workload against an armed sharded
// server and asserts the scrape agrees exactly with the client-side op
// counts — the acceptance check that no serving path loses or
// double-counts an operation.
func TestMetricsReconcile(t *testing.T) {
	reg := metrics.NewRegistry()
	slow := metrics.NewSlowLog(64, time.Nanosecond) // trace everything
	part := shard.NewExplicit([][]byte{
		[]byte("k-01000"), []byte("k-02000"), []byte("k-03000"),
	})
	s, err := ServeOpts("127.0.0.1:0", shard.New(shard.Options{Partitioner: part}),
		ServerOptions{Metrics: NewServerMetrics(reg, slow), MaxInflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	key := func(i int) []byte { return []byte(fmt.Sprintf("k-%05d", i)) }
	// Batch 1 (sharded dispatch: point ops spanning all four shards).
	const sets = 400
	for i := 0; i < sets; i++ {
		c.QueueSet(key(i*10), key(i*10))
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Batch 2: mixed hits and misses through the batched-get path.
	const hits, misses = 300, 100
	for i := 0; i < hits; i++ {
		c.QueueGet(key(i * 10))
	}
	for i := 0; i < misses; i++ {
		c.QueueGet([]byte(fmt.Sprintf("missing-%05d", i)))
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Batch 3: deletes (sharded), half hitting.
	const delOK, delMiss = 40, 40
	for i := 0; i < delOK; i++ {
		c.QueueDel(key(i * 10))
	}
	for i := 0; i < delMiss; i++ {
		c.QueueDel([]byte(fmt.Sprintf("missing-%05d", i)))
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Batch 4: sequential path — a scan, a stat, a flush (volatile store:
	// flush answers not_found), and one single-op get.
	c.QueueScan(nil, 10)
	c.QueueStat()
	c.QueueFlush()
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.QueueGet(key(5000))
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	m := scrape(t, reg, slow, nil)
	totalOps := sets + hits + misses + delOK + delMiss + 3 + 1
	want := map[string]float64{
		`netkv_ops_total{op="set",status="ok"}`:          sets,
		`netkv_ops_total{op="get",status="ok"}`:          hits,
		`netkv_ops_total{op="get",status="not_found"}`:   misses + 1,
		`netkv_ops_total{op="del",status="ok"}`:          delOK,
		`netkv_ops_total{op="del",status="not_found"}`:   delMiss,
		`netkv_ops_total{op="scan",status="ok"}`:         1,
		`netkv_ops_total{op="stat",status="ok"}`:         1,
		`netkv_ops_total{op="flush",status="not_found"}`: 1,
		`netkv_ops_total{op="set",status="err"}`:         0,
		`netkv_batches_total`:                            5,
		`netkv_batch_ops_total`:                          float64(totalOps),
		`netkv_connections`:                              1,
		`netkv_inflight_batches`:                         0,
		`netkv_slow_ops_total`:                           float64(totalOps),
	}
	for series, v := range want {
		if got, ok := m[series]; !ok {
			t.Errorf("scrape missing %s", series)
		} else if got != v {
			t.Errorf("%s = %v, want %v", series, got, v)
		}
	}
	// Latency histograms observed exactly the timed ops.
	if got := m[`netkv_op_seconds_count{op="get"}`]; got != hits+misses+1 {
		t.Errorf("get histogram count = %v, want %d", got, hits+misses+1)
	}
	if got := m[`netkv_batch_seconds_count`]; got != 5 {
		t.Errorf("batch histogram count = %v, want 5", got)
	}
	if slow.Total() != uint64(totalOps) {
		t.Errorf("slow log traced %d, want %d", slow.Total(), totalOps)
	}
}

func TestHealthzAndSlowOps(t *testing.T) {
	reg := metrics.NewRegistry()
	slow := metrics.NewSlowLog(16, time.Nanosecond)
	slow.Record("get", []byte("k"), "ok", time.Millisecond)

	healthy := metrics.DebugMux(reg, slow, func() error { return nil })
	rec := httptest.NewRecorder()
	healthy.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthy /healthz = %d %q", rec.Code, rec.Body.String())
	}

	sick := metrics.DebugMux(reg, slow, func() error { return errors.New("2 shards degraded") })
	rec = httptest.NewRecorder()
	sick.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "degraded") {
		t.Fatalf("sick /healthz = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	healthy.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowops", nil))
	var doc struct {
		ThresholdUS int64            `json:"threshold_us"`
		Total       uint64           `json:"total"`
		Ops         []metrics.SlowOp `json:"ops"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("slowops JSON: %v (%s)", err, rec.Body.String())
	}
	if doc.Total != 1 || len(doc.Ops) != 1 || doc.Ops[0].Key != "k" {
		t.Fatalf("slowops doc = %+v", doc)
	}
}

// TestStatRuntimeFields checks the OpStat runtime satellite: uptime,
// toolchain and heap gauges ride along on every stat response.
func TestStatRuntimeFields(t *testing.T) {
	_, c := startServer(t, "wormhole")
	st, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(st.GoVersion, "go") {
		t.Errorf("go_version = %q", st.GoVersion)
	}
	if st.Goroutines <= 0 || st.HeapAllocBytes == 0 || st.HeapSysBytes == 0 {
		t.Errorf("runtime gauges missing: %+v", st)
	}
	if st.UptimeS < 0 {
		t.Errorf("uptime_s = %d", st.UptimeS)
	}
}
