// Package netkv is the networked key-value store used to reproduce Figure
// 12. The paper ports its indexes into HERD, an RDMA key-value service on
// 100 Gb/s InfiniBand, and issues requests in batches of 800. Offline and
// without RDMA hardware, this package substitutes a length-prefixed binary
// protocol over TCP (loopback in the benchmarks) with the same batching
// discipline: the network adds a per-batch cost while the per-operation
// cost stays dominated by the host-side index — the property Figure 12
// demonstrates (and, as in the paper, large values such as K10's 1 KB keys
// shift the bottleneck to the wire).
package netkv

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/wormhole/internal/index"
	"github.com/repro/wormhole/internal/wal"
)

// Op codes.
const (
	OpGet byte = iota + 1
	OpSet
	OpDel
	OpScan
	OpScanDesc
	// OpFlush asks a durable server to force every logged mutation to
	// stable storage before responding — the wire-level fsync barrier a
	// client issues after a batch it cannot afford to lose. Servers
	// hosting a volatile index answer StatusNotFound; a failed flush
	// answers StatusErr.
	OpFlush
	// OpStat returns a JSON Stat document (key count, WAL size, current
	// generations, replication role and lag) as a Get-shaped response, so
	// replication health is observable on the wire instead of by scraping
	// logs.
	OpStat
	// OpSubscribe is the replication handshake: a follower sends it as a
	// batch's only request (the key carries the negotiation payload) and,
	// on a leader, the connection leaves the request/response protocol and
	// becomes a replication stream (internal/repl's framing). Servers
	// without a replication source answer StatusNotFound.
	OpSubscribe
	// OpFence tells a server that a higher replication epoch exists (the
	// key carries it, 8 bytes little-endian): a stale leader flips into
	// fenced read-only mode before answering, so no write can land after
	// the fence is acknowledged. Best-effort — fencing also happens on
	// first replication contact with the new lineage — and idempotent.
	// Servers whose index has no epochs answer StatusNotFound.
	OpFence
)

// Status codes.
const (
	StatusOK byte = iota
	StatusNotFound
	// StatusErr reports a server-side failure (e.g. a flush I/O error).
	StatusErr
	// StatusReadOnly rejects a mutation on a replication follower: writes
	// belong on the leader until the follower is promoted.
	StatusReadOnly
	// StatusDegraded rejects a mutation whose owning shard is in degraded
	// read-only mode: its WAL cannot log new writes (full disk, failed
	// fsync), so accepting them would widen the unrecoverable window.
	// Reads keep serving; the shard heals itself in the background and
	// writes resume without a restart.
	StatusDegraded
	// StatusFenced rejects a mutation on a stale leader: a higher
	// replication epoch exists, the refusal happens BEFORE the index
	// mutates, and — unlike a transport error — it proves the operation
	// was not applied, so a client may safely resend it to the new leader.
	StatusFenced
)

// DefaultBatch is the paper's request batch size for Figure 12.
const DefaultBatch = 800

const maxFrame = 64 << 20

// Stat is the OpStat response document. The base fields come from the
// served index; replication roles fill in their sections through
// ServerOptions.StatFill (leader: Followers; follower: Applied/LeaderEnd/
// LagRecords).
type Stat struct {
	Role     string `json:"role"`
	ReadOnly bool   `json:"read_only"`
	Keys     int64  `json:"keys"`
	Shards   int    `json:"shards,omitempty"`
	Durable  bool   `json:"durable"`
	// WALBytes is the framed length of the active WAL generations (the
	// replay cost of a crash right now); Gens the per-shard active
	// generation numbers.
	WALBytes int64    `json:"wal_bytes,omitempty"`
	Gens     []uint64 `json:"gens,omitempty"`
	// Health is each shard's degradation status (degraded flag, sticky
	// error, heal attempts) — the observable face of the degraded-mode
	// state machine.
	Health []wal.Health `json:"health,omitempty"`

	// Epoch is the served store's replication epoch; FencedBy, when
	// non-zero, is the higher epoch that fenced it (the node refuses
	// writes with StatusFenced). Together they answer "who is fenced, and
	// by whom" from either side of a failover.
	Epoch    uint64 `json:"epoch,omitempty"`
	FencedBy uint64 `json:"fenced_by,omitempty"`
	// LeaderEpoch is the highest leader epoch a follower has observed.
	LeaderEpoch uint64 `json:"leader_epoch,omitempty"`

	// Leader fields.
	Followers []FollowerStat `json:"followers,omitempty"`

	// Follower fields.
	Leader           string         `json:"leader,omitempty"`
	Applied          []wal.Position `json:"applied,omitempty"`
	LeaderEnd        []wal.Position `json:"leader_end,omitempty"`
	LagRecords       *int64         `json:"lag_records,omitempty"` // -1: spans a rotation, uncountable
	SnapshotsApplied int64          `json:"snapshots_applied,omitempty"`
	Connected        bool           `json:"connected,omitempty"`

	// Process runtime fields: uptime, toolchain and heap/GC gauges, so a
	// bare `whkv stat` answers "how long has it been up and how is the
	// runtime doing" without a metrics scrape.
	UptimeS        int64  `json:"uptime_s,omitempty"`
	GoVersion      string `json:"go_version,omitempty"`
	Goroutines     int    `json:"goroutines,omitempty"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes,omitempty"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes,omitempty"`
	GCCycles       uint32 `json:"gc_cycles,omitempty"`
	// SlowOps counts operations traced by the slow-op tracer since start
	// (0 when tracing is disarmed).
	SlowOps uint64 `json:"slow_ops,omitempty"`
}

// FollowerStat is one subscriber's lag as the leader sees it.
type FollowerStat struct {
	Remote string `json:"remote"`
	// LagRecords counts records streamed but not yet acked (-1 when a
	// shard's sent and acked positions span a generation rotation).
	LagRecords int64 `json:"lag_records"`
	// AckAgeMS is how long ago the last ack arrived.
	AckAgeMS int64          `json:"ack_age_ms"`
	Acked    []wal.Position `json:"acked,omitempty"`
	// SnapshotsSent counts shard snapshot catch-ups streamed to this
	// follower.
	SnapshotsSent int64 `json:"snapshots_sent,omitempty"`
}

// ServerOptions configures the replication-aware pieces of a Server; the
// zero value is a plain standalone server (what Serve uses).
type ServerOptions struct {
	// ReadOnly starts the server rejecting Set and Del with
	// StatusReadOnly — follower mode. SetReadOnly flips it at promotion.
	ReadOnly bool
	// Role labels OpStat responses ("standalone" when empty); StatFill may
	// override it.
	Role string
	// Subscribe, when non-nil, takes over a connection whose batch is a
	// single OpSubscribe request, with the request key as payload; the
	// connection is the callee's to consume until it returns (the
	// replication stream). Nil servers answer StatusNotFound.
	Subscribe func(conn net.Conn, r *bufio.Reader, w *bufio.Writer, payload []byte)
	// StatFill, when non-nil, adds role-specific fields to each OpStat
	// response.
	StatFill func(*Stat)
	// ReadTimeout, when non-zero, bounds how long a connection may sit
	// between batches (and how long one batch may take to arrive): the
	// read deadline is re-armed before each batch read, so a hung or idle
	// client is dropped instead of holding a handler goroutine forever.
	ReadTimeout time.Duration
	// WriteTimeout, when non-zero, bounds each response flush: a client
	// that stops draining its socket is dropped instead of blocking the
	// handler on a full send buffer.
	WriteTimeout time.Duration
	// MaxInflight, when non-zero, caps concurrently-processing batches
	// server-wide. Excess batches wait their turn after being read —
	// backpressure degrades latency smoothly instead of letting load
	// spikes pile unbounded work onto the workers.
	MaxInflight int
	// Metrics, when non-nil, arms per-operation counters, latency
	// histograms and the slow-op tracer (NewServerMetrics). Nil costs
	// nothing: the serving path never reads the clock.
	Metrics *ServerMetrics
}

// Request is one operation in a batch.
type Request struct {
	Op    byte
	Key   []byte
	Val   []byte // Set: value; Scan: unused
	Limit uint32 // Scan only
}

// Response is one operation's result.
type Response struct {
	Status byte
	Val    []byte
	// Scan results.
	Keys, Vals [][]byte
}

// fencer is the epoch-fencing surface a served index may expose (the
// sharded durable store does). FenceErr is the refuse-early write check —
// non-nil exactly when a higher epoch has fenced the store — kept separate
// from WriteErr so StatusFenced (definitively not applied, safe to resend
// to the new leader) never blurs into StatusDegraded (local I/O trouble).
type fencer interface {
	FenceErr() error
	Fence(epoch uint64) error
	Epoch() uint64
	FencedBy() uint64
}

// Server serves an index.Index over TCP. When the index is a sharded
// store (index.Batcher), each request batch's point operations are
// dispatched to a pool of per-shard workers: one worker owns each shard,
// so disjoint shards execute a batch concurrently while every operation
// on one shard — and hence on one key — keeps its batch order.
//
// When the index supports pinned readers (index.ReadPinner), every
// connection handler and every shard worker claims one read handle for
// its lifetime, so a served GET pays the index's per-reader registration
// once per connection instead of once per request — the paper's §2.5
// lock-free readers amortized across the wire. Range operations (SCAN,
// SCANDESC) go through the same per-connection handle when it supports
// scans (index.ScanHandle), so they ride the lock-free scan path too.
type Server struct {
	ix  index.Index
	bx  index.Batcher // non-nil when ix supports shard dispatch
	rp  index.ReadPinner
	dx  index.Durable // non-nil when ix persists (serves OpFlush)
	opt ServerOptions
	ro  atomic.Bool // mutations answer StatusReadOnly while set
	ln  net.Listener
	mu  sync.Mutex
	wg  sync.WaitGroup
	cls bool

	// wh is the index's degraded-mode surface (the sharded durable
	// store); nil when the index has none.
	wh interface{ WriteErr(key []byte) error }
	// fc is the index's epoch-fencing surface; nil when the index has no
	// replication epochs.
	fc fencer
	// sem is the MaxInflight semaphore; nil means uncapped.
	sem chan struct{}
	// mx is the armed instrument bundle (opt.Metrics); nil records
	// nothing. start feeds OpStat's uptime.
	mx    *ServerMetrics
	start time.Time

	workers  []chan func(index.ReadHandle) // one job channel per shard
	workerWG sync.WaitGroup
}

// newReadHandle returns a pinned read handle for one goroutine's
// lifetime, or nil when the index has no amortized read path.
func (s *Server) newReadHandle() index.ReadHandle {
	if s.rp == nil {
		return nil
	}
	return s.rp.NewReadHandle()
}

// Serve starts a plain server on addr (e.g. "127.0.0.1:0") and returns
// it; the chosen address is available via Addr.
func Serve(addr string, ix index.Index) (*Server, error) {
	return ServeOpts(addr, ix, ServerOptions{})
}

// ServeOpts starts a server with replication-aware options: read-only
// followers, an OpSubscribe hook, and OpStat enrichment. When the options
// wire a Subscribe hook, whoever owns that hook (the replication source)
// must be closed before the server: Close waits for connection handlers,
// and a subscriber's handler only returns when its stream dies.
func ServeOpts(addr string, ix index.Index, opt ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ix: ix, ln: ln, opt: opt, mx: opt.Metrics, start: time.Now()}
	s.ro.Store(opt.ReadOnly)
	if opt.MaxInflight > 0 {
		s.sem = make(chan struct{}, opt.MaxInflight)
	}
	if rp, ok := ix.(index.ReadPinner); ok {
		s.rp = rp
	}
	if wh, ok := ix.(interface{ WriteErr(key []byte) error }); ok {
		s.wh = wh
	}
	if fc, ok := ix.(fencer); ok {
		s.fc = fc
	}
	if dx, ok := ix.(index.Durable); ok {
		s.dx = dx
		// A store can implement the lifecycle yet be volatile (the sharded
		// store created without a directory): its Flush is a vacuous no-op,
		// and clients deserve StatusNotFound, not a fake durability ack.
		if v, ok := ix.(interface{ Durable() bool }); ok && !v.Durable() {
			s.dx = nil
		}
	}
	if bx, ok := ix.(index.Batcher); ok && bx.NumShards() > 1 {
		s.bx = bx
		s.workers = make([]chan func(index.ReadHandle), bx.NumShards())
		for i := range s.workers {
			ch := make(chan func(index.ReadHandle), 16)
			s.workers[i] = ch
			s.workerWG.Add(1)
			go func() {
				defer s.workerWG.Done()
				h := s.newReadHandle() // the worker's own pinned reader
				if h != nil {
					defer h.Close()
				}
				for job := range ch {
					// A panicking job must not take the worker (and with it
					// the whole shard) down; its batch's connection reports
					// StatusErr and the pool keeps serving.
					func() {
						defer func() { recover() }()
						job(h)
					}()
				}
			}()
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetReadOnly flips mutation rejection at runtime — promotion of a
// follower to a writable standalone store flips it off.
func (s *Server) SetReadOnly(ro bool) { s.ro.Store(ro) }

// Close stops the listener, waits for connection handlers to finish
// their in-flight batches, and drains the shard worker pool. Idempotent:
// a second Close returns nil without touching the already-drained pool.
// The server does not own the index; closing a durable index is its
// creator's job, after Close returns.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.cls {
		s.mu.Unlock()
		return nil
	}
	s.cls = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	for _, ch := range s.workers {
		close(ch)
	}
	s.workerWG.Wait()
	return err
}

func (s *Server) closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cls
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	// A panic while serving this connection (a corrupt request tripping an
	// index edge case, a bug in a handler) drops the connection, never the
	// process: every other connection keeps serving.
	defer func() { recover() }()
	if s.mx != nil {
		s.mx.conns.Inc()
		defer s.mx.conns.Dec()
	}
	r := bufio.NewReaderSize(conn, 1<<20)
	w := bufio.NewWriterSize(conn, 1<<20)
	h := s.newReadHandle() // one pinned reader per connection
	if h != nil {
		defer h.Close()
	}
	scratch := make([]Request, 0, DefaultBatch)
	for {
		if s.opt.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opt.ReadTimeout))
		}
		reqs, err := readRequests(r, scratch[:0])
		if err != nil {
			return // EOF, deadline or protocol error: drop the connection
		}
		if len(reqs) == 1 && reqs[0].Op == OpSubscribe {
			if s.opt.Subscribe == nil {
				s.mx.record(OpSubscribe, StatusNotFound, nil, 0)
				// Not a replication leader: a regular one-response frame
				// says so and the connection stays usable.
				var hdr [6]byte
				binary.LittleEndian.PutUint32(hdr[:4], 3)
				binary.LittleEndian.PutUint16(hdr[4:], 1)
				if _, err := w.Write(hdr[:]); err != nil {
					return
				}
				if err := w.WriteByte(StatusNotFound); err != nil || w.Flush() != nil {
					return
				}
				continue
			}
			// The connection now belongs to the replication stream: long
			// idle stretches are its normal state, so the per-batch
			// deadlines must not apply.
			conn.SetDeadline(time.Time{})
			s.mx.record(OpSubscribe, StatusOK, nil, 0)
			if s.mx != nil {
				s.mx.subscribers.Inc()
			}
			s.opt.Subscribe(conn, r, w, reqs[0].Key)
			if s.mx != nil {
				s.mx.subscribers.Dec()
			}
			return
		}
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
			default:
				// The cap is full: this batch waits its turn. Count the wait
				// so operators can see backpressure engaging before latency
				// SLOs notice it.
				if s.mx != nil {
					s.mx.bpWaits.Inc()
					s.mx.bpWaiting.Inc()
				}
				s.sem <- struct{}{}
				if s.mx != nil {
					s.mx.bpWaiting.Dec()
				}
			}
		}
		var t0 time.Time
		if s.mx != nil {
			t0 = time.Now()
			s.mx.inflight.Inc()
		}
		var perr error
		if s.dispatchable(reqs) {
			perr = s.processSharded(w, reqs, h)
		} else {
			perr = s.process(w, reqs, h)
		}
		if s.opt.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.opt.WriteTimeout))
		}
		if perr == nil {
			perr = w.Flush()
		}
		if s.mx != nil {
			s.mx.inflight.Dec()
			s.mx.batches.Inc()
			s.mx.batchOps.Add(uint64(len(reqs)))
			s.mx.batchSeconds.Observe(time.Since(t0))
		}
		if s.sem != nil {
			<-s.sem
		}
		if perr != nil {
			return
		}
		if s.closed() {
			return
		}
		scratch = reqs
	}
}

// dispatchable reports whether a batch can go through the per-shard
// worker pool: a sharded index, more than one request to amortize the
// handoff, and point operations only — a Scan crosses shard boundaries,
// so any batch containing one falls back to sequential processing.
func (s *Server) dispatchable(reqs []Request) bool {
	if s.bx == nil || len(reqs) < 2 {
		return false
	}
	for _, rq := range reqs {
		switch rq.Op {
		case OpGet, OpSet, OpDel:
		default:
			return false
		}
	}
	return true
}

// execPoint executes one point operation against the index, returning the
// response status plus, for operations whose response carries a value
// section (Get), the value. Both processing paths share it so the wire
// semantics cannot diverge. Gets go through the calling goroutine's
// pinned read handle when one exists. Set copies its buffers: the request
// slices are reused per batch.
func (s *Server) execPoint(rq *Request, h index.ReadHandle) (status byte, val []byte, hasVal bool) {
	switch rq.Op {
	case OpGet:
		var v []byte
		var ok bool
		if h != nil {
			v, ok = h.Get(rq.Key)
		} else {
			v, ok = s.ix.Get(rq.Key)
		}
		if !ok {
			return StatusNotFound, nil, true
		}
		return StatusOK, v, true
	case OpSet:
		// The fence check runs first, BEFORE the index mutates: a stale
		// leader must refuse every write once it knows a higher epoch
		// exists, and the refusal must prove non-application so clients
		// can resend to the new leader.
		if s.fc != nil && s.fc.FenceErr() != nil {
			return StatusFenced, nil, false
		}
		if s.ro.Load() {
			return StatusReadOnly, nil, false
		}
		// The degraded check runs BEFORE the index mutates: a write the
		// WAL cannot log must not land in memory either, or reads would
		// serve state that a restart loses.
		if s.wh != nil && s.wh.WriteErr(rq.Key) != nil {
			return StatusDegraded, nil, false
		}
		k := append([]byte{}, rq.Key...)
		v := append([]byte{}, rq.Val...)
		s.ix.Set(k, v)
		return StatusOK, nil, false
	default: // OpDel; dispatchable/process admit nothing else
		if s.fc != nil && s.fc.FenceErr() != nil {
			return StatusFenced, nil, false
		}
		if s.ro.Load() {
			return StatusReadOnly, nil, false
		}
		if s.wh != nil && s.wh.WriteErr(rq.Key) != nil {
			return StatusDegraded, nil, false
		}
		if s.ix.Del(rq.Key) {
			return StatusOK, nil, false
		}
		return StatusNotFound, nil, false
	}
}

// processSharded executes one batch through the per-shard worker pool.
// Requests are grouped by owning shard in batch order; each group runs on
// its shard's worker, results land in a positional slice, and responses
// are serialized in the original request order once every group finishes.
// A batch that lands entirely on one shard (e.g. a skewed keyspace under
// a uniform partitioner) runs inline on the connection handler instead,
// so concurrent connections never serialize behind a single worker.
// connHandle is the connection goroutine's pinned reader, used only on
// that inline path; dispatched groups use their worker's own handle.
func (s *Server) processSharded(w *bufio.Writer, reqs []Request, connHandle index.ReadHandle) error {
	type result struct {
		status byte
		val    []byte // Get only; nil means no value section
		hasVal bool
	}
	groups := make([][]int, s.bx.NumShards())
	active := 0
	for i, rq := range reqs {
		g := s.bx.ShardOf(rq.Key)
		if len(groups[g]) == 0 {
			active++
		}
		groups[g] = append(groups[g], i)
	}
	results := make([]result, len(reqs))
	// Within a group, maximal runs of consecutive Gets go through the
	// handle's batched lookup (Wormhole's memory-parallel pipeline) in one
	// call. Runs never extend across a Set or Del, so each key's
	// operations keep their in-batch program order.
	runGroup := func(g []int, h index.ReadHandle) {
		bh, _ := h.(index.BatchHandle)
		var keys [][]byte
		var run []int
		flush := func() {
			if len(run) == 0 {
				return
			}
			var t0 time.Time
			if s.mx != nil {
				t0 = time.Now()
			}
			vals, found := bh.GetBatch(keys)
			// The run executes as one memory-parallel pipeline, so
			// per-operation latency is the run's wall time divided evenly —
			// the fair per-op cost of a batched lookup.
			var per time.Duration
			if s.mx != nil {
				per = time.Since(t0) / time.Duration(len(run))
			}
			for j, i := range run {
				if found[j] {
					results[i] = result{status: StatusOK, val: vals[j], hasVal: true}
					s.mx.record(OpGet, StatusOK, keys[j], per)
				} else {
					results[i] = result{status: StatusNotFound, hasVal: true}
					s.mx.record(OpGet, StatusNotFound, keys[j], per)
				}
			}
			keys, run = keys[:0], run[:0]
		}
		for _, i := range g {
			if bh != nil && reqs[i].Op == OpGet {
				keys = append(keys, reqs[i].Key)
				run = append(run, i)
				continue
			}
			flush()
			var t0 time.Time
			if s.mx != nil {
				t0 = time.Now()
			}
			st, v, hasVal := s.execPoint(&reqs[i], h)
			if s.mx != nil {
				s.mx.record(reqs[i].Op, st, reqs[i].Key, time.Since(t0))
			}
			results[i] = result{status: st, val: v, hasVal: hasVal}
		}
		flush()
	}
	if active == 1 {
		for _, g := range groups {
			if len(g) > 0 {
				runGroup(g, connHandle)
			}
		}
	} else {
		var wg sync.WaitGroup
		for sh, g := range groups {
			if len(g) == 0 {
				continue
			}
			wg.Add(1)
			g := g
			s.workers[sh] <- func(h index.ReadHandle) {
				defer wg.Done()
				// A panicking group answers StatusErr (with an empty value
				// section where the wire format demands one, so the frame
				// stays decodable) instead of poisoning the worker.
				defer func() {
					if recover() != nil {
						for _, i := range g {
							results[i] = result{status: StatusErr, hasVal: reqs[i].Op == OpGet}
							// No honest duration for a panicked group: count
							// the outcome, skip the histogram.
							s.mx.record(reqs[i].Op, StatusErr, reqs[i].Key, 0)
						}
					}
				}()
				runGroup(g, h)
			}
		}
		wg.Wait()
	}
	var body []byte
	for _, rs := range results {
		body = append(body, rs.status)
		if rs.hasVal {
			body = binary.LittleEndian.AppendUint32(body, uint32(len(rs.val)))
			body = append(body, rs.val...)
		}
	}
	var hdr [6]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)+2))
	binary.LittleEndian.PutUint16(hdr[4:], uint16(len(reqs)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// stat assembles the OpStat document from the served index plus the
// options' role-specific filler.
func (s *Server) stat() *Stat {
	st := &Stat{
		Role:     s.opt.Role,
		ReadOnly: s.ro.Load(),
		Keys:     s.ix.Count(),
		Durable:  s.dx != nil,
	}
	if st.Role == "" {
		st.Role = "standalone"
	}
	if s.bx != nil {
		st.Shards = s.bx.NumShards()
	} else if b, ok := s.ix.(index.Batcher); ok {
		st.Shards = b.NumShards()
	}
	if wb, ok := s.ix.(interface{ WALBytes() int64 }); ok {
		st.WALBytes = wb.WALBytes()
	}
	if g, ok := s.ix.(interface{ Gens() []uint64 }); ok {
		st.Gens = g.Gens()
	}
	if hl, ok := s.ix.(interface{ Health() []wal.Health }); ok {
		st.Health = hl.Health()
	}
	if s.fc != nil {
		st.Epoch = s.fc.Epoch()
		st.FencedBy = s.fc.FencedBy()
	}
	st.UptimeS = int64(time.Since(s.start).Seconds())
	st.GoVersion = runtime.Version()
	st.Goroutines = runtime.NumGoroutine()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms) // stat is a rare, operator-driven request
	st.HeapAllocBytes = ms.HeapAlloc
	st.HeapSysBytes = ms.HeapSys
	st.GCCycles = ms.NumGC
	if s.mx != nil && s.mx.Slow != nil {
		st.SlowOps = s.mx.Slow.Total()
	}
	if s.opt.StatFill != nil {
		s.opt.StatFill(st)
	}
	return st
}

// scanner resolves the function serving a range operation: the calling
// goroutine's pinned read handle when it supports scans (the lock-free
// scan path amortized per connection, like Gets), otherwise the index
// itself. nil means the index has no scan in that direction.
func (s *Server) scanner(h index.ReadHandle, desc bool) func([]byte, func(k, v []byte) bool) {
	if sh, ok := h.(index.ScanHandle); ok {
		if desc {
			return sh.ScanDesc
		}
		return sh.Scan
	}
	if desc {
		if od, ok := s.ix.(index.OrderedDesc); ok {
			return od.ScanDesc
		}
		return nil
	}
	if ord, ok := s.ix.(index.Ordered); ok {
		return ord.Scan
	}
	return nil
}

func (s *Server) process(w *bufio.Writer, reqs []Request, h index.ReadHandle) error {
	var hdr [6]byte
	binary.LittleEndian.PutUint16(hdr[4:], uint16(len(reqs)))
	// The frame length is not known upfront; buffer the body.
	var body []byte
	for _, rq := range reqs {
		// Every case writes its status byte first, so body[stAt] after the
		// switch is this operation's outcome — one timing site covers all
		// opcodes.
		stAt := len(body)
		var t0 time.Time
		if s.mx != nil {
			t0 = time.Now()
		}
		switch rq.Op {
		case OpGet, OpSet, OpDel:
			st, v, hasVal := s.execPoint(&rq, h)
			body = append(body, st)
			if hasVal {
				body = binary.LittleEndian.AppendUint32(body, uint32(len(v)))
				body = append(body, v...)
			}
		case OpFlush:
			// Earlier operations in this batch are already applied (and
			// logged, on a durable index), so the barrier covers them.
			switch {
			case s.dx == nil:
				body = append(body, StatusNotFound)
			case s.dx.Flush() != nil:
				body = append(body, StatusErr)
			default:
				body = append(body, StatusOK)
			}
		case OpFence:
			switch {
			case s.fc == nil || len(rq.Key) != 8:
				body = append(body, StatusNotFound)
			case s.fc.Fence(binary.LittleEndian.Uint64(rq.Key)) != nil:
				// The in-memory fence stands even when persisting it
				// failed; report the failure so the caller knows a restart
				// could forget it.
				body = append(body, StatusErr)
			default:
				body = append(body, StatusOK)
			}
		case OpStat:
			doc, err := json.Marshal(s.stat())
			if err != nil {
				body = append(body, StatusErr)
				body = binary.LittleEndian.AppendUint32(body, 0)
				break
			}
			body = append(body, StatusOK)
			body = binary.LittleEndian.AppendUint32(body, uint32(len(doc)))
			body = append(body, doc...)
		case OpScan, OpScanDesc:
			scan := s.scanner(h, rq.Op == OpScanDesc)
			if scan == nil {
				body = append(body, StatusNotFound)
				body = binary.LittleEndian.AppendUint16(body, 0)
				break
			}
			body = append(body, StatusOK)
			lenAt := len(body)
			body = binary.LittleEndian.AppendUint16(body, 0)
			n := 0
			start := rq.Key
			if len(start) == 0 {
				// The wire cannot carry nil: an empty key means "from the
				// smallest key" ascending, "from the largest" descending.
				start = nil
			}
			scan(start, func(k, v []byte) bool {
				body = binary.LittleEndian.AppendUint32(body, uint32(len(k)))
				body = append(body, k...)
				body = binary.LittleEndian.AppendUint32(body, uint32(len(v)))
				body = append(body, v...)
				n++
				return uint32(n) < rq.Limit
			})
			binary.LittleEndian.PutUint16(body[lenAt:], uint16(n))
		default:
			return fmt.Errorf("netkv: bad opcode %d", rq.Op)
		}
		if s.mx != nil {
			s.mx.record(rq.Op, body[stAt], rq.Key, time.Since(t0))
		}
	}
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)+2))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

func readRequests(r *bufio.Reader, reqs []Request) ([]Request, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	frameLen := binary.LittleEndian.Uint32(hdr[:4])
	count := binary.LittleEndian.Uint16(hdr[4:])
	if frameLen < 2 || frameLen > maxFrame {
		return nil, errors.New("netkv: bad frame length")
	}
	body := make([]byte, frameLen-2)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	for i := 0; i < int(count); i++ {
		var rq Request
		if len(body) < 5 {
			return nil, errors.New("netkv: truncated op")
		}
		rq.Op = body[0]
		klen := binary.LittleEndian.Uint32(body[1:5])
		body = body[5:]
		// Widen before adding: klen+4 in uint32 wraps for hostile lengths
		// near 2^32, and the resulting body[:klen] would panic the server.
		if uint64(klen)+4 > uint64(len(body)) {
			return nil, errors.New("netkv: truncated key")
		}
		rq.Key = body[:klen]
		body = body[klen:]
		extra := binary.LittleEndian.Uint32(body[:4])
		body = body[4:]
		if rq.Op == OpScan || rq.Op == OpScanDesc {
			rq.Limit = extra
		} else {
			if uint32(len(body)) < extra {
				return nil, errors.New("netkv: truncated value")
			}
			rq.Val = body[:extra]
			body = body[extra:]
		}
		reqs = append(reqs, rq)
	}
	return reqs, nil
}

// Client is a single-connection batched client. It is not safe for
// concurrent use; benchmark workers each own one client, as HERD clients
// each own a queue pair.
//
// Transport errors are sticky: once a Flush fails, the connection's
// protocol state is unknown (a response may be half-read), so every later
// Flush reports the original failure — wrapped with the server address —
// instead of a confusing short-read on reused state. Redial makes the
// client usable again.
type Client struct {
	addr string
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	out  []byte
	ops  []byte // op kind per queued request, needed to decode responses
	n    int
	err  error // sticky transport error; cleared by Redial

	// Timeout, when non-zero, bounds each Flush's network phases: the
	// batch write and the response read each get a deadline this far
	// out. An expired deadline surfaces as a sticky transport error;
	// Redial (or FlushRetry, for read-only batches) recovers.
	Timeout time.Duration
}

// Dial connects to a netkv server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		addr: addr,
		conn: conn,
		r:    bufio.NewReaderSize(conn, 1<<20),
		w:    bufio.NewWriterSize(conn, 1<<20),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Err returns the sticky transport error, if any: the underlying cause of
// the client's broken state (connection reset, server gone), not the
// secondary decode failure it would otherwise surface as.
func (c *Client) Err() error { return c.err }

// fail records the first transport error, wrapped with the address so the
// caller sees which server died, and returns the sticky condition.
func (c *Client) fail(err error) error {
	if c.err == nil {
		c.err = fmt.Errorf("netkv: connection to %s broken: %w", c.addr, err)
	}
	return c.err
}

// Redial reconnects a broken client: it closes the old connection,
// retries the dial with exponential backoff until one succeeds or maxWait
// elapses, and clears the sticky error. Reconnecting is caller-driven —
// the client never redials behind the caller's back, because a batch may
// have been half-applied by the dead server and only the caller knows
// whether re-sending is safe. Queued-but-unsent operations are discarded;
// re-queue them after a successful Redial.
func (c *Client) Redial(maxWait time.Duration) error {
	c.conn.Close()
	backoff := 50 * time.Millisecond
	deadline := time.Now().Add(maxWait)
	for {
		conn, err := net.Dial("tcp", c.addr)
		if err == nil {
			c.conn = conn
			c.r.Reset(conn)
			c.w.Reset(conn)
			c.out, c.ops, c.n = c.out[:0], c.ops[:0], 0
			c.err = nil
			return nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return fmt.Errorf("netkv: redial %s: %w", c.addr, err)
		}
		// Jitter the sleep (uniform in [backoff/2, backoff]): a restarted
		// leader must not take a synchronized reconnect stampede from
		// every client and follower that lost it at the same instant.
		time.Sleep(backoff/2 + rand.N(backoff/2+1))
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// QueueGet appends a GET to the current batch.
func (c *Client) QueueGet(key []byte) { c.queue(OpGet, key, nil, 0) }

// QueueSet appends a SET to the current batch.
func (c *Client) QueueSet(key, val []byte) { c.queue(OpSet, key, val, 0) }

// QueueDel appends a DEL to the current batch.
func (c *Client) QueueDel(key []byte) { c.queue(OpDel, key, nil, 0) }

// QueueFlush appends a FLUSH barrier to the current batch: the server
// forces every mutation logged so far (including this batch's earlier
// operations) to stable storage before answering. StatusNotFound means
// the server's index is volatile.
func (c *Client) QueueFlush() { c.queue(OpFlush, nil, nil, 0) }

// QueueStat appends a STAT request; the response value is a JSON Stat.
func (c *Client) QueueStat() { c.queue(OpStat, nil, nil, 0) }

// Stat issues a one-request batch asking for the server's Stat document.
// Any queued operations are sent (and answered) ahead of it.
func (c *Client) Stat() (*Stat, error) {
	c.QueueStat()
	rs, err := c.Flush()
	if err != nil {
		return nil, err
	}
	r := rs[len(rs)-1]
	if r.Status != StatusOK {
		return nil, fmt.Errorf("netkv: stat failed on %s (status %d)", c.addr, r.Status)
	}
	var st Stat
	if err := json.Unmarshal(r.Val, &st); err != nil {
		return nil, fmt.Errorf("netkv: stat from %s: %w", c.addr, err)
	}
	return &st, nil
}

// QueueFence appends a FENCE carrying epoch: the server, if its index has
// replication epochs, refuses all writes with StatusFenced from before
// this request is answered.
func (c *Client) QueueFence(epoch uint64) {
	var k [8]byte
	binary.LittleEndian.PutUint64(k[:], epoch)
	c.queue(OpFence, k[:], nil, 0)
}

// Fence issues a one-request batch fencing the server at epoch. A nil
// return means the server accepted (and persisted) the fence; any write it
// answers afterwards reports StatusFenced. StatusNotFound (the server's
// index has no epochs) and persistence failures surface as errors.
func (c *Client) Fence(epoch uint64) error {
	c.QueueFence(epoch)
	rs, err := c.Flush()
	if err != nil {
		return err
	}
	switch st := rs[len(rs)-1].Status; st {
	case StatusOK:
		return nil
	case StatusNotFound:
		return fmt.Errorf("netkv: %s has no replication epochs to fence", c.addr)
	default:
		return fmt.Errorf("netkv: fence of %s failed (status %d)", c.addr, st)
	}
}

// QueueScan appends a SCAN (up to limit ascending pairs from key; an
// empty key starts at the smallest) to the batch.
func (c *Client) QueueScan(key []byte, limit int) {
	c.queue(OpScan, key, nil, uint32(limit))
}

// QueueScanDesc appends a descending SCAN (up to limit pairs downward
// from key; an empty key starts at the largest) to the batch.
func (c *Client) QueueScanDesc(key []byte, limit int) {
	c.queue(OpScanDesc, key, nil, uint32(limit))
}

// Pending returns the number of queued operations.
func (c *Client) Pending() int { return c.n }

func (c *Client) queue(op byte, key, val []byte, limit uint32) {
	c.out = append(c.out, op)
	c.out = binary.LittleEndian.AppendUint32(c.out, uint32(len(key)))
	c.out = append(c.out, key...)
	if op == OpScan || op == OpScanDesc {
		c.out = binary.LittleEndian.AppendUint32(c.out, limit)
	} else {
		c.out = binary.LittleEndian.AppendUint32(c.out, uint32(len(val)))
		c.out = append(c.out, val...)
	}
	c.ops = append(c.ops, op)
	c.n++
}

// Flush sends the batch and reads all responses, in request order. The
// returned slices alias an internal buffer valid until the next Flush.
// After a transport error the client is broken until Redial: the error
// (with its underlying cause) repeats on every call rather than decaying
// into short-read noise on a half-consumed stream.
func (c *Client) Flush() ([]Response, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.n == 0 {
		return nil, nil
	}
	var hdr [6]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(c.out)+2))
	binary.LittleEndian.PutUint16(hdr[4:], uint16(c.n))
	if c.Timeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.Timeout))
	}
	if _, err := c.w.Write(hdr[:]); err != nil {
		return nil, c.fail(err)
	}
	if _, err := c.w.Write(c.out); err != nil {
		return nil, c.fail(err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.fail(err)
	}
	ops := append([]byte{}, c.ops...)
	c.out = c.out[:0]
	c.ops = c.ops[:0]
	c.n = 0
	return c.readResponses(ops)
}

// FlushRetry sends the batch like Flush but, when every queued operation
// is an idempotent read (Get, Scan, ScanDesc, Stat) and the transport
// fails, redials and re-sends the same batch until maxWait elapses —
// safe precisely because re-executing a read changes nothing. Batches
// containing mutations or flush barriers never retry: the dead server
// may have applied them, and only the caller knows whether re-sending is
// safe (the same reason Redial itself is caller-driven).
func (c *Client) FlushRetry(maxWait time.Duration) ([]Response, error) {
	idempotent := c.err == nil
	for _, op := range c.ops {
		switch op {
		case OpGet, OpScan, OpScanDesc, OpStat:
		default:
			idempotent = false
		}
	}
	if !idempotent {
		return c.Flush()
	}
	out := append([]byte(nil), c.out...)
	ops := append([]byte(nil), c.ops...)
	n := c.n
	deadline := time.Now().Add(maxWait)
	for {
		rs, err := c.Flush()
		if err == nil {
			return rs, nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, err
		}
		if rerr := c.Redial(remain); rerr != nil {
			return nil, err
		}
		c.out = append(c.out[:0], out...)
		c.ops = append(c.ops[:0], ops...)
		c.n = n
	}
}

func (c *Client) readResponses(ops []byte) ([]Response, error) {
	if c.Timeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.Timeout))
	}
	var hdr [6]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, c.fail(err)
	}
	frameLen := binary.LittleEndian.Uint32(hdr[:4])
	got := int(binary.LittleEndian.Uint16(hdr[4:]))
	if got != len(ops) {
		return nil, c.fail(fmt.Errorf("netkv: response count %d != %d", got, len(ops)))
	}
	if frameLen < 2 || frameLen > maxFrame {
		return nil, c.fail(errors.New("netkv: bad response frame"))
	}
	body := make([]byte, frameLen-2)
	if _, err := io.ReadFull(c.r, body); err != nil {
		return nil, c.fail(err)
	}
	resps := make([]Response, 0, len(ops))
	for _, op := range ops {
		if len(body) < 1 {
			return nil, c.fail(errors.New("netkv: truncated response"))
		}
		rp := Response{Status: body[0]}
		body = body[1:]
		switch op {
		case OpGet, OpStat:
			if len(body) < 4 {
				return nil, c.fail(errors.New("netkv: truncated get response"))
			}
			vlen := binary.LittleEndian.Uint32(body[:4])
			body = body[4:]
			if uint32(len(body)) < vlen {
				return nil, c.fail(errors.New("netkv: truncated get value"))
			}
			rp.Val = body[:vlen]
			body = body[vlen:]
		case OpScan, OpScanDesc:
			if len(body) < 2 {
				return nil, c.fail(errors.New("netkv: truncated scan response"))
			}
			n := int(binary.LittleEndian.Uint16(body[:2]))
			body = body[2:]
			for i := 0; i < n; i++ {
				if len(body) < 4 {
					return nil, c.fail(errors.New("netkv: truncated scan pair"))
				}
				klen := binary.LittleEndian.Uint32(body[:4])
				body = body[4:]
				if uint64(klen)+4 > uint64(len(body)) {
					return nil, c.fail(errors.New("netkv: truncated scan key"))
				}
				rp.Keys = append(rp.Keys, body[:klen])
				body = body[klen:]
				vlen := binary.LittleEndian.Uint32(body[:4])
				body = body[4:]
				if uint32(len(body)) < vlen {
					return nil, c.fail(errors.New("netkv: truncated scan value"))
				}
				rp.Vals = append(rp.Vals, body[:vlen])
				body = body[vlen:]
			}
		}
		resps = append(resps, rp)
	}
	return resps, nil
}
