package netkv

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// MultiClient is a failover-aware point-operation client over a fixed set
// of server addresses — what an application keeps using across a leader
// failover. It speaks to one server at a time and moves on when that
// server refuses or dies:
//
//   - StatusFenced and StatusReadOnly rotate to the next address and
//     resend. Both refusals happen BEFORE the index mutates, so the
//     operation was definitively not applied and resending is exactly-once
//     safe.
//   - A transport error also rotates and resends, but the dead server may
//     have applied the operation before dying: across failover the client
//     is at-least-once for mutations, the standard contract of an
//     asynchronously-replicated store (a Set resend is idempotent; a Del
//     may report NotFound for a delete that in fact happened).
//
// Rotation retries with backoff until Timeout (default 5s) elapses, so a
// brief window where every node refuses — the gap between a leader dying
// and a follower promoting — heals instead of failing fast.
//
// Not safe for concurrent use, like Client.
type MultiClient struct {
	addrs []string
	cur   int
	c     *Client

	// Timeout bounds each operation end to end, failover included
	// (default 5s).
	Timeout time.Duration
}

// DialMulti returns a MultiClient over addrs, preferring them in order. No
// connection is attempted until the first operation, so a dead first
// server costs a failover, not a construction error.
func DialMulti(addrs ...string) (*MultiClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("netkv: DialMulti needs at least one address")
	}
	return &MultiClient{addrs: append([]string(nil), addrs...)}, nil
}

// Addr returns the address the client currently prefers.
func (m *MultiClient) Addr() string { return m.addrs[m.cur] }

// Close closes the live connection, if any.
func (m *MultiClient) Close() error {
	if m.c == nil {
		return nil
	}
	err := m.c.Close()
	m.c = nil
	return err
}

func (m *MultiClient) budget() time.Duration {
	if m.Timeout > 0 {
		return m.Timeout
	}
	return 5 * time.Second
}

func (m *MultiClient) client() (*Client, error) {
	if m.c != nil {
		return m.c, nil
	}
	c, err := Dial(m.addrs[m.cur])
	if err != nil {
		return nil, err
	}
	// A server that dies mid-connection without closing it must cost a
	// bounded slice of the budget, not all of it: the per-Flush timeout
	// turns a silent peer into a transport error the rotation handles.
	c.Timeout = m.budget() / 4
	m.c = c
	return c, nil
}

func (m *MultiClient) rotate() {
	if m.c != nil {
		m.c.Close()
		m.c = nil
	}
	m.cur = (m.cur + 1) % len(m.addrs)
}

// do runs one operation as a single-request batch, failing over until it
// gets a definitive answer or the budget runs out.
func (m *MultiClient) do(op byte, key, val []byte) (Response, error) {
	deadline := time.Now().Add(m.budget())
	backoff := time.Millisecond
	var lastErr error
	sleep := func() {
		// Jittered, capped: during the promotion gap every address
		// refuses, and the poll cadence bounds how fast the client
		// notices the new leader without hammering the refusing ones.
		time.Sleep(backoff/2 + rand.N(backoff/2+1))
		if backoff *= 2; backoff > 100*time.Millisecond {
			backoff = 100 * time.Millisecond
		}
	}
	for time.Now().Before(deadline) {
		c, err := m.client()
		if err != nil {
			lastErr = err
			m.rotate()
			sleep()
			continue
		}
		c.queue(op, key, val, 0)
		rs, err := c.Flush()
		if err != nil {
			lastErr = err
			m.rotate()
			continue
		}
		r := rs[len(rs)-1]
		switch r.Status {
		case StatusFenced, StatusReadOnly:
			lastErr = fmt.Errorf("netkv: %s refused the write (status %d)", m.addrs[m.cur], r.Status)
			m.rotate()
			sleep()
			continue
		}
		// The response buffer is reused on the next Flush: copy out.
		r.Val = append([]byte(nil), r.Val...)
		return r, nil
	}
	if lastErr == nil {
		lastErr = errors.New("netkv: no server answered")
	}
	return Response{}, fmt.Errorf("netkv: every server failed or refused for %v: %w", m.budget(), lastErr)
}

// Set writes key=val on whichever server currently accepts writes.
func (m *MultiClient) Set(key, val []byte) error {
	r, err := m.do(OpSet, key, val)
	if err != nil {
		return err
	}
	if r.Status != StatusOK {
		return fmt.Errorf("netkv: set refused (status %d)", r.Status)
	}
	return nil
}

// Get reads key from the current server (which may be a follower serving
// a slightly stale prefix — reads are allowed everywhere).
func (m *MultiClient) Get(key []byte) ([]byte, bool, error) {
	r, err := m.do(OpGet, key, nil)
	if err != nil {
		return nil, false, err
	}
	switch r.Status {
	case StatusOK:
		return r.Val, true, nil
	case StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("netkv: get failed (status %d)", r.Status)
	}
}

// Del deletes key on whichever server currently accepts writes; found
// reports whether the key existed there.
func (m *MultiClient) Del(key []byte) (bool, error) {
	r, err := m.do(OpDel, key, nil)
	if err != nil {
		return false, err
	}
	switch r.Status {
	case StatusOK:
		return true, nil
	case StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("netkv: del failed (status %d)", r.Status)
	}
}
