package netkv

import (
	"net"
	"strings"
	"testing"
	"time"

	"github.com/repro/wormhole/internal/shard"
)

// TestStatOverWire checks OpStat's base document on a plain server and a
// sharded durable one.
func TestStatOverWire(t *testing.T) {
	_, c := startServer(t, "wormhole")
	c.QueueSet([]byte("a"), []byte("1"))
	c.QueueSet([]byte("b"), []byte("2"))
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "standalone" || st.Keys != 2 || st.Durable || st.ReadOnly {
		t.Fatalf("stat: %+v", st)
	}

	dir := t.TempDir()
	ds, err := shard.Open(shard.Options{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	srv, err := Serve("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dc, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	ds.Set([]byte("k"), []byte("v"))
	dst, err := dc.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if !dst.Durable || dst.Shards != 2 || dst.Keys != 1 {
		t.Fatalf("durable stat: %+v", dst)
	}
	if dst.WALBytes <= 0 || len(dst.Gens) != 2 {
		t.Fatalf("durable stat WAL fields: %+v", dst)
	}
	// Stat composes with other operations in one batch, in order.
	dc.QueueGet([]byte("k"))
	dc.QueueStat()
	rs, err := dc.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Status != StatusOK || rs[1].Status != StatusOK || len(rs[1].Val) == 0 {
		t.Fatalf("mixed batch: %+v", rs)
	}
}

// TestReadOnlyServer checks follower-mode mutation rejection and its
// runtime flip at promotion.
func TestReadOnlyServer(t *testing.T) {
	st := shard.New(shard.Options{Shards: 2})
	st.Set([]byte("present"), []byte("v"))
	srv, err := ServeOpts("127.0.0.1:0", st, ServerOptions{ReadOnly: true, Role: "follower"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.QueueSet([]byte("w"), []byte("1"))
	c.QueueDel([]byte("present"))
	c.QueueGet([]byte("present"))
	rs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Status != StatusReadOnly || rs[1].Status != StatusReadOnly {
		t.Fatalf("mutations on a read-only server: %+v", rs[:2])
	}
	if rs[2].Status != StatusOK || string(rs[2].Val) != "v" {
		t.Fatalf("read on a read-only server: %+v", rs[2])
	}
	if st.Count() != 1 {
		t.Fatalf("read-only server mutated the index: %d keys", st.Count())
	}

	// The sharded dispatch path (point-op batches >= 2 on a multi-shard
	// index) must enforce read-only too.
	big := make([][]byte, 8)
	for i := range big {
		big[i] = []byte{byte('a' + i)}
	}
	for _, k := range big {
		c.QueueSet(k, []byte("x"))
	}
	rs, err = c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Status != StatusReadOnly {
			t.Fatalf("dispatched mutation %d: status %d", i, r.Status)
		}
	}

	if st2, err := c.Stat(); err != nil || !st2.ReadOnly || st2.Role != "follower" {
		t.Fatalf("read-only stat: %+v %v", st2, err)
	}

	srv.SetReadOnly(false)
	c.QueueSet([]byte("w"), []byte("1"))
	rs, err = c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Status != StatusOK {
		t.Fatalf("write after promotion: %+v", rs[0])
	}
}

// TestClientStickyErrorAndRedial runs a client into a dying server: the
// error must surface the underlying cause (not a bare short-read), name
// the address, repeat on every call until Redial, and the client must
// work again after a successful Redial to a revived server.
func TestClientStickyErrorAndRedial(t *testing.T) {
	// A raw listener plays the dying server: it accepts one connection and
	// slams it shut, which a real crashed server looks like on the wire.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go func() {
		if conn, err := ln.Accept(); err == nil {
			conn.Close()
		}
	}()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.QueueGet([]byte("k"))
	_, err1 := c.Flush()
	if err1 == nil {
		t.Fatal("Flush against a dead server succeeded")
	}
	if !strings.Contains(err1.Error(), addr) {
		t.Fatalf("error does not name the server: %v", err1)
	}
	if c.Err() == nil {
		t.Fatal("no sticky error recorded")
	}
	// The condition must repeat verbatim, not decay into new decode noise.
	c.QueueGet([]byte("k"))
	if _, err2 := c.Flush(); err2 != err1 {
		t.Fatalf("sticky error changed: %v vs %v", err2, err1)
	}

	// Redial against the now-closed listener must give up within its
	// budget and leave the client broken.
	ln.Close()
	if err := c.Redial(50 * time.Millisecond); err == nil {
		t.Fatal("Redial succeeded with no server")
	}
	if c.Err() == nil {
		t.Fatal("failed Redial cleared the sticky error")
	}

	// A real server comes back on the same address; Redial heals the
	// client end to end.
	st := shard.New(shard.Options{Shards: 2})
	st.Set([]byte("k"), []byte("v"))
	srv, err := Serve(addr, st)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv.Close()
	if err := c.Redial(5 * time.Second); err != nil {
		t.Fatalf("Redial: %v", err)
	}
	if c.Err() != nil {
		t.Fatalf("sticky error survived Redial: %v", c.Err())
	}
	c.QueueGet([]byte("k"))
	rs, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Status != StatusOK || string(rs[0].Val) != "v" {
		t.Fatalf("get after redial: %+v", rs[0])
	}
	c.Close()
}

// TestRedialDiscardsQueued documents Redial's contract: operations queued
// but never flushed do not survive the reconnect (the caller re-queues).
func TestRedialDiscardsQueued(t *testing.T) {
	st := shard.New(shard.Options{Shards: 2})
	srv, err := Serve("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.QueueSet([]byte("doomed"), []byte("x"))
	if c.Pending() != 1 {
		t.Fatalf("pending %d", c.Pending())
	}
	if err := c.Redial(time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Pending() != 0 {
		t.Fatalf("queued ops survived Redial: %d", c.Pending())
	}
	if rs, err := c.Flush(); err != nil || rs != nil {
		t.Fatalf("empty flush after redial: %v %v", rs, err)
	}
}
