package netkv

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/repro/wormhole/internal/index"
	"github.com/repro/wormhole/internal/shard"
)

// panicIndex wraps an index and panics on a poison key: the lever for
// proving a handler panic costs one connection, not the process. Only the
// plain Index surface is forwarded, so requests take the inline path.
type panicIndex struct {
	index.Index
}

func (p *panicIndex) Get(key []byte) ([]byte, bool) {
	if string(key) == "boom" {
		panic("poison key")
	}
	return p.Index.Get(key)
}

func TestPanicDropsConnectionNotServer(t *testing.T) {
	s, err := Serve("127.0.0.1:0", &panicIndex{Index: shard.New(shard.Options{Shards: 2})})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c1, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c1.QueueSet([]byte("k"), []byte("v"))
	if _, err := c1.Flush(); err != nil {
		t.Fatal(err)
	}
	c1.QueueGet([]byte("boom"))
	if _, err := c1.Flush(); err == nil {
		t.Fatal("poisoned request got a response; want a dropped connection")
	}

	// The server survives: a fresh connection serves normally.
	c2, err := Dial(s.Addr())
	if err != nil {
		t.Fatalf("server died with the poisoned connection: %v", err)
	}
	defer c2.Close()
	c2.QueueGet([]byte("k"))
	rs, err := c2.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Status != StatusOK || string(rs[0].Val) != "v" {
		t.Fatalf("after panic: %+v", rs[0])
	}
}

// panicHandle panics on a poison key from inside a pinned read handle —
// i.e. on a shard worker's goroutine when the batch fans out. It
// deliberately does not implement BatchHandle, so poisoned Gets reach its
// Get instead of the batched path.
type panicHandle struct {
	inner index.ReadHandle
}

func (h *panicHandle) Get(key []byte) ([]byte, bool) {
	if strings.HasPrefix(string(key), "boom") {
		panic("poison key")
	}
	return h.inner.Get(key)
}

func (h *panicHandle) Close() { h.inner.Close() }

// panicPinner serves panicHandles; everything else (routing, batching,
// mutation) is the real sharded store.
type panicPinner struct {
	*shard.Store
}

func (p *panicPinner) NewReadHandle() index.ReadHandle {
	return &panicHandle{inner: p.Store.NewReadHandle()}
}

// TestWorkerPanicAnswersErrAndPoolSurvives panics inside the per-shard
// worker pool: the poisoned group must answer StatusErr in a well-formed
// frame — the connection survives, the other shard's results are intact —
// and the worker keeps serving later batches.
func TestWorkerPanicAnswersErrAndPoolSurvives(t *testing.T) {
	// No Sample: uniform byte-range partitioning, so "boom" (0x62...)
	// lands on shard 0 and the 0xf0 key on shard 1 — two active groups,
	// forcing the worker-pool path rather than the inline one.
	s, err := Serve("127.0.0.1:0", &panicPinner{Store: shard.New(shard.Options{Shards: 2})})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	hi := []byte{0xf0, 0x01}
	c.QueueSet(hi, []byte("hv"))
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.QueueGet([]byte("boom"))
	c.QueueGet(hi)
	rs, err := c.Flush()
	if err != nil {
		t.Fatalf("worker panic broke the connection: %v", err)
	}
	if rs[0].Status != StatusErr {
		t.Fatalf("poisoned get: status %d, want StatusErr", rs[0].Status)
	}
	if rs[1].Status != StatusOK || string(rs[1].Val) != "hv" {
		t.Fatalf("healthy shard's result corrupted by sibling panic: %+v", rs[1])
	}

	// Same connection, same workers: the pool survived.
	c.QueueGet(hi)
	c.QueueGet([]byte("absent"))
	rs, err = c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Status != StatusOK || rs[1].Status != StatusNotFound {
		t.Fatalf("pool dead after panic: %+v %+v", rs[0], rs[1])
	}
}

// TestReadTimeoutDropsIdleAndFlushRetryRecovers exercises the server's
// per-connection read deadline together with the client's read-only
// retry: the server drops a connection idle past ReadTimeout, and a
// FlushRetry of an all-reads batch redials and re-sends transparently —
// while a batch containing a mutation refuses to retry.
func TestReadTimeoutDropsIdleAndFlushRetryRecovers(t *testing.T) {
	st := shard.New(shard.Options{Shards: 2})
	s, err := ServeOpts("127.0.0.1:0", st, ServerOptions{ReadTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.QueueSet([]byte("k"), []byte("v"))
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Idle past the deadline: the server has dropped us by now.
	time.Sleep(500 * time.Millisecond)
	c.QueueGet([]byte("k"))
	rs, err := c.FlushRetry(5 * time.Second)
	if err != nil {
		t.Fatalf("idempotent retry did not recover: %v", err)
	}
	if rs[0].Status != StatusOK || string(rs[0].Val) != "v" {
		t.Fatalf("retried get: %+v", rs[0])
	}

	// A batch with a mutation must NOT be silently re-sent.
	time.Sleep(500 * time.Millisecond)
	c.QueueSet([]byte("k2"), []byte("v2"))
	if _, err := c.FlushRetry(time.Second); err == nil {
		t.Fatal("mutating batch silently retried")
	}
	// The caller decides: an explicit Redial resumes service.
	if err := c.Redial(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.QueueGet([]byte("k"))
	if rs, err = c.Flush(); err != nil || rs[0].Status != StatusOK {
		t.Fatalf("after explicit redial: %v %+v", err, rs)
	}
}

// TestMaxInflightServesConcurrentLoad is a correctness smoke under a tiny
// backpressure cap: many concurrent clients, every response still correct
// and every batch eventually served.
func TestMaxInflightServesConcurrentLoad(t *testing.T) {
	st := shard.New(shard.Options{Shards: 4})
	s, err := ServeOpts("127.0.0.1:0", st, ServerOptions{MaxInflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 40; i++ {
				key := []byte{byte('a' + g), byte(i)}
				c.QueueSet(key, key)
				c.QueueGet(key)
				rs, err := c.Flush()
				if err != nil {
					t.Errorf("client %d: %v", g, err)
					return
				}
				if rs[1].Status != StatusOK || string(rs[1].Val) != string(key) {
					t.Errorf("client %d: %+v", g, rs[1])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// hangingServer accepts connections and then ignores them — the classic
// stuck peer: the TCP handshake succeeds, requests vanish into kernel
// buffers, and no byte ever comes back.
func hangingServer(t *testing.T) (net.Listener, *Client) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		var held []net.Conn
		for {
			conn, err := ln.Accept()
			if err != nil {
				for _, h := range held {
					h.Close()
				}
				return
			}
			held = append(held, conn)
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return ln, c
}

// TestClientTimeoutExpires bounds a Flush against a server that stops
// responding: accept the connection, read nothing, send nothing.
func TestClientTimeoutExpires(t *testing.T) {
	ln, c := hangingServer(t)
	defer ln.Close()
	c.Timeout = 50 * time.Millisecond
	c.QueueGet([]byte("k"))
	start := time.Now()
	if _, err := c.Flush(); err == nil {
		t.Fatal("flush against a hung server returned")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("deadline took %v to fire", el)
	}
}
