package netkv

import (
	"time"

	"github.com/repro/wormhole/internal/metrics"
)

// Op and status names used as Prometheus label values and in slow-op
// traces. Indexed by wire code; pre-built so the record path never
// formats a string.
var opNames = [OpFence + 1]string{
	OpGet:       "get",
	OpSet:       "set",
	OpDel:       "del",
	OpScan:      "scan",
	OpScanDesc:  "scan_desc",
	OpFlush:     "flush",
	OpStat:      "stat",
	OpSubscribe: "subscribe",
	OpFence:     "fence",
}

var statusNames = [StatusFenced + 1]string{
	StatusOK:       "ok",
	StatusNotFound: "not_found",
	StatusErr:      "err",
	StatusReadOnly: "read_only",
	StatusDegraded: "degraded",
	StatusFenced:   "fenced",
}

// ServerMetrics holds the server's pre-registered instruments. Every
// series is created at construction, so the serving hot path only
// touches striped atomics — no registry lookups, no label formatting,
// no allocation. A nil *ServerMetrics is valid and records nothing
// (the record path nil-checks before touching the clock).
type ServerMetrics struct {
	// Slow, when non-nil, is the slow-op tracer fed by every timed
	// operation.
	Slow *metrics.SlowLog

	ops     [OpFence + 1][StatusFenced + 1]*metrics.Counter
	latency [OpFence + 1]*metrics.Histogram

	batches      *metrics.Counter
	batchOps     *metrics.Counter
	batchSeconds *metrics.Histogram

	inflight    *metrics.Gauge
	bpWaiting   *metrics.Gauge
	bpWaits     *metrics.Counter
	conns       *metrics.Gauge
	subscribers *metrics.Gauge
}

// NewServerMetrics registers the netkv family set on reg and returns the
// instrument bundle to pass in ServerOptions.Metrics. slow may be nil
// (no slow-op tracing).
func NewServerMetrics(reg *metrics.Registry, slow *metrics.SlowLog) *ServerMetrics {
	m := &ServerMetrics{Slow: slow}
	for op := range opNames {
		if opNames[op] == "" {
			continue
		}
		for st := range statusNames {
			m.ops[op][st] = reg.Counter("netkv_ops_total",
				"Operations served, by opcode and response status.",
				"op", opNames[op], "status", statusNames[st])
		}
		if byte(op) != OpSubscribe { // a subscription is a stream, not a latency
			m.latency[op] = reg.Histogram("netkv_op_seconds",
				"Per-operation serving latency.", "op", opNames[op])
		}
	}
	m.batches = reg.Counter("netkv_batches_total", "Request batches served.")
	m.batchOps = reg.Counter("netkv_batch_ops_total", "Operations received inside batches.")
	m.batchSeconds = reg.Histogram("netkv_batch_seconds",
		"Whole-batch serving latency (process plus response flush).")
	m.inflight = reg.Gauge("netkv_inflight_batches", "Batches currently processing.")
	m.bpWaiting = reg.Gauge("netkv_backpressure_waiting",
		"Batches waiting on the max-inflight cap right now.")
	m.bpWaits = reg.Counter("netkv_backpressure_waits_total",
		"Batches that had to wait on the max-inflight cap.")
	m.conns = reg.Gauge("netkv_connections", "Open client connections.")
	m.subscribers = reg.Gauge("netkv_subscribers", "Replication streams being served.")
	if slow != nil {
		reg.CollectFunc("netkv_slow_ops_total",
			"Operations that exceeded the slow-op threshold.", metrics.KindCounter,
			func(emit func([]string, float64)) { emit(nil, float64(slow.Total())) })
	}
	return m
}

// record counts one operation's outcome and, when d > 0, its latency —
// feeding the per-op histogram and the slow-op tracer. d == 0 means the
// caller had no timing for the op (e.g. a panicked worker group); the
// outcome still counts, the latency distribution stays honest.
func (m *ServerMetrics) record(op, status byte, key []byte, d time.Duration) {
	if m == nil || int(op) >= len(m.ops) || int(status) >= len(statusNames) {
		return
	}
	m.ops[op][status].Inc()
	if d > 0 {
		if h := m.latency[op]; h != nil {
			h.Observe(d)
		}
		m.Slow.Record(opNames[op], key, statusNames[status], d)
	}
}
