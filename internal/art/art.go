// Package art implements the Adaptive Radix Tree (Leis et al., ICDE 2013),
// the trie baseline of the paper's evaluation (§4): four adaptive node
// sizes (4/16/48/256 children) and pessimistic path compression.
//
// Two deviations from the libart build the paper used:
//
//   - keys may be arbitrary byte strings, including ones that are prefixes
//     of other keys; inner nodes carry a terminator slot for a key that
//     ends exactly at that point (equivalent to the paper's 257th child);
//   - an ordered Scan with seek is provided (the paper omits ART from its
//     range-query figure because libart lacks one).
//
// Like libart, the tree has no built-in concurrency control.
package art

import (
	"bytes"
	"unsafe"
)

// Tree is an adaptive radix tree. The zero value is an empty tree.
type Tree struct {
	root  node
	count int64
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Count returns the number of keys.
func (t *Tree) Count() int64 { return t.count }

type node interface{ isNode() }

type leaf struct {
	key []byte
	val []byte
}

// inner is the common header of the four adaptive node kinds.
type inner struct {
	prefix []byte // compressed path below the parent edge
	term   *leaf  // key ending exactly after prefix, if any
}

type node4 struct {
	inner
	n    int
	keys [4]byte
	kids [4]node
}

type node16 struct {
	inner
	n    int
	keys [16]byte
	kids [16]node
}

type node48 struct {
	inner
	n    int
	idx  [256]byte // 0 = empty, else kids[idx-1]
	kids [48]node
}

type node256 struct {
	inner
	n    int
	kids [256]node
}

func (*leaf) isNode()    {}
func (*node4) isNode()   {}
func (*node16) isNode()  {}
func (*node48) isNode()  {}
func (*node256) isNode() {}

func header(n node) *inner {
	switch v := n.(type) {
	case *node4:
		return &v.inner
	case *node16:
		return &v.inner
	case *node48:
		return &v.inner
	case *node256:
		return &v.inner
	}
	return nil
}

// findChild returns the child for token c, or nil.
func findChild(n node, c byte) node {
	switch v := n.(type) {
	case *node4:
		for i := 0; i < v.n; i++ {
			if v.keys[i] == c {
				return v.kids[i]
			}
		}
	case *node16:
		for i := 0; i < v.n; i++ {
			if v.keys[i] == c {
				return v.kids[i]
			}
		}
	case *node48:
		if i := v.idx[c]; i != 0 {
			return v.kids[i-1]
		}
	case *node256:
		return v.kids[c]
	}
	return nil
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, bool) {
	n := t.root
	depth := 0
	for n != nil {
		if l, isLeaf := n.(*leaf); isLeaf {
			if bytes.Equal(l.key, key) {
				return l.val, true
			}
			return nil, false
		}
		h := header(n)
		if len(key)-depth < len(h.prefix) || !bytes.Equal(h.prefix, key[depth:depth+len(h.prefix)]) {
			return nil, false
		}
		depth += len(h.prefix)
		if depth == len(key) {
			if h.term != nil {
				return h.term.val, true
			}
			return nil, false
		}
		n = findChild(n, key[depth])
		depth++
	}
	return nil, false
}

// Set inserts or replaces key.
func (t *Tree) Set(key, val []byte) {
	t.root = t.insert(t.root, key, val, 0)
}

func (t *Tree) insert(n node, key, val []byte, depth int) node {
	if n == nil {
		t.count++
		return &leaf{key: key, val: val}
	}
	if l, isLeaf := n.(*leaf); isLeaf {
		if bytes.Equal(l.key, key) {
			l.val = val
			return n
		}
		// Split into a node4 at the divergence of the two suffixes.
		s1, s2 := l.key[depth:], key[depth:]
		c := commonLen(s1, s2)
		nn := &node4{inner: inner{prefix: append([]byte{}, s1[:c]...)}}
		t.count++
		nl := &leaf{key: key, val: val}
		attach := func(lf *leaf, s []byte) {
			if len(s) == c {
				nn.term = lf
			} else {
				nn.addChild(s[c], lf)
			}
		}
		attach(l, s1)
		attach(nl, s2)
		return nn
	}
	h := header(n)
	rest := key[depth:]
	c := commonLen(h.prefix, rest)
	if c < len(h.prefix) {
		// Prefix mismatch: split the compressed path at c.
		nn := &node4{inner: inner{prefix: append([]byte{}, h.prefix[:c]...)}}
		edge := h.prefix[c]
		h.prefix = append([]byte{}, h.prefix[c+1:]...)
		nn.addChild(edge, n)
		t.count++
		nl := &leaf{key: key, val: val}
		if len(rest) == c {
			nn.term = nl
		} else {
			nn.addChild(rest[c], nl)
		}
		return nn
	}
	depth += len(h.prefix)
	if depth == len(key) {
		if h.term != nil {
			h.term.val = val
		} else {
			h.term = &leaf{key: key, val: val}
			t.count++
		}
		return n
	}
	tok := key[depth]
	if child := findChild(n, tok); child != nil {
		newChild := t.insert(child, key, val, depth+1)
		if newChild != child {
			replaceChild(n, tok, newChild)
		}
		return n
	}
	t.count++
	return addChildGrow(n, tok, &leaf{key: key, val: val})
}

func commonLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// addChild inserts into a node4 known to have room, keeping keys sorted.
func (v *node4) addChild(c byte, child node) {
	i := 0
	for i < v.n && v.keys[i] < c {
		i++
	}
	copy(v.keys[i+1:v.n+1], v.keys[i:v.n])
	copy(v.kids[i+1:v.n+1], v.kids[i:v.n])
	v.keys[i] = c
	v.kids[i] = child
	v.n++
}

func (v *node16) addChild(c byte, child node) {
	i := 0
	for i < v.n && v.keys[i] < c {
		i++
	}
	copy(v.keys[i+1:v.n+1], v.keys[i:v.n])
	copy(v.kids[i+1:v.n+1], v.kids[i:v.n])
	v.keys[i] = c
	v.kids[i] = child
	v.n++
}

// addChildGrow adds a child, growing the node kind when full.
func addChildGrow(n node, c byte, child node) node {
	switch v := n.(type) {
	case *node4:
		if v.n < 4 {
			v.addChild(c, child)
			return v
		}
		g := &node16{inner: v.inner}
		copy(g.keys[:], v.keys[:v.n])
		copy(g.kids[:], v.kids[:v.n])
		g.n = v.n
		g.addChild(c, child)
		return g
	case *node16:
		if v.n < 16 {
			v.addChild(c, child)
			return v
		}
		g := &node48{inner: v.inner}
		for i := 0; i < v.n; i++ {
			g.idx[v.keys[i]] = byte(i + 1)
			g.kids[i] = v.kids[i]
		}
		g.n = v.n
		g.idx[c] = byte(g.n + 1)
		g.kids[g.n] = child
		g.n++
		return g
	case *node48:
		if v.n < 48 {
			v.idx[c] = byte(v.n + 1)
			v.kids[v.n] = child
			v.n++
			return v
		}
		g := &node256{inner: v.inner}
		for tok := 0; tok < 256; tok++ {
			if i := v.idx[tok]; i != 0 {
				g.kids[tok] = v.kids[i-1]
			}
		}
		g.n = v.n
		g.kids[c] = child
		g.n++
		return g
	case *node256:
		v.kids[c] = child
		v.n++
		return v
	}
	panic("art: addChildGrow on leaf")
}

func replaceChild(n node, c byte, child node) {
	switch v := n.(type) {
	case *node4:
		for i := 0; i < v.n; i++ {
			if v.keys[i] == c {
				v.kids[i] = child
				return
			}
		}
	case *node16:
		for i := 0; i < v.n; i++ {
			if v.keys[i] == c {
				v.kids[i] = child
				return
			}
		}
	case *node48:
		v.kids[v.idx[c]-1] = child
		return
	case *node256:
		v.kids[c] = child
		return
	}
	panic("art: replaceChild missing")
}

// Del removes key, reporting whether it was present. Nodes shrink and
// single-child paths re-compress.
func (t *Tree) Del(key []byte) bool {
	newRoot, ok := t.remove(t.root, key, 0)
	if ok {
		t.root = newRoot
		t.count--
	}
	return ok
}

func (t *Tree) remove(n node, key []byte, depth int) (node, bool) {
	if n == nil {
		return nil, false
	}
	if l, isLeaf := n.(*leaf); isLeaf {
		if bytes.Equal(l.key, key) {
			return nil, true
		}
		return n, false
	}
	h := header(n)
	if len(key)-depth < len(h.prefix) || !bytes.Equal(h.prefix, key[depth:depth+len(h.prefix)]) {
		return n, false
	}
	depth += len(h.prefix)
	if depth == len(key) {
		if h.term == nil {
			return n, false
		}
		h.term = nil
		return shrink(n), true
	}
	tok := key[depth]
	child := findChild(n, tok)
	if child == nil {
		return n, false
	}
	newChild, ok := t.remove(child, key, depth+1)
	if !ok {
		return n, false
	}
	if newChild == nil {
		removeChild(n, tok)
		return shrink(n), true
	}
	if newChild != child {
		replaceChild(n, tok, newChild)
	}
	return n, true
}

func removeChild(n node, c byte) {
	switch v := n.(type) {
	case *node4:
		for i := 0; i < v.n; i++ {
			if v.keys[i] == c {
				copy(v.keys[i:], v.keys[i+1:v.n])
				copy(v.kids[i:], v.kids[i+1:v.n])
				v.n--
				v.kids[v.n] = nil
				return
			}
		}
	case *node16:
		for i := 0; i < v.n; i++ {
			if v.keys[i] == c {
				copy(v.keys[i:], v.keys[i+1:v.n])
				copy(v.kids[i:], v.kids[i+1:v.n])
				v.n--
				v.kids[v.n] = nil
				return
			}
		}
	case *node48:
		i := v.idx[c]
		if i == 0 {
			return
		}
		// Compact the kids array: move the last child into the hole.
		last := byte(v.n)
		if i != last {
			v.kids[i-1] = v.kids[last-1]
			for tok := 0; tok < 256; tok++ {
				if v.idx[tok] == last {
					v.idx[tok] = i
					break
				}
			}
		}
		v.kids[last-1] = nil
		v.idx[c] = 0
		v.n--
	case *node256:
		v.kids[c] = nil
		v.n--
	}
}

// shrink downgrades underfull nodes and re-compresses single-child paths.
func shrink(n node) node {
	switch v := n.(type) {
	case *node4:
		if v.n == 0 {
			if v.term == nil {
				return nil
			}
			return v.term // only the terminator remains
		}
		if v.n == 1 && v.term == nil {
			// Merge the compressed path into the single child.
			child := v.kids[0]
			if ch := header(child); ch != nil {
				p := append(append(append([]byte{}, v.prefix...), v.keys[0]), ch.prefix...)
				ch.prefix = p
				return child
			}
			return child // child is a leaf; it stores its full key anyway
		}
		return v
	case *node16:
		if v.n <= 3 {
			g := &node4{inner: v.inner}
			copy(g.keys[:], v.keys[:v.n])
			copy(g.kids[:], v.kids[:v.n])
			g.n = v.n
			return shrink(g)
		}
		return v
	case *node48:
		if v.n <= 12 {
			g := &node16{inner: v.inner}
			for tok := 0; tok < 256; tok++ {
				if i := v.idx[tok]; i != 0 {
					g.keys[g.n] = byte(tok)
					g.kids[g.n] = v.kids[i-1]
					g.n++
				}
			}
			return shrink(g)
		}
		return v
	case *node256:
		if v.n <= 40 {
			g := &node48{inner: v.inner}
			for tok := 0; tok < 256; tok++ {
				if v.kids[tok] != nil {
					g.kids[g.n] = v.kids[tok]
					g.n++
					g.idx[tok] = byte(g.n)
				}
			}
			return shrink(g)
		}
		return v
	}
	return n
}

// Scan visits keys >= start in ascending order until fn returns false.
func (t *Tree) Scan(start []byte, fn func(key, val []byte) bool) {
	t.scan(t.root, start, 0, fn)
}

// scan returns false when fn stopped the iteration.
func (t *Tree) scan(n node, start []byte, depth int, fn func(k, v []byte) bool) bool {
	if n == nil {
		return true
	}
	if l, isLeaf := n.(*leaf); isLeaf {
		if bytes.Compare(l.key, start) >= 0 {
			return fn(l.key, l.val)
		}
		return true
	}
	h := header(n)
	// Compare the compressed path against the still-unconsumed part of
	// start to decide whether the subtree is entirely above, entirely
	// below, or straddling the bound.
	if depth < len(start) {
		rest := start[depth:]
		m := commonLen(h.prefix, rest)
		if m < len(h.prefix) && m < len(rest) {
			if h.prefix[m] < rest[m] {
				return true // whole subtree below start
			}
			start = nil // whole subtree above start
		} else if m == len(rest) && len(h.prefix) > len(rest) {
			start = nil // prefix extends past start => subtree above
		}
	} else {
		start = nil
	}
	depth += len(h.prefix)
	if h.term != nil && (start == nil || len(start) <= depth) {
		if bytesGE(h.term.key, start) && !fn(h.term.key, h.term.val) {
			return false
		}
	}
	visit := func(tok byte, child node) bool {
		childStart := start
		if childStart != nil && depth < len(childStart) {
			if tok < childStart[depth] {
				return true // subtree below start
			}
			if tok > childStart[depth] {
				childStart = nil
			}
		} else {
			childStart = nil
		}
		return t.scan(child, childStart, depth+1, fn)
	}
	switch v := n.(type) {
	case *node4:
		for i := 0; i < v.n; i++ {
			if !visit(v.keys[i], v.kids[i]) {
				return false
			}
		}
	case *node16:
		for i := 0; i < v.n; i++ {
			if !visit(v.keys[i], v.kids[i]) {
				return false
			}
		}
	case *node48:
		for tok := 0; tok < 256; tok++ {
			if i := v.idx[tok]; i != 0 {
				if !visit(byte(tok), v.kids[i-1]) {
					return false
				}
			}
		}
	case *node256:
		for tok := 0; tok < 256; tok++ {
			if v.kids[tok] != nil {
				if !visit(byte(tok), v.kids[tok]) {
					return false
				}
			}
		}
	}
	return true
}

func bytesGE(k, start []byte) bool {
	return start == nil || bytes.Compare(k, start) >= 0
}

// Footprint returns approximate heap bytes.
func (t *Tree) Footprint() int64 {
	return footprint(t.root)
}

func footprint(n node) int64 {
	if n == nil {
		return 0
	}
	var total int64
	var h *inner
	switch v := n.(type) {
	case *leaf:
		return int64(unsafe.Sizeof(leaf{})) + int64(len(v.key)+len(v.val))
	case *node4:
		total = int64(unsafe.Sizeof(node4{}))
		for i := 0; i < v.n; i++ {
			total += footprint(v.kids[i])
		}
		h = &v.inner
	case *node16:
		total = int64(unsafe.Sizeof(node16{}))
		for i := 0; i < v.n; i++ {
			total += footprint(v.kids[i])
		}
		h = &v.inner
	case *node48:
		total = int64(unsafe.Sizeof(node48{}))
		for i := 0; i < v.n; i++ {
			total += footprint(v.kids[i])
		}
		h = &v.inner
	case *node256:
		total = int64(unsafe.Sizeof(node256{}))
		for tok := 0; tok < 256; tok++ {
			total += footprint(v.kids[tok])
		}
		h = &v.inner
	}
	total += int64(len(h.prefix))
	if h.term != nil {
		total += footprint(h.term)
	}
	return total
}
