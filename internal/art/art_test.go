package art

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/repro/wormhole/internal/indextest"
)

func TestBasic(t *testing.T) {
	a := New()
	keys := []string{"api", "apple", "app", "banana", "band", "b", "", "ap"}
	for i, k := range keys {
		a.Set([]byte(k), []byte(fmt.Sprintf("v%d", i)))
	}
	if a.Count() != int64(len(keys)) {
		t.Fatalf("Count = %d", a.Count())
	}
	for i, k := range keys {
		v, ok := a.Get([]byte(k))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%q) = %q,%v", k, v, ok)
		}
	}
	for _, k := range []string{"a", "appl", "apples", "c", "bandit"} {
		if _, ok := a.Get([]byte(k)); ok {
			t.Fatalf("Get(%q) should miss", k)
		}
	}
}

func TestNodeGrowthAllSizes(t *testing.T) {
	a := New()
	// 256 single-byte keys force node4 -> node16 -> node48 -> node256.
	for i := 0; i < 256; i++ {
		a.Set([]byte{byte(i)}, []byte{byte(i)})
	}
	if _, ok := a.root.(*node256); !ok {
		t.Fatalf("root is %T, want node256", a.root)
	}
	for i := 0; i < 256; i++ {
		v, ok := a.Get([]byte{byte(i)})
		if !ok || v[0] != byte(i) {
			t.Fatalf("lost key %d after growth", i)
		}
	}
	// Shrink back down through all sizes.
	for i := 0; i < 250; i++ {
		if !a.Del([]byte{byte(i)}) {
			t.Fatalf("Del %d failed", i)
		}
	}
	for i := 250; i < 256; i++ {
		if v, ok := a.Get([]byte{byte(i)}); !ok || v[0] != byte(i) {
			t.Fatalf("lost key %d after shrink", i)
		}
	}
	if a.Count() != 6 {
		t.Fatalf("Count = %d", a.Count())
	}
}

func TestPathCompression(t *testing.T) {
	a := New()
	// Long shared prefix: the tree should hold it as one compressed path.
	a.Set([]byte("http://www.example.com/a"), []byte("1"))
	a.Set([]byte("http://www.example.com/b"), []byte("2"))
	if h := header(a.root); h == nil || len(h.prefix) < 20 {
		t.Fatalf("expected long compressed prefix, root %T", a.root)
	}
	// Deleting one key must re-compress to a single leaf.
	a.Del([]byte("http://www.example.com/a"))
	if _, isLeaf := a.root.(*leaf); !isLeaf {
		t.Fatalf("root is %T after shrink, want leaf", a.root)
	}
	if v, ok := a.Get([]byte("http://www.example.com/b")); !ok || string(v) != "2" {
		t.Fatal("survivor lost")
	}
}

func TestPrefixKeysViaTerminator(t *testing.T) {
	a := New()
	a.Set([]byte("ab"), []byte("short"))
	a.Set([]byte("abcd"), []byte("long"))
	a.Set([]byte("abce"), []byte("long2"))
	if v, ok := a.Get([]byte("ab")); !ok || string(v) != "short" {
		t.Fatal("prefix key lost")
	}
	if !a.Del([]byte("ab")) {
		t.Fatal("Del prefix key failed")
	}
	if _, ok := a.Get([]byte("ab")); ok {
		t.Fatal("deleted prefix key still present")
	}
	if v, ok := a.Get([]byte("abcd")); !ok || string(v) != "long" {
		t.Fatal("extension key lost")
	}
}

func TestScanOrderedWithSeek(t *testing.T) {
	a := New()
	for i := 0; i < 500; i++ {
		a.Set([]byte(fmt.Sprintf("k%04d", i*2)), []byte{1})
	}
	var got []string
	a.Scan([]byte("k0101"), func(k, v []byte) bool {
		got = append(got, string(k))
		return len(got) < 4
	})
	if fmt.Sprint(got) != "[k0102 k0104 k0106 k0108]" {
		t.Fatalf("scan = %v", got)
	}
	count, prev := 0, ""
	a.Scan(nil, func(k, v []byte) bool {
		if string(k) <= prev && count > 0 {
			t.Fatalf("scan out of order: %q after %q", k, prev)
		}
		prev = string(k)
		count++
		return true
	})
	if count != 500 {
		t.Fatalf("full scan = %d keys", count)
	}
}

func TestModelAgainstReference(t *testing.T) {
	for gi, gen := range []func(*rand.Rand) []byte{
		indextest.GenBinary, indextest.GenASCII,
		indextest.GenRandom(8), indextest.GenPrefixed,
	} {
		t.Run(fmt.Sprintf("gen%d", gi), func(t *testing.T) {
			indextest.OrderedOps(t, New(), int64(40+gi), 3000, gen)
		})
	}
}

func TestFootprintGrows(t *testing.T) {
	a := New()
	f0 := a.Footprint()
	for i := 0; i < 1000; i++ {
		a.Set([]byte(fmt.Sprintf("fp%05d", i)), []byte("0123456789"))
	}
	if f1 := a.Footprint(); f1 <= f0 || f1 < 1000*17 {
		t.Fatalf("Footprint = %d", f1)
	}
}
