package shard

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/repro/wormhole/internal/indextest"
)

func sampleFrom(gen func(*rand.Rand) []byte, n int, seed int64) [][]byte {
	r := rand.New(rand.NewSource(seed))
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = gen(r)
	}
	return keys
}

// TestIndextestSuite drives the shared model-based harness through the
// sharded store across shard counts, partitioner flavors and key regimes.
func TestIndextestSuite(t *testing.T) {
	gens := []struct {
		name string
		gen  func(*rand.Rand) []byte
	}{
		{"binary", indextest.GenBinary},
		{"ascii", indextest.GenASCII},
		{"prefixed", indextest.GenPrefixed},
		{"random8", indextest.GenRandom(8)},
	}
	for _, shards := range []int{1, 3, 8} {
		for _, sampled := range []bool{false, true} {
			for _, g := range gens {
				label := fmt.Sprintf("shards=%d/sampled=%v/%s", shards, sampled, g.name)
				t.Run(label, func(t *testing.T) {
					o := Options{Shards: shards}
					if sampled {
						o.Sample = sampleFrom(g.gen, 4096, 7)
					}
					indextest.OrderedOps(t, New(o), 11, 4000, g.gen)
				})
			}
		}
	}
}

func TestBatchOps(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			st := New(Options{Shards: shards, Sample: sampleFrom(indextest.GenPrefixed, 4096, 3)})
			indextest.BatchOps(t, st, 5, 300, 64, indextest.GenPrefixed)
		})
	}
}

// TestBatchOpsParallelPath forces batches past the fan-out threshold so
// the concurrent per-shard dispatch is exercised, not just the small-batch
// sequential path.
func TestBatchOpsParallelPath(t *testing.T) {
	st := New(Options{Shards: 8, Sample: sampleFrom(indextest.GenRandom(8), 4096, 9)})
	indextest.BatchOps(t, st, 17, 60, 4*parallelBatch, indextest.GenRandom(8))
}

// TestGetBatchResultOrdering is the regression test for per-shard fan-out
// reassembly: results must land at the caller's original positions even
// when shard groups complete out of order. The batch interleaves keys
// round-robin across all shards (adjacent positions live on different
// shards), exceeds the parallel fan-out threshold so groups really run on
// concurrent goroutines, and skews the group sizes so shards finish at
// different times; every value encodes its key, so any transposition is
// caught positionally. Both the store path (parallel fan-out) and the
// pinned Reader path (sequential groups) are checked, plus a batch with
// duplicates and misses.
func TestGetBatchResultOrdering(t *testing.T) {
	st := New(Options{Shards: 8, Sample: sampleFrom(indextest.GenRandom(8), 4096, 21)})
	perShard := make([][][]byte, st.NumShards())
	r := rand.New(rand.NewSource(77))
	for len(perShard[0]) < 2*parallelBatch {
		k := indextest.GenRandom(8)(r)
		sh := st.ShardOf(k)
		// Skew: high shards keep only a fraction of their keys, so their
		// groups are small and finish long before shard 0's.
		if sh > 0 && len(perShard[sh]) > 2*parallelBatch/(1+sh) {
			continue
		}
		perShard[sh] = append(perShard[sh], k)
		st.Set(k, append([]byte("val-of-"), k...))
	}
	var batch [][]byte
	for i := 0; ; i++ {
		added := false
		for sh := range perShard {
			if i < len(perShard[sh]) {
				batch = append(batch, perShard[sh][i])
				added = true
			}
		}
		if !added {
			break
		}
	}
	if len(batch) <= parallelBatch {
		t.Fatalf("batch of %d does not reach the parallel fan-out threshold %d", len(batch), parallelBatch)
	}
	check := func(name string, vals [][]byte, found []bool) {
		t.Helper()
		if len(vals) != len(batch) || len(found) != len(batch) {
			t.Fatalf("%s: got %d/%d results for %d keys", name, len(vals), len(found), len(batch))
		}
		for i, k := range batch {
			want := append([]byte("val-of-"), k...)
			if !found[i] || !bytes.Equal(vals[i], want) {
				t.Fatalf("%s: result %d = %q,%v, want %q — fan-out reassembled out of order",
					name, i, vals[i], found[i], want)
			}
		}
	}
	for trial := 0; trial < 20; trial++ {
		vals, found := st.GetBatch(batch)
		check("store", vals, found)
	}
	rd := st.NewReader()
	defer rd.Close()
	vals, found := rd.GetBatch(batch)
	check("reader", vals, found)

	// Duplicates and misses keep their positions too.
	mixed := [][]byte{batch[3], []byte("missing-key"), batch[3], batch[500], []byte{}, batch[3]}
	vals, found = st.GetBatch(mixed)
	for _, i := range []int{0, 2, 5} {
		if !found[i] || !bytes.Equal(vals[i], append([]byte("val-of-"), batch[3]...)) {
			t.Fatalf("duplicate at %d = %q,%v", i, vals[i], found[i])
		}
	}
	if found[1] || found[4] || vals[1] != nil || vals[4] != nil {
		t.Fatalf("missing keys reported present: %q,%v / %q,%v", vals[1], found[1], vals[4], found[4])
	}
	if !found[3] || !bytes.Equal(vals[3], append([]byte("val-of-"), batch[500]...)) {
		t.Fatalf("result 3 = %q,%v", vals[3], found[3])
	}
}

// TestCrossShardScanOrdering loads keys that straddle every boundary and
// verifies that stitched scans yield the exact global order, including
// scans that start precisely on, just below and just above a boundary.
func TestCrossShardScanOrdering(t *testing.T) {
	keys := sampleFrom(indextest.GenPrefixed, 6000, 21)
	st := New(Options{Shards: 6, Sample: keys})

	sorted := make([]string, 0, len(keys))
	seen := map[string]bool{}
	for _, k := range keys {
		if !seen[string(k)] {
			seen[string(k)] = true
			sorted = append(sorted, string(k))
		}
	}
	sort.Strings(sorted)
	r := rand.New(rand.NewSource(22))
	for _, i := range r.Perm(len(keys)) {
		st.Set(keys[i], keys[i])
	}

	nonEmpty := 0
	for _, n := range st.ShardCounts() {
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("only %d non-empty shards; scan never crosses a boundary", nonEmpty)
	}

	check := func(start []byte) {
		t.Helper()
		want := sorted
		if start != nil {
			at := sort.SearchStrings(sorted, string(start))
			want = sorted[at:]
		}
		i := 0
		var prev []byte
		st.Scan(start, func(k, v []byte) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("scan(%q) out of order: %q then %q", start, prev, k)
			}
			prev = append(prev[:0], k...)
			if i >= len(want) || string(k) != want[i] {
				t.Fatalf("scan(%q)[%d] = %q, want %q", start, i, k, want[i])
			}
			if !bytes.Equal(k, v) {
				t.Fatalf("scan(%q): value mismatch at %q", start, k)
			}
			i++
			return true
		})
		if i != len(want) {
			t.Fatalf("scan(%q) visited %d keys, want %d", start, i, len(want))
		}
	}

	check(nil)
	for _, b := range st.part.Bounds() {
		check(b)
		if b[len(b)-1] > 0 {
			below := append([]byte(nil), b...)
			below[len(below)-1]--
			check(below)
		}
		check(append(append([]byte(nil), b...), 0))
	}
	for i := 0; i < 20; i++ {
		check(keys[r.Intn(len(keys))])
	}
}

// TestConcurrentBatchedStress hammers the store with concurrent batched
// writers, batched readers, deleters and scanners. Every value equals its
// key, so readers can validate any snapshot they observe; run under
// -race this doubles as the data-race check for the fan-out paths.
func TestConcurrentBatchedStress(t *testing.T) {
	const space = 4096
	key := func(i int) []byte { return []byte(fmt.Sprintf("stress-%05d", i)) }
	sample := make([][]byte, space)
	for i := range sample {
		sample[i] = key(i)
	}
	st := New(Options{Shards: 4, Sample: sample})

	rounds := 40
	if testing.Short() {
		rounds = 10
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) { // batched writers
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			for round := 0; round < rounds; round++ {
				batch := make([][]byte, 512)
				for i := range batch {
					batch[i] = key(r.Intn(space))
				}
				st.SetBatch(batch, batch)
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) { // batched deleters
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(200 + w)))
			for round := 0; round < rounds; round++ {
				batch := make([][]byte, 256)
				for i := range batch {
					batch[i] = key(r.Intn(space))
				}
				st.DelBatch(batch)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) { // batched readers
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(300 + w)))
			for round := 0; round < rounds; round++ {
				batch := make([][]byte, 512)
				for i := range batch {
					batch[i] = key(r.Intn(space))
				}
				vals, found := st.GetBatch(batch)
				for i := range batch {
					if found[i] && !bytes.Equal(vals[i], batch[i]) {
						t.Errorf("GetBatch(%q) = %q", batch[i], vals[i])
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() { // scanners crossing shard boundaries mid-mutation
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				var prev []byte
				st.Scan(nil, func(k, v []byte) bool {
					if prev != nil && bytes.Compare(prev, k) >= 0 {
						t.Errorf("concurrent scan out of order: %q then %q", prev, k)
						return false
					}
					prev = append(prev[:0], k...)
					return true
				})
			}
		}()
	}
	wg.Wait()

	// Settle: one final batched write of the whole space, then verify.
	all := make([][]byte, space)
	for i := range all {
		all[i] = key(i)
	}
	st.SetBatch(all, all)
	if got := st.Count(); got != space {
		t.Fatalf("Count = %d after settling, want %d", got, space)
	}
	vals, found := st.GetBatch(all)
	for i := range all {
		if !found[i] || !bytes.Equal(vals[i], all[i]) {
			t.Fatalf("settled GetBatch(%q) = %q,%v", all[i], vals[i], found[i])
		}
	}
}

func TestZeroOptionsDefaults(t *testing.T) {
	st := New(Options{})
	if st.NumShards() != DefaultShards {
		t.Fatalf("NumShards = %d, want DefaultShards = %d", st.NumShards(), DefaultShards)
	}
	st.Set([]byte("k"), []byte("v"))
	if v, ok := st.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if st.Footprint() <= 0 {
		t.Fatalf("Footprint = %d", st.Footprint())
	}
	if st.Stats().Keys != 1 {
		t.Fatalf("Stats().Keys = %d", st.Stats().Keys)
	}
}

// TestCrossShardScanDescAndRanges mirrors the ascending ordering test for
// the descending direction and the Range collectors: a descending scan
// must stitch shards in reverse partition order with global key order
// preserved across every boundary, and RangeAsc/RangeDesc must agree with
// the sorted key set.
func TestCrossShardScanDescAndRanges(t *testing.T) {
	keys := sampleFrom(indextest.GenPrefixed, 5000, 31)
	st := New(Options{Shards: 5, Sample: keys})
	sorted := make([]string, 0, len(keys))
	seen := map[string]bool{}
	for _, k := range keys {
		if !seen[string(k)] {
			seen[string(k)] = true
			sorted = append(sorted, string(k))
		}
	}
	sort.Strings(sorted)
	for _, k := range keys {
		st.Set(k, k)
	}
	nonEmpty := 0
	for _, n := range st.ShardCounts() {
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("only %d non-empty shards; desc scan never crosses a boundary", nonEmpty)
	}

	checkDesc := func(start []byte) {
		t.Helper()
		want := sorted
		if start != nil {
			at := sort.SearchStrings(sorted, string(start))
			if at < len(sorted) && sorted[at] == string(start) {
				at++
			}
			want = sorted[:at]
		}
		i := len(want) - 1
		st.ScanDesc(start, func(k, v []byte) bool {
			if i < 0 || string(k) != want[i] {
				t.Fatalf("desc scan(%q) = %q, want %q", start, k, want[i])
			}
			if !bytes.Equal(k, v) {
				t.Fatalf("desc scan(%q): value mismatch at %q", start, k)
			}
			i--
			return true
		})
		if i != -1 {
			t.Fatalf("desc scan(%q) stopped %d keys early", start, i+1)
		}
	}
	checkDesc(nil)
	for _, b := range st.part.Bounds() {
		checkDesc(b)
		checkDesc(append(append([]byte(nil), b...), 0))
	}
	r := rand.New(rand.NewSource(32))
	for i := 0; i < 15; i++ {
		checkDesc(keys[r.Intn(len(keys))])
	}

	ka, _ := st.RangeAsc([]byte(sorted[10]), 25)
	if len(ka) != 25 || string(ka[0]) != sorted[10] || string(ka[24]) != sorted[34] {
		t.Fatalf("RangeAsc misaligned: got %d keys, first %q", len(ka), ka[0])
	}
	kd, vd := st.RangeDesc([]byte(sorted[100]), 30)
	if len(kd) != 30 || string(kd[0]) != sorted[100] || string(kd[29]) != sorted[71] {
		t.Fatalf("RangeDesc misaligned: got %d keys, first %q", len(kd), kd[0])
	}
	for i := range kd {
		if !bytes.Equal(kd[i], vd[i]) {
			t.Fatalf("RangeDesc value mismatch at %q", kd[i])
		}
	}
}

// TestReaderScans drives both scan directions through the pinned
// per-shard read handles and checks they agree with the store's own scans
// while writers churn other shards' keys.
func TestReaderScans(t *testing.T) {
	keys := sampleFrom(indextest.GenASCII, 4000, 41)
	st := New(Options{Shards: 4, Sample: keys})
	unique := map[string]bool{}
	for _, k := range keys {
		unique[string(k)] = true
		st.Set(k, k)
	}
	stable := len(unique)
	rd := st.NewReader()
	defer rd.Close()
	var stop sync.WaitGroup
	done := make(chan struct{})
	stop.Add(1)
	go func() {
		defer stop.Done()
		r := rand.New(rand.NewSource(42))
		for {
			select {
			case <-done:
				return
			default:
			}
			k := []byte(fmt.Sprintf("churn-%05d", r.Intn(2000)))
			if r.Intn(2) == 0 {
				st.Set(k, k)
			} else {
				st.Del(k)
			}
		}
	}()
	for round := 0; round < 20; round++ {
		var prev []byte
		n := 0
		rd.Scan(nil, func(k, v []byte) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Errorf("reader scan out of order: %q then %q", prev, k)
				return false
			}
			prev = append(prev[:0], k...)
			n++
			return true
		})
		if n < stable {
			t.Errorf("reader scan round %d saw only %d keys, want >= %d", round, n, stable)
		}
		prev = nil
		n = 0
		rd.ScanDesc(nil, func(k, v []byte) bool {
			if prev != nil && bytes.Compare(prev, k) <= 0 {
				t.Errorf("reader desc scan out of order: %q then %q", prev, k)
				return false
			}
			prev = append(prev[:0], k...)
			n++
			return true
		})
		if n < stable {
			t.Errorf("reader desc scan round %d saw only %d keys, want >= %d", round, n, stable)
		}
	}
	close(done)
	stop.Wait()
}
