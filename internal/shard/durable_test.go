package shard

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/repro/wormhole/internal/wal"
)

func TestDurableOpenWriteReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Durable() {
		t.Fatal("Open returned a volatile store")
	}
	model := map[string]string{}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key-%05d", i)
		v := fmt.Sprintf("val-%d", i)
		s.Set([]byte(k), []byte(v))
		model[k] = v
	}
	for i := 0; i < 2000; i += 7 {
		k := fmt.Sprintf("key-%05d", i)
		s.Del([]byte(k))
		delete(model, k)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if int(s2.Count()) != len(model) {
		t.Fatalf("recovered %d keys, want %d", s2.Count(), len(model))
	}
	for k, v := range model {
		got, ok := s2.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("recovered Get(%s) = %q,%v want %q", k, got, ok, v)
		}
	}
	// Order must survive too: a full scan is globally sorted.
	var prev []byte
	n := 0
	s2.Scan(nil, func(k, _ []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("recovered scan out of order: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		n++
		return true
	})
	if n != len(model) {
		t.Fatalf("recovered scan visited %d keys, want %d", n, len(model))
	}
}

func TestDurableManifestPinsPartitioning(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	keys := [][]byte{[]byte("alpha"), []byte("\x10mid"), []byte("\xf0high")}
	for _, k := range keys {
		s.Set(k, k)
	}
	routes := make([]int, len(keys))
	for i, k := range keys {
		routes[i] = s.ShardOf(k)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen asking for a different shard count and a sample: the MANIFEST
	// must win, keeping every key reachable in its original shard.
	s2, err := Open(Options{Dir: dir, Shards: 2, Sample: keys})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumShards() != 5 {
		t.Fatalf("reopen changed shard count to %d, want 5", s2.NumShards())
	}
	for i, k := range keys {
		if got := s2.ShardOf(k); got != routes[i] {
			t.Fatalf("key %q rerouted from shard %d to %d", k, routes[i], got)
		}
		if _, ok := s2.Get(k); !ok {
			t.Fatalf("key %q unreachable after reopen", k)
		}
	}
}

func TestDurableCorruptManifestFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open succeeded with a corrupt MANIFEST; silent repartitioning would orphan keys")
	}
}

func TestDurableSnapshotAndBatchedOps(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Shards: 3, Durability: wal.Options{Sync: wal.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	var keys, vals [][]byte
	for i := 0; i < 1500; i++ {
		keys = append(keys, []byte(fmt.Sprintf("b%05d", i)))
		vals = append(vals, []byte(fmt.Sprintf("v%d", i)))
	}
	s.SetBatch(keys, vals) // batched mutations must be logged too
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.DelBatch(keys[:100]) // post-snapshot WAL tail
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.RecoveredPairs() != 1500 {
		t.Fatalf("snapshots restored %d pairs, want 1500", s2.RecoveredPairs())
	}
	if s2.RecoveredRecords() != 100 {
		t.Fatalf("WAL tail replayed %d records, want 100", s2.RecoveredRecords())
	}
	if int(s2.Count()) != 1400 {
		t.Fatalf("recovered %d keys, want 1400", s2.Count())
	}
	_, found := s2.GetBatch(keys)
	for i, ok := range found {
		if want := i >= 100; ok != want {
			t.Fatalf("GetBatch[%d] = %v, want %v", i, ok, want)
		}
	}
}

func TestVolatileLifecycleNoOps(t *testing.T) {
	s := New(Options{Shards: 2})
	if s.Durable() {
		t.Fatal("New returned a durable store")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
