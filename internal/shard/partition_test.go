package shard

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func TestUniformPartitioner(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 300} {
		p := NewUniform(n)
		if p.NumShards() > n || p.NumShards() < 1 {
			t.Fatalf("NewUniform(%d).NumShards() = %d", n, p.NumShards())
		}
		bounds := p.Bounds()
		for i := 1; i < len(bounds); i++ {
			if bytes.Compare(bounds[i-1], bounds[i]) >= 0 {
				t.Fatalf("n=%d: bounds[%d..%d] not increasing", n, i-1, i)
			}
		}
		if got := p.Locate(nil); got != 0 {
			t.Fatalf("n=%d: Locate(nil) = %d", n, got)
		}
		for i, b := range bounds {
			// A boundary key belongs to the shard it opens.
			if got := p.Locate(b); got != i+1 {
				t.Fatalf("n=%d: Locate(bound %d) = %d, want %d", n, i, got, i+1)
			}
		}
	}
}

func TestLocateMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	sample := make([][]byte, 5000)
	for i := range sample {
		sample[i] = []byte(fmt.Sprintf("user:%06d", r.Intn(100000)))
	}
	for _, p := range []*Partitioner{NewUniform(9), FromSample(9, sample)} {
		bounds := p.Bounds()
		for trial := 0; trial < 2000; trial++ {
			k := []byte(fmt.Sprintf("user:%06d", r.Intn(100000)))
			want := 0
			for _, b := range bounds {
				if bytes.Compare(b, k) <= 0 {
					want++
				}
			}
			if got := p.Locate(k); got != want {
				t.Fatalf("Locate(%q) = %d, want %d", k, got, want)
			}
		}
	}
}

func TestFromSampleBalance(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	// Heavily skewed keyspace: everything shares one prefix, so uniform
	// byte-range boundaries would put every key in one shard.
	sample := make([][]byte, 20000)
	for i := range sample {
		sample[i] = []byte(fmt.Sprintf("https://example.com/item/%07d", r.Intn(1_000_000)))
	}
	const shards = 8
	uni := NewUniform(shards)
	smp := FromSample(shards, sample)

	count := func(p *Partitioner) []int {
		c := make([]int, p.NumShards())
		for _, k := range sample {
			c[p.Locate(k)]++
		}
		return c
	}
	uc, sc := count(uni), count(smp)
	uniNonEmpty := 0
	for _, n := range uc {
		if n > 0 {
			uniNonEmpty++
		}
	}
	if uniNonEmpty != 1 {
		t.Fatalf("expected uniform partitioner to collapse the skewed keys into one shard, got %v", uc)
	}
	if len(sc) != shards {
		t.Fatalf("FromSample produced %d shards, want %d", len(sc), shards)
	}
	lo, hi := sc[0], sc[0]
	for _, n := range sc[1:] {
		lo, hi = min(lo, n), max(hi, n)
	}
	if lo == 0 || hi > 2*len(sample)/shards {
		t.Fatalf("sampled boundaries badly balanced: %v", sc)
	}
}

func TestFromSampleFallsBackOnTinySample(t *testing.T) {
	p := FromSample(8, [][]byte{[]byte("a"), []byte("b")})
	if p.NumShards() != 8 {
		t.Fatalf("fallback NumShards = %d, want 8", p.NumShards())
	}
}

func TestShortestSeparator(t *testing.T) {
	cases := []struct{ lo, hi, want string }{
		{"abc", "abd", "abd"},
		{"ab", "abcz", "abc"},
		{"a", "b", "b"},
		{"", "zebra", "z"},
		{"car", "carpet", "carp"},
		{"user:000199", "user:000200", "user:0002"},
	}
	for _, c := range cases {
		got := shortestSeparator([]byte(c.lo), []byte(c.hi))
		if string(got) != c.want {
			t.Errorf("shortestSeparator(%q, %q) = %q, want %q", c.lo, c.hi, got, c.want)
		}
		if !(bytes.Compare(got, []byte(c.lo)) > 0 && bytes.Compare(got, []byte(c.hi)) <= 0) {
			t.Errorf("separator %q not in (%q, %q]", got, c.lo, c.hi)
		}
	}
}
