package shard

import (
	"errors"
	"fmt"

	"github.com/repro/wormhole/internal/wal"
)

// Replication epochs. Leadership over a store's keyspace is a fenced,
// monotonic epoch: every promotion bumps it, the bump is durable (MANIFEST
// plus an in-band WAL stamp per shard) before the new leader accepts a
// write, and a store that learns of a higher epoch fences itself — all
// writes refuse with ErrFenced BEFORE the index mutates, the same
// refuse-early shape as degraded mode. Positions in a WAL stream are only
// meaningful within the leader lineage that produced them, so the epoch
// history (which terms this store's state descends from, and where each
// began) is what replication compares to decide whether a tail resume is
// safe or a snapshot resync is required.

// ErrFenced is the sticky write-refusal error of a store that has learned
// of a higher replication epoch. Use errors.Is against FenceErr results.
var ErrFenced = errors.New("shard: fenced by a higher replication epoch")

// EpochEntry is one leadership term in a store's replication history: the
// epoch number and the per-shard end positions of the promoting store when
// the term began. Start positions are coordinates in the WAL of the leader
// that served the term; two histories are comparable only verbatim.
type EpochEntry struct {
	Epoch uint64         `json:"epoch"`
	Start []wal.Position `json:"start,omitempty"`
}

// HistoryEqual reports whether two epoch histories are identical term for
// term — the condition under which a follower's applied positions are
// coordinates in the leader's WAL lineage and a tail resume is safe. Any
// difference (missing term, extra term, same epoch number starting at a
// different position) means the states descend from different leader
// writes somewhere, and only a snapshot resync reconverges them.
func HistoryEqual(a, b []EpochEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Epoch != b[i].Epoch || len(a[i].Start) != len(b[i].Start) {
			return false
		}
		for j := range a[i].Start {
			if a[i].Start[j] != b[i].Start[j] {
				return false
			}
		}
	}
	return true
}

// CloneHistory deep-copies an epoch history.
func CloneHistory(h []EpochEntry) []EpochEntry {
	if h == nil {
		return nil
	}
	out := make([]EpochEntry, len(h))
	for i, e := range h {
		out[i] = EpochEntry{Epoch: e.Epoch, Start: append([]wal.Position(nil), e.Start...)}
	}
	return out
}

// Epoch returns the store's current replication epoch (1 for a store that
// has never been promoted or adopted a later lineage).
func (s *Store) Epoch() uint64 {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return s.epoch
}

// FencedBy returns the higher epoch that fenced this store, or 0 when the
// store is not fenced.
func (s *Store) FencedBy() uint64 {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return s.fencedBy
}

// EpochHistory returns a copy of the store's leadership history.
func (s *Store) EpochHistory() []EpochEntry {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return CloneHistory(s.history)
}

// FenceErr is the write-path fencing check: nil when the store may accept
// writes, an ErrFenced-wrapping error naming both epochs when a higher
// epoch has fenced it. The server consults it BEFORE applying a write, so
// a stale leader refuses with StatusFenced without mutating the index.
// One atomic load on the unfenced path.
func (s *Store) FenceErr() error {
	if !s.fenced.Load() {
		return nil
	}
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	if s.fencedBy == 0 {
		return nil
	}
	return fmt.Errorf("%w: this node is at epoch %d, fenced by epoch %d",
		ErrFenced, s.epoch, s.fencedBy)
}

// Fence records that a higher epoch exists: the store flips into fenced
// read-only mode (FenceErr non-nil) and persists the fence so a restart
// cannot forget it. Fencing by an epoch not above the current one is
// ignored (the caller is stale, not us); repeated fences keep the highest
// epoch seen. Returns the persistence error, with the in-memory fence in
// place regardless — refusing writes must not depend on a disk write.
func (s *Store) Fence(epoch uint64) error {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	if epoch <= s.epoch || epoch <= s.fencedBy {
		return nil
	}
	s.fencedBy = epoch
	s.fenced.Store(true)
	return s.persistEpochLocked()
}

// BumpEpoch starts a new leadership term: the new epoch is one past the
// highest epoch this store has ever seen — its own, any epoch that fenced
// it, and the caller-supplied floor (a follower passes the last leader
// epoch it observed). The term is appended to the history starting at the
// current per-shard end positions, persisted in the MANIFEST, stamped
// in-band into every shard's WAL, and the stamps are flushed so the bump
// is durable before the first write of the new term can be acknowledged.
// Clears any fence: the promotion outbids it by construction.
func (s *Store) BumpEpoch(observed uint64) (uint64, error) {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	next := s.epoch
	if s.fencedBy > next {
		next = s.fencedBy
	}
	if observed > next {
		next = observed
	}
	next++

	start := make([]wal.Position, len(s.shards))
	for i := range start {
		if i < len(s.wals) && s.wals[i] != nil {
			start[i] = s.wals[i].EndPos()
		} else {
			start[i] = wal.Genesis
		}
	}
	s.epoch = next
	s.history = append(s.history, EpochEntry{Epoch: next, Start: start})
	s.fencedBy = 0
	s.fenced.Store(false)

	err := s.persistEpochLocked()
	for _, st := range s.wals {
		if st == nil {
			continue
		}
		if aerr := st.AppendEpoch(next); aerr != nil && err == nil {
			err = aerr
		}
	}
	for _, st := range s.wals {
		if st == nil {
			continue
		}
		if ferr := st.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	return next, err
}

// AdoptHistory replaces the store's epoch lineage with its leader's — the
// final step of a follower's full snapshot resync, called only after
// every shard's applied position has been corrected to the leader's
// coordinates. Clears a fence the adopted lineage outbids: the node now
// follows the very lineage that fenced it. Persisted before returning so
// a crash after adoption re-handshakes with the adopted history.
func (s *Store) AdoptHistory(epoch uint64, hist []EpochEntry) error {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	s.epoch = epoch
	s.history = CloneHistory(hist)
	if s.fencedBy <= epoch {
		s.fencedBy = 0
		s.fenced.Store(false)
	}
	return s.persistEpochLocked()
}

// persistEpochLocked rewrites the MANIFEST with the current epoch state.
// Caller holds epochMu. Volatile stores (no dir) keep epochs in memory.
func (s *Store) persistEpochLocked() error {
	if s.dir == "" {
		return nil
	}
	return writeManifest(s.fs, s.dir, s.part, manifestEpochs{
		Epoch:    s.epoch,
		FencedBy: s.fencedBy,
		History:  s.history,
	})
}
