package shard

import (
	"bytes"
	"sort"
)

// Partitioner maps keys onto shards by range: shard i owns the half-open
// key interval [bounds[i-1], bounds[i]), with the first and last shards
// unbounded below and above. Boundaries are immutable after construction,
// so routing needs no synchronization and a cross-shard scan is a plain
// concatenation of per-shard scans.
type Partitioner struct {
	bounds [][]byte // strictly increasing; len = shards-1
}

// NewUniform returns a partitioner that cuts the byte keyspace into n
// equal-width ranges using two-byte boundaries. It is the fallback when no
// key sample is available; skewed keysets (e.g. all-ASCII URLs) should use
// FromSample instead.
func NewUniform(n int) *Partitioner {
	if n < 1 {
		n = 1
	}
	bounds := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		v := uint32(i) * 65536 / uint32(n)
		b := []byte{byte(v >> 8), byte(v)}
		if len(bounds) > 0 && bytes.Equal(bounds[len(bounds)-1], b) {
			continue
		}
		bounds = append(bounds, b)
	}
	return &Partitioner{bounds: bounds}
}

// FromSample derives boundaries from a sample of expected keys: the sample
// is sorted and cut at n-quantiles, and each cut key is shortened to its
// minimal prefix that still orders strictly above its left neighbor — the
// same anchor-minimizing discipline Wormhole's ShortAnchors split uses for
// leaf anchors. A nil or tiny sample falls back to NewUniform.
func FromSample(n int, sample [][]byte) *Partitioner {
	if n < 2 || len(sample) < 2*n {
		return NewUniform(n)
	}
	s := make([][]byte, len(sample))
	copy(s, sample)
	sort.Slice(s, func(i, j int) bool { return bytes.Compare(s[i], s[j]) < 0 })
	// Drop duplicates so quantile neighbors are strictly ordered.
	uniq := s[:1]
	for _, k := range s[1:] {
		if !bytes.Equal(uniq[len(uniq)-1], k) {
			uniq = append(uniq, k)
		}
	}
	if len(uniq) < 2*n {
		return NewUniform(n)
	}
	bounds := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		at := i * len(uniq) / n
		sep := shortestSeparator(uniq[at-1], uniq[at])
		if len(bounds) > 0 && bytes.Compare(bounds[len(bounds)-1], sep) >= 0 {
			continue
		}
		bounds = append(bounds, sep)
	}
	return &Partitioner{bounds: bounds}
}

// shortestSeparator returns the shortest prefix of hi that still compares
// strictly above lo; lo must order strictly below hi. The shard it labels
// then covers every key >= that prefix, exactly as a leaf anchor does.
func shortestSeparator(lo, hi []byte) []byte {
	for l := 1; l < len(hi); l++ {
		if p := hi[:l]; bytes.Compare(p, lo) > 0 {
			return append([]byte(nil), p...)
		}
	}
	return append([]byte(nil), hi...)
}

// NewExplicit builds a partitioner from caller-chosen boundary keys (the
// cmd/whkv -bounds flag). Boundaries are sorted and deduplicated; n
// boundaries yield n+1 shards.
func NewExplicit(bounds [][]byte) *Partitioner {
	s := make([][]byte, 0, len(bounds))
	for _, b := range bounds {
		if len(b) == 0 {
			continue // an empty boundary would leave shard 0 unreachable
		}
		s = append(s, append([]byte(nil), b...))
	}
	sort.Slice(s, func(i, j int) bool { return bytes.Compare(s[i], s[j]) < 0 })
	uniq := s[:0]
	for _, b := range s {
		if len(uniq) == 0 || !bytes.Equal(uniq[len(uniq)-1], b) {
			uniq = append(uniq, b)
		}
	}
	return &Partitioner{bounds: uniq}
}

// NumShards returns the number of partitions.
func (p *Partitioner) NumShards() int { return len(p.bounds) + 1 }

// Locate returns the shard that owns key: the number of boundaries <= key.
func (p *Partitioner) Locate(key []byte) int {
	return sort.Search(len(p.bounds), func(i int) bool {
		return bytes.Compare(p.bounds[i], key) > 0
	})
}

// Bounds returns the boundary keys (shared slice headers; do not mutate).
func (p *Partitioner) Bounds() [][]byte { return p.bounds }
