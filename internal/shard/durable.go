package shard

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/repro/wormhole/internal/vfs"
	"github.com/repro/wormhole/internal/wal"
)

// Durable sharded stores. Open gives every shard its own WAL+snapshot
// pair under dir/shard-NNN and recovers all of them in parallel — shard
// keyspaces are disjoint, so per-shard logs need no cross-shard ordering,
// and recovery time divides by the shard count. A MANIFEST file pins the
// partitioner boundaries: routing must be byte-identical across restarts
// or previously stored keys would become unreachable in their new shard.

// manifest is the durable partitioning and leadership contract. The
// partitioning half is written once at creation; the epoch half is
// rewritten (atomically, through the same temp+rename path) on every
// promotion, fence, and lineage adoption. The epoch fields are additive —
// a PR-5-era manifest without them reads as epoch 1, unfenced.
type manifest struct {
	Version int      `json:"version"`
	Shards  int      `json:"shards"`
	Bounds  []string `json:"bounds"` // base64, strictly ascending

	Epoch    uint64       `json:"epoch,omitempty"`
	FencedBy uint64       `json:"fenced_by,omitempty"`
	Epochs   []EpochEntry `json:"epochs,omitempty"`
}

// manifestEpochs bundles the epoch half of the manifest for writers.
type manifestEpochs struct {
	Epoch    uint64
	FencedBy uint64
	History  []EpochEntry
}

const manifestName = "MANIFEST"

func writeManifest(fsys vfs.FS, dir string, p *Partitioner, e manifestEpochs) error {
	m := manifest{Version: 1, Shards: p.NumShards(),
		Epoch: e.Epoch, FencedBy: e.FencedBy, Epochs: e.History}
	for _, b := range p.Bounds() {
		m.Bounds = append(m.Bounds, base64.StdEncoding.EncodeToString(b))
	}
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	// The manifest pins routing for the store's whole life; it must be
	// durable before any shard data is, or a crash between the two would
	// silently re-derive different boundaries on reopen and orphan every
	// key already written. The same atomicity makes an epoch bump
	// all-or-nothing: a crash mid-promotion recovers either the old or
	// the new lineage, never a half-written one.
	return wal.WriteFileAtomicFS(fsys, filepath.Join(dir, manifestName), append(buf, '\n'))
}

func readManifest(fsys vfs.FS, dir string) (*Partitioner, manifestEpochs, error) {
	var none manifestEpochs
	buf, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, none, err
	}
	var m manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, none, fmt.Errorf("shard: corrupt MANIFEST: %w", err)
	}
	if m.Version != 1 {
		return nil, none, fmt.Errorf("shard: MANIFEST version %d not supported", m.Version)
	}
	bounds := make([][]byte, 0, len(m.Bounds))
	for _, s := range m.Bounds {
		b, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return nil, none, fmt.Errorf("shard: corrupt MANIFEST boundary: %w", err)
		}
		bounds = append(bounds, b)
	}
	p := NewExplicit(bounds)
	if p.NumShards() != m.Shards {
		return nil, none, fmt.Errorf("shard: MANIFEST shard count %d does not match %d boundaries",
			m.Shards, len(bounds))
	}
	e := manifestEpochs{Epoch: m.Epoch, FencedBy: m.FencedBy, History: m.Epochs}
	if e.Epoch == 0 {
		e.Epoch = 1
	}
	if len(e.History) == 0 {
		e.History = []EpochEntry{{Epoch: e.Epoch}}
	}
	return p, e, nil
}

// Open creates or reopens a durable store in o.Dir. On a fresh directory
// the partitioner is built exactly as New builds it (Partitioner, Sample
// or uniform) and persisted; on reopen the persisted boundaries win and
// o.Shards/o.Sample/o.Partitioner are ignored — the on-disk keyspace
// already committed to a routing. Each shard recovers independently and
// concurrently: newest valid snapshot bulk-loaded, WAL tail replayed.
func Open(o Options) (*Store, error) {
	if o.Dir == "" {
		return nil, errors.New("shard: Open requires Options.Dir")
	}
	fsys := vfs.OrOS(o.Durability.FS)
	if err := fsys.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	epochs := manifestEpochs{Epoch: 1, History: []EpochEntry{{Epoch: 1}}}
	p, recovered, err := readManifest(fsys, o.Dir)
	switch {
	case err == nil:
		o.Partitioner = p
		epochs = recovered
	case os.IsNotExist(err):
		// Fresh directory: derive the partitioning as New would, then pin it.
		if o.Shards <= 0 {
			o.Shards = DefaultShards
		}
		if o.Partitioner == nil {
			if len(o.Sample) > 0 {
				o.Partitioner = FromSample(o.Shards, o.Sample)
			} else {
				o.Partitioner = NewUniform(o.Shards)
			}
		}
		if err := writeManifest(fsys, o.Dir, o.Partitioner, epochs); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}

	dir := o.Dir
	s := New(o)
	s.dir = dir
	s.fs = fsys
	s.epoch = epochs.Epoch
	s.history = epochs.History
	s.fencedBy = epochs.FencedBy
	s.fenced.Store(epochs.FencedBy != 0)
	s.wals = make([]*wal.Store, len(s.shards))
	var wg sync.WaitGroup
	errs := make([]error, len(s.shards))
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shardDir := filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
			st, err := wal.Open(shardDir, s.shards[i], o.Durability)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			s.wals[i] = st
			s.shards[i].SetMutationHook(st)
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		// Release whatever opened before reporting failure.
		for _, st := range s.wals {
			if st != nil {
				st.Close()
			}
		}
		return nil, err
	}
	return s, nil
}

// Durable reports whether the store persists mutations (created by Open
// rather than New).
func (s *Store) Durable() bool { return len(s.wals) > 0 }

// WAL returns shard i's write-ahead log store, or nil on a volatile store.
// Replication streams each shard's WAL independently through it.
func (s *Store) WAL(i int) *wal.Store {
	if len(s.wals) == 0 {
		return nil
	}
	return s.wals[i]
}

// WALBytes returns the summed framed length of every shard's active WAL
// generation (zero for volatile stores) — the OpStat observability figure.
func (s *Store) WALBytes() int64 {
	var n int64
	for _, st := range s.wals {
		n += st.WALSize()
	}
	return n
}

// Gens returns each shard's active WAL generation (nil for volatile
// stores).
func (s *Store) Gens() []uint64 {
	if len(s.wals) == 0 {
		return nil
	}
	gens := make([]uint64, len(s.wals))
	for i, st := range s.wals {
		gens[i] = st.ActiveGen()
	}
	return gens
}

// RecoveredPairs returns how many pairs the per-shard snapshots restored
// at Open; RecoveredRecords how many WAL records were replayed after
// them. Zero for volatile stores.
func (s *Store) RecoveredPairs() int {
	n := 0
	for _, st := range s.wals {
		n += st.RecoveredPairs()
	}
	return n
}

// RecoveredRecords returns the total WAL records replayed at Open.
func (s *Store) RecoveredRecords() int {
	n := 0
	for _, st := range s.wals {
		n += st.RecoveredRecords()
	}
	return n
}

// RecoveredSegments returns the total v2 snapshot segments decoded at
// Open across all shards (0 when every snapshot was v1 monolithic, or
// for volatile stores). Combined with the per-shard open fan-out, it is
// the recovery parallelism actually available: segments × shards decode
// units.
func (s *Store) RecoveredSegments() int {
	n := 0
	for _, st := range s.wals {
		n += st.RecoveredSegments()
	}
	return n
}

// Flush forces every shard's logged mutations to stable storage,
// regardless of the sync policy, fanning the fsyncs out across shards so
// a barrier costs the slowest shard's sync, not the sum. A no-op on
// volatile stores.
func (s *Store) Flush() error {
	if len(s.wals) == 0 {
		return nil
	}
	errs := make([]error, len(s.wals))
	var wg sync.WaitGroup
	for i, st := range s.wals {
		wg.Add(1)
		go func(i int, st *wal.Store) {
			defer wg.Done()
			errs[i] = st.Flush()
		}(i, st)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Snapshot writes a key-ordered snapshot of every shard and truncates its
// WAL, in parallel across shards. A no-op on volatile stores.
func (s *Store) Snapshot() error {
	if len(s.wals) == 0 {
		return nil
	}
	errs := make([]error, len(s.wals))
	var wg sync.WaitGroup
	for i, st := range s.wals {
		wg.Add(1)
		go func(i int, st *wal.Store) {
			defer wg.Done()
			errs[i] = st.Snapshot()
		}(i, st)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// WriteErr reports whether key's owning shard can accept a new logged
// mutation: nil on volatile or healthy stores, the shard's sticky WAL
// error when it is in degraded read-only mode. The server consults it
// BEFORE applying a write, so a mutation that could not be logged is
// refused outright (StatusDegraded) instead of silently diverging the
// in-memory index from its recoverable history. One atomic load on the
// healthy path.
func (s *Store) WriteErr(key []byte) error {
	if len(s.wals) == 0 {
		return nil
	}
	st := s.wals[s.part.Locate(key)]
	if !st.Degraded() {
		return nil
	}
	if err := st.Err(); err != nil {
		return err
	}
	// Healed between the two loads: accept the write.
	return nil
}

// Degraded reports whether any shard is in degraded read-only mode.
func (s *Store) Degraded() bool {
	for _, st := range s.wals {
		if st.Degraded() {
			return true
		}
	}
	return false
}

// Health returns each shard's degradation status (nil for volatile
// stores) — the OpStat health surface.
func (s *Store) Health() []wal.Health {
	if len(s.wals) == 0 {
		return nil
	}
	out := make([]wal.Health, len(s.wals))
	for i, st := range s.wals {
		out[i] = st.Health()
	}
	return out
}

// Close flushes and closes every shard's WAL. In-flight reads and scans
// of the in-memory index are unaffected and may complete after Close;
// mutations issued after Close still apply in memory but are no longer
// logged. Idempotent; a no-op on volatile stores.
func (s *Store) Close() error {
	var errs []error
	for _, st := range s.wals {
		if err := st.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
