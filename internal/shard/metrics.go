package shard

import (
	"time"

	"github.com/repro/wormhole/internal/metrics"
)

// BatchMetrics holds the store-level batch-path histograms: whole-call
// latency of GetBatch/SetBatch/DelBatch, covering shard grouping, the
// fan-out handoff and every shard's memory-level-parallel pipeline. Armed
// via SetBatchMetrics; a nil bundle (the default) records nothing.
type BatchMetrics struct {
	GetBatchSeconds *metrics.Histogram
	SetBatchSeconds *metrics.Histogram
	DelBatchSeconds *metrics.Histogram
	// BatchKeys counts keys entering batch operations (the histogram
	// counts calls; the ratio is the mean batch size).
	BatchKeys *metrics.Counter
}

// NewBatchMetrics registers the shard_* batch families on reg.
func NewBatchMetrics(reg *metrics.Registry) *BatchMetrics {
	return &BatchMetrics{
		GetBatchSeconds: reg.Histogram("shard_batch_seconds",
			"Whole-call batch latency across shards.", "op", "get"),
		SetBatchSeconds: reg.Histogram("shard_batch_seconds",
			"Whole-call batch latency across shards.", "op", "set"),
		DelBatchSeconds: reg.Histogram("shard_batch_seconds",
			"Whole-call batch latency across shards.", "op", "del"),
		BatchKeys: reg.Counter("shard_batch_keys_total",
			"Keys entering batch operations."),
	}
}

// SetBatchMetrics arms (or, with nil, disarms) the batch-path
// histograms. Safe to call while the store serves traffic.
func (s *Store) SetBatchMetrics(m *BatchMetrics) { s.bmx.Store(m) }

// observeBatch records one batch call on h; nil-safe on every level.
func (m *BatchMetrics) observeBatch(h *metrics.Histogram, keys int, t0 time.Time) {
	if m == nil {
		return
	}
	h.Observe(time.Since(t0))
	m.BatchKeys.Add(uint64(keys))
}

// QSBRReaderLag reports the largest per-shard QSBR reader lag: how many
// grace-period epochs behind the slowest active reader section is on any
// shard (0 for single-threaded cores or idle readers).
func (s *Store) QSBRReaderLag() uint64 {
	var max uint64
	for _, w := range s.shards {
		if lag := w.QSBRReaderLag(); lag > max {
			max = lag
		}
	}
	return max
}
