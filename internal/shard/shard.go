// Package shard implements a range-partitioned store that composes N
// independent Wormhole instances behind the shared index.Index /
// index.Ordered interfaces. Each shard is a full core.Wormhole with its
// own QSBR domain and meta writer lock, so structural writers in different
// shards never contend and reader grace periods stay short as core counts
// grow — the multicore scaling the paper targets in Figures 9/10/12.
//
// Keys are routed by an immutable range Partitioner (sampled-anchor
// quantiles via FromSample, or uniform byte ranges), which keeps shards'
// keyspaces disjoint and ordered: a cross-shard Scan is a concatenation of
// per-shard scans, never a merge. The batched API (GetBatch / SetBatch /
// DelBatch) groups keys by shard before executing, amortizing routing and
// per-shard synchronization the way netkv amortizes the wire with its
// 800-operation batches, and fans large batches out across shards.
package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/wormhole/internal/core"
	"github.com/repro/wormhole/internal/index"
	"github.com/repro/wormhole/internal/vfs"
	"github.com/repro/wormhole/internal/wal"
)

// DefaultShards is the shard count used when Options.Shards is zero; the
// cmd/whbench and cmd/whkv -shards flags override it. One shard per
// available CPU (capped like the paper's 16-core NUMA node) is the
// starting point the shard-sweep bench experiment refines.
var DefaultShards = defaultShards()

func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	if n < 1 {
		n = 1
	}
	return n
}

// parallelBatch is the batch size above which the batched operations fan
// out across shards on separate goroutines; below it the goroutine
// handoff costs more than it saves.
const parallelBatch = 256

// Options configures a Store. The zero value selects DefaultShards
// uniform-range shards of default-configured Wormholes.
type Options struct {
	// Shards is the number of partitions (default DefaultShards).
	Shards int
	// Sample, when non-empty, supplies keys representative of the
	// workload; boundaries are placed at sampled-anchor quantiles
	// (FromSample) instead of uniform byte ranges.
	Sample [][]byte
	// Partitioner overrides Shards and Sample with explicit boundaries.
	Partitioner *Partitioner
	// Core configures every shard's Wormhole; the zero value means
	// core.DefaultOptions().
	Core core.Options
	// Dir, when set via Open, roots the durable layout: a MANIFEST pinning
	// the partitioner plus one WAL+snapshot directory per shard. New
	// ignores it (volatile store).
	Dir string
	// Durability configures every shard's WAL (sync policy, flush
	// interval); meaningful only with Open.
	Durability wal.Options
}

// Store is a range-partitioned composition of Wormhole indexes. All
// operations are safe for concurrent use (each shard is a thread-safe
// Wormhole); the aliasing rules match package wormhole: key and value
// buffers are retained by reference.
type Store struct {
	part   *Partitioner
	shards []*core.Wormhole

	// Durable state (nil/empty when the store is volatile): one WAL+
	// snapshot pair per shard, registered as that shard's mutation hook.
	dir  string
	wals []*wal.Store
	fs   vfs.FS

	// Replication epoch state (epoch.go). Durable stores persist it in
	// the MANIFEST; volatile stores keep it in memory only.
	epochMu  sync.Mutex
	epoch    uint64
	history  []EpochEntry
	fencedBy uint64
	fenced   atomic.Bool // mirrors fencedBy != 0 for lock-free write checks

	// bmx is the armed batch-path instrument bundle (SetBatchMetrics);
	// nil records nothing.
	bmx atomic.Pointer[BatchMetrics]
}

// New creates an empty sharded store.
func New(o Options) *Store {
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	if o.Core == (core.Options{}) {
		o.Core = core.DefaultOptions()
	}
	p := o.Partitioner
	if p == nil {
		if len(o.Sample) > 0 {
			p = FromSample(o.Shards, o.Sample)
		} else {
			p = NewUniform(o.Shards)
		}
	}
	shards := make([]*core.Wormhole, p.NumShards())
	for i := range shards {
		shards[i] = core.New(o.Core)
	}
	return &Store{part: p, shards: shards, epoch: 1, history: []EpochEntry{{Epoch: 1}}}
}

// NumShards returns the number of partitions.
func (s *Store) NumShards() int { return len(s.shards) }

// ShardOf returns the partition that owns key.
func (s *Store) ShardOf(key []byte) int { return s.part.Locate(key) }

// Bounds returns the partitioner's boundary keys (shared slice headers; do
// not mutate). Replication ships them in the subscribe handshake: leader
// and follower must route byte-identically or per-shard streams would land
// keys in the wrong follower shard.
func (s *Store) Bounds() [][]byte { return s.part.Bounds() }

// ShardScan visits shard i's keys >= start in ascending order until fn
// returns false — one partition's slice of Scan. The follower's snapshot
// catch-up merges a streamed shard snapshot against exactly this walk.
func (s *Store) ShardScan(i int, start []byte, fn func(key, val []byte) bool) {
	s.shards[i].Scan(start, fn)
}

// Get returns the value stored under key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	return s.shards[s.part.Locate(key)].Get(key)
}

// Set inserts or replaces key. Key and value buffers are retained.
func (s *Store) Set(key, val []byte) {
	s.shards[s.part.Locate(key)].Set(key, val)
}

// Del removes key, reporting whether it was present.
func (s *Store) Del(key []byte) bool {
	return s.shards[s.part.Locate(key)].Del(key)
}

// Count returns the number of keys across all shards.
func (s *Store) Count() int64 {
	var n int64
	for _, w := range s.shards {
		n += w.Count()
	}
	return n
}

// Footprint returns the approximate heap bytes held across all shards.
func (s *Store) Footprint() int64 {
	var n int64
	for _, w := range s.shards {
		n += w.Footprint()
	}
	return n
}

// ShardCounts reports the per-shard key counts, for balance diagnostics.
func (s *Store) ShardCounts() []int64 {
	counts := make([]int64, len(s.shards))
	for i, w := range s.shards {
		counts[i] = w.Count()
	}
	return counts
}

// Scan visits keys >= start in ascending order until fn returns false.
// Because shards partition the keyspace by range, the stitched scan simply
// runs the owning shard from start and every following shard from its
// smallest key; order is global without any merging.
func (s *Store) Scan(start []byte, fn func(key, val []byte) bool) {
	first := 0
	if len(start) > 0 {
		first = s.part.Locate(start)
	}
	more := true
	for i := first; i < len(s.shards) && more; i++ {
		from := start
		if i > first {
			from = nil
		}
		s.shards[i].Scan(from, func(k, v []byte) bool {
			more = fn(k, v)
			return more
		})
	}
}

// ScanDesc visits keys <= start in descending order until fn returns
// false (nil start: from the largest key). The mirror of Scan: the owning
// shard runs down from start, then every preceding shard from its largest
// key. Partitions are ordered and disjoint, so stitching per-shard
// cursors in partition order is already the k-way merge a general
// partitioner would need — with zero per-key comparison overhead.
func (s *Store) ScanDesc(start []byte, fn func(key, val []byte) bool) {
	first := len(s.shards) - 1
	if start != nil {
		first = s.part.Locate(start)
	}
	more := true
	for i := first; i >= 0 && more; i-- {
		from := start
		if i < first {
			from = nil
		}
		s.shards[i].ScanDesc(from, func(k, v []byte) bool {
			more = fn(k, v)
			return more
		})
	}
}

// RangeAsc collects up to limit pairs with key >= start, ascending.
func (s *Store) RangeAsc(start []byte, limit int) (keys, vals [][]byte) {
	return collectRange(limit, start, s.Scan)
}

// RangeDesc collects up to limit pairs with key <= start, descending (nil
// start: from the largest key).
func (s *Store) RangeDesc(start []byte, limit int) (keys, vals [][]byte) {
	return collectRange(limit, start, s.ScanDesc)
}

func collectRange(limit int, start []byte, scan func([]byte, func(k, v []byte) bool)) (keys, vals [][]byte) {
	if limit <= 0 {
		return nil, nil
	}
	keys = make([][]byte, 0, limit)
	vals = make([][]byte, 0, limit)
	scan(start, func(k, v []byte) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return len(keys) < limit
	})
	return keys, vals
}

// group partitions batch indexes by owning shard, preserving the batch's
// relative order inside each shard so same-key operations in one batch
// keep their program order (equal keys always route to the same shard).
func (s *Store) group(keys [][]byte) [][]int {
	groups := make([][]int, len(s.shards))
	for i, k := range keys {
		g := s.part.Locate(k)
		groups[g] = append(groups[g], i)
	}
	return groups
}

// fanOut runs run(shard, indexes) for every non-empty group, on separate
// goroutines when the batch is large enough to amortize the handoff.
func (s *Store) fanOut(groups [][]int, total int, run func(shard int, idxs []int)) {
	active := 0
	for _, g := range groups {
		if len(g) > 0 {
			active++
		}
	}
	if active <= 1 || total < parallelBatch {
		for sh, g := range groups {
			if len(g) > 0 {
				run(sh, g)
			}
		}
		return
	}
	var wg sync.WaitGroup
	for sh, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, g []int) {
			defer wg.Done()
			run(sh, g)
		}(sh, g)
	}
	wg.Wait()
}

// GetBatch looks up keys grouped by shard; vals[i], found[i] answer
// keys[i]. Results for distinct shards may be produced concurrently, and
// each shard group enters one QSBR reader section for its whole group
// instead of one per key.
func (s *Store) GetBatch(keys [][]byte) (vals [][]byte, found []bool) {
	var t0 time.Time
	bmx := s.bmx.Load()
	if bmx != nil {
		t0 = time.Now()
	}
	vals = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	s.fanOut(s.group(keys), len(keys), func(sh int, idxs []int) {
		s.shards[sh].GetBatch(keys, vals, found, idxs)
	})
	if bmx != nil {
		bmx.observeBatch(bmx.GetBatchSeconds, len(keys), t0)
	}
	return vals, found
}

// Reader is an amortized read handle over the whole store: one pinned
// core.Reader per shard, claimed once and reused, so a long-lived
// goroutine pays each shard's QSBR slot acquisition once instead of per
// request. A Reader must not be used concurrently; Close releases every
// per-shard handle.
type Reader struct {
	s  *Store
	rs []*core.Reader
}

// NewReader returns a read handle bound to this store.
func (s *Store) NewReader() *Reader {
	rs := make([]*core.Reader, len(s.shards))
	for i, w := range s.shards {
		rs[i] = w.NewReader()
	}
	return &Reader{s: s, rs: rs}
}

// NewReadHandle implements index.ReadPinner.
func (s *Store) NewReadHandle() index.ReadHandle { return s.NewReader() }

// Get returns the value stored under key, through the owning shard's
// pinned reader.
func (r *Reader) Get(key []byte) ([]byte, bool) {
	return r.rs[r.s.part.Locate(key)].Get(key)
}

// GetBatch looks up keys grouped by shard through the pinned readers;
// vals[i], found[i] answer keys[i]. Groups run sequentially on the
// caller's goroutine (the handles are single-goroutine); use the store's
// GetBatch for fan-out across shards.
func (r *Reader) GetBatch(keys [][]byte) (vals [][]byte, found []bool) {
	var t0 time.Time
	bmx := r.s.bmx.Load()
	if bmx != nil {
		t0 = time.Now()
	}
	vals = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	for sh, idxs := range r.s.group(keys) {
		if len(idxs) > 0 {
			r.rs[sh].GetBatch(keys, vals, found, idxs)
		}
	}
	if bmx != nil {
		bmx.observeBatch(bmx.GetBatchSeconds, len(keys), t0)
	}
	return vals, found
}

// Scan visits keys >= start ascending until fn returns false, stitching
// the shards' lock-free scan cursors through the handle's pinned per-shard
// readers — a long-lived goroutine (a netkv connection) pays no per-scan
// reader registration on any shard.
func (r *Reader) Scan(start []byte, fn func(key, val []byte) bool) {
	first := 0
	if len(start) > 0 {
		first = r.s.part.Locate(start)
	}
	more := true
	for i := first; i < len(r.rs) && more; i++ {
		from := start
		if i > first {
			from = nil
		}
		r.rs[i].Scan(from, func(k, v []byte) bool {
			more = fn(k, v)
			return more
		})
	}
}

// ScanDesc visits keys <= start descending until fn returns false (nil
// start: from the largest key), through the pinned per-shard readers.
func (r *Reader) ScanDesc(start []byte, fn func(key, val []byte) bool) {
	first := len(r.rs) - 1
	if start != nil {
		first = r.s.part.Locate(start)
	}
	more := true
	for i := first; i >= 0 && more; i-- {
		from := start
		if i < first {
			from = nil
		}
		r.rs[i].ScanDesc(from, func(k, v []byte) bool {
			more = fn(k, v)
			return more
		})
	}
}

// Close releases every per-shard reader slot.
func (r *Reader) Close() {
	for _, cr := range r.rs {
		cr.Close()
	}
	r.rs = nil
}

// SetBatch inserts or replaces keys[i] -> vals[i], grouped by shard.
// Duplicate keys within one batch apply in batch order.
func (s *Store) SetBatch(keys, vals [][]byte) {
	var t0 time.Time
	bmx := s.bmx.Load()
	if bmx != nil {
		t0 = time.Now()
	}
	s.fanOut(s.group(keys), len(keys), func(sh int, idxs []int) {
		w := s.shards[sh]
		for _, i := range idxs {
			w.Set(keys[i], vals[i])
		}
	})
	if bmx != nil {
		bmx.observeBatch(bmx.SetBatchSeconds, len(keys), t0)
	}
}

// DelBatch removes keys grouped by shard, reporting presence per key.
func (s *Store) DelBatch(keys [][]byte) []bool {
	var t0 time.Time
	bmx := s.bmx.Load()
	if bmx != nil {
		t0 = time.Now()
	}
	found := make([]bool, len(keys))
	s.fanOut(s.group(keys), len(keys), func(sh int, idxs []int) {
		w := s.shards[sh]
		for _, i := range idxs {
			found[i] = w.Del(keys[i])
		}
	})
	if bmx != nil {
		bmx.observeBatch(bmx.DelBatchSeconds, len(keys), t0)
	}
	return found
}

// Stats aggregates the structural statistics of every shard. Call it on a
// quiescent store.
func (s *Store) Stats() core.Stats {
	var agg core.Stats
	for _, w := range s.shards {
		st := w.Stats()
		agg.Keys += st.Keys
		agg.Leaves += st.Leaves
		agg.FatLeaves += st.FatLeaves
		agg.MetaItems += st.MetaItems
		agg.LeafItems += st.LeafItems
		agg.MetaBuckets += st.MetaBuckets
		if st.MaxAnchorLen > agg.MaxAnchorLen {
			agg.MaxAnchorLen = st.MaxAnchorLen
		}
		agg.AvgAnchorLen += st.AvgAnchorLen * float64(st.Leaves)
	}
	if agg.Leaves > 0 {
		agg.AvgAnchorLen /= float64(agg.Leaves)
	}
	return agg
}
