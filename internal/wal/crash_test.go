package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/repro/wormhole/internal/core"

	"github.com/repro/wormhole/internal/vfs"
)

// The crash-recovery matrix: run a deterministic operation stream through
// a durable store, then damage the WAL every way a crash or disk can —
// truncation at every record boundary, truncation inside every record,
// a flipped CRC byte, a flipped payload byte, a zero-filled preallocated
// tail — and assert that recovery restores exactly the state of the
// longest fully-durable operation prefix. Never a panic, never a phantom
// key, never a partially applied record.

// crashOp is one scripted mutation.
type crashOp struct {
	del bool
	key string
	val string
}

// crashScript builds a deterministic op stream exercising inserts,
// overwrites, and deletes of both present and (counted-out) re-inserted
// keys.
func crashScript(n int) []crashOp {
	ops := make([]crashOp, 0, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%03d", i%37) // revisit keys: overwrites and re-inserts
		switch i % 5 {
		case 3:
			ops = append(ops, crashOp{del: true, key: k})
		default:
			ops = append(ops, crashOp{key: k, val: fmt.Sprintf("val-%d", i)})
		}
	}
	return ops
}

// modelAfter replays the first n scripted ops into a map.
func modelAfter(ops []crashOp, n int) map[string]string {
	m := map[string]string{}
	for _, op := range ops[:n] {
		if op.del {
			delete(m, op.key)
		} else {
			m[op.key] = op.val
		}
	}
	return m
}

// verifyState asserts the recovered index matches the model exactly:
// same count, same pairs, and a full scan yields them in order with no
// extras.
func verifyState(t *testing.T, label string, w *core.Wormhole, model map[string]string) {
	t.Helper()
	if int(w.Count()) != len(model) {
		t.Fatalf("%s: recovered %d keys, model has %d", label, w.Count(), len(model))
	}
	for k, v := range model {
		got, ok := w.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("%s: Get(%s) = %q,%v want %q", label, k, got, ok, v)
		}
	}
	seen := 0
	var prev []byte
	w.Scan(nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("%s: scan out of order", label)
		}
		prev = append(prev[:0], k...)
		if mv, ok := model[string(k)]; !ok || mv != string(v) {
			t.Fatalf("%s: phantom or stale pair %q=%q", label, k, v)
		}
		seen++
		return true
	})
	if seen != len(model) {
		t.Fatalf("%s: scan found %d pairs, model has %d", label, seen, len(model))
	}
}

// frameBoundaries parses the WAL framing and returns offsets[i] = byte
// length of the first i records (offsets[0] = 0).
func frameBoundaries(t *testing.T, data []byte) []int64 {
	t.Helper()
	offsets := []int64{0}
	off := int64(0)
	for int(off)+frameHeader <= len(data) {
		n := binary.LittleEndian.Uint32(data[off : off+4])
		if n == 0 || int64(n) > int64(len(data))-off-frameHeader {
			t.Fatalf("reference WAL corrupt at %d", off)
		}
		off += frameHeader + int64(n)
		offsets = append(offsets, off)
	}
	if off != int64(len(data)) {
		t.Fatalf("reference WAL has %d trailing bytes", int64(len(data))-off)
	}
	return offsets
}

// recoverDamaged writes walData as the given generation's WAL in a fresh
// directory (copying extra files from srcDir first, e.g. a snapshot),
// reopens a store over it, and returns the recovered backend.
func recoverDamaged(t *testing.T, srcDir string, gen uint64, walData []byte) (*core.Wormhole, *Store) {
	t.Helper()
	dir := t.TempDir()
	if srcDir != "" {
		ents, err := os.ReadDir(srcDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			// A v2 snapshot is a .snap footer plus its .seg segment files.
			if ext := filepath.Ext(e.Name()); ext == ".snap" || ext == ".seg" {
				data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := os.WriteFile(walPath(dir, gen), walData, 0o644); err != nil {
		t.Fatal(err)
	}
	w := backend()
	st, err := Open(dir, w, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("recovery returned an error (must degrade, not fail): %v", err)
	}
	return w, st
}

func TestCrashRecoveryMatrixWALOnly(t *testing.T) {
	ops := crashScript(100)
	refDir := t.TempDir()
	w, st := openStore(t, refDir, Options{Sync: SyncNone})
	for _, op := range ops {
		if op.del {
			w.Del([]byte(op.key))
		} else {
			w.Set([]byte(op.key), []byte(op.val))
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(walPath(refDir, 1))
	if err != nil {
		t.Fatal(err)
	}
	offsets := frameBoundaries(t, data)
	// Not every op writes a record: deleting an absent key is not a
	// mutation. Map record index -> op prefix length.
	recToOp := make([]int, 1, len(offsets))
	m := map[string]bool{}
	for i, op := range ops {
		mutates := true
		if op.del {
			mutates = m[op.key]
			delete(m, op.key)
		} else {
			m[op.key] = true
		}
		if mutates {
			recToOp = append(recToOp, i+1)
		}
	}
	if len(recToOp) != len(offsets) {
		t.Fatalf("script produced %d records, WAL has %d", len(recToOp)-1, len(offsets)-1)
	}

	check := func(label string, walData []byte, wantRecords int) {
		t.Helper()
		w2, st2 := recoverDamaged(t, "", 1, walData)
		defer st2.Close()
		verifyState(t, label, w2, modelAfter(ops, recToOp[wantRecords]))
		if st2.RecoveredRecords() != wantRecords {
			t.Fatalf("%s: replayed %d records, want %d", label, st2.RecoveredRecords(), wantRecords)
		}
	}

	for i := 0; i < len(offsets); i++ {
		// Clean cut at every record boundary.
		check(fmt.Sprintf("boundary[%d]", i), data[:offsets[i]], i)
		if i == len(offsets)-1 {
			continue
		}
		// Torn cuts inside record i+1: one byte in, mid-record, one byte
		// short of complete.
		recLen := offsets[i+1] - offsets[i]
		for _, d := range []int64{1, recLen / 2, recLen - 1} {
			if d <= 0 || d >= recLen {
				continue
			}
			check(fmt.Sprintf("torn[%d+%d]", i, d), data[:offsets[i]+d], i)
		}
		// Flipped CRC byte and flipped payload byte in record i+1: the
		// record and everything after it must be discarded.
		for _, at := range []int64{offsets[i] + 4, offsets[i] + frameHeader} {
			bad := append([]byte(nil), data...)
			bad[at] ^= 0x01
			check(fmt.Sprintf("flip[%d@%d]", i, at), bad, i)
		}
	}
	// Zero-filled preallocated tail, at the end and at a mid-log boundary.
	zeros := make([]byte, 256)
	check("zerotail-full", append(append([]byte(nil), data...), zeros...), len(offsets)-1)
	mid := len(offsets) / 2
	check("zerotail-mid", append(append([]byte(nil), data[:offsets[mid]]...), zeros...), mid)
}

func TestCrashRecoveryMatrixSnapshotPlusTail(t *testing.T) {
	ops := crashScript(120)
	const snapAt = 60
	refDir := t.TempDir()
	w, st := openStore(t, refDir, Options{Sync: SyncNone})
	for _, op := range ops[:snapAt] {
		if op.del {
			w.Del([]byte(op.key))
		} else {
			w.Set([]byte(op.key), []byte(op.val))
		}
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[snapAt:] {
		if op.del {
			w.Del([]byte(op.key))
		} else {
			w.Set([]byte(op.key), []byte(op.val))
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The tail generation is 2 (snapshot rotated 1 -> 2).
	data, err := os.ReadFile(walPath(refDir, 2))
	if err != nil {
		t.Fatal(err)
	}
	offsets := frameBoundaries(t, data)
	// Zero tail records recovered = the snapshot's state = snapAt ops.
	recToOp := make([]int, 1, len(offsets))
	recToOp[0] = snapAt
	m := map[string]bool{}
	for _, op := range ops[:snapAt] {
		if op.del {
			delete(m, op.key)
		} else {
			m[op.key] = true
		}
	}
	for i, op := range ops[snapAt:] {
		mutates := true
		if op.del {
			mutates = m[op.key]
			delete(m, op.key)
		} else {
			m[op.key] = true
		}
		if mutates {
			recToOp = append(recToOp, snapAt+i+1)
		}
	}
	if len(recToOp) != len(offsets) {
		t.Fatalf("tail produced %d records, WAL has %d", len(recToOp)-1, len(offsets)-1)
	}

	for i := 0; i < len(offsets); i++ {
		cutAt := []int64{offsets[i]}
		if i < len(offsets)-1 {
			cutAt = append(cutAt, offsets[i]+(offsets[i+1]-offsets[i])/2)
		}
		for _, cut := range cutAt {
			w2, st2 := recoverDamaged(t, refDir, 2, data[:cut])
			verifyState(t, fmt.Sprintf("snap+cut[%d]", cut), w2, modelAfter(ops, recToOp[i]))
			if st2.RecoveredPairs() == 0 {
				t.Fatalf("cut[%d]: snapshot was not used", cut)
			}
			st2.Close()
		}
	}
}

// TestCrashRecoveryCorruptSnapshotFallsBack damages the snapshot itself:
// recovery must degrade — never fail, never panic, and never fabricate a
// non-prefix state. With the snapshot's predecessors already
// garbage-collected, the surviving tail generation cannot be replayed
// (its records assume the snapshot's state: a delete-again or an
// untouched old key would diverge), so the only provable prefix is the
// empty one, and the orphaned generation must not linger to collide with
// future generation numbers.
func TestCrashRecoveryCorruptSnapshotFallsBack(t *testing.T) {
	refDir := t.TempDir()
	w, st := openStore(t, refDir, Options{Sync: SyncNone})
	for i := 0; i < 50; i++ {
		w.Set([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	w.Set([]byte("tail"), []byte("t"))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := listGens(vfs.OS(), refDir, "snap-", ".snap")
	if len(snaps) != 1 {
		t.Fatalf("expected 1 snapshot, found %d", len(snaps))
	}
	p := snapPath(refDir, snaps[0])
	data, _ := os.ReadFile(p)
	data[len(data)/2] ^= 0xff
	os.WriteFile(p, data, 0o644)

	w2 := backend()
	st2, err := Open(refDir, w2, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("recovery with corrupt snapshot errored: %v", err)
	}
	if st2.RecoveredPairs() != 0 {
		t.Fatal("corrupt snapshot was loaded")
	}
	if w2.Count() != 0 || st2.RecoveredRecords() != 0 {
		t.Fatalf("non-contiguous tail was replayed: %d keys, %d records",
			w2.Count(), st2.RecoveredRecords())
	}
	// The store must remain fully usable: new writes land in a fresh
	// contiguous generation sequence and survive the next recovery.
	w2.SetMutationHook(st2)
	w2.Set([]byte("fresh"), []byte("f"))
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, st3 := openStore(t, refDir, Options{Sync: SyncNone})
	defer st3.Close()
	if v, ok := w3.Get([]byte("fresh")); !ok || string(v) != "f" {
		t.Fatalf("post-degradation write lost: %q,%v", v, ok)
	}
}
