package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/repro/wormhole/internal/core"

	"github.com/repro/wormhole/internal/vfs"
)

func TestLogAppendReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.log")
	l, err := openLog(vfs.OS(), path, 0, SyncNone, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		seq, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append seq = %d, want %d", seq, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	n, err := Replay(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fi, _ := os.Stat(path)
	if n != fi.Size() {
		t.Fatalf("valid prefix %d != file size %d", n, fi.Size())
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q want %q", i, got[i], want[i])
		}
	}
}

func TestLogReplayMissingFile(t *testing.T) {
	n, err := Replay(filepath.Join(t.TempDir(), "nope.log"), func([]byte) error {
		t.Fatal("callback on missing file")
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("missing file: n=%d err=%v", n, err)
	}
}

func TestLogGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.log")
	l, err := openLog(vfs.OS(), path, 0, SyncAlways, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Error(err)
					return
				}
				// The append/wait split the mutation hook uses: every
				// worker joins the group commit for its own record.
				if err := l.WaitDurable(seq); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if _, err := Replay(path, func([]byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != workers*per {
		t.Fatalf("replayed %d records, want %d", count, workers*per)
	}
}

func TestLogDoubleCloseIdempotent(t *testing.T) {
	l, err := openLog(vfs.OS(), filepath.Join(t.TempDir(), "w.log"), 0, SyncInterval, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append([]byte("y")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.snap")
	var keys, vals [][]byte
	for i := 0; i < 1000; i++ {
		keys = append(keys, []byte(fmt.Sprintf("key-%06d", i)))
		vals = append(vals, []byte(fmt.Sprintf("val-%d", i*i)))
	}
	err := WriteSnapshot(path, func(fn func(k, v []byte) bool) {
		for i := range keys {
			if !fn(keys[i], vals[i]) {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	gk, gv, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(gk) != len(keys) {
		t.Fatalf("loaded %d pairs, want %d", len(gk), len(keys))
	}
	for i := range gk {
		if !bytes.Equal(gk[i], keys[i]) || !bytes.Equal(gv[i], vals[i]) {
			t.Fatalf("pair %d = (%q,%q) want (%q,%q)", i, gk[i], gv[i], keys[i], vals[i])
		}
	}
}

func TestSnapshotEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.snap")
	if err := WriteSnapshot(path, func(func(k, v []byte) bool) {}); err != nil {
		t.Fatal(err)
	}
	gk, gv, err := LoadSnapshot(path)
	if err != nil || len(gk) != 0 || len(gv) != 0 {
		t.Fatalf("empty snapshot: %d pairs, err %v", len(gk), err)
	}
}

func TestSnapshotCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.snap")
	if err := WriteSnapshot(path, func(fn func(k, v []byte) bool) {
		fn([]byte("a"), []byte("1"))
		fn([]byte("b"), []byte("2"))
	}); err != nil {
		t.Fatal(err)
	}
	orig, _ := os.ReadFile(path)
	mutate := func(name string, f func([]byte) []byte) {
		data := f(append([]byte(nil), orig...))
		p := filepath.Join(dir, name)
		os.WriteFile(p, data, 0o644)
		if _, _, err := LoadSnapshot(p); err == nil {
			t.Fatalf("%s: corrupt snapshot loaded", name)
		}
	}
	mutate("truncated", func(b []byte) []byte { return b[:len(b)-3] })
	mutate("flipped", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b })
	mutate("badmagic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	mutate("extended", func(b []byte) []byte { return append(b, 0, 0, 0, 0) })
}

// backend returns a fresh unsafe core index (single-goroutine tests need
// no locking) satisfying wal.Backend.
func backend() *core.Wormhole {
	o := core.DefaultOptions()
	o.Concurrent = false
	return core.New(o)
}

func openStore(t *testing.T, dir string, opt Options) (*core.Wormhole, *Store) {
	t.Helper()
	w := backend()
	st, err := Open(dir, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	w.SetMutationHook(st)
	return w, st
}

func TestStoreRecoverWALOnly(t *testing.T) {
	dir := t.TempDir()
	w, st := openStore(t, dir, Options{Sync: SyncNone})
	for i := 0; i < 500; i++ {
		w.Set([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	w.Del([]byte("k0007"))
	w.Set([]byte("k0008"), []byte("rewritten"))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	w2, st2 := openStore(t, dir, Options{Sync: SyncNone})
	defer st2.Close()
	if w2.Count() != 499 {
		t.Fatalf("recovered %d keys, want 499", w2.Count())
	}
	if _, ok := w2.Get([]byte("k0007")); ok {
		t.Fatal("deleted key resurrected")
	}
	if v, ok := w2.Get([]byte("k0008")); !ok || string(v) != "rewritten" {
		t.Fatalf("k0008 = %q,%v", v, ok)
	}
	if st2.RecoveredRecords() != 502 {
		t.Fatalf("replayed %d records, want 502", st2.RecoveredRecords())
	}
}

func TestStoreSnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	w, st := openStore(t, dir, Options{Sync: SyncNone})
	for i := 0; i < 300; i++ {
		w.Set([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot tail.
	for i := 300; i < 350; i++ {
		w.Set([]byte(fmt.Sprintf("k%04d", i)), []byte("tail"))
	}
	w.Del([]byte("k0000"))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The old generation must be gone.
	wals, _ := listGens(vfs.OS(), dir, "wal-", ".log")
	snaps, _ := listGens(vfs.OS(), dir, "snap-", ".snap")
	if len(wals) != 1 || len(snaps) != 1 {
		t.Fatalf("after snapshot: %d wals, %d snaps (want 1, 1)", len(wals), len(snaps))
	}

	w2, st2 := openStore(t, dir, Options{Sync: SyncNone})
	defer st2.Close()
	if w2.Count() != 349 {
		t.Fatalf("recovered %d keys, want 349", w2.Count())
	}
	if st2.RecoveredPairs() != 300 {
		t.Fatalf("snapshot restored %d pairs, want 300", st2.RecoveredPairs())
	}
	if st2.RecoveredRecords() != 51 {
		t.Fatalf("tail replayed %d records, want 51", st2.RecoveredRecords())
	}
	if v, ok := w2.Get([]byte("k0349")); !ok || string(v) != "tail" {
		t.Fatalf("k0349 = %q,%v", v, ok)
	}
	if _, ok := w2.Get([]byte("k0000")); ok {
		t.Fatal("post-snapshot delete lost")
	}
}

func TestStoreSnapshotWithConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	o := core.DefaultOptions()
	w := core.New(o) // concurrent index: writers race the snapshot scan
	st, err := Open(dir, w, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	w.SetMutationHook(st)

	for i := 0; i < 200; i++ {
		w.Set([]byte(fmt.Sprintf("base%04d", i)), []byte("v"))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				w.Set([]byte(fmt.Sprintf("live%d-%04d", g, i%100)), []byte(fmt.Sprintf("%d", i)))
			}
		}(g)
	}
	for i := 0; i < 5; i++ {
		if err := st.Snapshot(); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery must converge to the exact final state.
	w2, st2 := openStore(t, dir, Options{Sync: SyncNone})
	defer st2.Close()
	if w2.Count() != w.Count() {
		t.Fatalf("recovered %d keys, want %d", w2.Count(), w.Count())
	}
	w.Scan(nil, func(k, v []byte) bool {
		gv, ok := w2.Get(k)
		if !ok || !bytes.Equal(gv, v) {
			t.Fatalf("recovered %q = %q,%v want %q", k, gv, ok, v)
		}
		return true
	})
}

func TestStoreCloseIdempotentAndDropsLateWrites(t *testing.T) {
	dir := t.TempDir()
	w, st := openStore(t, dir, Options{Sync: SyncAlways})
	w.Set([]byte("a"), []byte("1"))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Mutations after Close still apply in memory but are not logged and
	// must not panic.
	w.Set([]byte("b"), []byte("2"))
	if err := st.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close = %v, want ErrClosed", err)
	}
	if err := st.Snapshot(); err != ErrClosed {
		t.Fatalf("Snapshot after Close = %v, want ErrClosed", err)
	}

	w2, st2 := openStore(t, dir, Options{Sync: SyncNone})
	defer st2.Close()
	if _, ok := w2.Get([]byte("a")); !ok {
		t.Fatal("logged key lost")
	}
	if _, ok := w2.Get([]byte("b")); ok {
		t.Fatal("unlogged post-close key recovered")
	}
}

func TestStoreSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	w, st := openStore(t, dir, Options{Sync: SyncInterval, Interval: 2 * time.Millisecond})
	w.Set([]byte("k"), []byte("v"))
	// Wait for the background flusher, then verify the bytes are in the
	// file without going through Close's flush.
	deadline := time.Now().Add(2 * time.Second)
	for {
		wals, _ := listGens(vfs.OS(), dir, "wal-", ".log")
		if len(wals) == 1 {
			if fi, err := os.Stat(walPath(dir, wals[0])); err == nil && fi.Size() > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never wrote the record")
		}
		time.Sleep(time.Millisecond)
	}
	st.Close()
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"none", SyncNone, true}, {"", SyncNone, true},
		{"interval", SyncInterval, true}, {"always", SyncAlways, true},
		{"fsync", SyncNone, false},
	} {
		got, err := ParsePolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if SyncAlways.String() != "always" || SyncNone.String() != "none" || SyncInterval.String() != "interval" {
		t.Fatal("String() spelling drift")
	}
}

// TestStoreSameKeyRaceOrder hammers a single key from racing writers:
// because the hook appends under the owning leaf's lock, log order must
// equal commit order, so the recovered value always equals the final
// in-memory value — the no-phantom guarantee under contention.
func TestStoreSameKeyRaceOrder(t *testing.T) {
	for round := 0; round < 5; round++ {
		dir := t.TempDir()
		o := core.DefaultOptions()
		w := core.New(o)
		st, err := Open(dir, w, Options{Sync: SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		w.SetMutationHook(st)
		key := []byte("contended")
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					if i%7 == 3 {
						w.Del(key)
					} else {
						w.Set(key, []byte(fmt.Sprintf("g%d-i%d", g, i)))
					}
				}
			}(g)
		}
		wg.Wait()
		finalVal, finalOK := w.Get(key)
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}

		w3 := backend()
		st3, err := Open(dir, w3, Options{Sync: SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		defer st3.Close()
		gotVal, gotOK := w3.Get(key)
		if gotOK != finalOK || (finalOK && string(gotVal) != string(finalVal)) {
			t.Fatalf("round %d: recovered %q,%v but final in-memory state was %q,%v (log order diverged from commit order)",
				round, gotVal, gotOK, finalVal, finalOK)
		}
	}
}

func TestStoreDirLockExcludesSecondOpener(t *testing.T) {
	dir := t.TempDir()
	_, st := openStore(t, dir, Options{Sync: SyncNone})
	if _, err := Open(dir, backend(), Options{Sync: SyncNone}); err == nil {
		t.Fatal("second Open on a live directory succeeded; concurrent owners would corrupt the WAL")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Released on Close: a fresh Open succeeds.
	_, st2 := openStore(t, dir, Options{Sync: SyncNone})
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRecoveryRefusesGappedGenerations(t *testing.T) {
	dir := t.TempDir()
	w, st := openStore(t, dir, Options{Sync: SyncNone})
	for i := 0; i < 100; i++ {
		w.Set([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	if err := st.Snapshot(); err != nil { // snap-2 + wal-2
		t.Fatal(err)
	}
	w.Set([]byte("tail"), []byte("t"))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Destroy the snapshot: wal-2 alone must NOT be replayed onto an
	// empty index — its records assume the snapshot state, so replaying
	// them without it would fabricate a non-prefix state.
	snaps, _ := listGens(vfs.OS(), dir, "snap-", ".snap")
	for _, g := range snaps {
		os.Remove(snapPath(dir, g))
	}
	w2 := backend()
	st2, err := Open(dir, w2, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("gapped recovery errored instead of degrading: %v", err)
	}
	defer st2.Close()
	if w2.Count() != 0 || st2.RecoveredRecords() != 0 {
		t.Fatalf("gapped recovery fabricated state: %d keys, %d records",
			w2.Count(), st2.RecoveredRecords())
	}
	// The orphaned generation must be gone so it can't collide with the
	// fresh generation sequence later.
	if wals, _ := listGens(vfs.OS(), dir, "wal-", ".log"); len(wals) != 1 || wals[0] != 1 {
		t.Fatalf("orphaned generations left behind: %v", wals)
	}
}
