package wal

import (
	"errors"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/repro/wormhole/internal/core"
	"github.com/repro/wormhole/internal/vfs"
)

// The crash-point harness: record the file-operation schedule of a clean
// deterministic workload, then re-run the workload once per mutating
// operation with a simulated power loss injected exactly there, recover,
// and assert the recovered state is EXACTLY the model state after some
// prefix of the scripted operations — at least every operation that was
// acknowledged as durable before the crash, at most every operation that
// had started. This generalizes the hand-picked truncation points of the
// crash-recovery matrix: every create, write, fsync, rename, remove and
// directory sync in the whole workload (including mid-workload snapshot
// rotation and GC) becomes a crash point.

// stateMatches reports whether the index holds exactly the model's pairs.
func stateMatches(w *core.Wormhole, model map[string]string) bool {
	if int(w.Count()) != len(model) {
		return false
	}
	ok := true
	w.Scan(nil, func(k, v []byte) bool {
		if mv, present := model[string(k)]; !present || mv != string(v) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// runFaultWorkload drives the scripted ops through the store, snapshotting
// before op snapAt, and stops at the first sticky durability failure.
// acked counts ops known durable (SyncAlways: the op returned with no
// sticky error); started counts ops attempted.
func runFaultWorkload(w *core.Wormhole, st *Store, ops []crashOp, snapAt int) (acked, started int) {
	for i, op := range ops {
		if i == snapAt {
			// A crash may land inside the snapshot; its error is not a
			// durability failure for already-acked ops.
			st.Snapshot()
		}
		started = i + 1
		if op.del {
			w.Del([]byte(op.key))
		} else {
			w.Set([]byte(op.key), []byte(op.val))
		}
		if st.Err() != nil {
			return acked, started
		}
		acked = i + 1
	}
	return acked, started
}

func openFaultStore(t *testing.T, fsys vfs.FS) (*core.Wormhole, *Store) {
	t.Helper()
	return openFaultStoreOpt(t, fsys, Options{})
}

// openFaultStoreOpt opens the harness store with the format-selecting
// fields of opt (SnapshotV1, SegmentBytes) layered onto the harness
// defaults.
func openFaultStoreOpt(t *testing.T, fsys vfs.FS, opt Options) (*core.Wormhole, *Store) {
	t.Helper()
	opt.Sync, opt.FS, opt.NoSelfHeal = SyncAlways, fsys, true
	w := backend()
	st, err := Open("/db", w, opt)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	w.SetMutationHook(st)
	return w, st
}

// TestCrashPointMatrix runs the crash-point harness once per snapshot
// format: the legacy monolithic v1 writer, the segmented v2 writer at
// its default budget (one segment at this scale — crash points around
// the footer rename), and v2 with a tiny segment budget so the mid-
// workload snapshot writes MANY segments — every temp write, rename and
// directory sync between segments and before the footer becomes a crash
// point, and recovery must never observe a half-visible segment set.
func TestCrashPointMatrix(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"v1-monolithic", Options{SnapshotV1: true}},
		{"v2-default", Options{}},
		{"v2-tiny-segments", Options{SegmentBytes: 32}},
	} {
		t.Run(tc.name, func(t *testing.T) { runCrashPointMatrix(t, tc.opt) })
	}
}

func runCrashPointMatrix(t *testing.T, opt Options) {
	const nops = 40
	const snapAt = 20
	ops := crashScript(nops)

	// Pass 1: a clean run records the mutating-op schedule.
	var schedule []int64
	{
		inj := vfs.NewInjector(vfs.NewMemFS())
		w, st := openFaultStoreOpt(t, inj, opt)
		start := inj.Ops()
		inj.Observe = func(n int64, kind vfs.Kind, path string) {
			if n >= start && kind&vfs.KindMutating != 0 {
				schedule = append(schedule, n)
			}
		}
		if acked, _ := runFaultWorkload(w, st, ops, snapAt); acked != nops {
			t.Fatalf("clean run acked %d/%d ops", acked, nops)
		}
		inj.Observe = nil
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if len(schedule) < nops {
		t.Fatalf("recorded only %d crash points for %d ops", len(schedule), nops)
	}

	// Pass 2: one crash per recorded point. The workload is deterministic,
	// so op index n in the replay is the same logical point as in pass 1.
	for _, idx := range schedule {
		mem := vfs.NewMemFS()
		// Deterministically vary how much of the unsynced tail survives:
		// different crash points exercise clean cuts, torn records, and
		// whole surviving-but-unacked records.
		mem.TornTail = func(unsynced int) int {
			return int(uint64(idx) * 2654435761 % uint64(unsynced+1))
		}
		inj := vfs.NewInjector(mem)
		w, st := openFaultStoreOpt(t, inj, opt)
		inj.AddRule(vfs.Rule{Kind: vfs.KindMutating, After: idx, Count: 1, Crash: true})
		acked, started := runFaultWorkload(w, st, ops, snapAt)
		st.Close()

		mem.Restart()
		inj.ClearRules()
		w2 := backend()
		recoverOpt := opt
		recoverOpt.Sync, recoverOpt.FS, recoverOpt.NoSelfHeal = SyncAlways, inj, true
		st2, err := Open("/db", w2, recoverOpt)
		if err != nil {
			t.Fatalf("crash@%d: recovery failed: %v", idx, err)
		}
		matched := -1
		for k := acked; k <= started; k++ {
			if stateMatches(w2, modelAfter(ops, k)) {
				matched = k
				break
			}
		}
		if matched < 0 {
			t.Fatalf("crash@%d: recovered %d keys; state matches no scripted prefix in [acked=%d, started=%d]",
				idx, w2.Count(), acked, started)
		}
		if err := st2.Close(); err != nil {
			t.Fatalf("crash@%d: close after recovery: %v", idx, err)
		}
	}
}

// TestSnapshotENOSPCLeavesChainRecoverable fills the "disk" during a
// snapshot's temp-file write: the snapshot must fail cleanly — temp
// removed, no new snapshot published, store still writable — and the
// prior snapshot + contiguous WAL chain must recover everything.
func TestSnapshotENOSPCLeavesChainRecoverable(t *testing.T) {
	inj := vfs.NewInjector(vfs.NewMemFS())
	w, st := openFaultStore(t, inj)
	set := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			w.Set([]byte{byte('a' + i/26), byte('a' + i%26)}, []byte{byte(i)})
		}
	}
	set(0, 50)
	if err := st.Snapshot(); err != nil { // snap-2 + wal-2
		t.Fatal(err)
	}
	set(50, 100)

	inj.AddRule(vfs.Rule{Kind: vfs.KindWrite, PathContains: ".snap", Err: syscall.ENOSPC})
	if err := st.Snapshot(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("snapshot on a full disk: %v", err)
	}
	inj.ClearRules()

	ents, err := inj.ReadDir("/db")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("aborted snapshot left temp file %s", e.Name())
		}
	}
	snaps, _ := listGens(inj, "/db", "snap-", ".snap")
	if len(snaps) != 1 || snaps[0] != 2 {
		t.Fatalf("snapshot generations after failed snapshot: %v (want only 2)", snaps)
	}
	// The failure was confined to the snapshot file: the append path is
	// intact and the store must not have degraded.
	if err := st.Err(); err != nil {
		t.Fatalf("sticky failure after snapshot-only ENOSPC: %v", err)
	}
	if st.Degraded() {
		t.Fatal("store degraded by a snapshot-only failure")
	}
	set(100, 120)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := backend()
	st2, err := Open("/db", w2, Options{Sync: SyncAlways, FS: inj, NoSelfHeal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if w2.Count() != 120 {
		t.Fatalf("recovered %d keys, want 120", w2.Count())
	}
}

// TestDegradedHealsAfterENOSPCClears walks the whole degraded-mode state
// machine at the wal layer: an append-path ENOSPC flips the store
// degraded (reads keep serving), the healer retries and fails while the
// fault stands, and once the fault clears the store heals back to
// writable — no reopen — with the post-heal write durable.
func TestDegradedHealsAfterENOSPCClears(t *testing.T) {
	inj := vfs.NewInjector(vfs.NewMemFS())
	w := backend()
	st, err := Open("/db", w, Options{
		Sync:    SyncAlways,
		FS:      inj,
		HealMin: time.Millisecond,
		HealMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	w.SetMutationHook(st)

	w.Set([]byte("before"), []byte("v"))
	if st.Degraded() {
		t.Fatal("healthy store reports degraded")
	}

	inj.AddRule(vfs.Rule{Kind: vfs.KindWrite | vfs.KindSync, PathContains: "wal-", Err: syscall.ENOSPC})
	w.Set([]byte("poisoned"), []byte("v"))
	if !st.Degraded() {
		t.Fatal("append-path ENOSPC did not degrade the store")
	}
	if err := st.Err(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("sticky error: %v", err)
	}
	if h := st.Health(); !h.Degraded || h.Err == "" {
		t.Fatalf("health while degraded: %+v", h)
	}
	// Reads keep serving while degraded.
	if v, ok := w.Get([]byte("before")); !ok || string(v) != "v" {
		t.Fatal("read path died with the write path")
	}

	// The healer must be attempting and failing while the fault stands.
	deadline := time.Now().Add(5 * time.Second)
	for st.Health().HealAttempts < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("healer made %d attempts against a standing fault", st.Health().HealAttempts)
		}
		time.Sleep(time.Millisecond)
	}

	inj.ClearRules()
	for st.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("store did not heal after the fault cleared: %+v", st.Health())
		}
		time.Sleep(time.Millisecond)
	}

	// Writable again without a reopen, and the post-heal write is durable.
	w.Set([]byte("after-heal"), []byte("v2"))
	if err := st.Flush(); err != nil {
		t.Fatalf("flush after heal: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close after heal: %v", err)
	}
	w2 := backend()
	st2, err := Open("/db", w2, Options{Sync: SyncAlways, FS: inj, NoSelfHeal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, ok := w2.Get([]byte("after-heal")); !ok {
		t.Fatal("post-heal write lost across reopen")
	}
	if _, ok := w2.Get([]byte("before")); !ok {
		t.Fatal("pre-fault write lost")
	}
}
