package wal

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/repro/wormhole/internal/vfs"
)

// prefixedPairs yields n pairs with URL-like common-prefix keys in
// ascending order — the keyset shape prefix compression exists for.
func prefixedPairs(n int) (keys, vals [][]byte) {
	for i := 0; i < n; i++ {
		keys = append(keys, []byte(fmt.Sprintf("https://example.com/users/%07d/profile", i)))
		vals = append(vals, []byte(fmt.Sprintf("payload-%d", i)))
	}
	return keys, vals
}

func scanPairs(keys, vals [][]byte) func(fn func(k, v []byte) bool) {
	return func(fn func(k, v []byte) bool) {
		for i := range keys {
			if !fn(keys[i], vals[i]) {
				return
			}
		}
	}
}

func checkPairs(t *testing.T, keys, vals, wantK, wantV [][]byte) {
	t.Helper()
	if len(keys) != len(wantK) {
		t.Fatalf("loaded %d pairs, want %d", len(keys), len(wantK))
	}
	for i := range keys {
		if !bytes.Equal(keys[i], wantK[i]) || !bytes.Equal(vals[i], wantV[i]) {
			t.Fatalf("pair %d = %q/%q, want %q/%q", i, keys[i], vals[i], wantK[i], wantV[i])
		}
	}
}

func TestSnapshotV2Roundtrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		for _, segBytes := range []int{1, 512, 1 << 20} {
			for _, workers := range []int{1, 2, 8, 0} {
				fsys := vfs.NewMemFS()
				if err := fsys.MkdirAll("/db", 0o755); err != nil {
					t.Fatal(err)
				}
				wantK, wantV := prefixedPairs(n)
				if err := writeSnapshotV2FS(fsys, "/db", 7, segBytes, scanPairs(wantK, wantV)); err != nil {
					t.Fatalf("n=%d seg=%d: write: %v", n, segBytes, err)
				}
				keys, vals, segs, err := loadAnySnapshotFS(fsys, "/db", 7, workers)
				if err != nil {
					t.Fatalf("n=%d seg=%d w=%d: load: %v", n, segBytes, workers, err)
				}
				if n > 0 && segs == 0 {
					t.Fatalf("n=%d: loaded zero segments from a v2 snapshot", n)
				}
				checkPairs(t, keys, vals, wantK, wantV)
			}
		}
	}
}

func TestSnapshotV2SmallerThanV1ForCommonPrefixKeys(t *testing.T) {
	fsys := vfs.NewMemFS()
	if err := fsys.MkdirAll("/v1", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fsys.MkdirAll("/v2", 0o755); err != nil {
		t.Fatal(err)
	}
	keys, vals := prefixedPairs(5000)
	if err := writeSnapshotFS(fsys, snapPath("/v1", 1), scanPairs(keys, vals)); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshotV2FS(fsys, "/v2", 1, 0, scanPairs(keys, vals)); err != nil {
		t.Fatal(err)
	}
	size := func(dir string) int64 {
		var total int64
		ents, err := fsys.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			fi, err := fsys.Stat(dir + "/" + e.Name())
			if err != nil {
				t.Fatal(err)
			}
			total += fi.Size()
		}
		return total
	}
	v1, v2 := size("/v1"), size("/v2")
	if v2 >= v1 {
		t.Fatalf("v2 snapshot (%d bytes) not smaller than v1 (%d bytes) for common-prefix keys", v2, v1)
	}
}

func TestSnapshotV2SegmentBoundaryIndependence(t *testing.T) {
	// Tiny segment budget: every segment must restart prefix compression
	// (first entry plen 0) and still load back whole.
	fsys := vfs.NewMemFS()
	if err := fsys.MkdirAll("/db", 0o755); err != nil {
		t.Fatal(err)
	}
	wantK, wantV := prefixedPairs(100)
	if err := writeSnapshotV2FS(fsys, "/db", 3, 1, scanPairs(wantK, wantV)); err != nil {
		t.Fatal(err)
	}
	footer, err := fsys.ReadFile(snapPath("/db", 3))
	if err != nil {
		t.Fatal(err)
	}
	metas, total, err := parseSnapshotFooter(footer)
	if err != nil {
		t.Fatal(err)
	}
	if total != 100 || len(metas) != 100 {
		t.Fatalf("1-byte budget: %d segments / %d pairs, want 100/100", len(metas), total)
	}
	// Each segment must decode with zero context from its neighbours.
	for i, m := range metas {
		data, err := fsys.ReadFile(segPath("/db", 3, i))
		if err != nil {
			t.Fatal(err)
		}
		sk, sv, err := decodeSegment(data, m.pairs, m.keyBytes)
		if err != nil {
			t.Fatalf("segment %d standalone decode: %v", i, err)
		}
		checkPairs(t, sk, sv, wantK[i:i+1], wantV[i:i+1])
	}
}

func TestSnapshotV2GCSweepsOldAndOrphanSegments(t *testing.T) {
	dir := t.TempDir()
	w, st := openStore(t, dir, Options{Sync: SyncNone, SegmentBytes: 256})
	for i := 0; i < 200; i++ {
		w.Set([]byte(fmt.Sprintf("https://example.com/item/%05d", i)), []byte("v"))
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	segsAfterFirst := countSegs(t, dir)
	if segsAfterFirst == 0 {
		t.Fatal("first snapshot wrote no segments")
	}
	// A second snapshot must sweep the first generation's segments.
	w.Set([]byte("zzz"), []byte("v"))
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	gens := map[uint64]bool{}
	eachSeg(t, dir, func(gen uint64) { gens[gen] = true })
	if len(gens) != 1 {
		t.Fatalf("segments from %d generations survive the second snapshot, want 1", len(gens))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func countSegs(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	eachSeg(t, dir, func(uint64) { n++ })
	return n
}

func eachSeg(t *testing.T, dir string, fn func(gen uint64)) {
	t.Helper()
	ents, err := vfs.OS().ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if gen, ok := parseSegName(e.Name()); ok {
			fn(gen)
		}
	}
}

func TestParseSegName(t *testing.T) {
	name := segPath("", 0xabc, 17) // Join with an empty dir yields the bare name
	gen, ok := parseSegName(name)
	if !ok || gen != 0xabc {
		t.Fatalf("parseSegName(%q) = %d,%v", name, gen, ok)
	}
	for _, bad := range []string{
		"snap-0000000000000abc.snap",
		"wal-0000000000000abc.log",
		"snap-0000000000000abc-00017.seg.tmp1",
		"snap-000000000000Gabc-00017.seg",
		"snap-0000000000000abc-0z017.seg",
		"snap-0000000000000abc-00017.segx",
	} {
		if _, ok := parseSegName(bad); ok {
			t.Fatalf("parseSegName(%q) accepted", bad)
		}
	}
}

func TestStoreRecoversAcrossFormatsAndWorkerCounts(t *testing.T) {
	// End-to-end: v2 snapshot + WAL tail recovers identically at every
	// worker count, and RecoveredSegments reports the decode fan-out.
	dir := t.TempDir()
	w, st := openStore(t, dir, Options{Sync: SyncNone, SegmentBytes: 512})
	for i := 0; i < 300; i++ {
		w.Set([]byte(fmt.Sprintf("https://example.com/doc/%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	w.Set([]byte("tail-key"), []byte("tail-val"))
	w.Del([]byte("https://example.com/doc/00000"))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	var serial []string
	for _, workers := range []int{1, 2, 8} {
		w2, st2 := openStore(t, dir, Options{Sync: SyncNone, DecodeWorkers: workers})
		if st2.RecoveredSegments() == 0 {
			t.Fatalf("workers=%d: recovered zero segments from a v2 snapshot", workers)
		}
		if st2.RecoveredRecords() != 2 {
			t.Fatalf("workers=%d: replayed %d tail records, want 2", workers, st2.RecoveredRecords())
		}
		var scan []string
		w2.Scan(nil, func(k, v []byte) bool {
			scan = append(scan, string(k)+"="+string(v))
			return true
		})
		if serial == nil {
			serial = scan
		} else if len(scan) != len(serial) {
			t.Fatalf("workers=%d: scan length %d != serial %d", workers, len(scan), len(serial))
		} else {
			for i := range scan {
				if scan[i] != serial[i] {
					t.Fatalf("workers=%d: scan[%d] = %q != serial %q", workers, i, scan[i], serial[i])
				}
			}
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if len(serial) != 300 { // 300 set - 1 del + 1 tail set
		t.Fatalf("recovered %d keys, want 300", len(serial))
	}
}
