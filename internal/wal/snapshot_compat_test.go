package wal

import (
	"fmt"
	"os"
	"testing"

	"github.com/repro/wormhole/internal/vfs"
)

// Format-compatibility suite: stores written by the v1 code path must
// recover byte-identically through the current loader, directories
// mixing v1 and v2 generations must recover from the newest valid one,
// and a v2 footer whose segment set is incomplete must fall back to the
// previous generation rather than load a partial shard.

func scanAll(b Backend) []string {
	var out []string
	b.Scan(nil, func(k, v []byte) bool {
		out = append(out, string(k)+"="+string(v))
		return true
	})
	return out
}

func TestV1WrittenStoreRecoversThroughCurrentLoader(t *testing.T) {
	dir := t.TempDir()
	w, st := openStore(t, dir, Options{Sync: SyncNone, SnapshotV1: true})
	for i := 0; i < 500; i++ {
		w.Set([]byte(fmt.Sprintf("https://example.com/page/%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	w.Set([]byte("after-snap"), []byte("tail"))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	want := scanAll(w)

	// Current (v2-default) code path opens the v1-written directory.
	w2, st2 := openStore(t, dir, Options{Sync: SyncNone})
	if st2.RecoveredPairs() != 500 {
		t.Fatalf("recovered %d snapshot pairs, want 500", st2.RecoveredPairs())
	}
	if st2.RecoveredSegments() != 0 {
		t.Fatalf("v1 snapshot reported %d segments, want 0", st2.RecoveredSegments())
	}
	got := scanAll(w2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %q, want %q", i, got[i], want[i])
		}
	}

	// And the next snapshot upgrades the directory to v2 in place.
	if err := st2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if n := countSegs(t, dir); n == 0 {
		t.Fatal("snapshot after v1 recovery wrote no v2 segments")
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, st3 := openStore(t, dir, Options{Sync: SyncNone})
	defer st3.Close()
	if st3.RecoveredSegments() == 0 {
		t.Fatal("upgraded directory did not recover through the v2 loader")
	}
	got = scanAll(w3)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("after upgrade, pair %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// mixedGenDir builds a directory holding a v1 snapshot at generation 2
// (pairs keyed v1-*) and a v2 snapshot at generation 5 (pairs keyed
// v2-*), with no WAL files — recovery must pick the newest valid one.
func mixedGenDir(t *testing.T) vfs.FS {
	t.Helper()
	fsys := vfs.NewMemFS()
	if err := fsys.MkdirAll("/db", 0o755); err != nil {
		t.Fatal(err)
	}
	k1, v1 := [][]byte{[]byte("v1-a"), []byte("v1-b")}, [][]byte{[]byte("1"), []byte("2")}
	if err := writeSnapshotFS(fsys, snapPath("/db", 2), scanPairs(k1, v1)); err != nil {
		t.Fatal(err)
	}
	k2, v2 := prefixedPairs(50)
	if err := writeSnapshotV2FS(fsys, "/db", 5, 256, scanPairs(k2, v2)); err != nil {
		t.Fatal(err)
	}
	return fsys
}

func TestMixedGenerationsRecoverFromNewestValid(t *testing.T) {
	fsys := mixedGenDir(t)
	w := backend()
	st, err := Open("/db", w, Options{Sync: SyncNone, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.RecoveredPairs() != 50 || st.RecoveredSegments() == 0 {
		t.Fatalf("recovered %d pairs / %d segments, want the 50-pair v2 generation",
			st.RecoveredPairs(), st.RecoveredSegments())
	}
	wantK, wantV := prefixedPairs(50)
	got := scanAll(w)
	for i := range got {
		if got[i] != string(wantK[i])+"="+string(wantV[i]) {
			t.Fatalf("pair %d = %q", i, got[i])
		}
	}
}

func writeRaw(t *testing.T, fsys vfs.FS, path string, data []byte) {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMissingSegmentFallsBackToPreviousGeneration(t *testing.T) {
	for _, damage := range []string{"missing", "truncated", "crcflip"} {
		fsys := mixedGenDir(t)
		// Damage one middle segment of the v2 generation.
		path := segPath("/db", 5, 1)
		switch damage {
		case "missing":
			if err := fsys.Remove(path); err != nil {
				t.Fatal(err)
			}
		case "truncated":
			data, err := fsys.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			writeRaw(t, fsys, path, data[:len(data)-3])
		case "crcflip":
			data, err := fsys.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x01
			writeRaw(t, fsys, path, data)
		}
		w := backend()
		st, err := Open("/db", w, Options{Sync: SyncNone, FS: fsys})
		if err != nil {
			t.Fatalf("%s: %v", damage, err)
		}
		// Never a partial shard: the damaged v2 generation must be skipped
		// wholesale in favor of the older v1 snapshot.
		if st.RecoveredPairs() != 2 || st.RecoveredSegments() != 0 {
			t.Fatalf("%s: recovered %d pairs / %d segments, want the 2-pair v1 fallback",
				damage, st.RecoveredPairs(), st.RecoveredSegments())
		}
		got := scanAll(w)
		if len(got) != 2 || got[0] != "v1-a=1" || got[1] != "v1-b=2" {
			t.Fatalf("%s: fallback scan = %v", damage, got)
		}
		st.Close()
	}
}
