package wal

import (
	"errors"
	"math/rand/v2"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// Degraded read-only mode and the self-healer.
//
// The state machine: a WAL append or fsync failure records a sticky error
// (recordFailure) and flips the store DEGRADED — reads, scans and
// replication streaming keep serving, but write owners (the shard layer,
// the server) consult Degraded() and refuse new mutations, because
// accepting a write that cannot be logged silently widens the window of
// unrecoverable history. A background healer then retries with jittered
// exponential backoff: reclaim space if the disk looks full, write a
// snapshot (which supersedes the poisoned log history and garbage-collects
// the old WAL generations — the reclamation that matters), and finally
// probe the fresh generation with a no-op append + fsync. Only a probe
// that round-trips to stable storage restores WRITABLE; a probe failure
// re-poisons the store and the loop backs off and tries again.

// Default self-heal backoff bounds.
const (
	DefaultHealMin = 50 * time.Millisecond
	DefaultHealMax = 5 * time.Second
)

// Health is one store's degradation status, shaped for OpStat and
// operators.
type Health struct {
	Degraded     bool   `json:"degraded"`
	Err          string `json:"err,omitempty"`
	Gen          uint64 `json:"gen,omitempty"`
	HealAttempts int64  `json:"heal_attempts,omitempty"`
	LastHealErr  string `json:"last_heal_err,omitempty"`
}

// Degraded reports whether the store is in degraded read-only mode: a WAL
// append or fsync failure stands unhealed, so new mutations may not be
// recoverable and write owners should refuse them. One atomic load — safe
// on the per-write hot path.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// Health returns the store's degradation status: the sticky error (if
// any), the generation it was stamped with, and the healer's progress.
func (s *Store) Health() Health {
	h := Health{Degraded: s.degraded.Load()}
	s.failMu.Lock()
	if s.failure != nil {
		h.Err = s.failure.Error()
		h.Gen = s.failGen
	}
	s.failMu.Unlock()
	s.healMu.Lock()
	h.HealAttempts = s.healAttempts
	if s.lastHealErr != nil {
		h.LastHealErr = s.lastHealErr.Error()
	}
	s.healMu.Unlock()
	return h
}

// ensureHealer starts the background heal loop if one is not already
// running. Called by recordFailure; idempotent.
func (s *Store) ensureHealer() {
	if s.opt.NoSelfHeal {
		return
	}
	s.healMu.Lock()
	defer s.healMu.Unlock()
	if s.healing || s.closed.Load() {
		return
	}
	s.healing = true
	s.healWG.Add(1)
	go s.healLoop()
}

// healLoop retries healOnce with jittered exponential backoff until the
// store is writable again or closed. The jitter keeps a fleet of shards
// degraded by one shared fault (a full disk degrades every shard at once)
// from retrying in lockstep.
func (s *Store) healLoop() {
	defer s.healWG.Done()
	min, max := s.opt.HealMin, s.opt.HealMax
	if min <= 0 {
		min = DefaultHealMin
	}
	if max < min {
		max = DefaultHealMax
		if max < min {
			max = min
		}
	}
	backoff := min
	for {
		d := backoff/2 + rand.N(backoff/2+1) // uniform in [backoff/2, backoff]
		t := time.NewTimer(d)
		select {
		case <-s.healStop:
			t.Stop()
			s.healMu.Lock()
			s.healing = false
			s.healMu.Unlock()
			return
		case <-t.C:
		}
		if s.closed.Load() {
			s.healMu.Lock()
			s.healing = false
			s.healMu.Unlock()
			return
		}
		err := s.healOnce()
		s.healMu.Lock()
		s.healAttempts++
		s.lastHealErr = err
		s.healMu.Unlock()
		if err == nil {
			// Healed — unless a new failure raced in behind the probe.
			// The exit check under healMu pairs with ensureHealer: a
			// failure recorded after we release the lock finds
			// healing == false and spawns a fresh loop.
			s.healMu.Lock()
			if s.Err() == nil || s.closed.Load() {
				s.healing = false
				s.healMu.Unlock()
				return
			}
			s.healMu.Unlock()
			backoff = min
			continue
		}
		if backoff *= 2; backoff > max {
			backoff = max
		}
	}
}

// healOnce is one recovery attempt: reclaim space when the failure looks
// like a full disk, supersede the poisoned log history with a snapshot
// (whose GC of the old WAL generations is itself the big reclamation),
// then probe the fresh generation. Returns nil only when the store ends
// the attempt writable.
func (s *Store) healOnce() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if errors.Is(s.Err(), syscall.ENOSPC) {
		s.removeStaleTemps()
	}
	if err := s.Snapshot(); err != nil {
		return err
	}
	return s.probe()
}

// probe appends a no-op record and forces it to disk: the round-trip that
// proves the append path works again. A failure re-poisons the store,
// stamped with the current generation, keeping it degraded.
func (s *Store) probe() error {
	s.logMu.RLock()
	gen := s.gen
	log := s.log
	s.logMu.RUnlock()
	if _, err := log.Append([]byte{opNoop}); err != nil {
		s.recordFailure(err, gen)
		return err
	}
	if err := log.Sync(); err != nil {
		s.recordFailure(err, gen)
		return err
	}
	return nil
}

// removeStaleTemps deletes leftover "*.tmp*" files in the store directory
// — aborted snapshot or manifest writes that may be holding the very
// space a heal needs. Racing an explicit concurrent Snapshot's live temp
// is harmless: its rename fails, the snapshot reports an error, and a
// later attempt retries.
func (s *Store) removeStaleTemps() {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			s.fs.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
}
