package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/repro/wormhole/internal/vfs"
)

// Snapshot files hold one key-ordered copy of the index:
//
//	[magic "WHSNAP1\n"][count uint64]
//	count × ([klen uvarint][vlen uvarint][key][val])
//	[crc32c uint32]
//
// The trailing CRC covers everything before it, including the header, so
// a truncated, bit-flipped or zero-extended snapshot never loads — the
// store falls back to an older generation or an empty index plus the WAL.
// Keys are written in ascending order straight off a scan cursor, so
// loading streams into the index's bulkload path without sorting.
var snapMagic = []byte("WHSNAP1\n")

const snapTrailer = 4

// errSnapshot marks an invalid snapshot file (any reason).
var errSnapshot = errors.New("wal: invalid snapshot")

// WriteSnapshot streams the pairs produced by scan into path atomically:
// the bytes go to a temporary file in the same directory, are fsynced, and
// are renamed over path only when complete, so a crash mid-snapshot leaves
// no half-written file under the real name. scan must yield keys in
// strictly ascending order (the index's scan cursor does).
func WriteSnapshot(path string, scan func(fn func(key, val []byte) bool)) (err error) {
	return writeSnapshotFS(vfs.OS(), path, scan)
}

// writeSnapshotFS is WriteSnapshot over an injectable filesystem.
func writeSnapshotFS(fsys vfs.FS, path string, scan func(fn func(key, val []byte) bool)) (err error) {
	tmp, err := fsys.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			fsys.Remove(tmp.Name())
		}
	}()

	// The pair count is not known until the scan finishes: write a zero
	// placeholder, patch it afterwards, and compute the trailer CRC with
	// one sequential re-read of the (page-cache-hot) file — snapshot
	// writing is not on any latency path.
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if _, err = bw.Write(snapMagic); err != nil {
		return err
	}
	var cnt [8]byte
	if _, err = bw.Write(cnt[:]); err != nil {
		return err
	}
	var count uint64
	var scratch []byte
	scan(func(key, val []byte) bool {
		scratch = scratch[:0]
		scratch = binary.AppendUvarint(scratch, uint64(len(key)))
		scratch = binary.AppendUvarint(scratch, uint64(len(val)))
		if _, err = bw.Write(scratch); err != nil {
			return false
		}
		if _, err = bw.Write(key); err != nil {
			return false
		}
		if _, err = bw.Write(val); err != nil {
			return false
		}
		count++
		return true
	})
	if err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(cnt[:], count)
	if _, err = tmp.WriteAt(cnt[:], int64(len(snapMagic))); err != nil {
		return err
	}

	if _, err = tmp.Seek(0, io.SeekStart); err != nil {
		return err
	}
	h := crc32.New(castagnoli)
	if _, err = bufio.NewReaderSize(tmp, 1<<16).WriteTo(h); err != nil {
		return err
	}
	var tr [snapTrailer]byte
	binary.LittleEndian.PutUint32(tr[:], h.Sum32())
	if _, err = tmp.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	if _, err = tmp.Write(tr[:]); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp.Name(), path); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	return syncDirFS(fsys, filepath.Dir(path))
}

// LoadSnapshot reads and validates a snapshot, returning its pairs in
// ascending key order, ready for bulkload. The returned slices alias one
// backing array read from disk (the index retains them, so one allocation
// holds the whole restored keyspace). Any structural defect — bad magic,
// CRC mismatch, count mismatch, truncated pair, keys out of order — yields
// an error and no pairs: a snapshot is all-or-nothing.
func LoadSnapshot(path string) (keys, vals [][]byte, err error) {
	return loadSnapshotFS(vfs.OS(), path)
}

// loadSnapshotFS is LoadSnapshot over an injectable filesystem.
func loadSnapshotFS(fsys vfs.FS, path string) (keys, vals [][]byte, err error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return loadSnapshotBytes(data)
}

// loadSnapshotBytes parses a v1 monolithic snapshot image.
func loadSnapshotBytes(data []byte) (keys, vals [][]byte, err error) {
	if len(data) < len(snapMagic)+8+snapTrailer || !bytes.Equal(data[:len(snapMagic)], snapMagic) {
		return nil, nil, errSnapshot
	}
	body, tr := data[:len(data)-snapTrailer], data[len(data)-snapTrailer:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tr) {
		return nil, nil, errSnapshot
	}
	count := binary.LittleEndian.Uint64(body[len(snapMagic):])
	rest := body[len(snapMagic)+8:]
	if count > uint64(len(rest)/2)+1 { // each pair past the first takes >= 2 length bytes
		return nil, nil, errSnapshot
	}
	keys = make([][]byte, 0, count)
	vals = make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		klen, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, nil, errSnapshot
		}
		rest = rest[n:]
		vlen, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, nil, errSnapshot
		}
		rest = rest[n:]
		if klen > uint64(len(rest)) || vlen > uint64(len(rest))-klen {
			return nil, nil, errSnapshot
		}
		key := rest[:klen:klen]
		val := rest[klen : klen+vlen : klen+vlen]
		rest = rest[klen+vlen:]
		if len(keys) > 0 && bytes.Compare(keys[len(keys)-1], key) >= 0 {
			return nil, nil, errSnapshot // not strictly ascending
		}
		keys = append(keys, key)
		vals = append(vals, val)
	}
	if len(rest) != 0 {
		return nil, nil, errSnapshot
	}
	return keys, vals, nil
}

// syncDirFS fsyncs a directory so a just-created or just-renamed entry
// survives power loss. Best-effort on filesystems that reject directory
// fsync.
func syncDirFS(fsys vfs.FS, dir string) error {
	if err := fsys.SyncDir(dir); err != nil && !errors.Is(err, os.ErrInvalid) {
		return fmt.Errorf("wal: fsync %s: %w", dir, err)
	}
	return nil
}

// WriteFileAtomic writes data to path with full crash durability: temp
// file in the same directory, fsync, rename over path, directory fsync
// (tolerating filesystems that reject it, like syncDir). The shard
// layer's MANIFEST uses it; it is the canonical small-file counterpart
// of WriteSnapshot's streaming path.
func WriteFileAtomic(path string, data []byte) (err error) {
	return WriteFileAtomicFS(vfs.OS(), path, data)
}

// WriteFileAtomicFS is WriteFileAtomic over an injectable filesystem (the
// shard layer passes its configured FS through for the MANIFEST).
func WriteFileAtomicFS(fsys vfs.FS, path string, data []byte) (err error) {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			fsys.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp.Name(), path); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	return syncDirFS(fsys, dir)
}
