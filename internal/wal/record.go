package wal

import (
	"encoding/binary"
	"fmt"
)

// Mutation records. One WAL payload is one committed mutation:
//
//	set: [opSet][klen uvarint][key][value...]   (value = remainder)
//	del: [opDel][klen uvarint][key]
//	pos: [opPos][gen uvarint][seq uvarint]
//
// The key length is explicit and the value takes the rest of the payload,
// so the record needs no value length and decoding cannot run past the
// frame: the frame length is authoritative and CRC-validated.
//
// opPos is a replication position marker: a follower logs the leader
// Position it has applied up to, interleaved with the applied mutations in
// its own WAL. Prefix semantics makes the marker trustworthy: if the
// marker survives a crash, every mutation it vouches for precedes it in
// the same log and survives too. Markers are metadata — replay does not
// mutate the index for them — but they occupy a record ordinal like any
// other record, so streamed sequence numbers stay aligned with file frame
// counts.
// opNoop is a one-byte heal probe: the self-healer appends and fsyncs one
// to prove the append path round-trips to stable storage before declaring
// a degraded store writable again. Replay and replication count it as a
// record ordinal (keeping positions aligned with file frame counts) but
// apply nothing.
// opEpoch stamps a replication-epoch bump in-band: a promoted leader
// appends one per shard so the epoch boundary has a WAL ordinal and
// streams to followers with the records it fences. Like opNoop it applies
// nothing on replay — the authoritative epoch lives in the MANIFEST.
const (
	opSet   byte = 1
	opDel   byte = 2
	opPos   byte = 3
	opNoop  byte = 4
	opEpoch byte = 5
)

// Public record kinds, for replication consumers decoding streamed WAL
// payloads with DecodeRecord.
const (
	RecordSet   = opSet
	RecordDel   = opDel
	RecordPos   = opPos
	RecordNoop  = opNoop
	RecordEpoch = opEpoch
)

// appendSetRecord encodes a set mutation onto buf and returns it.
func appendSetRecord(buf, key, val []byte) []byte {
	buf = append(buf, opSet)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	return append(buf, val...)
}

// appendDelRecord encodes a delete mutation onto buf and returns it.
func appendDelRecord(buf, key []byte) []byte {
	buf = append(buf, opDel)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	return append(buf, key...)
}

// appendPosRecord encodes a replication position marker onto buf.
func appendPosRecord(buf []byte, p Position) []byte {
	buf = append(buf, opPos)
	buf = binary.AppendUvarint(buf, p.Gen)
	return binary.AppendUvarint(buf, p.Seq)
}

// appendEpochRecord encodes a replication-epoch stamp onto buf.
func appendEpochRecord(buf []byte, epoch uint64) []byte {
	buf = append(buf, opEpoch)
	return binary.AppendUvarint(buf, epoch)
}

// decodeRecord parses one mutation payload. The returned key and val alias
// payload; callers that retain them must copy. A malformed payload (unknown
// op, short buffer, key length past the frame, or trailing bytes on a
// delete) is an error — it can only come from a CRC collision or an
// encoder bug, so replay treats it like corruption and stops. A position
// marker decodes with nil key and val; use DecodePosition for its fields.
func decodeRecord(payload []byte) (op byte, key, val []byte, err error) {
	if len(payload) == 1 && payload[0] == opNoop {
		return opNoop, nil, nil, nil
	}
	if len(payload) < 2 {
		return 0, nil, nil, fmt.Errorf("wal: record too short (%d bytes)", len(payload))
	}
	op = payload[0]
	if op == opPos {
		if _, err := DecodePosition(payload); err != nil {
			return 0, nil, nil, err
		}
		return op, nil, nil, nil
	}
	if op == opEpoch {
		if _, err := DecodeEpoch(payload); err != nil {
			return 0, nil, nil, err
		}
		return op, nil, nil, nil
	}
	if op != opSet && op != opDel {
		return 0, nil, nil, fmt.Errorf("wal: unknown op %d", op)
	}
	klen, n := binary.Uvarint(payload[1:])
	if n <= 0 || klen > uint64(len(payload)-1-n) {
		return 0, nil, nil, fmt.Errorf("wal: bad key length")
	}
	rest := payload[1+n:]
	key = rest[:klen]
	val = rest[klen:]
	if op == opDel && len(val) != 0 {
		return 0, nil, nil, fmt.Errorf("wal: delete record with %d trailing bytes", len(val))
	}
	return op, key, val, nil
}

// DecodeRecord parses one WAL payload for replication consumers: the
// follower applies streamed payloads through it with exactly the decoder
// recovery uses, so the two paths cannot diverge. The returned key and val
// alias payload.
func DecodeRecord(payload []byte) (op byte, key, val []byte, err error) {
	return decodeRecord(payload)
}

// DecodeEpoch parses an epoch-stamp payload (RecordEpoch).
func DecodeEpoch(payload []byte) (uint64, error) {
	if len(payload) < 2 || payload[0] != opEpoch {
		return 0, fmt.Errorf("wal: not an epoch record")
	}
	epoch, n := binary.Uvarint(payload[1:])
	if n <= 0 || 1+n != len(payload) {
		return 0, fmt.Errorf("wal: bad epoch value")
	}
	return epoch, nil
}

// DecodePosition parses a position-marker payload (RecordPos).
func DecodePosition(payload []byte) (Position, error) {
	if len(payload) < 3 || payload[0] != opPos {
		return Position{}, fmt.Errorf("wal: not a position record")
	}
	gen, n := binary.Uvarint(payload[1:])
	if n <= 0 {
		return Position{}, fmt.Errorf("wal: bad position gen")
	}
	seq, m := binary.Uvarint(payload[1+n:])
	if m <= 0 || 1+n+m != len(payload) {
		return Position{}, fmt.Errorf("wal: bad position seq")
	}
	return Position{Gen: gen, Seq: seq}, nil
}
