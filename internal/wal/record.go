package wal

import (
	"encoding/binary"
	"fmt"
)

// Mutation records. One WAL payload is one committed mutation:
//
//	set: [opSet][klen uvarint][key][value...]   (value = remainder)
//	del: [opDel][klen uvarint][key]
//
// The key length is explicit and the value takes the rest of the payload,
// so the record needs no value length and decoding cannot run past the
// frame: the frame length is authoritative and CRC-validated.
const (
	opSet byte = 1
	opDel byte = 2
)

// appendSetRecord encodes a set mutation onto buf and returns it.
func appendSetRecord(buf, key, val []byte) []byte {
	buf = append(buf, opSet)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	return append(buf, val...)
}

// appendDelRecord encodes a delete mutation onto buf and returns it.
func appendDelRecord(buf, key []byte) []byte {
	buf = append(buf, opDel)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	return append(buf, key...)
}

// decodeRecord parses one mutation payload. The returned key and val alias
// payload; callers that retain them must copy. A malformed payload (unknown
// op, short buffer, key length past the frame, or trailing bytes on a
// delete) is an error — it can only come from a CRC collision or an
// encoder bug, so replay treats it like corruption and stops.
func decodeRecord(payload []byte) (op byte, key, val []byte, err error) {
	if len(payload) < 2 {
		return 0, nil, nil, fmt.Errorf("wal: record too short (%d bytes)", len(payload))
	}
	op = payload[0]
	if op != opSet && op != opDel {
		return 0, nil, nil, fmt.Errorf("wal: unknown op %d", op)
	}
	klen, n := binary.Uvarint(payload[1:])
	if n <= 0 || klen > uint64(len(payload)-1-n) {
		return 0, nil, nil, fmt.Errorf("wal: bad key length")
	}
	rest := payload[1+n:]
	key = rest[:klen]
	val = rest[klen:]
	if op == opDel && len(val) != 0 {
		return 0, nil, nil, fmt.Errorf("wal: delete record with %d trailing bytes", len(val))
	}
	return op, key, val, nil
}
