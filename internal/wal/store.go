package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/wormhole/internal/vfs"
)

// Backend is the index surface the store persists: the mutation entry
// points it replays into, the bulkload fast path snapshots restore
// through, and the ordered scan snapshots are written from. core.Wormhole
// satisfies it directly.
type Backend interface {
	// Set inserts or replaces key. Buffers are retained by the index.
	Set(key, val []byte)
	// Del removes key, reporting whether it was present.
	Del(key []byte) bool
	// BulkLoad populates a fresh index from strictly ascending keys.
	BulkLoad(keys, vals [][]byte) error
	// Scan visits keys >= start ascending until fn returns false.
	Scan(start []byte, fn func(key, val []byte) bool)
}

// Options configures a Store.
type Options struct {
	// Sync selects the append-path durability policy.
	Sync SyncPolicy
	// Interval is the SyncInterval flush cadence (default DefaultInterval).
	Interval time.Duration
	// FS is the filesystem the store operates on; nil means the real OS
	// filesystem. Fault-injection tests swap in vfs implementations; the
	// OS path behaves exactly as it did before the abstraction.
	FS vfs.FS
	// HealMin and HealMax bound the self-healer's jittered exponential
	// backoff (defaults 50ms and 5s).
	HealMin, HealMax time.Duration
	// NoSelfHeal disables the background healer: a degraded store stays
	// degraded until an explicit Snapshot succeeds. Crash harnesses use
	// it to keep fault schedules deterministic.
	NoSelfHeal bool
	// SegmentBytes bounds one v2 snapshot segment's encoded size
	// (default DefaultSegmentBytes). Smaller segments mean more parallel
	// decode units on recovery at the cost of per-segment overhead.
	SegmentBytes int
	// DecodeWorkers caps the goroutines decoding v2 snapshot segments at
	// Open; <= 0 means GOMAXPROCS. Recovery is byte-identical at any
	// setting — workers fill disjoint ranges of the result.
	DecodeWorkers int
	// SnapshotV1 forces Snapshot to write the legacy monolithic v1
	// format. Recovery always reads both formats regardless; the bench
	// harness uses this to compare v1 and v2 in one binary.
	SnapshotV1 bool
	// Metrics, when non-nil, arms append/fsync/commit-wait latency
	// histograms and byte/record/rotation counters. A sharded store
	// passes one bundle to every shard, so the series aggregate. Nil
	// costs nothing on the append path.
	Metrics *Metrics
}

// Store manages one backend's persistence directory: an active WAL, the
// newest snapshot, and the generation bookkeeping tying them together.
//
// Generations: wal-G holds the mutations logged while generation G was
// active; snap-G is written right after rotating into generation G and
// therefore covers every operation of generations < G (plus, possibly,
// some early-G operations — replay is idempotent, so re-applying them
// converges). Recovery loads the newest valid snapshot snap-G and replays
// wal-G, wal-G+1, ... in order; a snapshot garbage-collects every older
// file only after it is durably in place.
//
// OnSet and OnDel satisfy the core index's mutation-hook interface, so a
// Store registered as the hook logs every committed mutation. They cannot
// return errors; the first I/O failure sticks in the log and surfaces on
// the next Flush, Snapshot or Close.
type Store struct {
	dir string
	opt Options
	b   Backend
	fs  vfs.FS

	logMu sync.RWMutex // appenders share; rotation excludes
	log   *Log
	gen   uint64
	// base is the number of valid records already in the active WAL file
	// when its Log was opened; base + log.Records() is the file's record
	// ordinal count, the currency of replication Positions.
	base uint64

	// lock is the held LOCK file preventing a second process (or a second
	// Open in this one) from truncating and interleaving with a live WAL.
	lock io.Closer

	snapMu sync.Mutex // serializes Snapshot/Close
	closed atomic.Bool

	// failure is the first durability-compromising error (a failed append
	// or a failed rotation sync), stamped with the WAL generation it
	// happened in. Set/Del cannot report errors, so it is sticky and
	// surfaces on Err, Flush and Close — durable callers should check one
	// of those at their consistency points. A successful Snapshot clears
	// a failure from an older generation (the snapshot supersedes that
	// log history), never one from the generation it is writing alongside.
	failMu  sync.Mutex
	failure error
	failGen uint64

	// Degraded-mode state machine: degraded mirrors failure != nil with
	// one atomic for lock-free write-path checks, and the healer
	// goroutine (heal.go) retries snapshot+probe in the background until
	// an append round-trips again.
	degraded     atomic.Bool
	healMu       sync.Mutex
	healing      bool
	healAttempts int64
	lastHealErr  error
	healStop     chan struct{}
	healWG       sync.WaitGroup

	// Recovery statistics, fixed at Open.
	recoveredSnap int // pairs bulk-loaded from the snapshot
	recoveredTail int // WAL records replayed after it
	recoveredSegs int // v2 segments decoded for it (0 for v1)

	// Last replication position marker seen during replay, fixed at Open.
	recoveredPos    Position
	hasRecoveredPos bool
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", gen))
}

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", gen))
}

// listGens returns the generation numbers of all files in dir matching
// prefix-%016x.suffix, ascending.
func listGens(fsys vfs.FS, dir, prefix, suffix string) ([]uint64, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		hexPart := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		g, err := strconv.ParseUint(hexPart, 16, 64)
		if err != nil {
			continue // a temp file or foreign entry, not ours
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Open recovers the directory's persisted state into b — which must be a
// freshly created, empty index — and returns a store appending to the
// newest WAL generation. Recovery never fails on torn or corrupt data: it
// restores the longest valid prefix (newest loadable snapshot, then every
// WAL record up to the first invalid one), truncates the garbage tail so
// new appends extend the valid prefix, and discards any later generations
// whose ordering can no longer be trusted.
func Open(dir string, b Backend, opt Options) (*Store, error) {
	fsys := vfs.OrOS(opt.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Exactly one live store may own a directory: a second opener would
	// truncate the WAL to its on-disk prefix and interleave appends with
	// the first owner's buffered writer, corrupting acknowledged records.
	lock, err := acquireDirLock(fsys, dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opt: opt, b: b, fs: fsys, lock: lock, healStop: make(chan struct{})}
	fail := func(err error) (*Store, error) {
		releaseDirLock(lock)
		return nil, err
	}

	snaps, err := listGens(fsys, dir, "snap-", ".snap")
	if err != nil {
		return fail(err)
	}
	// Newest loadable snapshot wins; an invalid one falls back to the next
	// (normally none exists: each snapshot GCs its predecessors).
	var snapGen uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		// Format-blind fallback: a v2 footer whose segment set is damaged
		// (missing file, CRC flip, boundary lie) fails exactly like a
		// corrupt v1 file and the loop tries the older generation.
		keys, vals, segs, err := loadAnySnapshotFS(fsys, dir, snaps[i], opt.DecodeWorkers)
		if err != nil {
			continue
		}
		if err := b.BulkLoad(keys, vals); err != nil {
			return fail(fmt.Errorf("wal: bulkload of %s: %w", snapPath(dir, snaps[i]), err))
		}
		snapGen = snaps[i]
		s.recoveredSnap = len(keys)
		s.recoveredSegs = segs
		break
	}

	wals, err := listGens(fsys, dir, "wal-", ".log")
	if err != nil {
		return fail(err)
	}
	// Replay every WAL generation the snapshot does not cover, oldest
	// first. The generations must be CONTIGUOUS from the snapshot (or
	// from 1 when no snapshot loaded): a gap means intermediate
	// generations were garbage-collected on the promise of a snapshot
	// that is now unreadable, so the surviving later logs would replay
	// onto a state missing their predecessors — resurrecting deleted
	// keys, losing untouched ones. Prefix semantics stops at the gap.
	// Within a file, the first invalid record ends recovery likewise:
	// the file is truncated at its valid prefix and every later
	// generation is dropped.
	appendGen := snapGen
	if appendGen == 0 {
		appendGen = 1
	}
	expect := appendGen
	var appendOff int64
	var appendSeq uint64
	for i, g := range wals {
		if g < snapGen {
			continue // covered by the snapshot; GC was interrupted
		}
		if g != expect {
			// Gap: everything from here on lacks its predecessors. Remove
			// the orphans too — left behind, a future recovery could see
			// them as contiguous with freshly created generations.
			for _, later := range wals[i:] {
				fsys.Remove(walPath(dir, later))
			}
			break
		}
		expect = g + 1
		var replayed int
		decodeOK := true
		validLen, err := replayFS(fsys, walPath(dir, g), func(payload []byte) error {
			op, key, val, derr := decodeRecord(payload)
			if derr != nil {
				decodeOK = false
				return derr
			}
			switch op {
			case opSet:
				// The replay buffer is reused per record; the index retains
				// its buffers, so materialize one private copy per pair.
				kv := make([]byte, len(key)+len(val))
				copy(kv, key)
				copy(kv[len(key):], val)
				b.Set(kv[:len(key):len(key)], kv[len(key):])
			case opDel:
				b.Del(append([]byte(nil), key...))
			case opPos:
				// A follower's applied-position marker: metadata, not a
				// mutation. decodeRecord validated it, so this cannot fail.
				p, _ := DecodePosition(payload)
				s.recoveredPos, s.hasRecoveredPos = p, true
			case opNoop:
				// A heal probe: occupies a record ordinal, applies nothing.
			case opEpoch:
				// A replication-epoch stamp: metadata like opPos; the
				// authoritative epoch is recovered from the MANIFEST.
			}
			replayed++
			return nil
		})
		// Replay returns an error either from the callback (always a
		// decode failure here, flagged by decodeOK and handled as a tear
		// below) or from opening/statting the file itself — a real I/O
		// problem recovery must not paper over.
		if err != nil && decodeOK {
			return fail(err)
		}
		s.recoveredTail += replayed
		appendGen, appendOff, appendSeq = g, validLen, uint64(replayed)
		if !decodeOK || s.tornAt(g, validLen) {
			// Stop at the tear; generations beyond it are untrusted.
			for _, later := range wals[i+1:] {
				fsys.Remove(walPath(dir, later))
			}
			break
		}
	}

	// Seal the recovered generation and append into a fresh one. Reopening
	// mid-generation would let a restarted process regrow a crash-lost
	// unsynced tail in place: a replica that had applied the lost records
	// would see the same (gen,seq) ordinals carrying different mutations
	// and trust them. Sealing at the recovered prefix makes every restart
	// visible in the generation sequence — a replica holding a position
	// past the sealed file's frame count cannot resume there and falls
	// back to snapshot catch-up. Rotate only when the recovered
	// generation's file actually exists: when it does not (recovery
	// restarted the chain after dropping orphans), creating generation G+1
	// without wal-G on disk would reintroduce exactly the gap the
	// contiguity check above removes.
	if fi, err := fsys.Stat(walPath(dir, appendGen)); err == nil {
		if fi.Size() > appendOff {
			// Drop the torn tail now: the sealed file must be exactly the
			// record prefix recovery trusted, because replication skips
			// sealed segments by frame count.
			if err := sealRecoveredGen(fsys, walPath(dir, appendGen), appendOff); err != nil {
				return fail(err)
			}
		}
		appendGen++
		appendOff, appendSeq = 0, 0
	}

	s.gen = appendGen
	s.base = appendSeq
	log, err := openLog(fsys, walPath(dir, appendGen), appendOff, opt.Sync, opt.Interval, opt.Metrics)
	if err != nil {
		return fail(err)
	}
	// The WAL file (possibly just created) and any truncation must be
	// reachable after power loss before the first record is acknowledged.
	if err := syncDirFS(fsys, dir); err != nil {
		log.Close()
		return fail(err)
	}
	s.log = log
	return s, nil
}

// sealRecoveredGen truncates a recovered WAL file to its valid record
// prefix and fsyncs the cut, so the sealed generation holds exactly the
// records recovery replayed.
func sealRecoveredGen(fsys vfs.FS, path string, validLen int64) error {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// acquireDirLock takes an exclusive, non-blocking lock on dir/LOCK.
func acquireDirLock(fsys vfs.FS, dir string) (io.Closer, error) {
	lk, err := fsys.TryLock(filepath.Join(dir, "LOCK"))
	if err != nil {
		return nil, fmt.Errorf("wal: %s is locked by another live store: %w", dir, err)
	}
	return lk, nil
}

func releaseDirLock(lk io.Closer) {
	if lk != nil {
		lk.Close()
	}
}

// tornAt reports whether the WAL file for gen has bytes past the valid
// record prefix — a torn or corrupt tail.
func (s *Store) tornAt(gen uint64, validLen int64) bool {
	fi, err := s.fs.Stat(walPath(s.dir, gen))
	return err == nil && fi.Size() > validLen
}

// RecoveredPairs returns how many pairs the newest valid snapshot
// restored at Open; RecoveredRecords how many WAL records were replayed
// after it.
func (s *Store) RecoveredPairs() int   { return s.recoveredSnap }
func (s *Store) RecoveredRecords() int { return s.recoveredTail }

// RecoveredSegments returns how many v2 snapshot segments the snapshot
// restored at Open decoded (0 when the snapshot was v1 monolithic, or
// when recovery started from an empty index).
func (s *Store) RecoveredSegments() int { return s.recoveredSegs }

// recordPool recycles mutation-record encode buffers: the append path
// runs inside every Set/Del, so it must not allocate per operation.
var recordPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// Tokens returned by OnSet/OnDel pack the WAL generation (high 24 bits)
// with the record's sequence in that generation (low 40 bits), so
// Barrier can tell whether the record's log is still active or was
// already made durable wholesale by a rotation.
const tokenSeqBits = 40

func packToken(gen, seq uint64) uint64 { return gen<<tokenSeqBits | seq&(1<<tokenSeqBits-1) }

// recordFailure keeps the first durability-compromising error, stamped
// with the generation it happened in, flips the store into degraded
// read-only mode, and kicks the self-healer.
func (s *Store) recordFailure(err error, gen uint64) {
	if err == nil || err == ErrClosed {
		return
	}
	if mx := s.opt.Metrics; mx != nil {
		mx.Failures.Inc()
	}
	s.failMu.Lock()
	if s.failure == nil {
		s.failure, s.failGen = err, gen
	}
	// The atomic mirror changes only under failMu, so it cannot be left
	// contradicting the failure it mirrors by a racing clear.
	s.degraded.Store(true)
	s.failMu.Unlock()
	s.ensureHealer()
}

// Err returns the first logging failure since Open (nil if none). A
// non-nil result means mutations since that point may not be recoverable;
// Flush, Snapshot and Close report the same condition.
func (s *Store) Err() error {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	return s.failure
}

// appendRecord frames rec onto the active log and packs the token;
// shared by OnSet/OnDel. An append failure cannot be reported to the
// mutating caller (Set/Del have no error path), so it is recorded sticky
// and the token is 0 — Barrier then does not pretend the record is
// durable by waiting on nothing.
func (s *Store) appendRecord(rec []byte) uint64 {
	s.logMu.RLock()
	gen := s.gen
	seq, err := s.log.Append(rec)
	s.logMu.RUnlock()
	if err != nil {
		s.recordFailure(err, gen)
		return 0
	}
	return packToken(gen, seq)
}

// OnSet logs a committed insert or replace (the core mutation hook). It
// runs under the owning leaf's lock — commit order is append order — so
// it only buffers; the durability wait is Barrier's job.
func (s *Store) OnSet(key, val []byte) uint64 {
	if s.closed.Load() {
		return 0
	}
	bp := recordPool.Get().(*[]byte)
	rec := appendSetRecord((*bp)[:0], key, val)
	token := s.appendRecord(rec)
	*bp = rec[:0]
	recordPool.Put(bp)
	return token
}

// OnDel logs a committed delete (the core mutation hook); like OnSet it
// buffers under the leaf lock and defers the durability wait to Barrier.
func (s *Store) OnDel(key []byte) uint64 {
	if s.closed.Load() {
		return 0
	}
	bp := recordPool.Get().(*[]byte)
	rec := appendDelRecord((*bp)[:0], key)
	token := s.appendRecord(rec)
	*bp = rec[:0]
	recordPool.Put(bp)
	return token
}

// Barrier blocks until the mutation behind token is durable, per the
// configured sync policy (the core mutation hook's post-unlock phase).
// Under SyncAlways the wait joins the group commit; a token from an
// already-rotated generation returns immediately — rotation syncs and
// closes the old log before the new one takes over.
func (s *Store) Barrier(token uint64) {
	if token == 0 || s.opt.Sync != SyncAlways || s.closed.Load() {
		return
	}
	gen, seq := token>>tokenSeqBits, token&(1<<tokenSeqBits-1)
	s.logMu.RLock()
	log := s.log
	current := s.gen == gen
	s.logMu.RUnlock()
	if current {
		if mx := s.opt.Metrics; mx != nil {
			t0 := time.Now()
			defer func() { mx.CommitWaitSeconds.Observe(time.Since(t0)) }()
		}
		if err := log.WaitDurable(seq); err != nil {
			// The record was appended but its fsync failed; the mutating
			// caller cannot be told, so the condition surfaces on
			// Err/Flush/Close.
			s.recordFailure(err, gen)
		}
	}
}

// Flush forces every logged record to stable storage, regardless of the
// sync policy, and surfaces any sticky logging failure (a failed append
// means mutations since that point are not in the log; only a successful
// Snapshot clears the condition, by superseding the log entirely).
func (s *Store) Flush() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := s.Err(); err != nil {
		return err
	}
	s.logMu.RLock()
	defer s.logMu.RUnlock()
	return s.log.Sync()
}

// WALSize returns the framed byte length of the active WAL generation —
// the amount of data a recovery would replay record by record. Callers
// use it to decide when a Snapshot is worth taking.
func (s *Store) WALSize() int64 {
	s.logMu.RLock()
	defer s.logMu.RUnlock()
	return s.log.Size()
}

// Snapshot writes a key-ordered snapshot of the backend's current state
// and truncates the log: it rotates the WAL into a new generation, scans
// the index (lock-free; concurrent mutations keep logging into the new
// generation and replay idempotently over whatever state the scan
// captured), writes the snapshot atomically, and only then deletes the
// previous generation's files.
func (s *Store) Snapshot() error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	t0 := time.Now()

	s.logMu.Lock()
	oldLog, oldGen := s.log, s.gen
	newGen := oldGen + 1
	newLog, err := openLog(s.fs, walPath(s.dir, newGen), 0, s.opt.Sync, s.opt.Interval, s.opt.Metrics)
	if err != nil {
		s.logMu.Unlock()
		return err
	}
	// Make the new file's directory entry durable before any record lands
	// in it, and sync+close the old generation BEFORE publishing the new
	// one: Barrier treats "the token's generation is no longer current"
	// as proof of durability, which only holds if rotation never exposes
	// a new generation while old records are still volatile. The old
	// generation then stays on disk, complete and synced, until the
	// snapshot that covers it is durably in place — a crash mid-snapshot
	// recovers from the previous snapshot plus both WAL generations.
	if err := syncDirFS(s.fs, s.dir); err != nil {
		newLog.Close()
		s.logMu.Unlock()
		return err
	}
	// A failed close means old-generation bytes may never have reached the
	// log; the in-memory index still holds every operation, so the
	// snapshot about to be written supersedes them. Record the failure
	// (Barrier must not treat the advanced generation as proof of
	// durability while it stands) and proceed — aborting would leave a
	// closed log installed and wedge all future logging.
	closeErr := oldLog.Close()
	s.recordFailure(closeErr, oldGen)
	s.log, s.gen, s.base = newLog, newGen, 0
	s.logMu.Unlock()
	if mx := s.opt.Metrics; mx != nil {
		mx.Rotations.Inc()
	}

	scan := func(fn func(k, v []byte) bool) { s.b.Scan(nil, fn) }
	if s.opt.SnapshotV1 {
		err = writeSnapshotFS(s.fs, snapPath(s.dir, newGen), scan)
	} else {
		err = writeSnapshotV2FS(s.fs, s.dir, newGen, s.opt.SegmentBytes, scan)
	}
	if err != nil {
		return errors.Join(closeErr, err)
	}
	// The durable snapshot covers every mutation of the generations before
	// it — including any whose log append or log sync had failed — so an
	// old-generation sticky failure is healed. A failure stamped with the
	// new generation stands: its mutation raced the scan and may be in
	// neither the snapshot nor the log.
	s.failMu.Lock()
	if s.failure != nil && s.failGen < newGen {
		s.failure = nil
	}
	if s.failure == nil {
		// Back to writable: the snapshot supersedes the poisoned history.
		s.degraded.Store(false)
	}
	s.failMu.Unlock()

	// GC everything older than the new generation.
	snaps, _ := listGens(s.fs, s.dir, "snap-", ".snap")
	for _, g := range snaps {
		if g < newGen {
			s.fs.Remove(snapPath(s.dir, g))
		}
	}
	wals, _ := listGens(s.fs, s.dir, "wal-", ".log")
	for _, g := range wals {
		if g < newGen {
			s.fs.Remove(walPath(s.dir, g))
		}
	}
	// Old generations' segment files — including orphans from a snapshot
	// that crashed before publishing its footer.
	removeSegsBelow(s.fs, s.dir, newGen)
	if mx := s.opt.Metrics; mx != nil {
		mx.Snapshots.Inc()
		mx.SnapshotSeconds.Observe(time.Since(t0))
	}
	return nil
}

// Close flushes and closes the active WAL, reporting any sticky logging
// failure alongside. Further mutations on the backend are no longer
// logged (OnSet/OnDel become no-ops); in-flight reads and scans of the
// in-memory index are unaffected. Idempotent.
func (s *Store) Close() error {
	s.snapMu.Lock()
	if s.closed.Swap(true) {
		s.snapMu.Unlock()
		return nil
	}
	s.logMu.Lock()
	err := errors.Join(s.Err(), s.log.Close())
	releaseDirLock(s.lock)
	s.lock = nil
	s.logMu.Unlock()
	s.snapMu.Unlock()
	// Stop the healer only after releasing the locks: an in-flight heal
	// attempt may be blocked on snapMu inside Snapshot and must get in to
	// observe the closed store before the wait below can finish.
	close(s.healStop)
	s.healMu.Lock() // any in-flight ensureHealer has added itself or seen closed
	s.healMu.Unlock()
	s.healWG.Wait()
	return err
}
