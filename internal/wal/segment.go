package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"runtime"
	"sync"

	"github.com/repro/wormhole/internal/vfs"
)

// Snapshot format v2: one generation's snapshot is a set of
// independently loadable, prefix-compressed, key-ordered segment files
// plus a footer that indexes them. The footer lives under the same
// snap-G.snap name as a v1 snapshot (recovery sniffs the magic), so the
// generation bookkeeping — listing, GC, newest-valid fallback — is
// format-blind; only the rename of the footer publishes the set, making
// a segmented snapshot exactly as atomic as a monolithic one.
//
// Segment file (snap-GGGGGGGGGGGGGGGG-NNNNN.seg):
//
//	[magic "WHSSEG2\n"]
//	count × ([plen uvarint][slen uvarint][vlen uvarint][suffix][val])
//	[count uint32][crc32c uint32]
//
// Each entry's key is the previous key's first plen bytes followed by
// the suffix (shared-prefix compression off the ordered scan); the first
// entry of every segment has plen = 0, so a segment decodes with no
// context from its neighbours. The trailing CRC covers everything before
// it. Keys must be strictly ascending, which the decoder checks by
// comparing suffixes past the shared prefix — cheaper than full-key
// compares when prefixes are long, which is exactly when compression
// pays.
//
// Footer (snap-GGGGGGGGGGGGGGGG.snap):
//
//	[magic "WHSNAP2\n"][segCount uint32][totalPairs uint64]
//	segCount × ([pairs uvarint][fileBytes uvarint][keyBytes uvarint]
//	            [crc uint32][firstKeyLen uvarint][firstKey])
//	[crc32c uint32]
//
// fileBytes and crc pin each segment file byte for byte; keyBytes (the
// decoded key-byte total) bounds the loader's arena so a corrupt or
// hostile segment can never balloon allocation past what the CRC'd
// footer vouches for; firstKey lets the loader verify segment order and
// hand decode out to workers that share no state.
var (
	segMagic   = []byte("WHSSEG2\n")
	snapMagic2 = []byte("WHSNAP2\n")
)

// segTrailer is the [count u32][crc u32] segment suffix.
const segTrailer = 8

// DefaultSegmentBytes bounds one segment's encoded size unless
// Options.SegmentBytes overrides it. ~1 MiB keeps per-segment footer
// overhead negligible while giving a multi-core open dozens of decode
// units per shard at bench scale.
const DefaultSegmentBytes = 1 << 20

func segPath(dir string, gen uint64, idx int) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x-%05d.seg", gen, idx))
}

// segMeta is one footer entry describing a segment file.
type segMeta struct {
	pairs     uint64 // entries in the segment
	fileBytes uint64 // exact byte length of the segment file
	keyBytes  uint64 // total decoded key bytes (arena budget)
	crc       uint32 // crc32c of the whole segment file
	firstKey  []byte
}

// commonPrefixLen returns the length of the longest shared prefix.
func commonPrefixLen(a, b []byte) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// writeSegmentBytes persists one complete segment image atomically
// (temp + fsync + rename; the caller owes the directory fsync before
// publishing the footer).
func writeSegmentBytes(fsys vfs.FS, path string, full []byte) error {
	tmp, err := fsys.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err = tmp.Write(full); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = fsys.Rename(tmp.Name(), path)
	}
	if err != nil {
		fsys.Remove(tmp.Name())
	}
	return err
}

// writeSnapshotV2FS streams the pairs produced by scan into a segmented
// v2 snapshot for gen: segment files first (each atomic on its own),
// then a directory fsync so their entries are durable, then the footer
// via the atomic small-file path — the footer's rename is the single
// publish point, so a crash anywhere earlier leaves only invisible
// orphans (GC'd by the next snapshot) and the prior generation's chain
// intact. scan must yield keys in strictly ascending order.
func writeSnapshotV2FS(fsys vfs.FS, dir string, gen uint64, segBytes int, scan func(fn func(key, val []byte) bool)) (err error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	var (
		segs     []segMeta
		seg      []byte // current segment: magic + entries so far
		prev     []byte
		first    []byte
		pairs    uint64
		keyBytes uint64
		scratch  [3 * binary.MaxVarintLen64]byte
	)
	defer func() {
		if err != nil {
			// A failed snapshot must not leak half a generation: remove the
			// segments already renamed into place (the footer never existed,
			// so nothing was published).
			for i := range segs {
				fsys.Remove(segPath(dir, gen, i))
			}
		}
	}()
	newSeg := func() {
		seg = append(seg[:0], segMagic...)
		pairs, keyBytes = 0, 0
		prev = prev[:0]
	}
	flush := func() error {
		var tr [segTrailer]byte
		binary.LittleEndian.PutUint32(tr[:4], uint32(pairs))
		seg = append(seg, tr[:4]...)
		crc := crc32.Checksum(seg, castagnoli)
		binary.LittleEndian.PutUint32(tr[4:], crc)
		seg = append(seg, tr[4:]...)
		if err := writeSegmentBytes(fsys, segPath(dir, gen, len(segs)), seg); err != nil {
			return err
		}
		// The file's own CRC covers magic+entries+count; the footer's crc
		// field covers the complete file including the trailer.
		segs = append(segs, segMeta{
			pairs:     pairs,
			fileBytes: uint64(len(seg)),
			keyBytes:  keyBytes,
			crc:       crc32.Checksum(seg, castagnoli),
			firstKey:  append([]byte(nil), first...),
		})
		return nil
	}
	newSeg()
	scan(func(key, val []byte) bool {
		if pairs == 0 {
			first = append(first[:0], key...)
		}
		plen := 0
		if pairs > 0 {
			plen = commonPrefixLen(prev, key)
		}
		n := binary.PutUvarint(scratch[:], uint64(plen))
		n += binary.PutUvarint(scratch[n:], uint64(len(key)-plen))
		n += binary.PutUvarint(scratch[n:], uint64(len(val)))
		seg = append(seg, scratch[:n]...)
		seg = append(seg, key[plen:]...)
		seg = append(seg, val...)
		pairs++
		keyBytes += uint64(len(key))
		prev = append(prev[:0], key...)
		if len(seg)-len(segMagic) >= segBytes {
			if err = flush(); err != nil {
				return false
			}
			newSeg()
		}
		return true
	})
	if err != nil {
		return err
	}
	if pairs > 0 {
		if err = flush(); err != nil {
			return err
		}
	}
	// Segment directory entries must be durable BEFORE the footer that
	// references them: a real filesystem may persist renames out of order,
	// and a footer pointing at vanished segments would poison the newest
	// generation instead of falling back.
	if err = syncDirFS(fsys, dir); err != nil {
		return err
	}
	return WriteFileAtomicFS(fsys, snapPath(dir, gen), encodeSnapshotFooter(segs))
}

// encodeSnapshotFooter builds the v2 footer image.
func encodeSnapshotFooter(segs []segMeta) []byte {
	b := append([]byte(nil), snapMagic2...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(segs)))
	var total uint64
	for i := range segs {
		total += segs[i].pairs
	}
	b = binary.LittleEndian.AppendUint64(b, total)
	for i := range segs {
		m := &segs[i]
		b = binary.AppendUvarint(b, m.pairs)
		b = binary.AppendUvarint(b, m.fileBytes)
		b = binary.AppendUvarint(b, m.keyBytes)
		b = binary.LittleEndian.AppendUint32(b, m.crc)
		b = binary.AppendUvarint(b, uint64(len(m.firstKey)))
		b = append(b, m.firstKey...)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
}

// parseSnapshotFooter validates a v2 footer image and returns its
// segment index. Allocation is bounded by the payload length, never by
// the claimed counts. firstKey slices alias data.
func parseSnapshotFooter(data []byte) ([]segMeta, uint64, error) {
	if len(data) < len(snapMagic2)+4+8+snapTrailer || !bytes.Equal(data[:len(snapMagic2)], snapMagic2) {
		return nil, 0, errSnapshot
	}
	body, tr := data[:len(data)-snapTrailer], data[len(data)-snapTrailer:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tr) {
		return nil, 0, errSnapshot
	}
	nseg := binary.LittleEndian.Uint32(body[len(snapMagic2):])
	total := binary.LittleEndian.Uint64(body[len(snapMagic2)+4:])
	rest := body[len(snapMagic2)+4+8:]
	// Each entry takes >= 8 bytes (three 1-byte uvarints, the CRC, an
	// empty first key's length byte), so a hostile count cannot force a
	// large allocation.
	if uint64(nseg) > uint64(len(rest))/8 {
		return nil, 0, errSnapshot
	}
	segs := make([]segMeta, 0, nseg)
	var sum uint64
	for i := uint32(0); i < nseg; i++ {
		var m segMeta
		var n int
		if m.pairs, n = binary.Uvarint(rest); n <= 0 {
			return nil, 0, errSnapshot
		}
		rest = rest[n:]
		if m.fileBytes, n = binary.Uvarint(rest); n <= 0 {
			return nil, 0, errSnapshot
		}
		rest = rest[n:]
		if m.keyBytes, n = binary.Uvarint(rest); n <= 0 {
			return nil, 0, errSnapshot
		}
		rest = rest[n:]
		if len(rest) < 4 {
			return nil, 0, errSnapshot
		}
		m.crc = binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		fk, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, 0, errSnapshot
		}
		rest = rest[n:]
		if fk > uint64(len(rest)) {
			return nil, 0, errSnapshot
		}
		m.firstKey = rest[:fk:fk]
		rest = rest[fk:]
		// A segment holds at least one pair (the writer never emits an
		// empty one), its file at least the magic and trailer, and segments
		// must be in strictly ascending key order.
		if m.pairs == 0 || m.fileBytes < uint64(len(segMagic)+segTrailer) {
			return nil, 0, errSnapshot
		}
		if len(segs) > 0 && bytes.Compare(segs[len(segs)-1].firstKey, m.firstKey) >= 0 {
			return nil, 0, errSnapshot
		}
		sum += m.pairs
		segs = append(segs, m)
	}
	if len(rest) != 0 || sum != total {
		return nil, 0, errSnapshot
	}
	return segs, total, nil
}

// decodeSegment parses one segment file's bytes into ascending pairs.
// maxPairs and maxKeyBytes are the footer's (CRC-vouched) claims: the
// decoder errors out the moment the data would exceed either, so a
// corrupt length can never make it allocate beyond what the footer
// promised — and with no footer (the fuzz harness), the caller picks the
// budget. Values alias data; keys are materialized into chunked arenas
// (a key with no shared prefix aliases data too), so allocation tracks
// bytes actually decoded, never a claimed length.
func decodeSegment(data []byte, maxPairs, maxKeyBytes uint64) (keys, vals [][]byte, err error) {
	if len(data) < len(segMagic)+segTrailer || !bytes.Equal(data[:len(segMagic)], segMagic) {
		return nil, nil, errSnapshot
	}
	count := uint64(binary.LittleEndian.Uint32(data[len(data)-segTrailer:]))
	crc := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(data[:len(data)-4], castagnoli) != crc {
		return nil, nil, errSnapshot
	}
	rest := data[len(segMagic) : len(data)-segTrailer]
	// Each entry takes >= 3 bytes, so count is bounded by the body.
	if count > maxPairs || count > uint64(len(rest))/3 {
		return nil, nil, errSnapshot
	}
	keys = make([][]byte, 0, count)
	vals = make([][]byte, 0, count)
	var arena []byte
	var keyTotal uint64
	var prev []byte
	for i := uint64(0); i < count; i++ {
		plen, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, nil, errSnapshot
		}
		rest = rest[n:]
		slen, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, nil, errSnapshot
		}
		rest = rest[n:]
		vlen, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, nil, errSnapshot
		}
		rest = rest[n:]
		if plen > uint64(len(prev)) || slen > uint64(len(rest)) || vlen > uint64(len(rest))-slen {
			return nil, nil, errSnapshot
		}
		suffix := rest[:slen:slen]
		val := rest[slen : slen+vlen : slen+vlen]
		rest = rest[slen+vlen:]
		if keyTotal += plen + slen; keyTotal > maxKeyBytes {
			return nil, nil, errSnapshot
		}
		var key []byte
		if plen == 0 {
			if i > 0 && bytes.Compare(suffix, prev) <= 0 {
				return nil, nil, errSnapshot // not strictly ascending
			}
			key = suffix // no prefix to graft: alias the file bytes, like v1
		} else {
			// Strictly ascending == the suffix sorts after the previous
			// key's bytes past the shared prefix; no full-key compare.
			if bytes.Compare(suffix, prev[plen:]) <= 0 {
				return nil, nil, errSnapshot
			}
			need := int(plen) + len(suffix)
			if cap(arena)-len(arena) < need {
				arena = make([]byte, 0, max(1<<16, need))
			}
			off := len(arena)
			arena = append(arena, prev[:plen]...)
			arena = append(arena, suffix...)
			key = arena[off : off+need : off+need]
		}
		keys = append(keys, key)
		vals = append(vals, val)
		prev = key
	}
	if uint64(len(keys)) != count || len(rest) != 0 {
		return nil, nil, errSnapshot
	}
	return keys, vals, nil
}

// loadSnapshotV2FS loads a segmented snapshot whose footer bytes are
// already in hand: it validates the footer, stats every segment file
// against the footer's byte-exact claims BEFORE allocating anything
// sized by them, then fans read+decode out across `workers` goroutines
// (<= 0 means GOMAXPROCS), each filling a disjoint range of the shared
// result slices. Any defect — missing segment, size or CRC mismatch,
// first-key disagreement, out-of-order boundary — fails the whole load,
// and the caller falls back to an older generation: a snapshot stays
// all-or-nothing, only its insides got parallel.
func loadSnapshotV2FS(fsys vfs.FS, dir string, gen uint64, footer []byte, workers int) (keys, vals [][]byte, segs int, err error) {
	metas, total, err := parseSnapshotFooter(footer)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(metas) == 0 {
		return nil, nil, 0, nil
	}
	offsets := make([]uint64, len(metas)+1)
	var diskBytes uint64
	for i := range metas {
		fi, err := fsys.Stat(segPath(dir, gen, i))
		if err != nil || uint64(fi.Size()) != metas[i].fileBytes {
			return nil, nil, 0, errSnapshot
		}
		diskBytes += metas[i].fileBytes
		offsets[i+1] = offsets[i] + metas[i].pairs
	}
	// total was cross-checked against the per-segment sum by the footer
	// parse; bound it by the stat-verified on-disk bytes before sizing the
	// result slices (>= 3 bytes per pair, as in decodeSegment).
	if total != offsets[len(metas)] || total > diskBytes/3 {
		return nil, nil, 0, errSnapshot
	}
	keys = make([][]byte, total)
	vals = make([][]byte, total)
	lastKeys := make([][]byte, len(metas))

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, len(metas))
	var (
		next int64
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	fail := func(e error) {
		mu.Lock()
		if err == nil {
			err = e
		}
		mu.Unlock()
	}
	loadSeg := func(i int) {
		m := &metas[i]
		data, rerr := fsys.ReadFile(segPath(dir, gen, i))
		if rerr != nil || uint64(len(data)) != m.fileBytes ||
			crc32.Checksum(data, castagnoli) != m.crc {
			fail(errSnapshot)
			return
		}
		sk, sv, derr := decodeSegment(data, m.pairs, m.keyBytes)
		if derr != nil || uint64(len(sk)) != m.pairs || !bytes.Equal(sk[0], m.firstKey) {
			fail(errSnapshot)
			return
		}
		copy(keys[offsets[i]:offsets[i+1]], sk)
		copy(vals[offsets[i]:offsets[i+1]], sv)
		lastKeys[i] = sk[len(sk)-1]
	}
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if err != nil || next >= int64(len(metas)) {
			return -1
		}
		next++
		return int(next - 1)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				loadSeg(i)
			}
		}()
	}
	wg.Wait()
	if err != nil {
		return nil, nil, 0, err
	}
	// Segments decoded independently; the global order still needs the
	// boundaries checked (each segment's interior is ascending by
	// construction of its decoder).
	for i := 1; i < len(metas); i++ {
		if bytes.Compare(lastKeys[i-1], metas[i].firstKey) >= 0 {
			return nil, nil, 0, errSnapshot
		}
	}
	return keys, vals, len(metas), nil
}

// loadAnySnapshotFS reads generation gen's snapshot in whichever format
// it was written: the first bytes of snap-G.snap pick the v1 monolithic
// or v2 segmented loader. segs is 0 for v1.
func loadAnySnapshotFS(fsys vfs.FS, dir string, gen uint64, workers int) (keys, vals [][]byte, segs int, err error) {
	data, err := fsys.ReadFile(snapPath(dir, gen))
	if err != nil {
		return nil, nil, 0, err
	}
	if len(data) >= len(snapMagic2) && bytes.Equal(data[:len(snapMagic2)], snapMagic2) {
		return loadSnapshotV2FS(fsys, dir, gen, data, workers)
	}
	keys, vals, err = loadSnapshotBytes(data)
	return keys, vals, 0, err
}

// removeSegsBelow garbage-collects segment files of generations below
// keep — the v2 counterpart of removing old snap/wal files, which also
// sweeps orphans left by a snapshot that crashed before its footer.
func removeSegsBelow(fsys vfs.FS, dir string, keep uint64) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if gen, ok := parseSegName(e.Name()); ok && gen < keep {
			fsys.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// parseSegName extracts the generation from a snap-%016x-%05d.seg name.
func parseSegName(name string) (gen uint64, ok bool) {
	const pfx, sfx = "snap-", ".seg"
	// len("snap-") + 16 hex + "-" + 5 digits + len(".seg")
	if len(name) != len(pfx)+16+1+5+len(sfx) ||
		name[:len(pfx)] != pfx || name[len(name)-len(sfx):] != sfx || name[len(pfx)+16] != '-' {
		return 0, false
	}
	for _, c := range name[len(pfx) : len(pfx)+16] {
		gen <<= 4
		switch {
		case c >= '0' && c <= '9':
			gen |= uint64(c - '0')
		case c >= 'a' && c <= 'f':
			gen |= uint64(c-'a') + 10
		default:
			return 0, false
		}
	}
	for _, c := range name[len(pfx)+17 : len(name)-len(sfx)] {
		if c < '0' || c > '9' {
			return 0, false
		}
	}
	return gen, true
}
