package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/repro/wormhole/internal/vfs"
)

// Streaming support for replication: a leader tails its own WAL files and
// ships raw record payloads to followers, so the replication stream is the
// durability stream — one encoding, one ordering, one idempotent replay.
//
// Positions count record ordinals from the start of a generation's file.
// The in-memory Log sequence resets when a file is reopened, so it cannot
// name a record across restarts; the frame count in the file can, and
// SegmentReader derives it by construction.

// Position identifies a point in a store's generation-numbered record
// stream: Seq records of generation Gen precede it. {Gen: 1, Seq: 0} is
// the genesis position (nothing applied); a position whose generation has
// been garbage-collected by a covering snapshot is below the GC horizon
// and can only be caught up from a snapshot.
type Position struct {
	Gen uint64 `json:"gen"`
	Seq uint64 `json:"seq"`
}

// Genesis is the position of an empty history.
var Genesis = Position{Gen: 1, Seq: 0}

// Less reports whether p orders strictly before q in the record stream.
func (p Position) Less(q Position) bool {
	return p.Gen < q.Gen || (p.Gen == q.Gen && p.Seq < q.Seq)
}

func (p Position) String() string { return fmt.Sprintf("(%d,%d)", p.Gen, p.Seq) }

// ActiveGen returns the generation currently accepting appends.
func (s *Store) ActiveGen() uint64 {
	s.logMu.RLock()
	defer s.logMu.RUnlock()
	return s.gen
}

// EndPos returns the position one past the last record appended so far
// (including records still buffered in memory): the stream a fully
// caught-up follower would have applied.
func (s *Store) EndPos() Position {
	s.logMu.RLock()
	defer s.logMu.RUnlock()
	return Position{Gen: s.gen, Seq: s.base + s.log.Records()}
}

// FlushBuffered pushes buffered records to the OS (no fsync), making them
// visible to a SegmentReader tailing the file. The replication sender
// calls it when it drains the visible tail, so follower staleness is
// bounded by the sender's poll interval rather than the 64 KB buffer.
func (s *Store) FlushBuffered() error {
	s.logMu.RLock()
	defer s.logMu.RUnlock()
	return s.log.FlushBuffer()
}

// HasWAL reports whether generation gen's log file is still on disk (it
// may have been garbage-collected by a covering snapshot).
func (s *Store) HasWAL(gen uint64) bool {
	_, err := s.fs.Stat(walPath(s.dir, gen))
	return err == nil
}

// AppendPosition logs a replication position marker (a follower's record
// of how far into the leader's stream it has applied). The marker shares
// the log with the mutations it vouches for, so prefix semantics keeps it
// honest across crashes. Durability follows the store's sync policy; a
// stale marker only costs idempotent re-application.
func (s *Store) AppendPosition(p Position) error {
	if s.closed.Load() {
		return ErrClosed
	}
	bp := recordPool.Get().(*[]byte)
	rec := appendPosRecord((*bp)[:0], p)
	s.logMu.RLock()
	gen := s.gen
	_, err := s.log.Append(rec)
	s.logMu.RUnlock()
	*bp = rec[:0]
	recordPool.Put(bp)
	if err != nil {
		s.recordFailure(err, gen)
	}
	return err
}

// AppendEpoch logs a replication-epoch stamp. A promoted leader appends
// one per shard so the epoch bump occupies a WAL ordinal and streams to
// followers in-band with the records it fences; replay applies nothing
// for it (the MANIFEST is the authoritative epoch).
func (s *Store) AppendEpoch(epoch uint64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	bp := recordPool.Get().(*[]byte)
	rec := appendEpochRecord((*bp)[:0], epoch)
	s.logMu.RLock()
	gen := s.gen
	_, err := s.log.Append(rec)
	s.logMu.RUnlock()
	*bp = rec[:0]
	recordPool.Put(bp)
	if err != nil {
		s.recordFailure(err, gen)
	}
	return err
}

// RecoveredPosition returns the last position marker in the prefix Open
// recovered, if any. Mutations replayed after the marker only advance the
// true position past it, and streaming from a slightly-stale position
// re-applies idempotently, so "last marker" is always a safe subscription
// point.
func (s *Store) RecoveredPosition() (Position, bool) {
	return s.recoveredPos, s.hasRecoveredPos
}

// OpenSegment opens generation gen's log file for streaming. The returned
// reader holds the file descriptor, so a concurrent snapshot GC unlinking
// the file never truncates an in-flight stream — the reader drains the
// final contents and the sender moves on.
func (s *Store) OpenSegment(gen uint64) (*SegmentReader, error) {
	f, err := s.fs.Open(walPath(s.dir, gen))
	if err != nil {
		return nil, err
	}
	return &SegmentReader{f: f, gen: gen}, nil
}

// SegmentReader iterates the valid record frames of one WAL file, tailing
// growth: Next returns false at the end of the currently visible valid
// prefix and can be called again after the file grows. It reads by
// absolute offset (never consuming a partial frame), so a record that is
// half-flushed now parses whole on a later call.
type SegmentReader struct {
	f   vfs.File
	gen uint64
	off int64  // file offset of buf[0]
	buf []byte // unparsed window starting at off
	pos int    // parse cursor within buf
	seq uint64 // records returned so far == ordinal of the next record
}

// Gen returns the generation this reader streams.
func (r *SegmentReader) Gen() uint64 { return r.gen }

// Seq returns the ordinal of the next record Next would return.
func (r *SegmentReader) Seq() uint64 { return r.seq }

// Close releases the file descriptor.
func (r *SegmentReader) Close() error { return r.f.Close() }

const segmentReadChunk = 1 << 18

// fill grows the window to at least need unparsed bytes, reading from the
// file at the window's end. Returns false when the visible file is too
// short.
func (r *SegmentReader) fill(need int) bool {
	if len(r.buf)-r.pos >= need {
		return true
	}
	// Compact: drop consumed bytes so the buffer never grows past one
	// record plus a chunk.
	if r.pos > 0 {
		r.off += int64(r.pos)
		r.buf = r.buf[:copy(r.buf, r.buf[r.pos:])]
		r.pos = 0
	}
	for len(r.buf) < need {
		want := need - len(r.buf)
		if want < segmentReadChunk {
			want = segmentReadChunk
		}
		if cap(r.buf)-len(r.buf) < want {
			grown := make([]byte, len(r.buf), len(r.buf)+want)
			copy(grown, r.buf)
			r.buf = grown
		}
		n, err := r.f.ReadAt(r.buf[len(r.buf):len(r.buf)+want], r.off+int64(len(r.buf)))
		r.buf = r.buf[:len(r.buf)+n]
		if n == 0 || (err != nil && err != io.EOF && len(r.buf) < need) {
			return len(r.buf)-r.pos >= need
		}
	}
	return true
}

// Next returns the next valid record payload, or false at the end of the
// visible valid prefix — which may be a clean end, an unflushed tail that
// will complete later, or (on a sealed file) a torn tail that never will;
// the caller distinguishes them by whether the generation is still active.
// The returned slice is valid only until the next call.
func (r *SegmentReader) Next() ([]byte, bool) {
	if !r.fill(frameHeader) {
		return nil, false
	}
	hdr := r.buf[r.pos:]
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 || n > maxRecord {
		return nil, false // corrupt length: permanent end of this segment
	}
	if !r.fill(frameHeader + int(n)) {
		return nil, false
	}
	payload := r.buf[r.pos+frameHeader : r.pos+frameHeader+int(n)]
	if crc32.Checksum(payload, castagnoli) != crc {
		// A complete frame with a bad CRC cannot heal by the file growing;
		// treat it like recovery does: the segment ends here.
		return nil, false
	}
	r.pos += frameHeader + int(n)
	r.seq++
	return payload, true
}

// Skip discards up to n records, returning how many it consumed (fewer
// when the visible prefix ends first).
func (r *SegmentReader) Skip(n uint64) uint64 {
	var done uint64
	for done < n {
		if _, ok := r.Next(); !ok {
			break
		}
		done++
	}
	return done
}
