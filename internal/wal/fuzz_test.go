package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/repro/wormhole/internal/core"

	"github.com/repro/wormhole/internal/vfs"
)

// buildWAL frames the given payloads into valid WAL bytes, for seeds.
func buildWAL(t testing.TB, payloads ...[]byte) []byte {
	t.Helper()
	dir := t.TempDir()
	p := filepath.Join(dir, "seed.log")
	l, err := openLog(vfs.OS(), p, 0, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range payloads {
		if _, err := l.Append(pl); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzWALDecode feeds arbitrary bytes through the full recovery path: the
// frame reader must stop cleanly at the first invalid record (no panic,
// no error), every accepted record must decode as a mutation, and opening
// a store over the bytes must yield a consistent index whose WAL can be
// appended to and recovered again — recovery of a recovered log is a
// fixed point.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(buildWAL(f,
		appendSetRecord(nil, []byte("key"), []byte("value")),
		appendDelRecord(nil, []byte("key")),
		appendSetRecord(nil, []byte(""), []byte("")),
	))
	valid := buildWAL(f, appendSetRecord(nil, []byte("alpha"), []byte("1")))
	f.Add(valid)
	f.Add(valid[:len(valid)-2])                       // torn payload
	f.Add(append(valid, 0, 0, 0, 0, 0, 0, 0, 0))      // zero tail
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4}) // huge length

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		p := walPath(dir, 1)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		records := 0
		validLen, err := Replay(p, func(payload []byte) error {
			if _, _, _, derr := decodeRecord(payload); derr != nil {
				return derr
			}
			records++
			return nil
		})
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0,%d]", validLen, len(data))
		}
		_ = err // a decode error ends recovery; Open treats it as a tear

		o := core.DefaultOptions()
		o.Concurrent = false
		o.LeafCap = 16 // small leaves: splits and merges under short inputs
		w := core.New(o)
		st, openErr := Open(dir, w, Options{Sync: SyncNone})
		if openErr != nil {
			t.Fatalf("Open on fuzzed WAL: %v", openErr)
		}
		w.SetMutationHook(st)
		if int64(st.RecoveredRecords()) > int64(records) {
			t.Fatalf("store replayed %d records, frame reader accepted %d",
				st.RecoveredRecords(), records)
		}
		// The recovered index must be internally consistent and reopenable.
		w.Set([]byte("post-recovery"), []byte("x"))
		if err := st.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		w2 := core.New(o)
		if _, err := Open(dir, w2, Options{Sync: SyncNone}); err != nil {
			t.Fatalf("re-Open after recovery: %v", err)
		}
		if w2.Count() < 1 {
			t.Fatal("appended record lost across recovery cycle")
		}
	})
}

// FuzzSnapshotLoad feeds arbitrary bytes to the snapshot loader: it must
// reject anything structurally invalid and, when it accepts, the pairs
// must be strictly ascending and bulk-loadable.
func FuzzSnapshotLoad(f *testing.F) {
	seed := func(pairs ...string) []byte {
		dir := f.TempDir()
		p := filepath.Join(dir, "s.snap")
		if err := WriteSnapshot(p, func(fn func(k, v []byte) bool) {
			for i := 0; i+1 < len(pairs); i += 2 {
				if !fn([]byte(pairs[i]), []byte(pairs[i+1])) {
					return
				}
			}
		}); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add([]byte{})
	f.Add([]byte("WHSNAP1\n"))
	f.Add(seed())
	f.Add(seed("a", "1", "b", "2", "c", "3"))
	long := seed("key-with-some-length", string(bytes.Repeat([]byte("v"), 300)))
	f.Add(long)
	f.Add(long[:len(long)-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		p := filepath.Join(dir, "f.snap")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		keys, vals, err := LoadSnapshot(p)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		if len(keys) != len(vals) {
			t.Fatalf("%d keys but %d vals", len(keys), len(vals))
		}
		for i := 1; i < len(keys); i++ {
			if bytes.Compare(keys[i-1], keys[i]) >= 0 {
				t.Fatalf("accepted snapshot with unsorted keys at %d", i)
			}
		}
		o := core.DefaultOptions()
		o.Concurrent = false
		w := core.New(o)
		if err := w.BulkLoad(keys, vals); err != nil {
			t.Fatalf("accepted snapshot failed bulkload: %v", err)
		}
		if int(w.Count()) != len(keys) {
			t.Fatalf("bulkload count %d != %d", w.Count(), len(keys))
		}
	})
}
