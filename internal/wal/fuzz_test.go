package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"github.com/repro/wormhole/internal/core"

	"github.com/repro/wormhole/internal/vfs"
)

// buildWAL frames the given payloads into valid WAL bytes, for seeds.
func buildWAL(t testing.TB, payloads ...[]byte) []byte {
	t.Helper()
	dir := t.TempDir()
	p := filepath.Join(dir, "seed.log")
	l, err := openLog(vfs.OS(), p, 0, SyncNone, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range payloads {
		if _, err := l.Append(pl); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzWALDecode feeds arbitrary bytes through the full recovery path: the
// frame reader must stop cleanly at the first invalid record (no panic,
// no error), every accepted record must decode as a mutation, and opening
// a store over the bytes must yield a consistent index whose WAL can be
// appended to and recovered again — recovery of a recovered log is a
// fixed point.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(buildWAL(f,
		appendSetRecord(nil, []byte("key"), []byte("value")),
		appendDelRecord(nil, []byte("key")),
		appendSetRecord(nil, []byte(""), []byte("")),
	))
	valid := buildWAL(f, appendSetRecord(nil, []byte("alpha"), []byte("1")))
	f.Add(valid)
	f.Add(valid[:len(valid)-2])                       // torn payload
	f.Add(append(valid, 0, 0, 0, 0, 0, 0, 0, 0))      // zero tail
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4}) // huge length

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		p := walPath(dir, 1)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		records := 0
		validLen, err := Replay(p, func(payload []byte) error {
			if _, _, _, derr := decodeRecord(payload); derr != nil {
				return derr
			}
			records++
			return nil
		})
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0,%d]", validLen, len(data))
		}
		_ = err // a decode error ends recovery; Open treats it as a tear

		o := core.DefaultOptions()
		o.Concurrent = false
		o.LeafCap = 16 // small leaves: splits and merges under short inputs
		w := core.New(o)
		st, openErr := Open(dir, w, Options{Sync: SyncNone})
		if openErr != nil {
			t.Fatalf("Open on fuzzed WAL: %v", openErr)
		}
		w.SetMutationHook(st)
		if int64(st.RecoveredRecords()) > int64(records) {
			t.Fatalf("store replayed %d records, frame reader accepted %d",
				st.RecoveredRecords(), records)
		}
		// The recovered index must be internally consistent and reopenable.
		w.Set([]byte("post-recovery"), []byte("x"))
		if err := st.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		w2 := core.New(o)
		if _, err := Open(dir, w2, Options{Sync: SyncNone}); err != nil {
			t.Fatalf("re-Open after recovery: %v", err)
		}
		if w2.Count() < 1 {
			t.Fatal("appended record lost across recovery cycle")
		}
	})
}

// FuzzSegmentLoad feeds hostile bytes to the v2 segment and footer
// parsers three ways: raw (magic/CRC/truncation rejection), as a
// CRC-corrected segment image (the fuzzer reaches past the checksum into
// entry parsing: corrupt prefix lengths, truncated suffixes, unsorted
// keys), and as a CRC-corrected footer image driven through the full
// segment-set loader over an empty directory (boundary lies, count
// mismatches, missing segments). Nothing may panic; allocation may never
// exceed the passed budgets on a corrupt length's say-so; anything
// accepted must be strictly ascending and bulk-loadable.
func FuzzSegmentLoad(f *testing.F) {
	// Budgets a CRC-valid-but-hostile image must not break: a prefix
	// ladder (each entry extending the previous key) costs the attacker
	// ~1 input byte per key byte squared, so the decoder must cut off at
	// the budget, not allocate through it.
	const maxPairs, maxKeyBytes = 1 << 16, 1 << 20

	seedDir := func(pairs ...string) vfs.FS {
		fsys := vfs.NewMemFS()
		if err := fsys.MkdirAll("/db", 0o755); err != nil {
			f.Fatal(err)
		}
		err := writeSnapshotV2FS(fsys, "/db", 1, 64, func(fn func(k, v []byte) bool) {
			for i := 0; i+1 < len(pairs); i += 2 {
				if !fn([]byte(pairs[i]), []byte(pairs[i+1])) {
					return
				}
			}
		})
		if err != nil {
			f.Fatal(err)
		}
		return fsys
	}
	fsys := seedDir(
		"https://a.example/1", "v1",
		"https://a.example/2", "v2",
		"https://b.example/1", "v3",
	)
	if seg, err := fsys.ReadFile(segPath("/db", 1, 0)); err == nil {
		f.Add(seg)
		f.Add(seg[:len(seg)-3]) // truncated
		flip := append([]byte(nil), seg...)
		flip[len(flip)/2] ^= 0x20 // CRC mismatch
		f.Add(flip)
	}
	if footer, err := fsys.ReadFile(snapPath("/db", 1)); err == nil {
		f.Add(footer)
	}
	f.Add([]byte{})
	f.Add([]byte("WHSSEG2\n"))
	f.Add([]byte("WHSNAP2\n"))
	// Fix-up-format seeds: [count byte][entries...] — two ascending pairs,
	// then a non-ascending pair the harness must reject.
	f.Add([]byte{2, 0, 1, 1, 'a', '1', 1, 1, 1, 'b', '2'})
	f.Add([]byte{2, 0, 1, 1, 'b', '1', 0, 1, 1, 'a', '2'})

	check := func(t *testing.T, keys, vals [][]byte) {
		t.Helper()
		if len(keys) != len(vals) {
			t.Fatalf("%d keys but %d vals", len(keys), len(vals))
		}
		var kb uint64
		for i := range keys {
			kb += uint64(len(keys[i]))
			if i > 0 && bytes.Compare(keys[i-1], keys[i]) >= 0 {
				t.Fatalf("accepted segment with unsorted keys at %d", i)
			}
		}
		if uint64(len(keys)) > maxPairs || kb > maxKeyBytes {
			t.Fatalf("decode exceeded its budgets: %d pairs, %d key bytes", len(keys), kb)
		}
		o := core.DefaultOptions()
		o.Concurrent = false
		w := core.New(o)
		if err := w.BulkLoad(keys, vals); err != nil {
			t.Fatalf("accepted segment failed bulkload: %v", err)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Raw: arbitrary bytes straight into both parsers.
		if keys, vals, err := decodeSegment(data, maxPairs, maxKeyBytes); err == nil {
			check(t, keys, vals)
		}
		_, _, _ = parseSnapshotFooter(data)

		if len(data) == 0 {
			return
		}
		// CRC-corrected segment: first input byte is the claimed count, the
		// rest the entry bytes; magic, count field and CRC are made valid so
		// only the entry structure is under test.
		seg := append([]byte(nil), segMagic...)
		seg = append(seg, data[1:]...)
		seg = binary.LittleEndian.AppendUint32(seg, uint32(data[0]))
		seg = binary.LittleEndian.AppendUint32(seg, crc32.Checksum(seg, castagnoli))
		if keys, vals, err := decodeSegment(seg, maxPairs, maxKeyBytes); err == nil {
			check(t, keys, vals)
		}

		// CRC-corrected footer through the full loader: an empty directory
		// means any accepted footer must fail on its missing or mis-sized
		// segments — never a partial load.
		footer := append([]byte(nil), snapMagic2...)
		footer = append(footer, data...)
		footer = binary.LittleEndian.AppendUint32(footer, crc32.Checksum(footer, castagnoli))
		empty := vfs.NewMemFS()
		if err := empty.MkdirAll("/db", 0o755); err != nil {
			t.Fatal(err)
		}
		if keys, _, _, err := loadSnapshotV2FS(empty, "/db", 1, footer, 2); err == nil && len(keys) != 0 {
			t.Fatalf("loader produced %d pairs from a directory with no segments", len(keys))
		}
	})
}

// FuzzSnapshotLoad feeds arbitrary bytes to the snapshot loader: it must
// reject anything structurally invalid and, when it accepts, the pairs
// must be strictly ascending and bulk-loadable.
func FuzzSnapshotLoad(f *testing.F) {
	seed := func(pairs ...string) []byte {
		dir := f.TempDir()
		p := filepath.Join(dir, "s.snap")
		if err := WriteSnapshot(p, func(fn func(k, v []byte) bool) {
			for i := 0; i+1 < len(pairs); i += 2 {
				if !fn([]byte(pairs[i]), []byte(pairs[i+1])) {
					return
				}
			}
		}); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add([]byte{})
	f.Add([]byte("WHSNAP1\n"))
	f.Add(seed())
	f.Add(seed("a", "1", "b", "2", "c", "3"))
	long := seed("key-with-some-length", string(bytes.Repeat([]byte("v"), 300)))
	f.Add(long)
	f.Add(long[:len(long)-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		p := filepath.Join(dir, "f.snap")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		keys, vals, err := LoadSnapshot(p)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		if len(keys) != len(vals) {
			t.Fatalf("%d keys but %d vals", len(keys), len(vals))
		}
		for i := 1; i < len(keys); i++ {
			if bytes.Compare(keys[i-1], keys[i]) >= 0 {
				t.Fatalf("accepted snapshot with unsorted keys at %d", i)
			}
		}
		o := core.DefaultOptions()
		o.Concurrent = false
		w := core.New(o)
		if err := w.BulkLoad(keys, vals); err != nil {
			t.Fatalf("accepted snapshot failed bulkload: %v", err)
		}
		if int(w.Count()) != len(keys) {
			t.Fatalf("bulkload count %d != %d", w.Count(), len(keys))
		}
	})
}
