// Package wal is the persistence subsystem: a length+CRC32C-framed,
// group-committed write-ahead log plus key-ordered snapshot files, and a
// Store that manages both for one index backend — rotation, snapshot
// truncation, and recovery that bulk-loads the newest valid snapshot then
// replays the WAL tail, stopping cleanly at the first torn or corrupt
// record.
//
// The durability contract is prefix semantics: after any crash, recovery
// reconstructs the state produced by some prefix of the operations in
// commit order — never a phantom key, never a partially applied record.
// How long that prefix is depends on the Sync policy: SyncAlways makes
// every returned operation part of it; SyncInterval bounds the loss to
// one flush interval; SyncNone leaves flushing to the OS page cache.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/wormhole/internal/vfs"
)

// SyncPolicy selects when appended records are forced to stable storage.
type SyncPolicy int

const (
	// SyncNone never fsyncs on the append path; the OS flushes the page
	// cache at its leisure. Fastest, loses up to everything since the last
	// explicit Flush or Snapshot on power failure.
	SyncNone SyncPolicy = iota
	// SyncInterval fsyncs from a background flusher every Interval
	// (default 100ms), bounding loss to one interval.
	SyncInterval
	// SyncAlways fsyncs before the store acknowledges each mutation (the
	// hook's Barrier phase). Concurrent writers share one fsync (group
	// commit): each waits only for a sync covering its own record, and
	// one syscall typically retires a whole convoy.
	SyncAlways
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParsePolicy maps the -sync flag spellings onto a policy.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "none", "":
		return SyncNone, nil
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	}
	return SyncNone, fmt.Errorf("wal: unknown sync policy %q (want none, interval or always)", s)
}

// DefaultInterval is the SyncInterval flush cadence when Options leaves it
// zero.
const DefaultInterval = 100 * time.Millisecond

// Record framing: every record is [payloadLen uint32][crc32c uint32]
// [payload]; the CRC (Castagnoli, the polynomial with hardware support on
// both amd64 and arm64) covers the payload only, so a torn length word, a
// torn payload and a zero-filled preallocated tail all fail validation.
// A zero-length record is invalid by construction — a zero-filled tail
// would otherwise frame as an endless run of empty records with CRC 0.
const (
	frameHeader = 8
	// maxRecord bounds a single record; larger lengths are treated as
	// corruption rather than an allocation request.
	maxRecord = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log or store.
var ErrClosed = errors.New("wal: closed")

// Log is an append-only record log over one file. Append is safe for
// concurrent use; the group-commit machinery makes SyncAlways scale with
// writer concurrency instead of paying one fsync per record.
type Log struct {
	policy   SyncPolicy
	interval time.Duration
	mx       *Metrics // nil records nothing

	mu     sync.Mutex // guards f, w, appended, err, closed
	f      vfs.File
	w      *bufio.Writer
	size   int64  // bytes framed so far (buffered + written)
	seq    uint64 // records appended
	err    error  // sticky I/O error; surfaces on Flush/Close
	closed bool

	// Group commit: synced is the highest seq known durable; syncMu admits
	// one syncing goroutine at a time while a convoy of appenders piles up
	// behind it, then each re-checks synced before syncing itself.
	synced atomic.Uint64
	syncMu sync.Mutex

	stop chan struct{}
	done chan struct{}
}

// openLog opens path for appending (creating it if needed) at offset off,
// which must be the validated record-prefix length — the file is truncated
// there so a torn tail is never appended after.
func openLog(fsys vfs.FS, path string, off int64, policy SyncPolicy, interval time.Duration, mx *Metrics) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if interval <= 0 {
		interval = DefaultInterval
	}
	l := &Log{
		policy:   policy,
		interval: interval,
		mx:       mx,
		f:        f,
		w:        bufio.NewWriterSize(f, 1<<16),
		size:     off,
	}
	if policy == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

func (l *Log) flushLoop() {
	defer close(l.done)
	t := time.NewTicker(l.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.Sync()
		case <-l.stop:
			return
		}
	}
}

// Append frames payload onto the log buffer and returns the record's
// sequence number. It never blocks on storage — the caller decides
// whether to WaitDurable(seq) afterwards (the mutation-hook split: the
// append runs under the index's leaf lock to capture commit order, the
// durability wait runs after the lock is released). The first I/O error
// sticks: every later Append reports it, and no further bytes are
// written.
func (l *Log) Append(payload []byte) (seq uint64, err error) {
	if len(payload) == 0 || len(payload) > maxRecord {
		return 0, fmt.Errorf("wal: record length %d out of range", len(payload))
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))

	var t0 time.Time
	if l.mx != nil {
		t0 = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	if _, err := l.w.Write(hdr[:]); err != nil {
		l.err = err
		return 0, err
	}
	if _, err := l.w.Write(payload); err != nil {
		l.err = err
		return 0, err
	}
	l.size += int64(frameHeader + len(payload))
	l.seq++
	if l.mx != nil {
		l.mx.AppendSeconds.Observe(time.Since(t0))
		l.mx.AppendedBytes.Add(uint64(frameHeader + len(payload)))
		l.mx.AppendedRecords.Inc()
	}
	return l.seq, nil
}

// WaitDurable blocks until record seq is on stable storage, via the
// group commit: whichever waiter wins the sync mutex flushes and fsyncs
// on behalf of the whole convoy queued behind it.
func (l *Log) WaitDurable(seq uint64) error {
	return l.syncTo(seq)
}

// syncTo blocks until a sync covering record seq has completed — the group
// commit: whichever appender wins syncMu flushes and fsyncs on behalf of
// the whole convoy queued behind it, and the rest find synced already past
// their seq when they get in.
func (l *Log) syncTo(seq uint64) error {
	for l.synced.Load() < seq {
		l.syncMu.Lock()
		if l.synced.Load() >= seq {
			l.syncMu.Unlock()
			return nil
		}
		err := l.syncNow()
		l.syncMu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// syncNow flushes the buffer and fsyncs; caller holds syncMu.
func (l *Log) syncNow() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	seq := l.seq
	err := l.w.Flush()
	if err != nil {
		l.err = err
	}
	f := l.f
	l.mu.Unlock()
	if err != nil {
		return err
	}
	// Fsync outside l.mu so appenders keep buffering during the syscall.
	if l.mx != nil {
		t0 := time.Now()
		defer func() {
			l.mx.FsyncSeconds.Observe(time.Since(t0))
			l.mx.Fsyncs.Inc()
		}()
	}
	if err := f.Sync(); err != nil {
		l.mu.Lock()
		l.err = err
		l.mu.Unlock()
		return err
	}
	if prev := l.synced.Load(); prev < seq {
		l.synced.CompareAndSwap(prev, seq)
	}
	return nil
}

// Sync forces everything appended so far to stable storage.
func (l *Log) Sync() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.syncNow()
}

// Size returns the framed byte length of the log (including buffered
// records not yet flushed to the file).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Records returns how many records have been appended since the log was
// opened (buffered or not).
func (l *Log) Records() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// FlushBuffer pushes buffered records to the OS without fsyncing: enough
// for another reader of the same file (the replication sender) to see
// them, with none of the durability cost.
func (l *Log) FlushBuffer() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if err := l.w.Flush(); err != nil {
		l.err = err
		return err
	}
	return nil
}

// Close flushes, fsyncs and closes the file. Idempotent; concurrent
// Appends racing a Close may be dropped, which is the caller's
// serialization to prevent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	flushErr := l.w.Flush()
	if flushErr != nil && l.err == nil {
		l.err = flushErr
	}
	err := l.err
	f := l.f
	l.closed = true
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	if serr := f.Sync(); serr != nil && err == nil {
		err = serr
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Replay streams every valid record of the file at path to fn, in order,
// stopping cleanly at the first torn or corrupt record (short header,
// length out of range, short payload, CRC mismatch) — corruption is the
// end of the log, not an error. It returns the byte length of the valid
// prefix; opening the log for appending at that offset truncates the
// garbage tail. fn returning an error aborts the replay and is returned
// verbatim. A missing file replays zero records.
func Replay(path string, fn func(payload []byte) error) (validLen int64, err error) {
	return replayFS(vfs.OS(), path, fn)
}

// replayFS is Replay over an injectable filesystem.
func replayFS(fsys vfs.FS, path string, fn func(payload []byte) error) (validLen int64, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := fi.Size()
	r := bufio.NewReaderSize(f, 1<<16)
	var off int64
	var hdr [frameHeader]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header: end of log
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecord || int64(n) > size-off-frameHeader {
			// Zero-filled tail, garbage length, or a length running past
			// the file: never allocate on a corrupt length's say-so.
			return off, nil
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return off, nil // torn payload
		}
		if crc32.Checksum(buf, castagnoli) != crc {
			return off, nil // flipped bits
		}
		if err := fn(buf); err != nil {
			return off, err
		}
		off += int64(frameHeader) + int64(n)
	}
}
