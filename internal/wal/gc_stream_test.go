package wal

import (
	"fmt"
	"os"
	"testing"
)

// listNames returns the wal/snap file names present in dir.
func listNames(t *testing.T, dir string) map[string]bool {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range ents {
		names[e.Name()] = true
	}
	return names
}

// TestGenerationGC pins the GC contract replication leans on: a covering
// snapshot actually removes the obsolete wal and snap files (defining the
// GC horizon a follower can fall below), recovery still succeeds from the
// survivors, and a second snapshot removes the first's files in turn.
func TestGenerationGC(t *testing.T) {
	dir := t.TempDir()
	w, st := openStore(t, dir, Options{Sync: SyncNone})
	for i := 0; i < 400; i++ {
		w.Set([]byte(fmt.Sprintf("k%04d", i)), []byte("v1"))
	}
	if !st.HasWAL(1) {
		t.Fatal("generation 1 missing before any snapshot")
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	names := listNames(t, dir)
	if names[fmt.Sprintf("wal-%016x.log", 1)] {
		t.Fatal("wal-1 survived its covering snapshot")
	}
	if !names[fmt.Sprintf("snap-%016x.snap", 2)] || !names[fmt.Sprintf("wal-%016x.log", 2)] {
		t.Fatalf("generation 2 files missing after snapshot: %v", names)
	}
	if st.HasWAL(1) || !st.HasWAL(2) {
		t.Fatal("HasWAL disagrees with the directory")
	}
	if st.ActiveGen() != 2 {
		t.Fatalf("active generation %d, want 2", st.ActiveGen())
	}

	// Post-snapshot tail, then recovery from the survivors alone.
	for i := 0; i < 100; i++ {
		w.Set([]byte(fmt.Sprintf("t%04d", i)), []byte("v2"))
	}
	w.Del([]byte("k0000"))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	w2, st2 := openStore(t, dir, Options{Sync: SyncNone})
	if w2.Count() != 499 {
		t.Fatalf("recovered %d keys, want 499", w2.Count())
	}
	if st2.RecoveredPairs() != 400 {
		t.Fatalf("snapshot restored %d pairs, want 400", st2.RecoveredPairs())
	}
	if _, ok := w2.Get([]byte("k0000")); ok {
		t.Fatal("deleted key resurrected from the GC'd generation")
	}

	// A second snapshot garbage-collects the first's files.
	if err := st2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	names = listNames(t, dir)
	for _, stale := range []string{
		fmt.Sprintf("snap-%016x.snap", 2),
		fmt.Sprintf("wal-%016x.log", 2),
	} {
		if names[stale] {
			t.Fatalf("%s survived the second covering snapshot", stale)
		}
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, st3 := openStore(t, dir, Options{Sync: SyncNone})
	defer st3.Close()
	if w3.Count() != 499 {
		t.Fatalf("second recovery %d keys, want 499", w3.Count())
	}
}

// TestPositionMarkers checks the replication position round trip: markers
// interleave with mutations in the log, recovery reports the last one in
// the valid prefix, and markers count as record ordinals (streamed
// sequence numbers stay aligned with frame counts).
func TestPositionMarkers(t *testing.T) {
	dir := t.TempDir()
	w, st := openStore(t, dir, Options{Sync: SyncNone})
	if _, ok := st.RecoveredPosition(); ok {
		t.Fatal("fresh store recovered a position")
	}
	w.Set([]byte("a"), []byte("1"))
	if err := st.AppendPosition(Position{Gen: 7, Seq: 100}); err != nil {
		t.Fatal(err)
	}
	w.Set([]byte("b"), []byte("2"))
	if err := st.AppendPosition(Position{Gen: 7, Seq: 200}); err != nil {
		t.Fatal(err)
	}
	w.Set([]byte("c"), []byte("3"))
	end := st.EndPos()
	if end != (Position{Gen: 1, Seq: 5}) {
		t.Fatalf("EndPos %v, want (1,5)", end)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	w2, st2 := openStore(t, dir, Options{Sync: SyncNone})
	if p, ok := st2.RecoveredPosition(); !ok || p != (Position{Gen: 7, Seq: 200}) {
		t.Fatalf("recovered position %v,%v want (7,200)", p, ok)
	}
	if w2.Count() != 3 {
		t.Fatalf("markers perturbed recovery: %d keys", w2.Count())
	}
	// Reopen seals the recovered generation and rotates: new appends land
	// in a fresh generation so a restart can never regrow a crash-lost
	// tail under ordinals a replica already trusted.
	if end := st2.EndPos(); end != (Position{Gen: 2, Seq: 0}) {
		t.Fatalf("EndPos after reopen %v, want (2,0)", end)
	}
	w2.Set([]byte("d"), []byte("4"))
	if end := st2.EndPos(); end != (Position{Gen: 2, Seq: 1}) {
		t.Fatalf("EndPos after append %v, want (2,1)", end)
	}
	st2.Close()
}

// TestDecodePosition exercises the marker codec's edges.
func TestDecodePosition(t *testing.T) {
	rec := appendPosRecord(nil, Position{Gen: 3, Seq: 1 << 41})
	op, key, val, err := decodeRecord(rec)
	if err != nil || op != opPos || key != nil || val != nil {
		t.Fatalf("decodeRecord: %d %q %q %v", op, key, val, err)
	}
	p, err := DecodePosition(rec)
	if err != nil || p != (Position{Gen: 3, Seq: 1 << 41}) {
		t.Fatalf("DecodePosition: %v %v", p, err)
	}
	for _, bad := range [][]byte{
		{},
		{opPos},
		{opPos, 0x80}, // truncated uvarint
		append(appendPosRecord(nil, Position{Gen: 1, Seq: 1}), 0), // trailing byte
		{opSet, 1, 'k'},
	} {
		if _, err := DecodePosition(bad); err == nil {
			t.Fatalf("DecodePosition accepted %v", bad)
		}
		if bad != nil && len(bad) > 0 && bad[0] == opPos {
			if _, _, _, err := decodeRecord(bad); err == nil && len(bad) > 2 {
				t.Fatalf("decodeRecord accepted malformed marker %v", bad)
			}
		}
	}
}

// TestSegmentReaderTailsOpenLog streams a live WAL file: records become
// visible after FlushBuffered, a half-flushed frame is not consumed until
// it completes, and Skip lands on exact ordinals.
func TestSegmentReaderTailsOpenLog(t *testing.T) {
	dir := t.TempDir()
	w, st := openStore(t, dir, Options{Sync: SyncNone})
	defer st.Close()

	sr, err := st.OpenSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if _, ok := sr.Next(); ok {
		t.Fatal("empty log yielded a record")
	}

	w.Set([]byte("k1"), []byte("v1"))
	w.Set([]byte("k2"), []byte("v2"))
	if _, ok := sr.Next(); ok {
		t.Fatal("buffered records visible before FlushBuffered")
	}
	if err := st.FlushBuffered(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"k1", "k2"} {
		payload, ok := sr.Next()
		if !ok {
			t.Fatalf("record %d not visible after FlushBuffered", i)
		}
		op, key, _, err := DecodeRecord(payload)
		if err != nil || op != RecordSet || string(key) != want {
			t.Fatalf("record %d: op %d key %q err %v", i, op, key, err)
		}
	}
	if _, ok := sr.Next(); ok {
		t.Fatal("phantom record at the tail")
	}
	if sr.Seq() != 2 {
		t.Fatalf("seq %d, want 2", sr.Seq())
	}

	// More records plus skip: a second reader lands mid-stream.
	for i := 0; i < 50; i++ {
		w.Set([]byte(fmt.Sprintf("s%03d", i)), []byte("v"))
	}
	if err := st.FlushBuffered(); err != nil {
		t.Fatal(err)
	}
	sr2, err := st.OpenSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sr2.Close()
	if got := sr2.Skip(40); got != 40 {
		t.Fatalf("skipped %d, want 40", got)
	}
	payload, ok := sr2.Next()
	if !ok {
		t.Fatal("no record after skip")
	}
	if _, key, _, _ := DecodeRecord(payload); string(key) != "s038" {
		// 2 head records + 38 s-records were skipped.
		t.Fatalf("record after skip: %q", key)
	}
	if got := sr2.Skip(1000); got != 11 {
		t.Fatalf("tail skip consumed %d, want 11", got)
	}
}

// TestSegmentReaderDrainsGCdFile holds a reader open across the snapshot
// GC that unlinks its file: the held descriptor must still drain the
// final contents (the property that lets an in-flight stream survive a
// concurrent snapshot).
func TestSegmentReaderDrainsGCdFile(t *testing.T) {
	dir := t.TempDir()
	w, st := openStore(t, dir, Options{Sync: SyncNone})
	defer st.Close()
	for i := 0; i < 100; i++ {
		w.Set([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	if err := st.FlushBuffered(); err != nil {
		t.Fatal(err)
	}
	sr, err := st.OpenSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.Skip(10) != 10 {
		t.Fatal("skip failed")
	}
	if err := st.Snapshot(); err != nil { // rotates to gen 2, unlinks wal-1
		t.Fatal(err)
	}
	if st.HasWAL(1) {
		t.Fatal("wal-1 still on disk after snapshot")
	}
	n := 0
	for {
		if _, ok := sr.Next(); !ok {
			break
		}
		n++
	}
	if n != 90 {
		t.Fatalf("drained %d records from the unlinked file, want 90", n)
	}
}
