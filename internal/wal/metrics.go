package wal

import (
	"github.com/repro/wormhole/internal/metrics"
)

// Metrics is the persistence subsystem's instrument bundle, shared by
// every Log and Store it is handed to (a sharded store passes one bundle
// to all shards through Options, so the series aggregate across shards).
// A nil *Metrics is valid and records nothing — the append and fsync
// paths nil-check before reading the clock.
type Metrics struct {
	// AppendSeconds is the buffered framing latency of one record,
	// including the wait for the log's append lock (queueing behind a
	// convoy is real latency the caller pays).
	AppendSeconds *metrics.Histogram
	// FsyncSeconds is one fsync syscall; under SyncAlways group commit,
	// one observation typically covers a whole convoy of records.
	FsyncSeconds *metrics.Histogram
	// CommitWaitSeconds is the Barrier wait: how long a mutation blocked
	// until a group commit covering it retired.
	CommitWaitSeconds *metrics.Histogram
	// SnapshotSeconds times a whole Snapshot (rotation, index scan,
	// snapshot write and old-generation GC).
	SnapshotSeconds *metrics.Histogram

	AppendedBytes   *metrics.Counter
	AppendedRecords *metrics.Counter
	Fsyncs          *metrics.Counter
	Rotations       *metrics.Counter
	Snapshots       *metrics.Counter
	// Failures counts durability-compromising errors as they are
	// recorded (appends that could not be logged, fsyncs that failed).
	Failures *metrics.Counter
}

// NewMetrics registers the wal_* family set on reg and returns the
// bundle to place in Options.Metrics.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		AppendSeconds: reg.Histogram("wal_append_seconds",
			"WAL record framing latency, including append-lock wait."),
		FsyncSeconds: reg.Histogram("wal_fsync_seconds",
			"WAL fsync syscall latency (one sync retires a group-commit convoy)."),
		CommitWaitSeconds: reg.Histogram("wal_commit_wait_seconds",
			"Durability-barrier wait until a covering group commit retired."),
		SnapshotSeconds: reg.Histogram("wal_snapshot_seconds",
			"Whole-snapshot latency: rotation, scan, write and GC."),
		AppendedBytes: reg.Counter("wal_appended_bytes_total",
			"Framed bytes appended to active WAL generations."),
		AppendedRecords: reg.Counter("wal_appended_records_total",
			"Records appended to active WAL generations."),
		Fsyncs: reg.Counter("wal_fsyncs_total", "WAL fsync syscalls issued."),
		Rotations: reg.Counter("wal_rotations_total",
			"WAL generation rotations (one per snapshot)."),
		Snapshots: reg.Counter("wal_snapshots_total",
			"Snapshots written and published."),
		Failures: reg.Counter("wal_failures_total",
			"Durability-compromising errors recorded (store entered degraded mode)."),
	}
}
