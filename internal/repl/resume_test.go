package repl

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// urlKeys returns n keys sharing long common prefixes — the keyset shape
// the prefix-compressed snapshot wire format is built for.
func urlKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("https://example.com/users/%07d/profile", i*7919%n))
	}
	return keys
}

// TestFreshFollowerCatchUpCompressedChunks starts a fresh follower below
// the leader's GC horizon, forcing the full snapshot catch-up path, and
// checks two things: convergence is byte-identical, and the snapshot
// chunks on the wire are smaller than the raw pairs they carry — the
// prefix compression actually pays on a common-prefix keyset instead of
// just reshuffling bytes.
func TestFreshFollowerCatchUpCompressedChunks(t *testing.T) {
	keys := urlKeys(4000)
	ld := newLeader(t, t.TempDir(), keys)
	var rawBytes int64
	for _, k := range keys {
		v := []byte("v-" + string(k[len(k)-15:]))
		ld.st.Set(k, v)
		rawBytes += int64(len(k) + len(v))
	}
	// Rotate every shard's WAL so the follower's genesis position falls
	// below the GC horizon: tail replay is impossible, snapshot mandatory.
	if err := ld.st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	var chunkBytes, chunkPairs atomic.Int64
	ld.src.SetStreamFault(func(typ byte, body []byte) (FaultAction, time.Duration) {
		if typ == msgSnapChunk {
			chunkBytes.Add(int64(len(body) - 6))
			chunkPairs.Add(int64(binary.LittleEndian.Uint32(body[2:6])))
		}
		return FaultPass, 0
	})
	f := startFollower(t, ld, t.TempDir())
	defer f.Close()
	waitConverged(t, ld, f)
	waitSnapshots(t, f, int64(ld.st.NumShards()))
	ld.src.SetStreamFault(nil)
	if got := chunkPairs.Load(); got != int64(len(keys)) {
		t.Fatalf("snapshot chunks carried %d pairs, leader has %d", got, len(keys))
	}
	if cb := chunkBytes.Load(); cb >= rawBytes {
		t.Fatalf("compressed chunks (%d bytes) not smaller than raw pairs (%d bytes)", cb, rawBytes)
	} else {
		t.Logf("chunk bytes %d vs raw %d (%.0f%%)", cb, rawBytes, 100*float64(cb)/float64(rawBytes))
	}
}

// TestSnapshotCatchUpResumesAfterDisconnect kills the replication
// connection partway through a snapshot catch-up and checks the retry is
// incremental: the reconnected stream must NOT restart every shard's
// snapshot from its first key — the follower advertises its per-shard
// scan cursors in the new handshake and the leader resumes each scan
// from there, so the second connection ships strictly fewer pairs than
// the full keyspace. Convergence must still be byte-identical.
func TestSnapshotCatchUpResumesAfterDisconnect(t *testing.T) {
	keys := urlKeys(3000)
	ld := newLeader(t, t.TempDir(), keys)
	pad := bytes.Repeat([]byte("x"), 1<<10)
	for _, k := range keys {
		ld.st.Set(k, append(append([]byte(nil), pad...), k...))
	}
	if err := ld.st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Drop the connection at the 5th snapshot chunk. Chunks before it were
	// flushed to the socket and survive the graceful close; the dropped
	// chunk and everything after must arrive via the resumed stream.
	var chunks, firstPairs, secondPairs atomic.Int64
	var dropped atomic.Bool
	ld.src.SetStreamFault(func(typ byte, body []byte) (FaultAction, time.Duration) {
		if typ != msgSnapChunk {
			return FaultPass, 0
		}
		n := int64(binary.LittleEndian.Uint32(body[2:6]))
		if !dropped.Load() {
			if chunks.Add(1) == 5 {
				dropped.Store(true)
				return FaultDropConn, 0
			}
			firstPairs.Add(n)
			return FaultPass, 0
		}
		secondPairs.Add(n)
		return FaultPass, 0
	})
	f := startFollower(t, ld, t.TempDir())
	defer f.Close()
	waitConverged(t, ld, f)
	ld.src.SetStreamFault(nil)
	if !dropped.Load() {
		t.Fatalf("snapshot finished in under 5 chunks (%d pairs) — grow the dataset", firstPairs.Load())
	}
	first, second := firstPairs.Load(), secondPairs.Load()
	if second == 0 {
		t.Fatal("no snapshot chunks on the resumed connection")
	}
	if second >= int64(len(keys)) {
		t.Fatalf("resumed catch-up re-sent the whole keyspace: %d pairs on conn 2, %d total (conn 1 shipped %d)",
			second, len(keys), first)
	}
	t.Logf("conn 1 shipped %d pairs, conn 2 shipped %d of %d total", first, second, len(keys))
}
