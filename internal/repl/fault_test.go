package repl

import (
	"fmt"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/repro/wormhole/internal/netkv"
	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/vfs"
	"github.com/repro/wormhole/internal/wal"
)

// newFaultLeader builds a leader whose durability runs on an injectable
// in-memory filesystem, so tests can fill its "disk" at will.
func newFaultLeader(t *testing.T, inj *vfs.Injector, sample [][]byte) *leader {
	t.Helper()
	st, err := shard.Open(shard.Options{
		Dir:    "/ldb",
		Shards: 3,
		Sample: sample,
		Durability: wal.Options{
			Sync:    wal.SyncAlways,
			FS:      inj,
			HealMin: time.Millisecond,
			HealMax: 10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(st)
	srv, err := netkv.ServeOpts("127.0.0.1:0", st, netkv.ServerOptions{
		Subscribe: src.ServeSubscriber,
		StatFill:  src.FillStat,
	})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		src.Close()
		srv.Close()
		st.Close()
	})
	return &leader{st: st, src: src, srv: srv}
}

// TestDegradedLeaderServesReadsAndHeals is the degraded-mode invariant
// end to end: an injected ENOSPC on the leader's WAL append path flips
// the owning shard into degraded read-only mode — new writes come back
// StatusDegraded over the wire, while reads and the follower's
// replication stream keep serving — and clearing the fault lets the
// self-healer restore writability with no restart. Run under -race: the
// healer, the netkv workers, and the replication senders all touch the
// same stores concurrently.
func TestDegradedLeaderServesReadsAndHeals(t *testing.T) {
	keys := testKeys(600)
	inj := vfs.NewInjector(vfs.NewMemFS())
	ld := newFaultLeader(t, inj, keys)
	cl, err := netkv.Dial(ld.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, k := range keys {
		cl.QueueSet(k, append([]byte("v-"), k...))
	}
	if _, err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	fdir := t.TempDir()
	f := startFollower(t, ld, fdir)
	waitConverged(t, ld, f)

	// Fill the "disk" under every shard's WAL. The first write to a shard
	// is accepted but poisons it (the fsync fails after the ack); every
	// write after that is refused StatusDegraded.
	inj.AddRule(vfs.Rule{Kind: vfs.KindWrite | vfs.KindSync, PathContains: "wal-", Err: syscall.ENOSPC})
	sawDegraded := false
	for i := 0; i < 50 && !sawDegraded; i++ {
		cl.QueueSet([]byte(fmt.Sprintf("poison-%03d", i)), []byte("x"))
		rs, err := cl.Flush()
		if err != nil {
			t.Fatal(err)
		}
		sawDegraded = rs[0].Status == netkv.StatusDegraded
	}
	if !sawDegraded {
		t.Fatal("no write came back StatusDegraded under a standing ENOSPC")
	}
	if !ld.st.Degraded() {
		t.Fatal("store does not report degraded")
	}

	// Reads keep serving through the same server.
	cl.QueueGet(keys[0])
	rs, err := cl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Status != netkv.StatusOK {
		t.Fatalf("read on a degraded leader: status %d", rs[0].Status)
	}
	// The degradation is visible in OpStat.
	stat, err := cl.Stat()
	if err != nil {
		t.Fatal(err)
	}
	degradedShards := 0
	for _, h := range stat.Health {
		if h.Degraded {
			degradedShards++
		}
	}
	if degradedShards == 0 {
		t.Fatalf("stat shows no degraded shard: %+v", stat.Health)
	}
	// The replication stream outlives the degradation.
	if !f.Connected() {
		t.Fatal("follower lost its stream when the leader degraded")
	}
	if _, ok := f.Store().Get(keys[0]); !ok {
		t.Fatal("follower read path died")
	}

	// Clear the fault: the self-healer must restore writability with no
	// restart — observed from the outside as writes succeeding again.
	inj.ClearRules()
	deadline := time.Now().Add(10 * time.Second)
	for {
		cl.QueueSet([]byte("after-heal"), []byte("y"))
		rs, err := cl.Flush()
		if err != nil {
			t.Fatal(err)
		}
		if rs[0].Status == netkv.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writes still refused after the fault cleared: status %d, health %+v",
				rs[0].Status, ld.st.Health())
		}
		time.Sleep(2 * time.Millisecond)
	}
	for ld.st.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("store still degraded after the fault cleared: %+v", ld.st.Health())
		}
		time.Sleep(time.Millisecond)
	}

	// Full convergence, including any write acked just before its fsync
	// failed (leader memory only — absent from the WAL the tail streams
	// from): restart the follower below the GC horizon so every shard
	// corrects via the snapshot path.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ld.st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	f2 := startFollower(t, ld, fdir)
	defer f2.Close()
	waitConverged(t, ld, f2)
}

// TestConvergenceUnderStreamFaults keeps a lossy, slow, frame-tearing
// fault hook armed on the leader's replication stream the whole time —
// periodic connection drops, truncated frames, delayed sends — and
// demands byte-identical convergence anyway, through the follower's
// reconnect-and-resume loop and the batch contiguity check.
func TestConvergenceUnderStreamFaults(t *testing.T) {
	keys := testKeys(3000)
	ld := newLeader(t, t.TempDir(), keys)
	var n atomic.Int64
	ld.src.SetStreamFault(func(typ byte, body []byte) (FaultAction, time.Duration) {
		switch c := n.Add(1); {
		case c%97 == 0:
			return FaultDropConn, 0
		case c%61 == 0:
			return FaultTruncate, 0
		case c%13 == 0:
			return FaultDelay, time.Millisecond
		}
		return FaultPass, 0
	})
	f := startFollower(t, ld, t.TempDir())
	defer f.Close()
	for i, k := range keys {
		ld.st.Set(k, append([]byte("v-"), k...))
		if i%5 == 2 {
			ld.st.Del(keys[(i*31)%len(keys)])
		}
	}
	waitConverged(t, ld, f)
	ld.src.SetStreamFault(nil)
}
