package repl

import (
	"bufio"
	"encoding/binary"
	"net"
	"sync"
	"time"

	"github.com/repro/wormhole/internal/netkv"
	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/wal"
)

// Sender pacing: pollInterval is how often an idle shard stream re-checks
// its WAL tail (after flushing the leader's buffered records into OS
// visibility), and heartbeatEvery how often it tells the follower the
// leader's end position while idle.
const (
	pollInterval   = 2 * time.Millisecond
	heartbeatEvery = 200 * time.Millisecond
)

// FaultAction is a stream fault hook's verdict on one outbound
// replication message.
type FaultAction int

const (
	// FaultPass sends the message unchanged.
	FaultPass FaultAction = iota
	// FaultDropConn kills the subscriber's connection before the message
	// goes out; the follower reconnects and resumes from its applied
	// position.
	FaultDropConn
	// FaultTruncate sends the frame header and half the body, then kills
	// the connection — a torn message the follower must reject.
	FaultTruncate
	// FaultDelay sleeps the returned duration before sending (a stalled
	// network), then sends normally.
	FaultDelay
)

// StreamFaultFunc inspects one outbound message (its type byte and body)
// and decides its fate. The duration matters only for FaultDelay.
type StreamFaultFunc func(typ byte, body []byte) (FaultAction, time.Duration)

// Source is the leader side of replication for one durable sharded store.
// It serves any number of concurrent subscribers, each on its own
// connection handed over by the netkv server after an OpSubscribe
// handshake; every shard of every subscriber streams independently, so a
// slow shard (or a snapshot catch-up on one) never stalls the others.
type Source struct {
	st *shard.Store

	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
	fault  StreamFaultFunc
}

// SetStreamFault installs (or, with nil, removes) a fault hook consulted
// for every outbound message on every subscriber stream — the lever the
// convergence-under-faults tests use to drop, delay and tear messages
// without reaching into the transport. Takes effect for in-flight
// subscribers immediately.
func (s *Source) SetStreamFault(fn StreamFaultFunc) {
	s.mu.Lock()
	s.fault = fn
	s.mu.Unlock()
}

func (s *Source) faultFn() StreamFaultFunc {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fault
}

// NewSource returns a replication source over st, which should be durable
// (a volatile store has no WAL to ship; subscribers are refused).
func NewSource(st *shard.Store) *Source {
	return &Source{st: st, subs: make(map[*subscriber]struct{})}
}

// Close detaches every subscriber (their connections are closed) and
// refuses new ones. It must run before the netkv server's Close: the
// server waits for connection handlers, and a subscriber's handler only
// returns when its stream dies.
func (s *Source) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.DisconnectAll()
}

// DisconnectAll drops every current subscriber without closing the
// source: each follower's backoff loop re-subscribes from its applied
// position and resumes the tail. An admin lever (and the reconnect tests'
// fault injector).
func (s *Source) DisconnectAll() {
	s.mu.Lock()
	subs := make([]*subscriber, 0, len(s.subs))
	for sub := range s.subs {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	for _, sub := range subs {
		sub.fail()
	}
}

// FillStat adds the leader's per-follower lag to an OpStat response:
// records streamed but not yet acked, summed over shards (-1 when any
// shard's sent/acked positions span a generation rotation and the
// distance cannot be counted from positions alone).
func (s *Source) FillStat(st *netkv.Stat) {
	st.Role = "leader"
	st.Epoch = s.st.Epoch()
	st.FencedBy = s.st.FencedBy()
	s.mu.Lock()
	subs := make([]*subscriber, 0, len(s.subs))
	for sub := range s.subs {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	for _, sub := range subs {
		sub.mu.Lock()
		fs := netkv.FollowerStat{
			Remote:        sub.remote,
			AckAgeMS:      time.Since(sub.lastAck).Milliseconds(),
			Acked:         append([]wal.Position(nil), sub.acked...),
			SnapshotsSent: sub.snapsSent,
		}
		for i, sent := range sub.sent {
			if fs.LagRecords < 0 {
				break
			}
			acked := sub.acked[i]
			switch {
			case sent.Gen != acked.Gen:
				fs.LagRecords = -1
			case sent.Seq > acked.Seq:
				fs.LagRecords += int64(sent.Seq - acked.Seq)
			}
		}
		sub.mu.Unlock()
		st.Followers = append(st.Followers, fs)
	}
}

func (s *Source) register(sub *subscriber) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.subs[sub] = struct{}{}
	return true
}

func (s *Source) unregister(sub *subscriber) {
	s.mu.Lock()
	delete(s.subs, sub)
	s.mu.Unlock()
}

// ServeSubscriber performs the handshake for one OpSubscribe request and,
// on success, streams to the follower until the connection dies or the
// source closes. It matches the netkv ServerOptions.Subscribe hook: the
// connection is this goroutine's to consume, and returning closes it.
func (s *Source) ServeSubscriber(conn net.Conn, r *bufio.Reader, w *bufio.Writer, payload []byte) {
	n := s.st.NumShards()
	bounds := s.st.Bounds()
	fe, fhist, positions, resume, err := decodeSubscribe(payload)
	if err != nil || !s.st.Durable() {
		writeHandshake(w, hsUnavailable, s.st.Epoch(), nil, n, nil)
		return
	}
	leaderEpoch := s.st.Epoch()
	leaderHist := s.st.EpochHistory()
	// Fencing, both directions. A subscriber from a higher epoch proves a
	// newer leadership term exists: fence ourselves BEFORE answering, so no
	// write can sneak in between learning of the term and refusing. A
	// subscriber from any epoch gets hsStale if we are already fenced — a
	// fenced node must not feed a replica that would then trust a
	// superseded lineage.
	if fe > leaderEpoch {
		s.st.Fence(fe)
		writeHandshake(w, hsStale, fe, nil, n, nil)
		return
	}
	if fb := s.st.FencedBy(); fb != 0 {
		writeHandshake(w, hsStale, fb, nil, n, nil)
		return
	}
	if positions != nil && len(positions) != n {
		writeHandshake(w, hsMismatch, leaderEpoch, leaderHist, n, bounds)
		return
	}
	// A fresh follower (no positions) tails from genesis: the empty state
	// is a valid prefix of any lineage. A follower with state resumes the
	// tail only when its leadership history matches ours verbatim — any
	// difference means its positions are coordinates in some other
	// leader's WAL, and every shard must be corrected by snapshot first.
	forceSnap := false
	if positions == nil {
		positions = make([]wal.Position, n)
		for i := range positions {
			positions[i] = wal.Genesis
		}
	} else if !shard.HistoryEqual(fhist, leaderHist) {
		forceSnap = true
	}
	// Snapshot-resume entries: a follower that lost its connection mid
	// catch-up reports how far each shard's snapshot had applied, and the
	// leader continues the scan from that cursor instead of re-sending
	// the completed range. Only meaningful when the histories match — a
	// foreign lineage's cursor pairs with a foreign resume position.
	resumeFor := make([]*snapResume, n)
	if !forceSnap {
		for i := range resume {
			if resume[i].shard < n {
				r := resume[i]
				resumeFor[r.shard] = &r
			}
		}
	}
	sub := &subscriber{
		src:    s,
		epoch:  leaderEpoch,
		remote: conn.RemoteAddr().String(),
		conn:   conn,
		w:      w,
		sent:   append([]wal.Position(nil), positions...),
		acked:  append([]wal.Position(nil), positions...),
		done:   make(chan struct{}),
	}
	sub.lastAck = time.Now()
	if !s.register(sub) {
		writeHandshake(w, hsUnavailable, leaderEpoch, nil, n, nil)
		return
	}
	defer s.unregister(sub)
	if err := writeHandshake(w, hsOK, leaderEpoch, leaderHist, n, bounds); err != nil {
		return
	}
	sub.wg.Add(1 + n)
	go sub.readAcks(r)
	for i := 0; i < n; i++ {
		go sub.streamShard(s.st, i, positions[i], forceSnap, resumeFor[i])
	}
	sub.wg.Wait()
}

// subscriber is one follower connection on the leader: per-shard sender
// goroutines multiplex framed messages onto the shared writer, and the
// ack reader tracks how far the follower has durably applied.
type subscriber struct {
	src    *Source
	epoch  uint64 // the leader epoch this stream serves, fixed at handshake
	remote string
	conn   net.Conn
	w      *bufio.Writer
	wmu    sync.Mutex // serializes whole messages from the shard senders

	mu        sync.Mutex
	sent      []wal.Position // last position streamed per shard
	acked     []wal.Position // last position acked per shard
	lastAck   time.Time
	snapsSent int64

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// fail tears the subscriber down: every sender sees done, and the closed
// connection unblocks the ack reader.
func (sub *subscriber) fail() {
	sub.closeOnce.Do(func() {
		close(sub.done)
		sub.conn.Close()
	})
}

func (sub *subscriber) stopped() bool {
	select {
	case <-sub.done:
		return true
	default:
		return false
	}
}

// sleep waits d or until the subscriber dies.
func (sub *subscriber) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-sub.done:
	case <-t.C:
	}
}

// send writes one framed message; any transport error kills the stream.
// The source's fault hook, when armed, may drop the connection, tear the
// frame, or delay it first.
func (sub *subscriber) send(typ byte, body []byte) bool {
	if fn := sub.src.faultFn(); fn != nil {
		switch act, d := fn(typ, body); act {
		case FaultDropConn:
			sub.fail()
			return false
		case FaultTruncate:
			sub.wmu.Lock()
			writeMsgTruncated(sub.w, typ, body)
			sub.wmu.Unlock()
			sub.fail()
			return false
		case FaultDelay:
			sub.sleep(d)
			if sub.stopped() {
				return false
			}
		}
	}
	sub.wmu.Lock()
	err := writeMsg(sub.w, typ, body)
	sub.wmu.Unlock()
	if err != nil {
		sub.fail()
		return false
	}
	return true
}

func (sub *subscriber) setSent(shard int, p wal.Position) {
	sub.mu.Lock()
	sub.sent[shard] = p
	sub.mu.Unlock()
}

// readAcks consumes the follower→leader direction: applied-position acks.
// An ack stamped with a higher epoch than this stream's is proof the
// follower moved to a newer leadership term mid-connection: the leader
// fences itself and drops the stream.
func (sub *subscriber) readAcks(r *bufio.Reader) {
	defer sub.wg.Done()
	defer sub.fail()
	var buf []byte
	for {
		typ, body, next, err := readMsg(r, buf)
		if err != nil || typ != msgAck {
			return
		}
		buf = next
		epoch, shard, p, err := decodePosMsg(body)
		if err != nil || shard >= len(sub.acked) {
			return
		}
		if epoch > sub.epoch {
			sub.src.st.Fence(epoch)
			return
		}
		sub.mu.Lock()
		sub.acked[shard] = p
		sub.lastAck = time.Now()
		sub.mu.Unlock()
	}
}

// streamShard pumps one shard's WAL to the follower from pos onward,
// falling back to a snapshot whenever the position is unreachable: below
// the GC horizon (its generation was deleted by a covering snapshot),
// beyond the leader's history (the follower applied records a crashed
// leader lost), or pointing into a sealed generation past its end.
func (sub *subscriber) streamShard(st *shard.Store, shard int, pos wal.Position, forceSnap bool, resume *snapResume) {
	defer sub.wg.Done()
	ws := st.WAL(shard)
	// takeSnap sends the correcting snapshot. The first one may resume a
	// previous connection's partial snapshot: the scan restarts at the
	// follower's cursor and msgSnapBegin re-announces the ORIGINAL resume
	// position — the tail replayed from there covers every mutation to the
	// already-shipped range since the original scan, so skipping that
	// range loses nothing. Valid only while the original position is still
	// reachable; once consumed (or unusable) later snapshots are full.
	takeSnap := func() (wal.Position, bool) {
		r := resume
		resume = nil
		if r != nil {
			active := ws.ActiveGen()
			if r.pos.Gen == active || (r.pos.Gen < active && ws.HasWAL(r.pos.Gen)) {
				return sub.sendSnapshotFrom(st, shard, r.pos, r.cursor)
			}
		}
		return sub.sendSnapshot(st, shard)
	}
	if forceSnap {
		// History mismatch at handshake: the follower's position is in a
		// foreign lineage's coordinates — correct it before any tailing.
		next, ok := takeSnap()
		if !ok {
			return
		}
		pos = next
	}
	for !sub.stopped() {
		active := ws.ActiveGen()
		reachable := pos.Gen == active ||
			(pos.Gen < active && ws.HasWAL(pos.Gen))
		if !reachable {
			next, ok := takeSnap()
			if !ok {
				return // transport dead; fail() already ran
			}
			pos = next
			continue
		}
		sr, err := ws.OpenSegment(pos.Gen)
		if err != nil {
			if !ws.HasWAL(pos.Gen) {
				continue // unlinked under us: the reachable check falls back
			}
			// The file exists but won't open (fd exhaustion, permissions):
			// retry at the poll cadence rather than spinning on stat+open.
			sub.sleep(pollInterval)
			continue
		}
		next, fallback := sub.streamSegment(ws, shard, sr, pos)
		sr.Close()
		if fallback {
			next, ok := takeSnap()
			if !ok {
				return
			}
			pos = next
			continue
		}
		pos = next
	}
}

// streamSegment tails one generation's file from pos: it skips the
// follower's already-applied prefix, streams batches as records become
// visible, and returns the next generation's start once the segment is
// sealed and drained. fallback reports that the follower's position does
// not exist in this segment (divergence) and a snapshot must correct it.
func (sub *subscriber) streamSegment(ws *wal.Store, shard int, sr *wal.SegmentReader, pos wal.Position) (next wal.Position, fallback bool) {
	// Skip the prefix the follower already has. On a sealed generation a
	// short skip is divergence; on the active one it may just be records
	// still buffered in the leader, distinguished via EndPos.
	for sr.Seq() < pos.Seq {
		if sub.stopped() {
			return pos, false
		}
		if sr.Skip(pos.Seq-sr.Seq()) == 0 {
			if ws.ActiveGen() > sr.Gen() {
				// Sealed under us: the file is final now, so one more
				// attempt is authoritative.
				if sr.Skip(pos.Seq-sr.Seq()) == 0 {
					return pos, true
				}
				continue
			}
			ws.FlushBuffered()
			if end := ws.EndPos(); end.Gen == sr.Gen() && end.Seq < pos.Seq {
				return pos, true
			}
			sub.sleep(pollInterval)
		}
	}

	var body []byte
	lastBeat := time.Now()
	sealed := false
	for !sub.stopped() {
		body = body[:0]
		body = binary.LittleEndian.AppendUint64(body, sub.epoch)
		body = binary.LittleEndian.AppendUint16(body, uint16(shard))
		body = binary.LittleEndian.AppendUint64(body, sr.Gen())
		body = binary.LittleEndian.AppendUint64(body, sr.Seq())
		countAt := len(body)
		body = append(body, 0, 0, 0, 0)
		count := uint32(0)
		for len(body) < maxBatchBytes {
			rec, ok := sr.Next()
			if !ok {
				break
			}
			body = binary.LittleEndian.AppendUint32(body, uint32(len(rec)))
			body = append(body, rec...)
			count++
		}
		if count > 0 {
			binary.LittleEndian.PutUint32(body[countAt:], count)
			if !sub.send(msgBatch, body) {
				return pos, false
			}
			pos = wal.Position{Gen: sr.Gen(), Seq: sr.Seq()}
			sub.setSent(shard, pos)
			continue
		}
		if sealed {
			// Drained a final file: resume at the next generation.
			return wal.Position{Gen: sr.Gen() + 1, Seq: 0}, false
		}
		if ws.ActiveGen() > sr.Gen() {
			// Rotated under us: one more drain pass picks up anything
			// appended between our last read and the seal.
			sealed = true
			continue
		}
		ws.FlushBuffered()
		if time.Since(lastBeat) >= heartbeatEvery {
			lastBeat = time.Now()
			if !sub.send(msgHeartbeat, appendPosMsg(body[:0], sub.epoch, shard, ws.EndPos())) {
				return pos, false
			}
		}
		sub.sleep(pollInterval)
	}
	return pos, false
}

// sendSnapshot streams one shard's current state as a key-ordered
// snapshot — straight off the leader's lock-free scan cursor, chunk by
// chunk, never materializing the shard in memory — and returns the
// position the tail resumes from.
//
// The resume position is EndPos read BEFORE the scan starts: a record
// counted there had its mutation applied under the same leaf lock that
// logged it, so the scan (which observes every leaf strictly later)
// reflects every record below the position; records logged during the
// scan may or may not be captured, and the resumed tail re-applies them
// idempotently. This is why the fallback needs no snapshot file: it
// serves a follower below the GC horizon, one beyond a truncated
// history (a crashed leader that lost an unsynced tail), and a leader
// that has never snapshotted, identically.
func (sub *subscriber) sendSnapshot(st *shard.Store, shard int) (wal.Position, bool) {
	return sub.sendSnapshotFrom(st, shard, st.WAL(shard).EndPos(), nil)
}

// sendSnapshotFrom is sendSnapshot's general form: the scan starts at
// `start` (nil for the whole shard) and msgSnapBegin announces `pos` —
// for a full snapshot the EndPos just read, for a resumed one the
// previous connection's original position (which the caller verified is
// still reachable; re-reading EndPos here would skip mutations to the
// already-shipped range). Pairs ship prefix-compressed in the disk
// segment entry layout; each chunk restarts compression so it decodes
// with no cross-chunk context.
func (sub *subscriber) sendSnapshotFrom(st *shard.Store, shard int, pos wal.Position, start []byte) (wal.Position, bool) {
	var body []byte
	if !sub.send(msgSnapBegin, appendPosMsg(body, sub.epoch, shard, pos)) {
		return wal.Position{}, false
	}
	var prev []byte
	newChunk := func() []byte {
		body = binary.LittleEndian.AppendUint16(body[:0], uint16(shard))
		body = append(body, 0, 0, 0, 0)
		prev = prev[:0]
		return body
	}
	flushChunk := func(count uint32) bool {
		binary.LittleEndian.PutUint32(body[2:6], count)
		return sub.send(msgSnapChunk, body)
	}
	body = newChunk()
	count := uint32(0)
	ok := true
	st.ShardScan(shard, start, func(k, v []byte) bool {
		if count == 0 {
			body = appendChunkPair(body, nil, k, v)
		} else {
			body = appendChunkPair(body, prev, k, v)
		}
		prev = append(prev[:0], k...)
		count++
		if len(body) >= maxChunkBytes {
			if ok = flushChunk(count); !ok {
				return false
			}
			body = newChunk()
			count = 0
		}
		return true
	})
	if !ok {
		return wal.Position{}, false
	}
	if count > 0 && !flushChunk(count) {
		return wal.Position{}, false
	}
	if !sub.send(msgSnapEnd, binary.LittleEndian.AppendUint16(body[:0], uint16(shard))) {
		return wal.Position{}, false
	}
	sub.mu.Lock()
	sub.snapsSent++
	sub.mu.Unlock()
	sub.setSent(shard, pos)
	return pos, true
}
