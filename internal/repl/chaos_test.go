package repl

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"github.com/repro/wormhole/internal/netkv"
	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/vfs"
	"github.com/repro/wormhole/internal/wal"
)

// The chaos harness: deterministic split-brain schedules over leader/
// follower pairs whose disks are MemFS instances, so "kill" is a simulated
// power loss (every unsynced byte gone, every handle dead) and "revive" is
// a restart on the durable image. Each schedule drives kill–revive–
// promote–partition transitions and asserts the three failover
// invariants:
//
//  1. At most one node ever accepts a write that survives into the final
//     state: once the new epoch's leader fences the old one, the stale
//     leader answers StatusFenced without mutating, and any write it
//     accepted during the split-brain window is corrected away when it
//     rejoins the new lineage.
//  2. No write that was synced on the leader and replicated to the
//     follower before the kill is ever lost across the failover.
//  3. After the dust settles, full ordered scans of every surviving node
//     are byte-identical.

// chaosNode is one "machine": a durable store on its own MemFS, served
// over netkv with a replication source attached.
type chaosNode struct {
	fs  *vfs.MemFS
	dir string

	st  *shard.Store
	src *Source
	srv *netkv.Server
}

// startChaosNode boots a leader node on its own in-memory disk.
// SyncAlways: a write acknowledged by this node is synced, so invariant 2
// covers exactly the acknowledged writes.
func startChaosNode(t *testing.T, fs *vfs.MemFS, dir string, sample [][]byte) *chaosNode {
	t.Helper()
	n := &chaosNode{fs: fs, dir: dir}
	n.open(t, sample)
	return n
}

// open (re)opens the node's store from its disk image and serves it.
func (n *chaosNode) open(t *testing.T, sample [][]byte) {
	t.Helper()
	st, err := shard.Open(shard.Options{
		Dir:        n.dir,
		Shards:     3,
		Sample:     sample,
		Durability: wal.Options{Sync: wal.SyncAlways, FS: n.fs},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(st)
	srv, err := netkv.ServeOpts("127.0.0.1:0", st, netkv.ServerOptions{
		Subscribe: src.ServeSubscriber,
		StatFill:  src.FillStat,
	})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	n.st, n.src, n.srv = st, src, srv
}

func (n *chaosNode) leader() *leader { return &leader{st: n.st, src: n.src, srv: n.srv} }

// kill is power loss: the disk crashes first, then the process "dies"
// (close errors are what a dying process never gets to see).
func (n *chaosNode) kill() {
	n.fs.Crash()
	n.src.Close()
	n.srv.Close()
	n.st.Close()
}

// stop is a clean shutdown, disk intact.
func (n *chaosNode) stop(t *testing.T) {
	t.Helper()
	n.src.Close()
	n.srv.Close()
	if err := n.st.Close(); err != nil {
		t.Fatal(err)
	}
}

// revive restarts the machine on its durable image.
func (n *chaosNode) revive(t *testing.T) {
	t.Helper()
	n.fs.Restart()
	n.open(t, nil) // the MANIFEST pins the partitioner; no sample needed
}

// serveStore wraps an already-owned store (a promoted follower's) as a
// leader node on the local filesystem.
func serveStore(t *testing.T, st *shard.Store) *chaosNode {
	t.Helper()
	src := NewSource(st)
	srv, err := netkv.ServeOpts("127.0.0.1:0", st, netkv.ServerOptions{
		Subscribe: src.ServeSubscriber,
		StatFill:  src.FillStat,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &chaosNode{st: st, src: src, srv: srv}
}

// expectFenced sends one write through an existing client and demands
// StatusFenced with no mutation.
func expectFenced(t *testing.T, cl *netkv.Client, st *shard.Store, op byte, key []byte) {
	t.Helper()
	before := st.Count()
	switch op {
	case netkv.OpSet:
		cl.QueueSet(key, []byte("must-not-land"))
	case netkv.OpDel:
		cl.QueueDel(key)
	}
	rs, err := cl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Status != netkv.StatusFenced {
		t.Fatalf("write on a fenced leader: status %d, want StatusFenced", rs[0].Status)
	}
	if st.Count() != before {
		t.Fatalf("fenced refusal mutated the index: %d -> %d keys", before, st.Count())
	}
}

// TestChaosFailoverFencing is schedule 1, the clean failover: kill the
// leader, promote the converged follower (epoch 2), write on the new
// leader, revive the old one — which still believes it leads epoch 1 and
// accepts a write (the split-brain window async replication cannot
// prevent) — then deliver the fence and watch the old leader refuse
// everything before a single further index mutation, and finally rejoin
// it to the new lineage, which corrects the split-brain write away by a
// full snapshot resync.
func TestChaosFailoverFencing(t *testing.T) {
	keys := testKeys(1200)
	afs := vfs.NewMemFS()
	a := startChaosNode(t, afs, "/a", keys)
	for _, k := range keys {
		a.st.Set(k, append([]byte("v1-"), k...))
	}
	fdir := t.TempDir()
	f := startFollower(t, a.leader(), fdir)
	waitConverged(t, a.leader(), f)
	want := dump(a.st) // every byte of this is synced (SyncAlways) and replicated

	// Kill the leader; promote the follower.
	a.kill()
	st2 := f.Promote()
	if st2 == nil {
		t.Fatal("Promote returned no store")
	}
	if e := st2.Epoch(); e != 2 {
		t.Fatalf("promoted epoch %d, want 2", e)
	}
	if err := f.Close(); err != nil { // must not close the promoted store
		t.Fatal(err)
	}
	// Invariant 2: the promoted store holds every pre-kill write.
	if !bytes.Equal(want, dump(st2)) {
		t.Fatal("promoted follower lost replicated writes")
	}
	b := serveStore(t, st2)
	defer b.srv.Close()
	defer b.src.Close()
	for _, k := range keys[:200] {
		st2.Set(k, append([]byte("v2-"), k...))
	}

	// Revive the old leader: its synced image is intact, its epoch still 1.
	a.revive(t)
	if !bytes.Equal(want, dump(a.st)) {
		t.Fatal("revived leader lost synced writes")
	}
	if e := a.st.Epoch(); e != 1 {
		t.Fatalf("revived leader epoch %d, want 1", e)
	}

	// Split-brain window: nothing has told the old leader about epoch 2
	// yet, so it still accepts writes.
	cl, err := netkv.Dial(a.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	staleKey := []byte("zz-stale-epoch1-write")
	cl.QueueSet(staleKey, []byte("accepted-then-discarded"))
	rs, err := cl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Status != netkv.StatusOK {
		t.Fatalf("pre-fence write on the revived leader: status %d", rs[0].Status)
	}

	// First contact with the new lineage: the fence. From here on the old
	// leader refuses writes BEFORE the index mutates.
	if err := cl.Fence(st2.Epoch()); err != nil {
		t.Fatal(err)
	}
	expectFenced(t, cl, a.st, netkv.OpSet, []byte("post-fence-set"))
	expectFenced(t, cl, a.st, netkv.OpDel, keys[0])
	// A repeated or lower fence changes nothing.
	if err := cl.Fence(1); err != nil {
		t.Fatal(err)
	}
	expectFenced(t, cl, a.st, netkv.OpSet, []byte("post-fence-set-2"))

	// Both sides advertise their epochs in OpStat.
	stat, err := cl.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if stat.Epoch != 1 || stat.FencedBy != 2 {
		t.Fatalf("stale leader stat epoch=%d fenced_by=%d, want 1/2", stat.Epoch, stat.FencedBy)
	}
	clB, err := netkv.Dial(b.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	statB, err := clB.Stat()
	clB.Close()
	if err != nil {
		t.Fatal(err)
	}
	if statB.Epoch != 2 || statB.FencedBy != 0 || statB.Role != "leader" {
		t.Fatalf("new leader stat epoch=%d fenced_by=%d role=%q, want 2/0/leader", statB.Epoch, statB.FencedBy, statB.Role)
	}

	// The fenced leader also refuses new subscribers: a replica must not
	// seed itself from a superseded lineage.
	if _, err := Start(Options{Leader: a.srv.Addr(), DialTimeout: 2 * time.Second}); err == nil {
		t.Fatal("subscription to a fenced leader succeeded")
	}

	// Rejoin the old leader as a follower of the new one. Its history
	// ([{1}]) differs from the leader's ([{1},{2,...}]), so every shard is
	// corrected by snapshot, the split-brain write is deleted, and the new
	// lineage is adopted.
	cl.Close() // the server close below waits out its connection handler
	a.stop(t)
	f2, err := Start(Options{
		Leader:      b.srv.Addr(),
		Dir:         "/a",
		Durability:  wal.Options{Sync: wal.SyncAlways, FS: afs},
		AckInterval: 10 * time.Millisecond,
		BackoffMin:  10 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	waitConverged(t, b.leader(), f2)
	waitSnapshots(t, f2, int64(st2.NumShards()))
	// Invariant 3 is waitConverged; invariant 1's second half:
	if _, ok := f2.Store().Get(staleKey); ok {
		t.Fatal("split-brain write survived the resync")
	}
	if e := f2.Store().Epoch(); e != 2 {
		t.Fatalf("rejoined node epoch %d, want adopted 2", e)
	}
	if !shard.HistoryEqual(f2.Store().EpochHistory(), st2.EpochHistory()) {
		t.Fatal("rejoined node did not adopt the leader's history")
	}
}

// TestChaosCrashLosesUnsyncedTail is schedule 2, the same-epoch
// divergence: a SyncNone leader crashes with an unsynced WAL tail its
// follower had already applied and acked. The revived leader seals the
// torn generation and rotates; on reconnect the epoch histories still
// match (no promotion happened), so the follower offers a tail resume —
// and the leader, finding the offered position beyond its sealed
// history, corrects the follower down by snapshot. Acked-but-unsynced
// writes are the one class failover may lose, and the harness pins
// exactly where the line sits: everything up to the leader's last sync
// survives, everything past it is rolled back on both nodes identically.
func TestChaosCrashLosesUnsyncedTail(t *testing.T) {
	keys := testKeys(1000)
	lfs := vfs.NewMemFS()
	st, err := shard.Open(shard.Options{
		Dir:        "/l",
		Shards:     3,
		Sample:     keys,
		Durability: wal.Options{Sync: wal.SyncNone, FS: lfs},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := &chaosNode{fs: lfs, dir: "/l", st: st}
	n.src = NewSource(st)
	n.srv, err = netkv.ServeOpts("127.0.0.1:0", st, netkv.ServerOptions{
		Subscribe: n.src.ServeSubscriber,
		StatFill:  n.src.FillStat,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Durable prefix: 600 keys, then Snapshot() (synced, and rotates the
	// WAL). Everything after is an unsynced tail in generation 2.
	for _, k := range keys[:600] {
		n.st.Set(k, append([]byte("durable-"), k...))
	}
	if err := n.st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	wantDurable := dump(n.st)
	for _, k := range keys[600:] {
		n.st.Set(k, append([]byte("volatile-"), k...))
	}

	// The follower applies and acks the whole thing, tail included (the
	// sender's FlushBuffered makes buffered leader records streamable).
	fdir := t.TempDir()
	f := startFollower(t, n.leader(), fdir)
	waitConverged(t, n.leader(), f)
	if got := f.Store().Count(); got != int64(len(keys)) {
		t.Fatalf("follower applied %d keys, want %d", got, len(keys))
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Power loss: the unsynced tail evaporates.
	n.kill()
	n.revive(t)
	if !bytes.Equal(wantDurable, dump(n.st)) {
		t.Fatal("revived leader does not match its last synced image")
	}

	// Reconnect. Same lineage, but the follower's position is beyond the
	// sealed history: the leader must force the snapshot path, and the
	// follower must roll the lost tail back.
	f2 := startFollower(t, n.leader(), fdir)
	defer f2.Close()
	// Fresh post-crash history proves the stream is live again afterwards.
	for _, k := range keys[:100] {
		n.st.Set(k, append([]byte("after-"), k...))
	}
	waitConverged(t, n.leader(), f2)
	if f2.SnapshotsApplied() == 0 {
		t.Fatal("diverged follower reconverged without a snapshot correction")
	}
	if _, ok := f2.Store().Get(keys[999]); ok {
		t.Fatal("follower kept a write the leader lost in the crash")
	}
	n.stop(t)
}

// TestChaosPartitionAutoPromote is schedule 3: a network partition (the
// leader's server goes unreachable; its store keeps running and taking
// writes) trips the follower's heartbeat timeout, auto-promotion bumps
// the epoch, and a MultiClient configured with both addresses fails over
// to the new leader once the old one is fenced — while the old leader's
// partition-window writes are corrected away when it rejoins.
func TestChaosPartitionAutoPromote(t *testing.T) {
	keys := testKeys(800)
	ldir := t.TempDir()
	a := newLeader(t, ldir, keys)
	for _, k := range keys {
		a.st.Set(k, append([]byte("v1-"), k...))
	}

	promoted := make(chan *shard.Store, 1)
	f, err := Start(Options{
		Leader:           a.srv.Addr(),
		Dir:              t.TempDir(),
		AckInterval:      5 * time.Millisecond,
		BackoffMin:       5 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		AutoPromote:      true,
		HeartbeatTimeout: 200 * time.Millisecond,
		OnPromote:        func(st *shard.Store) { promoted <- st },
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, a, f)

	// Partition: the follower can no longer reach the leader, but the
	// leader process is alive and writing — the genuine split-brain shape.
	a.src.DisconnectAll()
	a.srv.Close()
	splitKey := []byte("zz-split-brain-write")
	a.st.Set(splitKey, []byte("partition-window"))

	var st2 *shard.Store
	select {
	case st2 = <-promoted:
	case <-time.After(10 * time.Second):
		t.Fatal("auto-promotion never fired")
	}
	if e := st2.Epoch(); e != 2 {
		t.Fatalf("auto-promoted epoch %d, want 2", e)
	}
	// A manual Promote after the automatic one is a no-op returning the
	// same store, not a second bump.
	if again := f.Promote(); again != st2 {
		t.Fatal("manual Promote after auto-promotion returned a different store")
	}
	if e := st2.Epoch(); e != 2 {
		t.Fatalf("second Promote bumped the epoch to %d", e)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b := serveStore(t, st2)
	defer b.srv.Close()
	defer b.src.Close()

	// Partition heals: the old leader's server comes back (same store,
	// new listener), and the new leader fences it — the whkv auto-promote
	// hook's first act.
	srvA2, err := netkv.ServeOpts("127.0.0.1:0", a.st, netkv.ServerOptions{
		Subscribe: a.src.ServeSubscriber,
		StatFill:  a.src.FillStat,
	})
	if err != nil {
		t.Fatal(err)
	}
	clA, err := netkv.Dial(srvA2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := clA.Fence(st2.Epoch()); err != nil {
		t.Fatal(err)
	}
	expectFenced(t, clA, a.st, netkv.OpSet, []byte("post-heal-stale-write"))
	clA.Close()

	// The failover-aware client prefers the old address, gets
	// StatusFenced, rotates, and lands the write on the new leader.
	mc, err := netkv.DialMulti(srvA2.Addr(), b.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	afterKey := []byte("after-failover-write")
	if err := mc.Set(afterKey, []byte("landed")); err != nil {
		t.Fatal(err)
	}
	if mc.Addr() != b.srv.Addr() {
		t.Fatalf("MultiClient settled on %s, want the new leader %s", mc.Addr(), b.srv.Addr())
	}
	if _, ok := st2.Get(afterKey); !ok {
		t.Fatal("failover write missing on the new leader")
	}
	if _, ok := a.st.Get(afterKey); ok {
		t.Fatal("failover write landed on the fenced leader")
	}

	// The old leader rejoins the new lineage; its partition-window write
	// is corrected away and the final scans are byte-identical.
	srvA2.Close()
	a.src.Close()
	if err := a.st.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := Start(Options{
		Leader:      b.srv.Addr(),
		Dir:         ldir,
		AckInterval: 10 * time.Millisecond,
		BackoffMin:  10 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	waitConverged(t, b.leader(), f2)
	if _, ok := f2.Store().Get(splitKey); ok {
		t.Fatal("partition-window write survived the rejoin")
	}
	if e := f2.Store().Epoch(); e != 2 {
		t.Fatalf("rejoined node epoch %d, want 2", e)
	}
}

// --- Follower lifecycle edges, all meant for -race ---

// TestPromoteTwice: the second Promote returns the same store and the
// epoch is bumped exactly once.
func TestPromoteTwice(t *testing.T) {
	keys := testKeys(300)
	ld := newLeader(t, t.TempDir(), keys)
	for _, k := range keys {
		ld.st.Set(k, k)
	}
	f := startFollower(t, ld, t.TempDir())
	waitConverged(t, ld, f)
	st1 := f.Promote()
	st2 := f.Promote()
	if st1 == nil || st1 != st2 {
		t.Fatalf("Promote twice: %p then %p", st1, st2)
	}
	if e := st1.Epoch(); e != 2 {
		t.Fatalf("epoch %d after double promote, want 2", e)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPromoteAfterClose: a closed follower's store is gone; Promote must
// refuse with nil, not hand out a closed store.
func TestPromoteAfterClose(t *testing.T) {
	keys := testKeys(100)
	ld := newLeader(t, t.TempDir(), keys)
	f := startFollower(t, ld, t.TempDir())
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if st := f.Promote(); st != nil {
		t.Fatal("Promote after Close returned a store")
	}
}

// TestCloseDuringSnapshotMerge closes the follower while a snapshot
// catch-up is mid-merge: no deadlock, no panic, and the half-merged
// shards are reported by CatchingUp.
func TestCloseDuringSnapshotMerge(t *testing.T) {
	keys := testKeys(4000)
	ld := newLeader(t, t.TempDir(), keys)
	val := bytes.Repeat([]byte("x"), 512)
	for _, k := range keys {
		ld.st.Set(k, val)
	}
	if err := ld.st.Snapshot(); err != nil { // fresh follower => snapshot path
		t.Fatal(err)
	}
	f := startFollower(t, ld, t.TempDir())
	// Close the instant a merge is observably in flight; if the transfer
	// outruns the poll, closing after it is still a valid (quieter) run.
	deadline := time.Now().Add(5 * time.Second)
	for len(f.CatchingUp()) == 0 && f.SnapshotsApplied() == 0 && time.Now().Before(deadline) {
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if st := f.Promote(); st != nil {
		t.Fatal("Promote after Close returned a store")
	}
}

// TestAutoPromoteRacesManualPromote arms a hair-trigger auto-promote,
// kills the leader, and calls Promote manually from several goroutines at
// once: exactly one promotion must happen (epoch 2, one store), whoever
// wins.
func TestAutoPromoteRacesManualPromote(t *testing.T) {
	keys := testKeys(200)
	ld := newLeader(t, t.TempDir(), keys)
	for _, k := range keys {
		ld.st.Set(k, k)
	}
	var autoStores sync.Map
	f, err := Start(Options{
		Leader:           ld.srv.Addr(),
		Dir:              t.TempDir(),
		AckInterval:      5 * time.Millisecond,
		BackoffMin:       5 * time.Millisecond,
		BackoffMax:       20 * time.Millisecond,
		AutoPromote:      true,
		HeartbeatTimeout: 50 * time.Millisecond,
		OnPromote:        func(st *shard.Store) { autoStores.Store(st, true) },
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, ld, f)
	ld.src.Close()
	ld.srv.Close()

	var wg sync.WaitGroup
	stores := make([]*shard.Store, 4)
	for i := range stores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 20 * time.Millisecond)
			stores[i] = f.Promote()
		}(i)
	}
	wg.Wait()
	var st *shard.Store
	for _, s := range stores {
		if s == nil {
			t.Fatal("concurrent Promote returned nil before Close")
		}
		if st == nil {
			st = s
		} else if s != st {
			t.Fatal("concurrent Promotes returned different stores")
		}
	}
	autoStores.Range(func(k, _ any) bool {
		if k.(*shard.Store) != st {
			t.Fatal("auto-promotion returned a different store")
		}
		return true
	})
	if e := st.Epoch(); e != 2 {
		t.Fatalf("epoch %d after racing promotions, want exactly one bump to 2", e)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConnectRetryLoopShape mirrors whkv's -connect-timeout contract at
// the package level: Start against a dead address fails fast with a dial
// error the retry loop can keep probing, and succeeds the moment a
// leader appears.
func TestConnectRetryLoopShape(t *testing.T) {
	if _, err := Start(Options{Leader: "127.0.0.1:1", DialTimeout: time.Second}); err == nil {
		t.Fatal("Start against a dead address succeeded")
	}
	keys := testKeys(100)
	ld := newLeader(t, t.TempDir(), keys)
	for i := 0; i < 20; i++ { // the whkv loop: retry until the leader is up
		f, err := Start(Options{Leader: ld.srv.Addr()})
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		f.Close()
		return
	}
	t.Fatal("retry loop never connected to a live leader")
}
