package repl

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/wormhole/internal/netkv"
	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/vfs"
	"github.com/repro/wormhole/internal/wal"
)

// Options configures a Follower.
type Options struct {
	// Leader is the leader's netkv address.
	Leader string
	// Dir roots the follower's own durable store (its WAL records the
	// applied mutations and, interleaved, the applied leader positions, so
	// a restarted follower resumes the tail instead of resyncing). Empty
	// means a volatile follower that resyncs from scratch every start.
	Dir string
	// Durability configures the follower's WAL; meaningful only with Dir.
	Durability wal.Options
	// AckInterval is how often applied positions are reported upstream
	// (default 100ms) — the leader's lag visibility, not a correctness
	// knob.
	AckInterval time.Duration
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// BackoffMin/BackoffMax bound the reconnect backoff (default
	// 100ms/5s).
	BackoffMin, BackoffMax time.Duration
	// AutoPromote arms leader-loss failover: when no leader contact
	// (message or successful handshake) happens for HeartbeatTimeout, the
	// follower promotes itself — bumping the replication epoch past any it
	// has observed, so the old leader is fenced on first contact with the
	// new lineage.
	AutoPromote bool
	// HeartbeatTimeout is the silence that triggers auto-promotion
	// (default 2s; the leader heartbeats idle streams every 200ms).
	HeartbeatTimeout time.Duration
	// OnPromote, when non-nil, runs after an automatic promotion with the
	// newly-writable store. Manual Promote calls do not invoke it.
	OnPromote func(*shard.Store)
	// Logf, when non-nil, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

func (o *Options) normalize() {
	if o.AckInterval <= 0 {
		o.AckInterval = 100 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 2 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
}

// Follower subscribes a local sharded store to a leader and keeps it
// converging: WAL batches apply through the normal mutation path (so the
// lock-free read/scan paths serve traffic throughout), snapshot catch-up
// merge-applies a shard image when the tail is unreachable, and applied
// positions are logged into the follower's own WAL for durable resume.
// Reads go to Store; writes belong on the leader until Promote.
type Follower struct {
	o  Options
	st *shard.Store

	mu        sync.Mutex
	applied   []wal.Position
	leaderEnd []wal.Position
	snap      map[int]*snapState
	conn      net.Conn
	lastAck   time.Time
	connEpoch uint64        // leader epoch of the live connection
	resync    *resyncTarget // full-resync in progress (history mismatch)

	recordsApplied   atomic.Int64
	snapshotsApplied atomic.Int64
	connected        atomic.Bool
	promoted         atomic.Bool
	everConnected    atomic.Bool
	observedEpoch    atomic.Uint64 // highest leader epoch ever seen
	lastContact      atomic.Int64  // unix nanos of the last leader contact

	// lifeMu serializes Promote and Close — the auto-promote monitor races
	// both a manual promotion and a shutdown, and exactly one must win.
	lifeMu sync.Mutex
	closed bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	// monWG tracks the auto-promote monitor separately from wg: the
	// monitor itself calls Promote→halt→wg.Wait(), so putting it in wg
	// would self-deadlock.
	monWG sync.WaitGroup
}

// resyncTarget is the lineage the follower is switching to: when the
// handshake finds its leadership history differs from the leader's, every
// shard is corrected by snapshot, and only once the last one lands is the
// leader's (epoch, history) adopted and persisted. A crash mid-resync
// leaves the old history in place, so the next handshake resyncs again —
// never a half-adopted lineage.
type resyncTarget struct {
	epoch   uint64
	hist    []shard.EpochEntry
	pending map[int]bool
}

// snapState is one shard's in-progress snapshot catch-up: the follower's
// pre-existing keys (key-ordered, like the incoming chunks) are merged
// against the stream, so stale keys are deleted and live ones updated
// through the same mutation path as everything else. pos is where the
// tail resumes once the merge completes. The merge is incremental —
// cursor bounds the local keys already reconciled, and each chunk
// reconciles only the range it covers, in bounded batches — so the
// follower never materializes the shard, mirroring the leader's
// streaming side.
type snapState struct {
	pos    wal.Position
	cursor []byte // reconcile scans resume here; nil = start of the shard
}

// Start opens (or creates) the local store, performs the initial
// subscribe handshake — a fresh follower learns the leader's partitioner
// boundaries from it, since routing must be byte-identical on both ends —
// and begins streaming in the background, reconnecting with backoff when
// the connection drops. It fails fast when the leader is unreachable or
// incompatible at start.
func Start(o Options) (*Follower, error) {
	o.normalize()
	f := &Follower{o: o, stop: make(chan struct{})}

	// A durable follower that has run before recovers its store (the
	// MANIFEST pins the partitioning) and its applied positions first, so
	// the handshake can resume the tail.
	if o.Dir != "" {
		if _, err := vfs.OrOS(o.Durability.FS).Stat(filepath.Join(o.Dir, "MANIFEST")); err == nil {
			st, err := shard.Open(shard.Options{Dir: o.Dir, Durability: o.Durability})
			if err != nil {
				return nil, err
			}
			f.st = st
			f.applied = make([]wal.Position, st.NumShards())
			for i := range f.applied {
				f.applied[i] = wal.Genesis
				if p, ok := st.WAL(i).RecoveredPosition(); ok {
					f.applied[i] = p
				}
			}
		}
	}

	conn, r, err := f.handshake()
	if err != nil {
		if f.st != nil {
			f.st.Close()
		}
		return nil, err
	}
	f.leaderEnd = make([]wal.Position, f.st.NumShards())
	f.snap = make(map[int]*snapState)
	f.setConn(conn)
	f.wg.Add(1)
	go f.run(conn, r)
	if o.AutoPromote {
		f.monWG.Add(1)
		go f.monitor()
	}
	return f, nil
}

// Store returns the follower's local sharded store: the read surface
// (point gets, scans, batched reads, pinned readers) is live the whole
// time, serving whatever prefix has been applied.
func (f *Follower) Store() *shard.Store { return f.st }

func (f *Follower) logf(format string, args ...any) {
	if f.o.Logf != nil {
		f.o.Logf(format, args...)
	}
}

func (f *Follower) stopping() bool {
	select {
	case <-f.stop:
		return true
	default:
		return false
	}
}

func (f *Follower) setConn(c net.Conn) {
	f.mu.Lock()
	f.conn = c
	f.mu.Unlock()
	f.connected.Store(c != nil)
}

// handshake dials the leader and negotiates positions. On the very first
// contact of a fresh follower it also creates the local store from the
// leader's boundaries.
func (f *Follower) handshake() (net.Conn, *bufio.Reader, error) {
	conn, err := net.DialTimeout("tcp", f.o.Leader, f.o.DialTimeout)
	if err != nil {
		return nil, nil, fmt.Errorf("repl: dial leader %s: %w", f.o.Leader, err)
	}
	fail := func(err error) (net.Conn, *bufio.Reader, error) {
		conn.Close()
		return nil, nil, err
	}
	var positions []wal.Position
	var ownEpoch uint64
	var ownHist []shard.EpochEntry
	var resume []snapResume
	if f.st != nil {
		positions = f.appliedSnapshot()
		ownEpoch = f.st.Epoch()
		ownHist = f.st.EpochHistory()
		// Half-finished snapshot merges survive the reconnect: report each
		// one's announced position and applied-through cursor so the leader
		// can continue the scan instead of re-sending completed ranges.
		f.mu.Lock()
		for sh, st := range f.snap {
			if st.cursor != nil {
				resume = append(resume, snapResume{shard: sh, pos: st.pos, cursor: st.cursor})
			}
		}
		f.mu.Unlock()
		sort.Slice(resume, func(i, j int) bool { return resume[i].shard < resume[j].shard })
	}
	// The subscribe request travels as one netkv batch frame carrying a
	// single OpSubscribe whose key is the handshake payload; the response
	// and everything after it are this package's framing.
	payload := encodeSubscribe(ownEpoch, ownHist, positions, resume)
	var req []byte
	req = binary.LittleEndian.AppendUint32(req, uint32(2+1+4+len(payload)+4))
	req = binary.LittleEndian.AppendUint16(req, 1)
	req = append(req, netkv.OpSubscribe)
	req = binary.LittleEndian.AppendUint32(req, uint32(len(payload)))
	req = append(req, payload...)
	req = binary.LittleEndian.AppendUint32(req, 0)
	if _, err := conn.Write(req); err != nil {
		return fail(fmt.Errorf("repl: subscribe to %s: %w", f.o.Leader, err))
	}
	// A deadline brackets the handshake: a non-leader's refusal frame is
	// detected from its first bytes (errNotLeader), and a server that
	// sends nothing at all must not block the magic read forever.
	conn.SetReadDeadline(time.Now().Add(f.o.DialTimeout))
	r := bufio.NewReaderSize(conn, 1<<20)
	status, leaderEpoch, leaderHist, nshards, bounds, err := readHandshake(r)
	if err != nil {
		if errors.Is(err, errNotLeader) {
			return fail(fmt.Errorf("repl: %s is not a replication leader (serve it with -dir)", f.o.Leader))
		}
		return fail(fmt.Errorf("repl: handshake with %s: %w", f.o.Leader, err))
	}
	conn.SetReadDeadline(time.Time{})
	if leaderEpoch > f.observedEpoch.Load() {
		f.observedEpoch.Store(leaderEpoch)
	}
	switch status {
	case hsOK:
	case hsMismatch:
		return fail(fmt.Errorf("repl: leader %s has %d shards, local store has %d",
			f.o.Leader, nshards, len(positions)))
	case hsStale:
		return fail(fmt.Errorf("repl: %s is a stale leader, outbid by epoch %d", f.o.Leader, leaderEpoch))
	default:
		return fail(fmt.Errorf("repl: leader %s refused subscription (volatile or closing)", f.o.Leader))
	}
	if ownEpoch > leaderEpoch {
		// Defensive: a correct leader fences itself and answers hsStale on
		// seeing our higher epoch. Never follow a lower-epoch lineage.
		return fail(fmt.Errorf("repl: leader %s is at epoch %d, below ours (%d)",
			f.o.Leader, leaderEpoch, ownEpoch))
	}
	if f.st == nil {
		st, err := f.createStore(bounds)
		if err != nil {
			return fail(err)
		}
		// A fresh store is the empty prefix of every lineage: adopt the
		// leader's outright so a restart re-handshakes with it.
		st.AdoptHistory(leaderEpoch, leaderHist)
		f.st = st
		f.applied = make([]wal.Position, st.NumShards())
		for i := range f.applied {
			f.applied[i] = wal.Genesis
		}
	} else if !boundsEqual(f.st.Bounds(), bounds) {
		return fail(fmt.Errorf("repl: leader %s partitioner boundaries differ from the local store's", f.o.Leader))
	}
	f.mu.Lock()
	f.connEpoch = leaderEpoch
	f.resync = nil
	if positions != nil && !shard.HistoryEqual(ownHist, leaderHist) {
		// Different lineage: the leader snapshots every shard before any
		// tailing (it made the same comparison). Adopt its history only
		// once the last correction lands.
		pending := make(map[int]bool, f.st.NumShards())
		for i := 0; i < f.st.NumShards(); i++ {
			pending[i] = true
		}
		f.resync = &resyncTarget{epoch: leaderEpoch, hist: leaderHist, pending: pending}
		f.logf("repl: leader %s lineage differs (epoch %d vs %d): full snapshot resync",
			f.o.Leader, leaderEpoch, ownEpoch)
	}
	f.mu.Unlock()
	f.lastContact.Store(time.Now().UnixNano())
	f.everConnected.Store(true)
	return conn, r, nil
}

func (f *Follower) createStore(bounds [][]byte) (*shard.Store, error) {
	p := shard.NewExplicit(bounds)
	if !boundsEqual(p.Bounds(), bounds) {
		return nil, errors.New("repl: leader sent non-canonical partitioner boundaries")
	}
	if f.o.Dir == "" {
		return shard.New(shard.Options{Partitioner: p}), nil
	}
	return shard.Open(shard.Options{Dir: f.o.Dir, Partitioner: p, Durability: f.o.Durability})
}

func boundsEqual(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// run is the streaming loop: apply until the connection dies, then
// reconnect with backoff (re-handshaking from the current applied
// positions) until promoted or closed.
func (f *Follower) run(conn net.Conn, r *bufio.Reader) {
	defer f.wg.Done()
	backoff := f.o.BackoffMin
	for {
		err := f.stream(conn, r)
		conn.Close()
		f.setConn(nil)
		if f.stopping() {
			// Keep f.snap as-is: after a Promote/Close, CatchingUp reports
			// which shards a half-finished merge was abandoned on.
			return
		}
		f.discardSnapStates()
		f.logf("repl: stream from %s ended: %v; reconnecting", f.o.Leader, err)
		for {
			// Jittered (uniform in [backoff/2, backoff]): followers that all
			// lost the same leader must not redial it in lockstep.
			t := time.NewTimer(backoff/2 + rand.N(backoff/2+1))
			select {
			case <-f.stop:
				t.Stop()
				return
			case <-t.C:
			}
			if backoff *= 2; backoff > f.o.BackoffMax {
				backoff = f.o.BackoffMax
			}
			c2, r2, err := f.handshake()
			if err != nil {
				f.logf("repl: reconnect: %v", err)
				continue
			}
			conn, r = c2, r2
			f.setConn(conn)
			backoff = f.o.BackoffMin
			break
		}
	}
}

// discardSnapStates resets per-connection catch-up state on reconnect.
// Half-finished snapshot merges are KEPT: the next handshake offers them
// as resume entries, and snapBegin decides per shard whether the leader
// actually resumed (same announced position — cursor stands) or started
// over (different position — fresh state).
func (f *Follower) discardSnapStates() {
	f.mu.Lock()
	// A half-finished lineage resync restarts from scratch: the next
	// handshake re-detects the history mismatch.
	f.resync = nil
	f.mu.Unlock()
}

// stream reads and applies messages until the connection errors. Every
// epoch-stamped message must match the handshake epoch — a frame from
// another term means the sender's identity changed mid-connection, and the
// only safe response is to drop the stream and re-handshake.
func (f *Follower) stream(conn net.Conn, r *bufio.Reader) error {
	w := bufio.NewWriterSize(conn, 1<<16)
	f.mu.Lock()
	f.lastAck = time.Now()
	epoch := f.connEpoch
	f.mu.Unlock()
	var buf []byte
	for {
		typ, body, next, err := readMsg(r, buf)
		if err != nil {
			return err
		}
		buf = next
		f.lastContact.Store(time.Now().UnixNano())
		switch typ {
		case msgBatch:
			err = f.applyBatch(body, epoch)
		case msgSnapBegin:
			err = f.snapBegin(body, epoch)
		case msgSnapChunk:
			err = f.snapChunk(body)
		case msgSnapEnd:
			err = f.snapEnd(body)
		case msgHeartbeat:
			var e uint64
			var shard int
			var p wal.Position
			if e, shard, p, err = decodePosMsg(body); err == nil {
				if e != epoch {
					err = fmt.Errorf("%w: heartbeat from epoch %d on an epoch-%d stream", errProto, e, epoch)
				} else if shard < len(f.leaderEnd) {
					f.mu.Lock()
					f.leaderEnd[shard] = p
					f.mu.Unlock()
				}
			}
		default:
			err = fmt.Errorf("%w: unexpected message type %d", errProto, typ)
		}
		if err != nil {
			return err
		}
		// A finished snapshot catch-up acks immediately — it may have moved
		// the position a whole generation — the rest rate-limit.
		if err := f.maybeAck(w, typ == msgSnapEnd); err != nil {
			return err
		}
	}
}

// applyBatch applies one shard's WAL batch idempotently: records the
// follower already holds (an overlap from a resumed stream) are skipped by
// position arithmetic, the rest run through the store's normal mutation
// path — and therefore into the follower's own WAL — and the new position
// is logged durably after them, so prefix semantics covers both.
func (f *Follower) applyBatch(body []byte, epoch uint64) error {
	if len(body) < 30 {
		return fmt.Errorf("%w: short batch", errProto)
	}
	e := binary.LittleEndian.Uint64(body[:8])
	shard := int(binary.LittleEndian.Uint16(body[8:10]))
	gen := binary.LittleEndian.Uint64(body[10:18])
	start := binary.LittleEndian.Uint64(body[18:26])
	count := binary.LittleEndian.Uint32(body[26:30])
	rest := body[30:]
	if e != epoch {
		return fmt.Errorf("%w: batch from epoch %d on an epoch-%d stream", errProto, e, epoch)
	}
	if shard >= f.st.NumShards() {
		return fmt.Errorf("%w: batch for shard %d", errProto, shard)
	}
	cur := f.appliedPos(shard)
	if gen == cur.Gen && start > cur.Seq {
		// A batch starting beyond the applied position would silently skip
		// the records in between (lost to a dropped or torn message):
		// treat it as a dead stream and reconnect, which re-handshakes
		// from the position we actually hold.
		return fmt.Errorf("%w: batch gap on shard %d: starts at %d, applied through %d",
			errProto, shard, start, cur.Seq)
	}
	var skip uint64
	if gen == cur.Gen && start < cur.Seq {
		skip = cur.Seq - start
	}
	applied := 0
	for i := uint64(0); i < uint64(count); i++ {
		if len(rest) < 4 {
			return fmt.Errorf("%w: truncated batch record", errProto)
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint64(n) > uint64(len(rest)) {
			return fmt.Errorf("%w: truncated batch record", errProto)
		}
		payload := rest[:n]
		rest = rest[n:]
		if i < skip {
			continue
		}
		if err := f.applyRecord(payload); err != nil {
			return err
		}
		applied++
	}
	f.recordsApplied.Add(int64(applied))
	end := wal.Position{Gen: gen, Seq: start + uint64(count)}
	if !cur.Less(end) {
		// A fully-overlapping replay (possible across a reconnect) must
		// never move the position backward.
		return nil
	}
	f.setApplied(shard, end)
	if ws := f.st.WAL(shard); ws != nil {
		if err := ws.AppendPosition(end); err != nil && err != wal.ErrClosed {
			f.logf("repl: logging position for shard %d: %v", shard, err)
		}
	}
	f.mu.Lock()
	if end.Gen > f.leaderEnd[shard].Gen ||
		(end.Gen == f.leaderEnd[shard].Gen && end.Seq > f.leaderEnd[shard].Seq) {
		f.leaderEnd[shard] = end
	}
	f.mu.Unlock()
	return nil
}

// applyRecord applies one streamed WAL payload through the mutation path.
// Buffers are copied: the index retains what it is given, and the message
// buffer is reused.
func (f *Follower) applyRecord(payload []byte) error {
	op, key, val, err := wal.DecodeRecord(payload)
	if err != nil {
		return err
	}
	switch op {
	case wal.RecordSet:
		kv := make([]byte, len(key)+len(val))
		copy(kv, key)
		copy(kv[len(key):], val)
		f.st.Set(kv[:len(key):len(key)], kv[len(key):])
	case wal.RecordDel:
		f.st.Del(append([]byte(nil), key...))
	case wal.RecordPos:
		// A position marker from the leader's own follower past (a
		// promoted leader): a record ordinal, not a mutation.
	}
	return nil
}

func (f *Follower) snapBegin(body []byte, epoch uint64) error {
	e, shard, pos, err := decodePosMsg(body)
	if err != nil {
		return fmt.Errorf("%w: bad snapshot begin", errProto)
	}
	if e != epoch {
		return fmt.Errorf("%w: snapshot from epoch %d on an epoch-%d stream", errProto, e, epoch)
	}
	if shard >= f.st.NumShards() {
		return fmt.Errorf("%w: snapshot for shard %d", errProto, shard)
	}
	f.mu.Lock()
	if st := f.snap[shard]; st != nil && st.pos == pos {
		// The leader resumed our half-finished snapshot (it announced the
		// same position we reported): keep the cursor, chunks continue
		// from where the previous connection died.
	} else {
		f.snap[shard] = &snapState{pos: pos}
	}
	f.mu.Unlock()
	return nil
}

// reconcileLocal deletes the shard's local keys in [st.cursor, hi) that
// are absent from present (the snapshot pairs covering that range, key-
// ordered) — they were removed in leader history this follower never saw.
// A nil hi means "to the end of the shard". Keys are collected in bounded
// batches and deleted between scans, so memory stays O(batch) however
// large the shard or the locally-extra range is.
func (f *Follower) reconcileLocal(shard int, st *snapState, hi []byte, present [][]byte) {
	const reconcileBatch = 4096
	j := 0
	start := st.cursor
	for {
		doomed := make([][]byte, 0, 64)
		var last []byte
		more := false
		n := 0
		f.st.ShardScan(shard, start, func(k, _ []byte) bool {
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return false
			}
			if n++; n > reconcileBatch {
				more = true
				return false
			}
			last = append(last[:0], k...)
			for j < len(present) && bytes.Compare(present[j], k) < 0 {
				j++
			}
			if j >= len(present) || !bytes.Equal(present[j], k) {
				doomed = append(doomed, append([]byte(nil), k...))
			}
			return true
		})
		for _, k := range doomed {
			f.st.Del(k)
		}
		if !more {
			return
		}
		start = append(last, 0) // byte-successor: resume strictly after last
	}
}

func (f *Follower) snapChunk(body []byte) error {
	if len(body) < 6 {
		return fmt.Errorf("%w: short snapshot chunk", errProto)
	}
	shard := int(binary.LittleEndian.Uint16(body[:2]))
	count := binary.LittleEndian.Uint32(body[2:6])
	rest := body[6:]
	f.mu.Lock()
	st := f.snap[shard]
	f.mu.Unlock()
	if st == nil {
		return fmt.Errorf("%w: snapshot chunk without begin", errProto)
	}
	// Decode the chunk's prefix-compressed pairs (values alias the message
	// buffer; only consumed within this call), then reconcile the local
	// key range they cover, then apply them.
	keys, vals, err := decodeChunkPairs(rest, count)
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		return nil
	}
	hi := append(append([]byte(nil), keys[len(keys)-1]...), 0)
	f.reconcileLocal(shard, st, hi, keys)
	for i, key := range keys {
		kv := make([]byte, len(key)+len(vals[i]))
		copy(kv, key)
		copy(kv[len(key):], vals[i])
		f.st.Set(kv[:len(key):len(key)], kv[len(key):])
	}
	st.cursor = hi
	return nil
}

func (f *Follower) snapEnd(body []byte) error {
	if len(body) != 2 {
		return fmt.Errorf("%w: bad snapshot end", errProto)
	}
	shard := int(binary.LittleEndian.Uint16(body[:2]))
	f.mu.Lock()
	st := f.snap[shard]
	delete(f.snap, shard)
	f.mu.Unlock()
	if st == nil {
		return fmt.Errorf("%w: snapshot end without begin", errProto)
	}
	// Everything local past the last chunk was deleted in leader history.
	f.reconcileLocal(shard, st, nil, nil)
	// The position may move BACKWARD here relative to a diverged past:
	// that is the correction, not a bug.
	pos := st.pos
	f.setApplied(shard, pos)
	if ws := f.st.WAL(shard); ws != nil {
		if err := ws.AppendPosition(pos); err != nil && err != wal.ErrClosed {
			f.logf("repl: logging position for shard %d: %v", shard, err)
		}
	}
	f.snapshotsApplied.Add(1)
	// During a lineage resync, adopting the leader's (epoch, history) waits
	// for the LAST shard's correction: until then our positions are a mix
	// of two lineages and the old history — which forces the resync to
	// repeat after a crash — is the safe one to re-handshake with.
	f.mu.Lock()
	if rt := f.resync; rt != nil {
		delete(rt.pending, shard)
		if len(rt.pending) == 0 {
			f.resync = nil
			f.mu.Unlock()
			if err := f.st.AdoptHistory(rt.epoch, rt.hist); err != nil {
				f.logf("repl: persisting adopted epoch %d: %v", rt.epoch, err)
			} else {
				f.logf("repl: adopted leader lineage at epoch %d", rt.epoch)
			}
			return nil
		}
	}
	f.mu.Unlock()
	return nil
}

// maybeAck reports applied positions upstream, rate-limited to
// AckInterval (or immediately when force).
func (f *Follower) maybeAck(w *bufio.Writer, force bool) error {
	f.mu.Lock()
	due := force || time.Since(f.lastAck) >= f.o.AckInterval
	if due {
		f.lastAck = time.Now()
	}
	positions := f.applied
	epoch := f.connEpoch
	if due {
		positions = append([]wal.Position(nil), f.applied...)
	}
	f.mu.Unlock()
	if !due {
		return nil
	}
	var body []byte
	for i, p := range positions {
		if err := writeMsg(w, msgAck, appendPosMsg(body[:0], epoch, i, p)); err != nil {
			return err
		}
	}
	return nil
}

func (f *Follower) appliedPos(shard int) wal.Position {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied[shard]
}

func (f *Follower) setApplied(shard int, p wal.Position) {
	f.mu.Lock()
	f.applied[shard] = p
	f.mu.Unlock()
}

func (f *Follower) appliedSnapshot() []wal.Position {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]wal.Position(nil), f.applied...)
}

// Applied returns the per-shard leader positions this follower has
// applied up to.
func (f *Follower) Applied() []wal.Position { return f.appliedSnapshot() }

// LeaderEnd returns the leader's per-shard end positions as last heard
// (via heartbeats and batch bounds).
func (f *Follower) LeaderEnd() []wal.Position {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]wal.Position(nil), f.leaderEnd...)
}

// Lag returns the total records between the leader's last-known end and
// the applied positions. known is false when any shard's generations
// differ (the distance crosses a rotation and cannot be counted from
// positions alone) or the leader's end is not known yet.
func (f *Follower) Lag() (records int64, known bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	known = true
	for i, end := range f.leaderEnd {
		ap := f.applied[i]
		if end.Gen != ap.Gen {
			known = false
			continue
		}
		if end.Seq > ap.Seq {
			records += int64(end.Seq - ap.Seq)
		}
	}
	return records, known
}

// RecordsApplied returns the count of leader WAL records applied since
// Start; SnapshotsApplied how many shard snapshot catch-ups ran.
func (f *Follower) RecordsApplied() int64   { return f.recordsApplied.Load() }
func (f *Follower) SnapshotsApplied() int64 { return f.snapshotsApplied.Load() }

// Connected reports whether a stream to the leader is currently live.
func (f *Follower) Connected() bool { return f.connected.Load() }

// EverConnected reports whether any handshake has ever succeeded — the
// gate both for -connect-timeout (a follower that never reached its
// leader should fail fast, not serve an empty store) and for
// auto-promotion (a node that never saw the leader has no business
// declaring it dead).
func (f *Follower) EverConnected() bool { return f.everConnected.Load() }

// ObservedEpoch returns the highest leader epoch this follower has seen.
func (f *Follower) ObservedEpoch() uint64 { return f.observedEpoch.Load() }

// CatchingUp returns the shards with a snapshot catch-up in progress —
// their reads pass through mixed states until the merge completes. After
// Promote or Close it reports the shards whose merge was abandoned
// half-finished (they may retain keys the leader had deleted).
func (f *Follower) CatchingUp() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int, 0, len(f.snap))
	for sh := range f.snap {
		out = append(out, sh)
	}
	sort.Ints(out)
	return out
}

// FillStat adds follower fields to an OpStat response.
func (f *Follower) FillStat(st *netkv.Stat) {
	st.Epoch = f.st.Epoch()
	st.FencedBy = f.st.FencedBy()
	st.LeaderEpoch = f.observedEpoch.Load()
	if f.promoted.Load() {
		st.Role = "standalone (promoted)"
		return
	}
	st.Role = "follower"
	st.Leader = f.o.Leader
	st.Applied = f.Applied()
	st.LeaderEnd = f.LeaderEnd()
	lag, known := f.Lag()
	if !known {
		lag = -1
	}
	st.LagRecords = &lag
	st.SnapshotsApplied = f.SnapshotsApplied()
	st.Connected = f.Connected()
}

// halt stops streaming and reconnecting, and waits the loop out.
func (f *Follower) halt() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.mu.Lock()
	conn := f.conn
	f.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	f.wg.Wait()
}

// monitor watches for leader loss when AutoPromote is armed: once any
// handshake has succeeded, HeartbeatTimeout of silence (no message, no
// successful reconnect — the leader heartbeats idle streams every 200ms,
// so silence means the leader or the path to it is gone) promotes the
// follower. The promotion bumps the epoch past every one observed, so the
// old leader is fenced on first contact with the new lineage.
func (f *Follower) monitor() {
	defer f.monWG.Done()
	interval := f.o.HeartbeatTimeout / 4
	if interval <= 0 {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
		}
		if !f.everConnected.Load() {
			continue
		}
		if time.Since(time.Unix(0, f.lastContact.Load())) < f.o.HeartbeatTimeout {
			continue
		}
		st := f.Promote()
		if st != nil && f.o.OnPromote != nil {
			f.o.OnPromote(st)
		}
		return
	}
}

// Promote detaches the follower from its leader and returns the local
// store, now the caller's to write: clean promotion to a standalone
// (still durable, when opened with a Dir) store. The replication loop is
// fully stopped and the replication epoch durably bumped past every epoch
// this follower has observed before Promote returns, so the first contact
// between the old leader and the new lineage fences the old leader. The
// store keeps every applied record. Promoting while a snapshot catch-up is
// streaming abandons that merge half-finished — the affected shards
// (CatchingUp) may retain keys the leader had deleted, which Promote logs
// but does not block on: the operator promoting because the leader died
// mid-merge must not be stranded.
//
// Safe to call concurrently with itself (idempotent: one epoch bump) and
// with an armed auto-promote monitor (exactly one promotion happens).
// Returns nil after Close.
func (f *Follower) Promote() *shard.Store {
	f.lifeMu.Lock()
	defer f.lifeMu.Unlock()
	if f.closed {
		return nil
	}
	if f.promoted.Swap(true) {
		return f.st
	}
	f.halt()
	if shards := f.CatchingUp(); len(shards) > 0 {
		f.logf("repl: promoted with a snapshot catch-up in progress on shards %v: they may retain keys the leader had deleted", shards)
	}
	epoch, err := f.st.BumpEpoch(f.observedEpoch.Load())
	if err != nil {
		f.logf("repl: persisting promotion epoch %d: %v", epoch, err)
	}
	f.logf("repl: promoted at epoch %d", epoch)
	return f.st
}

// Close stops replication and closes the local store (unless Promote
// already transferred ownership). Idempotent.
func (f *Follower) Close() error {
	f.lifeMu.Lock()
	f.closed = true
	f.halt()
	promoted := f.promoted.Load()
	f.lifeMu.Unlock()
	// The monitor's Promote blocks on lifeMu; with closed set it returns
	// nil, so this wait cannot deadlock — and after it, no promotion can
	// race the store close below.
	f.monWG.Wait()
	if promoted {
		return nil
	}
	return f.st.Close()
}
