package repl

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/repro/wormhole/internal/netkv"
	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/wal"
)

// testKeys returns n keys spread over the keyspace so a sampled
// partitioner actually splits them across shards.
func testKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%07d", i*7919%n))
	}
	return keys
}

type leader struct {
	st  *shard.Store
	src *Source
	srv *netkv.Server
}

func newLeader(t *testing.T, dir string, sample [][]byte) *leader {
	t.Helper()
	st, err := shard.Open(shard.Options{Dir: dir, Shards: 3, Sample: sample})
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(st)
	srv, err := netkv.ServeOpts("127.0.0.1:0", st, netkv.ServerOptions{
		Subscribe: src.ServeSubscriber,
		StatFill:  src.FillStat,
	})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		src.Close()
		srv.Close()
		st.Close()
	})
	return &leader{st: st, src: src, srv: srv}
}

// dump serializes a store's full ordered scan unambiguously, for
// byte-identical comparison between leader and follower.
func dump(st *shard.Store) []byte {
	var b []byte
	st.Scan(nil, func(k, v []byte) bool {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(k)))
		b = append(b, k...)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
		b = append(b, v...)
		return true
	})
	return b
}

// waitConverged polls until the follower's full-index scan is
// byte-identical to the leader's.
func waitConverged(t *testing.T, ld *leader, f *Follower) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		want := dump(ld.st)
		if bytes.Equal(want, dump(f.Store())) {
			// The leader may have changed between the two dumps when a
			// writer is still running; callers only converge on a
			// quiescent leader, so one stable comparison is enough.
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower did not converge: leader %d keys, follower %d keys (applied %v, leader end %v)",
				ld.st.Count(), f.Store().Count(), f.Applied(), f.LeaderEnd())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitSnapshots waits for the follower's snapshot counter to reach want:
// scan convergence is observable an instant before the snapshot-end
// message (which bumps the counter) is processed, so asserting the
// counter right at convergence would race.
func waitSnapshots(t *testing.T, f *Follower, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for f.SnapshotsApplied() < want {
		if time.Now().After(deadline) {
			t.Fatalf("follower applied %d snapshot transfers, want %d", f.SnapshotsApplied(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func startFollower(t *testing.T, ld *leader, dir string) *Follower {
	t.Helper()
	f, err := Start(Options{
		Leader:      ld.srv.Addr(),
		Dir:         dir,
		AckInterval: 10 * time.Millisecond,
		BackoffMin:  10 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestReplicationBasic attaches a follower to a leader with history (tail
// replay from genesis), keeps writing — including deletes and updates —
// and checks byte-identical convergence without any snapshot transfer.
func TestReplicationBasic(t *testing.T) {
	keys := testKeys(4000)
	ld := newLeader(t, t.TempDir(), keys)
	for _, k := range keys[:2000] {
		ld.st.Set(k, append([]byte("v1-"), k...))
	}
	f := startFollower(t, ld, t.TempDir())
	defer f.Close()
	for _, k := range keys[2000:] {
		ld.st.Set(k, append([]byte("v2-"), k...))
	}
	for i := 0; i < len(keys); i += 4 {
		ld.st.Del(keys[i])
	}
	for i := 1; i < len(keys); i += 4 {
		ld.st.Set(keys[i], []byte("updated"))
	}
	waitConverged(t, ld, f)
	if n := f.SnapshotsApplied(); n != 0 {
		t.Fatalf("tail replay took %d snapshot transfers", n)
	}
	if f.Store().Durable() != true {
		t.Fatal("durable follower expected")
	}
}

// TestVolatileFollower replicates into a follower with no directory.
func TestVolatileFollower(t *testing.T) {
	keys := testKeys(1000)
	ld := newLeader(t, t.TempDir(), keys)
	for _, k := range keys {
		ld.st.Set(k, k)
	}
	f, err := Start(Options{Leader: ld.srv.Addr(), AckInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Store().Durable() {
		t.Fatal("volatile follower has a WAL")
	}
	waitConverged(t, ld, f)
}

// TestFollowerRestartTailReplay is the convergence criterion's first half:
// kill the follower mid-stream, keep writing through the leader, restart
// the follower from its directory, and the durable position must resume
// the tail — byte-identical convergence with zero snapshot transfers.
func TestFollowerRestartTailReplay(t *testing.T) {
	keys := testKeys(6000)
	ld := newLeader(t, t.TempDir(), keys)
	fdir := t.TempDir()
	f := startFollower(t, ld, fdir)

	// Write while the follower streams, and kill it mid-stream: once it
	// has demonstrably applied some records but the writer is not done.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, k := range keys[:4000] {
			ld.st.Set(k, append([]byte("a-"), k...))
		}
	}()
	for f.RecordsApplied() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("mid-stream close: %v", err)
	}
	<-done

	// More leader history while the follower is down.
	for _, k := range keys[4000:] {
		ld.st.Set(k, append([]byte("b-"), k...))
	}
	for i := 2; i < len(keys); i += 5 {
		ld.st.Del(keys[i])
	}

	f2 := startFollower(t, ld, fdir)
	defer f2.Close()
	waitConverged(t, ld, f2)
	if n := f2.SnapshotsApplied(); n != 0 {
		t.Fatalf("restart with surviving positions took %d snapshot transfers", n)
	}
}

// TestFollowerCatchupViaSnapshot is the criterion's second half: while the
// follower is down the leader writes, deletes, and snapshots (GC'ing the
// generations the follower's position points into), so the restarted
// follower must be forced onto the snapshot path — and still converge
// byte-identically, including the deletes it never saw as records.
func TestFollowerCatchupViaSnapshot(t *testing.T) {
	keys := testKeys(5000)
	ld := newLeader(t, t.TempDir(), keys)
	fdir := t.TempDir()
	for _, k := range keys[:2500] {
		ld.st.Set(k, append([]byte("a-"), k...))
	}
	f := startFollower(t, ld, fdir)
	waitConverged(t, ld, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// History the follower misses: updates, deletes, then a snapshot that
	// garbage-collects the WAL generations its position points into, then
	// a post-snapshot tail.
	for _, k := range keys[2500:4000] {
		ld.st.Set(k, append([]byte("b-"), k...))
	}
	for i := 0; i < 2500; i += 2 {
		ld.st.Del(keys[i])
	}
	if err := ld.st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[4000:] {
		ld.st.Set(k, append([]byte("c-"), k...))
	}

	f2 := startFollower(t, ld, fdir)
	defer f2.Close()
	waitConverged(t, ld, f2)
	waitSnapshots(t, f2, 1)
}

// TestFreshFollowerBelowGCHorizon subscribes a brand-new follower to a
// leader whose generation 1 is long gone: every shard must arrive by
// snapshot plus tail.
func TestFreshFollowerBelowGCHorizon(t *testing.T) {
	keys := testKeys(3000)
	ld := newLeader(t, t.TempDir(), keys)
	for _, k := range keys[:2000] {
		ld.st.Set(k, k)
	}
	if err := ld.st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[2000:] {
		ld.st.Set(k, k)
	}
	// wal-1 must actually be gone, or this test is vacuous.
	for i := 0; i < ld.st.NumShards(); i++ {
		if ld.st.WAL(i).HasWAL(1) {
			t.Fatalf("shard %d still has generation 1 after a covering snapshot", i)
		}
	}
	f := startFollower(t, ld, t.TempDir())
	defer f.Close()
	waitConverged(t, ld, f)
	waitSnapshots(t, f, int64(ld.st.NumShards()))
}

// TestDivergedFollowerBeyondLeaderHistory covers the third unreachable-
// position case: a leader crash loses an unsynced WAL suffix the follower
// had already applied, and the leader has never snapshotted — so there is
// no snapshot file anywhere. The revived leader must still correct the
// follower (live-scan snapshot + tail), not silently skip the re-streamed
// records against the follower's stale position.
func TestDivergedFollowerBeyondLeaderHistory(t *testing.T) {
	keys := testKeys(3000)
	ldir := t.TempDir()
	ld := newLeader(t, ldir, keys)
	fdir := t.TempDir()
	for _, k := range keys {
		ld.st.Set(k, append([]byte("v1-"), k...))
	}
	f := startFollower(t, ld, fdir)
	waitConverged(t, ld, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The leader "crashes" losing the last third of every shard's WAL:
	// close it and truncate the files mid-record; recovery keeps the valid
	// prefix, leaving the follower's applied position beyond history.
	ld.src.Close()
	ld.srv.Close()
	if err := ld.st.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		p := filepath.Join(ldir, fmt.Sprintf("shard-%03d", i), fmt.Sprintf("wal-%016x.log", 1))
		fi, err := os.Stat(p)
		if err != nil {
			if i == 0 {
				t.Fatal(err)
			}
			break
		}
		if err := os.Truncate(p, fi.Size()*2/3); err != nil {
			t.Fatal(err)
		}
	}
	ld2 := newLeader(t, ldir, keys)
	// A little fresh history on the revived leader, small enough that its
	// end positions stay below the follower's stale ones.
	for _, k := range keys[:100] {
		ld2.st.Set(k, append([]byte("v2-"), k...))
	}

	f2 := startFollower(t, ld2, fdir)
	defer f2.Close()
	waitConverged(t, ld2, f2)
	waitSnapshots(t, f2, 1) // the correction must go through the snapshot path
}

// TestPromote detaches a follower and checks the store is the caller's:
// subsequent leader writes no longer arrive, local writes work, and the
// promoted store reopens standalone.
func TestPromote(t *testing.T) {
	keys := testKeys(1000)
	ld := newLeader(t, t.TempDir(), keys)
	fdir := t.TempDir()
	for _, k := range keys {
		ld.st.Set(k, k)
	}
	f := startFollower(t, ld, fdir)
	waitConverged(t, ld, f)

	st := f.Promote()
	if st == nil {
		t.Fatal("Promote returned no store")
	}
	before := st.Count()
	ld.st.Set([]byte("zzz-after-promotion"), []byte("x"))
	time.Sleep(50 * time.Millisecond)
	if st.Count() != before {
		t.Fatal("promoted store still applies leader writes")
	}
	st.Set([]byte("local-write"), []byte("y"))
	if v, ok := st.Get([]byte("local-write")); !ok || string(v) != "y" {
		t.Fatal("promoted store rejects local writes")
	}
	if err := f.Close(); err != nil { // must not close the promoted store
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := shard.Open(shard.Options{Dir: fdir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, ok := st2.Get([]byte("local-write")); !ok {
		t.Fatal("promoted store lost its local write across reopen")
	}
}

// TestSubscribeRefusedByPlainServer checks a non-leader answers an
// OpSubscribe batch with StatusNotFound and the follower surfaces that
// refusal immediately — from the response's first bytes, not by burning
// the whole handshake deadline on a frame that will never grow.
func TestSubscribeRefusedByPlainServer(t *testing.T) {
	st := shard.New(shard.Options{Shards: 2})
	srv, err := netkv.Serve("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	start := time.Now()
	_, err = Start(Options{Leader: srv.Addr(), DialTimeout: 10 * time.Second})
	if err == nil {
		t.Fatal("subscription to a non-replicating server succeeded")
	}
	if !strings.Contains(err.Error(), "not a replication leader") {
		t.Fatalf("refusal surfaced as %v", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("refusal took %v: stalled on the deadline instead of parsing the frame", el)
	}
}

// TestHandshakeShardMismatch checks a follower recovered with a different
// shard count is refused rather than silently misrouted.
func TestHandshakeShardMismatch(t *testing.T) {
	keys := testKeys(500)
	ld := newLeader(t, t.TempDir(), keys) // 3 shards
	fdir := t.TempDir()
	other, err := shard.Open(shard.Options{Dir: fdir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	other.Set([]byte("k"), []byte("v"))
	if err := other.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Start(Options{Leader: ld.srv.Addr(), Dir: fdir}); err == nil {
		t.Fatal("mismatched shard count accepted")
	}
}

// TestFollowerReconnects kills the leader-side connection and checks the
// follower re-subscribes and keeps converging.
func TestFollowerReconnects(t *testing.T) {
	keys := testKeys(2000)
	ld := newLeader(t, t.TempDir(), keys)
	for _, k := range keys[:1000] {
		ld.st.Set(k, k)
	}
	f := startFollower(t, ld, t.TempDir())
	defer f.Close()
	waitConverged(t, ld, f)

	// Sever every subscriber from the leader side; the follower's backoff
	// loop must re-handshake from its applied positions and resume.
	ld.src.DisconnectAll()
	for _, k := range keys[1000:] {
		ld.st.Set(k, k)
	}
	waitConverged(t, ld, f)
	if n := f.SnapshotsApplied(); n != 0 {
		t.Fatalf("reconnect resumed via %d snapshot transfers instead of the tail", n)
	}
}

// TestStreamingWALGenerationRotation writes across a leader snapshot while
// a follower streams, so batches cross a generation rotation live.
func TestStreamingWALGenerationRotation(t *testing.T) {
	keys := testKeys(4000)
	ld := newLeader(t, t.TempDir(), keys)
	f := startFollower(t, ld, t.TempDir())
	defer f.Close()
	for _, k := range keys[:2000] {
		ld.st.Set(k, k)
	}
	if err := ld.st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[2000:] {
		ld.st.Set(k, k)
	}
	waitConverged(t, ld, f)
}

// TestPositionSurvivesInWAL checks the follower's applied position is in
// its own WAL: recovery reports it without any replication running.
func TestPositionSurvivesInWAL(t *testing.T) {
	keys := testKeys(1000)
	ld := newLeader(t, t.TempDir(), keys)
	fdir := t.TempDir()
	for _, k := range keys {
		ld.st.Set(k, k)
	}
	f := startFollower(t, ld, fdir)
	waitConverged(t, ld, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := shard.Open(shard.Options{Dir: fdir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	found := 0
	for i := 0; i < st.NumShards(); i++ {
		if p, ok := st.WAL(i).RecoveredPosition(); ok {
			if p.Gen == 0 {
				t.Fatalf("shard %d recovered zero position", i)
			}
			found++
		}
	}
	if found == 0 {
		t.Fatal("no shard recovered a replication position")
	}
}

// TestSubscribePayloadRoundTrip exercises the handshake encoding directly:
// epoch, leadership history, and positions all survive the round trip, and
// malformed payloads are rejected rather than misread.
func TestSubscribePayloadRoundTrip(t *testing.T) {
	histories := [][]shard.EpochEntry{
		nil,
		{{Epoch: 1}},
		{{Epoch: 1}, {Epoch: 3, Start: []wal.Position{{Gen: 2, Seq: 41}, {Gen: 1, Seq: 7}}}},
	}
	for hi, positions := range [][]wal.Position{
		nil,
		{{Gen: 1, Seq: 0}},
		{{Gen: 3, Seq: 77}, {Gen: 1, Seq: 0}, {Gen: 9, Seq: 1 << 40}},
	} {
		hist := histories[hi]
		epoch := uint64(hi * 5)
		gotEpoch, gotHist, got, _, err := decodeSubscribe(encodeSubscribe(epoch, hist, positions, nil))
		if err != nil {
			t.Fatalf("%v: %v", positions, err)
		}
		if gotEpoch != epoch {
			t.Fatalf("epoch round trip %d -> %d", epoch, gotEpoch)
		}
		if !shard.HistoryEqual(gotHist, hist) {
			t.Fatalf("history round trip %v -> %v", hist, gotHist)
		}
		if len(got) != len(positions) {
			t.Fatalf("round trip %v -> %v", positions, got)
		}
		for i := range got {
			if got[i] != positions[i] {
				t.Fatalf("round trip %v -> %v", positions, got)
			}
		}
	}
	if _, _, _, _, err := decodeSubscribe([]byte("WHRPX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00")); err == nil {
		t.Fatal("bad magic accepted")
	}
	full := encodeSubscribe(7, histories[2], []wal.Position{{Gen: 1, Seq: 2}},
		[]snapResume{{shard: 0, pos: wal.Position{Gen: 1, Seq: 1}, cursor: []byte("k\x00")}})
	for cut := 1; cut < len(full); cut++ {
		if _, _, _, _, err := decodeSubscribe(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestMessageFraming exercises writeMsg/readMsg over a pipe.
func TestMessageFraming(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		w := bufio.NewWriter(a)
		writeMsg(w, msgAck, appendPosMsg(nil, 4, 2, wal.Position{Gen: 5, Seq: 99}))
	}()
	typ, body, _, err := readMsg(bufio.NewReader(b), nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgAck {
		t.Fatalf("type %d", typ)
	}
	e, sh, p, err := decodePosMsg(body)
	if err != nil || e != 4 || sh != 2 || p != (wal.Position{Gen: 5, Seq: 99}) {
		t.Fatalf("decoded %d %d %v %v", e, sh, p, err)
	}
}

// TestLeaderStatExposesLag checks OpStat reports follower lag fields.
func TestLeaderStatExposesLag(t *testing.T) {
	keys := testKeys(1000)
	ld := newLeader(t, t.TempDir(), keys)
	f := startFollower(t, ld, t.TempDir())
	defer f.Close()
	for _, k := range keys {
		ld.st.Set(k, k)
	}
	waitConverged(t, ld, f)
	cl, err := netkv.Dial(ld.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "leader" {
		t.Fatalf("role %q", st.Role)
	}
	if len(st.Followers) != 1 {
		t.Fatalf("%d followers in stat", len(st.Followers))
	}
	if st.Followers[0].LagRecords < 0 {
		t.Fatalf("converged follower lag %d", st.Followers[0].LagRecords)
	}
	if !st.Durable || st.Shards != 3 {
		t.Fatalf("stat base fields: %+v", st)
	}
}

// TestFollowerWALGC ensures the on-disk layout a follower leaves behind is
// recoverable even when the leader directory is gone entirely (disaster
// promotion): the store opens and serves.
func TestFollowerWALGC(t *testing.T) {
	keys := testKeys(1500)
	ldir := t.TempDir()
	ld := newLeader(t, ldir, keys)
	fdir := t.TempDir()
	for _, k := range keys {
		ld.st.Set(k, append([]byte("v-"), k...))
	}
	f := startFollower(t, ld, fdir)
	waitConverged(t, ld, f)
	want := dump(ld.st)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ld.src.Close()
	ld.srv.Close()
	ld.st.Close()
	if err := os.RemoveAll(ldir); err != nil {
		t.Fatal(err)
	}
	st, err := shard.Open(shard.Options{Dir: fdir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := dump(st); !bytes.Equal(want, got) {
		t.Fatal("follower state diverged from leader after standalone reopen")
	}
	// Its own snapshots GC its own WAL, independent of any leader.
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < st.NumShards(); i++ {
		dirEnts, err := os.ReadDir(filepath.Join(fdir, fmt.Sprintf("shard-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range dirEnts {
			if e.Name() == "wal-0000000000000001.log" {
				t.Fatalf("shard %d kept generation 1 after covering snapshot", i)
			}
		}
	}
}
